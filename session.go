package kite

import (
	"context"
	"sync/atomic"

	"kite/internal/core"
)

// clusterSession is the in-process implementation of Session: a thin
// adapter from the Op/Result model onto one worker-owned core session.
type clusterSession struct {
	Ops
	s      *core.Session
	closed atomic.Bool
}

func newClusterSession(s *core.Session) *clusterSession {
	cs := &clusterSession{s: s}
	cs.Ops = Ops{Doer: cs}
	return cs
}

// request translates an Op into a core request. Slices are passed through
// (copy == false) only when the caller provably blocks until the worker is
// done with them — a synchronous call with a non-cancelable context. Any
// path that can return to the caller while the request is still live
// (async, or a context that may expire) must copy, or the caller could
// reuse its buffer while the worker still reads it.
func request(op Op, copySlices bool) *core.Request {
	val, exp := op.Value, op.Expected
	if copySlices {
		val, exp = cloneVal(val), cloneVal(exp)
	}
	return &core.Request{
		Code: core.OpCode(op.Code), Key: op.Key,
		Val: val, Expected: exp, Delta: op.Delta,
	}
}

func result(r *core.Request) Result {
	return Result{Value: cloneVal(r.Out), Swapped: r.Swapped, Err: r.Err}
}

// Do executes op synchronously. With no deadline on ctx it waits as long
// as the deployment takes — the context is the only timeout mechanism. On
// ctx expiry the request is canceled: if the worker had not issued it yet
// it completes with ErrCanceled and has no effect; if it was already
// executing, it runs to completion in the background.
func (s *clusterSession) Do(ctx context.Context, op Op) (Result, error) {
	if s.closed.Load() {
		return Result{Err: ErrSessionClosed}, ErrSessionClosed
	}
	if err := ValidateOp(op); err != nil {
		return Result{Err: err}, err
	}
	// ctx.Done() == nil (e.g. context.Background) means Do cannot return
	// before completion, so the worker may safely read the caller's
	// slices in place; a cancelable context forces a copy.
	r := request(op, ctx.Done() != nil)
	done := make(chan *core.Request, 1)
	r.Done = func(r *core.Request) { done <- r }
	s.s.Submit(r)
	select {
	case out := <-done:
		return result(out), out.Err
	case <-ctx.Done():
		r.Cancel()
		// Prefer a completion that raced the cancellation.
		select {
		case out := <-done:
			return result(out), out.Err
		default:
		}
		err := canceledErr(ctx.Err())
		return Result{Err: err}, err
	}
}

// DoAsync submits op without waiting; cb runs on the owning worker
// goroutine and must not block.
func (s *clusterSession) DoAsync(op Op, cb func(Result)) {
	if s.closed.Load() {
		if cb != nil {
			cb(Result{Err: ErrSessionClosed})
		}
		return
	}
	if err := ValidateOp(op); err != nil {
		if cb != nil {
			cb(Result{Err: err})
		}
		return
	}
	r := request(op, true)
	if cb != nil {
		r.Done = func(r *core.Request) { cb(result(r)) }
	}
	s.s.Submit(r)
}

// DoBatch submits every op back-to-back — they occupy consecutive
// positions in session order — and waits for all results.
func (s *clusterSession) DoBatch(ctx context.Context, ops []Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	// Validation is all-or-nothing before any op is submitted — the same
	// contract as the remote backend, so a malformed batch behaves
	// identically over either deployment.
	for _, op := range ops {
		if err := ValidateOp(op); err != nil {
			return nil, err
		}
	}
	type indexed struct {
		i int
		r *core.Request
	}
	done := make(chan indexed, len(ops))
	reqs := make([]*core.Request, len(ops))
	copySlices := ctx.Done() != nil
	for i, op := range ops {
		r := request(op, copySlices)
		i := i
		r.Done = func(r *core.Request) { done <- indexed{i: i, r: r} }
		reqs[i] = r
		s.s.Submit(r)
	}
	results := make([]Result, len(ops))
	got := make([]bool, len(ops))
	for n := 0; n < len(ops); n++ {
		select {
		case x := <-done:
			results[x.i] = result(x.r)
			got[x.i] = true
		case <-ctx.Done():
			for _, r := range reqs {
				r.Cancel()
			}
			// Drain completions that raced in, then mark the rest.
			for n < len(ops) {
				select {
				case x := <-done:
					results[x.i] = result(x.r)
					got[x.i] = true
					n++
					continue
				default:
				}
				break
			}
			cerr := canceledErr(ctx.Err())
			for i := range results {
				if !got[i] {
					results[i] = Result{Err: cerr}
				}
			}
			return results, cerr
		}
	}
	// First per-op error in batch order.
	for i := range results {
		if results[i].Err != nil {
			return results, results[i].Err
		}
	}
	return results, nil
}

// Close invalidates the handle. The underlying worker-owned session keeps
// existing — in-process sessions are a fixed node resource, not leases.
func (s *clusterSession) Close() error {
	s.closed.Store(true)
	return nil
}

func cloneVal(v []byte) []byte {
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}
