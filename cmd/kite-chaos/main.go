// Command kite-chaos runs a seeded, reproducible chaos schedule against a
// Kite deployment while a history-recording workload executes, then
// verifies the recorded history against the RC/k-atomicity checker.
//
// The schedule is a pure function of -seed: re-running with the same flags
// replays the identical nemesis timeline, so a failing run's report is its
// own reproduction recipe.
//
// Usage:
//
//	kite-chaos -seed 1 -duration 30s -backend inproc
//	kite-chaos -backend sharded -groups 2 -nemeses drop-link,stop-restart
//	kite-chaos -backend remote -json report.json -history history.jsonl
//	kite-chaos -nemeses crash-all     # durability: SIGKILL all, restart from WAL
//	kite-chaos -nemeses local-reads   # attack the local-acquire valid-bit window
//	kite-chaos -nemeses wire-batching # attack the batched transport's flush window
//	kite-chaos -nemeses online-audit  # ride the standing online auditor through the run
//	kite-chaos -plan -seed 7          # print the timeline, run nothing
//
// The crash-all nemesis kills every node at once and restarts them from
// their write-ahead logs; it requires a WAL (-wal-dir, or the temporary
// directory the tool creates when the flag is omitted) and is excluded
// from the default nemesis mix.
//
// Exit status: 0 — run passed; 1 — consistency violations or missing
// fault evidence; 2 — the run itself failed (boot error, lifecycle error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kite"
	"kite/internal/chaos"
	"kite/internal/history"
	"kite/internal/testcluster"
	"kite/sharded"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "schedule seed; same seed, same nemesis timeline")
		duration = flag.Duration("duration", 30*time.Second, "nemesis window (every fault heals inside it)")
		backend  = flag.String("backend", "inproc", "deployment flavour: inproc | sharded | remote")
		nodes    = flag.Int("nodes", 3, "replicas per group")
		groups   = flag.Int("groups", 2, "replica groups (sharded backend)")
		nemeses  = flag.String("nemeses", "", "comma-separated nemesis kinds (default: all of "+kindList()+"); 'local-reads' expands to the schedule attacking the local-acquire fast path, 'wire-batching' to the one attacking the batched transport's flush window, 'online-audit' to the latency-biased mix with the standing online auditor riding the workload")
		online   = flag.Bool("online", false, "ride the internal/audit online auditor on every recorded workload session; the run fails if it reports a violation the offline verifier does not confirm")
		verify   = flag.Bool("verify", true, "run the RC/k-atomicity verifier over the recorded history")
		jsonPath = flag.String("json", "", "write the JSON run report here ('-' for stdout)")
		histPath = flag.String("history", "", "write the recorded history (JSON lines) here")
		plan     = flag.Bool("plan", false, "print the generated schedule and exit without running")
		walDir   = flag.String("wal-dir", "", "per-node write-ahead logs under this directory (required by crash-all; a temp dir is created if omitted)")
	)
	flag.Parse()

	cfg := chaos.Config{Seed: *seed, Duration: *duration, Nodes: *nodes}
	wantCrashAll := false
	if *nemeses != "" {
		for _, name := range strings.Split(*nemeses, ",") {
			name = strings.TrimSpace(name)
			if name == "local-reads" {
				// Named schedule: the delay-biased mix attacking the
				// local-acquire fast path's invalidate→validate window.
				cfg.Kinds = append(cfg.Kinds, chaos.LocalReadsKinds()...)
				continue
			}
			if name == "wire-batching" {
				// Named schedule: the delay-biased mix attacking the
				// batched transport's flush/linger window, plus unrecorded
				// burst sessions whose high-fanout relaxed writes keep the
				// flush deadlines hot while the nemeses run.
				cfg.Kinds = append(cfg.Kinds, chaos.WireBatchingKinds()...)
				if cfg.BurstSessions == 0 {
					cfg.BurstSessions = 4
				}
				continue
			}
			if name == "online-audit" {
				// Named schedule: the latency-biased mix with the standing
				// online auditor riding every recorded workload session.
				cfg.Kinds = append(cfg.Kinds, chaos.OnlineAuditKinds()...)
				cfg.OnlineAudit = true
				continue
			}
			k := chaos.NemesisKind(name)
			if !validKind(k) {
				fatalf("unknown nemesis kind %q (have: %s, %s or the local-reads / wire-batching / online-audit schedules)", k, kindList(), chaos.KindCrashAll)
			}
			cfg.Kinds = append(cfg.Kinds, k)
			if k == chaos.KindCrashAll {
				wantCrashAll = true
			}
		}
	}

	if *plan {
		for _, a := range chaos.Generate(cfg).Actions {
			fmt.Println(a)
		}
		return
	}

	// crash-all recovers exclusively from disk; without a WAL the run can
	// only fail, so give it one even when the operator didn't.
	if wantCrashAll && *walDir == "" {
		dir, err := os.MkdirTemp("", "kite-chaos-wal-*")
		if err != nil {
			fatalf("create WAL dir: %v", err)
		}
		defer os.RemoveAll(dir)
		*walDir = dir
		fmt.Fprintf(os.Stderr, "kite-chaos: crash-all requested without -wal-dir; using %s\n", dir)
	}

	tg, cleanup, err := buildTarget(*backend, *nodes, *groups, *walDir)
	if err != nil {
		fatalf("%v", err)
	}
	defer cleanup()

	if *online {
		cfg.OnlineAudit = true
	}
	fmt.Fprintf(os.Stderr, "kite-chaos: seed=%d backend=%s duration=%v\n", *seed, *backend, *duration)
	rep, rec := chaos.Run(tg, cfg)

	if *histPath != "" {
		if err := writeHistory(*histPath, rec); err != nil {
			fatalf("write history: %v", err)
		}
	}
	if !*verify {
		rep.Verifier = nil
	}
	if err := writeReport(*jsonPath, rep); err != nil {
		fatalf("write report: %v", err)
	}

	fmt.Fprintf(os.Stderr, "kite-chaos: ops=%d ok=%d maybe=%d; injected=%v; faulted links=%d\n",
		rep.Ops.Total, rep.Ops.OK, rep.Ops.Maybe, rep.Injected, len(rep.Faults))
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "kite-chaos: error: %s\n", e)
	}
	if rep.Verifier != nil {
		fmt.Fprintln(os.Stderr, rep.Verifier.String())
	}
	if rep.Audit != nil {
		st := rep.Audit.Stats
		fmt.Fprintf(os.Stderr, "kite-chaos: online audit: sampled=%d judged=%d reads=%d dropped=%d evicted=%d\n%s\n",
			st.SampledOps, st.JudgedEvents, st.CheckedReads, st.DroppedEvents, st.Evictions, rep.Audit.Report.String())
	}
	if !rep.Passed && *verify {
		fmt.Fprintln(os.Stderr, "kite-chaos: FAILED")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "kite-chaos: PASSED")
}

// buildTarget boots the requested deployment. The remote backend drives
// testcluster through a non-testing TB whose Fatal panics (recovered into
// exit 2) and whose cleanups run via the returned teardown.
func buildTarget(backend string, nodes, groups int, walDir string) (chaos.Target, func(), error) {
	opts := kite.Options{Nodes: nodes, Workers: 1, SessionsPerWorker: 8, Capacity: 1 << 14, WALDir: walDir}
	switch backend {
	case "inproc":
		c, err := kite.NewCluster(opts)
		if err != nil {
			return nil, nil, err
		}
		return chaos.NewInprocTarget(c), c.Close, nil
	case "sharded":
		c, err := sharded.NewCluster(groups, opts)
		if err != nil {
			return nil, nil, err
		}
		return chaos.NewShardedTarget(c), c.Close, nil
	case "remote":
		tb := &runtimeTB{}
		cl := testcluster.StartWith(tb, testcluster.Options{Nodes: nodes, WALDir: walDir})
		return cl.Chaos(), tb.runCleanups, nil
	default:
		return nil, nil, fmt.Errorf("unknown backend %q (inproc | sharded | remote)", backend)
	}
}

// runtimeTB satisfies testcluster.TB outside `go test`: fatal errors panic
// (turned into exit 2 by deferred recovery in cleanups' caller — boot
// failures surface immediately), cleanups run at teardown in reverse
// order, like testing.T.
type runtimeTB struct {
	cleanups []func()
}

func (t *runtimeTB) Helper() {}
func (t *runtimeTB) Fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"kite-chaos: fatal:"}, args...)...)
	os.Exit(2)
}
func (t *runtimeTB) Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kite-chaos: fatal: "+format+"\n", args...)
	os.Exit(2)
}
func (t *runtimeTB) Cleanup(fn func()) { t.cleanups = append(t.cleanups, fn) }
func (t *runtimeTB) runCleanups() {
	for i := len(t.cleanups) - 1; i >= 0; i-- {
		t.cleanups[i]()
	}
}

func writeHistory(path string, rec *history.Recorded) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeReport(path string, rep *chaos.Report) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func kindList() string {
	names := make([]string, 0, len(chaos.AllKinds()))
	for _, k := range chaos.AllKinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ",")
}

func validKind(k chaos.NemesisKind) bool {
	if k == chaos.KindCrashAll {
		// Not in AllKinds (a memory-only sweep cannot survive it), but a
		// legitimate explicit request.
		return true
	}
	for _, have := range chaos.AllKinds() {
		if k == have {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kite-chaos: "+format+"\n", args...)
	os.Exit(2)
}
