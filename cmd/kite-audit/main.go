// Command kite-audit attaches a standing consistency audit to a live Kite
// deployment. It dials the deployment through the public client, leases
// prober sessions wrapped in the internal/audit sampling recorder, drives a
// verification-friendly workload over a dedicated key range, and streams
// the sampled invoke/complete records through the incremental RC /
// k-atomicity checker while the deployment serves — reporting violations
// with their minimal counterexample windows, plus coverage counters.
//
// The audit is sound by subsetting: it samples, so it can miss violations,
// but everything it reports is witnessed entirely by operations that really
// executed (see internal/audit). Memory is bounded by -budget.
//
// Usage:
//
//	kite-audit -addrs 127.0.0.1:7001                     # unsharded node
//	kite-audit -addrs 127.0.0.1:7001,127.0.0.1:7101     # one node per group
//	kite-audit -addrs ... -duration 0                    # stand until SIGINT
//	kite-audit -addrs ... -sample-keys 0.25 -budget 65536
//	kite-audit -selftest                                 # injected-violation drill
//
// The prober writes only to keys at -key-base and above; point it at a
// range the deployment does not use for real data.
//
// Exit status: 0 — audited clean; 1 — consistency violations reported;
// 2 — the audit itself failed (dial error, no coverage).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kite"
	"kite/client"
	"kite/internal/audit"
)

func main() {
	var (
		addrs    = flag.String("addrs", "", "comma-separated client addresses, one node per replica group (required unless -selftest)")
		duration = flag.Duration("duration", 60*time.Second, "how long to audit; 0 means until SIGINT/SIGTERM")
		pairs    = flag.Int("pairs", 2, "producer/consumer prober pairs")
		keyBase  = flag.Uint64("key-base", 900000, "first key of the prober's dedicated range")
		sampleK  = flag.Float64("sample-keys", 1, "per-key sampling rate in (0,1]")
		sampleS  = flag.Float64("sample-sessions", 1, "per-session sampling rate in (0,1]")
		budget   = flag.Int("budget", 1<<16, "memory budget: max judged events retained by the checker")
		grace    = flag.Duration("grace", 250*time.Millisecond, "watermark lag: completions older than this are judged")
		k        = flag.Int("k", 1, "k-atomicity bound for the synchronisation sweep (1 = atomic)")
		interval = flag.Duration("interval", 50*time.Millisecond, "seal cadence")
		seed     = flag.Int64("seed", 0, "sampling-coin salt")
		jsonPath = flag.String("json", "", "write the JSON audit summary here ('-' for stdout)")
		selftest = flag.Bool("selftest", false, "run the injected-violation drill through the full pipeline and exit")
	)
	flag.Parse()

	if *selftest {
		sum, err := audit.SelfTest()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-audit: selftest: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "kite-audit: selftest ok: both injected violations caught (%d ops sampled)\n",
			sum.Stats.SampledOps)
		writeSummary(*jsonPath, sum)
		return
	}
	if *addrs == "" {
		fatalf("-addrs is required (or -selftest)")
	}

	sc, err := client.DialSharded(strings.Split(*addrs, ","), client.Options{})
	if err != nil {
		fatalf("dial: %v", err)
	}
	defer sc.Close()

	a := audit.New(audit.Config{
		KeyRate: *sampleK, SessionRate: *sampleS, K: *k,
		Grace: *grace, MaxEvents: *budget, Interval: *interval, Seed: *seed,
	})

	p := &prober{sc: sc, a: a, base: *keyBase, nonce: time.Now().UnixNano()}
	for i := 0; i < *pairs; i++ {
		i := i
		p.go_(func() { p.producer(i) })
		p.go_(func() { p.consumer(i) })
	}
	p.go_(func() { p.faa() })
	p.go_(func() { p.faa() })
	p.go_(func() { p.cas() })

	fmt.Fprintf(os.Stderr, "kite-audit: auditing %s (pairs=%d keys@%d sample=%g/%g budget=%d k=%d)\n",
		*addrs, *pairs, *keyBase, *sampleK, *sampleS, *budget, *k)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
loop:
	for {
		select {
		case <-timeout:
			break loop
		case <-sig:
			fmt.Fprintln(os.Stderr, "kite-audit: signal received, stopping")
			break loop
		case <-status.C:
			st := a.Stats()
			rep := a.Report()
			fmt.Fprintf(os.Stderr, "kite-audit: sampled=%d judged=%d reads=%d dropped=%d evicted=%d retained=%d violations=%d\n",
				st.SampledOps, st.JudgedEvents, st.CheckedReads, st.DroppedEvents, st.Evictions, st.Retained,
				len(rep.Violations)+rep.Truncated)
		}
	}

	p.halt()
	a.Close()
	sum := a.Summary()
	writeSummary(*jsonPath, sum)

	st := sum.Stats
	fmt.Fprintf(os.Stderr, "kite-audit: done: sampled=%d skipped=%d judged=%d reads=%d dropped=%d evicted=%d prober-errors=%d\n",
		st.SampledOps, st.SkippedOps, st.JudgedEvents, st.CheckedReads, st.DroppedEvents, st.Evictions, p.errs.Load())
	fmt.Fprintln(os.Stderr, sum.Report.String())
	switch {
	case !sum.Report.OK():
		fmt.Fprintln(os.Stderr, "kite-audit: VIOLATIONS")
		os.Exit(1)
	case st.SampledOps == 0 || st.CheckedReads == 0:
		fmt.Fprintln(os.Stderr, "kite-audit: no coverage — the audit proved nothing")
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "kite-audit: PASSED")
}

// prober drives the verification-friendly workload: producer/consumer
// pairs over release/acquire flags with relaxed payloads, two contending
// FAA workers, and a CAS chain — the same shape the chaos workload uses,
// on a dedicated key range. All written values embed a run nonce so they
// are unique per key (the checker's census assumption); values from
// earlier runs resolve as census misses, which the partial-mode checker
// skips.
type prober struct {
	sc    *client.ShardedClient
	a     *audit.Auditor
	base  uint64
	nonce int64

	errs atomic.Uint64
	stop atomic.Bool
	wg   sync.WaitGroup
}

const (
	probePayloadKeys = 4
	probeFlagOff     = 1000
	probeFAAOff      = 2000
	probeCASOff      = 2001
)

func (p *prober) go_(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

func (p *prober) halt() {
	p.stop.Store(true)
	p.wg.Wait()
}

// lease opens an audited session, retrying while the deployment is
// unreachable.
func (p *prober) lease() kite.Session {
	for !p.stop.Load() {
		s, err := p.sc.NewSession()
		if err == nil {
			return p.a.Wrap(s)
		}
		p.errs.Add(1)
		time.Sleep(250 * time.Millisecond)
	}
	return nil
}

func (p *prober) release(s kite.Session) kite.Session {
	if s != nil {
		s.Close()
	}
	p.errs.Add(1)
	time.Sleep(100 * time.Millisecond)
	return p.lease()
}

func (p *prober) producer(i int) {
	s := p.lease()
	for r := 1; s != nil && !p.stop.Load(); r++ {
		ok := true
		for j := 0; j < probePayloadKeys; j++ {
			val := []byte(fmt.Sprintf("n%dp%dr%dk%d", p.nonce, i, r, j))
			if err := s.Write(p.base+uint64(i*16+j), val); err != nil {
				ok = false
				break
			}
		}
		if ok {
			flag := []byte(fmt.Sprintf("n%dp%dr%d", p.nonce, i, r))
			if err := s.ReleaseWrite(p.base+probeFlagOff+uint64(i), flag); err != nil {
				ok = false
			}
		}
		if !ok {
			s = p.release(s)
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *prober) consumer(i int) {
	s := p.lease()
	for s != nil && !p.stop.Load() {
		if _, err := s.AcquireRead(p.base + probeFlagOff + uint64(i)); err != nil {
			s = p.release(s)
			continue
		}
		bad := false
		for j := 0; j < probePayloadKeys; j++ {
			if _, err := s.Read(p.base + uint64(i*16+j)); err != nil {
				bad = true
				break
			}
		}
		if bad {
			s = p.release(s)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *prober) faa() {
	s := p.lease()
	for s != nil && !p.stop.Load() {
		if _, err := s.FAA(p.base+probeFAAOff, 1); err != nil {
			s = p.release(s)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *prober) cas() {
	s := p.lease()
	var expected []byte
	for i := 0; s != nil && !p.stop.Load(); i++ {
		next := []byte(fmt.Sprintf("n%dc%d", p.nonce, i))
		swapped, old, err := s.CompareAndSwap(p.base+probeCASOff, expected, next, false)
		switch {
		case err != nil:
			s = p.release(s)
		case swapped:
			expected = next
		default:
			expected = old
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeSummary(path string, sum *audit.Summary) {
	if path == "" {
		return
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("write summary: %v", err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fatalf("write summary: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kite-audit: "+format+"\n", args...)
	os.Exit(2)
}
