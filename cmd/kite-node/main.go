// Command kite-node runs one Kite replica over real UDP, for multi-process
// deployments (the in-process Cluster is the default for tests and
// benchmarks; this binary exercises the same node code over the datagram
// transport, which has exactly the RDMA-UD delivery contract the paper
// assumes: no reliability, protocol-level retries).
//
// A 3-replica local deployment serving external clients:
//
//	kite-node -id 0 -nodes 3 -base 7000 -client-addr :9000 &
//	kite-node -id 1 -nodes 3 -base 7000 -client-addr :9001 &
//	kite-node -id 2 -nodes 3 -base 7000 -client-addr :9002 &
//	kite-cli -addr 127.0.0.1:9000
//
// Every replica binds workers UDP ports starting at
// base+(group*16+id)*workers for replica-to-replica traffic — the port
// block is strided by the maximum group size (16), not the current -nodes,
// so replicas added later (-join) have well-known addresses that every peer
// derived at boot. With -client-addr, the replica additionally runs a
// session server on that UDP address: external processes connect with the
// kite/client package (or cmd/kite-cli) and lease the node's sessions to
// run operations remotely. With -demo, the node instead runs a small
// producer-consumer self-test through its local sessions once the
// deployment is up; otherwise it serves until interrupted.
//
// Sharded deployments run several independent replica groups over one key
// space (-groups G -group g): replica traffic stays inside each group, the
// session server advertises the node's (group, groups) to clients, and
// clients shard with client.DialSharded / kite-cli -addrs, one address per
// group. A 2-group × 2-replica deployment on one machine:
//
//	kite-node -groups 2 -group 0 -id 0 -nodes 2 -base 7000 -client-addr :9000 &
//	kite-node -groups 2 -group 0 -id 1 -nodes 2 -base 7000 -client-addr :9001 &
//	kite-node -groups 2 -group 1 -id 0 -nodes 2 -base 7000 -client-addr :9100 &
//	kite-node -groups 2 -group 1 -id 1 -nodes 2 -base 7000 -client-addr :9101 &
//	kite-cli -addrs 127.0.0.1:9000,127.0.0.1:9100
//
// Restarts: SIGHUP restarts the replica in place (state discarded, rejoin
// via the anti-entropy catch-up sweep, session server kept alive), and
// -rejoin boots a replacement process in catch-up mode when it re-enters a
// live deployment. Catch-up progress is logged once per second. See
// OPERATIONS.md for the full runbook.
//
// Durability: -wal-dir gives the replica a write-ahead log (plus periodic
// store snapshots) in that directory. A restarted process pointed at the
// same directory replays it before rejoining, recovering everything
// durable at the crash — including the boot incarnation, so -incarnation
// bookkeeping becomes automatic — and the rejoin sweep reconciles only
// what the replica missed while down. -fsync-interval sets the
// group-commit deadline (default 10ms; 0 means default, a negative value
// fsyncs before every acknowledgment); -snapshot-every sets the record
// count between snapshots. Memory-only (no -wal-dir) remains the default
// and matches the paper's evaluation. See OPERATIONS.md "Durability".
//
// Live membership: -join adds this replica to a RUNNING group. The flag
// names any existing member's client address; the new process asks that
// member to commit the grown configuration, then boots in catch-up mode
// under it and serves once covered. Removal is driven from the outside
// (kite-cli remove -node N against a surviving member); a replica that
// learns it has been removed logs the fact and exits. kite-cli members
// shows a group's configuration epoch and member set.
//
//	kite-node -id 3 -nodes 3 -base 7000 -join 127.0.0.1:9000 -client-addr :9003 &
//	kite-cli -addr 127.0.0.1:9000 members
//	kite-cli -addr 127.0.0.1:9000 remove 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kite/client"
	"kite/internal/core"
	"kite/internal/llc"
	"kite/internal/membership"
	"kite/internal/server"
	"kite/internal/transport"
)

func main() {
	var (
		id          = flag.Int("id", 0, "this replica's id (0..nodes-1)")
		nodes       = flag.Int("nodes", 3, "replication degree (per group)")
		groups      = flag.Int("groups", 1, "replica groups in the deployment (sharded key space)")
		group       = flag.Int("group", 0, "this replica's group (0..groups-1)")
		workers     = flag.Int("workers", 2, "workers per node (same on all nodes)")
		base        = flag.Int("base", 7000, "base UDP port; node i of group g binds base+(g*nodes+i)*workers...")
		host        = flag.String("host", "127.0.0.1", "bind/peer host")
		clientAddr  = flag.String("client-addr", "", "UDP address for the client session server (empty: no external clients)")
		clientMax   = flag.Int("client-sessions", 0, "max sessions leased to external clients (0: all)")
		rejoin      = flag.Bool("rejoin", false, "boot in catch-up mode: this replica is re-entering a LIVE deployment after losing its state (see OPERATIONS.md)")
		incarnation = flag.Uint("incarnation", 0, "boot incarnation of this replica id; every restart after a crash MUST pass a strictly higher value than the previous boot (see OPERATIONS.md)")
		join        = flag.String("join", "", "client address of an EXISTING member: commit a grown configuration that includes this replica, then boot in catch-up mode (live add; see OPERATIONS.md)")
		demo        = flag.Bool("demo", false, "run a producer-consumer self-test then exit")
		walDir      = flag.String("wal-dir", "", "write-ahead log directory for this replica (empty: memory-only, the paper's configuration); restarts pointed at the same directory recover from it")
		fsyncEvery  = flag.Duration("fsync-interval", 0, "WAL group-commit deadline (0: default 10ms; negative: fsync before every acknowledgment)")
		snapEvery   = flag.Int("snapshot-every", 0, "WAL records between store snapshots (0: default 65536; negative: never snapshot)")
	)
	flag.Parse()
	if *demo && *clientAddr != "" {
		// The demo drives the node's own sessions directly; leasing the
		// same sessions to external clients would break the one-submitter-
		// per-session contract.
		log.Fatal("kite-node: -demo and -client-addr are mutually exclusive")
	}
	if *groups < 1 || *group < 0 || *group >= *groups {
		log.Fatalf("kite-node: -group %d outside [0,%d)", *group, *groups)
	}

	// Replica traffic never crosses groups: each group owns a contiguous
	// port block, strided by the maximum group size so that replicas added
	// after boot (-join, ids beyond -nodes) have addresses every peer
	// already derived. The address book covers the whole id space — ports
	// of ids that never run are just dark.
	portOf := func(n, w int) int { return *base + (*group*llc.MaxNodes+n)**workers + w }
	listen := make([]string, *workers)
	for w := 0; w < *workers; w++ {
		listen[w] = fmt.Sprintf("%s:%d", *host, portOf(*id, w))
	}
	peers := make(map[uint8][]string)
	for n := 0; n < llc.MaxNodes; n++ {
		if n == *id {
			continue
		}
		addrs := make([]string, *workers)
		for w := 0; w < *workers; w++ {
			addrs[w] = fmt.Sprintf("%s:%d", *host, portOf(n, w))
		}
		peers[uint8(n)] = addrs
	}

	tr, err := transport.NewUDP(transport.UDPConfig{
		LocalNode: uint8(*id), Workers: *workers, Listen: listen, Peers: peers,
	})
	if err != nil {
		log.Fatalf("kite-node: transport: %v", err)
	}
	defer tr.Close()

	cfg := core.Config{Nodes: *nodes, Workers: *workers,
		// UDP RTTs are far above in-process latencies; widen the release
		// timeout accordingly so healthy deployments stay on the fast path.
		ReleaseTimeout: 20 * time.Millisecond,
		RetryInterval:  50 * time.Millisecond,
		WALDir:         *walDir,
		FsyncInterval:  *fsyncEvery,
		SnapshotEvery:  *snapEvery,
	}
	cfg.Incarnation = uint32(*incarnation)
	bootCfg := cfg
	bootCfg.Rejoin = *rejoin
	if *join != "" {
		// Live add: ask the named member to commit a configuration that
		// includes us, then boot under it in catch-up mode. The group's
		// writes start flowing to this replica the moment the config
		// commits; the sweep backfills everything older.
		boot, err := requestJoin(*join, uint8(*id))
		if err != nil {
			log.Fatalf("kite-node: join via %s: %v", *join, err)
		}
		log.Printf("kite-node %d: joining group at %v", *id, boot)
		bootCfg.Initial = boot
		bootCfg.Rejoin = true
	}
	nd, err := core.NewNode(uint8(*id), bootCfg, tr)
	if err != nil {
		log.Fatalf("kite-node: %v", err)
	}
	nd.Start()
	defer func() { nd.Stop() }()
	log.Printf("kite-node %d/%d (group %d/%d) up: %v", *id, *nodes, *group, *groups, listen)
	if nd.WALRestored() {
		log.Printf("kite-node %d: recovered from WAL (incarnation %d) — rejoining to sweep the delta", *id, nd.Incarnation())
	}
	if *rejoin || *join != "" || nd.WALRestored() {
		go logCatchup(nd, *id)
	}
	go watchRemoval(nd, *id)

	var srv *server.Server
	if *clientAddr != "" {
		srv, err = server.New(nd, server.Config{
			Addr: *clientAddr, MaxSessions: *clientMax,
			Groups: *groups, Group: *group,
		})
		if err != nil {
			log.Fatalf("kite-node: session server: %v", err)
		}
		defer srv.Close()
		log.Printf("kite-node %d: serving clients on %s", *id, srv.Addr())
	}

	if *demo {
		runDemo(nd, *id)
		return
	}
	// SIGHUP restarts the replica in place: the old node is crash-stopped
	// (its state discarded, as if the process had died), a fresh node of
	// the same id rejoins over the same sockets via the anti-entropy
	// catch-up sweep, and the session server — clients' dial target — is
	// rebound without ever going down. See OPERATIONS.md "Restarting a
	// replica" for what clients observe.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGHUP)
	for s := range sig {
		if s != syscall.SIGHUP {
			break
		}
		if *walDir != "" {
			log.Printf("kite-node %d: SIGHUP — restarting replica (recovering from WAL, rejoining)", *id)
		} else {
			log.Printf("kite-node %d: SIGHUP — restarting replica (state discarded, rejoining)", *id)
		}
		nd.Stop()
		rcfg := cfg
		rcfg.Rejoin = true
		// SIGHUP restarts stay in-process, so the successor incarnation is
		// derived locally; crash-restarts of the whole process must pass a
		// higher -incarnation instead.
		rcfg.Incarnation = nd.Incarnation() + 1
		// Rejoin under the configuration this incarnation last installed —
		// reconfigurations slept through are healed by the sweep (the config
		// key transfers like any key) and the epoch check's config exchange.
		rcfg.Initial = nd.View()
		next, err := core.NewNode(uint8(*id), rcfg, tr)
		if err != nil {
			log.Fatalf("kite-node: restart: %v", err)
		}
		next.Start()
		if srv != nil {
			srv.Rebind(next)
		}
		nd = next
		go logCatchup(next, *id)
		go watchRemoval(next, *id)
	}
	log.Printf("kite-node %d: shutting down", *id)
}

// requestJoin asks an existing member (by client address) to commit a
// configuration that includes node id, returning it.
func requestJoin(addr string, id uint8) (membership.Config, error) {
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return membership.Config{}, err
	}
	defer c.Close()
	epoch, nodes, err := c.Join(id)
	if err != nil {
		return membership.Config{}, err
	}
	cfg := membership.Config{Epoch: epoch}
	for _, n := range nodes {
		cfg.Members |= 1 << n
	}
	return cfg, nil
}

// watchRemoval notices the replica learning of its own removal (an
// installed configuration that excludes it) and exits the process: a
// removed replica's store no longer receives the group's writes, so there
// is nothing sound left for it to serve. The watcher dies quietly with its
// node incarnation on restarts.
func watchRemoval(nd *core.Node, id int) {
	for !nd.Removed() {
		if nd.Stopped() {
			return
		}
		time.Sleep(time.Second)
	}
	log.Printf("kite-node %d: removed from the group (epoch %d) — exiting; re-add with -join", id, nd.ConfigEpoch())
	nd.Stop()
	os.Exit(0)
}

// logCatchup narrates a rejoining replica's sweep: periodic progress while
// it runs, a summary when it completes. This is the operator's view of the
// catch-up (OPERATIONS.md "Reading catch-up progress").
func logCatchup(nd *core.Node, id int) {
	for !nd.AwaitCatchup(time.Second) {
		st := nd.Catchup()
		log.Printf("kite-node %d: catch-up in progress: %d items pulled (%d applied), %v elapsed",
			id, st.Pulled, st.Applied, st.Elapsed.Round(time.Millisecond))
	}
	st := nd.Catchup()
	if nd.Stopped() {
		// The node was restarted (or shut down) before its sweep finished;
		// the replacement incarnation runs its own sweep and its own logger.
		log.Printf("kite-node %d: catch-up aborted after %v (node stopped mid-sweep; %d items pulled)",
			id, st.Elapsed.Round(time.Millisecond), st.Pulled)
		return
	}
	log.Printf("kite-node %d: catch-up complete in %v: %d items pulled, %d applied — serving",
		id, st.Elapsed.Round(time.Millisecond), st.Pulled, st.Applied)
}

// runDemo drives a producer-consumer check through this node's sessions —
// the write and the flag propagate through real UDP quorums.
func runDemo(nd *core.Node, id int) {
	time.Sleep(500 * time.Millisecond) // let peers come up
	s := nd.Session(0)
	do := func(r *core.Request) *core.Request {
		done := make(chan struct{})
		r.Done = func(*core.Request) { close(done) }
		s.Submit(r)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			log.Fatalf("demo: %v timed out (are the peers running?)", r.Code)
		}
		return r
	}
	for i := uint64(0); i < 100; i++ {
		do(&core.Request{Code: core.OpWrite, Key: 1000 + i, Val: []byte(fmt.Sprintf("v%d", i))})
	}
	do(&core.Request{Code: core.OpRelease, Key: 2000, Val: []byte("ready")})
	got := do(&core.Request{Code: core.OpAcquire, Key: 2000})
	old := do(&core.Request{Code: core.OpFAA, Key: 3000, Delta: 1})
	log.Printf("demo on node %d: acquire(flag)=%q, FAA old=%d — UDP quorums working",
		id, got.Out, old.Uint64Out())
}
