// Command kite-bench regenerates the paper's evaluation (§8): every figure
// plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	kite-bench -fig 5              # throughput vs write ratio
//	kite-bench -fig 6              # Kite vs ZAB while varying synchronisation
//	kite-bench -fig 7              # write-only study incl. Derecho
//	kite-bench -fig 8              # lock-free data structures
//	kite-bench -fig 9              # failure study
//	kite-bench -fig recovery       # restart/rejoin study (Figure 9 extension)
//	kite-bench -fig reconfig       # live add/remove-replica study (membership)
//	kite-bench -fig timeout        # release-timeout ablation
//	kite-bench -fig fastpath       # fast-path on/off ablation
//	kite-bench -fig shard          # throughput vs replica-group count
//	kite-bench -fig durability     # WAL cost: off / group-commit / per-op fsync
//	kite-bench -fig latency        # per-class p50/p99 completion latency
//	kite-bench -fig all
//
// Scale knobs: -nodes, -workers, -sessions, -keys, -measure, -warmup.
// Sharding knobs: -groups G runs the Kite series of figures 5-7 over G
// independent replica groups of -nodes each (the structure, failure and
// ablation studies stay single-group); -fig shard sweeps the group count
// at a fixed machine total (-shard-total), and -json writes its
// machine-readable report (the format of BENCH_0.json, the committed
// baseline). Absolute numbers depend on the host; the paper-matching
// signal is the *shape*: orderings, ratios and crossovers (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"kite/internal/bench"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 5,6,7,8,9,recovery,reconfig,timeout,fastpath,shard,durability,latency,all")
		nodes      = flag.Int("nodes", 5, "replication degree (3-9)")
		groups     = flag.Int("groups", 1, "replica groups (sharded key space; figures 5-7 Kite series)")
		workers    = flag.Int("workers", 4, "worker goroutines per node")
		sessions   = flag.Int("sessions", 4, "sessions per worker")
		keys       = flag.Uint64("keys", 1<<17, "key-space size")
		measure    = flag.Duration("measure", 600*time.Millisecond, "measurement window per point")
		warmup     = flag.Duration("warmup", 150*time.Millisecond, "warmup per point")
		structs    = flag.Int("structs", 256, "data-structure instances (figure 8)")
		sleepFor   = flag.Duration("sleep", 400*time.Millisecond, "replica sleep (figure 9)")
		prefill    = flag.Int("prefill", 0, "keys prefilled before the recovery study (0: default 2^14)")
		shardTotal = flag.Int("shard-total", 4, "total machines of the shard scaling series (figure shard)")
		jsonPath   = flag.String("json", "", "write the selected figure's report as JSON to this path (shard/recovery/reconfig/durability/latency only; ignored with -fig all, where the reports would clobber each other)")
		auditRate  = flag.Float64("audit-sample", 0, "ride the online consistency auditor on the Kite throughput runs (figures 5-7), sampling keys at this rate in (0,1]; a reported violation fails the figure")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-bench: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	fc := bench.DefaultFigureConfig(os.Stdout)
	fc.Nodes = *nodes
	fc.Groups = *groups
	fc.Workers = *workers
	fc.SessionsPerWorker = *sessions
	fc.Keys = *keys
	fc.Measure = *measure
	fc.Warmup = *warmup
	fc.AuditSample = *auditRate

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "kite-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// A report is written only for an explicitly selected figure: under
	// -fig all the shard and recovery reports would overwrite each other
	// at the same path.
	reportPath := func() string {
		if *fig == "all" {
			return ""
		}
		return *jsonPath
	}

	run("5", func() error { return bench.Figure5(fc, nil) })
	run("6", func() error { return bench.Figure6(fc, nil) })
	run("7", func() error { return bench.Figure7(fc) })
	run("8", func() error { return bench.Figure8(fc, *structs, 0) })
	run("9", func() error { return bench.Figure9(fc, *sleepFor) })
	run("recovery", func() error {
		rep, err := bench.FigureRecovery(fc, *prefill)
		if err != nil {
			return err
		}
		return writeJSON(reportPath(), rep)
	})
	run("reconfig", func() error {
		rep, err := bench.FigureReconfig(fc, *prefill)
		if err != nil {
			return err
		}
		return writeJSON(reportPath(), rep)
	})
	run("timeout", func() error { return bench.AblationTimeout(fc, nil) })
	run("fastpath", func() error { return bench.AblationFastPath(fc) })
	run("shard", func() error {
		rep, err := bench.FigureShard(fc, *shardTotal, nil)
		if err != nil {
			return err
		}
		return writeJSON(reportPath(), rep)
	})
	run("durability", func() error {
		rep, err := bench.FigureDurability(fc)
		if err != nil {
			return err
		}
		return writeJSON(reportPath(), rep)
	})
	run("latency", func() error {
		rep, err := bench.FigureLatency(fc)
		if err != nil {
			return err
		}
		return writeJSON(reportPath(), rep)
	})
}

// writeJSON writes a figure's machine-readable report (the BENCH_<n>.json
// baseline format) when -json was given.
func writeJSON(path string, rep any) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
