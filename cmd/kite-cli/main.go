// Command kite-cli runs interactive operations against a Kite deployment
// through one node's session server (kite-node -client-addr).
//
// One-shot:
//
//	kite-cli -addr 127.0.0.1:9000 write 42 hello
//	kite-cli -addr 127.0.0.1:9000 read 42
//
// Interactive (REPL on stdin):
//
//	kite-cli -addr 127.0.0.1:9000
//	> write 1 hello
//	ok
//	> release 2 ready
//	ok
//	> acquire 2
//	"ready"
//	> faa 3 5
//	old=0
//	> cas 1 hello world
//	swapped=true old="hello"
//
// Commands: read k · write k v · release k v · acquire k · faa k d ·
// cas k expected new · casw k expected new (weak) · help · quit.
// Keys are uint64, values are byte strings (<= 64 bytes).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kite/client"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "session server address (kite-node -client-addr)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-operation timeout")
	)
	flag.Parse()

	c, err := client.Dial(*addr, client.Options{OpTimeout: *timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kite-cli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kite-cli: open session: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()

	if args := flag.Args(); len(args) > 0 {
		// One-shot command from the command line.
		if out, err := run(s, args); err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Println(out)
		}
		return
	}

	fmt.Printf("connected to %s (session %d); 'help' lists commands\n", *addr, s.ID())
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		args := strings.Fields(in.Text())
		if len(args) == 0 {
			continue
		}
		if args[0] == "quit" || args[0] == "exit" {
			return
		}
		out, err := run(s, args)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Println(out)
	}
}

const usage = `commands:
  read k              relaxed read
  write k v           relaxed write
  release k v         release write (one-way barrier)
  acquire k           acquire read (one-way barrier)
  faa k d             fetch-and-add d, prints the old counter
  cas k expected new  strong compare-and-swap
  casw k expected new weak compare-and-swap (may fail locally)
  help                this text
  quit                exit`

// run executes one parsed command against the session.
func run(s *client.Session, args []string) (string, error) {
	cmd := args[0]
	if cmd == "help" {
		return usage, nil
	}
	need := map[string]int{
		"read": 2, "write": 3, "release": 3, "acquire": 2,
		"faa": 3, "cas": 4, "casw": 4,
	}
	n, ok := need[cmd]
	if !ok {
		return "", fmt.Errorf("unknown command %q ('help' lists commands)", cmd)
	}
	if len(args) != n {
		return "", fmt.Errorf("%s takes %d arguments ('help' lists commands)", cmd, n-1)
	}
	key, err := strconv.ParseUint(args[1], 0, 64)
	if err != nil {
		return "", fmt.Errorf("bad key %q: %v", args[1], err)
	}
	switch cmd {
	case "read":
		v, err := s.Read(key)
		return fmt.Sprintf("%q", v), err
	case "write":
		return "ok", s.Write(key, []byte(args[2]))
	case "release":
		return "ok", s.ReleaseWrite(key, []byte(args[2]))
	case "acquire":
		v, err := s.AcquireRead(key)
		return fmt.Sprintf("%q", v), err
	case "faa":
		d, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			return "", fmt.Errorf("bad delta %q: %v", args[2], err)
		}
		old, err := s.FAA(key, d)
		return fmt.Sprintf("old=%d", old), err
	case "cas", "casw":
		swapped, old, err := s.CompareAndSwap(key, []byte(args[2]), []byte(args[3]), cmd == "casw")
		return fmt.Sprintf("swapped=%v old=%q", swapped, old), err
	}
	return "", fmt.Errorf("unknown command %q", cmd)
}
