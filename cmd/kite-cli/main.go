// Command kite-cli runs interactive operations against a Kite deployment
// through one node's session server (kite-node -client-addr). It drives the
// unified kite.Session interface, so everything it can do works identically
// against any Session backend.
//
// One-shot:
//
//	kite-cli -addr 127.0.0.1:9000 write 42 hello
//	kite-cli -addr 127.0.0.1:9000 read 42
//
// Interactive (REPL on stdin):
//
//	kite-cli -addr 127.0.0.1:9000
//	> write 1 hello
//	ok
//	> release 2 ready
//	ok
//	> acquire 2
//	"ready"
//	> faa 3 5
//	old=0
//	> cas 1 hello world
//	swapped=true old="hello"
//	> batch write 10 a ; write 11 b ; read 10
//	[0] ok
//	[1] ok
//	[2] "a"
//
// Commands: read k · write k v · release k v · acquire k · faa k d ·
// cas k expected new · casw k expected new (weak) · batch cmd ; cmd ; ... ·
// help · quit. Keys are uint64, values are byte strings (<= 64 bytes).
// batch pipelines its sub-commands to the server in as few datagrams as
// possible — one round trip for the whole line.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kite"
	"kite/client"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "session server address (kite-node -client-addr)")
		addrs   = flag.String("addrs", "", "comma-separated session server addresses of a sharded deployment, one per group (overrides -addr)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-operation deadline")
	)
	flag.Parse()

	var (
		s     kite.Session
		where string
		// admin handles the membership commands (members/remove), which run
		// against one node's client connection rather than a session; nil in
		// sharded mode, where each group reconfigures separately (point
		// kite-cli -addr at a member of the group in question).
		admin func(args []string) (string, error)
	)
	if *addrs != "" {
		sc, err := client.DialSharded(strings.Split(*addrs, ","), client.Options{OpTimeout: *timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: %v\n", err)
			os.Exit(1)
		}
		defer sc.Close()
		sess, err := sc.NewSession()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: open session: %v\n", err)
			os.Exit(1)
		}
		s = sess
		where = fmt.Sprintf("%s (%d groups)", *addrs, sc.Groups())
	} else {
		c, err := client.Dial(*addr, client.Options{OpTimeout: *timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		if groups, group := c.ShardInfo(); groups > 1 {
			fmt.Fprintf(os.Stderr, "kite-cli: warning: %s is group %d of a %d-group deployment; this session only sees that group's share of the key space — pass -addrs with one address per group\n",
				*addr, group, groups)
		}
		sess, err := c.NewSession()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: open session: %v\n", err)
			os.Exit(1)
		}
		s = sess
		where = fmt.Sprintf("%s (session %d)", *addr, sess.ID())
		admin = func(args []string) (string, error) { return runAdmin(c, args) }
	}
	defer s.Close()

	if args := flag.Args(); len(args) > 0 {
		// One-shot command from the command line.
		if out, err := dispatch(s, admin, *timeout, args); err != nil {
			fmt.Fprintf(os.Stderr, "kite-cli: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Println(out)
		}
		return
	}

	fmt.Printf("connected to %s; 'help' lists commands\n", where)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		args := strings.Fields(in.Text())
		if len(args) == 0 {
			continue
		}
		if args[0] == "quit" || args[0] == "exit" {
			return
		}
		out, err := dispatch(s, admin, *timeout, args)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Println(out)
	}
}

const usage = `commands:
  read k              relaxed read
  write k v           relaxed write
  release k v         release write (one-way barrier)
  acquire k           acquire read (one-way barrier)
  faa k d             fetch-and-add d, prints the old counter
  cas k expected new  strong compare-and-swap
  casw k expected new weak compare-and-swap (may fail locally)
  flush               fence: wait until prior writes reach every replica
  batch c1 ; c2 ; ... pipeline data commands in one round trip (DoBatch)
  members             show the node's group membership (epoch + member ids)
  remove n            remove replica n from the node's group (live shrink)
  help                this text
  quit                exit`

// parseOp turns one parsed data command into an Op.
func parseOp(args []string) (kite.Op, error) {
	cmd := args[0]
	if cmd == "flush" {
		if len(args) != 1 {
			return kite.Op{}, fmt.Errorf("flush takes no arguments ('help' lists commands)")
		}
		return kite.FlushOp(), nil
	}
	need := map[string]int{
		"read": 2, "write": 3, "release": 3, "acquire": 2,
		"faa": 3, "cas": 4, "casw": 4,
	}
	n, ok := need[cmd]
	if !ok {
		return kite.Op{}, fmt.Errorf("unknown command %q ('help' lists commands)", cmd)
	}
	if len(args) != n {
		return kite.Op{}, fmt.Errorf("%s takes %d arguments ('help' lists commands)", cmd, n-1)
	}
	key, err := strconv.ParseUint(args[1], 0, 64)
	if err != nil {
		return kite.Op{}, fmt.Errorf("bad key %q: %v", args[1], err)
	}
	switch cmd {
	case "read":
		return kite.ReadOp(key), nil
	case "write":
		return kite.WriteOp(key, []byte(args[2])), nil
	case "release":
		return kite.ReleaseOp(key, []byte(args[2])), nil
	case "acquire":
		return kite.AcquireOp(key), nil
	case "faa":
		d, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			return kite.Op{}, fmt.Errorf("bad delta %q: %v", args[2], err)
		}
		return kite.FAAOp(key, d), nil
	default: // cas, casw
		return kite.CASOp(key, []byte(args[2]), []byte(args[3]), cmd == "casw"), nil
	}
}

// format renders one op's result.
func format(op kite.Op, r kite.Result) string {
	if r.Err != nil {
		return fmt.Sprintf("error: %v", r.Err)
	}
	switch op.Code {
	case kite.OpRead, kite.OpAcquire:
		return fmt.Sprintf("%q", r.Value)
	case kite.OpFAA:
		return fmt.Sprintf("old=%d", r.Uint64())
	case kite.OpCASWeak, kite.OpCASStrong:
		return fmt.Sprintf("swapped=%v old=%q", r.Swapped, r.Value)
	default:
		return "ok"
	}
}

// dispatch routes membership commands to the admin connection and
// everything else to the session.
func dispatch(s kite.Session, admin func([]string) (string, error), timeout time.Duration, args []string) (string, error) {
	switch args[0] {
	case "members", "remove":
		if admin == nil {
			return "", fmt.Errorf("%s needs a single-node connection: run kite-cli -addr <member of the group>", args[0])
		}
		return admin(args)
	}
	return run(s, timeout, args)
}

// runAdmin executes one membership command over the client connection.
func runAdmin(c *client.Client, args []string) (string, error) {
	switch args[0] {
	case "members":
		if len(args) != 1 {
			return "", fmt.Errorf("members takes no arguments")
		}
		if err := c.Refresh(); err != nil {
			return "", err
		}
		epoch, nodes := c.Members()
		return fmt.Sprintf("epoch=%d members=%v", epoch, nodes), nil
	case "remove":
		if len(args) != 2 {
			return "", fmt.Errorf("remove takes one argument (the replica id)")
		}
		id, err := strconv.ParseUint(args[1], 0, 8)
		if err != nil {
			return "", fmt.Errorf("bad replica id %q: %v", args[1], err)
		}
		epoch, nodes, err := c.RemoveMember(uint8(id))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("removed %d: epoch=%d members=%v", id, epoch, nodes), nil
	}
	return "", fmt.Errorf("unknown admin command %q", args[0])
}

// run executes one parsed command line against the session.
func run(s kite.Session, timeout time.Duration, args []string) (string, error) {
	if args[0] == "help" {
		return usage, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	if args[0] == "batch" {
		var ops []kite.Op
		for _, seg := range splitSegments(args[1:]) {
			op, err := parseOp(seg)
			if err != nil {
				return "", err
			}
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			return "", fmt.Errorf("batch needs at least one command (batch c1 ; c2 ; ...)")
		}
		results, err := s.DoBatch(ctx, ops)
		if results == nil {
			return "", err
		}
		var b strings.Builder
		for i, r := range results {
			fmt.Fprintf(&b, "[%d] %s", i, format(ops[i], r))
			if i < len(results)-1 {
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	}

	op, err := parseOp(args)
	if err != nil {
		return "", err
	}
	r, err := s.Do(ctx, op)
	if err != nil {
		return "", err
	}
	return format(op, r), nil
}

// splitSegments splits a batch command tail on ";" tokens.
func splitSegments(args []string) [][]string {
	var out [][]string
	var cur []string
	for _, a := range args {
		if a == ";" {
			if len(cur) > 0 {
				out = append(out, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, a)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
