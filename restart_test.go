// Restart/rejoin fault tests: a replica is killed mid-workload, restarted
// empty, and must catch up via the anti-entropy sweep before serving —
// after which the release-consistency contract must hold exactly as if it
// had never died. These run over all FOUR Session backends (in-process,
// loopback-UDP remote, and the 2-group sharded composition of each); the
// cross-shard variant additionally pins the fence semantics through a
// restart.
package kite_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"kite"
	"kite/internal/history"
	"kite/internal/verifier"
)

// TestConformanceRestartRejoin kills the last replica in the middle of a
// live workload, restarts it, waits for its catch-up sweep, and then
// requires a FRESH session on the rejoined replica to serve
// release-consistent state: the acquired flag, every payload key (from its
// own swept store), and the exactly-once RMW counter.
func TestConformanceRestartRejoin(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		victim := h.nodes - 1
		log := history.New()
		prod := log.Wrap(h.session(t, 0, 0))

		// Background load on another node keeps the deployment busy across
		// the kill/rejoin. Its relaxed writes broadcast to the victim too:
		// while the victim is down they pile up unacked (throttling the
		// writer), and the rejoining incarnation's acks release it — the
		// "buffers live traffic" half of the rejoin story.
		bg := log.Wrap(h.session(t, 1, 1))
		stopBG := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stopBG:
					return
				default:
				}
				if err := bg.Write(50_000+i%64, []byte("bg")); err != nil {
					t.Errorf("background write: %v", err)
					return
				}
			}
		}()
		defer func() { close(stopBG); wg.Wait() }()

		const payloadKeys = 10
		for k := uint64(0); k < payloadKeys; k++ {
			if err := prod.Write(100+k, []byte(fmt.Sprintf("payload-%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := prod.FAA(200, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.ReleaseWrite(300, []byte("go")); err != nil {
			t.Fatal(err)
		}
		// Fence: every payload write is at every replica, so the victim's
		// sweep sources can all serve it.
		if _, err := prod.Do(context.Background(), kite.FlushOp()); err != nil {
			t.Fatal(err)
		}

		h.restart(t, victim)
		h.await(t, victim)

		cons := log.Wrap(h.session(t, victim, 0))
		if v, err := cons.AcquireRead(300); err != nil || string(v) != "go" {
			t.Fatalf("acquire on rejoined replica = %q, %v", v, err)
		}
		// The payload reads' legality — each must expose the value covered by
		// the acquired release, from the rejoined replica's own swept store —
		// is judged by the shared verifier over the recorded history.
		for k := uint64(0); k < payloadKeys; k++ {
			if _, err := cons.Read(100 + k); err != nil {
				t.Fatalf("read(%d) on rejoined replica: %v", 100+k, err)
			}
		}
		// The RMW counter survived with exactly-once semantics: the next FAA
		// sees 3, not a replay or a reset.
		if old, err := cons.FAA(200, 0); err != nil || old != 3 {
			t.Fatalf("FAA on rejoined replica = %d, %v; want 3", old, err)
		}
		// And the rejoined replica serves new synchronisation normally.
		if err := cons.ReleaseWrite(301, []byte("post")); err != nil {
			t.Fatal(err)
		}
		if v, err := prod.AcquireRead(301); err != nil || string(v) != "post" {
			t.Fatalf("acquire of post-rejoin release = %q, %v", v, err)
		}
		if rep := verifier.Check(log.Snapshot()); !rep.OK() {
			t.Fatalf("restart/rejoin history violated consistency:\n%s", rep.String())
		}
	})
}

// TestRestartAcquireFallsBack pins the rejoin gating of the local-acquire
// fast path (DESIGN.md "Local reads"): every install path a restarted
// replica rebuilds its store through — WAL replay and the catch-up sweep —
// goes via Store.Apply, which leaves the valid bit clear. So a key that was
// being served locally before the crash must take the ABD quorum read on
// the rejoined incarnation's first acquire, and only fresh relaxed traffic
// (a new full-ack + validate broadcast) may put it back on the fast path.
func TestRestartAcquireFallsBack(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h *harness) {
		victim := h.nodes - 1
		prod := h.session(t, 0, 0)
		vic := h.session(t, victim, 0)

		// Warm the victim's valid bit: write a relaxed key and poll until an
		// acquire on the victim is served locally (full-ack + validate landed).
		if err := prod.Write(400, []byte("warm")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			before := h.stats(victim).LocalAcqHits
			v, err := vic.AcquireRead(400)
			if err != nil {
				t.Fatal(err)
			}
			if h.stats(victim).LocalAcqHits > before {
				// A local hit serves the validated (fully-acked) write.
				if string(v) != "warm" {
					t.Fatalf("local hit = %q, want %q", v, "warm")
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("victim never served key 400 locally: %+v", h.stats(victim))
			}
			time.Sleep(5 * time.Millisecond)
		}

		h.restart(t, victim)
		h.await(t, victim)

		// First acquire on the rejoined incarnation: the swept/replayed store
		// must not claim validity — the read pays the quorum round.
		cons := h.session(t, victim, 0)
		hits0, fb0 := h.stats(victim).LocalAcqHits, h.stats(victim).AcqFallbacks
		if v, err := cons.AcquireRead(400); err != nil || string(v) != "warm" {
			t.Fatalf("acquire on rejoined replica = %q, %v", v, err)
		}
		after := h.stats(victim)
		if after.AcqFallbacks <= fb0 {
			t.Fatalf("rejoined replica's first acquire did not fall back (fallbacks %d -> %d)",
				fb0, after.AcqFallbacks)
		}
		if after.LocalAcqHits != hits0 {
			t.Fatalf("rejoined replica served a replayed key locally (hits %d -> %d)",
				hits0, after.LocalAcqHits)
		}

		// Fresh relaxed traffic re-validates: the rejoined replica returns to
		// the fast path once a new write full-acks against the new member set.
		if err := prod.Write(400, []byte("again")); err != nil {
			t.Fatal(err)
		}
		deadline = time.Now().Add(20 * time.Second)
		for {
			before := h.stats(victim).LocalAcqHits
			v, err := cons.AcquireRead(400)
			if err != nil {
				t.Fatal(err)
			}
			if h.stats(victim).LocalAcqHits > before {
				if string(v) != "again" {
					t.Fatalf("local hit after rejoin = %q, want %q", v, "again")
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rejoined replica never re-entered the fast path: %+v", h.stats(victim))
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestCrossShardRestartFence pins the sharding requirement of the rejoin
// design: a replica restarted in the payload's group must not let the
// cross-shard release fence pass before it has truly applied the session's
// writes. The producer writes to group A while A's replica on the victim
// machine is mid-rejoin, then releases in group B; when a consumer's
// acquire in B observes the flag, a plain read of the group-A payload —
// served by any replica, including the rejoined one — must succeed with no
// retry loop.
func TestCrossShardRestartFence(t *testing.T) {
	forEachShardedBackend(t, func(t *testing.T, h *shardHarness) {
		kA := firstKeyIn(t, h, 0, 10_000) // payload: group A
		kB := firstKeyIn(t, h, 1, 20_000) // flag: group B
		victim := h.nodes - 1

		prod := h.session(t, 0, 0)
		if err := prod.Write(kA, []byte("seed")); err != nil {
			t.Fatal(err)
		}
		h.restart(t, victim)

		// Write the payload and release WHILE the victim machine is (very
		// likely still) rejoining: the release's fence must wait for the
		// rejoining replica's genuine apply+ack, never count it early.
		payload := []byte("post-restart-payload")
		if err := prod.Write(kA, payload); err != nil {
			t.Fatal(err)
		}
		if err := prod.ReleaseWrite(kB, []byte("go")); err != nil {
			t.Fatal(err)
		}

		h.await(t, victim)
		cons := h.session(t, victim, 0)
		deadline := time.Now().Add(20 * time.Second)
		for {
			v, err := cons.AcquireRead(kB)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == "go" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flag never visible (last %q)", v)
			}
		}
		if v, err := cons.Read(kA); err != nil || !bytes.Equal(v, payload) {
			t.Fatalf("cross-shard RC violation across restart: read(%d) = %q, %v; want %q",
				kA, v, err, payload)
		}
	})
}
