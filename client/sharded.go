package client

import (
	"errors"
	"fmt"

	"kite"
	"kite/internal/shard"
)

// ErrShardMap: the nodes dialed by DialSharded disagree with the supplied
// shard map (wrong group count, a node in the wrong slot, or a mix of
// sharded and unsharded nodes).
var ErrShardMap = errors.New("kite/client: shard map mismatch")

// ShardedClient is one connection per replica group of a sharded
// deployment, composed so that sessions opened from it span the whole key
// space. Dial it with DialSharded.
type ShardedClient struct {
	clients []*Client
	m       shard.Map
}

// DialSharded connects to one node of every replica group of a sharded
// deployment: addrs[g] must be the client address of a group-g node
// (kite-node -groups G -group g -client-addr ...). The shard map is
// verified against each node's ping reply — every node must report G ==
// len(addrs) groups and its slot's group index — so a mis-wired address
// list fails at dial time with ErrShardMap instead of silently routing
// keys to the wrong group. A single address is the unsharded case and is
// equivalent to Dial.
func DialSharded(addrs []string, opts Options) (*ShardedClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("kite/client: DialSharded needs at least one address")
	}
	sc := &ShardedClient{m: shard.NewMap(len(addrs))}
	for g, addr := range addrs {
		c, err := Dial(addr, opts)
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.clients = append(sc.clients, c)
		groups, group := c.ShardInfo()
		if groups != len(addrs) || group != g {
			sc.Close()
			return nil, fmt.Errorf("%w: %s reports group %d of %d, want group %d of %d",
				ErrShardMap, addr, group, groups, g, len(addrs))
		}
	}
	return sc, nil
}

// Groups returns the number of replica groups.
func (sc *ShardedClient) Groups() int { return len(sc.clients) }

// GroupOf reports which replica group owns key.
func (sc *ShardedClient) GroupOf(key uint64) int { return sc.m.Group(key) }

// Client exposes the group-g connection (diagnostics, ShardInfo).
func (sc *ShardedClient) Client(g int) *Client { return sc.clients[g] }

// NewSession leases one session on every group's node and composes them
// into a single kite.Session over the whole key space: relaxed accesses
// and acquires route to the key's group; releases and RMWs fence the
// session's writes in every other touched group first (see
// kite/internal/shard). Closing the session releases every lease.
func (sc *ShardedClient) NewSession() (kite.Session, error) {
	subs := make([]kite.Session, len(sc.clients))
	for g, c := range sc.clients {
		s, err := c.NewSession()
		if err != nil {
			for _, open := range subs[:g] {
				open.Close()
			}
			return nil, fmt.Errorf("kite/client: lease on group %d: %w", g, err)
		}
		subs[g] = s
	}
	return shard.New(subs, sc.m), nil
}

// Close releases every group connection.
func (sc *ShardedClient) Close() error {
	var first error
	for _, c := range sc.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
