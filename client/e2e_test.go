// End-to-end tests: a real multi-process-shaped deployment — three core
// nodes exchanging replica traffic over loopback UDP, each fronted by a
// session server — driven purely through the public client API.
package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"kite"
	"kite/client"
	"kite/internal/proto"
	"kite/internal/testcluster"
)

// reservePorts grabs n free loopback UDP ports. The sockets are closed
// before use, so a clashing process could steal one — fine for tests.
func reservePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	conns := make([]*net.UDPConn, n)
	for i := range ports {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

type cluster struct{ *testcluster.Cluster }

// addr returns node i's client-facing address.
func (cl *cluster) addr(i int) string { return cl.Addr(i) }

// startCluster brings up n replicas over loopback UDP, each with a session
// server on an ephemeral port (shared harness: internal/testcluster).
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	return &cluster{testcluster.Start(t, n)}
}

func testOpts() client.Options {
	return client.Options{
		DialTimeout:   2 * time.Second,
		OpTimeout:     15 * time.Second,
		RetryInterval: 25 * time.Millisecond,
	}
}

// TestE2EProducerConsumer runs the DRF handoff pattern across processes'
// worth of machinery: producer writes on node 0, signals with a release;
// consumer acquires the flag on node 1 and must observe every prior write.
func TestE2EProducerConsumer(t *testing.T) {
	cl := startCluster(t, 3)

	prodC, err := client.Dial(cl.addr(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer prodC.Close()
	consC, err := client.Dial(cl.addr(1), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer consC.Close()

	prod, err := prodC.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	cons, err := consC.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	const nKeys = 20
	const flagKey = 10_000
	for i := uint64(0); i < nKeys; i++ {
		if err := prod.Write(100+i, []byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := prod.ReleaseWrite(flagKey, []byte("ready")); err != nil {
		t.Fatalf("release: %v", err)
	}

	// The release is visible once written; the consumer spins on acquire.
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err := cons.AcquireRead(flagKey)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if string(v) == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flag never became visible (last %q)", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Release consistency: after the acquire reads the release, every
	// prior write of the producer must be visible to relaxed reads here.
	for i := uint64(0); i < nKeys; i++ {
		v, err := cons.Read(100 + i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := fmt.Sprintf("data-%d", i); string(v) != want {
			t.Fatalf("read key %d = %q, want %q", 100+i, v, want)
		}
	}
}

// TestE2EFAA checks RMW atomicity across client sessions on different
// nodes: concurrent FAAs must return distinct old values covering exactly
// the range, and the counter must end at the sum.
func TestE2EFAA(t *testing.T) {
	cl := startCluster(t, 3)
	const perSession = 10
	const counterKey = 777

	var mu sync.Mutex
	olds := map[uint64]bool{}
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		c, err := client.Dial(cl.addr(n), testOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		s, err := c.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *client.Session) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				old, err := s.FAA(counterKey, 1)
				if err != nil {
					t.Errorf("faa: %v", err)
					return
				}
				mu.Lock()
				if olds[old] {
					t.Errorf("duplicate FAA old value %d", old)
				}
				olds[old] = true
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := uint64(0); i < 2*perSession; i++ {
		if !olds[i] {
			t.Fatalf("FAA old value %d missing (got %v)", i, olds)
		}
	}
	// Verify the final count from a third node.
	c, err := client.Dial(cl.addr(2), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.FAA(counterKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	if old != 2*perSession {
		t.Fatalf("final counter = %d, want %d", old, 2*perSession)
	}
}

// TestE2EAsyncPipeline drives the async API: a burst of pipelined writes
// then an async read-back, all completing in order.
func TestE2EAsyncPipeline(t *testing.T) {
	cl := startCluster(t, 3)
	c, err := client.Dial(cl.addr(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	const n = 50
	errs := make(chan error, n+1)
	for i := uint64(0); i < n; i++ {
		s.DoAsync(kite.WriteOp(i, []byte{byte(i)}), func(r client.Result) { errs <- r.Err })
	}
	done := make(chan client.Result, 1)
	s.DoAsync(kite.FAAOp(999, 3), func(r client.Result) { done <- r })
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("async write: %v", err)
		}
	}
	r := <-done
	if r.Err != nil || client.DecodeUint64(r.Value) != 0 {
		t.Fatalf("async faa: %+v", r)
	}
	v, err := s.Read(n - 1)
	if err != nil || len(v) != 1 || v[0] != n-1 {
		t.Fatalf("read-back: %q, %v", v, err)
	}
}

// TestE2EDoBatchSingleFrame: DoBatch packs many ops into one request
// datagram (>= 2 ops per frame — the single-round-trip win), executes them
// in session order, and returns index-aligned results.
func TestE2EDoBatchSingleFrame(t *testing.T) {
	cl := startCluster(t, 3)
	c, err := client.Dial(cl.addr(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	ops := []kite.Op{
		kite.WriteOp(1, []byte("a")),
		kite.WriteOp(2, []byte("b")),
		kite.FAAOp(3, 5),
		kite.ReadOp(1),
		kite.FAAOp(3, 5),
	}
	results, err := s.DoBatch(context.Background(), ops)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(results), len(ops))
	}
	if got := client.DecodeUint64(results[2].Value); got != 0 {
		t.Fatalf("first faa old = %d, want 0", got)
	}
	if string(results[3].Value) != "a" {
		t.Fatalf("batched read = %q, want %q", results[3].Value, "a")
	}
	if got := client.DecodeUint64(results[4].Value); got != 5 {
		t.Fatalf("second faa old = %d, want 5 (batch order violated)", got)
	}
	// The whole batch left the client as ONE datagram: the server counted
	// all 5 ops as batched arrivals. A retransmission of the frame (lost
	// reply, scheduling stall) re-counts the same 5, so assert a whole
	// multiple rather than an exact count.
	got := cl.Servers[0].Stats().BatchedOps.Load()
	if got < uint64(len(ops)) || got%uint64(len(ops)) != 0 {
		t.Fatalf("BatchedOps = %d, want a positive multiple of %d (batch split into single-op frames?)", got, len(ops))
	}
	// Exactly-once even with retransmissions possible: the counter holds.
	if old, err := s.FAA(3, 0); err != nil || old != 10 {
		t.Fatalf("counter = %d, %v; want 10", old, err)
	}
}

// TestE2EDialErrors: dialling a dead address fails fast instead of hanging.
func TestE2EDialErrors(t *testing.T) {
	port := reservePorts(t, 1)[0]
	opts := testOpts()
	opts.DialTimeout = 400 * time.Millisecond
	_, err := client.Dial(fmt.Sprintf("127.0.0.1:%d", port), opts)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("dial error = %v, want ErrTimeout", err)
	}
}

// lossyProxy forwards datagrams between a client and a server, dropping
// server->client replies while drop() says so — simulating reply loss on
// the lossy link to force the client's retransmission path.
type lossyProxy struct {
	front *net.UDPConn // client talks to this
	back  *net.UDPConn // proxy talks to the server through this
	mu    sync.Mutex
	drops int // replies still to drop
}

func newLossyProxy(t *testing.T, serverAddr string, drops int) *lossyProxy {
	t.Helper()
	sa, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		t.Fatal(err)
	}
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	back, err := net.DialUDP("udp", nil, sa)
	if err != nil {
		t.Fatal(err)
	}
	p := &lossyProxy{front: front, back: back, drops: drops}
	t.Cleanup(func() { front.Close(); back.Close() })

	var clientAddr net.Addr
	var camu sync.Mutex
	go func() { // client -> server
		buf := make([]byte, 2048)
		for {
			n, ca, err := front.ReadFromUDP(buf)
			if err != nil {
				return
			}
			camu.Lock()
			clientAddr = ca
			camu.Unlock()
			back.Write(buf[:n])
		}
	}()
	go func() { // server -> client, dropping data replies while drops > 0
		buf := make([]byte, 2048)
		for {
			n, err := back.Read(buf)
			if err != nil {
				return
			}
			var rep proto.ClientReply
			isData := rep.Unmarshal(buf[:n]) == nil && rep.Flags&proto.ClientFlagControl == 0
			p.mu.Lock()
			drop := isData && p.drops > 0
			if drop {
				p.drops--
			}
			p.mu.Unlock()
			if drop {
				continue
			}
			camu.Lock()
			ca := clientAddr
			camu.Unlock()
			if ca != nil {
				front.WriteTo(buf[:n], ca)
			}
		}
	}()
	return p
}

func (p *lossyProxy) addr() string { return p.front.LocalAddr().String() }

// TestE2EDroppedRepliesRetry: the first replies to a FAA are lost in the
// network; the client's retransmissions must complete the op, and the
// server's dedup must keep it exactly-once.
func TestE2EDroppedRepliesRetry(t *testing.T) {
	cl := startCluster(t, 3)
	proxy := newLossyProxy(t, cl.addr(0), 3)

	opts := testOpts()
	opts.RetryInterval = 30 * time.Millisecond
	c, err := client.Dial(proxy.addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	old, err := s.FAA(42, 5)
	if err != nil {
		t.Fatalf("faa through lossy link: %v", err)
	}
	if old != 0 {
		t.Fatalf("faa old = %d, want 0", old)
	}
	// Exactly-once: despite >= 4 transmissions, the counter moved once.
	old, err = s.FAA(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if old != 5 {
		t.Fatalf("counter = %d after retried FAA, want 5", old)
	}
	if cl.Servers[0].Stats().Retransmits.Load() == 0 {
		t.Fatal("server saw no retransmits — proxy dropped nothing?")
	}
}

// TestE2EOversizedValue: an oversized payload is rejected client-side
// without consuming a sequence number, so the session keeps working (a
// swallowed seq would wedge the server's in-order submission forever).
func TestE2EOversizedValue(t *testing.T) {
	cl := startCluster(t, 3)
	c, err := client.Dial(cl.addr(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, make([]byte, client.MaxValueLen+1)); !errors.Is(err, client.ErrValueTooLong) {
		t.Fatalf("oversized write: %v, want ErrValueTooLong", err)
	}
	if _, _, err := s.CompareAndSwap(1, make([]byte, 100), []byte("x"), false); !errors.Is(err, client.ErrValueTooLong) {
		t.Fatalf("oversized comparand: %v, want ErrValueTooLong", err)
	}
	if err := s.Write(1, []byte("fits")); err != nil {
		t.Fatalf("write after rejected op: %v", err)
	}
	if v, err := s.Read(1); err != nil || string(v) != "fits" {
		t.Fatalf("read after rejected op: %q, %v", v, err)
	}
}

// TestE2ETimeoutBreaksSession: once an op times out, its seq is lost to
// the server's in-order gate, so the session reports itself broken instead
// of letting every later op time out too.
func TestE2ETimeoutBreaksSession(t *testing.T) {
	cl := startCluster(t, 3)
	proxy := newLossyProxy(t, cl.addr(0), 1_000_000) // drop all data replies

	opts := testOpts()
	opts.OpTimeout = 400 * time.Millisecond
	opts.RetryInterval = 30 * time.Millisecond
	c, err := client.Dial(proxy.addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Write(1, []byte("x")); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("write through dead link: %v, want ErrTimeout", err)
	}
	// Link heals, but the session is gone: seq 1 will never reach the
	// server, so later ops must fail fast rather than hang.
	proxy.mu.Lock()
	proxy.drops = 0
	proxy.mu.Unlock()
	if err := s.Write(2, []byte("y")); !errors.Is(err, client.ErrSessionBroken) {
		t.Fatalf("write after timeout: %v, want ErrSessionBroken", err)
	}
	// A fresh session on the same client works again.
	s2, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(3, []byte("z")); err != nil {
		t.Fatalf("write on fresh session: %v", err)
	}
}

// TestE2ENodeStopSurfacesErrStopped: stopping the node fails outstanding
// and subsequent client ops with ErrStopped (same error as in-process).
func TestE2ENodeStopSurfacesErrStopped(t *testing.T) {
	cl := startCluster(t, 3)
	c, err := client.Dial(cl.addr(2), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}

	cl.Nodes[2].Stop()
	if err := s.Write(2, []byte("y")); !errors.Is(err, client.ErrStopped) {
		t.Fatalf("write on stopped node: %v, want ErrStopped", err)
	}
}

// TestE2ESessionLifecycle: leases are finite, close frees them, and an
// expired/foreign session id surfaces ErrSessionExpired.
func TestE2ESessionLifecycle(t *testing.T) {
	cl := startCluster(t, 3)
	c, err := client.Dial(cl.addr(0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The node has 8 sessions; lease them all, the 9th open must fail.
	sessions := make([]*client.Session, 8)
	for i := range sessions {
		if sessions[i], err = c.NewSession(); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, err := c.NewSession(); !errors.Is(err, client.ErrNoCapacity) {
		t.Fatalf("9th open: %v, want ErrNoCapacity", err)
	}
	if err := sessions[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s, err := c.NewSession()
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := s.Write(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Ops on the closed session hit a dead lease.
	if err := sessions[0].Close(); err != nil {
		t.Fatalf("re-close: %v", err)
	}
	if _, err := sessions[1].Read(1); err != nil {
		t.Fatalf("read on live session: %v", err)
	}
}
