// Package client connects external processes to a Kite deployment. Dial one
// node's session server (started by kite-node -client-addr, or
// kite/internal/server in-process) and open sessions that mirror the
// top-level kite.Session API: Read/Write, ReleaseWrite/AcquireRead, FAA and
// CompareAndSwap, in synchronous and asynchronous flavours.
//
// The link to the server is UDP with the same delivery contract as Kite's
// replica-to-replica transport: datagrams may be lost, duplicated or
// reordered. The client retransmits unacknowledged requests every
// RetryInterval until OpTimeout; the server executes each (session, seq)
// exactly once and answers retransmissions from a reply cache, so retried
// writes and RMWs are safe. A session is a single logical thread of
// control: its synchronous methods must not be called concurrently, and its
// operations take effect in submission order regardless of datagram
// reordering.
package client

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/core"
	"kite/internal/proto"
)

// Errors returned by client operations.
var (
	// ErrTimeout: no reply within Options.OpTimeout (server down, network
	// partition, or the deployment lost its quorum).
	ErrTimeout = errors.New("kite/client: operation timed out")
	// ErrStopped: the node stopped before completing the op. Identical to
	// the error the in-process API surfaces (kite.ErrStopped).
	ErrStopped = core.ErrStopped
	// ErrSessionExpired: the server no longer knows this session (lease
	// expired after client silence, or the server restarted).
	ErrSessionExpired = errors.New("kite/client: session expired on server")
	// ErrSessionBroken: an earlier operation on this session timed out, so
	// a gap may exist in the server's in-order submission stream and no
	// later op of this session can complete. Open a new session.
	ErrSessionBroken = errors.New("kite/client: session broken by a timed-out operation; open a new session")
	// ErrNoCapacity: the node has no free session to lease.
	ErrNoCapacity = errors.New("kite/client: node has no free sessions")
	// ErrClosed: the Client was closed.
	ErrClosed = errors.New("kite/client: client closed")
	// ErrValueTooLong: a value or CAS comparand exceeds MaxValueLen.
	ErrValueTooLong = proto.ErrValueTooLong
)

// MaxValueLen is the largest value Kite stores.
const MaxValueLen = proto.MaxValueLen

// Options configure a Client. Zero values select defaults.
type Options struct {
	// DialTimeout bounds Dial's liveness probe (default 3s).
	DialTimeout time.Duration
	// OpTimeout bounds every operation, retries included (default 10s).
	OpTimeout time.Duration
	// RetryInterval is the retransmission period (default 50ms).
	RetryInterval time.Duration
	// MaxInflight caps outstanding operations per session; async submits
	// block once the window is full (default 64).
	MaxInflight int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	return o
}

// Result is the outcome of an asynchronous operation, mirroring
// kite.Result.
type Result struct {
	// Value is the operation's result value (read/acquire: the value read;
	// FAA/CAS: the previous value). Owned by the callback receiver.
	Value []byte
	// Swapped reports CAS success.
	Swapped bool
	// Err is non-nil when the op failed (ErrTimeout, ErrStopped,
	// ErrSessionExpired, ErrClosed).
	Err error
}

type pendingKey struct {
	sess uint32
	seq  uint64
}

// pendingOp is one unacknowledged request: its encoded datagram for
// retransmission, the completion callback, and the give-up deadline.
// Exactly one of cb (data ops) and ctrlCB (control ops) is set.
type pendingOp struct {
	frame    []byte
	deadline time.Time
	cb       func(Result)
	ctrlCB   func(rep *proto.ClientReply, err error)
	sess     *Session // nil for control ops
	seq      uint64
}

// Client is one connection to a node's session server. It is safe for
// concurrent use; sessions opened from it share the socket.
type Client struct {
	opts Options
	conn *net.UDPConn

	mu      sync.Mutex
	pending map[pendingKey]*pendingOp // data ops: key {sess, seq}
	control map[uint64]*pendingOp     // control ops: key seq
	ctrlSeq uint64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// Dial connects to a session server and verifies it is alive with a ping
// round (UDP alone cannot detect a dead peer). It fails with ErrTimeout
// wrapped in a dial error if nothing answers within DialTimeout.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("kite/client: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, fmt.Errorf("kite/client: dial %s: %w", addr, err)
	}
	c := &Client{
		opts:    opts,
		conn:    conn,
		pending: make(map[pendingKey]*pendingOp),
		control: make(map[uint64]*pendingOp),
		// Control seqs start at a random point so that a client whose
		// socket reuses a recently freed ephemeral port cannot collide
		// with its predecessor's (addr, seq) entries in the server's
		// open-dedup cache — nor match the predecessor's late replies.
		ctrlSeq: rand.Uint64(),
	}
	c.wg.Add(2)
	go c.recvLoop()
	go c.retryLoop()

	if _, err := c.controlRound(proto.ClientOpPing, 0, opts.DialTimeout); err != nil {
		c.Close()
		return nil, fmt.Errorf("kite/client: no session server at %s: %w", addr, err)
	}
	return c, nil
}

// Close releases the connection; outstanding and future operations fail
// with ErrClosed. Sessions of this client become unusable (their leases
// expire server-side).
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.conn.Close()
	c.wg.Wait()
	// Fail everything still outstanding. Data ops release their window
	// slot (via completed) so submitters blocked on a full window wake.
	c.mu.Lock()
	pending, control := c.pending, c.control
	c.pending, c.control = map[pendingKey]*pendingOp{}, map[uint64]*pendingOp{}
	c.mu.Unlock()
	for _, op := range pending {
		if op.sess != nil {
			op.sess.completed(op.seq)
		}
		op.fail(ErrClosed)
	}
	for _, op := range control {
		op.fail(ErrClosed)
	}
	return nil
}

func (op *pendingOp) fail(err error) {
	if op.ctrlCB != nil {
		op.ctrlCB(nil, err)
	} else if op.cb != nil {
		op.cb(Result{Err: err})
	}
}

// recvLoop demultiplexes replies to pending operations.
func (c *Client) recvLoop() {
	defer c.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return // closed
		}
		var rep proto.ClientReply
		if rep.Unmarshal(buf[:n]) != nil {
			continue
		}
		c.mu.Lock()
		var op *pendingOp
		if rep.Flags&proto.ClientFlagControl != 0 {
			if op = c.control[rep.Seq]; op != nil {
				delete(c.control, rep.Seq)
			}
		} else {
			k := pendingKey{sess: rep.Sess, seq: rep.Seq}
			if op = c.pending[k]; op != nil {
				delete(c.pending, k)
			}
		}
		c.mu.Unlock()
		if op == nil {
			continue // duplicate or stale reply
		}
		if op.sess != nil {
			op.sess.completed(op.seq)
		}
		c.complete(op, &rep)
	}
}

// statusErr maps a wire status to a client error (nil for ClientOK).
func statusErr(status uint8) error {
	switch status {
	case proto.ClientOK:
		return nil
	case proto.ClientErrStopped:
		return ErrStopped
	case proto.ClientErrNoSession:
		return ErrSessionExpired
	case proto.ClientErrNoCapacity:
		return ErrNoCapacity
	default:
		return fmt.Errorf("kite/client: server error %d", status)
	}
}

// complete maps a wire reply to the op's callback (on the receive
// goroutine — callbacks must not block).
func (c *Client) complete(op *pendingOp, rep *proto.ClientReply) {
	err := statusErr(rep.Status)
	if op.ctrlCB != nil {
		op.ctrlCB(rep, err)
		return
	}
	if op.cb == nil {
		return
	}
	res := Result{Swapped: rep.Flags&proto.ClientFlagSwapped != 0, Err: err}
	if err == nil && len(rep.Value) > 0 {
		res.Value = append([]byte(nil), rep.Value...)
	}
	op.cb(res)
}

// retryLoop retransmits unacknowledged requests and expires ops past their
// deadline — the reliability layer over the lossy datagram link.
func (c *Client) retryLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.RetryInterval)
	defer tick.Stop()
	for range tick.C {
		if c.closed.Load() {
			return
		}
		now := time.Now()
		var expired []*pendingOp
		c.mu.Lock()
		for k, op := range c.pending {
			if now.After(op.deadline) {
				delete(c.pending, k)
				expired = append(expired, op)
				continue
			}
			c.conn.Write(op.frame)
		}
		for k, op := range c.control {
			if now.After(op.deadline) {
				delete(c.control, k)
				expired = append(expired, op)
				continue
			}
			c.conn.Write(op.frame)
		}
		c.mu.Unlock()
		for _, op := range expired {
			if op.sess != nil {
				// The server will never see this seq again, so its
				// in-order gate would hold back every later op: the
				// session is unusable from here on.
				op.sess.broken.Store(true)
				op.sess.completed(op.seq)
			}
			op.fail(ErrTimeout)
		}
	}
}

// send registers op and transmits its frame once (retryLoop takes over).
// The closed check happens under the same lock Close snapshots the maps
// with, so an op either lands in the snapshot (and is failed by Close) or
// observes closed here — it cannot be registered and then orphaned.
func (c *Client) send(key pendingKey, ctrl bool, op *pendingOp) {
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		if op.sess != nil {
			op.sess.completed(op.seq)
		}
		op.fail(ErrClosed)
		return
	}
	if ctrl {
		c.control[key.seq] = op
	} else {
		c.pending[key] = op
	}
	c.mu.Unlock()
	c.conn.Write(op.frame)
}

// controlRound runs one synchronous control op (ping/open/close).
func (c *Client) controlRound(opCode uint8, sess uint32, timeout time.Duration) (uint32, error) {
	c.mu.Lock()
	c.ctrlSeq++
	seq := c.ctrlSeq
	c.mu.Unlock()
	req := proto.ClientRequest{Op: opCode, Sess: sess, Seq: seq}
	frame, err := req.AppendMarshal(nil)
	if err != nil {
		return 0, err
	}
	type ctrlRes struct {
		sess uint32
		err  error
	}
	done := make(chan ctrlRes, 1)
	c.send(pendingKey{seq: seq}, true, &pendingOp{
		frame:    frame,
		deadline: time.Now().Add(timeout),
		ctrlCB: func(rep *proto.ClientReply, err error) {
			var id uint32
			if rep != nil {
				id = rep.Sess
			}
			done <- ctrlRes{sess: id, err: err}
		},
	})
	r := <-done
	return r.sess, r.err
}

// NewSession leases a session on the server's node. Sessions are a finite
// node resource; Close them when done (crashed clients are reclaimed by the
// server's lease timeout).
func (c *Client) NewSession() (*Session, error) {
	id, err := c.controlRound(proto.ClientOpOpen, 0, c.opts.OpTimeout)
	if err != nil {
		return nil, err
	}
	return &Session{
		c:       c,
		id:      id,
		window:  make(chan struct{}, c.opts.MaxInflight),
		doneSet: make(map[uint64]struct{}),
	}, nil
}

// Session is an external client's ordered stream of operations, backed by
// one worker-owned session on the server's node. Synchronous methods must
// not be interleaved from multiple goroutines; asynchronous submissions are
// serialised internally and complete in submission order server-side.
type Session struct {
	c  *Client
	id uint32

	mu       sync.Mutex
	seq      uint64              // last assigned data seq
	frontier uint64              // every seq <= frontier has completed (acked to server)
	doneSet  map[uint64]struct{} // completed seqs above the frontier
	window   chan struct{}       // inflight slots (backpressure)

	closed atomic.Bool
	// broken is set when a data op times out: its seq will never reach
	// the server, so the server-side in-order gate blocks all later seqs.
	broken atomic.Bool
}

// ID reports the server-assigned session id (diagnostics).
func (s *Session) ID() uint32 { return s.id }

// Close releases the session lease (best effort — a lost datagram just
// means the lease expires on its own).
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	_, err := s.c.controlRound(proto.ClientOpClose, s.id, s.c.opts.RetryInterval*4)
	if errors.Is(err, ErrTimeout) {
		err = nil
	}
	return err
}

// completed records a finished seq and advances the ack frontier.
func (s *Session) completed(seq uint64) {
	s.mu.Lock()
	s.doneSet[seq] = struct{}{}
	for {
		if _, ok := s.doneSet[s.frontier+1]; !ok {
			break
		}
		delete(s.doneSet, s.frontier+1)
		s.frontier++
	}
	s.mu.Unlock()
	select {
	case <-s.window:
	default:
	}
}

// submit assigns the next seq, builds the frame and hands it to the client.
// It blocks while the session's inflight window is full.
func (s *Session) submit(req proto.ClientRequest, cb func(Result)) {
	if s.closed.Load() || s.c.closed.Load() {
		if cb != nil {
			cb(Result{Err: ErrClosed})
		}
		return
	}
	if s.broken.Load() {
		if cb != nil {
			cb(Result{Err: ErrSessionBroken})
		}
		return
	}
	// Reject oversized payloads before a seq is consumed: a seq that is
	// assigned but never transmitted would wedge the server's in-order
	// submission for the rest of the session.
	if len(req.Value) > MaxValueLen || len(req.Expected) > MaxValueLen {
		if cb != nil {
			cb(Result{Err: ErrValueTooLong})
		}
		return
	}
	s.window <- struct{}{} // acquire an inflight slot
	s.mu.Lock()
	s.seq++
	req.Sess = s.id
	req.Seq = s.seq
	req.Acked = s.frontier + 1
	s.mu.Unlock()
	frame, _ := req.AppendMarshal(nil) // cannot fail: payload sizes checked above
	s.c.send(pendingKey{sess: s.id, seq: req.Seq}, false, &pendingOp{
		frame:    frame,
		deadline: time.Now().Add(s.c.opts.OpTimeout),
		cb:       cb,
		sess:     s,
		seq:      req.Seq,
	})
}

func (s *Session) runSync(req proto.ClientRequest) (Result, error) {
	done := make(chan Result, 1)
	s.submit(req, func(r Result) { done <- r })
	r := <-done
	return r, r.Err
}

// Read performs a relaxed read. The returned slice is owned by the caller.
func (s *Session) Read(key uint64) ([]byte, error) {
	r, err := s.runSync(proto.ClientRequest{Op: proto.ClientOpRead, Key: key})
	return r.Value, err
}

// Write performs a relaxed write.
func (s *Session) Write(key uint64, val []byte) error {
	_, err := s.runSync(proto.ClientRequest{Op: proto.ClientOpWrite, Key: key, Value: val})
	return err
}

// ReleaseWrite performs a release: it takes effect only after all prior
// writes of this session are visible (one-way barrier).
func (s *Session) ReleaseWrite(key uint64, val []byte) error {
	_, err := s.runSync(proto.ClientRequest{Op: proto.ClientOpRelease, Key: key, Value: val})
	return err
}

// AcquireRead performs an acquire: accesses after it are ordered after it
// (one-way barrier). Releases/acquires are linearizable.
func (s *Session) AcquireRead(key uint64) ([]byte, error) {
	r, err := s.runSync(proto.ClientRequest{Op: proto.ClientOpAcquire, Key: key})
	return r.Value, err
}

// FAA atomically adds delta to the counter at key, returning the previous
// value. Counters are 8-byte little-endian; absent keys count as zero.
func (s *Session) FAA(key uint64, delta uint64) (old uint64, err error) {
	r, err := s.runSync(proto.ClientRequest{Op: proto.ClientOpFAA, Key: key, Delta: delta})
	return core.DecodeUint64(r.Value), err
}

// CompareAndSwap atomically replaces the value at key with newVal iff the
// current value equals expected, returning success and the previous value.
// The weak variant may complete locally on the node when the comparison
// fails — cheaper under contention, but a weak failure does not carry
// acquire semantics.
func (s *Session) CompareAndSwap(key uint64, expected, newVal []byte, weak bool) (swapped bool, old []byte, err error) {
	op := proto.ClientOpCASStrong
	if weak {
		op = proto.ClientOpCASWeak
	}
	r, err := s.runSync(proto.ClientRequest{Op: op, Key: key, Expected: expected, Value: newVal})
	return r.Swapped, r.Value, err
}

// ReadAsync issues a relaxed read; cb receives the value. Callbacks run on
// the client's receive goroutine and must not block.
func (s *Session) ReadAsync(key uint64, cb func(Result)) {
	s.submit(proto.ClientRequest{Op: proto.ClientOpRead, Key: key}, cb)
}

// WriteAsync issues a relaxed write; cb (optional) fires on completion.
// The value is copied into the wire frame before WriteAsync returns, so
// the caller may reuse its slice immediately.
func (s *Session) WriteAsync(key uint64, val []byte, cb func(Result)) {
	s.submit(proto.ClientRequest{Op: proto.ClientOpWrite, Key: key, Value: val}, cb)
}

// ReleaseWriteAsync issues a release write.
func (s *Session) ReleaseWriteAsync(key uint64, val []byte, cb func(Result)) {
	s.submit(proto.ClientRequest{Op: proto.ClientOpRelease, Key: key, Value: val}, cb)
}

// AcquireReadAsync issues an acquire read.
func (s *Session) AcquireReadAsync(key uint64, cb func(Result)) {
	s.submit(proto.ClientRequest{Op: proto.ClientOpAcquire, Key: key}, cb)
}

// FAAAsync issues a fetch-and-add.
func (s *Session) FAAAsync(key uint64, delta uint64, cb func(Result)) {
	s.submit(proto.ClientRequest{Op: proto.ClientOpFAA, Key: key, Delta: delta}, cb)
}

// CompareAndSwapAsync issues a CAS.
func (s *Session) CompareAndSwapAsync(key uint64, expected, newVal []byte, weak bool, cb func(Result)) {
	op := proto.ClientOpCASStrong
	if weak {
		op = proto.ClientOpCASWeak
	}
	s.submit(proto.ClientRequest{Op: op, Key: key, Expected: expected, Value: newVal}, cb)
}

// EncodeUint64 encodes a counter value in Kite's FAA/CAS convention
// (8-byte little-endian).
func EncodeUint64(x uint64) []byte { return core.EncodeUint64(x) }

// DecodeUint64 decodes a counter value; short or absent values read as zero.
func DecodeUint64(v []byte) uint64 { return core.DecodeUint64(v) }
