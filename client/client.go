// Package client connects external processes to a Kite deployment. Dial one
// node's session server (started by kite-node -client-addr, or
// kite/internal/server in-process) and open sessions implementing the
// unified kite.Session interface: Do/DoAsync/DoBatch over kite.Op values,
// plus the convenience methods (Read/Write, ReleaseWrite/AcquireRead, FAA,
// CompareAndSwap). Code written against kite.Session runs unchanged over
// this backend and the in-process cluster.
//
// The link to the server is UDP with the same delivery contract as Kite's
// replica-to-replica transport: datagrams may be lost, duplicated or
// reordered. The client retransmits unacknowledged requests every
// RetryInterval until OpTimeout; the server executes each (session, seq)
// exactly once and answers retransmissions from a reply cache, so retried
// writes and RMWs are safe. DoBatch pipelines many operations into a single
// request datagram — one round trip for a whole batch of relaxed accesses —
// while replies stay per-op so one lost reply costs one retransmission.
//
// A session is a single logical thread of control: its synchronous methods
// must not be called concurrently, and its operations take effect in
// submission order regardless of datagram reordering. Contexts cancel the
// wait for an operation, not the operation itself: a canceled op keeps
// retransmitting in the background until it is acknowledged or times out,
// which keeps the session's in-order stream intact (only a full OpTimeout
// expiry breaks the session).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/core"
	"kite/internal/membership"
	"kite/internal/proto"
	"kite/internal/transport"
)

// Errors returned by client operations. The operation-level taxonomy
// (ErrStopped, ErrValueTooLong, ErrCanceled, ErrSessionClosed) is shared
// with the in-process backend — test with errors.Is against the kite
// package sentinels.
var (
	// ErrTimeout: no reply within Options.OpTimeout (server down, network
	// partition, or the deployment lost its quorum).
	ErrTimeout = errors.New("kite/client: operation timed out")
	// ErrStopped: the node stopped before completing the op. Identical to
	// the error the in-process API surfaces (kite.ErrStopped).
	ErrStopped = kite.ErrStopped
	// ErrValueTooLong: a value or CAS comparand exceeds MaxValueLen.
	// Identical to kite.ErrValueTooLong.
	ErrValueTooLong = kite.ErrValueTooLong
	// ErrCanceled: the op's context expired. Identical to kite.ErrCanceled.
	ErrCanceled = kite.ErrCanceled
	// ErrSessionClosed: the session handle was closed by this client.
	// Identical to kite.ErrSessionClosed.
	ErrSessionClosed = kite.ErrSessionClosed
	// ErrSessionExpired: the server no longer knows this session (lease
	// expired after client silence, or the server restarted).
	ErrSessionExpired = errors.New("kite/client: session expired on server")
	// ErrSessionBroken: an earlier operation on this session timed out, so
	// a gap may exist in the server's in-order submission stream and no
	// later op of this session can complete. Open a new session.
	ErrSessionBroken = errors.New("kite/client: session broken by a timed-out operation; open a new session")
	// ErrNoCapacity: the node has no free session to lease.
	ErrNoCapacity = errors.New("kite/client: node has no free sessions")
	// ErrClosed: the Client was closed.
	ErrClosed = errors.New("kite/client: client closed")
	// ErrReconfigConflict: a Join/RemoveMember request lost a concurrent
	// reconfiguration (or was otherwise refused); re-read Members and retry
	// if still wanted.
	ErrReconfigConflict = errors.New("kite/client: reconfiguration conflict")
)

// MaxValueLen is the largest value Kite stores.
const MaxValueLen = proto.MaxValueLen

// Result is the outcome of an operation — the same type every backend
// uses.
type Result = kite.Result

// Options configure a Client. Zero values select defaults.
type Options struct {
	// DialTimeout bounds Dial's liveness probe (default 3s).
	DialTimeout time.Duration
	// OpTimeout bounds every operation's retransmission effort (default
	// 10s). It is the hard lifetime of a request on the wire; per-call
	// deadlines shorter than this come from the operation's context.
	OpTimeout time.Duration
	// RetryInterval is the retransmission period (default 50ms).
	RetryInterval time.Duration
	// MaxInflight caps outstanding operations per session; submissions
	// block once the window is full (default 64).
	MaxInflight int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	return o
}

type pendingKey struct {
	sess uint32
	seq  uint64
}

// batchGroup is the shared retransmission state of the ops of one batch
// frame: the frame is resent once per retry pass, not once per op.
type batchGroup struct {
	frame []byte
	pass  uint64 // last retry pass that resent the frame
}

// pendingOp is one unacknowledged request: its encoded datagram for
// retransmission, the completion callback, and the give-up deadline.
// Exactly one of cb (data ops) and ctrlCB (control ops) is set. cb is
// mutated only under Client.mu while the op is registered; it is cleared
// when the waiter detaches (context expiry) so the result is delivered at
// most once.
type pendingOp struct {
	frame    []byte
	batch    *batchGroup // nil for individually framed ops
	ctx      context.Context
	deadline time.Time
	cb       func(Result)
	ctrlCB   func(rep *proto.ClientReply, err error)
	sess     *Session // nil for control ops
	seq      uint64
}

// Client is one connection to a node's session server. It is safe for
// concurrent use; sessions opened from it share the socket.
type Client struct {
	opts Options
	conn *net.UDPConn
	// bc batches retry-pass retransmissions into sendmmsg calls on the
	// connected socket (falling back to per-datagram writes where the
	// batch syscalls are unavailable).
	bc *transport.BatchConn

	mu      sync.Mutex
	pending map[pendingKey]*pendingOp // data ops: key {sess, seq}
	control map[uint64]*pendingOp     // control ops: key seq
	ctrlSeq uint64
	pass    uint64 // retry pass counter (batch resend dedup)

	closed atomic.Bool
	wg     sync.WaitGroup

	// Node info learned from the server's ping replies (at Dial, and again
	// whenever a data reply carries ClientFlagReconfigured): the node's
	// replica-group count and index ((1, 0) for unsharded deployments),
	// plus its group's membership epoch and member bitmask. Guarded by mu —
	// pings can now race data traffic.
	groups  int
	group   int
	epoch   uint32
	members uint16
	// repinging collapses concurrent refresh triggers into one ping.
	repinging atomic.Bool
}

// Dial connects to a session server and verifies it is alive with a ping
// round (UDP alone cannot detect a dead peer). It fails with ErrTimeout
// wrapped in a dial error if nothing answers within DialTimeout.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("kite/client: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, fmt.Errorf("kite/client: dial %s: %w", addr, err)
	}
	c := &Client{
		opts:    opts,
		conn:    conn,
		bc:      transport.NewBatchConn(conn, nil),
		pending: make(map[pendingKey]*pendingOp),
		control: make(map[uint64]*pendingOp),
		// Control seqs start at a random point so that a client whose
		// socket reuses a recently freed ephemeral port cannot collide
		// with its predecessor's (addr, seq) entries in the server's
		// open-dedup cache — nor match the predecessor's late replies.
		ctrlSeq: rand.Uint64(),
	}
	c.wg.Add(2)
	go c.recvLoop()
	go c.retryLoop()

	if _, _, err := c.controlRound(proto.ClientOpPing, 0, 0, opts.DialTimeout); err != nil {
		c.Close()
		return nil, fmt.Errorf("kite/client: no session server at %s: %w", addr, err)
	}
	return c, nil
}

// ShardInfo reports the dialed node's place in its deployment, as
// advertised in the ping reply: the number of replica groups and this
// node's group index. Unsharded deployments report (1, 0). DialSharded
// uses it to validate a shard map; it is also useful for diagnostics.
func (c *Client) ShardInfo() (groups, group int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups, c.group
}

// Members reports the dialed node's replica-group membership as of the last
// ping: the configuration epoch and the member node ids. The client
// re-pings automatically when a reply signals a reconfiguration
// (ClientFlagReconfigured), so this tracks live AddNode/RemoveNode changes;
// call Refresh to force an update. Servers predating membership report
// (0, nil).
func (c *Client) Members() (epoch uint32, nodes []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range (membership.Config{Members: c.members}).MemberIDs() {
		nodes = append(nodes, int(id))
	}
	return c.epoch, nodes
}

// Refresh re-pings the server synchronously, updating ShardInfo/Members.
func (c *Client) Refresh() error {
	_, _, err := c.controlRound(proto.ClientOpPing, 0, 0, c.opts.OpTimeout)
	return err
}

// refreshAsync re-pings in the background (at most one in flight) — the
// reaction to a reply flagged ClientFlagReconfigured. Runs on the receive
// goroutine, so it must not block.
func (c *Client) refreshAsync() {
	if !c.repinging.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.repinging.Store(false)
		c.controlRound(proto.ClientOpPing, 0, 0, c.opts.OpTimeout)
	}()
}

// Join asks the dialed node to add replica id to its group, returning the
// committed membership. The joining replica must afterwards boot with this
// configuration in catch-up mode — this is the control half of
// kite-node -join; the call does not itself start anything.
func (c *Client) Join(id uint8) (epoch uint32, nodes []int, err error) {
	return c.reconfigRound(proto.ClientOpJoin, id)
}

// RemoveMember asks the dialed node to remove replica id from its group,
// returning the committed membership. Must be sent to a surviving member,
// not to the replica being removed.
func (c *Client) RemoveMember(id uint8) (epoch uint32, nodes []int, err error) {
	return c.reconfigRound(proto.ClientOpRemove, id)
}

func (c *Client) reconfigRound(op uint8, id uint8) (epoch uint32, nodes []int, err error) {
	_, val, err := c.controlRound(op, 0, uint64(id), c.opts.OpTimeout)
	if err != nil {
		return 0, nil, err
	}
	cfg, err := membership.Decode(val)
	if err != nil {
		return 0, nil, fmt.Errorf("kite/client: malformed membership reply: %w", err)
	}
	for _, m := range cfg.MemberIDs() {
		nodes = append(nodes, int(m))
	}
	return cfg.Epoch, nodes, nil
}

// Close releases the connection; outstanding and future operations fail
// with ErrClosed. Sessions of this client become unusable (their leases
// expire server-side).
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.conn.Close()
	c.wg.Wait()
	// Fail everything still outstanding. Data ops release their window
	// slot (via completed) so submitters blocked on a full window wake.
	c.mu.Lock()
	pending, control := c.pending, c.control
	c.pending, c.control = map[pendingKey]*pendingOp{}, map[uint64]*pendingOp{}
	c.mu.Unlock()
	for _, op := range pending {
		if op.sess != nil {
			op.sess.completed(op.seq)
		}
		op.fail(ErrClosed)
	}
	for _, op := range control {
		op.fail(ErrClosed)
	}
	return nil
}

func (op *pendingOp) fail(err error) {
	if op.ctrlCB != nil {
		op.ctrlCB(nil, err)
	} else if op.cb != nil {
		op.cb(Result{Err: err})
	}
}

// detach clears a registered op's callback (the waiter gave up on its
// context). The op keeps retransmitting until acknowledged or expired so
// the server's in-order stream sees its seq — detaching never breaks the
// session. Reports whether the op was still registered.
func (c *Client) detach(key pendingKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	op, ok := c.pending[key]
	if !ok {
		return false
	}
	op.cb = nil
	return true
}

// recvLoop demultiplexes replies to pending operations.
func (c *Client) recvLoop() {
	defer c.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return // closed
		}
		var rep proto.ClientReply
		if rep.Unmarshal(buf[:n]) != nil {
			continue
		}
		c.mu.Lock()
		var op *pendingOp
		if rep.Flags&proto.ClientFlagControl != 0 {
			if op = c.control[rep.Seq]; op != nil {
				delete(c.control, rep.Seq)
			}
		} else {
			k := pendingKey{sess: rep.Sess, seq: rep.Seq}
			if op = c.pending[k]; op != nil {
				delete(c.pending, k)
			}
		}
		c.mu.Unlock()
		if op == nil {
			continue // duplicate or stale reply
		}
		if op.sess != nil {
			op.sess.completed(op.seq)
		}
		c.complete(op, &rep)
	}
}

// statusErr maps a wire status to a client error (nil for ClientOK).
func statusErr(status uint8) error {
	switch status {
	case proto.ClientOK:
		return nil
	case proto.ClientErrStopped:
		return ErrStopped
	case proto.ClientErrNoSession:
		return ErrSessionExpired
	case proto.ClientErrNoCapacity:
		return ErrNoCapacity
	case proto.ClientErrConflict:
		return ErrReconfigConflict
	case proto.ClientErrReservedKey:
		return kite.ErrReservedKey
	default:
		return fmt.Errorf("kite/client: server error %d", status)
	}
}

// complete maps a wire reply to the op's callback (on the receive
// goroutine — callbacks must not block).
func (c *Client) complete(op *pendingOp, rep *proto.ClientReply) {
	err := statusErr(rep.Status)
	if op.ctrlCB != nil {
		op.ctrlCB(rep, err)
		return
	}
	if rep.Flags&proto.ClientFlagReconfigured != 0 {
		// The node's group reconfigured since this session last heard:
		// refresh the membership view in the background.
		c.refreshAsync()
	}
	if op.cb == nil {
		return
	}
	res := Result{Swapped: rep.Flags&proto.ClientFlagSwapped != 0, Err: err}
	if err == nil && len(rep.Value) > 0 {
		res.Value = append([]byte(nil), rep.Value...)
	}
	op.cb(res)
}

// retryLoop retransmits unacknowledged requests, expires ops past their
// deadline, and sweeps context-canceled ops — the reliability layer over
// the lossy datagram link, and the place per-op cancellation is observed
// for waiters that are not blocked in Do.
func (c *Client) retryLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.RetryInterval)
	defer tick.Stop()
	// Frames are immutable once registered, so the pass stages them under
	// the lock and flushes them in batched syscalls after releasing it (a
	// retransmission that races its reply is harmless — the server dedups).
	var dgs []transport.Datagram
	for range tick.C {
		if c.closed.Load() {
			return
		}
		now := time.Now()
		var expired []*pendingOp
		var canceled []func()
		dgs = dgs[:0]
		c.mu.Lock()
		c.pass++
		for k, op := range c.pending {
			if now.After(op.deadline) {
				delete(c.pending, k)
				expired = append(expired, op)
				continue
			}
			if op.ctx != nil && op.ctx.Err() != nil && op.cb != nil {
				// Context expired: release the waiter now, but keep the
				// op on the wire until it is acknowledged — its seq must
				// reach the server or the session breaks.
				cb, cause := op.cb, op.ctx.Err()
				op.cb = nil
				canceled = append(canceled, func() {
					cb(Result{Err: kite.CanceledErr(cause)})
				})
			}
			if op.batch != nil {
				if op.batch.pass == c.pass {
					continue // frame already resent this pass
				}
				op.batch.pass = c.pass
				dgs = append(dgs, transport.Datagram{Buf: op.batch.frame})
				continue
			}
			dgs = append(dgs, transport.Datagram{Buf: op.frame})
		}
		for k, op := range c.control {
			if now.After(op.deadline) {
				delete(c.control, k)
				expired = append(expired, op)
				continue
			}
			dgs = append(dgs, transport.Datagram{Buf: op.frame})
		}
		c.mu.Unlock()
		if len(dgs) > 0 {
			c.bc.WriteBatch(dgs) // nil Dest: the connected peer
		}
		for _, deliver := range canceled {
			deliver()
		}
		for _, op := range expired {
			if op.sess != nil {
				// The server will never see this seq again, so its
				// in-order gate would hold back every later op: the
				// session is unusable from here on.
				op.sess.broken.Store(true)
				op.sess.completed(op.seq)
			}
			op.fail(ErrTimeout)
		}
	}
}

// register installs op (or a batch of ops) and transmits the frame once
// (retryLoop takes over). The closed check happens under the same lock
// Close snapshots the maps with, so an op either lands in the snapshot
// (and is failed by Close) or observes closed here — it cannot be
// registered and then orphaned.
func (c *Client) register(frame []byte, ops []*pendingOp, keys []pendingKey) bool {
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		for _, op := range ops {
			if op.sess != nil {
				op.sess.completed(op.seq)
			}
			op.fail(ErrClosed)
		}
		return false
	}
	for i, op := range ops {
		if op.ctrlCB != nil {
			c.control[keys[i].seq] = op
		} else {
			c.pending[keys[i]] = op
		}
	}
	c.mu.Unlock()
	c.conn.Write(frame)
	return true
}

// controlRound runs one synchronous control op (ping/open/close and the
// membership ops, which carry a node id in key). It returns the reply's
// session id and a copy of its value.
func (c *Client) controlRound(opCode uint8, sess uint32, key uint64, timeout time.Duration) (uint32, []byte, error) {
	c.mu.Lock()
	c.ctrlSeq++
	seq := c.ctrlSeq
	c.mu.Unlock()
	req := proto.ClientRequest{Op: opCode, Sess: sess, Seq: seq, Key: key}
	frame, err := req.AppendMarshal(nil)
	if err != nil {
		return 0, nil, err
	}
	type ctrlRes struct {
		sess uint32
		val  []byte
		err  error
	}
	done := make(chan ctrlRes, 1)
	op := &pendingOp{
		frame:    frame,
		deadline: time.Now().Add(timeout),
		ctrlCB: func(rep *proto.ClientReply, err error) {
			var id uint32
			var val []byte
			if rep != nil {
				id = rep.Sess
				// rep.Value aliases the receive buffer; copy/decode before
				// handing the round back.
				val = append([]byte(nil), rep.Value...)
				if opCode == proto.ClientOpPing && err == nil {
					groups, group, epoch, members := proto.ParseNodeInfo(rep.Value)
					c.mu.Lock()
					c.groups, c.group = groups, group
					// Epoch-monotone install: a reordered or late reply
					// from an earlier ping must not regress the membership
					// view to a configuration the group already left.
					if members != 0 && (c.members == 0 || epoch > c.epoch) {
						c.epoch, c.members = epoch, members
					}
					c.mu.Unlock()
				}
			}
			done <- ctrlRes{sess: id, val: val, err: err}
		},
	}
	c.register(frame, []*pendingOp{op}, []pendingKey{{seq: seq}})
	r := <-done
	return r.sess, r.val, r.err
}

// NewSession leases a session on the server's node. Sessions are a finite
// node resource; Close them when done (crashed clients are reclaimed by the
// server's lease timeout). The returned session implements kite.Session.
func (c *Client) NewSession() (*Session, error) {
	id, _, err := c.controlRound(proto.ClientOpOpen, 0, 0, c.opts.OpTimeout)
	if err != nil {
		return nil, err
	}
	s := &Session{
		c:       c,
		id:      id,
		window:  make(chan struct{}, c.opts.MaxInflight),
		doneSet: make(map[uint64]struct{}),
	}
	s.Ops = kite.Ops{Doer: s}
	return s, nil
}

// Session is an external client's ordered stream of operations, backed by
// one worker-owned session on the server's node. It implements
// kite.Session. Synchronous methods must not be interleaved from multiple
// goroutines; asynchronous submissions are serialised internally and
// complete in submission order server-side.
type Session struct {
	kite.Ops
	c  *Client
	id uint32

	mu       sync.Mutex
	seq      uint64              // last assigned data seq
	frontier uint64              // every seq <= frontier has completed (acked to server)
	doneSet  map[uint64]struct{} // completed seqs above the frontier
	window   chan struct{}       // inflight slots (backpressure)

	closed atomic.Bool
	// broken is set when a data op times out: its seq will never reach
	// the server, so the server-side in-order gate blocks all later seqs.
	broken atomic.Bool
}

// ID reports the server-assigned session id (diagnostics).
func (s *Session) ID() uint32 { return s.id }

// Close releases the session lease (best effort — a lost datagram just
// means the lease expires on its own). Operations after Close fail with
// kite.ErrSessionClosed.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	_, _, err := s.c.controlRound(proto.ClientOpClose, s.id, 0, s.c.opts.RetryInterval*4)
	if errors.Is(err, ErrTimeout) {
		err = nil
	}
	return err
}

// completed records a finished seq and advances the ack frontier.
func (s *Session) completed(seq uint64) {
	s.mu.Lock()
	s.doneSet[seq] = struct{}{}
	for {
		if _, ok := s.doneSet[s.frontier+1]; !ok {
			break
		}
		delete(s.doneSet, s.frontier+1)
		s.frontier++
	}
	s.mu.Unlock()
	select {
	case <-s.window:
	default:
	}
}

// submitErr reports the session-state error that should fail a submission
// before it consumes a seq, or nil.
func (s *Session) submitErr() error {
	switch {
	case s.closed.Load():
		return ErrSessionClosed
	case s.c.closed.Load():
		return ErrClosed
	case s.broken.Load():
		return ErrSessionBroken
	default:
		return nil
	}
}

// validate rejects malformed ops before a seq is consumed: a seq that is
// assigned but never transmitted would wedge the server's in-order
// submission for the rest of the session. The rules (and errors) are the
// shared ones every backend enforces.
func validate(op kite.Op) error { return kite.ValidateOp(op) }

// acquireSlot takes one inflight-window slot, giving up if ctx expires
// first.
func (s *Session) acquireSlot(ctx context.Context) error {
	if ctx.Done() == nil {
		s.window <- struct{}{}
		return nil
	}
	select {
	case s.window <- struct{}{}:
		return nil
	case <-ctx.Done():
		return kite.CanceledErr(ctx.Err())
	}
}

// submit assigns the next seq, builds the frame and registers it with the
// client. It blocks while the session's inflight window is full. cb is
// invoked exactly once (possibly synchronously, on submission failure).
func (s *Session) submit(ctx context.Context, op kite.Op, cb func(Result)) (pendingKey, bool) {
	fail := func(err error) (pendingKey, bool) {
		if cb != nil {
			cb(Result{Err: err})
		}
		return pendingKey{}, false
	}
	if err := s.submitErr(); err != nil {
		return fail(err)
	}
	if err := validate(op); err != nil {
		return fail(err)
	}
	if err := s.acquireSlot(ctx); err != nil {
		return fail(err)
	}
	req := proto.ClientRequest{
		Op: uint8(op.Code), Key: op.Key, Delta: op.Delta,
		Expected: op.Expected, Value: op.Value,
	}
	s.mu.Lock()
	s.seq++
	req.Sess = s.id
	req.Seq = s.seq
	req.Acked = s.frontier + 1
	s.mu.Unlock()
	frame, _ := req.AppendMarshal(nil) // cannot fail: payload sizes checked above
	key := pendingKey{sess: s.id, seq: req.Seq}
	ok := s.c.register(frame, []*pendingOp{{
		frame:    frame,
		ctx:      ctx,
		deadline: time.Now().Add(s.c.opts.OpTimeout),
		cb:       cb,
		sess:     s,
		seq:      req.Seq,
	}}, []pendingKey{key})
	return key, ok
}

// Do executes op and blocks until it completes or ctx is done. On context
// expiry Do returns an error matching kite.ErrCanceled and the context
// cause; the request itself stays on the wire until acknowledged or until
// OpTimeout, so the session survives cancellation.
func (s *Session) Do(ctx context.Context, op kite.Op) (Result, error) {
	done := make(chan Result, 1)
	key, registered := s.submit(ctx, op, func(r Result) { done <- r })
	if !registered {
		r := <-done
		return r, r.Err
	}
	select {
	case r := <-done:
		return r, r.Err
	case <-ctx.Done():
		if !s.c.detach(key) {
			// The reply raced the cancellation; prefer the real result if
			// it has already been delivered.
			select {
			case r := <-done:
				return r, r.Err
			default:
			}
		}
		err := kite.CanceledErr(ctx.Err())
		return Result{Err: err}, err
	}
}

// DoAsync submits op and returns; cb (optional) receives the result on the
// client's receive goroutine and must not block. The op's slices are
// encoded into the wire frame before DoAsync returns, so the caller may
// reuse them immediately.
func (s *Session) DoAsync(op kite.Op, cb func(Result)) {
	s.submit(context.Background(), op, cb)
}

// DoBatch pipelines ops to the server in as few datagrams as possible
// (many ops per frame, consecutive seqs) and waits for all results —
// one round trip for a batch of relaxed accesses instead of one per op.
// Results are index-aligned with ops; the batch occupies consecutive
// positions in session order. If any op's payload is oversized the whole
// batch is rejected up front with ErrValueTooLong and no op executes.
func (s *Session) DoBatch(ctx context.Context, ops []kite.Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	// Validate everything before consuming any seq: batches are all-or-
	// nothing at the submission boundary.
	for _, op := range ops {
		if err := validate(op); err != nil {
			return nil, err
		}
	}
	type idxRes struct {
		i int
		r Result
	}
	done := make(chan idxRes, len(ops))
	results := make([]Result, len(ops))
	got := make([]bool, len(ops))
	keys := make([]pendingKey, 0, len(ops))

	chunkMax := proto.MaxBatchOps
	if chunkMax > s.c.opts.MaxInflight {
		chunkMax = s.c.opts.MaxInflight
	}

	submitted := 0
	for base := 0; base < len(ops); {
		n, ks, err := s.submitChunk(ctx, ops, base, chunkMax, func(i int, r Result) {
			done <- idxRes{i: i, r: r}
		})
		keys = append(keys, ks...)
		submitted += n
		base += n
		if err != nil {
			// Ops never submitted fail with the submission error; the
			// already-submitted prefix is collected below.
			for i := base; i < len(ops); i++ {
				results[i], got[i] = Result{Err: err}, true
			}
			break
		}
	}

	for n := 0; n < submitted; {
		select {
		case x := <-done:
			results[x.i], got[x.i] = x.r, true
			n++
		case <-ctx.Done():
			// Release the wait; the submitted ops stay on the wire (see
			// Do). Drain completions that raced in, mark the rest.
			for _, k := range keys {
				s.c.detach(k)
			}
			for n < submitted {
				select {
				case x := <-done:
					results[x.i], got[x.i] = x.r, true
					n++
					continue
				default:
				}
				break
			}
			cerr := kite.CanceledErr(ctx.Err())
			for i := range results {
				if !got[i] {
					results[i] = Result{Err: cerr}
				}
			}
			return results, cerr
		}
	}
	return results, firstBatchErr(results)
}

func firstBatchErr(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// submitChunk packs ops[base:] into one batch frame — bounded by chunkMax
// ops, the frame-size budget, and the inflight window — assigns their
// seqs and registers them as one retransmission group. It returns how many
// ops it submitted; cb receives (absolute index, result) per op.
func (s *Session) submitChunk(ctx context.Context, ops []kite.Op, base, chunkMax int, cb func(int, Result)) (int, []pendingKey, error) {
	if err := s.submitErr(); err != nil {
		return 0, nil, err
	}
	// Pack by count and frame budget.
	n, size := 0, proto.BatchOverhead
	for base+n < len(ops) && n < chunkMax {
		opLen := proto.BatchOp{Expected: ops[base+n].Expected, Value: ops[base+n].Value}.WireLen()
		if n > 0 && size+opLen > proto.MaxClientFrameLen {
			break
		}
		size += opLen
		n++
	}
	// Acquire one window slot per op before assigning seqs.
	for i := 0; i < n; i++ {
		if err := s.acquireSlot(ctx); err != nil {
			for j := 0; j < i; j++ { // return the slots we took
				<-s.window
			}
			return 0, nil, err
		}
	}
	b := proto.ClientBatch{Sess: s.id, Ops: make([]proto.BatchOp, n)}
	for i := 0; i < n; i++ {
		op := ops[base+i]
		b.Ops[i] = proto.BatchOp{
			Code: uint8(op.Code), Key: op.Key, Delta: op.Delta,
			Expected: op.Expected, Value: op.Value,
		}
	}
	s.mu.Lock()
	b.Seq = s.seq + 1
	s.seq += uint64(n)
	b.Acked = s.frontier + 1
	s.mu.Unlock()
	frame, err := b.AppendMarshal(nil)
	if err != nil { // cannot happen: ops validated by DoBatch
		for j := 0; j < n; j++ {
			<-s.window
		}
		return 0, nil, err
	}
	group := &batchGroup{frame: frame}
	pend := make([]*pendingOp, n)
	keys := make([]pendingKey, n)
	deadline := time.Now().Add(s.c.opts.OpTimeout)
	for i := 0; i < n; i++ {
		idx := base + i
		seq := b.Seq + uint64(i)
		pend[i] = &pendingOp{
			frame: frame, batch: group, ctx: ctx, deadline: deadline,
			cb:   func(r Result) { cb(idx, r) },
			sess: s, seq: seq,
		}
		keys[i] = pendingKey{sess: s.id, seq: seq}
	}
	s.c.register(frame, pend, keys)
	return n, keys, nil
}

// EncodeUint64 encodes a counter value in Kite's FAA/CAS convention
// (8-byte little-endian).
func EncodeUint64(x uint64) []byte { return core.EncodeUint64(x) }

// DecodeUint64 decodes a counter value; short or absent values read as zero.
func DecodeUint64(v []byte) uint64 { return core.DecodeUint64(v) }
