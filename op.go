package kite

import (
	"context"
	"errors"
	"fmt"

	"kite/internal/core"
)

// OpCode identifies a Kite API operation (Table 1 of the paper plus the RMW
// variants of §6.1). The numbering is shared with the wire protocol and the
// core execution layer.
type OpCode uint8

// The Kite operation set.
const (
	// OpRead is a relaxed read (Eventual Store: local in the common case).
	OpRead OpCode = iota
	// OpWrite is a relaxed write (Eventual Store: async broadcast).
	OpWrite
	// OpRelease is a release write — a one-way barrier: by the time it is
	// visible, every prior write of the session is visible (ABD).
	OpRelease
	// OpAcquire is an acquire read — a one-way barrier: accesses after it
	// see everything before the release it reads from (ABD).
	OpAcquire
	// OpFAA is an atomic fetch-and-add (per-key Paxos). Counters are 8-byte
	// little-endian; absent keys count as zero.
	OpFAA
	// OpCASWeak is a compare-and-swap that may fail locally when the
	// comparison fails against the local copy (§6.1) — cheaper under
	// contention, but a weak failure does not carry acquire semantics.
	OpCASWeak
	// OpCASStrong is a compare-and-swap that always checks remote replicas.
	OpCASStrong
	// OpFlush is a write-replication fence: it completes once every prior
	// relaxed write of the session is applied at every replica, and touches
	// no key. It is the building block of the sharding layer's cross-shard
	// release (a release in one replica group fences the session's writes in
	// every other group it touched), and is useful standalone when full
	// replication of prior writes must be certain without publishing a
	// value. Result carries no value.
	OpFlush
)

func (c OpCode) String() string { return core.OpCode(c).String() }

// Op is one Kite operation as a plain value: the single currency of the
// unified Session API. Fill the fields the op class uses and hand it to
// Do/DoAsync/DoBatch — the same value drives the in-process cluster and the
// remote client.
type Op struct {
	Code OpCode
	Key  uint64
	// Value is the write/release value, or the CAS new value.
	Value []byte
	// Expected is the CAS comparand.
	Expected []byte
	// Delta is the FAA addend.
	Delta uint64
}

// Convenience constructors for the operation set.

// ReadOp returns a relaxed read of key.
func ReadOp(key uint64) Op { return Op{Code: OpRead, Key: key} }

// WriteOp returns a relaxed write of val to key.
func WriteOp(key uint64, val []byte) Op { return Op{Code: OpWrite, Key: key, Value: val} }

// ReleaseOp returns a release write of val to key.
func ReleaseOp(key uint64, val []byte) Op { return Op{Code: OpRelease, Key: key, Value: val} }

// AcquireOp returns an acquire read of key.
func AcquireOp(key uint64) Op { return Op{Code: OpAcquire, Key: key} }

// FAAOp returns a fetch-and-add of delta on key.
func FAAOp(key uint64, delta uint64) Op { return Op{Code: OpFAA, Key: key, Delta: delta} }

// CASOp returns a compare-and-swap of key from expected to newVal; weak
// selects the locally-failing variant.
func CASOp(key uint64, expected, newVal []byte, weak bool) Op {
	code := OpCASStrong
	if weak {
		code = OpCASWeak
	}
	return Op{Code: code, Key: key, Expected: expected, Value: newVal}
}

// FlushOp returns a write-replication fence (no key, no value).
func FlushOp() Op { return Op{Code: OpFlush} }

// Result is the outcome of one operation, identical across backends.
type Result struct {
	// Value is the operation's result value (read/acquire: the value read;
	// FAA/CAS: the previous value). Owned by the receiver.
	Value []byte
	// Swapped reports CAS success.
	Swapped bool
	// Err is the operation's error (see the taxonomy below), nil on
	// success.
	Err error
}

// Uint64 decodes the result value as a counter (FAA convention: 8-byte
// little-endian, short or absent values read as zero).
func (r Result) Uint64() uint64 { return DecodeUint64(r.Value) }

// The shared error taxonomy. Both backends — the in-process cluster and the
// remote client — report these sentinels (possibly wrapped; test with
// errors.Is).
var (
	// ErrStopped: the node stopped before the operation completed.
	ErrStopped = core.ErrStopped
	// ErrValueTooLong: a value or CAS comparand exceeds MaxValueLen. The
	// operation is rejected at submission and has no effect.
	ErrValueTooLong = core.ErrValueTooLong
	// ErrCanceled: the operation's context was canceled or its deadline
	// expired before completion. Unless the backend can prove otherwise,
	// the operation MAY still take effect (it may already be executing, or
	// in flight to the server).
	ErrCanceled = core.ErrCanceled
	// ErrSessionClosed: the session handle was closed.
	ErrSessionClosed = errors.New("kite: session closed")
	// ErrBadOp: the Op carries a code outside the operation set. The
	// operation is rejected at submission and has no effect.
	ErrBadOp = errors.New("kite: bad op code")
	// ErrReservedKey: the Op targets the key reserved for the group's
	// membership configuration (the top of the key space). The operation
	// is rejected at submission and has no effect.
	ErrReservedKey = core.ErrReservedKey
)

// ValidateOp checks an Op against the submission rules every backend
// enforces before consuming a session-order slot: a known op code and
// payloads within MaxValueLen. Backends call it so malformed ops fail
// identically (ErrBadOp, ErrValueTooLong) regardless of deployment.
func ValidateOp(op Op) error {
	if op.Code > OpFlush {
		return fmt.Errorf("%w %d", ErrBadOp, op.Code)
	}
	if len(op.Value) > MaxValueLen || len(op.Expected) > MaxValueLen {
		return ErrValueTooLong
	}
	return nil
}

// canceledErr ties ErrCanceled to the context cause, so errors.Is matches
// both ErrCanceled and context.Canceled/DeadlineExceeded.
func canceledErr(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w (%w)", ErrCanceled, cause)
}

// CanceledErr wraps a context error into the shared taxonomy: the returned
// error satisfies errors.Is against both ErrCanceled and cause. Backends
// use it to report context expiry; applications rarely need it.
func CanceledErr(cause error) error { return canceledErr(cause) }

// Doer is the operation-submission core of a Session: one synchronous,
// one asynchronous and one batched entry point, all speaking Op/Result.
type Doer interface {
	// Do executes op and returns its result. It blocks until the operation
	// completes or ctx is done; on context expiry it returns a result whose
	// Err (also returned) matches ErrCanceled and the context cause. A
	// canceled operation may still take effect — cancellation abandons the
	// wait and, where possible, the execution, but cannot recall quorum
	// rounds already in flight.
	Do(ctx context.Context, op Op) (Result, error)
	// DoAsync submits op and returns immediately; cb (optional) receives
	// the result. Callbacks run on a backend-owned goroutine and must not
	// block. Value/Expected are copied before DoAsync returns, so the
	// caller may reuse its slices immediately.
	DoAsync(op Op, cb func(Result))
	// DoBatch executes ops and returns their results, index-aligned with
	// ops. The batch occupies consecutive positions in session order with
	// no other operation of this session interleaved, and ops execute in
	// slice order. The remote backend pipelines the whole batch — many ops
	// per wire frame, one round trip — making DoBatch the preferred way to
	// issue bulk relaxed accesses remotely. Validation is all-or-nothing:
	// if any op is malformed (ErrValueTooLong, ErrBadOp) the whole batch
	// is rejected up front — nil results, no op executes. After that,
	// batches are not transactions: each op commits individually, and the
	// returned error is the first per-op error in batch order (the
	// results are still returned), or a context error as in Do; on
	// context expiry ops not yet completed have Err matching ErrCanceled.
	DoBatch(ctx context.Context, ops []Op) ([]Result, error)
}

// Session is the unified Kite API: a single logical thread of control whose
// operations take effect in submission order (§2.1), with one method set
// shared by every deployment. kite.Cluster sessions (in-process) and
// client.Session (remote, UDP) both implement it, so data structures,
// examples and benchmarks run unchanged over either.
//
// Synchronous calls (Do, DoBatch and the convenience methods) must not be
// interleaved from multiple goroutines; DoAsync submissions are serialised
// internally and complete in submission order.
type Session interface {
	Doer

	// Read performs a relaxed read. The returned slice is owned by the
	// caller.
	Read(key uint64) ([]byte, error)
	// Write performs a relaxed write.
	Write(key uint64, val []byte) error
	// ReleaseWrite performs a release: it takes effect only after all
	// prior writes of this session are visible (one-way barrier, Table 1).
	ReleaseWrite(key uint64, val []byte) error
	// AcquireRead performs an acquire: accesses after it are ordered after
	// it (one-way barrier, Table 1). Releases/acquires are linearizable.
	AcquireRead(key uint64) ([]byte, error)
	// FAA atomically adds delta to the counter at key, returning the
	// previous value.
	FAA(key uint64, delta uint64) (old uint64, err error)
	// CompareAndSwap atomically replaces the value at key with newVal iff
	// the current value equals expected, returning success and the
	// previous value.
	CompareAndSwap(key uint64, expected, newVal []byte, weak bool) (swapped bool, old []byte, err error)
	// Close releases the session handle. In-process handles just become
	// unusable; remote sessions return their lease to the node. Operations
	// after Close fail with ErrSessionClosed.
	Close() error
}

// Ops derives Session's convenience methods from a Doer. Backends embed it
// (pointing it at themselves) so the sugar is written once:
//
//	type mySession struct {
//		kite.Ops
//		...
//	}
//	s := &mySession{...}
//	s.Ops = kite.Ops{Doer: s}
type Ops struct{ Doer }

// Read performs a relaxed read via Do.
func (o Ops) Read(key uint64) ([]byte, error) {
	r, err := o.Do(context.Background(), ReadOp(key))
	return r.Value, err
}

// Write performs a relaxed write via Do.
func (o Ops) Write(key uint64, val []byte) error {
	_, err := o.Do(context.Background(), WriteOp(key, val))
	return err
}

// ReleaseWrite performs a release write via Do.
func (o Ops) ReleaseWrite(key uint64, val []byte) error {
	_, err := o.Do(context.Background(), ReleaseOp(key, val))
	return err
}

// AcquireRead performs an acquire read via Do.
func (o Ops) AcquireRead(key uint64) ([]byte, error) {
	r, err := o.Do(context.Background(), AcquireOp(key))
	return r.Value, err
}

// FAA performs a fetch-and-add via Do.
func (o Ops) FAA(key uint64, delta uint64) (old uint64, err error) {
	r, err := o.Do(context.Background(), FAAOp(key, delta))
	return r.Uint64(), err
}

// CompareAndSwap performs a CAS via Do.
func (o Ops) CompareAndSwap(key uint64, expected, newVal []byte, weak bool) (swapped bool, old []byte, err error) {
	r, err := o.Do(context.Background(), CASOp(key, expected, newVal, weak))
	return r.Swapped, r.Value, err
}

// EncodeUint64 encodes a counter value in Kite's FAA/CAS convention
// (8-byte little-endian).
func EncodeUint64(x uint64) []byte { return core.EncodeUint64(x) }

// DecodeUint64 decodes a counter value; short or absent values read as zero.
func DecodeUint64(v []byte) uint64 { return core.DecodeUint64(v) }
