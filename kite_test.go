package kite

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Nodes: nodes, Workers: 2, SessionsPerWorker: 2, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIBasics(t *testing.T) {
	c := testCluster(t, 3)
	s := c.Session(0, 0)

	if v, err := s.Read(1); err != nil || v != nil {
		t.Fatalf("initial read = %v, %v", v, err)
	}
	if err := s.Write(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read(1); string(v) != "hello" {
		t.Fatalf("read = %q", v)
	}
	if err := s.ReleaseWrite(2, []byte("flag")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.AcquireRead(2); string(v) != "flag" {
		t.Fatalf("acquire = %q", v)
	}
	if old, err := s.FAA(3, 7); err != nil || old != 0 {
		t.Fatalf("faa = %d, %v", old, err)
	}
	if old, _ := s.FAA(3, 0); old != 7 {
		t.Fatalf("faa read = %d", old)
	}
	swapped, old, err := s.CompareAndSwap(4, nil, []byte("A"), false)
	if err != nil || !swapped || old != nil {
		t.Fatalf("cas = %v %q %v", swapped, old, err)
	}
	swapped, old, _ = s.CompareAndSwap(4, []byte("X"), []byte("B"), true)
	if swapped || string(old) != "A" {
		t.Fatalf("weak cas = %v %q", swapped, old)
	}
}

func TestPublicReleaseAcquireAcrossNodes(t *testing.T) {
	c := testCluster(t, 5)
	prod := c.Session(0, 0)
	cons := c.Session(4, 0)
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("obj-%d", i))
		if err := prod.Write(100, payload); err != nil {
			t.Fatal(err)
		}
		if err := prod.ReleaseWrite(101, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		for {
			v, err := cons.AcquireRead(101)
			if err != nil {
				t.Fatal(err)
			}
			if len(v) == 1 && v[0] == byte(i) {
				break
			}
		}
		if v, _ := cons.Read(100); !bytes.Equal(v, payload) {
			t.Fatalf("iter %d: consumer read %q want %q", i, v, payload)
		}
	}
}

func TestPublicAsyncAPI(t *testing.T) {
	c := testCluster(t, 3)
	s := c.Session(1, 0)
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.DoAsync(WriteOp(uint64(i), []byte{byte(i)}), func(r Result) {
			if r.Err != nil {
				t.Errorf("async write: %v", r.Err)
			}
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("async writes did not complete")
	}

	got := make(chan Result, 1)
	s.DoAsync(ReadOp(5), func(r Result) { got <- r })
	select {
	case r := <-got:
		if len(r.Value) != 1 || r.Value[0] != 5 {
			t.Fatalf("async read = %v", r.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async read did not complete")
	}
}

func TestPublicFaultInjection(t *testing.T) {
	c := testCluster(t, 5)
	prod := c.Session(0, 0)
	cons := c.Session(3, 0)

	c.Faults().CutLink(0, 3, true)
	if err := prod.Write(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := prod.ReleaseWrite(8, []byte("go")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cons.AcquireRead(8); string(v) != "go" {
		t.Fatalf("acquire under partition = %q", v)
	}
	if v, _ := cons.Read(7); string(v) != "x" {
		t.Fatalf("read under partition = %q (RC violation)", v)
	}
	if c.NodeStats(3).EpochBumps == 0 {
		t.Fatal("no slow-path transition recorded")
	}
	c.Faults().Clear()
}

func TestPublicPauseNode(t *testing.T) {
	c := testCluster(t, 5)
	c.PauseNode(4, 150*time.Millisecond)
	s := c.Session(0, 0)
	for i := uint64(0); i < 5; i++ {
		if err := s.ReleaseWrite(10+i, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if c.CompletedOps(0) == 0 {
		t.Fatal("no ops counted")
	}
	cl := c.OpClassCounts(0)
	if cl[2] != 5 {
		t.Fatalf("release count = %d", cl[2])
	}
}

func TestEncodeDecodeUint64(t *testing.T) {
	for _, x := range []uint64{0, 1, 255, 1 << 40, ^uint64(0)} {
		if got := DecodeUint64(EncodeUint64(x)); got != x {
			t.Fatalf("round trip %d -> %d", x, got)
		}
	}
	if DecodeUint64(nil) != 0 || DecodeUint64([]byte{5}) != 5 {
		t.Fatal("short decode")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewCluster(Options{Nodes: 99}); err == nil {
		t.Fatal("99 nodes accepted")
	}
}
