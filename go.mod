module kite

go 1.24
