package kite_test

import (
	"testing"
	"time"

	"kite"
	"kite/internal/bench"
	"kite/internal/derecho"
	"kite/internal/zab"
)

// The testing.B benchmarks mirror the paper's evaluation, one per
// table/figure series, at a scale that completes quickly. Each reports
// mreqs (million requests per second, the paper's unit) via ReportMetric;
// `go run ./cmd/kite-bench` regenerates the full figures.

const (
	benchMeasure = 300 * time.Millisecond
	benchWarmup  = 80 * time.Millisecond
)

func benchConfig() kite.Options {
	return kite.Options{Nodes: 5, Workers: 4, SessionsPerWorker: 4, Capacity: 1 << 16}
}

func runKiteBench(b *testing.B, mix bench.Mix) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.RunKite(bench.KiteOpts{
			Options: benchConfig(), Mix: mix, Keys: 1 << 16,
			Warmup: benchWarmup, Measure: benchMeasure,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Mreqs(), "mreqs")
	b.ReportMetric(0, "ns/op") // throughput benchmark; wall time is fixed
}

// --- Figure 5: throughput vs write ratio -------------------------------------

func BenchmarkFig5_ES_W5(b *testing.B)  { runKiteBench(b, bench.Mix{WriteRatio: 0.05}) }
func BenchmarkFig5_ES_W50(b *testing.B) { runKiteBench(b, bench.Mix{WriteRatio: 0.50}) }
func BenchmarkFig5_Kite_W5(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.05, SyncFrac: 0.05})
}
func BenchmarkFig5_Kite_W50(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.50, SyncFrac: 0.05})
}
func BenchmarkFig5_ABD_W5(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.05, SyncFrac: 1})
}
func BenchmarkFig5_ABD_W50(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.50, SyncFrac: 1})
}
func BenchmarkFig5_Paxos_W5(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.05, SyncFrac: 1, RMWFrac: 0.05})
}
func BenchmarkFig5_ZAB_W5(b *testing.B)  { runZabBench(b, 0.05) }
func BenchmarkFig5_ZAB_W50(b *testing.B) { runZabBench(b, 0.50) }

func runZabBench(b *testing.B, writeRatio float64) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		last = bench.RunZab(bench.ZabOpts{
			Config:     zab.Config{Nodes: 5, Workers: 4, SessionsPerWorker: 4, KVSCapacity: 1 << 16},
			WriteRatio: writeRatio, Keys: 1 << 16,
			Warmup: benchWarmup, Measure: benchMeasure,
		})
	}
	b.ReportMetric(last.Mreqs(), "mreqs")
	b.ReportMetric(0, "ns/op")
}

// --- Figure 6: Kite vs ZAB varying synchronisation ---------------------------

func BenchmarkFig6_Kite_W60_S20_R5(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.60, SyncFrac: 0.20, RMWFrac: 0.05})
}
func BenchmarkFig6_Kite_W60_S50_R50(b *testing.B) {
	runKiteBench(b, bench.Mix{WriteRatio: 0.60, SyncFrac: 0.50, RMWFrac: 0.50})
}

// --- Figure 7: write-only throughput -----------------------------------------

func BenchmarkFig7_KiteWrites(b *testing.B)   { runKiteBench(b, bench.Mix{WriteRatio: 1}) }
func BenchmarkFig7_KiteReleases(b *testing.B) { runKiteBench(b, bench.Mix{WriteRatio: 1, SyncFrac: 1}) }
func BenchmarkFig7_KiteRMWs(b *testing.B)     { runKiteBench(b, bench.Mix{WriteRatio: 1, RMWFrac: 1}) }
func BenchmarkFig7_ZABWrites(b *testing.B)    { runZabBench(b, 1) }

func BenchmarkFig7_DerechoOrdered(b *testing.B)   { runDerechoBench(b, derecho.Ordered) }
func BenchmarkFig7_DerechoUnordered(b *testing.B) { runDerechoBench(b, derecho.Unordered) }

func runDerechoBench(b *testing.B, mode derecho.Mode) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		last = bench.RunDerecho(bench.DerechoOpts{
			Config: derecho.Config{Nodes: 5, Mode: mode, KVSCapacity: 1 << 16},
			Keys:   1 << 16, Warmup: benchWarmup, Measure: benchMeasure,
		})
	}
	b.ReportMetric(last.Mreqs(), "mreqs")
	b.ReportMetric(0, "ns/op")
}

// --- Figure 8: lock-free data structures -------------------------------------

func runStructBench(b *testing.B, kind bench.StructKind, fields int, private bool) {
	b.Helper()
	var last bench.StructResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunStructs(bench.StructOpts{
			Kind: kind, Fields: fields,
			Options: kite.Options{Nodes: 5, Workers: 4, SessionsPerWorker: 4, Capacity: 1 << 16},
			Structs: 128, SessionsPerNode: 8, Private: private, WeakCAS: true,
			Warmup: benchWarmup, Measure: benchMeasure,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Mops()*1e3, "kops")
	b.ReportMetric(last.ReqsPerOp(), "reqs/op")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFig8_TS4(b *testing.B)       { runStructBench(b, bench.TreiberStack, 4, false) }
func BenchmarkFig8_TS32(b *testing.B)      { runStructBench(b, bench.TreiberStack, 32, false) }
func BenchmarkFig8_TS4_Ideal(b *testing.B) { runStructBench(b, bench.TreiberStack, 4, true) }
func BenchmarkFig8_MSQ4(b *testing.B)      { runStructBench(b, bench.MSQueue, 4, false) }
func BenchmarkFig8_MSQ32(b *testing.B)     { runStructBench(b, bench.MSQueue, 32, false) }
func BenchmarkFig8_HML4(b *testing.B)      { runStructBench(b, bench.HMList, 4, false) }

// --- Figure 9: failure study --------------------------------------------------

func BenchmarkFig9_FailureStudy(b *testing.B) {
	var last bench.FailureOutcome
	for i := 0; i < b.N; i++ {
		out, err := bench.RunFailureStudy(bench.FailureOpts{
			Options:  benchConfig(),
			Mix:      bench.Mix{WriteRatio: 0.05, SyncFrac: 0.05},
			Keys:     1 << 16,
			SleepFor: 200 * time.Millisecond, Total: 500 * time.Millisecond,
			SleepAt: 100 * time.Millisecond, SleepNode: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = out
	}
	b.ReportMetric(last.PreSleep, "mreqs-pre")
	b.ReportMetric(last.Intermediate, "mreqs-mid")
	b.ReportMetric(last.PostSleep, "mreqs-post")
	b.ReportMetric(0, "ns/op")
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationFastPathOff(b *testing.B) {
	var last bench.Result
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.DisableFastPath = true
		res, err := bench.RunKite(bench.KiteOpts{
			Options: cfg, Mix: bench.Mix{WriteRatio: 0.05, SyncFrac: 0.05},
			Keys: 1 << 16, Warmup: benchWarmup, Measure: benchMeasure,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Mreqs(), "mreqs")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkAblationStrongCASStack(b *testing.B) {
	var last bench.StructResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunStructs(bench.StructOpts{
			Kind: bench.TreiberStack, Fields: 4,
			Options: kite.Options{Nodes: 5, Workers: 4, SessionsPerWorker: 4, Capacity: 1 << 16},
			Structs: 128, SessionsPerNode: 8, WeakCAS: false, // strong CAS everywhere
			Warmup: benchWarmup, Measure: benchMeasure,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Mops()*1e3, "kops")
	b.ReportMetric(0, "ns/op")
}
