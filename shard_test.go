// Cross-shard ordering tests: the release-consistency contract must hold
// when the producer's writes and its release land in DIFFERENT replica
// groups of a sharded deployment. These run over both sharded backends
// (in-process and loopback UDP).
package kite_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"kite"
	"kite/client"
	"kite/internal/shard"
	"kite/internal/testcluster"
	"kite/sharded"
)

// shardHarness is one running 2-group sharded deployment plus key-routing
// knowledge.
type shardHarness struct {
	nodes   int
	session func(t *testing.T, node, sess int) kite.Session
	groupOf func(key uint64) int
	// restart crash-stops machine node (its replica in every group) and
	// rejoins a fresh incarnation; await blocks until every group's
	// catch-up sweep completed.
	restart func(t *testing.T, node int)
	await   func(t *testing.T, node int)
}

func forEachShardedBackend(t *testing.T, body func(t *testing.T, h *shardHarness)) {
	const groups, nodes = 2, 3
	m := shard.NewMap(groups)
	backends := []struct {
		name string
		make func(t *testing.T) *shardHarness
	}{
		{name: "inproc", make: func(t *testing.T) *shardHarness {
			c, err := sharded.NewCluster(groups, kite.Options{
				Nodes: nodes, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			return &shardHarness{
				nodes:   nodes,
				session: func(t *testing.T, node, sess int) kite.Session { return c.Session(node, sess) },
				groupOf: c.GroupOf,
				restart: func(t *testing.T, node int) {
					if err := c.RestartNode(node); err != nil {
						t.Fatalf("restart node %d: %v", node, err)
					}
				},
				await: func(t *testing.T, node int) {
					if !c.AwaitRejoin(node, 30*time.Second) {
						t.Fatalf("node %d still catching up", node)
					}
				},
			}
		}},
		{name: "remote", make: func(t *testing.T) *shardHarness {
			cl := testcluster.StartSharded(t, groups, nodes)
			clients := make([]*client.ShardedClient, nodes)
			for node := range clients {
				clients[node] = cl.DialSharded(t, node)
			}
			return &shardHarness{
				nodes: nodes,
				session: func(t *testing.T, node, sess int) kite.Session {
					s, err := clients[node].NewSession()
					if err != nil {
						t.Fatalf("lease sharded session on node %d: %v", node, err)
					}
					return s
				},
				groupOf: m.Group,
				restart: func(t *testing.T, node int) { cl.RestartNode(t, node) },
				await:   func(t *testing.T, node int) { cl.AwaitRejoin(t, node, 30*time.Second) },
			}
		}},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			body(t, be.make(t))
		})
	}
}

// firstKeyIn returns the first key >= start owned by group g.
func firstKeyIn(t *testing.T, h *shardHarness, g int, start uint64) uint64 {
	t.Helper()
	for k := start; k < start+1<<16; k++ {
		if h.groupOf(k) == g {
			return k
		}
	}
	t.Fatalf("no key of group %d near %d", g, start)
	return 0
}

// TestCrossShardReleaseAcquire is the sharded DRF handoff: the producer
// writes its payload into group A and releases a flag living in group B;
// a consumer on a different machine that acquires the flag from group B
// must then observe the payload in group A with a plain relaxed read.
func TestCrossShardReleaseAcquire(t *testing.T) {
	forEachShardedBackend(t, func(t *testing.T, h *shardHarness) {
		kA := firstKeyIn(t, h, 0, 10_000) // payload: group A
		kB := firstKeyIn(t, h, 1, 20_000) // flag: group B

		prod := h.session(t, 0, 0)
		cons := h.session(t, h.nodes-1, 0)
		payload := []byte("cross-shard-payload")
		if err := prod.Write(kA, payload); err != nil {
			t.Fatal(err)
		}
		if err := prod.ReleaseWrite(kB, []byte("go")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			v, err := cons.AcquireRead(kB)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == "go" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flag never visible (last %q)", v)
			}
		}
		// The acquire read the release, so the group-A write must already
		// be visible — first try, no retry loop.
		if v, err := cons.Read(kA); err != nil || !bytes.Equal(v, payload) {
			t.Fatalf("cross-shard RC violation: read(%d) = %q, %v; want %q", kA, v, err, payload)
		}
	})
}

// TestCrossShardManyWritesOneRelease stresses the fence with a spread of
// relaxed writes across both groups before a single release: every one of
// them must be visible to the post-acquire consumer.
func TestCrossShardManyWritesOneRelease(t *testing.T) {
	forEachShardedBackend(t, func(t *testing.T, h *shardHarness) {
		flag := firstKeyIn(t, h, 1, 50_000)
		prod := h.session(t, 0, 0)
		cons := h.session(t, h.nodes-1, 0)

		const n = 64
		base := uint64(30_000)
		for i := uint64(0); i < n; i++ {
			if err := prod.Write(base+i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.ReleaseWrite(flag, []byte("done")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			v, err := cons.AcquireRead(flag)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flag never visible (last %q)", v)
			}
		}
		for i := uint64(0); i < n; i++ {
			want := fmt.Sprintf("v%d", i)
			if v, err := cons.Read(base + i); err != nil || string(v) != want {
				t.Fatalf("key %d (group %d) = %q, %v; want %q after acquire",
					base+i, h.groupOf(base+i), v, err, want)
			}
		}
	})
}

// TestCrossShardRMWFence checks that RMWs carry the cross-shard release
// barrier too: a CAS in group B fences the session's earlier relaxed write
// in group A.
func TestCrossShardRMWFence(t *testing.T) {
	forEachShardedBackend(t, func(t *testing.T, h *shardHarness) {
		kA := firstKeyIn(t, h, 0, 60_000)
		kB := firstKeyIn(t, h, 1, 70_000)

		prod := h.session(t, 0, 0)
		cons := h.session(t, h.nodes-1, 0)
		if err := prod.Write(kA, []byte("guarded")); err != nil {
			t.Fatal(err)
		}
		if swapped, _, err := prod.CompareAndSwap(kB, nil, []byte("locked"), false); err != nil || !swapped {
			t.Fatalf("cas = %v, %v", swapped, err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			// The consumer takes the same lock path: a strong CAS that
			// fails observes the committed value with acquire semantics.
			swapped, old, err := cons.CompareAndSwap(kB, nil, []byte("mine"), false)
			if err != nil {
				t.Fatal(err)
			}
			if !swapped && string(old) == "locked" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("lock never visible (swapped=%v old=%q)", swapped, old)
			}
		}
		if v, err := cons.Read(kA); err != nil || string(v) != "guarded" {
			t.Fatalf("cross-shard RMW fence violation: read(%d) = %q, %v", kA, v, err)
		}
	})
}
