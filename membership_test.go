// Live-membership conformance tests: a replica group grows and shrinks
// WHILE a release-consistency workload runs against it, over both the
// in-process backend and the loopback-UDP remote backend. The contract
// under test is the acceptance bar of the membership work: no
// client-visible consistency violation at any point of the
// reconfiguration — an acquire that reads round r's flag must see every
// payload write that preceded round r's release, whichever configuration
// epoch either operation ran under — plus the public Members/AddNode/
// RemoveNode surface across kite.Cluster, sharded.Cluster, the client
// package and testcluster.
package kite_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kite"
	"kite/client"
	"kite/internal/history"
	"kite/internal/testcluster"
	"kite/internal/verifier"
	"kite/sharded"
)

// memberHarness is a deployment whose membership can change live.
type memberHarness struct {
	session func(t *testing.T, node, sess int) kite.Session
	addNode func(t *testing.T) int
	// awaitJoin gates on the added replica's catch-up sweep.
	awaitJoin  func(t *testing.T, node int)
	removeNode func(t *testing.T, node int)
	// members returns the current (epoch, ids).
	members func(t *testing.T) (uint32, []int)
}

func inprocMemberHarness(t *testing.T) *memberHarness {
	t.Helper()
	c, err := kite.NewCluster(kite.Options{
		Nodes: 3, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &memberHarness{
		session: func(t *testing.T, node, sess int) kite.Session { return c.Session(node, sess) },
		addNode: func(t *testing.T) int {
			id, err := c.AddNode()
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			return id
		},
		awaitJoin: func(t *testing.T, node int) {
			if !c.AwaitRejoin(node, 30*time.Second) {
				t.Fatalf("node %d never finished catching up", node)
			}
		},
		removeNode: func(t *testing.T, node int) {
			if err := c.RemoveNode(node); err != nil {
				t.Fatalf("RemoveNode(%d): %v", node, err)
			}
		},
		members: func(t *testing.T) (uint32, []int) {
			m := c.Members()
			return m.Epoch, m.Nodes
		},
	}
}

func remoteMemberHarness(t *testing.T) *memberHarness {
	t.Helper()
	tc := testcluster.Start(t, 3)
	var (
		mu      sync.Mutex
		clients = map[int]*client.Client{}
	)
	dial := func(t *testing.T, node int) *client.Client {
		mu.Lock()
		defer mu.Unlock()
		if cl, ok := clients[node]; ok {
			return cl
		}
		cl, err := client.Dial(tc.Addr(node), client.Options{
			DialTimeout: 2 * time.Second, OpTimeout: 15 * time.Second,
			RetryInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("dial node %d: %v", node, err)
		}
		t.Cleanup(func() { cl.Close() })
		clients[node] = cl
		return cl
	}
	return &memberHarness{
		session: func(t *testing.T, node, sess int) kite.Session {
			s, err := dial(t, node).NewSession()
			if err != nil {
				t.Fatalf("session on node %d: %v", node, err)
			}
			return s
		},
		addNode: func(t *testing.T) int { return tc.AddNode(t) },
		awaitJoin: func(t *testing.T, node int) {
			tc.AwaitRejoin(t, node, 30*time.Second)
		},
		removeNode: func(t *testing.T, node int) { tc.RemoveNode(t, node) },
		members: func(t *testing.T) (uint32, []int) {
			cl := dial(t, 1) // node 1 survives every reconfiguration below
			if err := cl.Refresh(); err != nil {
				t.Fatalf("refresh: %v", err)
			}
			return cl.Members()
		},
	}
}

// runMembershipWorkload is the shared scenario: a producer/consumer pair
// runs rounds of [write payloads, release flag] / [acquire flag, read
// payloads] on nodes 1 and 2 while the group (a) adds node 3, (b) probes
// the joiner, and (c) removes original replica 0. Every session is wrapped
// in a history recorder; release consistency across whatever configuration
// epochs the operations spanned is judged offline by the shared verifier —
// the same checker the conformance, restart and chaos suites use.
func runMembershipWorkload(t *testing.T, h *memberHarness) {
	const payloadKeys = 8
	const flagKey = 9_000
	log := history.New()
	prod := log.Wrap(h.session(t, 1, 0))
	cons := log.Wrap(h.session(t, 2, 1))

	// probe drives one acquire-then-read-payloads pass through a recorded
	// session; the verifier decides afterwards what the reads were allowed
	// to return.
	probe := func(t *testing.T, s kite.Session) {
		t.Helper()
		flag, err := s.AcquireRead(flagKey)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if len(flag) == 0 {
			return // no release yet
		}
		for k := uint64(0); k < payloadKeys; k++ {
			if _, err := s.Read(100 + k); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var rounds atomic.Uint64
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for r := uint64(1); ; r++ {
			select {
			case <-stop:
				return
			default:
			}
			val := []byte(strconv.FormatUint(r, 10))
			for k := uint64(0); k < payloadKeys; k++ {
				if err := prod.Write(100+k, val); err != nil {
					t.Errorf("producer write: %v", err)
					return
				}
			}
			if err := prod.ReleaseWrite(flagKey, val); err != nil {
				t.Errorf("producer release: %v", err)
				return
			}
			rounds.Store(r)
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			probe(t, cons)
		}
	}()
	stopWorkload := func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}
	defer stopWorkload()

	// Let the workload get going, then GROW the group under it.
	waitRounds := func(min uint64) {
		deadline := time.Now().Add(20 * time.Second)
		for rounds.Load() < min {
			if time.Now().After(deadline) {
				t.Fatalf("workload stalled at %d rounds", rounds.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRounds(3)
	id := h.addNode(t)
	if id != 3 {
		t.Fatalf("AddNode id = %d, want 3", id)
	}
	h.awaitJoin(t, id)
	if epoch, nodes := h.members(t); epoch != 1 || len(nodes) != 4 {
		t.Fatalf("after add: epoch %d members %v", epoch, nodes)
	}
	// The joiner must serve release-consistent state immediately.
	joinSess := log.Wrap(h.session(t, 3, 2))
	probe(t, joinSess)

	// Keep the workload running and SHRINK: remove an original replica.
	waitRounds(rounds.Load() + 3)
	h.removeNode(t, 0)
	if epoch, nodes := h.members(t); epoch != 2 || len(nodes) != 3 {
		t.Fatalf("after remove: epoch %d members %v", epoch, nodes)
	} else {
		for _, n := range nodes {
			if n == 0 {
				t.Fatalf("node 0 still a member: %v", nodes)
			}
		}
	}
	// The workload must keep making progress on the reconfigured group...
	waitRounds(rounds.Load() + 3)
	stopWorkload()
	// ...and the final state must be consistent from both a survivor and
	// the joined replica.
	probe(t, cons)
	probe(t, joinSess)
	if t.Failed() {
		t.FailNow()
	}
	// Judgment: the recorded history — every producer round, every
	// consumer pass, the joiner probes — must satisfy RC and k-atomicity.
	if rep := verifier.Check(log.Snapshot()); !rep.OK() {
		t.Fatalf("membership workload violated consistency:\n%s", rep.String())
	}
}

// TestMembershipAddRemoveMidWorkloadInproc / ...Remote are the
// reconfiguration-under-load conformance tests of DESIGN.md "Membership"
// (testing strategy matrix row "membership").
func TestMembershipAddRemoveMidWorkloadInproc(t *testing.T) {
	runMembershipWorkload(t, inprocMemberHarness(t))
}

func TestMembershipAddRemoveMidWorkloadRemote(t *testing.T) {
	runMembershipWorkload(t, remoteMemberHarness(t))
}

// TestMembershipReservedKeyRejected pins the guard on the membership
// config key: application operations on the reserved key fail with
// ErrReservedKey on both backends (a write there would wedge — or subvert —
// reconfiguration).
func TestMembershipReservedKeyRejected(t *testing.T) {
	for _, h := range []struct {
		name string
		mk   func(*testing.T) *memberHarness
	}{
		{"inproc", inprocMemberHarness},
		{"remote", remoteMemberHarness},
	} {
		t.Run(h.name, func(t *testing.T) {
			s := h.mk(t).session(t, 0, 0)
			if err := s.Write(^uint64(0), []byte("x")); !errors.Is(err, kite.ErrReservedKey) {
				t.Fatalf("write to reserved key: %v, want ErrReservedKey", err)
			}
			if _, err := s.FAA(^uint64(0), 1); !errors.Is(err, kite.ErrReservedKey) {
				t.Fatalf("FAA on reserved key: %v, want ErrReservedKey", err)
			}
			// The session survives the rejection.
			if err := s.Write(1, []byte("ok")); err != nil {
				t.Fatalf("session wedged after reserved-key rejection: %v", err)
			}
		})
	}
}

// TestMembershipShardedGrowShrink smokes the sharded public API: every
// group adds the new machine, every group removes it again, and the key
// space stays served throughout.
func TestMembershipShardedGrowShrink(t *testing.T) {
	c, err := sharded.NewCluster(2, kite.Options{
		Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session(0, 0)
	for k := uint64(0); k < 32; k++ {
		if err := s.Write(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ReleaseWrite(1000, []byte("done")); err != nil {
		t.Fatal(err)
	}

	id, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if !c.AwaitRejoin(id, 30*time.Second) {
		t.Fatal("joiner never caught up in every group")
	}
	for g, m := range c.Members() {
		if m.Epoch != 1 || len(m.Nodes) != 4 {
			t.Fatalf("group %d after add: %+v", g, m)
		}
	}
	// A session on the new machine spans all groups and sees everything.
	js := c.Session(id, 1)
	if v, err := js.AcquireRead(1000); err != nil || string(v) != "done" {
		t.Fatalf("acquire on joiner: %q, %v", v, err)
	}
	for k := uint64(0); k < 32; k++ {
		if v, err := js.Read(k); err != nil || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("read %d on joiner: %q, %v", k, v, err)
		}
	}

	if err := c.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	for g, m := range c.Members() {
		if m.Epoch != 2 || len(m.Nodes) != 3 {
			t.Fatalf("group %d after remove: %+v", g, m)
		}
	}
	// The original members keep serving.
	if v, err := s.Read(7); err != nil || string(v) != "v7" {
		t.Fatalf("read after shrink: %q, %v", v, err)
	}
}
