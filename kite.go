// Package kite is a replicated, highly-available, in-memory key-value store
// offering RCLin — a linearizable variant of Release Consistency — in an
// asynchronous setting with crash-stop and network failures. It is a
// from-scratch Go reproduction of
//
//	Gavrielatos, Katsarakis, Nagarajan, Grot, Joshi.
//	"Kite: Efficient and Available Release Consistency for the Datacenter."
//	PPoPP 2020.
//
// # Programming model
//
// Kite exposes the Data-Race-Free contract of shared memory (§1.1 of the
// paper): annotate synchronisation operations and get strong consistency
// where it matters, eventual-consistency performance everywhere else.
//
//   - OpRead/OpWrite: relaxed accesses, run by Eventual Store — reads are
//     local, writes broadcast asynchronously (per-key SC).
//   - OpRelease: a write that acts as a one-way barrier — by the time it is
//     visible, every prior write of the session is visible (ABD).
//   - OpAcquire: a read that acts as a one-way barrier — accesses after it
//     see everything before the release it reads from (ABD).
//   - OpFAA / OpCASWeak / OpCASStrong: atomic read-modify-writes (per-key
//     Paxos). The weak CAS may complete locally when its comparison fails;
//     the strong variant always checks remote replicas.
//
// # One API, two deployments
//
// Every operation is an Op value executed through the Session interface:
// Do (synchronous, context-aware), DoAsync (pipelined, §6.1) and DoBatch
// (many ops, one submission — on the remote backend, one wire frame), plus
// the familiar convenience methods (Read, Write, ReleaseWrite, AcquireRead,
// FAA, CompareAndSwap) layered on top. A Session is a single logical thread
// of control: its operations take effect in submission order, and sync
// calls must not be interleaved from multiple goroutines.
//
// Two backends implement Session: the in-process Cluster below, and
// kite/client.Session for external processes talking UDP to a node's
// session server (kite-node -client-addr). Code written against the
// interface — the dstruct structures, the examples, the benchmark drivers —
// runs unchanged over either deployment.
//
// Contexts carry per-operation deadlines and cancellation; there is no
// hidden operation timeout. Failures surface as the shared taxonomy
// (ErrStopped, ErrValueTooLong, ErrCanceled, ErrSessionClosed), identical
// across backends.
//
// # Deployment
//
// NewCluster runs an N-replica deployment inside the calling process —
// replicas exchange messages over an in-memory lossy transport with
// pluggable fault injection, which is also how the paper's failure studies
// are reproduced. Multi-process deployments over UDP are available via
// cmd/kite-node and the kite/client package.
package kite

import (
	"time"

	"kite/internal/core"
	"kite/internal/transport"
)

// MaxValueLen is the largest value (in bytes) Kite stores. Oversized values
// are rejected at submission with ErrValueTooLong.
const MaxValueLen = 64

// Options configure a Cluster. The zero value of any field selects the
// evaluation default (5 replicas, 4 workers, 1 ms release timeout...).
type Options struct {
	// Nodes is the replication degree, 1-16 (paper: 3-9, default 5).
	Nodes int
	// Workers is the number of worker goroutines per replica.
	Workers int
	// SessionsPerWorker fixes how many sessions each worker executes.
	SessionsPerWorker int
	// Capacity hints the per-replica store size in keys.
	Capacity int
	// ReleaseTimeout bounds the release barrier's wait for all-replica
	// acks before it publishes a DM-set and proceeds via the slow path.
	// It trades performance (longer) against availability (shorter); see
	// §8.4 of the paper.
	ReleaseTimeout time.Duration
	// RetryInterval is the protocol retransmission period.
	RetryInterval time.Duration
	// DisableFastPath forces all relaxed accesses through quorum rounds
	// (ablation studies only).
	DisableFastPath bool
	// DisableLocalAcquires forces every acquire through the ABD quorum
	// read instead of the Hermes-style local fast path on validated keys
	// (DESIGN.md "Local reads"). Ablation/baseline studies only.
	DisableLocalAcquires bool
	// WALDir, when non-empty, enables per-replica durability: each node
	// appends a write-ahead log (and periodic store snapshots) under its
	// own subdirectory of WALDir, and RestartNode recovers from it instead
	// of rejoining empty. Empty (the default) keeps replicas memory-only,
	// exactly as the paper evaluates Kite.
	WALDir string
	// FsyncInterval is the WAL group-commit deadline: appends become
	// power-loss durable at most this long after they are buffered. Zero
	// selects the default (10ms); negative means fsync before every
	// operation acknowledgment (strict durability, one fsync per worker
	// iteration). Ignored without WALDir.
	FsyncInterval time.Duration
	// SnapshotEvery is the number of WAL records between background store
	// snapshots, which bound replay time and truncate old segments. Zero
	// selects the default (65536); negative disables snapshots (the log
	// grows without bound). Ignored without WALDir.
	SnapshotEvery int
}

func (o Options) toConfig() core.Config {
	return core.Config{
		Nodes:                o.Nodes,
		Workers:              o.Workers,
		SessionsPerWorker:    o.SessionsPerWorker,
		KVSCapacity:          o.Capacity,
		ReleaseTimeout:       o.ReleaseTimeout,
		RetryInterval:        o.RetryInterval,
		DisableFastPath:      o.DisableFastPath,
		DisableLocalAcquires: o.DisableLocalAcquires,
		WALDir:               o.WALDir,
		FsyncInterval:        o.FsyncInterval,
		SnapshotEvery:        o.SnapshotEvery,
	}
}

// Cluster is an in-process Kite deployment.
type Cluster struct {
	c *core.Cluster
}

// NewCluster starts an in-process deployment with the given options.
func NewCluster(opts Options) (*Cluster, error) {
	c, err := core.NewCluster(opts.toConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Nodes returns the number of replica slots ever created: the boot members
// plus every AddNode since. Removed replicas keep their slot (stopped); the
// live member set is Members().
func (c *Cluster) Nodes() int { return c.c.Nodes() }

// Membership is a replica group's current configuration: the member node
// ids and the configuration epoch that names this exact set. The epoch
// increments by one per committed AddNode/RemoveNode and is carried on
// every protocol frame of the group (DESIGN.md "Membership").
type Membership struct {
	Epoch uint32
	Nodes []int
}

// Members returns the cluster's current membership.
func (c *Cluster) Members() Membership {
	v := c.c.Members()
	m := Membership{Epoch: v.Epoch}
	for _, id := range v.MemberIDs() {
		m.Nodes = append(m.Nodes, int(id))
	}
	return m
}

// AddNode grows the deployment by one replica while it serves: the grown
// configuration (epoch+1) is committed through the group's own consensus,
// then a fresh replica with the returned id boots in catch-up mode — it
// applies live writes immediately but buffers its own clients and serves
// nothing until its anti-entropy sweep completes (gate on AwaitRejoin).
// Concurrent reconfigurations are serialized by the config consensus; a
// loser returns an error and changes nothing.
func (c *Cluster) AddNode() (int, error) { return c.c.AddNode() }

// RemoveNode shrinks the deployment: the configuration excluding the
// replica is committed, surviving replicas retarget their quorums and
// write ledgers (nothing waits on the leaver's acks), and the leaver is
// crash-stopped. Its session handles fail with ErrStopped; its id is never
// reused. Removing the last member is rejected.
func (c *Cluster) RemoveNode(node int) error { return c.c.RemoveNode(node) }

// SessionsPerNode returns how many sessions each replica offers.
func (c *Cluster) SessionsPerNode() int { return c.c.Node(0).Sessions() }

// Session opens a handle to session sess of replica node, as the unified
// Session interface. Handles are single-threaded: synchronous calls must
// not be made concurrently on one handle, and two handles to the same
// (node, sess) pair must not be used concurrently.
func (c *Cluster) Session(node, sess int) Session {
	return newClusterSession(c.c.Node(node).Session(sess))
}

// PauseNode makes a replica unresponsive for d — the sleeping-replica
// failure of the paper's §8.4 study. The cluster stays available as long as
// a majority is awake.
func (c *Cluster) PauseNode(node int, d time.Duration) { c.c.PauseNode(node, d) }

// StopNode crash-stops a replica: its workers exit and outstanding
// operations fail with ErrStopped. Unlike a pause, the replica's in-memory
// state is lost — bring the slot back with RestartNode.
func (c *Cluster) StopNode(node int) { c.c.StopNode(node) }

// CrashNode kills a replica the way SIGKILL would: like StopNode, but a
// WAL-enabled replica's log is abandoned without a final fsync, so recovery
// sees exactly what had reached the operating system — not a graceful
// shutdown's tidy tail. On memory-only deployments it is indistinguishable
// from StopNode. Pair with RestartNode to exercise crash recovery.
func (c *Cluster) CrashNode(node int) { c.c.CrashNode(node) }

// RestartNode replaces a replica with a fresh node of the same id — the
// crash-recovery failure, one step beyond the paper's sleeping replica. A
// memory-only replica comes back empty; with Options.WALDir it first
// replays its own snapshot + log, recovering everything durable at the
// crash. Either way the new incarnation rejoins via the anti-entropy
// catch-up sweep (DESIGN.md "Recovery"): it buffers operations and serves
// nothing until it has reconciled the key space with enough surviving
// peers (with a WAL, only the post-crash delta). Session handles opened
// before the restart fail with ErrStopped; open fresh ones with Session
// once AwaitRejoin reports the node caught up.
func (c *Cluster) RestartNode(node int) error { return c.c.RestartNode(node) }

// AwaitRejoin blocks until a restarted (or freshly added) replica's
// catch-up sweep completes, reporting whether it did within timeout.
// Replicas that never restarted return true immediately; a replica stopped
// or removed mid-sweep (its sweep aborted, it will never serve) reports
// false rather than masquerading as caught up.
func (c *Cluster) AwaitRejoin(node int, timeout time.Duration) bool {
	nd := c.c.Node(node)
	return nd.AwaitCatchup(timeout) && !nd.Stopped() && !nd.Removed()
}

// NodeCatchup reports a replica's rejoin-sweep progress (zero value for
// replicas that never restarted).
func (c *Cluster) NodeCatchup(node int) core.CatchupStats { return c.c.Node(node).Catchup() }

// Faults exposes the network fault injector (drop/delay/cut links,
// partition nodes) for failure testing.
func (c *Cluster) Faults() *transport.FaultInjector { return c.c.Faults() }

// NodeStats reports a replica's slow-path activity counters.
func (c *Cluster) NodeStats(node int) core.Stats { return c.c.Node(node).SlowPathStats() }

// CompletedOps returns the total operations completed by replica node.
func (c *Cluster) CompletedOps(node int) uint64 { return c.c.Node(node).CompletedTotal() }

// OpClassCounts returns per-class completed-operation counts for a replica:
// [read, write, release, acquire, faa, cas-weak, cas-strong, flush].
func (c *Cluster) OpClassCounts(node int) [8]uint64 {
	var out [8]uint64
	nd := c.c.Node(node)
	for i := range out {
		out[i] = nd.Completed(core.OpCode(i))
	}
	return out
}

// Close stops every replica; outstanding operations fail with ErrStopped.
func (c *Cluster) Close() { c.c.Close() }
