// Package kite is a replicated, highly-available, in-memory key-value store
// offering RCLin — a linearizable variant of Release Consistency — in an
// asynchronous setting with crash-stop and network failures. It is a
// from-scratch Go reproduction of
//
//	Gavrielatos, Katsarakis, Nagarajan, Grot, Joshi.
//	"Kite: Efficient and Available Release Consistency for the Datacenter."
//	PPoPP 2020.
//
// # Programming model
//
// Kite exposes the Data-Race-Free contract of shared memory (§1.1 of the
// paper): annotate synchronisation operations and get strong consistency
// where it matters, eventual-consistency performance everywhere else.
//
//   - Read/Write: relaxed accesses, run by Eventual Store — reads are local,
//     writes broadcast asynchronously (per-key SC).
//   - ReleaseWrite: a write that acts as a one-way barrier — by the time it
//     is visible, every prior write of the session is visible (ABD).
//   - AcquireRead: a read that acts as a one-way barrier — accesses after it
//     see everything before the release it reads from (ABD).
//   - FAA / CompareAndSwap: atomic read-modify-writes (per-key Paxos). The
//     weak CAS may complete locally when its comparison fails; the strong
//     variant always checks remote replicas.
//
// All operations exist in synchronous and asynchronous (…Async, §6.1)
// flavours. A Session is a single logical thread of control: its operations
// take effect in submission order, and sync calls must not be interleaved
// from multiple goroutines.
//
// # Deployment
//
// NewCluster runs an N-replica deployment inside the calling process —
// replicas exchange messages over an in-memory lossy transport with
// pluggable fault injection, which is also how the paper's failure studies
// are reproduced. Multi-process deployments over UDP are available via
// kite/internal/transport and cmd/kite-node.
package kite

import (
	"errors"
	"time"

	"kite/internal/core"
	"kite/internal/transport"
)

// MaxValueLen is the largest value (in bytes) Kite stores.
const MaxValueLen = 64

// ErrStopped is returned by operations outstanding when the cluster stops.
var ErrStopped = core.ErrStopped

// Options configure a Cluster. The zero value of any field selects the
// evaluation default (5 replicas, 4 workers, 1 ms release timeout...).
type Options struct {
	// Nodes is the replication degree, 1-16 (paper: 3-9, default 5).
	Nodes int
	// Workers is the number of worker goroutines per replica.
	Workers int
	// SessionsPerWorker fixes how many sessions each worker executes.
	SessionsPerWorker int
	// Capacity hints the per-replica store size in keys.
	Capacity int
	// ReleaseTimeout bounds the release barrier's wait for all-replica
	// acks before it publishes a DM-set and proceeds via the slow path.
	// It trades performance (longer) against availability (shorter); see
	// §8.4 of the paper.
	ReleaseTimeout time.Duration
	// RetryInterval is the protocol retransmission period.
	RetryInterval time.Duration
	// DisableFastPath forces all relaxed accesses through quorum rounds
	// (ablation studies only).
	DisableFastPath bool
}

func (o Options) toConfig() core.Config {
	return core.Config{
		Nodes:             o.Nodes,
		Workers:           o.Workers,
		SessionsPerWorker: o.SessionsPerWorker,
		KVSCapacity:       o.Capacity,
		ReleaseTimeout:    o.ReleaseTimeout,
		RetryInterval:     o.RetryInterval,
		DisableFastPath:   o.DisableFastPath,
	}
}

// Cluster is an in-process Kite deployment.
type Cluster struct {
	c *core.Cluster
}

// NewCluster starts an in-process deployment with the given options.
func NewCluster(opts Options) (*Cluster, error) {
	c, err := core.NewCluster(opts.toConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Nodes returns the replication degree.
func (c *Cluster) Nodes() int { return c.c.Nodes() }

// SessionsPerNode returns how many sessions each replica offers.
func (c *Cluster) SessionsPerNode() int { return c.c.Node(0).Sessions() }

// Session opens a handle to session sess of replica node. Handles are
// single-threaded: synchronous calls must not be made concurrently on one
// handle.
func (c *Cluster) Session(node, sess int) *Session {
	return &Session{s: c.c.Node(node).Session(sess), done: make(chan *core.Request, 1)}
}

// PauseNode makes a replica unresponsive for d — the sleeping-replica
// failure of the paper's §8.4 study. The cluster stays available as long as
// a majority is awake.
func (c *Cluster) PauseNode(node int, d time.Duration) { c.c.PauseNode(node, d) }

// Faults exposes the network fault injector (drop/delay/cut links,
// partition nodes) for failure testing.
func (c *Cluster) Faults() *transport.FaultInjector { return c.c.Faults() }

// NodeStats reports a replica's slow-path activity counters.
func (c *Cluster) NodeStats(node int) core.Stats { return c.c.Node(node).SlowPathStats() }

// CompletedOps returns the total operations completed by replica node.
func (c *Cluster) CompletedOps(node int) uint64 { return c.c.Node(node).CompletedTotal() }

// OpClassCounts returns per-class completed-operation counts for a replica:
// [read, write, release, acquire, faa, cas-weak, cas-strong].
func (c *Cluster) OpClassCounts(node int) [7]uint64 {
	var out [7]uint64
	nd := c.c.Node(node)
	for i := range out {
		out[i] = nd.Completed(core.OpCode(i))
	}
	return out
}

// Close stops every replica; outstanding operations fail with ErrStopped.
func (c *Cluster) Close() { c.c.Close() }

// Session is a client's ordered stream of operations, pinned to one worker
// of one replica (§6.1).
type Session struct {
	s    *core.Session
	done chan *core.Request
}

// errTimeout guards the sync API against a stalled deployment.
var errTimeout = errors.New("kite: operation timed out")

const syncTimeout = 30 * time.Second

func (s *Session) run(r *core.Request) (*core.Request, error) {
	r.Done = func(r *core.Request) { s.done <- r }
	s.s.Submit(r)
	select {
	case out := <-s.done:
		return out, out.Err
	case <-time.After(syncTimeout):
		return r, errTimeout
	}
}

// Read performs a relaxed read. The returned slice is owned by the caller.
func (s *Session) Read(key uint64) ([]byte, error) {
	r, err := s.run(&core.Request{Code: core.OpRead, Key: key})
	return cloneVal(r.Out), err
}

// Write performs a relaxed write.
func (s *Session) Write(key uint64, val []byte) error {
	_, err := s.run(&core.Request{Code: core.OpWrite, Key: key, Val: val})
	return err
}

// ReleaseWrite performs a release: it takes effect only after all prior
// writes of this session are visible (one-way barrier, Table 1).
func (s *Session) ReleaseWrite(key uint64, val []byte) error {
	_, err := s.run(&core.Request{Code: core.OpRelease, Key: key, Val: val})
	return err
}

// AcquireRead performs an acquire: accesses after it are ordered after it
// (one-way barrier, Table 1). Releases/acquires are linearizable.
func (s *Session) AcquireRead(key uint64) ([]byte, error) {
	r, err := s.run(&core.Request{Code: core.OpAcquire, Key: key})
	return cloneVal(r.Out), err
}

// FAA atomically adds delta to the counter at key, returning the previous
// value. Counters are 8-byte little-endian; absent keys count as zero.
func (s *Session) FAA(key uint64, delta uint64) (old uint64, err error) {
	r, err := s.run(&core.Request{Code: core.OpFAA, Key: key, Delta: delta})
	return r.Uint64Out(), err
}

// CompareAndSwap atomically replaces the value at key with new iff the
// current value equals expected, returning success and the previous value.
// The weak variant may complete locally when the comparison fails against
// the local copy (§6.1) — cheaper under contention, but a weak failure does
// not carry acquire semantics.
func (s *Session) CompareAndSwap(key uint64, expected, newVal []byte, weak bool) (swapped bool, old []byte, err error) {
	code := core.OpCASStrong
	if weak {
		code = core.OpCASWeak
	}
	r, err := s.run(&core.Request{Code: code, Key: key, Expected: expected, Val: newVal})
	return r.Swapped, cloneVal(r.Out), err
}

// Result is the outcome of an asynchronous operation.
type Result struct {
	// Value is the operation's result value (read/acquire: the value read;
	// FAA/CAS: the previous value). Owned by the callback receiver.
	Value []byte
	// Swapped reports CAS success.
	Swapped bool
	// Err is non-nil only if the node stopped before completion.
	Err error
}

// submitAsync builds and submits an async request. Callbacks run on the
// owning worker goroutine and must not block.
func (s *Session) submitAsync(r *core.Request, cb func(Result)) {
	if cb != nil {
		r.Done = func(r *core.Request) {
			cb(Result{Value: cloneVal(r.Out), Swapped: r.Swapped, Err: r.Err})
		}
	}
	s.s.Submit(r)
}

// ReadAsync issues a relaxed read; cb receives the value.
func (s *Session) ReadAsync(key uint64, cb func(Result)) {
	s.submitAsync(&core.Request{Code: core.OpRead, Key: key}, cb)
}

// WriteAsync issues a relaxed write; cb (optional) fires on completion.
func (s *Session) WriteAsync(key uint64, val []byte, cb func(Result)) {
	s.submitAsync(&core.Request{Code: core.OpWrite, Key: key, Val: cloneVal(val)}, cb)
}

// ReleaseWriteAsync issues a release write.
func (s *Session) ReleaseWriteAsync(key uint64, val []byte, cb func(Result)) {
	s.submitAsync(&core.Request{Code: core.OpRelease, Key: key, Val: cloneVal(val)}, cb)
}

// AcquireReadAsync issues an acquire read.
func (s *Session) AcquireReadAsync(key uint64, cb func(Result)) {
	s.submitAsync(&core.Request{Code: core.OpAcquire, Key: key}, cb)
}

// FAAAsync issues a fetch-and-add.
func (s *Session) FAAAsync(key uint64, delta uint64, cb func(Result)) {
	s.submitAsync(&core.Request{Code: core.OpFAA, Key: key, Delta: delta}, cb)
}

// CompareAndSwapAsync issues a CAS.
func (s *Session) CompareAndSwapAsync(key uint64, expected, newVal []byte, weak bool, cb func(Result)) {
	code := core.OpCASStrong
	if weak {
		code = core.OpCASWeak
	}
	s.submitAsync(&core.Request{
		Code: code, Key: key,
		Expected: cloneVal(expected), Val: cloneVal(newVal),
	}, cb)
}

// EncodeUint64 encodes a counter value in Kite's FAA/CAS convention
// (8-byte little-endian).
func EncodeUint64(x uint64) []byte { return core.EncodeUint64(x) }

// DecodeUint64 decodes a counter value; short or absent values read as zero.
func DecodeUint64(v []byte) uint64 { return core.DecodeUint64(v) }

func cloneVal(v []byte) []byte {
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}
