#!/usr/bin/env bash
# Online-audit smoke: boots a real 2-group x 3-replica sharded kite-node
# deployment, runs the kite-audit self-test drill (the pipeline must catch
# deliberately injected violations), then attaches kite-audit to the live
# deployment for AUDIT_SECS seconds and requires a clean, covered audit.
#
# This is the end-to-end path an operator runs: kite-audit dials the
# deployment through the public client, leases prober sessions, and streams
# sampled operations through the incremental checker while the nodes serve.
#
# Usage: tools/audit-smoke.sh [workdir]
# Env: AUDIT_SECS (default 10) — how long the standing audit runs.
#      AUDIT_BUDGET (default 65536) — checker memory budget (judged events
#      retained); small values exercise live eviction.

set -euo pipefail

AUDIT_SECS=${AUDIT_SECS:-10}
AUDIT_BUDGET=${AUDIT_BUDGET:-65536}
BASE=${BASE:-7500}
CLIENT_BASE=${CLIENT_BASE:-9500}

work=${1:-}
cleanup_work=0
if [[ -z "$work" ]]; then
  work=$(mktemp -d /tmp/kite-audit-smoke.XXXXXX)
  cleanup_work=1
fi
mkdir -p "$work"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [[ $cleanup_work -eq 1 ]]; then
    rm -rf "$work"
  fi
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$work/kite-node" ./cmd/kite-node
go build -o "$work/kite-cli" ./cmd/kite-cli
go build -o "$work/kite-audit" ./cmd/kite-audit

echo "== selftest: the pipeline must catch injected violations"
"$work/kite-audit" -selftest

start_node() { # start_node <group> <id>
  local group=$1 id=$2
  "$work/kite-node" -groups 2 -group "$group" -id "$id" -nodes 3 -base "$BASE" \
    -client-addr "127.0.0.1:$((CLIENT_BASE + group * 100 + id))" \
    >>"$work/node-g$group-$id.log" 2>&1 &
  pids+=($!)
  disown $!
}

echo "== booting 2-group x 3-replica sharded deployment"
for g in 0 1; do
  for id in 0 1 2; do
    start_node "$g" "$id"
  done
done

await_ready() { # await_ready <addr>
  for _ in $(seq 1 100); do
    if "$work/kite-cli" -addr "$1" -timeout 2s read 1 >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "deployment at $1 never became ready" >&2
  return 1
}
await_ready "127.0.0.1:$CLIENT_BASE"
await_ready "127.0.0.1:$((CLIENT_BASE + 100))"

echo "== standing audit for ${AUDIT_SECS}s against the live deployment"
"$work/kite-audit" \
  -addrs "127.0.0.1:$CLIENT_BASE,127.0.0.1:$((CLIENT_BASE + 100))" \
  -duration "${AUDIT_SECS}s" -budget "$AUDIT_BUDGET" -json "$work/audit.json"

echo "== audit summary"
cat "$work/audit.json"
echo "== PASS"
