#!/usr/bin/env bash
# Real-process crash-restart durability smoke: boots a 3-replica kite-node
# deployment with write-ahead logs, acknowledges a batch of writes, SIGKILLs
# every replica at once, restarts them against the same log directories, and
# asserts every acknowledged write reads back. This is the multi-process
# counterpart of the in-process crash-all chaos nemesis: it exercises the
# actual recovery path an operator runs — kill -9, same -wal-dir, done.
#
# The nodes run the WAL in synchronous mode (-fsync-interval=-1ns) so every
# acknowledgment implies durability; with the default group-commit deadline
# the final few acks could legitimately sit inside the fsync window when the
# SIGKILL lands, and a smoke test must not race a deadline.
#
# Usage: tools/durability-smoke.sh [workdir]
# With no argument a temp directory is created and cleaned up on exit.

set -euo pipefail

WRITES=${WRITES:-50}
BASE=${BASE:-7400}
CLIENT_BASE=${CLIENT_BASE:-9400}

work=${1:-}
cleanup_work=0
if [[ -z "$work" ]]; then
  work=$(mktemp -d /tmp/kite-durability-smoke.XXXXXX)
  cleanup_work=1
fi
mkdir -p "$work"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [[ $cleanup_work -eq 1 ]]; then
    rm -rf "$work"
  fi
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$work/kite-node" ./cmd/kite-node
go build -o "$work/kite-cli" ./cmd/kite-cli

start_node() { # start_node <id>
  local id=$1
  "$work/kite-node" -id "$id" -nodes 3 -base "$BASE" \
    -client-addr "127.0.0.1:$((CLIENT_BASE + id))" \
    -wal-dir "$work/wal/node-$id" -fsync-interval=-1ns \
    >>"$work/node-$id.log" 2>&1 &
  pids+=($!)
  disown $! # keep bash from narrating the later kill -9
}

await_ready() { # await_ready: poll until the deployment answers a read
  for _ in $(seq 1 100); do
    if "$work/kite-cli" -addr "127.0.0.1:$CLIENT_BASE" -timeout 2s read 1 >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "deployment did not come up; node logs:" >&2
  tail -n 20 "$work"/node-*.log >&2
  return 1
}

echo "== booting 3 replicas with WALs under $work/wal"
for id in 0 1 2; do start_node "$id"; done
await_ready

echo "== writing $WRITES keys (acknowledged => durable: synchronous WAL)"
for i in $(seq 1 "$WRITES"); do
  "$work/kite-cli" -addr "127.0.0.1:$CLIENT_BASE" write $((100 + i)) "v$i" >/dev/null
done

echo "== SIGKILL all replicas"
for pid in "${pids[@]}"; do kill -9 "$pid"; done
pids=()
sleep 0.5 # let the kernel reap the processes and release their UDP ports

echo "== restarting replicas from their WALs"
for id in 0 1 2; do start_node "$id"; done
await_ready

echo "== verifying all $WRITES acknowledged writes read back"
fail=0
for i in $(seq 1 "$WRITES"); do
  got=$("$work/kite-cli" -addr "127.0.0.1:$CLIENT_BASE" read $((100 + i))) || got="(read failed)"
  want="\"v$i\""
  if [[ "$got" != "$want" ]]; then
    echo "MISSING: key $((100 + i)): got $got, want $want" >&2
    fail=1
  fi
done
if [[ $fail -ne 0 ]]; then
  echo "FAIL: acknowledged writes lost across crash-restart; node logs:" >&2
  tail -n 30 "$work"/node-*.log >&2
  exit 1
fi
echo "PASS: all $WRITES acknowledged writes survived kill -9 of every replica"
