// Command linkcheck validates the markdown cross-references of the given
// files: every relative link target (`[text](path)` and bare `see FILE.md`
// style references are NOT guessed — only real markdown links) must exist
// on disk, relative to the linking file. External links (http/https/
// mailto) and pure in-page anchors are skipped — CI must not depend on
// the network. Exit status 1 lists every broken link.
//
// Usage: go run ./tools/linkcheck README.md DESIGN.md ...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and intentionally out of scope.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	checked := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			broken++
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// In-page anchors on file targets: check only the file part.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "linkcheck: %s: broken link %q (%s)\n", file, m[1], resolved)
				broken++
			}
		}
	}
	fmt.Printf("linkcheck: %d relative links checked, %d broken\n", checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}
