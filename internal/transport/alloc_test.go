package transport

import (
	"net"
	"testing"

	"kite/internal/proto"
)

// Allocation-budget tests: the steady-state wire path must be allocation-free
// per message. Each test exercises one leg of the path deterministically —
// no background goroutines, so testing.AllocsPerRun measures only the code
// under test — and asserts exactly zero allocations once the pools and
// reusable slices have reached their high-water marks. CI runs these as a
// dedicated step (see .github/workflows/ci.yml) so a regression fails loudly
// rather than showing up as a throughput droop.

// allocBatch builds a representative message batch: values and origins
// present, as on the replication hot path.
func allocBatch(n int) []proto.Message {
	batch := make([]proto.Message, n)
	for i := range batch {
		batch[i] = proto.Message{
			Kind: proto.KindESWrite, From: 1, Worker: 2,
			Key: uint64(i), OpID: uint64(i) << 8,
			Value:   []byte("0123456789abcdef"),
			Origins: []uint64{1, 2, 3},
		}
	}
	return batch
}

// TestZeroAllocEncodeSendStage covers encode→send: pooled buffer checkout,
// in-place MarshalBatch, ring staging, flusher drain, buffer recycle —
// everything Send and flushLoop do per batch except the syscall itself
// (whose callback state is preallocated per socket; see mmsgState).
func TestZeroAllocEncodeSendStage(t *testing.T) {
	u := &UDP{bufs: make(chan []byte, bufPoolSize)}
	ring := newSendRing(sendRingDepth)
	dest := NewUDPDest(&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999})
	batch := allocBatch(16)
	scratch := make([]Datagram, MaxIOBatch)

	step := func() {
		buf := u.getBuf()
		out, err := proto.MarshalBatch(buf[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		if !ring.push(Datagram{Buf: out, Dest: dest}) {
			t.Fatal("ring full")
		}
		k, _ := ring.drain(scratch)
		for i := 0; i < k; i++ {
			u.putBuf(scratch[i].Buf)
		}
	}
	step() // warm the pool
	if got := testing.AllocsPerRun(200, step); got != 0 {
		t.Fatalf("encode→send allocates %.1f/batch, want 0", got)
	}
}

// TestZeroAllocDecodeDispatch covers recv→decode→dispatch: pooled slot
// checkout, in-place UnmarshalBatchInto (message slice and origins arena
// reused), dispatch over the decoded views, and slot release.
func TestZeroAllocDecodeDispatch(t *testing.T) {
	u := &UDP{slots: make(chan *recvSlot, recvSlotPoolSize)}
	frame, err := proto.MarshalBatch(nil, allocBatch(16))
	if err != nil {
		t.Fatal(err)
	}

	var sink uint64
	step := func() {
		s := u.slot()
		n := copy(s.buf, frame) // stands in for the kernel filling the slot
		var derr error
		s.msgs, s.arena, derr = proto.UnmarshalBatchInto(s.msgs, s.arena, s.buf[:n])
		if derr != nil {
			t.Fatal(derr)
		}
		b := Batch{Msgs: s.msgs, rel: s}
		for i := range b.Msgs {
			m := &b.Msgs[i]
			sink += m.Key + uint64(len(m.Value)) + uint64(len(m.Origins))
		}
		b.Release()
	}
	step() // warm: first decode grows msgs/arena to their high-water mark
	if got := testing.AllocsPerRun(200, step); got != 0 {
		t.Fatalf("recv→decode→dispatch allocates %.1f/batch, want 0", got)
	}
	_ = sink
}

// TestZeroAllocInProcRoundTrip covers the in-process transport end to end:
// Send copies into a pooled slot, the consumer dispatches and releases.
// InProc has no goroutines of its own, so the whole round trip runs on the
// measuring goroutine.
func TestZeroAllocInProcRoundTrip(t *testing.T) {
	tr := NewInProc(1, 1, 16)
	defer tr.Close()
	dst := Endpoint{}
	batch := allocBatch(16)

	var sink uint64
	step := func() {
		tr.Send(dst, batch)
		got := <-tr.Recv(dst)
		for i := range got.Msgs {
			sink += got.Msgs[i].Key
		}
		got.Release()
	}
	step() // warm the slot pool
	if got := testing.AllocsPerRun(200, step); got != 0 {
		t.Fatalf("inproc round trip allocates %.1f/batch, want 0", got)
	}
	_ = sink
}
