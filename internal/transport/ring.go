package transport

import "sync"

// sendRing is the worker→flusher handoff: a fixed-capacity ring of staged
// datagrams guarded by one short mutex, with an edge-triggered notify
// channel. It replaces channel-per-send because a send is now two cheap
// steps — stage under the lock, maybe tickle the notify — and the flusher
// drains whole runs of datagrams in one lock acquisition, which is what
// feeds full sendmmsg batches. A full ring drops (counted by the caller):
// the transport is unreliable by contract, exactly like an overrun UD
// send queue.
type sendRing struct {
	mu     sync.Mutex
	buf    []Datagram
	head   int // index of the oldest staged datagram
	n      int // staged count
	closed bool
	notify chan struct{}
}

func newSendRing(capacity int) *sendRing {
	return &sendRing{buf: make([]Datagram, capacity), notify: make(chan struct{}, 1)}
}

// push stages d for the flusher. Returns false — the datagram is dropped —
// when the ring is full or closed.
func (r *sendRing) push(d Datagram) bool {
	r.mu.Lock()
	if r.closed || r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = d
	r.n++
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default: // flusher already signalled
	}
	return true
}

// drain moves up to len(out) staged datagrams into out in FIFO order.
// Returns the count and whether the ring is closed with nothing left.
func (r *sendRing) drain(out []Datagram) (int, bool) {
	r.mu.Lock()
	k := r.n
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		out[i] = r.buf[r.head]
		r.buf[r.head] = Datagram{} // release the buffer reference
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
	done := r.closed && r.n == 0
	r.mu.Unlock()
	return k, done
}

// close wakes the flusher for a final drain; staged datagrams still flush.
func (r *sendRing) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
}
