package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"kite/internal/proto"
)

// UDP is the datagram transport for multi-process deployments. Each local
// worker binds one socket; batches are marshalled with proto.MarshalBatch
// and sent as single datagrams to the peer worker's socket, mirroring the
// one-connection-per-remote-worker layout of the paper (§6.3).
//
// Like RDMA UD, UDP gives no delivery guarantee; the protocols above provide
// their own retries and the slow-path barrier handles permanent loss.
type UDP struct {
	local   uint8
	workers int
	socks   []*net.UDPConn
	peers   map[uint8][]*net.UDPAddr // node -> per-worker address
	recv    []chan []proto.Message
	stats   Stats
	closed  atomic.Bool
	wg      sync.WaitGroup
	bufPool sync.Pool
}

// UDPConfig describes the local node and the full cluster address map.
type UDPConfig struct {
	LocalNode uint8
	Workers   int
	// Listen[i] is the UDP address worker i binds ("" or host:0 for any).
	Listen []string
	// Peers[node][worker] is the address of that remote worker's socket.
	Peers map[uint8][]string
	// RecvDepth bounds each worker's receive queue (DefaultMailboxDepth
	// if zero).
	RecvDepth int
}

// NewUDP binds the local sockets and resolves peer addresses.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if len(cfg.Listen) != cfg.Workers {
		return nil, fmt.Errorf("transport: %d listen addrs for %d workers", len(cfg.Listen), cfg.Workers)
	}
	depth := cfg.RecvDepth
	if depth <= 0 {
		depth = DefaultMailboxDepth
	}
	u := &UDP{
		local:   cfg.LocalNode,
		workers: cfg.Workers,
		peers:   make(map[uint8][]*net.UDPAddr),
		recv:    make([]chan []proto.Message, cfg.Workers),
	}
	u.bufPool.New = func() any { return make([]byte, proto.MaxBatchBytes) }
	for node, addrs := range cfg.Peers {
		resolved := make([]*net.UDPAddr, len(addrs))
		for i, a := range addrs {
			ra, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("transport: resolve %s: %w", a, err)
			}
			resolved[i] = ra
		}
		u.peers[node] = resolved
	}
	for i := 0; i < cfg.Workers; i++ {
		la, err := net.ResolveUDPAddr("udp", cfg.Listen[i])
		if err != nil {
			u.Close()
			return nil, fmt.Errorf("transport: resolve listen %s: %w", cfg.Listen[i], err)
		}
		sock, err := net.ListenUDP("udp", la)
		if err != nil {
			u.Close()
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen[i], err)
		}
		u.socks = append(u.socks, sock)
		u.recv[i] = make(chan []proto.Message, depth)
		u.wg.Add(1)
		go u.recvLoop(i, sock)
	}
	return u, nil
}

// LocalAddrs reports the bound per-worker addresses (useful with :0 binds).
func (u *UDP) LocalAddrs() []string {
	out := make([]string, len(u.socks))
	for i, s := range u.socks {
		out[i] = s.LocalAddr().String()
	}
	return out
}

func (u *UDP) recvLoop(worker int, sock *net.UDPConn) {
	defer u.wg.Done()
	buf := make([]byte, proto.MaxBatchBytes)
	for {
		n, _, err := sock.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		batch, err := proto.UnmarshalBatch(buf[:n])
		if err != nil {
			continue // corrupt datagram: drop, like a bad checksum
		}
		// Messages alias buf; copy values out before the next read.
		for i := range batch {
			if len(batch[i].Value) > 0 {
				v := make([]byte, len(batch[i].Value))
				copy(v, batch[i].Value)
				batch[i].Value = v
			}
		}
		select {
		case u.recv[worker] <- batch:
			u.stats.SentMsgs.Add(uint64(len(batch)))
		default:
			u.stats.DroppedFull.Add(1)
		}
	}
}

// Send implements Transport. Sends to the local node loop back without
// touching the socket.
func (u *UDP) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || u.closed.Load() {
		return
	}
	if dst.Node == u.local {
		select {
		case u.recv[dst.Worker] <- batch:
		default:
			u.stats.DroppedFull.Add(1)
		}
		return
	}
	addrs, ok := u.peers[dst.Node]
	if !ok || int(dst.Worker) >= len(addrs) {
		u.stats.DroppedFault.Add(1)
		return
	}
	buf := u.bufPool.Get().([]byte)
	out, err := proto.MarshalBatch(buf[:0], batch)
	if err == nil {
		w := int(dst.Worker) % len(u.socks)
		if _, err = u.socks[w].WriteToUDP(out, addrs[dst.Worker]); err == nil {
			u.stats.SentBatches.Add(1)
		}
	}
	u.bufPool.Put(buf) //nolint:staticcheck // fixed-size buffer reuse
}

// Recv implements Transport.
func (u *UDP) Recv(ep Endpoint) <-chan []proto.Message { return u.recv[ep.Worker] }

// Close implements Transport.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	for _, s := range u.socks {
		s.Close()
	}
	u.wg.Wait()
	return nil
}

// Stats exposes the transport counters.
func (u *UDP) Stats() *Stats { return &u.stats }
