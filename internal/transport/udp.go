package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/proto"
)

// UDP is the datagram transport for multi-process deployments. Each local
// worker binds one socket; batches are marshalled with proto.MarshalBatch
// and sent as single datagrams to the peer worker's socket, mirroring the
// one-connection-per-remote-worker layout of the paper (§6.3).
//
// The hot path is allocation-free in steady state:
//
//	Send: encode in place into a pooled datagram buffer → stage on the
//	      socket's sendRing (two pointer moves under a short lock) → the
//	      flusher drains a run of datagrams and posts them with one
//	      sendmmsg (BatchConn), recycling buffers after the syscall.
//	Recv: recvmmsg fills pooled recvSlots (buffer + message slice + origins
//	      arena) → each datagram decodes with proto.UnmarshalBatchInto,
//	      aliasing the slot → delivered as a Batch whose Release returns
//	      the slot to the pool once the worker has dispatched it.
//
// The flusher batches adaptively: a lone datagram on an idle ring goes out
// immediately (protecting tail latency), while a burst below FlushBatch
// lingers up to FlushDelay to pick up stragglers before the syscall —
// flush-on-size-or-deadline, the software rendition of Kite's doorbell
// batching (§6.2).
//
// Like RDMA UD, UDP gives no delivery guarantee; the protocols above provide
// their own retries and the slow-path barrier handles permanent loss.
type UDP struct {
	local      uint8
	workers    int
	socks      []*net.UDPConn
	conns      []*BatchConn
	rings      []*sendRing
	peers      map[uint8][]*UDPDest // node -> per-worker destination
	recv       []chan Batch
	bufs       chan []byte    // datagram buffer free list
	slots      chan *recvSlot // receive-slot free list
	flushBatch int
	flushDelay time.Duration
	stats      Stats
	closed     atomic.Bool
	wg         sync.WaitGroup // receive loops
	flushWg    sync.WaitGroup // flushers
}

// Default adaptive-flush knobs: flush as soon as a drain yields FlushBatch
// datagrams, or when DefaultFlushDelay has passed since a burst began.
// 20µs is ~2 datagram service times on loopback — long enough to merge a
// broadcast fan-out into one syscall, short enough to vanish under the
// protocols' RTTs. OPERATIONS.md discusses tuning.
const (
	DefaultFlushBatch = 16
	DefaultFlushDelay = 20 * time.Microsecond

	// sendRingDepth bounds staged-but-unflushed datagrams per socket.
	sendRingDepth = 1024
	// bufPoolSize / recvSlotPoolSize bound the free lists; overflow is
	// garbage-collected, a dry pool allocates.
	bufPoolSize      = 256
	recvSlotPoolSize = 1024
)

// recvSlot is one pooled receive unit: the datagram buffer plus the decoded
// message slice and origins arena that alias it. Handed to the consumer
// inside a Batch; Release returns it for the next recvmmsg.
type recvSlot struct {
	u     *UDP
	buf   []byte
	msgs  []proto.Message
	arena []uint64
}

func (s *recvSlot) release() {
	select {
	case s.u.slots <- s:
	default: // pool full: let the GC take it
	}
}

// UDPConfig describes the local node and the full cluster address map.
type UDPConfig struct {
	LocalNode uint8
	Workers   int
	// Listen[i] is the UDP address worker i binds ("" or host:0 for any).
	Listen []string
	// Peers[node][worker] is the address of that remote worker's socket.
	Peers map[uint8][]string
	// RecvDepth bounds each worker's receive queue (DefaultMailboxDepth
	// if zero).
	RecvDepth int
	// FlushBatch flushes the send ring as soon as this many datagrams are
	// staged (DefaultFlushBatch if zero).
	FlushBatch int
	// FlushDelay bounds how long a sub-FlushBatch burst may linger before
	// it is flushed (DefaultFlushDelay if zero; negative disables
	// lingering entirely — every drain flushes immediately).
	FlushDelay time.Duration
	// DisableBatchIO forces the per-datagram syscall fallback even where
	// sendmmsg/recvmmsg are available (tests, platform escape hatch).
	DisableBatchIO bool
}

// NewUDP binds the local sockets and resolves peer addresses.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if len(cfg.Listen) != cfg.Workers {
		return nil, fmt.Errorf("transport: %d listen addrs for %d workers", len(cfg.Listen), cfg.Workers)
	}
	depth := cfg.RecvDepth
	if depth <= 0 {
		depth = DefaultMailboxDepth
	}
	u := &UDP{
		local:      cfg.LocalNode,
		workers:    cfg.Workers,
		peers:      make(map[uint8][]*UDPDest),
		recv:       make([]chan Batch, cfg.Workers),
		bufs:       make(chan []byte, bufPoolSize),
		slots:      make(chan *recvSlot, recvSlotPoolSize),
		flushBatch: cfg.FlushBatch,
		flushDelay: cfg.FlushDelay,
	}
	if u.flushBatch <= 0 {
		u.flushBatch = DefaultFlushBatch
	}
	if u.flushBatch > MaxIOBatch {
		u.flushBatch = MaxIOBatch
	}
	switch {
	case u.flushDelay == 0:
		u.flushDelay = DefaultFlushDelay
	case u.flushDelay < 0:
		u.flushDelay = 0
	}
	for node, addrs := range cfg.Peers {
		resolved := make([]*UDPDest, len(addrs))
		for i, a := range addrs {
			ra, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("transport: resolve %s: %w", a, err)
			}
			resolved[i] = NewUDPDest(ra)
		}
		u.peers[node] = resolved
	}
	for i := 0; i < cfg.Workers; i++ {
		la, err := net.ResolveUDPAddr("udp", cfg.Listen[i])
		if err != nil {
			u.Close()
			return nil, fmt.Errorf("transport: resolve listen %s: %w", cfg.Listen[i], err)
		}
		sock, err := net.ListenUDP("udp", la)
		if err != nil {
			u.Close()
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen[i], err)
		}
		bc := NewBatchConn(sock, &u.stats)
		if cfg.DisableBatchIO {
			bc.DisableBatch()
		}
		u.socks = append(u.socks, sock)
		u.conns = append(u.conns, bc)
		u.rings = append(u.rings, newSendRing(sendRingDepth))
		u.recv[i] = make(chan Batch, depth)
		u.wg.Add(1)
		go u.recvLoop(i, bc)
		u.flushWg.Add(1)
		go u.flushLoop(u.rings[i], bc)
	}
	return u, nil
}

// LocalAddrs reports the bound per-worker addresses (useful with :0 binds).
func (u *UDP) LocalAddrs() []string {
	out := make([]string, len(u.socks))
	for i, s := range u.socks {
		out[i] = s.LocalAddr().String()
	}
	return out
}

// Batched reports whether the batched-syscall path is active on the local
// sockets (false once any of them demoted to the fallback).
func (u *UDP) Batched() bool {
	for _, bc := range u.conns {
		if !bc.Batched() {
			return false
		}
	}
	return len(u.conns) > 0
}

// setBatchLimit caps datagrams per batch syscall on every socket — test
// hook for exercising partial-batch short writes. Call before traffic.
func (u *UDP) setBatchLimit(n int) {
	for _, bc := range u.conns {
		bc.setLimit(n)
	}
}

func (u *UDP) getBuf() []byte {
	select {
	case b := <-u.bufs:
		return b
	default:
		return make([]byte, proto.MaxBatchBytes)
	}
}

func (u *UDP) putBuf(b []byte) {
	b = b[:cap(b)]
	if cap(b) < proto.MaxBatchBytes {
		return
	}
	select {
	case u.bufs <- b:
	default: // pool full
	}
}

// slot returns a pooled receive slot, allocating when the pool is dry.
func (u *UDP) slot() *recvSlot {
	select {
	case s := <-u.slots:
		return s
	default:
		return &recvSlot{u: u, buf: make([]byte, proto.MaxBatchBytes)}
	}
}

// flushLoop drains one socket's send ring and posts datagrams in batched
// syscalls, with the adaptive size-or-deadline policy described on UDP.
func (u *UDP) flushLoop(ring *sendRing, bc *BatchConn) {
	defer u.flushWg.Done()
	dgs := make([]Datagram, MaxIOBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		k, done := ring.drain(dgs)
		if k == 0 {
			if done {
				return
			}
			<-ring.notify
			continue
		}
		// A lone datagram on an otherwise idle ring flushes immediately —
		// lingering there would tax p99 for nothing. A burst (k ≥ 2) below
		// the size trigger lingers up to flushDelay for stragglers.
		if k >= 2 && k < u.flushBatch && u.flushDelay > 0 && !done {
			timer.Reset(u.flushDelay)
			expired := false
			for !expired && k < u.flushBatch && k < len(dgs) {
				closing := false
				select {
				case <-ring.notify:
					var more int
					more, closing = ring.drain(dgs[k:])
					k += more
				case <-timer.C:
					expired = true
				}
				if closing {
					break
				}
			}
			if !expired && !timer.Stop() {
				<-timer.C
			}
		}
		if _, err := bc.WriteBatch(dgs[:k]); err != nil {
			// Socket closed or hard send error: recycle and carry on;
			// loss is within the transport contract.
			_ = err
		}
		for i := 0; i < k; i++ {
			u.putBuf(dgs[i].Buf)
			dgs[i] = Datagram{}
		}
	}
}

// recvLoop reads batched datagrams into pooled slots, decodes each in place
// and delivers it as a releasable Batch.
func (u *UDP) recvLoop(worker int, bc *BatchConn) {
	defer u.wg.Done()
	var (
		slots [MaxIOBatch]*recvSlot
		sizes [MaxIOBatch]int
	)
	views := make([][]byte, MaxIOBatch)
	for {
		for i := range slots {
			if slots[i] == nil {
				slots[i] = u.slot()
			}
			views[i] = slots[i].buf
		}
		n, err := bc.ReadBatch(views, sizes[:])
		if err != nil {
			return // socket closed
		}
		for i := 0; i < n; i++ {
			s := slots[i]
			var derr error
			s.msgs, s.arena, derr = proto.UnmarshalBatchInto(s.msgs, s.arena, s.buf[:sizes[i]])
			if derr != nil {
				continue // corrupt datagram: drop, slot is reused as-is
			}
			slots[i] = nil // ownership passes to the consumer
			select {
			case u.recv[worker] <- Batch{Msgs: s.msgs, rel: s}:
			default:
				u.stats.DroppedFull.Add(1)
				s.release()
			}
		}
	}
}

// Send implements Transport: encode into a pooled buffer, stage on the
// socket ring. The batch slice is the caller's again as soon as Send
// returns. Sends to the local node loop back without touching the socket.
func (u *UDP) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || u.closed.Load() {
		return
	}
	if dst.Node == u.local {
		s := u.slot()
		s.msgs = append(s.msgs[:0], batch...)
		select {
		case u.recv[dst.Worker] <- Batch{Msgs: s.msgs, rel: s}:
			u.stats.SentBatches.Add(1)
			u.stats.SentMsgs.Add(uint64(len(batch)))
		default:
			u.stats.DroppedFull.Add(1)
			s.release()
		}
		return
	}
	dests, ok := u.peers[dst.Node]
	if !ok || int(dst.Worker) >= len(dests) {
		u.stats.DroppedFault.Add(1)
		return
	}
	buf := u.getBuf()
	out, err := proto.MarshalBatch(buf[:0], batch)
	if err != nil {
		u.putBuf(buf)
		return
	}
	w := int(dst.Worker) % len(u.rings)
	if !u.rings[w].push(Datagram{Buf: out, Dest: dests[dst.Worker]}) {
		u.stats.DroppedFull.Add(1)
		u.putBuf(buf)
		return
	}
	u.stats.SentBatches.Add(1)
	u.stats.SentMsgs.Add(uint64(len(batch)))
}

// Recv implements Transport.
func (u *UDP) Recv(ep Endpoint) <-chan Batch { return u.recv[ep.Worker] }

// Close implements Transport. Staged datagrams are flushed before the
// sockets close.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	for _, r := range u.rings {
		r.close()
	}
	u.flushWg.Wait()
	for _, s := range u.socks {
		s.Close()
	}
	u.wg.Wait()
	return nil
}

// Stats exposes the transport counters.
func (u *UDP) Stats() *Stats { return &u.stats }
