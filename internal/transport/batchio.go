package transport

import (
	"net"
	"sync/atomic"
)

// Batched datagram I/O: BatchConn wraps a *net.UDPConn with vectored
// WriteBatch/ReadBatch operations. On Linux these are single
// sendmmsg/recvmmsg syscalls moving up to MaxIOBatch datagrams each — the
// software analogue of the paper's doorbell-batched RDMA posts (§6.2:
// "batching messages of all protocols into the same packets" amortises the
// per-message hardware cost; here it amortises the per-datagram syscall
// cost). Everywhere else — and whenever the batch syscalls fail with
// something other than a transient error — the same calls degrade to one
// classic syscall per datagram, so the transport's behaviour is identical
// on every platform and only its syscall count differs.
//
// Destination addresses travel as *UDPDest, which precomputes the raw
// sockaddr bytes once per peer: the per-send conversion net.UDPConn.WriteTo
// performs (and allocates for) on every call happens once per address here.

// MaxIOBatch bounds the datagrams moved by one WriteBatch/ReadBatch call.
// 32 keeps the mmsghdr/iovec arrays comfortably cache-resident while
// amortising the syscall ~30x under load.
const MaxIOBatch = 32

// UDPDest is a resolved datagram destination: the net address plus its
// precomputed raw sockaddr encoding for the batch syscalls. A nil UDPDest
// (or one with a nil UDP address) means "the connected peer" — valid only
// on connected sockets.
type UDPDest struct {
	UDP *net.UDPAddr
	raw rawSockaddr
}

// NewUDPDest precomputes the raw sockaddr for a. Returns nil for nil a.
func NewUDPDest(a *net.UDPAddr) *UDPDest {
	if a == nil {
		return nil
	}
	d := &UDPDest{UDP: a}
	d.raw = marshalSockaddr(a)
	return d
}

// Datagram is one packet staged for WriteBatch: a payload plus its
// destination (nil Dest on connected sockets).
type Datagram struct {
	Buf  []byte
	Dest *UDPDest
}

// BatchConn is a UDP socket with batched I/O. Safe for one concurrent
// writer and one concurrent reader (the transport's flusher and receive
// loops); concurrent writers must serialise externally.
type BatchConn struct {
	conn    *net.UDPConn
	sys     *mmsgState   // platform state; nil when the platform has no batch path
	batched atomic.Bool  // mmsg path active (false: per-datagram fallback)
	limit   atomic.Int32 // test hook: max datagrams per batch syscall (0: MaxIOBatch)
	stats   *Stats       // optional syscall counters
}

// NewBatchConn wraps conn. The batch path is probed lazily on first use and
// degrades permanently to the per-datagram fallback if the platform refuses
// it. A nil stats is allowed (counters are then dropped).
func NewBatchConn(conn *net.UDPConn, stats *Stats) *BatchConn {
	bc := &BatchConn{conn: conn, stats: stats}
	bc.sys = newMmsgState(conn)
	bc.batched.Store(bc.sys != nil)
	return bc
}

// Batched reports whether the batched-syscall path is active.
func (bc *BatchConn) Batched() bool { return bc.batched.Load() }

// DisableBatch forces the per-datagram fallback (tests, and the UDPConfig
// escape hatch for platforms where the probe misbehaves).
func (bc *BatchConn) DisableBatch() { bc.batched.Store(false) }

// setLimit caps datagrams per batch syscall — the test hook that forces
// partial-batch short writes without needing a saturated socket.
func (bc *BatchConn) setLimit(n int) { bc.limit.Store(int32(n)) }

func (bc *BatchConn) maxPerCall() int {
	if n := int(bc.limit.Load()); n > 0 && n < MaxIOBatch {
		return n
	}
	return MaxIOBatch
}

func (bc *BatchConn) countBatched(datagrams int) {
	if bc.stats != nil {
		bc.stats.BatchedSyscalls.Add(1)
		bc.stats.BatchedDatagrams.Add(uint64(datagrams))
	}
}

func (bc *BatchConn) countFallback() {
	if bc.stats != nil {
		bc.stats.FallbackSyscalls.Add(1)
	}
}

// WriteBatch sends every datagram in dgs, looping over partial-batch short
// writes (sendmmsg may send fewer than asked — the remainder is retried
// from where it stopped, never dropped or reordered). Returns the datagrams
// sent and the first hard error; a batch-path failure that looks like a
// platform refusal (ENOSYS and friends) demotes the connection to the
// fallback and retries there rather than failing the caller.
func (bc *BatchConn) WriteBatch(dgs []Datagram) (int, error) {
	sent := 0
	for sent < len(dgs) {
		chunk := dgs[sent:]
		if max := bc.maxPerCall(); len(chunk) > max {
			chunk = chunk[:max]
		}
		if bc.batched.Load() {
			n, err := bc.sys.writeBatch(bc.conn, chunk)
			if err != nil {
				if demoteErr(err) {
					bc.batched.Store(false)
					continue // retry this chunk on the fallback path
				}
				return sent, err
			}
			bc.countBatched(n)
			sent += n
			continue
		}
		// Fallback: one classic syscall per datagram.
		for _, d := range chunk {
			var err error
			if d.Dest == nil || d.Dest.UDP == nil {
				_, err = bc.conn.Write(d.Buf)
			} else {
				_, err = bc.conn.WriteToUDP(d.Buf, d.Dest.UDP)
			}
			if err != nil {
				return sent, err
			}
			bc.countFallback()
			sent++
		}
	}
	return sent, nil
}

// ReadBatch fills bufs with received datagrams, blocking until at least one
// arrives, and returns how many were filled; sizes[i] reports datagram i's
// length. On the batch path one recvmmsg drains up to len(bufs) queued
// datagrams; the fallback reads exactly one. Like the write side, a
// platform refusal demotes to the fallback instead of erroring.
func (bc *BatchConn) ReadBatch(bufs [][]byte, sizes []int) (int, error) {
	if max := bc.maxPerCall(); len(bufs) > max {
		bufs = bufs[:max]
	}
	for {
		if bc.batched.Load() {
			n, err := bc.sys.readBatch(bc.conn, bufs, sizes)
			if err != nil {
				if demoteErr(err) {
					bc.batched.Store(false)
					continue
				}
				return 0, err
			}
			bc.countBatched(n)
			return n, nil
		}
		n, _, err := bc.conn.ReadFromUDP(bufs[0])
		if err != nil {
			return 0, err
		}
		bc.countFallback()
		sizes[0] = n
		return 1, nil
	}
}
