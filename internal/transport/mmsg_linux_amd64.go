//go:build linux && amd64

package transport

// The stdlib syscall table is frozen before sendmmsg was assigned, so the
// numbers are spelled out per architecture (x86-64 ABI).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
