package transport

import (
	"net"
	"testing"
	"time"

	"kite/internal/proto"
)

func mkBatch(from uint8, n int) []proto.Message {
	b := make([]proto.Message, n)
	for i := range b {
		b[i] = proto.Message{Kind: proto.KindESWrite, From: from, Key: uint64(i)}
	}
	return b
}

func TestInProcDelivery(t *testing.T) {
	tr := NewInProc(3, 2, 16)
	defer tr.Close()
	dst := Endpoint{Node: 2, Worker: 1}
	tr.Send(dst, mkBatch(0, 3))
	select {
	case got := <-tr.Recv(dst):
		if len(got) != 3 || got[0].From != 0 {
			t.Fatalf("got %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	// Other endpoints untouched.
	select {
	case <-tr.Recv(Endpoint{Node: 1, Worker: 0}):
		t.Fatal("misrouted batch")
	default:
	}
}

func TestInProcDropOnFull(t *testing.T) {
	tr := NewInProc(1, 1, 2)
	defer tr.Close()
	dst := Endpoint{}
	for i := 0; i < 5; i++ {
		tr.Send(dst, mkBatch(0, 1))
	}
	if got := tr.Stats().DroppedFull.Load(); got != 3 {
		t.Fatalf("DroppedFull = %d, want 3", got)
	}
	if got := tr.Stats().SentBatches.Load(); got != 2 {
		t.Fatalf("SentBatches = %d, want 2", got)
	}
}

func TestInProcEmptyAndClosed(t *testing.T) {
	tr := NewInProc(1, 1, 2)
	dst := Endpoint{}
	tr.Send(dst, nil) // no-op
	tr.Close()
	tr.Send(dst, mkBatch(0, 1)) // dropped silently
	select {
	case <-tr.Recv(dst):
		t.Fatal("received after close")
	default:
	}
}

func TestFaultDrop(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DropLink(0, 1, 1.0)
	dst := Endpoint{Node: 1}
	for i := 0; i < 10; i++ {
		f.Send(dst, mkBatch(0, 1))
	}
	if got := f.Stats().DroppedFault.Load(); got != 10 {
		t.Fatalf("DroppedFault = %d", got)
	}
	// Reverse direction unaffected.
	f.Send(Endpoint{Node: 0}, mkBatch(1, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 0}):
	case <-time.After(time.Second):
		t.Fatal("reverse link affected")
	}
}

func TestFaultCutAndClear(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.CutLink(0, 1, true)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if f.Stats().DroppedFault.Load() != 1 {
		t.Fatal("cut link delivered")
	}
	f.Clear()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
	case <-time.After(time.Second):
		t.Fatal("cleared link still cut")
	}
}

func TestFaultIsolateNode(t *testing.T) {
	tr := NewInProc(3, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.IsolateNode(1, true)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1)) // into isolated node
	f.Send(Endpoint{Node: 2}, mkBatch(1, 1)) // out of isolated node
	f.Send(Endpoint{Node: 2}, mkBatch(0, 1)) // unrelated link
	if got := f.Stats().DroppedFault.Load(); got != 2 {
		t.Fatalf("DroppedFault = %d, want 2", got)
	}
	select {
	case <-tr.Recv(Endpoint{Node: 2}):
	case <-time.After(time.Second):
		t.Fatal("healthy link affected")
	}
	f.IsolateNode(1, false)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
	case <-time.After(time.Second):
		t.Fatal("healed node unreachable")
	}
}

func TestFaultDelay(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DelayLink(0, 1, 30*time.Millisecond)
	start := time.Now()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("delivered too fast: %v", el)
		}
	case <-time.After(time.Second):
		t.Fatal("delayed batch lost")
	}
	if f.Stats().DelayedBatches.Load() != 1 {
		t.Fatal("delay not counted")
	}
}

func TestFaultDropProbabilistic(t *testing.T) {
	tr := NewInProc(2, 1, 4096)
	f := NewFaultInjector(tr, 42)
	defer f.Close()
	f.DropLink(0, 1, 0.5)
	const n = 2000
	for i := 0; i < n; i++ {
		f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	}
	dropped := int(f.Stats().DroppedFault.Load())
	if dropped < n/3 || dropped > 2*n/3 {
		t.Fatalf("dropped %d of %d with p=0.5", dropped, n)
	}
}

func TestUDPLoopAndRemote(t *testing.T) {
	// Node 0 with 2 workers and node 1 with 2 workers, both on loopback.
	mk := func(node uint8) *UDP {
		u, err := NewUDP(UDPConfig{
			LocalNode: node,
			Workers:   2,
			Listen:    []string{"127.0.0.1:0", "127.0.0.1:0"},
			Peers:     map[uint8][]string{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	u0, u1 := mk(0), mk(1)
	defer u0.Close()
	defer u1.Close()
	u0.peers[1] = resolveAll(t, u1.LocalAddrs())
	u1.peers[0] = resolveAll(t, u0.LocalAddrs())

	// Local loopback.
	u0.Send(Endpoint{Node: 0, Worker: 1}, mkBatch(0, 2))
	select {
	case got := <-u0.Recv(Endpoint{Node: 0, Worker: 1}):
		if len(got) != 2 {
			t.Fatalf("loopback got %d msgs", len(got))
		}
	case <-time.After(time.Second):
		t.Fatal("loopback lost")
	}

	// Remote delivery with a value payload (checks the copy-out).
	batch := mkBatch(0, 1)
	batch[0].Value = []byte("payload-123")
	u0.Send(Endpoint{Node: 1, Worker: 1}, batch)
	select {
	case got := <-u1.Recv(Endpoint{Node: 1, Worker: 1}):
		if len(got) != 1 || string(got[0].Value) != "payload-123" {
			t.Fatalf("remote got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remote delivery lost")
	}

	// Unknown destination: dropped, not crashed.
	u0.Send(Endpoint{Node: 9, Worker: 0}, mkBatch(0, 1))
	if u0.Stats().DroppedFault.Load() != 1 {
		t.Fatal("unknown peer not counted as drop")
	}
}

func resolveAll(t *testing.T, addrs []string) []*net.UDPAddr {
	t.Helper()
	out := make([]*net.UDPAddr, len(addrs))
	for i, a := range addrs {
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ra
	}
	return out
}
