package transport

import (
	"net"
	"testing"
	"time"

	"kite/internal/proto"
)

func mkBatch(from uint8, n int) []proto.Message {
	b := make([]proto.Message, n)
	for i := range b {
		b[i] = proto.Message{Kind: proto.KindESWrite, From: from, Key: uint64(i)}
	}
	return b
}

func TestInProcDelivery(t *testing.T) {
	tr := NewInProc(3, 2, 16)
	defer tr.Close()
	dst := Endpoint{Node: 2, Worker: 1}
	tr.Send(dst, mkBatch(0, 3))
	select {
	case got := <-tr.Recv(dst):
		if len(got.Msgs) != 3 || got.Msgs[0].From != 0 {
			t.Fatalf("got %v", got.Msgs)
		}
		got.Release()
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	// Other endpoints untouched.
	select {
	case <-tr.Recv(Endpoint{Node: 1, Worker: 0}):
		t.Fatal("misrouted batch")
	default:
	}
}

func TestInProcDropOnFull(t *testing.T) {
	tr := NewInProc(1, 1, 2)
	defer tr.Close()
	dst := Endpoint{}
	for i := 0; i < 5; i++ {
		tr.Send(dst, mkBatch(0, 1))
	}
	if got := tr.Stats().DroppedFull.Load(); got != 3 {
		t.Fatalf("DroppedFull = %d, want 3", got)
	}
	if got := tr.Stats().SentBatches.Load(); got != 2 {
		t.Fatalf("SentBatches = %d, want 2", got)
	}
}

func TestInProcEmptyAndClosed(t *testing.T) {
	tr := NewInProc(1, 1, 2)
	dst := Endpoint{}
	tr.Send(dst, nil) // no-op
	tr.Close()
	tr.Send(dst, mkBatch(0, 1)) // dropped silently
	select {
	case <-tr.Recv(dst):
		t.Fatal("received after close")
	default:
	}
}

func TestFaultDrop(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DropLink(0, 1, 1.0)
	dst := Endpoint{Node: 1}
	for i := 0; i < 10; i++ {
		f.Send(dst, mkBatch(0, 1))
	}
	if got := f.Stats().DroppedFault.Load(); got != 10 {
		t.Fatalf("DroppedFault = %d", got)
	}
	// Reverse direction unaffected.
	f.Send(Endpoint{Node: 0}, mkBatch(1, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 0}):
	case <-time.After(time.Second):
		t.Fatal("reverse link affected")
	}
}

func TestFaultCutAndClear(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.CutLink(0, 1, true)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if f.Stats().DroppedFault.Load() != 1 {
		t.Fatal("cut link delivered")
	}
	f.Clear()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
	case <-time.After(time.Second):
		t.Fatal("cleared link still cut")
	}
}

func TestFaultIsolateNode(t *testing.T) {
	tr := NewInProc(3, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.IsolateNode(1, true)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1)) // into isolated node
	f.Send(Endpoint{Node: 2}, mkBatch(1, 1)) // out of isolated node
	f.Send(Endpoint{Node: 2}, mkBatch(0, 1)) // unrelated link
	if got := f.Stats().DroppedFault.Load(); got != 2 {
		t.Fatalf("DroppedFault = %d, want 2", got)
	}
	select {
	case <-tr.Recv(Endpoint{Node: 2}):
	case <-time.After(time.Second):
		t.Fatal("healthy link affected")
	}
	f.IsolateNode(1, false)
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
	case <-time.After(time.Second):
		t.Fatal("healed node unreachable")
	}
}

func TestFaultDelay(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DelayLink(0, 1, 30*time.Millisecond)
	start := time.Now()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	select {
	case <-tr.Recv(Endpoint{Node: 1}):
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("delivered too fast: %v", el)
		}
	case <-time.After(time.Second):
		t.Fatal("delayed batch lost")
	}
	if f.Stats().DelayedBatches.Load() != 1 {
		t.Fatal("delay not counted")
	}
}

func TestFaultDropProbabilistic(t *testing.T) {
	tr := NewInProc(2, 1, 4096)
	f := NewFaultInjector(tr, 42)
	defer f.Close()
	f.DropLink(0, 1, 0.5)
	const n = 2000
	for i := 0; i < n; i++ {
		f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	}
	dropped := int(f.Stats().DroppedFault.Load())
	if dropped < n/3 || dropped > 2*n/3 {
		t.Fatalf("dropped %d of %d with p=0.5", dropped, n)
	}
}

func TestUDPLoopAndRemote(t *testing.T) {
	// Node 0 with 2 workers and node 1 with 2 workers, both on loopback.
	mk := func(node uint8) *UDP {
		u, err := NewUDP(UDPConfig{
			LocalNode: node,
			Workers:   2,
			Listen:    []string{"127.0.0.1:0", "127.0.0.1:0"},
			Peers:     map[uint8][]string{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	u0, u1 := mk(0), mk(1)
	defer u0.Close()
	defer u1.Close()
	u0.peers[1] = resolveAll(t, u1.LocalAddrs())
	u1.peers[0] = resolveAll(t, u0.LocalAddrs())

	// Local loopback.
	u0.Send(Endpoint{Node: 0, Worker: 1}, mkBatch(0, 2))
	select {
	case got := <-u0.Recv(Endpoint{Node: 0, Worker: 1}):
		if len(got.Msgs) != 2 {
			t.Fatalf("loopback got %d msgs", len(got.Msgs))
		}
		got.Release()
	case <-time.After(time.Second):
		t.Fatal("loopback lost")
	}

	// Remote delivery with a value payload (checks the pooled-buffer view).
	batch := mkBatch(0, 1)
	batch[0].Value = []byte("payload-123")
	u0.Send(Endpoint{Node: 1, Worker: 1}, batch)
	select {
	case got := <-u1.Recv(Endpoint{Node: 1, Worker: 1}):
		if len(got.Msgs) != 1 || string(got.Msgs[0].Value) != "payload-123" {
			t.Fatalf("remote got %+v", got.Msgs)
		}
		got.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("remote delivery lost")
	}

	// Unknown destination: dropped, not crashed.
	u0.Send(Endpoint{Node: 9, Worker: 0}, mkBatch(0, 1))
	if u0.Stats().DroppedFault.Load() != 1 {
		t.Fatal("unknown peer not counted as drop")
	}
}

func resolveAll(t *testing.T, addrs []string) []*UDPDest {
	t.Helper()
	out := make([]*UDPDest, len(addrs))
	for i, a := range addrs {
		ra, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = NewUDPDest(ra)
	}
	return out
}

// recvBatches drains n batches from ch (releasing each), failing the test on
// timeout. Returns the total number of messages seen.
func recvBatches(t *testing.T, ch <-chan Batch, n int, timeout time.Duration) int {
	t.Helper()
	msgs := 0
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case b := <-ch:
			msgs += len(b.Msgs)
			b.Release()
		case <-deadline:
			t.Fatalf("received %d/%d batches before timeout", i, n)
		}
	}
	return msgs
}

// udpPair builds two single-worker UDP transports wired to each other.
func udpPair(t *testing.T, cfg func(*UDPConfig)) (*UDP, *UDP) {
	t.Helper()
	mk := func(node uint8) *UDP {
		c := UDPConfig{
			LocalNode: node, Workers: 1,
			Listen: []string{"127.0.0.1:0"},
			Peers:  map[uint8][]string{},
		}
		if cfg != nil {
			cfg(&c)
		}
		u, err := NewUDP(c)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	u0, u1 := mk(0), mk(1)
	t.Cleanup(func() { u0.Close(); u1.Close() })
	u0.peers[1] = resolveAll(t, u1.LocalAddrs())
	u1.peers[0] = resolveAll(t, u0.LocalAddrs())
	return u0, u1
}

// TestUDPBatchSyscallCounters pins the batched-syscall accounting: remote
// traffic must show up either as batched syscalls (sendmmsg/recvmmsg alive)
// or as fallback syscalls (platform demoted) — never neither.
func TestUDPBatchSyscallCounters(t *testing.T) {
	u0, u1 := udpPair(t, nil)
	const n = 20
	for i := 0; i < n; i++ {
		u0.Send(Endpoint{Node: 1}, mkBatch(0, 2))
	}
	recvBatches(t, u1.Recv(Endpoint{Node: 1}), n, 5*time.Second)

	st := u0.Stats()
	batched := st.BatchedSyscalls.Load()
	fallback := st.FallbackSyscalls.Load()
	if batched+fallback == 0 {
		t.Fatal("remote sends recorded neither batched nor fallback syscalls")
	}
	if u0.Batched() && st.BatchedDatagrams.Load() < n {
		t.Fatalf("BatchedDatagrams = %d, want >= %d on the active batch path",
			st.BatchedDatagrams.Load(), n)
	}
	// The receive side counts its syscalls too.
	rst := u1.Stats()
	if rst.BatchedSyscalls.Load()+rst.FallbackSyscalls.Load() == 0 {
		t.Fatal("receiver recorded no syscalls")
	}
}

// TestUDPFallbackPath forces the per-datagram fallback via the config escape
// hatch and checks delivery is indistinguishable (only the counters differ).
func TestUDPFallbackPath(t *testing.T) {
	u0, u1 := udpPair(t, func(c *UDPConfig) { c.DisableBatchIO = true })
	if u0.Batched() || u1.Batched() {
		t.Fatal("DisableBatchIO left the batch path active")
	}
	const n = 10
	for i := 0; i < n; i++ {
		u0.Send(Endpoint{Node: 1}, mkBatch(0, 3))
	}
	if msgs := recvBatches(t, u1.Recv(Endpoint{Node: 1}), n, 5*time.Second); msgs != 3*n {
		t.Fatalf("fallback path delivered %d msgs, want %d", msgs, 3*n)
	}
	if u0.Stats().FallbackSyscalls.Load() == 0 {
		t.Fatal("fallback sends not counted")
	}
	if u0.Stats().BatchedSyscalls.Load() != 0 {
		t.Fatal("batched syscalls counted on a disabled batch path")
	}
}

// TestBatchConnShortWriteRetry pins partial-batch handling: when a batch
// syscall moves fewer datagrams than asked (forced here via setLimit), the
// remainder must be retried from where it stopped — every datagram arrives,
// none dropped, none duplicated.
func TestBatchConnShortWriteRetry(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "batched"
		if disable {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer recvConn.Close()
			sendConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer sendConn.Close()

			var st Stats
			bc := NewBatchConn(sendConn, &st)
			bc.setLimit(3) // every syscall moves at most 3 datagrams
			if disable {
				bc.DisableBatch()
			}
			dest := NewUDPDest(recvConn.LocalAddr().(*net.UDPAddr))
			const n = 10
			dgs := make([]Datagram, n)
			for i := range dgs {
				dgs[i] = Datagram{Buf: []byte{byte(i)}, Dest: dest}
			}
			sent, err := bc.WriteBatch(dgs)
			if err != nil || sent != n {
				t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", sent, err, n)
			}
			if bc.Batched() {
				// ceil(10/3) = 4 syscalls minimum on the capped batch path.
				if calls := st.BatchedSyscalls.Load(); calls < 4 {
					t.Fatalf("BatchedSyscalls = %d, want >= 4 with limit 3", calls)
				}
				if st.BatchedDatagrams.Load() != n {
					t.Fatalf("BatchedDatagrams = %d, want %d", st.BatchedDatagrams.Load(), n)
				}
			} else if st.FallbackSyscalls.Load() != n {
				t.Fatalf("FallbackSyscalls = %d, want %d", st.FallbackSyscalls.Load(), n)
			}

			// Every datagram arrives exactly once, via ReadBatch.
			rbc := NewBatchConn(recvConn, nil)
			if disable {
				rbc.DisableBatch()
			}
			recvConn.SetReadDeadline(time.Now().Add(5 * time.Second))
			var seen [n]bool
			bufs := make([][]byte, MaxIOBatch)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			sizes := make([]int, MaxIOBatch)
			got := 0
			for got < n {
				k, err := rbc.ReadBatch(bufs, sizes)
				if err != nil {
					t.Fatalf("ReadBatch after %d datagrams: %v", got, err)
				}
				for i := 0; i < k; i++ {
					if sizes[i] != 1 {
						t.Fatalf("datagram %d has size %d, want 1", got+i, sizes[i])
					}
					id := int(bufs[i][0])
					if seen[id] {
						t.Fatalf("datagram %d delivered twice", id)
					}
					seen[id] = true
				}
				got += k
			}
		})
	}
}

// TestUDPPartialBatchUnderLimit runs whole-transport traffic with a batch
// limit forcing multi-syscall flushes: delivery stays complete.
func TestUDPPartialBatchUnderLimit(t *testing.T) {
	u0, u1 := udpPair(t, func(c *UDPConfig) {
		c.FlushDelay = 2 * time.Millisecond // encourage multi-datagram flushes
	})
	u0.setBatchLimit(2)
	const n = 24
	for i := 0; i < n; i++ {
		u0.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	}
	if msgs := recvBatches(t, u1.Recv(Endpoint{Node: 1}), n, 5*time.Second); msgs != n {
		t.Fatalf("delivered %d msgs, want %d", msgs, n)
	}
}
