package transport

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/proto"
)

// FaultInjector wraps a Transport with programmable network misbehaviour:
// per-link drop probability, per-link one-way partitions, and fixed delivery
// delays. It is the instrument behind the failure study (§8.4) and the
// fault-injection tests — it is what turns "asynchrony is rare in a
// datacenter" into a dial we can sweep.
//
// Drops are decided per batch with a deterministic PRNG so failure tests are
// reproducible. Delays re-enqueue the batch from a timer goroutine, which
// models an arbitrarily slow link without blocking the sender; the partition
// rules are re-checked when the timer fires (see deliverDelayed), so a link
// cut while a delayed batch was in flight still swallows it — rule state is
// snapshotted at delivery time, not send time.
//
// Per-link drop/delay counters accumulate for the lifetime of the injector
// and survive Clear, so a chaos run can prove its nemeses actually touched
// traffic even after every rule has been healed.
type FaultInjector struct {
	inner Transport
	stats Stats

	mu    sync.RWMutex
	rng   *rand.Rand
	rules map[linkKey]*linkRule
	// counters is the per-link fault ledger. Separate from rules — and
	// never reset — because Clear must heal the network without erasing
	// the evidence that faults were injected.
	counters map[linkKey]*linkCounters
	// nodeCut[n] severs every link to and from node n (bidirectional
	// partition), the blunt instrument used to isolate a replica.
	nodeCut [64]atomic.Bool

	closed atomic.Bool
}

type linkKey struct{ from, to uint8 }

type linkRule struct {
	dropProb float64
	dupProb  float64
	delay    time.Duration
	cut      bool
}

type linkCounters struct {
	dropped    atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
}

// LinkStat reports one link's accumulated fault counters: batches dropped
// (by drop probability, cut links or node isolation — at send or at delayed
// delivery), batches delayed, and batches duplicated.
type LinkStat struct {
	From       uint8  `json:"from"`
	To         uint8  `json:"to"`
	Dropped    uint64 `json:"dropped"`
	Delayed    uint64 `json:"delayed"`
	Duplicated uint64 `json:"duplicated,omitempty"`
}

// NewFaultInjector wraps inner. Seed fixes the drop PRNG.
func NewFaultInjector(inner Transport, seed int64) *FaultInjector {
	return &FaultInjector{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		rules:    make(map[linkKey]*linkRule),
		counters: make(map[linkKey]*linkCounters),
	}
}

// DropLink sets the probability in [0,1] that a batch from node `from` to
// node `to` is silently discarded.
func (f *FaultInjector) DropLink(from, to uint8, prob float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).dropProb = prob
}

// DupLink sets the probability in [0,1] that a batch from node `from` to
// node `to` is delivered twice — the UD-transport failure mode that protocol
// retries already create, but injected deterministically. Duplicate delivery
// is what the reset-bit and exactly-once machinery must survive (§7).
func (f *FaultInjector) DupLink(from, to uint8, prob float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).dupProb = prob
}

// DelayLink adds a fixed one-way delivery delay on the link.
func (f *FaultInjector) DelayLink(from, to uint8, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).delay = d
}

// CutLink severs the one-way link (drops everything).
func (f *FaultInjector) CutLink(from, to uint8, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).cut = cut
}

// IsolateNode cuts every link touching node n (a full partition of the
// replica). Passing false heals it.
func (f *FaultInjector) IsolateNode(n uint8, isolated bool) {
	f.nodeCut[n].Store(isolated)
}

// Clear removes all link rules (node isolation flags included). The
// per-link counters are deliberately preserved: healing the network must
// not destroy the record of what the faults did while they were active.
func (f *FaultInjector) Clear() {
	f.mu.Lock()
	f.rules = make(map[linkKey]*linkRule)
	f.mu.Unlock()
	for i := range f.nodeCut {
		f.nodeCut[i].Store(false)
	}
}

func (f *FaultInjector) rule(from, to uint8) *linkRule {
	k := linkKey{from, to}
	r := f.rules[k]
	if r == nil {
		r = &linkRule{}
		f.rules[k] = r
	}
	return r
}

// counter returns the (lazily created) fault ledger for a link.
func (f *FaultInjector) counter(from, to uint8) *linkCounters {
	k := linkKey{from, to}
	f.mu.RLock()
	c := f.counters[k]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.counters[k]; c == nil {
		c = &linkCounters{}
		f.counters[k] = c
	}
	return c
}

func (f *FaultInjector) countDrop(from, to uint8) {
	f.stats.DroppedFault.Add(1)
	f.counter(from, to).dropped.Add(1)
}

// Send implements Transport. The sender's node id is taken from the first
// message of the batch (all messages in a batch share an origin).
func (f *FaultInjector) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || f.closed.Load() {
		return
	}
	from := batch[0].From
	if f.nodeCut[from].Load() || f.nodeCut[dst.Node].Load() {
		f.countDrop(from, dst.Node)
		return
	}
	var (
		delay             time.Duration
		dropProb, dupProb float64
	)
	f.mu.RLock()
	if r, ok := f.rules[linkKey{from, dst.Node}]; ok {
		if r.cut {
			f.mu.RUnlock()
			f.countDrop(from, dst.Node)
			return
		}
		dropProb, dupProb, delay = r.dropProb, r.dupProb, r.delay
	}
	f.mu.RUnlock()

	dup := false
	if dropProb > 0 || dupProb > 0 {
		// rand.Rand is not concurrency-safe; roll under the write lock.
		// Each active rule consumes exactly one roll, so drop-only seeds
		// keep the exact sequences the older tests were pinned to.
		f.mu.Lock()
		dropRoll, dupRoll := 1.0, 1.0
		if dropProb > 0 {
			dropRoll = f.rng.Float64()
		}
		if dupProb > 0 {
			dupRoll = f.rng.Float64()
		}
		f.mu.Unlock()
		if dropRoll < dropProb {
			f.countDrop(from, dst.Node)
			return
		}
		dup = dupRoll < dupProb
	}
	if dup {
		f.stats.Duplicated.Add(1)
		f.counter(from, dst.Node).duplicated.Add(1)
	}
	if delay > 0 {
		f.stats.DelayedBatches.Add(1)
		f.counter(from, dst.Node).delayed.Add(1)
		// The caller owns batch and may reuse it the moment Send returns;
		// a delayed delivery outlives that, so it rides its own copy (the
		// fault path may allocate — only the healthy path is budgeted).
		held := append([]proto.Message(nil), batch...)
		time.AfterFunc(delay, func() { f.deliverDelayed(from, dst, held) })
		if dup {
			time.AfterFunc(delay, func() { f.deliverDelayed(from, dst, held) })
		}
		return
	}
	f.inner.Send(dst, batch)
	if dup {
		f.inner.Send(dst, batch)
	}
}

// deliverDelayed completes a DelayLink'd send when its timer fires. The
// partition rules are re-evaluated here, against the CURRENT rule set: a
// CutLink or IsolateNode installed after the batch was scheduled — even
// across an intervening Clear — still applies, exactly as a real slow link
// drops whatever is in flight when it is severed. Drop probability and
// further delay are not re-applied (the batch already paid its toll; a
// still-standing delay rule must not compound forever).
func (f *FaultInjector) deliverDelayed(from uint8, dst Endpoint, batch []proto.Message) {
	if f.closed.Load() {
		return
	}
	if f.nodeCut[from].Load() || f.nodeCut[dst.Node].Load() {
		f.countDrop(from, dst.Node)
		return
	}
	f.mu.RLock()
	cut := false
	if r, ok := f.rules[linkKey{from, dst.Node}]; ok {
		cut = r.cut
	}
	f.mu.RUnlock()
	if cut {
		f.countDrop(from, dst.Node)
		return
	}
	f.inner.Send(dst, batch)
}

// Recv implements Transport.
func (f *FaultInjector) Recv(ep Endpoint) <-chan Batch { return f.inner.Recv(ep) }

// Close implements Transport.
func (f *FaultInjector) Close() error {
	f.closed.Store(true)
	return f.inner.Close()
}

// Stats exposes the fault counters.
func (f *FaultInjector) Stats() *Stats { return &f.stats }

// LinkStats snapshots the per-link fault ledger, sorted by (from, to).
// Links that never saw a fault event are omitted.
func (f *FaultInjector) LinkStats() []LinkStat {
	f.mu.RLock()
	out := make([]LinkStat, 0, len(f.counters))
	for k, c := range f.counters {
		s := LinkStat{
			From: k.from, To: k.to,
			Dropped:    c.dropped.Load(),
			Delayed:    c.delayed.Load(),
			Duplicated: c.duplicated.Load(),
		}
		if s.Dropped > 0 || s.Delayed > 0 || s.Duplicated > 0 {
			out = append(out, s)
		}
	}
	f.mu.RUnlock()
	sortLinkStats(out)
	return out
}

func sortLinkStats(s []LinkStat) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].From != s[j].From {
			return s[i].From < s[j].From
		}
		return s[i].To < s[j].To
	})
}

// FaultSet fans one fault surface out over several FaultInjectors — the
// shape of a multi-process-style deployment where every node owns its own
// transport (and therefore its own injector). Rules are applied to every
// member; since an injector only consults rules matching its own outgoing
// traffic, the fan-out is harmless and the set behaves exactly like one
// injector wrapping a shared transport. A set over a single injector is the
// degenerate (in-process) case, so chaos tooling can target both shapes
// through one type.
type FaultSet struct {
	mu   sync.RWMutex
	injs []*FaultInjector
}

// NewFaultSet builds a set over the given injectors.
func NewFaultSet(injs ...*FaultInjector) *FaultSet {
	return &FaultSet{injs: append([]*FaultInjector(nil), injs...)}
}

// Add grows the set (a deployment booting another node mid-run).
func (s *FaultSet) Add(fi *FaultInjector) {
	s.mu.Lock()
	s.injs = append(s.injs, fi)
	s.mu.Unlock()
}

func (s *FaultSet) each(fn func(*FaultInjector)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, fi := range s.injs {
		fn(fi)
	}
}

// DropLink applies the drop rule to every member injector.
func (s *FaultSet) DropLink(from, to uint8, prob float64) {
	s.each(func(fi *FaultInjector) { fi.DropLink(from, to, prob) })
}

// DupLink applies the duplication rule to every member injector.
func (s *FaultSet) DupLink(from, to uint8, prob float64) {
	s.each(func(fi *FaultInjector) { fi.DupLink(from, to, prob) })
}

// DelayLink applies the delay rule to every member injector.
func (s *FaultSet) DelayLink(from, to uint8, d time.Duration) {
	s.each(func(fi *FaultInjector) { fi.DelayLink(from, to, d) })
}

// CutLink applies the cut rule to every member injector.
func (s *FaultSet) CutLink(from, to uint8, cut bool) {
	s.each(func(fi *FaultInjector) { fi.CutLink(from, to, cut) })
}

// IsolateNode partitions (or heals) node n on every member injector.
func (s *FaultSet) IsolateNode(n uint8, isolated bool) {
	s.each(func(fi *FaultInjector) { fi.IsolateNode(n, isolated) })
}

// Clear heals every member injector (counters preserved, as on the
// injectors themselves).
func (s *FaultSet) Clear() {
	s.each(func(fi *FaultInjector) { fi.Clear() })
}

// LinkStats merges every member's per-link ledger, summing per link and
// sorting by (from, to).
func (s *FaultSet) LinkStats() []LinkStat {
	acc := make(map[linkKey]*LinkStat)
	s.each(func(fi *FaultInjector) {
		for _, ls := range fi.LinkStats() {
			k := linkKey{ls.From, ls.To}
			if a := acc[k]; a != nil {
				a.Dropped += ls.Dropped
				a.Delayed += ls.Delayed
				a.Duplicated += ls.Duplicated
			} else {
				cp := ls
				acc[k] = &cp
			}
		}
	})
	out := make([]LinkStat, 0, len(acc))
	for _, a := range acc {
		out = append(out, *a)
	}
	sortLinkStats(out)
	return out
}
