package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/proto"
)

// FaultInjector wraps a Transport with programmable network misbehaviour:
// per-link drop probability, per-link one-way partitions, and fixed delivery
// delays. It is the instrument behind the failure study (§8.4) and the
// fault-injection tests — it is what turns "asynchrony is rare in a
// datacenter" into a dial we can sweep.
//
// Drops are decided per batch with a deterministic PRNG so failure tests are
// reproducible. Delays re-enqueue the batch from a timer goroutine, which
// models an arbitrarily slow link without blocking the sender.
type FaultInjector struct {
	inner Transport
	stats Stats

	mu    sync.RWMutex
	rng   *rand.Rand
	rules map[linkKey]*linkRule
	// nodeCut[n] severs every link to and from node n (bidirectional
	// partition), the blunt instrument used to isolate a replica.
	nodeCut [64]atomic.Bool

	closed atomic.Bool
}

type linkKey struct{ from, to uint8 }

type linkRule struct {
	dropProb float64
	delay    time.Duration
	cut      bool
}

// NewFaultInjector wraps inner. Seed fixes the drop PRNG.
func NewFaultInjector(inner Transport, seed int64) *FaultInjector {
	return &FaultInjector{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[linkKey]*linkRule),
	}
}

// DropLink sets the probability in [0,1] that a batch from node `from` to
// node `to` is silently discarded.
func (f *FaultInjector) DropLink(from, to uint8, prob float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).dropProb = prob
}

// DelayLink adds a fixed one-way delivery delay on the link.
func (f *FaultInjector) DelayLink(from, to uint8, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).delay = d
}

// CutLink severs the one-way link (drops everything).
func (f *FaultInjector) CutLink(from, to uint8, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule(from, to).cut = cut
}

// IsolateNode cuts every link touching node n (a full partition of the
// replica). Passing false heals it.
func (f *FaultInjector) IsolateNode(n uint8, isolated bool) {
	f.nodeCut[n].Store(isolated)
}

// Clear removes all link rules (node isolation flags included).
func (f *FaultInjector) Clear() {
	f.mu.Lock()
	f.rules = make(map[linkKey]*linkRule)
	f.mu.Unlock()
	for i := range f.nodeCut {
		f.nodeCut[i].Store(false)
	}
}

func (f *FaultInjector) rule(from, to uint8) *linkRule {
	k := linkKey{from, to}
	r := f.rules[k]
	if r == nil {
		r = &linkRule{}
		f.rules[k] = r
	}
	return r
}

// Send implements Transport. The sender's node id is taken from the first
// message of the batch (all messages in a batch share an origin).
func (f *FaultInjector) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || f.closed.Load() {
		return
	}
	from := batch[0].From
	if f.nodeCut[from].Load() || f.nodeCut[dst.Node].Load() {
		f.stats.DroppedFault.Add(1)
		return
	}
	var delay time.Duration
	f.mu.RLock()
	if r, ok := f.rules[linkKey{from, dst.Node}]; ok {
		if r.cut {
			f.mu.RUnlock()
			f.stats.DroppedFault.Add(1)
			return
		}
		if r.dropProb > 0 {
			// rand.Rand is not concurrency-safe; guard with the same
			// mutex in write mode only when a drop rule exists.
			f.mu.RUnlock()
			f.mu.Lock()
			roll := f.rng.Float64()
			f.mu.Unlock()
			if roll < r.dropProb {
				f.stats.DroppedFault.Add(1)
				return
			}
			delay = r.delay
			goto deliver
		}
		delay = r.delay
	}
	f.mu.RUnlock()

deliver:
	if delay > 0 {
		f.stats.DelayedBatches.Add(1)
		time.AfterFunc(delay, func() {
			if !f.closed.Load() {
				f.inner.Send(dst, batch)
			}
		})
		return
	}
	f.inner.Send(dst, batch)
}

// Recv implements Transport.
func (f *FaultInjector) Recv(ep Endpoint) <-chan []proto.Message { return f.inner.Recv(ep) }

// Close implements Transport.
func (f *FaultInjector) Close() error {
	f.closed.Store(true)
	return f.inner.Close()
}

// Stats exposes the fault counters.
func (f *FaultInjector) Stats() *Stats { return &f.stats }
