// Package transport moves message batches between (node, worker) endpoints.
//
// The paper's Kite runs RPCs over RDMA UD sends: unreliable datagrams with
// application-level batching ("doorbell batching", opportunistic batching of
// all protocols into one packet) and exactly one connection between worker i
// of a node and worker i of every remote node (§6.3). This package
// reproduces those semantics with two interchangeable implementations:
//
//   - InProc: a matrix of bounded mailboxes inside one process. Sends never
//     block; a full mailbox drops the batch, exactly like a saturated UD
//     queue pair. A FaultInjector wraps any transport with message drops,
//     delays, partitions and node pauses for the failure studies.
//   - UDP (udp.go): real datagram sockets for multi-process deployments,
//     with the same drop-on-overload, no-delivery-guarantee contract. Its
//     hot path is allocation-free: messages are encoded in place into
//     pooled datagram buffers, handed to a per-socket send ring, and
//     flushed in batched sendmmsg/recvmmsg syscalls (batchio.go) with a
//     per-datagram fallback on platforms without the batch APIs.
//
// All Kite protocols are designed for an asynchronous lossy network, so the
// transport deliberately offers no reliability: loss surfaces as protocol
// retries or as the fast-path → slow-path transition under test.
package transport

import (
	"sync/atomic"

	"kite/internal/proto"
)

// Endpoint names a worker's mailbox.
type Endpoint struct {
	Node   uint8
	Worker uint8
}

// Batch is one delivered message batch. Msgs — and any Value/Origins views
// inside it — may alias transport-owned pooled buffers: the receiver must
// call Release when it has fully consumed the batch (retaining nothing that
// aliases it), which recycles the buffers for the next delivery. Release on
// a batch with no pooled backing (InProc hand-offs from older tests, the
// zero Batch) is a no-op, so callers can release unconditionally.
type Batch struct {
	Msgs []proto.Message
	rel  releaser
}

// releaser recycles a delivered batch's pooled backing. Implemented by the
// transports' receive slots; kept as an interface so Batch stays one word
// wider than the message slice and a Release needs no closure allocation.
type releaser interface{ release() }

// Release returns the batch's pooled buffers to its transport. Idempotent.
func (b *Batch) Release() {
	if b.rel != nil {
		b.rel.release()
		b.rel = nil
	}
}

// Transport delivers batches of messages between endpoints. Send is
// non-blocking and unreliable: delivery may silently fail. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Send enqueues a batch for dst. The batch slice remains owned by the
	// caller and may be reused as soon as Send returns: implementations
	// encode or copy it synchronously. The messages' Value/Origins
	// payloads, by contrast, must stay immutable until delivered (workers
	// never recycle those: values belong to sessions or fresh replies).
	Send(dst Endpoint, batch []proto.Message)
	// Recv returns the receive channel for a local endpoint. Each queued
	// element is one batch, released by the consumer.
	Recv(ep Endpoint) <-chan Batch
	// Close releases resources. Sends after Close are dropped.
	Close() error
}

// Stats counts transport-level events; useful in tests and the bench harness
// to confirm that fault injection actually exercised the lossy paths.
type Stats struct {
	SentBatches    atomic.Uint64
	SentMsgs       atomic.Uint64
	DroppedFull    atomic.Uint64 // mailbox overflow (UD queue overrun)
	DroppedFault   atomic.Uint64 // dropped by fault injection
	DelayedBatches atomic.Uint64
	Duplicated     atomic.Uint64 // batches duplicated by fault injection

	// Batched-syscall counters (UDP transport / BatchConn).
	BatchedSyscalls  atomic.Uint64 // sendmmsg/recvmmsg invocations
	BatchedDatagrams atomic.Uint64 // datagrams moved by those invocations
	FallbackSyscalls atomic.Uint64 // per-datagram syscalls (fallback path)
}

// InProc is the in-process transport: one bounded channel per destination
// endpoint. Sent batches are copied into pooled message slices so the
// sender's staging buffers can be reused immediately; receivers return the
// pooled slices via Batch.Release.
type InProc struct {
	nodes    int
	workers  int
	mailbox  []chan Batch
	slots    chan *inprocSlot
	stats    Stats
	closed   atomic.Bool
	capacity int
}

// inprocSlot is one pooled message-slice copy in flight through a mailbox.
type inprocSlot struct {
	t    *InProc
	msgs []proto.Message
}

func (s *inprocSlot) release() {
	select {
	case s.t.slots <- s:
	default: // pool full: let the GC take it
	}
}

// DefaultMailboxDepth bounds each endpoint queue. Deep enough to absorb
// bursts, shallow enough that a paused node exerts backpressure as drops —
// the same behaviour as a stalled RDMA receive queue.
const DefaultMailboxDepth = 4096

// inprocSlotPoolSize bounds the recycled message-slice pool. Sized to the
// mailbox count times a small burst factor; overflow slots are simply
// garbage collected.
const inprocSlotPoolSize = 1024

// NewInProc creates mailboxes for nodes x workers endpoints.
func NewInProc(nodes, workers, depth int) *InProc {
	if depth <= 0 {
		depth = DefaultMailboxDepth
	}
	t := &InProc{nodes: nodes, workers: workers, capacity: depth}
	t.mailbox = make([]chan Batch, nodes*workers)
	for i := range t.mailbox {
		t.mailbox[i] = make(chan Batch, depth)
	}
	t.slots = make(chan *inprocSlot, inprocSlotPoolSize)
	return t
}

func (t *InProc) idx(ep Endpoint) int { return int(ep.Node)*t.workers + int(ep.Worker) }

// slot returns a pooled copy slot, allocating when the pool is dry.
func (t *InProc) slot() *inprocSlot {
	select {
	case s := <-t.slots:
		return s
	default:
		return &inprocSlot{t: t}
	}
}

// Send implements Transport. A full mailbox drops the batch.
func (t *InProc) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || t.closed.Load() {
		return
	}
	s := t.slot()
	s.msgs = append(s.msgs[:0], batch...)
	select {
	case t.mailbox[t.idx(dst)] <- Batch{Msgs: s.msgs, rel: s}:
		t.stats.SentBatches.Add(1)
		t.stats.SentMsgs.Add(uint64(len(batch)))
	default:
		t.stats.DroppedFull.Add(1)
		s.release()
	}
}

// Recv implements Transport.
func (t *InProc) Recv(ep Endpoint) <-chan Batch { return t.mailbox[t.idx(ep)] }

// Close implements Transport.
func (t *InProc) Close() error {
	t.closed.Store(true)
	return nil
}

// Stats exposes the transport counters.
func (t *InProc) Stats() *Stats { return &t.stats }
