// Package transport moves message batches between (node, worker) endpoints.
//
// The paper's Kite runs RPCs over RDMA UD sends: unreliable datagrams with
// application-level batching ("doorbell batching", opportunistic batching of
// all protocols into one packet) and exactly one connection between worker i
// of a node and worker i of every remote node (§6.3). This package
// reproduces those semantics with two interchangeable implementations:
//
//   - InProc: a matrix of bounded mailboxes inside one process. Sends never
//     block; a full mailbox drops the batch, exactly like a saturated UD
//     queue pair. A FaultInjector wraps any transport with message drops,
//     delays, partitions and node pauses for the failure studies.
//   - UDP (udp.go): real datagram sockets for multi-process deployments,
//     with the same drop-on-overload, no-delivery-guarantee contract.
//
// All Kite protocols are designed for an asynchronous lossy network, so the
// transport deliberately offers no reliability: loss surfaces as protocol
// retries or as the fast-path → slow-path transition under test.
package transport

import (
	"sync/atomic"

	"kite/internal/proto"
)

// Endpoint names a worker's mailbox.
type Endpoint struct {
	Node   uint8
	Worker uint8
}

// Transport delivers batches of messages between endpoints. Send is
// non-blocking and unreliable: delivery may silently fail. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Send enqueues a batch for dst. The batch slice is owned by the
	// transport after the call.
	Send(dst Endpoint, batch []proto.Message)
	// Recv returns the receive channel for a local endpoint. Each queued
	// element is one batch.
	Recv(ep Endpoint) <-chan []proto.Message
	// Close releases resources. Sends after Close are dropped.
	Close() error
}

// Stats counts transport-level events; useful in tests and the bench harness
// to confirm that fault injection actually exercised the lossy paths.
type Stats struct {
	SentBatches    atomic.Uint64
	SentMsgs       atomic.Uint64
	DroppedFull    atomic.Uint64 // mailbox overflow (UD queue overrun)
	DroppedFault   atomic.Uint64 // dropped by fault injection
	DelayedBatches atomic.Uint64
}

// InProc is the in-process transport: one bounded channel per destination
// endpoint.
type InProc struct {
	nodes    int
	workers  int
	mailbox  []chan []proto.Message
	stats    Stats
	closed   atomic.Bool
	capacity int
}

// DefaultMailboxDepth bounds each endpoint queue. Deep enough to absorb
// bursts, shallow enough that a paused node exerts backpressure as drops —
// the same behaviour as a stalled RDMA receive queue.
const DefaultMailboxDepth = 4096

// NewInProc creates mailboxes for nodes x workers endpoints.
func NewInProc(nodes, workers, depth int) *InProc {
	if depth <= 0 {
		depth = DefaultMailboxDepth
	}
	t := &InProc{nodes: nodes, workers: workers, capacity: depth}
	t.mailbox = make([]chan []proto.Message, nodes*workers)
	for i := range t.mailbox {
		t.mailbox[i] = make(chan []proto.Message, depth)
	}
	return t
}

func (t *InProc) idx(ep Endpoint) int { return int(ep.Node)*t.workers + int(ep.Worker) }

// Send implements Transport. A full mailbox drops the batch.
func (t *InProc) Send(dst Endpoint, batch []proto.Message) {
	if len(batch) == 0 || t.closed.Load() {
		return
	}
	select {
	case t.mailbox[t.idx(dst)] <- batch:
		t.stats.SentBatches.Add(1)
		t.stats.SentMsgs.Add(uint64(len(batch)))
	default:
		t.stats.DroppedFull.Add(1)
	}
}

// Recv implements Transport.
func (t *InProc) Recv(ep Endpoint) <-chan []proto.Message { return t.mailbox[t.idx(ep)] }

// Close implements Transport.
func (t *InProc) Close() error {
	t.closed.Store(true)
	return nil
}

// Stats exposes the transport counters.
func (t *InProc) Stats() *Stats { return &t.stats }
