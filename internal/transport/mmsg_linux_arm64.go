//go:build linux && arm64

package transport

// The stdlib syscall table is frozen before sendmmsg was assigned, so the
// numbers are spelled out per architecture (generic 64-bit ABI).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
