// FaultInjector-focused tests: the injector is the instrument every fault
// and chaos suite leans on, so its own behaviour — seeded determinism,
// isolation symmetry, delayed-delivery rule snapshots, per-link ledgers and
// rule mutation under full concurrency — is pinned here (run with -race).
package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// drain empties an endpoint's mailbox, returning how many batches arrived.
func drain(tr *InProc, ep Endpoint) int {
	n := 0
	for {
		select {
		case <-tr.Recv(ep):
			n++
		default:
			return n
		}
	}
}

// TestFaultSeededDeterminism pins the reproducibility contract: two
// injectors built with the same seed make identical drop decisions for an
// identical send sequence; a different seed diverges.
func TestFaultSeededDeterminism(t *testing.T) {
	pattern := func(seed int64) string {
		tr := NewInProc(2, 1, 1024)
		f := NewFaultInjector(tr, seed)
		defer f.Close()
		f.DropLink(0, 1, 0.5)
		dst := Endpoint{Node: 1}
		out := make([]byte, 0, 256)
		for i := 0; i < 256; i++ {
			before := f.Stats().DroppedFault.Load()
			f.Send(dst, mkBatch(0, 1))
			if f.Stats().DroppedFault.Load() > before {
				out = append(out, 'd')
			} else {
				out = append(out, '.')
			}
		}
		return string(out)
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different drop decisions:\n%s\n%s", a, b)
	}
	if c := pattern(43); c == a {
		t.Fatal("different seeds produced identical 256-send drop patterns")
	}
}

// TestFaultIsolateSymmetry: isolating EITHER endpoint of a link kills
// traffic in BOTH directions, and healing restores both.
func TestFaultIsolateSymmetry(t *testing.T) {
	for _, isolate := range []uint8{0, 1} {
		t.Run(fmt.Sprintf("isolate-%d", isolate), func(t *testing.T) {
			tr := NewInProc(2, 1, 64)
			f := NewFaultInjector(tr, 1)
			defer f.Close()
			f.IsolateNode(isolate, true)
			f.Send(Endpoint{Node: 1}, mkBatch(0, 1)) // 0 -> 1
			f.Send(Endpoint{Node: 0}, mkBatch(1, 1)) // 1 -> 0
			if got := f.Stats().DroppedFault.Load(); got != 2 {
				t.Fatalf("DroppedFault = %d, want 2 (both directions)", got)
			}
			f.IsolateNode(isolate, false)
			f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
			f.Send(Endpoint{Node: 0}, mkBatch(1, 1))
			if drain(tr, Endpoint{Node: 1}) != 1 || drain(tr, Endpoint{Node: 0}) != 1 {
				t.Fatal("healed node still partitioned")
			}
		})
	}
}

// TestFaultDelayedDeliveryHonorsLaterCut is the delayed-send/Clear
// interaction fix: a batch delayed BEFORE Clear must not sneak past a
// CutLink installed AFTER Clear — the rule set is consulted when the timer
// fires, not when the send was scheduled.
func TestFaultDelayedDeliveryHonorsLaterCut(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	dst := Endpoint{Node: 1}

	f.DelayLink(0, 1, 60*time.Millisecond)
	f.Send(dst, mkBatch(0, 1)) // scheduled under the delay rule
	f.Clear()
	f.CutLink(0, 1, true) // the world changed while the batch was in flight

	time.Sleep(150 * time.Millisecond)
	if n := drain(tr, dst); n != 0 {
		t.Fatalf("delayed batch delivered through a cut link (%d batches)", n)
	}
	if got := f.Stats().DroppedFault.Load(); got != 1 {
		t.Fatalf("DroppedFault = %d, want 1 (the delayed batch)", got)
	}

	// Same scenario with IsolateNode standing in for the cut.
	f.Clear()
	f.DelayLink(0, 1, 60*time.Millisecond)
	f.Send(dst, mkBatch(0, 1))
	f.Clear()
	f.IsolateNode(1, true)
	time.Sleep(150 * time.Millisecond)
	if n := drain(tr, dst); n != 0 {
		t.Fatalf("delayed batch delivered to an isolated node (%d batches)", n)
	}

	// And the non-interference case: a delayed batch whose link stays
	// healthy after Clear IS delivered.
	f.Clear()
	f.DelayLink(0, 1, 30*time.Millisecond)
	f.Send(dst, mkBatch(0, 1))
	f.Clear()
	deadline := time.Now().Add(2 * time.Second)
	for drain(tr, dst) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed batch on a healthy link never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultLinkStats pins the per-link ledger: drops and delays are counted
// on the exact link that suffered them, merged correctly through FaultSet,
// and survive Clear — the counters are the proof a "passed" chaos run
// actually injected faults.
func TestFaultLinkStats(t *testing.T) {
	tr := NewInProc(3, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()

	f.CutLink(0, 1, true)
	f.DelayLink(0, 2, 5*time.Millisecond)
	for i := 0; i < 4; i++ {
		f.Send(Endpoint{Node: 1}, mkBatch(0, 1)) // dropped: cut
	}
	for i := 0; i < 3; i++ {
		f.Send(Endpoint{Node: 2}, mkBatch(0, 1)) // delayed
	}
	f.IsolateNode(2, true)
	f.Send(Endpoint{Node: 0}, mkBatch(2, 1)) // dropped: isolation, link 2->0

	stats := f.LinkStats()
	want := []LinkStat{
		{From: 0, To: 1, Dropped: 4},
		{From: 0, To: 2, Delayed: 3},
		{From: 2, To: 0, Dropped: 1},
	}
	if len(stats) != len(want) {
		t.Fatalf("LinkStats = %+v, want %+v", stats, want)
	}
	for i := range want {
		if stats[i] != want[i] {
			t.Fatalf("LinkStats[%d] = %+v, want %+v", i, stats[i], want[i])
		}
	}

	// Clear heals rules but must preserve the ledger.
	f.Clear()
	after := f.LinkStats()
	if len(after) != len(want) || after[0].Dropped != 4 {
		t.Fatalf("Clear erased the fault ledger: %+v", after)
	}

	// FaultSet merges ledgers across injectors link-by-link.
	tr2 := NewInProc(3, 1, 64)
	f2 := NewFaultInjector(tr2, 2)
	defer f2.Close()
	f2.CutLink(0, 1, true)
	f2.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	set := NewFaultSet(f, f2)
	merged := set.LinkStats()
	if len(merged) != 3 || merged[0] != (LinkStat{From: 0, To: 1, Dropped: 5}) {
		t.Fatalf("merged LinkStats = %+v", merged)
	}
}

// TestFaultSetFanOut: rules applied through a FaultSet take effect on every
// member injector (only the member owning the sending node consults them,
// so the observable behaviour matches a single shared injector).
func TestFaultSetFanOut(t *testing.T) {
	trA := NewInProc(2, 1, 64)
	trB := NewInProc(2, 1, 64)
	fA := NewFaultInjector(trA, 1)
	fB := NewFaultInjector(trB, 1)
	defer fA.Close()
	defer fB.Close()
	set := NewFaultSet(fA)
	set.Add(fB)

	set.CutLink(0, 1, true)
	fA.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	fB.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if drain(trA, Endpoint{Node: 1})+drain(trB, Endpoint{Node: 1}) != 0 {
		t.Fatal("cut applied through FaultSet did not hold on every member")
	}
	set.Clear()
	fA.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	fB.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if drain(trA, Endpoint{Node: 1}) != 1 || drain(trB, Endpoint{Node: 1}) != 1 {
		t.Fatal("FaultSet.Clear did not heal every member")
	}
}

// TestFaultDuplication pins DupLink: a duplicated batch is delivered twice,
// counted once in Stats().Duplicated and on the link's ledger.
func TestFaultDuplication(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DupLink(0, 1, 1.0)
	dst := Endpoint{Node: 1}
	const n = 10
	for i := 0; i < n; i++ {
		f.Send(dst, mkBatch(0, 1))
	}
	if got := drain(tr, dst); got != 2*n {
		t.Fatalf("delivered %d batches, want %d (every send duplicated)", got, 2*n)
	}
	if got := f.Stats().Duplicated.Load(); got != n {
		t.Fatalf("Duplicated = %d, want %d", got, n)
	}
	stats := f.LinkStats()
	if len(stats) != 1 || stats[0] != (LinkStat{From: 0, To: 1, Duplicated: n}) {
		t.Fatalf("LinkStats = %+v", stats)
	}
	// Reverse direction unaffected.
	f.Send(Endpoint{Node: 0}, mkBatch(1, 1))
	if drain(tr, Endpoint{Node: 0}) != 1 {
		t.Fatal("reverse link duplicated")
	}
}

// TestFaultDupWithDelay: duplication composes with delay — both copies ride
// the delayed path and both arrive.
func TestFaultDupWithDelay(t *testing.T) {
	tr := NewInProc(2, 1, 64)
	f := NewFaultInjector(tr, 1)
	defer f.Close()
	f.DupLink(0, 1, 1.0)
	f.DelayLink(0, 1, 20*time.Millisecond)
	start := time.Now()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for got < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("got %d of 2 delayed duplicates", got)
		}
		got += drain(tr, Endpoint{Node: 1})
		time.Sleep(time.Millisecond)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("duplicates delivered too fast: %v", el)
	}
	if f.Stats().Duplicated.Load() != 1 || f.Stats().DelayedBatches.Load() != 1 {
		t.Fatalf("Duplicated/Delayed = %d/%d, want 1/1",
			f.Stats().Duplicated.Load(), f.Stats().DelayedBatches.Load())
	}
}

// TestFaultsOverUDPBatchPath runs the injector over the real UDP transport so
// loss, duplication and delay all traverse WriteBatch/ReadBatch (or the
// fallback, wherever the platform demoted) — the chaos suites wrap exactly
// this stack.
func TestFaultsOverUDPBatchPath(t *testing.T) {
	mkU := func(node uint8) *UDP {
		u, err := NewUDP(UDPConfig{
			LocalNode: node, Workers: 1,
			Listen: []string{"127.0.0.1:0"},
			Peers:  map[uint8][]string{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	u0, u1 := mkU(0), mkU(1)
	u0.peers[1] = resolveAll(t, u1.LocalAddrs())
	u1.peers[0] = resolveAll(t, u0.LocalAddrs())
	f := NewFaultInjector(u0, 3)
	defer f.Close() // closes u0
	defer u1.Close()
	dst := Endpoint{Node: 1}
	inbox := f.Recv(Endpoint{Node: 0}) // u0's own inbox (loopback sanity)
	_ = inbox

	// Cut: nothing crosses the wire.
	f.CutLink(0, 1, true)
	f.Send(dst, mkBatch(0, 1))
	if f.Stats().DroppedFault.Load() != 1 {
		t.Fatal("cut link over UDP did not drop")
	}

	// Duplication: every send arrives twice.
	f.Clear()
	f.DupLink(0, 1, 1.0)
	const n = 5
	for i := 0; i < n; i++ {
		f.Send(dst, mkBatch(0, 2))
	}
	if msgs := recvBatches(t, u1.Recv(dst), 2*n, 5*time.Second); msgs != 2*n*2 {
		t.Fatalf("duplicated UDP traffic delivered %d msgs, want %d", msgs, 2*n*2)
	}

	// Delay: delivery happens, later.
	f.Clear()
	f.DelayLink(0, 1, 20*time.Millisecond)
	start := time.Now()
	f.Send(dst, mkBatch(0, 1))
	recvBatches(t, u1.Recv(dst), 1, 5*time.Second)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delayed UDP batch arrived too fast: %v", el)
	}

	// The traffic really went through the socket syscall path.
	st := u0.Stats()
	if st.BatchedSyscalls.Load()+st.FallbackSyscalls.Load() == 0 {
		t.Fatal("fault-injected traffic bypassed the syscall counters")
	}
}

// TestFaultClearMidTrafficRace hammers Send from many goroutines while
// another goroutine churns every rule-mutating entry point, Clear included.
// The assertion is the race detector's: no data race, no panic, and the
// injector still both delivers and drops afterwards.
func TestFaultClearMidTrafficRace(t *testing.T) {
	tr := NewInProc(4, 1, 4096)
	f := NewFaultInjector(tr, 7)
	defer f.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := uint8(g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dst := Endpoint{Node: uint8((g + 1 + i) % 4)}
				f.Send(dst, mkBatch(from, 1))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 6 {
			case 0:
				f.DropLink(0, 1, 0.5)
			case 1:
				f.DelayLink(1, 2, time.Millisecond)
			case 2:
				f.CutLink(2, 3, i%2 == 0)
			case 3:
				f.IsolateNode(3, i%2 == 0)
			case 4:
				f.LinkStats()
			case 5:
				f.Clear()
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Still functional: a clean link delivers, a cut link drops.
	f.Clear()
	for i := 0; i < 4; i++ {
		drain(tr, Endpoint{Node: uint8(i)})
	}
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if drain(tr, Endpoint{Node: 1}) != 1 {
		t.Fatal("injector wedged after the churn")
	}
	f.CutLink(0, 1, true)
	before := f.Stats().DroppedFault.Load()
	f.Send(Endpoint{Node: 1}, mkBatch(0, 1))
	if f.Stats().DroppedFault.Load() != before+1 {
		t.Fatal("cut rule ignored after the churn")
	}
}
