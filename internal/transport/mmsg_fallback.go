//go:build !linux || (!amd64 && !arm64)

package transport

import (
	"errors"
	"net"
)

// Platforms without the mmsg fast path: newMmsgState reports "no batch
// support" and BatchConn runs every call on the per-datagram fallback.

type rawSockaddr struct{}

func marshalSockaddr(*net.UDPAddr) rawSockaddr { return rawSockaddr{} }

type mmsgState struct{}

func newMmsgState(*net.UDPConn) *mmsgState { return nil }

var errNoBatchIO = errors.New("transport: batch syscalls unavailable on this platform")

func (*mmsgState) writeBatch(*net.UDPConn, []Datagram) (int, error) { return 0, errNoBatchIO }

func (*mmsgState) readBatch(*net.UDPConn, [][]byte, []int) (int, error) { return 0, errNoBatchIO }

func demoteErr(error) bool { return false }
