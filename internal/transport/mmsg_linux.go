//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"syscall"
	"unsafe"
)

// sendmmsg/recvmmsg via the stdlib syscall package. The runtime's network
// poller still owns the socket: both calls run inside RawConn.Read/Write
// callbacks, returning false on EAGAIN so the poller parks the goroutine
// until the fd is ready — batching composes with Go's scheduler instead of
// fighting it. amd64 and arm64 only: the mmsghdr layout below assumes the
// 64-bit little-endian ABI those share; other Linux ports take the
// per-datagram fallback.

// rawSockaddr is a preformatted kernel sockaddr (sockaddr_in or
// sockaddr_in6), built once per peer by marshalSockaddr.
type rawSockaddr struct {
	data [syscall.SizeofSockaddrInet6]byte
	len  uint32
}

// marshalSockaddr encodes a once per peer; the zero value (len 0) means
// "no explicit destination" and leaves msg_name unset.
func marshalSockaddr(a *net.UDPAddr) rawSockaddr {
	var r rawSockaddr
	if a == nil {
		return r
	}
	port := uint16(a.Port)
	if ip4 := a.IP.To4(); ip4 != nil {
		// sockaddr_in: family(2, host) port(2, net) addr(4) zero(8)
		r.data[0] = byte(syscall.AF_INET)
		r.data[2] = byte(port >> 8)
		r.data[3] = byte(port)
		copy(r.data[4:8], ip4)
		r.len = syscall.SizeofSockaddrInet4
		return r
	}
	if ip6 := a.IP.To16(); ip6 != nil {
		// sockaddr_in6: family(2, host) port(2, net) flowinfo(4) addr(16) scope(4)
		r.data[0] = byte(syscall.AF_INET6)
		r.data[2] = byte(port >> 8)
		r.data[3] = byte(port)
		copy(r.data[8:24], ip6)
		r.len = syscall.SizeofSockaddrInet6
		return r
	}
	return r
}

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-filled datagram length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgState holds the preallocated mmsghdr/iovec arrays for one socket —
// write and read sides are separate so one flusher and one receive loop can
// run concurrently. The RawConn callbacks are built once here rather than
// per call: a closure passed to RawConn.Write escapes, and a heap
// allocation per syscall would defeat the wire path's allocation budget.
type mmsgState struct {
	rc     syscall.RawConn
	whdrs  [MaxIOBatch]mmsghdr
	wiovs  [MaxIOBatch]syscall.Iovec
	rhdrs  [MaxIOBatch]mmsghdr
	riovs  [MaxIOBatch]syscall.Iovec
	rnames [MaxIOBatch][syscall.SizeofSockaddrInet6]byte

	// Write-side call state, owned by the single flusher goroutine.
	wn    int
	wsent int
	werr  error
	wfn   func(fd uintptr) bool
	// Read-side call state, owned by the single receive goroutine.
	rn   int
	rgot int
	rerr error
	rfn  func(fd uintptr) bool
}

func newMmsgState(conn *net.UDPConn) *mmsgState {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	s := &mmsgState{rc: rc}
	s.wfn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSendmmsg,
			fd, uintptr(unsafe.Pointer(&s.whdrs[0])), uintptr(s.wn), 0, 0, 0)
		if e == syscall.EAGAIN {
			return false // poller waits for writability
		}
		if e != 0 {
			s.werr = e
		} else {
			s.wsent = int(r)
		}
		return true
	}
	s.rfn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRecvmmsg,
			fd, uintptr(unsafe.Pointer(&s.rhdrs[0])), uintptr(s.rn), 0, 0, 0)
		if e == syscall.EAGAIN {
			return false // poller waits for readability
		}
		if e != 0 {
			s.rerr = e
		} else {
			s.rgot = int(r)
		}
		return true
	}
	return s
}

// demoteErr reports errors that mean "this platform/sandbox refuses the
// batch syscalls" — the connection falls back to per-datagram I/O rather
// than surfacing them. Seccomp policies commonly deny with EPERM.
func demoteErr(err error) bool {
	switch err {
	case syscall.ENOSYS, syscall.EOPNOTSUPP, syscall.EPERM:
		return true
	}
	return false
}

// writeBatch issues one sendmmsg for dgs, returning how many datagrams the
// kernel accepted (possibly fewer than asked — the caller retries the rest).
func (s *mmsgState) writeBatch(_ *net.UDPConn, dgs []Datagram) (int, error) {
	n := len(dgs)
	for i := 0; i < n; i++ {
		d := &dgs[i]
		iov := &s.wiovs[i]
		if len(d.Buf) > 0 {
			iov.Base = &d.Buf[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(d.Buf))
		h := &s.whdrs[i]
		h.hdr.Iov = iov
		h.hdr.Iovlen = 1
		if d.Dest != nil && d.Dest.raw.len > 0 {
			h.hdr.Name = &d.Dest.raw.data[0]
			h.hdr.Namelen = d.Dest.raw.len
		} else {
			h.hdr.Name = nil
			h.hdr.Namelen = 0
		}
		h.len = 0
	}
	s.wn, s.wsent, s.werr = n, 0, nil
	if err := s.rc.Write(s.wfn); err != nil {
		return 0, err
	}
	if s.werr != nil {
		return 0, s.werr
	}
	return s.wsent, nil
}

// readBatch issues one recvmmsg into bufs, blocking (via the poller) until
// at least one datagram arrives; sizes[i] receives datagram i's length.
func (s *mmsgState) readBatch(_ *net.UDPConn, bufs [][]byte, sizes []int) (int, error) {
	n := len(bufs)
	for i := 0; i < n; i++ {
		iov := &s.riovs[i]
		iov.Base = &bufs[i][0]
		iov.SetLen(len(bufs[i]))
		h := &s.rhdrs[i]
		h.hdr.Iov = iov
		h.hdr.Iovlen = 1
		h.hdr.Name = &s.rnames[i][0]
		h.hdr.Namelen = uint32(len(s.rnames[i]))
		h.len = 0
	}
	s.rn, s.rgot, s.rerr = n, 0, nil
	if err := s.rc.Read(s.rfn); err != nil {
		return 0, err
	}
	if s.rerr != nil {
		return 0, s.rerr
	}
	for i := 0; i < s.rgot; i++ {
		sizes[i] = int(s.rhdrs[i].len)
	}
	return s.rgot, nil
}
