// Package history records complete operation histories of kite.Session
// workloads for offline consistency checking. A Log wraps any number of
// sessions (on any backend) in recording adapters that note every
// invocation and completion with monotonic timestamps; the snapshot is a
// flat, serialisable event list that internal/verifier checks for
// release-consistency and k-atomicity violations, and that kite-chaos
// writes next to its run report.
//
// The model is the standard invoke/complete history of the linearizability
// literature (Herlihy & Wing; the k-Atomicity-Verification problem in
// PAPERS.md): every operation is an interval [Invoke, Complete] in one
// session's program order, carrying its arguments and observed results. An
// operation that failed is classified by Outcome — "maybe" failures
// (timeouts, cancellations, node stops) may still have taken effect and
// stay in the history as indeterminate intervals; "never" failures
// (validation rejections) provably did not execute.
//
// Logs from different processes serialise to a compact JSON-lines form and
// Merge into one history; timestamps are monotonic offsets from a per-log
// wall-clock base, so merged cross-process histories are as accurate as the
// machines' clock agreement (exact for the single-machine harnesses).
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kite"
)

// Outcome classifies how an operation ended.
type Outcome string

const (
	// OutcomeOK: the operation completed successfully; its results are
	// binding facts.
	OutcomeOK Outcome = "ok"
	// OutcomeMaybe: the operation failed in a way that may still have
	// taken effect (timeout, cancellation, node stop). Verifiers must
	// treat it as "possibly happened, sometime after Invoke".
	OutcomeMaybe Outcome = "maybe"
	// OutcomeNever: the operation was rejected before consuming a
	// session-order slot (validation errors); it provably has no effect.
	OutcomeNever Outcome = "never"
)

// Event is one recorded operation.
type Event struct {
	// Session is the log-assigned recording-session id. One recorded
	// session is one logical thread of control: Index orders its events.
	Session int `json:"s"`
	// Index is the event's position in its session's submission order.
	Index int `json:"i"`
	// Op is the kite operation code.
	Op kite.OpCode `json:"op"`
	Key uint64     `json:"k"`
	// Arg is the written value (write/release) or the CAS new value.
	Arg []byte `json:"arg,omitempty"`
	// Expected is the CAS comparand.
	Expected []byte `json:"exp,omitempty"`
	// Delta is the FAA addend.
	Delta uint64 `json:"d,omitempty"`
	// Out is the returned value (read/acquire: value read; FAA/CAS: the
	// previous value).
	Out []byte `json:"out,omitempty"`
	// Swapped reports CAS success.
	Swapped bool `json:"sw,omitempty"`
	// Batch groups events submitted through one DoBatch call (-1 for
	// individually submitted operations).
	Batch int `json:"b"`
	// Outcome classifies the completion; Err carries the error text for
	// non-ok outcomes.
	Outcome Outcome `json:"oc"`
	Err     string  `json:"err,omitempty"`
	// Invoke and Complete are nanosecond offsets from the log's wall
	// base (monotonic within a process).
	Invoke   int64 `json:"t0"`
	Complete int64 `json:"t1"`
}

// IsWrite reports whether the event (if it happened) installed Value() at
// its key.
func (e *Event) IsWrite() bool {
	switch e.Op {
	case kite.OpWrite, kite.OpRelease:
		return true
	case kite.OpCASWeak, kite.OpCASStrong:
		return e.Swapped
	case kite.OpFAA:
		return e.Outcome == OutcomeOK && e.Delta != 0
	}
	return false
}

// IsRead reports whether the event observed a value at its key.
func (e *Event) IsRead() bool {
	switch e.Op {
	case kite.OpRead, kite.OpAcquire:
		return true
	}
	return false
}

// IsSync reports whether the event is a synchronisation operation — one
// Kite executes through a linearizable protocol (ABD or per-key Paxos).
func (e *Event) IsSync() bool {
	switch e.Op {
	case kite.OpRelease, kite.OpAcquire, kite.OpFAA, kite.OpCASWeak, kite.OpCASStrong:
		return true
	}
	return false
}

// Value returns the value the event installed at its key, for write-class
// events (FAA: the incremented counter encoding).
func (e *Event) Value() []byte {
	switch e.Op {
	case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
		return e.Arg
	case kite.OpFAA:
		return kite.EncodeUint64(kite.DecodeUint64(e.Out) + e.Delta)
	}
	return nil
}

// String renders the event compactly for counterexample windows.
func (e *Event) String() string {
	out := ""
	switch {
	case e.Outcome == OutcomeMaybe:
		out = " ?(" + e.Err + ")"
	case e.Outcome == OutcomeNever:
		out = " ∅(" + e.Err + ")"
	case e.IsRead() || e.Op == kite.OpFAA:
		out = fmt.Sprintf(" -> %q", e.Out)
	case e.Op == kite.OpCASWeak || e.Op == kite.OpCASStrong:
		out = fmt.Sprintf(" -> swapped=%v old=%q", e.Swapped, e.Out)
	}
	arg := ""
	if len(e.Arg) > 0 {
		arg = fmt.Sprintf(" %q", e.Arg)
	}
	return fmt.Sprintf("[s%d#%d t%dus-%dus] %s(%d)%s%s",
		e.Session, e.Index, e.Invoke/1000, e.Complete/1000, e.Op, e.Key, arg, out)
}

// Recorded is a snapshotted (or merged, or deserialised) history.
type Recorded struct {
	// BaseWallNS anchors the events' monotonic offsets to the wall clock
	// of the recording process.
	BaseWallNS int64 `json:"base_wall_ns"`
	// Events are sorted by (Session, Index).
	Events []Event `json:"events"`
}

// Log is a live recorder. Wrap sessions before using them; Snapshot after
// the workload quiesces.
type Log struct {
	base     time.Time
	baseWall int64

	mu       sync.Mutex
	sessions []*sessionLog
}

type sessionLog struct {
	id int

	mu     sync.Mutex
	events []Event
	nbatch int
}

// New starts an empty log. The moment of creation is the timestamp epoch.
func New() *Log {
	now := time.Now()
	return &Log{base: now, baseWall: now.UnixNano()}
}

func (l *Log) now() int64 { return int64(time.Since(l.base)) }

// Wrap returns a recording kite.Session around inner under a fresh
// session id. The wrapper carries inner's single-logical-thread contract.
func (l *Log) Wrap(inner kite.Session) kite.Session {
	l.mu.Lock()
	s := &sessionLog{id: len(l.sessions)}
	l.sessions = append(l.sessions, s)
	l.mu.Unlock()
	r := &recorder{inner: inner, log: l, sess: s}
	r.Ops = kite.Ops{Doer: r}
	return r
}

// Snapshot copies the recorded history. Events still in flight (invoked,
// never completed) are closed as OutcomeMaybe at snapshot time. Safe to
// call while sessions are live, but meant for after quiesce.
func (l *Log) Snapshot() *Recorded {
	now := l.now()
	l.mu.Lock()
	sessions := append([]*sessionLog(nil), l.sessions...)
	l.mu.Unlock()
	rec := &Recorded{BaseWallNS: l.baseWall}
	for _, s := range sessions {
		s.mu.Lock()
		for _, e := range s.events {
			if e.Complete < 0 {
				e.Complete = now
				e.Outcome = OutcomeMaybe
				e.Err = "incomplete at snapshot"
			}
			rec.Events = append(rec.Events, e)
		}
		s.mu.Unlock()
	}
	sortEvents(rec.Events)
	return rec
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Session != evs[j].Session {
			return evs[i].Session < evs[j].Session
		}
		return evs[i].Index < evs[j].Index
	})
}

// Merge combines histories from several logs (typically: several
// processes) into one, renumbering sessions and re-anchoring timestamps to
// the earliest wall base.
func Merge(parts ...*Recorded) *Recorded {
	out := &Recorded{}
	if len(parts) == 0 {
		return out
	}
	out.BaseWallNS = parts[0].BaseWallNS
	for _, p := range parts[1:] {
		if p.BaseWallNS < out.BaseWallNS {
			out.BaseWallNS = p.BaseWallNS
		}
	}
	sessBase := 0
	for _, p := range parts {
		shift := p.BaseWallNS - out.BaseWallNS
		maxSess := -1
		for _, e := range p.Events {
			if e.Session > maxSess {
				maxSess = e.Session
			}
			e.Session += sessBase
			e.Invoke += shift
			e.Complete += shift
			out.Events = append(out.Events, e)
		}
		sessBase += maxSess + 1
	}
	sortEvents(out.Events)
	return out
}

// WriteJSON serialises the history as JSON lines: one header object, then
// one event per line.
func (r *Recorded) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := struct {
		BaseWallNS int64 `json:"base_wall_ns"`
	}{r.BaseWallNS}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range r.Events {
		if err := enc.Encode(&r.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON deserialises a history written by WriteJSON.
func ReadJSON(rd io.Reader) (*Recorded, error) {
	dec := json.NewDecoder(rd)
	var hdr struct {
		BaseWallNS int64 `json:"base_wall_ns"`
	}
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("history: bad header: %w", err)
	}
	out := &Recorded{BaseWallNS: hdr.BaseWallNS}
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("history: bad event %d: %w", len(out.Events), err)
		}
		out.Events = append(out.Events, e)
	}
	sortEvents(out.Events)
	return out, nil
}
