package history

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"kite"
)

func testCluster(t *testing.T) *kite.Cluster {
	t.Helper()
	c, err := kite.NewCluster(kite.Options{
		Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestRecorderCapturesOps: the wrapper is transparent (results pass
// through) and every submission path lands in the log with the right
// classification, ordering and intervals.
func TestRecorderCapturesOps(t *testing.T) {
	c := testCluster(t)
	log := New()
	s := log.Wrap(c.Session(0, 0))

	if err := s.Write(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(1); err != nil || string(v) != "v1" {
		t.Fatalf("read through recorder = %q, %v", v, err)
	}
	if err := s.ReleaseWrite(2, []byte("flag")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.AcquireRead(2); err != nil || string(v) != "flag" {
		t.Fatalf("acquire through recorder = %q, %v", v, err)
	}
	if old, err := s.FAA(3, 5); err != nil || old != 0 {
		t.Fatalf("faa = %d, %v", old, err)
	}
	// Async completes through the recorder too.
	done := make(chan kite.Result, 1)
	s.DoAsync(kite.WriteOp(4, []byte("async")), func(r kite.Result) { done <- r })
	if r := <-done; r.Err != nil {
		t.Fatal(r.Err)
	}
	// A batch shares one batch id; a rejected op is OutcomeNever.
	if _, err := s.DoBatch(context.Background(), []kite.Op{
		kite.WriteOp(5, []byte("b0")), kite.ReadOp(5),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(6, make([]byte, kite.MaxValueLen+1)); err == nil {
		t.Fatal("oversized write accepted")
	}

	rec := log.Snapshot()
	if len(rec.Events) != 9 {
		t.Fatalf("recorded %d events, want 9", len(rec.Events))
	}
	for i, e := range rec.Events {
		if e.Index != i || e.Session != 0 {
			t.Fatalf("event %d has coords s%d#%d", i, e.Session, e.Index)
		}
		if e.Complete < e.Invoke {
			t.Fatalf("event %d interval inverted: %+v", i, e)
		}
		if i > 0 && e.Invoke < rec.Events[i-1].Invoke {
			t.Fatalf("event %d invoked before its predecessor", i)
		}
	}
	if e := rec.Events[1]; e.Op != kite.OpRead || string(e.Out) != "v1" || e.Outcome != OutcomeOK {
		t.Fatalf("read event = %+v", e)
	}
	if e := rec.Events[4]; e.Op != kite.OpFAA || e.Delta != 5 || !bytes.Equal(e.Value(), kite.EncodeUint64(5)) {
		t.Fatalf("faa event = %+v (value %q)", e, e.Value())
	}
	if b0, b1 := rec.Events[6], rec.Events[7]; b0.Batch != b1.Batch || b0.Batch < 0 {
		t.Fatalf("batch ids: %d vs %d", b0.Batch, b1.Batch)
	}
	if e := rec.Events[8]; e.Outcome != OutcomeNever {
		t.Fatalf("rejected write classified %q, want never", e.Outcome)
	}
}

// TestRecorderSessionIds: each wrapped session records under its own id.
func TestRecorderSessionIds(t *testing.T) {
	c := testCluster(t)
	log := New()
	a := log.Wrap(c.Session(0, 0))
	b := log.Wrap(c.Session(1, 1))
	if err := a.Write(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	rec := log.Snapshot()
	if len(rec.Events) != 2 || rec.Events[0].Session != 0 || rec.Events[1].Session != 1 {
		t.Fatalf("events = %+v", rec.Events)
	}
}

// TestJSONRoundTripAndMerge: serialise, reload, merge two process logs —
// sessions renumbered, timestamps re-anchored to the earliest base.
func TestJSONRoundTripAndMerge(t *testing.T) {
	recA := &Recorded{BaseWallNS: 1000, Events: []Event{
		{Session: 0, Index: 0, Op: kite.OpWrite, Key: 1, Arg: []byte("x"), Outcome: OutcomeOK, Invoke: 10, Complete: 20, Batch: -1},
		{Session: 1, Index: 0, Op: kite.OpRead, Key: 1, Out: []byte("x"), Outcome: OutcomeOK, Invoke: 30, Complete: 40, Batch: -1},
	}}
	var buf bytes.Buffer
	if err := recA.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recA, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", recA, back)
	}

	recB := &Recorded{BaseWallNS: 500, Events: []Event{
		{Session: 0, Index: 0, Op: kite.OpAcquire, Key: 1, Outcome: OutcomeOK, Invoke: 5, Complete: 9, Batch: -1},
	}}
	merged := Merge(recA, recB)
	if merged.BaseWallNS != 500 {
		t.Fatalf("merged base = %d, want 500", merged.BaseWallNS)
	}
	if len(merged.Events) != 3 {
		t.Fatalf("merged %d events", len(merged.Events))
	}
	// recA's events shifted by +500 and keep session ids 0,1; recB's one
	// session renumbered to 2.
	if merged.Events[0].Invoke != 510 || merged.Events[1].Session != 1 {
		t.Fatalf("merged[0..1] = %+v", merged.Events[:2])
	}
	if merged.Events[2].Session != 2 || merged.Events[2].Invoke != 5 {
		t.Fatalf("merged[2] = %+v", merged.Events[2])
	}
}

// TestSnapshotClosesPending: an op still in flight at snapshot time is
// recorded as indeterminate rather than lost or left open.
func TestSnapshotClosesPending(t *testing.T) {
	log := New()
	s := &sessionLog{id: 0}
	log.sessions = append(log.sessions, s)
	s.begin(log.now(), kite.WriteOp(1, []byte("x")), -1)
	rec := log.Snapshot()
	if len(rec.Events) != 1 {
		t.Fatalf("events = %+v", rec.Events)
	}
	if e := rec.Events[0]; e.Outcome != OutcomeMaybe || e.Complete < e.Invoke {
		t.Fatalf("pending event closed as %+v", e)
	}
}
