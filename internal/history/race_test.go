package history

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kite"
)

// echoSession is a trivial thread-safe backend for recorder stress tests:
// reads echo the key, writes succeed.
type echoSession struct {
	kite.Ops
}

func newEcho() *echoSession {
	s := &echoSession{}
	s.Ops = kite.Ops{Doer: s}
	return s
}

func (s *echoSession) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	if op.Code == kite.OpRead || op.Code == kite.OpAcquire {
		return kite.Result{Value: []byte(fmt.Sprintf("k%d", op.Key))}, nil
	}
	return kite.Result{}, nil
}

func (s *echoSession) DoAsync(op kite.Op, cb func(kite.Result)) {
	r, _ := s.Do(context.Background(), op)
	if cb != nil {
		cb(r)
	}
}

func (s *echoSession) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	out := make([]kite.Result, len(ops))
	for i, op := range ops {
		out[i], _ = s.Do(ctx, op)
	}
	return out, nil
}

func (s *echoSession) Close() error { return nil }

// TestRecordConcurrentSessions drives many recording sessions from separate
// goroutines — with concurrent Wrap calls and concurrent mid-flight
// Snapshots — and checks the recorded history is complete, dense, and
// interval-sane. Run under -race this is the recorder's thread-safety test.
func TestRecordConcurrentSessions(t *testing.T) {
	const nsess, nops = 16, 200
	log := New()
	var wg sync.WaitGroup
	for g := 0; g < nsess; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := log.Wrap(newEcho()) // Wrap itself races with other wraps
			for i := 0; i < nops; i++ {
				switch i % 4 {
				case 0:
					if err := s.Write(uint64(i%7), []byte(fmt.Sprintf("g%di%d", g, i))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.Read(uint64(i % 7)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					ops := []kite.Op{
						{Code: kite.OpWrite, Key: 9, Value: []byte(fmt.Sprintf("b%di%d", g, i))},
						{Code: kite.OpRead, Key: 9},
					}
					if _, err := s.DoBatch(context.Background(), ops); err != nil {
						t.Error(err)
						return
					}
				default:
					done := make(chan struct{})
					s.DoAsync(kite.Op{Code: kite.OpRead, Key: 3}, func(kite.Result) { close(done) })
					<-done
				}
			}
		}(g)
	}

	// Concurrent mid-flight snapshots must not disturb the recording.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 50; i++ {
			if rec := log.Snapshot(); rec == nil {
				t.Error("nil snapshot")
				return
			}
		}
	}()
	wg.Wait()
	<-snapDone

	rec := log.Snapshot()
	perSess := map[int]int{}
	for i := range rec.Events {
		e := &rec.Events[i]
		if e.Index != perSess[e.Session] {
			t.Fatalf("session %d: event index %d at position %d (gap or duplicate)",
				e.Session, e.Index, perSess[e.Session])
		}
		perSess[e.Session]++
		if e.Outcome != OutcomeOK {
			t.Fatalf("session %d#%d outcome %q after quiesce", e.Session, e.Index, e.Outcome)
		}
		if e.Complete < e.Invoke {
			t.Fatalf("session %d#%d completes at %d before invoke %d", e.Session, e.Index, e.Complete, e.Invoke)
		}
	}
	// 4-op cycle: i%4==2 contributes two events per iteration.
	wantPer := nops + nops/4
	if len(perSess) != nsess {
		t.Fatalf("snapshot has %d sessions, want %d", len(perSess), nsess)
	}
	for s, n := range perSess {
		if n != wantPer {
			t.Fatalf("session %d recorded %d events, want %d", s, n, wantPer)
		}
	}
}

// TestSnapshotDuringInflight pins Snapshot's contract for operations still
// in flight: they appear as OutcomeMaybe with a completion stamped at
// snapshot time, while the live recording completes them normally.
func TestSnapshotDuringInflight(t *testing.T) {
	log := New()
	gate := make(chan struct{})
	inner := newEcho()
	blocked := &blockingSession{inner: inner, gate: gate}
	blocked.Ops = kite.Ops{Doer: blocked}
	s := log.Wrap(blocked)

	started := make(chan struct{})
	doneWrite := make(chan error, 1)
	go func() {
		close(started)
		doneWrite <- s.Write(1, []byte("slow"))
	}()
	<-started
	<-blocked.entered()

	rec := log.Snapshot()
	if len(rec.Events) != 1 {
		t.Fatalf("snapshot saw %d events, want 1", len(rec.Events))
	}
	if e := rec.Events[0]; e.Outcome != OutcomeMaybe || e.Complete < 0 {
		t.Fatalf("in-flight op snapshot: outcome %q complete %d, want maybe with stamped completion", e.Outcome, e.Complete)
	}

	close(gate)
	if err := <-doneWrite; err != nil {
		t.Fatal(err)
	}
	rec = log.Snapshot()
	if e := rec.Events[0]; e.Outcome != OutcomeOK {
		t.Fatalf("completed op still %q in later snapshot", e.Outcome)
	}
}

// blockingSession parks Do calls on a gate so a test can observe in-flight
// operations.
type blockingSession struct {
	kite.Ops
	inner kite.Session
	gate  chan struct{}

	mu sync.Mutex
	in chan struct{}
}

func (b *blockingSession) entered() chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.in == nil {
		b.in = make(chan struct{})
	}
	return b.in
}

func (b *blockingSession) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	close(b.entered())
	<-b.gate
	return b.inner.Do(ctx, op)
}

func (b *blockingSession) DoAsync(op kite.Op, cb func(kite.Result)) {
	r, _ := b.Do(context.Background(), op)
	if cb != nil {
		cb(r)
	}
}

func (b *blockingSession) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	out := make([]kite.Result, len(ops))
	for i, op := range ops {
		out[i], _ = b.Do(ctx, op)
	}
	return out, nil
}

func (b *blockingSession) Close() error { return b.inner.Close() }
