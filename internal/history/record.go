package history

import (
	"context"
	"errors"

	"kite"
)

// recorder is the recording kite.Session adapter. It is transparent: every
// call is forwarded to the wrapped session, and the invoke/complete pair is
// logged around it. Convenience methods come from kite.Ops.
type recorder struct {
	kite.Ops
	inner kite.Session
	log   *Log
	sess  *sessionLog
}

// begin appends a pending event (Complete < 0) and returns its slot.
func (s *sessionLog) begin(now int64, op kite.Op, batch int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := len(s.events)
	s.events = append(s.events, Event{
		Session: s.id, Index: idx, Op: op.Code, Key: op.Key,
		Arg: cloneBytes(op.Value), Expected: cloneBytes(op.Expected), Delta: op.Delta,
		Batch: batch, Invoke: now, Complete: -1,
	})
	return idx
}

// end completes a pending event with the operation's result.
func (s *sessionLog) end(now int64, idx int, r kite.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &s.events[idx]
	e.Complete = now
	e.Out = cloneBytes(r.Value)
	e.Swapped = r.Swapped
	if r.Err == nil {
		e.Outcome = OutcomeOK
	} else {
		e.Outcome = Classify(r.Err)
		e.Err = r.Err.Error()
	}
}

// Classify sorts an operation error into the indeterminacy taxonomy: did
// the operation provably not run, or might it still have taken effect?
// Shared by every recorder (this package's Log, internal/audit's sampler).
func Classify(err error) Outcome {
	switch {
	case errors.Is(err, kite.ErrBadOp),
		errors.Is(err, kite.ErrValueTooLong),
		errors.Is(err, kite.ErrReservedKey),
		errors.Is(err, kite.ErrSessionClosed):
		return OutcomeNever
	default:
		// ErrCanceled, ErrStopped, client timeouts, broken sessions: the
		// op may have executed (or may still be executing) server-side.
		return OutcomeMaybe
	}
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Do records one synchronous operation.
func (r *recorder) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	idx := r.sess.begin(r.log.now(), op, -1)
	res, err := r.inner.Do(ctx, op)
	r.sess.end(r.log.now(), idx, res)
	return res, err
}

// DoAsync records an asynchronous operation; the completion is logged from
// the backend's callback goroutine.
func (r *recorder) DoAsync(op kite.Op, cb func(kite.Result)) {
	idx := r.sess.begin(r.log.now(), op, -1)
	r.inner.DoAsync(op, func(res kite.Result) {
		r.sess.end(r.log.now(), idx, res)
		if cb != nil {
			cb(res)
		}
	})
}

// DoBatch records every op of the batch under one batch id. A rejected
// batch (nil results) provably executed nothing: all its events complete
// with OutcomeNever.
func (r *recorder) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	if len(ops) == 0 {
		return r.inner.DoBatch(ctx, ops)
	}
	r.sess.mu.Lock()
	batch := r.sess.nbatch
	r.sess.nbatch++
	r.sess.mu.Unlock()
	t0 := r.log.now()
	idxs := make([]int, len(ops))
	for i, op := range ops {
		idxs[i] = r.sess.begin(t0, op, batch)
	}
	results, err := r.inner.DoBatch(ctx, ops)
	t1 := r.log.now()
	for i := range ops {
		switch {
		case results != nil:
			r.sess.end(t1, idxs[i], results[i])
		case err != nil:
			// All-or-nothing rejection: no op consumed a session slot.
			r.sess.end(t1, idxs[i], kite.Result{Err: err})
			r.sess.mu.Lock()
			r.sess.events[idxs[i]].Outcome = OutcomeNever
			r.sess.mu.Unlock()
		default:
			r.sess.end(t1, idxs[i], kite.Result{})
		}
	}
	return results, err
}

// Close closes the wrapped session; the recorded events stay in the log.
func (r *recorder) Close() error { return r.inner.Close() }
