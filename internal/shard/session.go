package shard

import (
	"context"
	"sync"

	"kite"
)

// Session composes one kite.Session per replica group into a single logical
// thread of control over the whole key space. It implements kite.Session;
// both public sharded backends (the in-process kite/sharded cluster and the
// remote client's DialSharded) wrap their per-group sub-sessions with it.
//
// Routing: every operation executes in its key's group (Map). Relaxed
// accesses and acquires are forwarded unchanged. Releases and RMWs (which
// carry release semantics) first fence every *other* group the session has
// written since its last synchronisation — an OpFlush per dirty group,
// waiting until those writes are applied at all of that group's replicas —
// and only then execute in the owning group, whose own barrier covers the
// writes that live there. kite.OpFlush on a sharded session fences every
// dirty group.
//
// Ordering: a sharded session keeps Kite's session-order contract per
// group (each group sees this session's ops in submission order) and keeps
// synchronisation operations in global submission order (they are executed
// one at a time, in order, across groups). Relaxed operations routed to
// different groups may take effect — and their DoAsync callbacks may run —
// out of submission order relative to each other; Release Consistency makes
// that unobservable, since ordering between plain accesses is only
// established through synchronisation operations.
type Session struct {
	kite.Ops
	subs []kite.Session
	m    Map

	// mu serialises submissions into the pump and gates them on closed, so
	// an op is either enqueued before the close sentinel or rejected.
	mu     sync.Mutex
	closed bool
	items  chan item

	pumpDone chan struct{}
	closeErr error
}

// item is one unit of pump work: a single op or a whole batch.
type item struct {
	ctx  context.Context
	op   kite.Op
	ops  []kite.Op // batch when non-nil (op is ignored)
	sync bool      // single op from Do: caller is blocked, execute inline

	cb      func(kite.Result)            // single-op completion
	batchCB func([]kite.Result, error)   // batch completion
	close   bool                         // close sentinel: shut subs, exit
}

// New wraps one sub-session per replica group (subs[g] executes group g's
// share of the key space) into a sharded Session routed by m. It takes
// ownership of the subs: closing the returned session closes them.
func New(subs []kite.Session, m Map) *Session {
	s := &Session{
		subs:     subs,
		m:        m,
		items:    make(chan item, 128),
		pumpDone: make(chan struct{}),
	}
	s.Ops = kite.Ops{Doer: s}
	go s.pump()
	return s
}

// GroupOf reports which replica group owns key.
func (s *Session) GroupOf(key uint64) int { return s.m.Group(key) }

// enqueue hands it to the pump, or reports false when the session is
// closed.
func (s *Session) enqueue(it item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.items <- it
	return true
}

// Do executes op and blocks until it completes or ctx is done. Behind the
// single-threaded contract the call still passes through the pump so it is
// ordered after every earlier DoAsync submission; if ctx expires while the
// op is still queued behind the pump, Do returns ErrCanceled like every
// backend — the op itself may still take effect (the Doer contract), since
// the pump will reach it with its context already expired.
func (s *Session) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	if err := kite.ValidateOp(op); err != nil {
		return kite.Result{Err: err}, err
	}
	done := make(chan kite.Result, 1)
	ok := s.enqueue(item{ctx: ctx, op: op, sync: true, cb: func(r kite.Result) { done <- r }})
	if !ok {
		return kite.Result{Err: kite.ErrSessionClosed}, kite.ErrSessionClosed
	}
	select {
	case r := <-done:
		return r, r.Err
	case <-ctx.Done():
		// Prefer a completion that raced the cancellation.
		select {
		case r := <-done:
			return r, r.Err
		default:
		}
		err := kite.CanceledErr(ctx.Err())
		return kite.Result{Err: err}, err
	}
}

// DoAsync submits op and returns; cb (optional) receives the result on a
// backend goroutine. Relaxed accesses stay pipelined (forwarded to their
// group without blocking later submissions); synchronisation operations are
// executed in submission order and hold later operations behind them.
func (s *Session) DoAsync(op kite.Op, cb func(kite.Result)) {
	if err := kite.ValidateOp(op); err != nil {
		if cb != nil {
			cb(kite.Result{Err: err})
		}
		return
	}
	// The caller may reuse its slices as soon as DoAsync returns; the op
	// waits in the pump queue, so detach the payloads now.
	op.Value = cloneVal(op.Value)
	op.Expected = cloneVal(op.Expected)
	if !s.enqueue(item{ctx: context.Background(), op: op, cb: cb}) {
		if cb != nil {
			cb(kite.Result{Err: kite.ErrSessionClosed})
		}
	}
}

// DoBatch executes ops and returns their results, index-aligned. The batch
// is split per group: runs of relaxed accesses are pipelined to their
// groups concurrently (one sub-batch per group, so a remote backend spends
// one round trip per group, not per op); synchronisation operations inside
// the batch act as ordering points exactly as in Do.
func (s *Session) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	// All-or-nothing validation, same contract as every backend.
	for _, op := range ops {
		if err := kite.ValidateOp(op); err != nil {
			return nil, err
		}
	}
	type out struct {
		rs  []kite.Result
		err error
	}
	done := make(chan out, 1)
	ok := s.enqueue(item{ctx: ctx, ops: ops, batchCB: func(rs []kite.Result, err error) {
		done <- out{rs: rs, err: err}
	}})
	if !ok {
		return nil, kite.ErrSessionClosed
	}
	select {
	case o := <-done:
		return o.rs, o.err
	case <-ctx.Done():
		// Queued behind a busy pump past the deadline: release the caller
		// (see Do); the batch may still execute.
		select {
		case o := <-done:
			return o.rs, o.err
		default:
		}
		cerr := kite.CanceledErr(ctx.Err())
		results := make([]kite.Result, len(ops))
		for i := range results {
			results[i] = kite.Result{Err: cerr}
		}
		return results, cerr
	}
}

// Close shuts the session down: the pump drains already-submitted work,
// then closes every sub-session. Operations after Close fail with
// kite.ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.pumpDone
		return s.closeErr
	}
	s.closed = true
	s.items <- item{close: true}
	s.mu.Unlock()
	<-s.pumpDone
	return s.closeErr
}

// pump is the session's single executor goroutine: it applies the routing
// and fencing policy to submissions in order. All its state (the dirty set)
// is goroutine-local.
func (s *Session) pump() {
	defer close(s.pumpDone)
	// dirty marks groups holding relaxed writes of this session that have
	// not been fenced by a synchronisation operation yet.
	dirty := make([]bool, len(s.subs))
	for it := range s.items {
		switch {
		case it.close:
			for _, sub := range s.subs {
				if err := sub.Close(); err != nil && s.closeErr == nil {
					s.closeErr = err
				}
			}
			return
		case it.ops != nil:
			it.batchCB(s.runBatch(it.ctx, it.ops, dirty))
		default:
			s.runOp(it, dirty)
		}
	}
}

// isSync reports whether code is executed as an ordering point (blocking
// the pump): releases, RMWs (release+acquire semantics), fences and
// acquires (so synchronisation operations stay in global program order, the
// RCLin contract that releases/acquires are linearizable among themselves).
func isSync(code kite.OpCode) bool {
	switch code {
	case kite.OpRelease, kite.OpFAA, kite.OpCASWeak, kite.OpCASStrong, kite.OpFlush, kite.OpAcquire:
		return true
	}
	return false
}

// needsFence reports whether code carries release semantics and must fence
// the session's writes in other groups before executing.
func needsFence(code kite.OpCode) bool {
	switch code {
	case kite.OpRelease, kite.OpFAA, kite.OpCASWeak, kite.OpCASStrong:
		return true
	}
	return false
}

// runOp executes one single-op item against the routing policy.
func (s *Session) runOp(it item, dirty []bool) {
	op, cb := it.op, it.cb
	if op.Code == kite.OpFlush {
		// Fence every dirty group; the result is the first failure.
		err := s.fence(it.ctx, dirty, -1)
		r := kite.Result{Err: err}
		if cb != nil {
			cb(r)
		}
		return
	}
	g := s.m.Group(op.Key)
	if !isSync(op.Code) {
		if op.Code == kite.OpWrite {
			dirty[g] = true
		}
		if it.sync {
			// A blocked Do caller: run inline so ctx cancellation applies.
			r, _ := s.subs[g].Do(it.ctx, op)
			cb(r)
			return
		}
		// Pipelined DoAsync relaxed access: forward without blocking the
		// pump, preserving per-group submission order via the sub stream.
		s.subs[g].DoAsync(op, cb)
		return
	}
	// Synchronisation operation: fence other groups when it carries release
	// semantics, then execute in the owning group, blocking the pump so
	// later submissions stay ordered behind it.
	if needsFence(op.Code) {
		if err := s.fence(it.ctx, dirty, g); err != nil {
			if cb != nil {
				cb(kite.Result{Err: err})
			}
			return
		}
	}
	r, _ := s.subs[g].Do(it.ctx, op)
	// dirty[g] stays set even after a release in g: its barrier may have
	// completed via the DM-set slow path, which covers consumers that
	// acquire IN g but not a later cross-shard sync — only a completed
	// OpFlush (fence) proves full replication and clears the bit.
	if cb != nil {
		cb(r)
	}
}

// fence issues an OpFlush in every dirty group except skip (pass -1 to
// fence all) and waits for them. Groups whose flush completes are marked
// clean; on ctx expiry the remaining groups stay dirty — the flushes were
// not observed to finish, so the next synchronisation re-fences them.
func (s *Session) fence(ctx context.Context, dirty []bool, skip int) error {
	type ack struct {
		g   int
		err error
	}
	var targets []int
	for g, d := range dirty {
		if d && g != skip {
			targets = append(targets, g)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	acks := make(chan ack, len(targets))
	for _, g := range targets {
		g := g
		s.subs[g].DoAsync(kite.FlushOp(), func(r kite.Result) {
			acks <- ack{g: g, err: r.Err}
		})
	}
	var firstErr error
	for range targets {
		select {
		case a := <-acks:
			if a.err == nil {
				dirty[a.g] = false
			} else if firstErr == nil {
				firstErr = a.err
			}
		case <-ctx.Done():
			// Late acks land in the buffered channel and are dropped with
			// it; their groups conservatively stay dirty.
			return kite.CanceledErr(ctx.Err())
		}
	}
	return firstErr
}

// runBatch executes a batch: relaxed runs are split per group and issued as
// concurrent sub-batches; synchronisation ops are ordering points handled
// exactly like single ops. Results are index-aligned with ops; the returned
// error is the first per-op error in batch order.
func (s *Session) runBatch(ctx context.Context, ops []kite.Op, dirty []bool) ([]kite.Result, error) {
	results := make([]kite.Result, len(ops))
	// Per-group accumulation of the current relaxed run.
	type segment struct {
		idx []int
		ops []kite.Op
	}
	pending := make(map[int]*segment)
	flushRun := func() {
		if len(pending) == 0 {
			return
		}
		var wg sync.WaitGroup
		for g, seg := range pending {
			wg.Add(1)
			go func(g int, seg *segment) {
				defer wg.Done()
				rs, err := s.subs[g].DoBatch(ctx, seg.ops)
				for i, idx := range seg.idx {
					if i < len(rs) {
						results[idx] = rs[i]
					} else if err != nil {
						results[idx] = kite.Result{Err: err}
					}
				}
			}(g, seg)
		}
		wg.Wait()
		pending = make(map[int]*segment)
	}
	for i, op := range ops {
		if !isSync(op.Code) {
			g := s.m.Group(op.Key)
			if op.Code == kite.OpWrite {
				dirty[g] = true
			}
			seg := pending[g]
			if seg == nil {
				seg = &segment{}
				pending[g] = seg
			}
			seg.idx = append(seg.idx, i)
			seg.ops = append(seg.ops, op)
			continue
		}
		// Ordering point: resolve the relaxed run first, then the sync op.
		flushRun()
		done := make(chan kite.Result, 1)
		s.runOp(item{ctx: ctx, op: op, sync: true, cb: func(r kite.Result) { done <- r }}, dirty)
		results[i] = <-done
	}
	flushRun()
	for i := range results {
		if results[i].Err != nil {
			return results, results[i].Err
		}
	}
	return results, nil
}

func cloneVal(v []byte) []byte {
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}
