// Package shard runs G independent Kite replica groups over one key space
// and exposes them as a single kite.Session. Each group is a complete Kite
// deployment (its own ES/ABD/Paxos membership); keys are partitioned across
// groups by a fixed hash, so every protocol round stays inside one group
// and total throughput grows with the number of groups instead of being
// bounded by one group's replication degree.
//
// Why this composes soundly with Kite: all three of Kite's protocols are
// per-key — ES serialises writes per key, ABD quorums are per key, Paxos is
// per key — so two keys in different groups never needed to share protocol
// state in the first place. The only cross-key obligation in the whole
// model is the release barrier ("by the time my release is visible, all my
// prior writes are visible"), and that is exactly what this package adds
// back across groups: before a release (or RMW, which carries release
// semantics) executes in the key's owning group, the session fences every
// other group it has written since its last synchronisation with an
// OpFlush — a release barrier without a write — waiting until those writes
// are applied at every replica of their group. Acquires and relaxed
// accesses route to the key's group unchanged.
//
// The flush insists on all-replica acknowledgement rather than borrowing
// the release's DM-set slow path: a DM-set published in group A is consumed
// by later acquires in group A, but a cross-shard consumer acquires in
// group B and would never observe it. See DESIGN.md "Sharding" for the
// availability consequences.
package shard

// Map is the key→group routing function: a fixed avalanche hash of the key
// modulo the group count, so placement is uniform, deterministic and
// identical on every client and node of a deployment.
type Map struct {
	groups int
}

// NewMap returns the routing map for a deployment of groups replica groups.
// groups < 1 is treated as 1 (the unsharded identity map).
func NewMap(groups int) Map {
	if groups < 1 {
		groups = 1
	}
	return Map{groups: groups}
}

// Groups returns the number of replica groups.
func (m Map) Groups() int { return m.groups }

// Group returns the replica group owning key.
func (m Map) Group(key uint64) int {
	if m.groups <= 1 {
		return 0
	}
	return int(mix64(key) % uint64(m.groups))
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mixer, so that
// adjacent keys (the common access pattern in the data structures and
// benchmarks) spread across groups instead of striding one group.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
