package shard

// Map is the key→group routing function: a fixed avalanche hash of the key
// modulo the group count, so placement is uniform, deterministic and
// identical on every client and node of a deployment.
type Map struct {
	groups int
}

// NewMap returns the routing map for a deployment of groups replica groups.
// groups < 1 is treated as 1 (the unsharded identity map).
func NewMap(groups int) Map {
	if groups < 1 {
		groups = 1
	}
	return Map{groups: groups}
}

// Groups returns the number of replica groups.
func (m Map) Groups() int { return m.groups }

// Group returns the replica group owning key.
func (m Map) Group(key uint64) int {
	if m.groups <= 1 {
		return 0
	}
	return int(mix64(key) % uint64(m.groups))
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mixer, so that
// adjacent keys (the common access pattern in the data structures and
// benchmarks) spread across groups instead of striding one group.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
