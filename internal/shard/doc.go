// Package shard runs G independent Kite replica groups over one key space
// and exposes them as a single kite.Session — the scaling layer the paper
// does not need (its testbed is one replica group) but a production
// deployment does: a single group's throughput is bounded by its
// replication degree, because every relaxed write broadcasts to all
// replicas (§3.2) and every synchronisation quorum spans the whole
// membership (§3.3, §3.4).
//
// Each group is a complete Kite deployment with its own ES/ABD/Paxos
// membership and transport; keys are partitioned across groups by a fixed
// avalanche hash (Map), so every protocol round stays inside one group.
// This composes soundly because all three of Kite's protocols are already
// per-key — two keys in different groups never shared protocol state in the
// first place. The single cross-key obligation in the whole model is the
// RELEASE BARRIER ("by the time my release is visible, all my prior writes
// are visible", §2.1), and that is exactly what Session adds back across
// groups: before a release (or RMW, which carries release semantics)
// executes in its key's owning group, the session fences every other group
// it has written since its last synchronisation with an OpFlush — a release
// barrier without a write — waiting until those writes are applied at EVERY
// replica of their group.
//
// The fence insists on all-replica acknowledgement rather than borrowing
// the release's DM-set slow path (§4.2): a DM-set published in group A is
// consumed by later acquires in group A, but a cross-shard consumer
// acquires in group B and would never observe it. The same all-or-nothing
// rule carries the fence through replica restarts: a group member catching
// up after a restart (internal/catchup) acks only writes it has genuinely
// applied, so a completed fence means full replication even when one of
// the ackers was mid-rejoin. See DESIGN.md "Sharding" and "Recovery" for
// the availability consequences.
//
// Ordering contract: a sharded session keeps session order per group and
// executes synchronisation operations one at a time in global submission
// order (releases/acquires stay linearizable among themselves — the RCLin
// requirement of §2.2). Relaxed accesses routed to different groups may
// complete out of submission order relative to each other; Release
// Consistency makes that unobservable.
package shard
