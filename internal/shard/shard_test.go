package shard_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"kite"
	"kite/internal/shard"
	"kite/sharded"
)

func TestMapDeterministicAndBalanced(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 8} {
		m := shard.NewMap(groups)
		if m.Groups() != groups {
			t.Fatalf("Groups() = %d, want %d", m.Groups(), groups)
		}
		counts := make([]int, groups)
		const keys = 1 << 14
		for k := uint64(0); k < keys; k++ {
			g := m.Group(k)
			if g != m.Group(k) {
				t.Fatalf("groups=%d key=%d: routing not deterministic", groups, k)
			}
			if g < 0 || g >= groups {
				t.Fatalf("groups=%d key=%d: group %d out of range", groups, k, g)
			}
			counts[g]++
		}
		// Uniform hash: every group should hold roughly keys/groups; allow
		// a generous ±25% (sequential keys are the adversarial pattern a
		// modulo-only map would fail catastrophically).
		want := keys / groups
		for g, c := range counts {
			if c < want*3/4 || c > want*5/4 {
				t.Fatalf("groups=%d: group %d holds %d of %d keys (want ≈%d)", groups, g, c, keys, want)
			}
		}
	}
}

func TestMapIdentityWhenUnsharded(t *testing.T) {
	m := shard.NewMap(0) // clamped to 1
	for k := uint64(0); k < 100; k++ {
		if m.Group(k) != 0 {
			t.Fatalf("unsharded map routed key %d to group %d", k, m.Group(k))
		}
	}
}

// keyInGroup returns the first key >= start that m routes to g.
func keyInGroup(t *testing.T, m shard.Map, g int, start uint64) uint64 {
	t.Helper()
	for k := start; k < start+1<<16; k++ {
		if m.Group(k) == g {
			return k
		}
	}
	t.Fatalf("no key in group %d near %d", g, start)
	return 0
}

func newTestCluster(t *testing.T, groups int) *sharded.Cluster {
	t.Helper()
	c, err := sharded.NewCluster(groups, kite.Options{
		Nodes: 3, Workers: 2, SessionsPerWorker: 4, Capacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestCrossShardReleaseFence is the core soundness property of the sharding
// layer, checked without any acquire in the written group: after a release
// in group B completes, the session's earlier relaxed writes in group A are
// applied at EVERY replica of group A (the cross-shard fence drained them),
// so plain relaxed reads on any node observe them immediately.
func TestCrossShardReleaseFence(t *testing.T) {
	c := newTestCluster(t, 2)
	m := shard.NewMap(2)
	kA := keyInGroup(t, m, 0, 1000)
	kB := keyInGroup(t, m, 1, 2000)

	s := c.Session(0, 0)
	defer s.Close()
	if err := s.Write(kA, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseWrite(kB, []byte("go")); err != nil {
		t.Fatal(err)
	}
	// Every replica of group A must already hold the write: read through a
	// fresh session on every node, relaxed, no retries.
	for n := 0; n < c.Nodes(); n++ {
		r := c.Session(n, 1)
		if v, err := r.Read(kA); err != nil || string(v) != "payload" {
			t.Fatalf("node %d: read(%d) = %q, %v after cross-shard release", n, kA, v, err)
		}
		r.Close()
	}
}

// TestShardedBatchSplitsPerGroup checks that a mixed batch split across
// groups keeps index alignment and per-group order, and that FAAs inside
// one batch stay sequential.
func TestShardedBatchSplitsPerGroup(t *testing.T) {
	c := newTestCluster(t, 3)
	s := c.Session(0, 0)
	defer s.Close()
	ctx := context.Background()

	const n = 60 // spans all 3 groups with interleaved keys
	ops := make([]kite.Op, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		ops = append(ops, kite.WriteOp(i, []byte{byte(i)}))
	}
	for i := uint64(0); i < n; i++ {
		ops = append(ops, kite.ReadOp(i))
	}
	rs, err := s.DoBatch(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		r := rs[n+i]
		if len(r.Value) != 1 || r.Value[0] != byte(i) {
			t.Fatalf("batch read %d = %v (group %d)", i, r.Value, c.GroupOf(i))
		}
	}

	// FAA is a sync op: the batch path must keep it ordered with the
	// relaxed run around it.
	faas := make([]kite.Op, 10)
	for i := range faas {
		faas[i] = kite.FAAOp(1<<20, 1)
	}
	rs, err = s.DoBatch(ctx, faas)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Uint64() != uint64(i) {
			t.Fatalf("faa %d saw old=%d", i, r.Uint64())
		}
	}
}

// TestCrossShardFenceAfterSlowRelease is the end-to-end regression for the
// DM-set interaction: an in-group slow release in group A (one group-A
// replica asleep) settles the producer's writes; the following cross-shard
// release in group B must STILL wait for the sleeper's real acks, because
// the consumer acquires only in group B and would otherwise read group A's
// stale replica forever.
func TestCrossShardFenceAfterSlowRelease(t *testing.T) {
	c := newTestCluster(t, 2)
	m := shard.NewMap(2)
	kA := keyInGroup(t, m, 0, 1000)  // payload: group A
	kA2 := keyInGroup(t, m, 0, 5000) // in-group release flag: group A
	kB := keyInGroup(t, m, 1, 2000)  // cross-shard flag: group B

	const nap = 400 * time.Millisecond
	c.Group(0).PauseNode(2, nap) // only group A's replica on machine 2 sleeps

	prod := c.Session(0, 0)
	defer prod.Close()
	start := time.Now()
	if err := prod.Write(kA, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// In-group release: completes promptly via the DM-set slow path.
	if err := prod.ReleaseWrite(kA2, []byte("local")); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since > nap/2 {
		t.Fatalf("in-group release took %v; expected the DM-set slow path", since)
	}
	// Cross-shard release: the fence must wait for the sleeper's acks.
	if err := prod.ReleaseWrite(kB, []byte("go")); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since < nap/2 {
		t.Fatalf("cross-shard release completed in %v: settled writes leaked past the fence", since)
	}
	// The consumer's group-A sub-session sits on the machine that slept;
	// after acquiring in group B, its plain read must see the payload.
	cons := c.Session(2, 1)
	defer cons.Close()
	if v, err := cons.AcquireRead(kB); err != nil || string(v) != "go" {
		t.Fatalf("acquire = %q, %v", v, err)
	}
	if v, err := cons.Read(kA); err != nil || string(v) != "payload" {
		t.Fatalf("cross-shard RC violation after slow release: read = %q, %v", v, err)
	}
}

// TestShardedFlushOp checks that a user-level FlushOp fences every dirty
// group of the session.
func TestShardedFlushOp(t *testing.T) {
	c := newTestCluster(t, 2)
	m := shard.NewMap(2)
	kA := keyInGroup(t, m, 0, 100)
	kB := keyInGroup(t, m, 1, 200)

	s := c.Session(0, 0)
	defer s.Close()
	if err := s.Write(kA, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(kB, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), kite.FlushOp()); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < c.Nodes(); n++ {
		r := c.Session(n, 1)
		if v, _ := r.Read(kA); string(v) != "a" {
			t.Fatalf("node %d: group-0 write not replicated after flush", n)
		}
		if v, _ := r.Read(kB); string(v) != "b" {
			t.Fatalf("node %d: group-1 write not replicated after flush", n)
		}
		r.Close()
	}
}

// TestShardedDoCancelWhileQueued checks that Do honours its context even
// while the op is still queued behind a pump blocked on an earlier
// synchronisation op — the same prompt-cancellation contract as every
// other backend.
func TestShardedDoCancelWhileQueued(t *testing.T) {
	c := newTestCluster(t, 2)
	s := c.Session(0, 0)
	defer s.Close()

	// Block the pump: pause every replica, then submit an async FAA (a
	// sync op the pump executes inline).
	c.PauseNode(0, 600*time.Millisecond)
	c.PauseNode(1, 600*time.Millisecond)
	c.PauseNode(2, 600*time.Millisecond)
	faaDone := make(chan kite.Result, 1)
	s.DoAsync(kite.FAAOp(1, 1), func(r kite.Result) { faaDone <- r })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Do(ctx, kite.ReadOp(2))
	if !errors.Is(err, kite.ErrCanceled) {
		t.Fatalf("queued Do under deadline: %v, want ErrCanceled", err)
	}
	if since := time.Since(start); since > 400*time.Millisecond {
		t.Fatalf("Do held the caller %v past a 100ms deadline", since)
	}
	// The session recovers once the nodes wake.
	if r := <-faaDone; r.Err != nil {
		t.Fatalf("blocked FAA after wake: %v", r.Err)
	}
	if err := s.Write(3, []byte("after")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestShardedAsyncPipelineOrder checks DoAsync ordering through the pump: a
// burst of relaxed writes to one key followed by a synchronous read
// observes the last write.
func TestShardedAsyncPipelineOrder(t *testing.T) {
	c := newTestCluster(t, 2)
	s := c.Session(0, 0)
	defer s.Close()
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		s.DoAsync(kite.WriteOp(9, []byte{byte(i)}), func(r kite.Result) { errs <- r.Err })
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("async write %d: %v", i, err)
		}
	}
	if v, err := s.Read(9); err != nil || len(v) != 1 || v[0] != n-1 {
		t.Fatalf("read after async burst = %v, %v", v, err)
	}
}
