package membership

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"kite/internal/llc"
)

// ConfigKey is the reserved key a replica group's configuration lives under.
// Reconfigurations are compare-and-swaps on this key through the ordinary
// per-key Paxos machinery, which is what serialises concurrent membership
// changes per group (one consensus instance per epoch transition). The key
// is the top of the key space; applications must not use it.
const ConfigKey = ^uint64(0)

// Config is one replica group's membership at one configuration epoch: the
// bitmask of member node ids, plus the monotonically increasing epoch that
// names this exact member set. Every protocol frame on the wire carries the
// sender's epoch; frames from other epochs are rejected, which is what makes
// two configurations' quorums unable to interleave (DESIGN.md "Membership").
//
// The zero value is not a valid configuration (no members); Initial builds
// the boot-time config of a fresh deployment.
type Config struct {
	// Epoch counts committed reconfigurations. A fresh deployment boots at
	// epoch 0 with its flag/Options-given member set; every committed
	// add/remove increments it by exactly one.
	Epoch uint32
	// Members is the bitmask of member node ids (bit i set = node i is a
	// member). Ids are stable across reconfigurations: removing node 1 of
	// {0,1,2,3} leaves {0,2,3}, it does not renumber anyone.
	Members uint16
}

// Initial returns the epoch-0 configuration of a fresh n-node deployment:
// members 0..n-1.
func Initial(n int) Config {
	return Config{Epoch: 0, Members: uint16(1<<n) - 1}
}

// N returns the member count — the group's replication degree.
func (c Config) N() int { return bits.OnesCount16(c.Members) }

// Quorum returns the majority size of the member set.
func (c Config) Quorum() int { return c.N()/2 + 1 }

// Mask returns the member bitmask (the "all replicas" mask quorum and
// full-ack logic works against).
func (c Config) Mask() uint16 { return c.Members }

// Contains reports whether node id is a member.
func (c Config) Contains(id uint8) bool {
	return int(id) < llc.MaxNodes && c.Members&(1<<id) != 0
}

// MemberIDs returns the member ids in ascending order.
func (c Config) MemberIDs() []uint8 {
	out := make([]uint8, 0, c.N())
	for id := uint8(0); int(id) < llc.MaxNodes; id++ {
		if c.Members&(1<<id) != 0 {
			out = append(out, id)
		}
	}
	return out
}

// Add returns the successor configuration that includes id: epoch+1,
// members ∪ {id}.
func (c Config) Add(id uint8) Config {
	return Config{Epoch: c.Epoch + 1, Members: c.Members | 1<<id}
}

// Remove returns the successor configuration that excludes id: epoch+1,
// members \ {id}.
func (c Config) Remove(id uint8) Config {
	return Config{Epoch: c.Epoch + 1, Members: c.Members &^ (1 << id)}
}

func (c Config) String() string {
	return fmt.Sprintf("epoch %d, members %v", c.Epoch, c.MemberIDs())
}

// encodedLen is the wire/store size of a Config: epoch(4) members(2).
const encodedLen = 4 + 2

// Encode returns the stored representation of c — the value committed under
// ConfigKey (6 bytes, far below the value-size limit).
func (c Config) Encode() []byte {
	b := make([]byte, encodedLen)
	binary.LittleEndian.PutUint32(b, c.Epoch)
	binary.LittleEndian.PutUint16(b[4:], c.Members)
	return b
}

// Decode parses an encoded Config. It rejects short/long values and empty
// member sets, so a corrupted (or application-written) config key can never
// install garbage membership.
func Decode(b []byte) (Config, error) {
	if len(b) != encodedLen {
		return Config{}, fmt.Errorf("membership: config value of %d bytes (want %d)", len(b), encodedLen)
	}
	c := Config{
		Epoch:   binary.LittleEndian.Uint32(b),
		Members: binary.LittleEndian.Uint16(b[4:]),
	}
	if c.Members == 0 {
		return Config{}, fmt.Errorf("membership: empty member set")
	}
	return c, nil
}
