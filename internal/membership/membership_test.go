package membership

import (
	"reflect"
	"testing"
)

func TestInitial(t *testing.T) {
	c := Initial(3)
	if c.Epoch != 0 || c.N() != 3 || c.Quorum() != 2 || c.Mask() != 0b111 {
		t.Fatalf("Initial(3) = %+v", c)
	}
	for id := uint8(0); id < 3; id++ {
		if !c.Contains(id) {
			t.Fatalf("Initial(3) missing %d", id)
		}
	}
	if c.Contains(3) {
		t.Fatal("Initial(3) contains 3")
	}
}

func TestAddRemove(t *testing.T) {
	c := Initial(3)
	c4 := c.Add(3)
	if c4.Epoch != 1 || c4.N() != 4 || c4.Quorum() != 3 || !c4.Contains(3) {
		t.Fatalf("Add(3) = %+v", c4)
	}
	c3 := c4.Remove(1)
	if c3.Epoch != 2 || c3.N() != 3 || c3.Quorum() != 2 || c3.Contains(1) {
		t.Fatalf("Remove(1) = %+v", c3)
	}
	// Ids are stable, not renumbered.
	want := []uint8{0, 2, 3}
	if got := c3.MemberIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MemberIDs = %v, want %v", got, want)
	}
}

func TestEncodeDecode(t *testing.T) {
	c := Config{Epoch: 7, Members: 0b1101}
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("roundtrip = %+v, want %+v", got, c)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short value accepted")
	}
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("long value accepted")
	}
	if _, err := Decode(make([]byte, 6)); err == nil {
		t.Fatal("empty member set accepted")
	}
}
