// Package membership defines per-replica-group configuration epochs: a
// versioned member set (Config) agreed through the group's own per-key Paxos
// machinery on a reserved key, carried on every protocol frame, and checked
// on every receive.
//
// # Relation to the paper
//
// Kite (PPoPP 2020) fixes the machine set up front: the quorum arguments of
// §3 (ABD majorities for releases/acquires, per-key Paxos majorities for
// RMWs, the all-replica ack rule of the Eventual Store fast path) and the
// fast/slow-path safety lemmas of §5 are all stated for a static n. This
// package supplies the missing axis — changing n while the group serves —
// without touching any of those protocols' internals, by the group-epoch
// technique of Hermes (ASPLOS 2020): attach the sender's configuration epoch
// to every message, reject mismatches, and make a configuration change a
// single agreed transition from epoch E to E+1.
//
// The safety argument is quorum intersection ACROSS configurations
// (DESIGN.md "Membership" carries the full version):
//
//   - Within one epoch, the paper's own arguments apply verbatim — quorum
//     sizes are just derived from the epoch's member set instead of a boot
//     flag.
//   - Across the transition E -> E+1, single-member changes keep majorities
//     intersecting (a majority of S and a majority of S∪{x} — or S\{x} —
//     always share a member of S), and the joiner enters with the PR 4
//     anti-entropy sweep already run against a coverage set of the new
//     config, so the one member the new quorums may lean on that the old
//     ones did not has every established write before it counts toward any
//     read quorum (it refuses read-type quorum traffic until then — the
//     rejoin gate of internal/catchup).
//   - Frames from epoch != mine are dropped at dispatch, so an operation's
//     quorum is assembled entirely from replicas that agree on the member
//     set the quorum is a majority OF. A replica behind on the config learns
//     it out of band (KindConfigPull/KindConfigInfo) and the dropped frame
//     is re-delivered by the protocols' own retransmissions — availability
//     degrades to one extra round trip, never to a wrong answer.
//
// # Agreement
//
// A configuration is the value of ConfigKey, changed only by
// compare-and-swap RMWs (core.Node.ReconfigureAdd/ReconfigureRemove): the
// expected value is the current config's encoding, the new value the
// successor epoch's. Per-key Paxos therefore serialises racing
// reconfigurations — exactly one CAS wins epoch E+1, the loser observes the
// winner's config and reports a conflict. Concurrent add+remove is thus
// serialized per group by construction; there are no joint quorums.
//
// Replicas install a committed config from any of: the Paxos commit/learn
// broadcast of the CAS (the usual path), a KindConfigInfo frame pushed by a
// peer that saw their stale epoch, or — for a (re)joining replica — the
// config key swept like any other key by the catch-up protocol. Installs
// are monotone in the epoch and idempotent.
package membership
