// Package kvs implements the local in-memory key-value store each Kite node
// maintains. The design follows the paper's adaptation of MICA (§6.2): a
// bucketed hash index whose buckets are protected by sequence locks
// (seqlocks) so that the common-case local read of the Eventual Store fast
// path is wait-free with respect to other readers, plus Kite-specific
// per-key metadata:
//
//   - the key's Lamport logical clock (LLC), shared by ES, ABD and Paxos;
//   - the key's epoch-id, compared against the machine epoch-id to decide
//     fast path vs slow path (§4.2);
//   - a lazily allocated Paxos structure reachable from the entry, so that
//     locking the key also locks its consensus state (§6.2).
//
// Go's race detector forbids classical seqlocks (plain loads racing plain
// stores), so every mutable word of an entry is an atomic word: readers do
// optimistic atomic loads bracketed by sequence checks, writers take the
// bucket mutex and bump the sequence around their atomic stores. This keeps
// the algorithm identical in structure and cost while being data-race-free.
package kvs

import (
	"sync/atomic"

	"kite/internal/llc"
)

// MaxValueLen is the largest value the store holds, in bytes.
const MaxValueLen = 64

const (
	entriesPerBucket = 8
	valueWords       = MaxValueLen / 8
	stateUsed        = uint32(1 << 31)
	stateValid       = uint32(1 << 30)
	stateLenMask     = uint32(0xff)
)

// Entry is one key's slot. All fields are atomic words; mutation happens
// only under the owning bucket's writer lock with the sequence odd. The meta
// field (the per-key Paxos structure) is not atomic: it is read and written
// only by writer-side code holding the bucket lock.
type Entry struct {
	key   atomic.Uint64
	state atomic.Uint32 // used bit | valid bit | value length
	stamp atomic.Uint64 // packed llc.Stamp
	epoch atomic.Uint64 // per-key epoch-id (§4.2)
	words [valueWords]atomic.Uint64
	meta  any
}

// Key returns the entry's key.
func (e *Entry) Key() uint64 { return e.key.Load() }

// Stamp returns the entry's current LLC.
func (e *Entry) Stamp() llc.Stamp { return llc.Unpack(e.stamp.Load()) }

// Epoch returns the entry's per-key epoch-id.
func (e *Entry) Epoch() uint64 { return e.epoch.Load() }

// Meta returns the per-key metadata (the Paxos structure). Only call from
// within Store.Mutate, which holds the bucket lock.
func (e *Entry) Meta() any { return e.meta }

// SetMeta installs per-key metadata. Only call from within Store.Mutate.
func (e *Entry) SetMeta(m any) { e.meta = m }

// ValueInto copies the entry's value into buf (which must have capacity
// MaxValueLen) and returns the filled prefix.
func (e *Entry) ValueInto(buf []byte) []byte {
	n := int(e.state.Load() & stateLenMask)
	buf = buf[:MaxValueLen]
	for w := 0; w < valueWords; w++ {
		putWord(buf[w*8:], e.words[w].Load())
	}
	return buf[:n]
}

// SetValue stores val and st into the entry. Only call from within
// Store.Mutate (bucket lock held, sequence odd).
func (e *Entry) SetValue(val []byte, st llc.Stamp) {
	storeValue(e, val)
	e.stamp.Store(st.Pack())
}

// SetStamp stores st. Only call from within Store.Mutate.
func (e *Entry) SetStamp(st llc.Stamp) { e.stamp.Store(st.Pack()) }

// AdvanceEpoch raises the per-key epoch-id to at least epoch. Only call
// from within Store.Mutate. Per §4.2, epochs only move forward: the key's
// epoch is advanced to a snapshot of the machine epoch taken when the
// slow-path access started, never beyond the machine epoch.
func (e *Entry) AdvanceEpoch(epoch uint64) {
	if e.epoch.Load() < epoch {
		e.epoch.Store(epoch)
	}
}

func storeValue(e *Entry, val []byte) {
	if len(val) > MaxValueLen {
		val = val[:MaxValueLen]
	}
	var w int
	for w = 0; w*8 < len(val); w++ {
		e.words[w].Store(wordAt(val, w*8))
	}
	for ; w < valueWords; w++ {
		e.words[w].Store(0)
	}
	// Installing a value rewrites state without stateValid: every install —
	// local ES write, remote ES apply, ABD/Paxos adoption, WAL replay,
	// catch-up sweep — doubles as the Hermes-style invalidation point. A key
	// becomes valid again only through Store.Validate, i.e. only when the
	// write's origin has seen acks from every current member.
	e.state.Store(stateUsed | uint32(len(val)))
}

func wordAt(b []byte, off int) uint64 {
	var v uint64
	n := len(b) - off
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return v
}

func putWord(b []byte, v uint64) {
	for i := 0; i < 8 && i < len(b); i++ {
		b[i] = byte(v >> (8 * i))
	}
}

type bucket struct {
	seq     atomic.Uint32
	mu      spinMutex
	entries [entriesPerBucket]Entry
	next    atomic.Pointer[bucket]
}

// Store is a fixed-bucket hash table of Entries.
type Store struct {
	buckets []bucket
	mask    uint64
	count   atomic.Int64

	// hook observes durable transitions from inside bucket critical
	// sections (see SetHook). Plain field: installed once before the
	// store sees traffic, then only read.
	hook func(Event)
}

// New creates a store sized for roughly capacity keys. The bucket count is
// the next power of two of capacity/entriesPerBucket; overflow chains absorb
// skew, so capacity is a hint rather than a limit.
func New(capacity int) *Store {
	if capacity < entriesPerBucket {
		capacity = entriesPerBucket
	}
	n := 1
	for n*entriesPerBucket < capacity {
		n <<= 1
	}
	return &Store{buckets: make([]bucket, n), mask: uint64(n - 1)}
}

// Len returns the number of keys present.
func (s *Store) Len() int { return int(s.count.Load()) }

// mix is splitmix64's finalizer; uniform keys hash to uniform buckets and
// adversarial key patterns still spread.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *Store) bucketFor(key uint64) *bucket { return &s.buckets[mix(key)&s.mask] }

// findRead walks the bucket chain looking for key without taking locks.
// It must be called inside a seqlock read section.
func findRead(b *bucket, key uint64) *Entry {
	for ; b != nil; b = b.next.Load() {
		for i := range b.entries {
			e := &b.entries[i]
			if e.state.Load()&stateUsed != 0 && e.key.Load() == key {
				return e
			}
		}
	}
	return nil
}

// View performs a seqlock-protected consistent read of key, copying the
// value into buf (capacity >= MaxValueLen). ok is false when the key is
// absent, in which case the key is logically at its initial state (zero
// value, zero stamp, epoch 0) — all replicas agree on that.
func (s *Store) View(key uint64, buf []byte) (val []byte, st llc.Stamp, epoch uint64, ok bool) {
	b := s.bucketFor(key)
	for {
		s1 := b.seq.Load()
		if s1&1 != 0 {
			continue
		}
		e := findRead(b, key)
		if e == nil {
			if b.seq.Load() == s1 {
				return nil, llc.Zero, 0, false
			}
			continue
		}
		val = e.ValueInto(buf)
		st = e.Stamp()
		epoch = e.Epoch()
		if b.seq.Load() == s1 && e.key.Load() == key {
			return val, st, epoch, true
		}
	}
}

// ViewStamp reads just the key's LLC (the lightweight first round of an ABD
// write reads only this).
func (s *Store) ViewStamp(key uint64) (llc.Stamp, bool) {
	b := s.bucketFor(key)
	for {
		s1 := b.seq.Load()
		if s1&1 != 0 {
			continue
		}
		e := findRead(b, key)
		if e == nil {
			if b.seq.Load() == s1 {
				return llc.Zero, false
			}
			continue
		}
		st := e.Stamp()
		if b.seq.Load() == s1 && e.key.Load() == key {
			return st, true
		}
	}
}

// ViewValid is the local linearizable read (Hermes-style): a seqlock-
// protected read of key that succeeds only when the entry carries the
// valid bit — its value is a fully-replicated relaxed write every current
// member has acked — AND the key is in-epoch. Both conditions are loaded
// inside the sequence section, so a concurrent install (which clears the
// bit) or epoch advance forces a retry or a miss, never a stale hit. ok
// is false for absent, invalid or out-of-epoch keys; callers fall back to
// the ABD quorum read.
func (s *Store) ViewValid(key uint64, epoch uint64, buf []byte) (val []byte, st llc.Stamp, ok bool) {
	b := s.bucketFor(key)
	for {
		s1 := b.seq.Load()
		if s1&1 != 0 {
			continue
		}
		e := findRead(b, key)
		if e == nil {
			if b.seq.Load() == s1 {
				return nil, llc.Zero, false
			}
			continue
		}
		if e.state.Load()&stateValid == 0 || e.Epoch() != epoch {
			if b.seq.Load() == s1 && e.key.Load() == key {
				return nil, llc.Zero, false
			}
			continue
		}
		val = e.ValueInto(buf)
		st = e.Stamp()
		if b.seq.Load() == s1 && e.key.Load() == key {
			return val, st, true
		}
	}
}

// Validate marks key readable locally, but only if its installed stamp
// still equals st — the stamp the fully-acked write carried. A newer
// install has already superseded (and re-invalidated) the acked value, in
// which case this is a no-op; the newer write's own full-ack will
// re-validate. Holding the bucket mutex (without bumping the sequence —
// value and stamp are untouched, so concurrent Views stay consistent)
// makes the stamp check and the bit set atomic against writers.
func (s *Store) Validate(key uint64, st llc.Stamp) {
	b := s.bucketFor(key)
	b.mu.Lock()
	if e := findRead(b, key); e != nil && e.stamp.Load() == st.Pack() {
		e.state.Or(stateValid)
	}
	b.mu.Unlock()
}

// Invalidate clears key's valid bit if the entry exists: the caller
// learned of an in-flight write to key (an ABD round 1, a Paxos propose)
// that an install has not yet reflected locally. Absent keys need nothing
// — they are never valid.
func (s *Store) Invalidate(key uint64) {
	b := s.bucketFor(key)
	b.mu.Lock()
	if e := findRead(b, key); e != nil {
		e.state.And(^stateValid)
	}
	b.mu.Unlock()
}

// findOrInsert locates key in the chain, allocating a slot (and overflow
// buckets as needed) if absent. Caller holds the head bucket's lock.
func (s *Store) findOrInsert(head *bucket, key uint64) *Entry {
	var free *Entry
	for b := head; ; {
		for i := range b.entries {
			e := &b.entries[i]
			if e.state.Load()&stateUsed != 0 {
				if e.key.Load() == key {
					return e
				}
			} else if free == nil {
				free = e
			}
		}
		nxt := b.next.Load()
		if nxt == nil {
			if free == nil {
				nb := new(bucket)
				b.next.Store(nb)
				free = &nb.entries[0]
			}
			break
		}
		b = nxt
	}
	free.key.Store(key)
	free.state.Store(stateUsed) // zero-length value, present
	free.stamp.Store(0)
	free.epoch.Store(0)
	s.count.Add(1)
	return free
}

// NumBuckets returns the number of head buckets — the cursor space of
// SnapshotBucket. Overflow buckets hang off their head bucket and are
// visited with it, so a walk of [0, NumBuckets) covers every key.
func (s *Store) NumBuckets() int { return len(s.buckets) }

// SnapshotBucket runs fn over every used entry of head bucket i and its
// overflow chain, holding the bucket's writer lock so fn observes each
// entry consistently and may read Meta. The seqlock sequence is not
// bumped — nothing mutates — so concurrent Views proceed unharmed. fn must
// be brief and must not call back into the store. This is the iteration
// primitive behind the anti-entropy catch-up sweep (internal/catchup): a
// restarted replica pulls peers' key spaces one bucket range at a time.
func (s *Store) SnapshotBucket(i int, fn func(e *Entry)) {
	b := &s.buckets[i]
	b.mu.Lock()
	for bb := b; bb != nil; bb = bb.next.Load() {
		for j := range bb.entries {
			e := &bb.entries[j]
			if e.state.Load()&stateUsed != 0 {
				fn(e)
			}
		}
	}
	b.mu.Unlock()
}

// Mutate runs fn on key's entry (creating it if absent) under the bucket
// writer lock with the seqlock held odd, so concurrent Views retry. This is
// the single writer-side primitive every other mutator builds on; it is also
// how Paxos code reaches the per-key consensus structure — locking the key
// locks its Paxos state, as in the paper.
func (s *Store) Mutate(key uint64, fn func(e *Entry)) {
	b := s.bucketFor(key)
	b.mu.Lock()
	b.seq.Add(1)
	e := s.findOrInsert(b, key)
	fn(e)
	b.seq.Add(1)
	b.mu.Unlock()
}

// Apply merges a remote write: the value is installed iff st is newer than
// the entry's current stamp (last-writer-wins by LLC, which is what
// serializes writes per key in ES and ABD). Reports whether it applied.
func (s *Store) Apply(key uint64, val []byte, st llc.Stamp) (applied bool) {
	s.Mutate(key, func(e *Entry) {
		if e.Stamp().Less(st) {
			e.SetValue(val, st)
			applied = true
			s.Record(Event{Kind: EvWrite, Key: key, Stamp: st, Value: val})
		}
	})
	return applied
}

// ApplyAndAdvance is Apply plus an epoch advance in one critical section;
// slow-path accesses use it to adopt a quorum-fresh value and bring the key
// back in-epoch atomically.
func (s *Store) ApplyAndAdvance(key uint64, val []byte, st llc.Stamp, epoch uint64) (applied bool) {
	s.Mutate(key, func(e *Entry) {
		if e.Stamp().Less(st) {
			e.SetValue(val, st)
			applied = true
			s.Record(Event{Kind: EvWrite, Key: key, Stamp: st, Value: val})
		}
		e.AdvanceEpoch(epoch)
	})
	return applied
}

// LocalWrite performs an Eventual Store local write: bump the key's version,
// stamp it with this machine's id, install the value, and return the new
// stamp for broadcasting.
func (s *Store) LocalWrite(key uint64, val []byte, mid uint8) (st llc.Stamp) {
	s.Mutate(key, func(e *Entry) {
		st = e.Stamp().Next(mid)
		e.SetValue(val, st)
		s.Record(Event{Kind: EvWrite, Key: key, Stamp: st, Value: val})
	})
	return st
}

// WriteAtLeast installs val with a fresh stamp strictly greater than both
// the local stamp and base (the maximum observed by a quorum round), and
// advances the key epoch to epoch. This is the second half of an ABD write
// and of the stripped slow-path relaxed write.
func (s *Store) WriteAtLeast(key uint64, val []byte, base llc.Stamp, mid uint8, epoch uint64) (st llc.Stamp) {
	s.Mutate(key, func(e *Entry) {
		st = llc.Max(e.Stamp(), base).Next(mid)
		e.SetValue(val, st)
		e.AdvanceEpoch(epoch)
		s.Record(Event{Kind: EvWrite, Key: key, Stamp: st, Value: val})
	})
	return st
}

// AdvanceEpoch raises key's epoch-id to at least epoch, creating the entry
// if needed.
func (s *Store) AdvanceEpoch(key uint64, epoch uint64) {
	s.Mutate(key, func(e *Entry) { e.AdvanceEpoch(epoch) })
}

// LocalWriteInEpoch is the fast-path relaxed write: it behaves like
// LocalWrite but only if the key is in-epoch (its epoch-id equals the
// machine epoch-id passed in). Out-of-epoch keys — including keys this node
// has never touched once the machine epoch moved past zero — must take the
// slow path, because the local stamp may be behind writes this node missed.
func (s *Store) LocalWriteInEpoch(key uint64, val []byte, mid uint8, epoch uint64) (st llc.Stamp, ok bool) {
	s.Mutate(key, func(e *Entry) {
		if e.Epoch() != epoch {
			return
		}
		st = e.Stamp().Next(mid)
		e.SetValue(val, st)
		ok = true
		s.Record(Event{Kind: EvWrite, Key: key, Stamp: st, Value: val})
	})
	return st, ok
}

// spinMutex is a minimal test-and-set lock. Bucket critical sections are a
// handful of atomic stores, so spinning beats parking; this mirrors the
// writer side of a kernel seqlock.
type spinMutex struct{ v atomic.Uint32 }

func (m *spinMutex) Lock() {
	for !m.v.CompareAndSwap(0, 1) {
		for m.v.Load() != 0 {
			spinPause()
		}
	}
}

func (m *spinMutex) Unlock() { m.v.Store(0) }
