package kvs

import (
	"fmt"
	"testing"
)

// TestSnapshotBucketCoversStore checks the catch-up iteration primitive: a
// walk of [0, NumBuckets) visits every key exactly once, overflow chains
// included, with consistent (value, stamp) views.
func TestSnapshotBucketCoversStore(t *testing.T) {
	s := New(64) // small head-bucket array forces overflow chains
	const keys = 500
	for k := uint64(0); k < keys; k++ {
		s.LocalWrite(k, []byte(fmt.Sprintf("v%d", k)), 3)
	}
	seen := make(map[uint64]string, keys)
	buf := make([]byte, MaxValueLen)
	for i := 0; i < s.NumBuckets(); i++ {
		s.SnapshotBucket(i, func(e *Entry) {
			k := e.Key()
			if _, dup := seen[k]; dup {
				t.Fatalf("key %d visited twice", k)
			}
			if st := e.Stamp(); st.MID != 3 || st.Ver == 0 {
				t.Fatalf("key %d stamp %v", k, st)
			}
			seen[k] = string(e.ValueInto(buf))
		})
	}
	if len(seen) != keys {
		t.Fatalf("walk saw %d keys, want %d", len(seen), keys)
	}
	for k := uint64(0); k < keys; k++ {
		if want := fmt.Sprintf("v%d", k); seen[k] != want {
			t.Fatalf("key %d = %q, want %q", k, seen[k], want)
		}
	}
}
