package kvs

import "kite/internal/llc"

// EventKind classifies a durable store transition for the mutation
// hook. Value installs are EvWrite regardless of which protocol drove
// them (ES broadcast, ABD write-back, commit application); the Paxos
// persistence points and catch-up imports get their own kinds because
// replay must restore consensus state, not just values.
type EventKind uint8

const (
	// EvWrite: a value was installed under Stamp.
	EvWrite EventKind = iota
	// EvPromise: a Paxos promise for Stamp was granted at Slot.
	EvPromise
	// EvAccept: a Paxos accept of Value (origin op-id Origin) under
	// ballot Stamp at Slot.
	EvAccept
	// EvCommit: a Paxos commit of Value at Slot was applied (ballot in
	// Stamp, origin op-id in Origin, recent-origin ring in Origins).
	EvCommit
	// EvImport: committed consensus state was imported by catch-up
	// (Slot, last origin in Origin, recent ring in Origins).
	EvImport
)

// Event is one durable transition, reported from inside the bucket
// critical section that performed it — so the hook observes events in
// exactly per-key mutation order. Value and Origins are borrowed: the
// hook must copy (or fully consume) them before returning.
type Event struct {
	Kind    EventKind
	Key     uint64
	Slot    uint64
	Origin  uint64
	Stamp   llc.Stamp
	Value   []byte
	Origins []uint64
}

// SetHook installs the mutation hook. The hook runs under bucket locks,
// so it must be fast and must not call back into the store. Install it
// once, before the store sees any traffic; it is read without
// synchronization on every mutation.
func (s *Store) SetHook(fn func(Event)) { s.hook = fn }

// Record reports ev to the mutation hook, if one is installed. It is
// exported so protocol code running inside Mutate closures (Paxos
// handlers) can report transitions the store itself cannot see.
func (s *Store) Record(ev Event) {
	if s.hook != nil {
		s.hook(ev)
	}
}
