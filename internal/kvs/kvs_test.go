package kvs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kite/internal/llc"
)

func TestViewMissing(t *testing.T) {
	s := New(64)
	buf := make([]byte, MaxValueLen)
	if _, _, _, ok := s.View(1, buf); ok {
		t.Fatal("missing key reported present")
	}
	if _, ok := s.ViewStamp(1); ok {
		t.Fatal("missing key has a stamp")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLocalWriteAndView(t *testing.T) {
	s := New(64)
	buf := make([]byte, MaxValueLen)
	st := s.LocalWrite(42, []byte("hello"), 3)
	if st != (llc.Stamp{Ver: 1, MID: 3}) {
		t.Fatalf("first write stamp = %v", st)
	}
	val, got, _, ok := s.View(42, buf)
	if !ok || string(val) != "hello" || got != st {
		t.Fatalf("View = %q %v %v", val, got, ok)
	}
	st2 := s.LocalWrite(42, []byte("world"), 3)
	if !st.Less(st2) {
		t.Fatalf("second stamp %v not greater than %v", st2, st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestApplyLastWriterWins(t *testing.T) {
	s := New(64)
	buf := make([]byte, MaxValueLen)
	if !s.Apply(7, []byte("a"), llc.Stamp{Ver: 2, MID: 1}) {
		t.Fatal("fresh apply rejected")
	}
	if s.Apply(7, []byte("b"), llc.Stamp{Ver: 2, MID: 0}) {
		t.Fatal("older stamp applied")
	}
	if s.Apply(7, []byte("c"), llc.Stamp{Ver: 2, MID: 1}) {
		t.Fatal("equal stamp applied")
	}
	if !s.Apply(7, []byte("d"), llc.Stamp{Ver: 2, MID: 2}) {
		t.Fatal("newer tie-broken stamp rejected")
	}
	val, st, _, _ := s.View(7, buf)
	if string(val) != "d" || st != (llc.Stamp{Ver: 2, MID: 2}) {
		t.Fatalf("final = %q %v", val, st)
	}
}

func TestWriteAtLeast(t *testing.T) {
	s := New(64)
	s.Apply(9, []byte("x"), llc.Stamp{Ver: 5, MID: 2})
	st := s.WriteAtLeast(9, []byte("y"), llc.Stamp{Ver: 8, MID: 0}, 1, 3)
	if st != (llc.Stamp{Ver: 9, MID: 1}) {
		t.Fatalf("stamp = %v, want 9@1", st)
	}
	buf := make([]byte, MaxValueLen)
	val, got, epoch, _ := s.View(9, buf)
	if string(val) != "y" || got != st || epoch != 3 {
		t.Fatalf("view = %q %v epoch=%d", val, got, epoch)
	}
	// Local stamp dominates the base when larger.
	st2 := s.WriteAtLeast(9, []byte("z"), llc.Stamp{Ver: 1, MID: 0}, 4, 0)
	if st2 != (llc.Stamp{Ver: 10, MID: 4}) {
		t.Fatalf("stamp = %v, want 10@4", st2)
	}
	_, _, epoch, _ = s.View(9, buf)
	if epoch != 3 {
		t.Fatalf("epoch regressed to %d", epoch)
	}
}

func TestEpochMonotonic(t *testing.T) {
	s := New(64)
	s.AdvanceEpoch(1, 5)
	s.AdvanceEpoch(1, 3)
	buf := make([]byte, MaxValueLen)
	_, _, epoch, ok := s.View(1, buf)
	if !ok || epoch != 5 {
		t.Fatalf("epoch = %d ok=%v, want 5", epoch, ok)
	}
}

func TestMetaUnderMutate(t *testing.T) {
	s := New(64)
	s.Mutate(11, func(e *Entry) {
		if e.Meta() != nil {
			t.Fatal("fresh entry has meta")
		}
		e.SetMeta("paxos-state")
	})
	s.Mutate(11, func(e *Entry) {
		if e.Meta() != "paxos-state" {
			t.Fatal("meta lost")
		}
	})
}

func TestOverflowChains(t *testing.T) {
	// A store with a single bucket forces every key through the overflow
	// path.
	s := New(1)
	const n = 100
	for i := 0; i < n; i++ {
		s.LocalWrite(uint64(i), []byte{byte(i)}, 0)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	buf := make([]byte, MaxValueLen)
	for i := 0; i < n; i++ {
		val, _, _, ok := s.View(uint64(i), buf)
		if !ok || len(val) != 1 || val[0] != byte(i) {
			t.Fatalf("key %d: %v %v", i, val, ok)
		}
	}
}

func TestValueSizes(t *testing.T) {
	s := New(64)
	buf := make([]byte, MaxValueLen)
	for n := 0; n <= MaxValueLen; n++ {
		val := make([]byte, n)
		for i := range val {
			val[i] = byte(i + n)
		}
		s.LocalWrite(77, val, 0)
		got, _, _, ok := s.View(77, buf)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("len %d: got %v want %v", n, got, val)
		}
	}
	// Shrinking the value must clear stale tail bytes.
	s.LocalWrite(77, bytes.Repeat([]byte{0xff}, 64), 0)
	s.LocalWrite(77, []byte{1}, 0)
	got, _, _, _ := s.View(77, buf)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("shrunk value = %v", got)
	}
}

func TestZeroKeyIsValid(t *testing.T) {
	s := New(64)
	s.LocalWrite(0, []byte("zero"), 1)
	buf := make([]byte, MaxValueLen)
	val, _, _, ok := s.View(0, buf)
	if !ok || string(val) != "zero" {
		t.Fatalf("key 0: %q %v", val, ok)
	}
}

// TestPropertyApplyConverges: applying the same set of (value, stamp) pairs
// in any order leaves every replica with the value of the max stamp — the
// per-key write serialization property that underpins per-key SC.
func TestPropertyApplyConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		type wr struct {
			val []byte
			st  llc.Stamp
		}
		// Stamps are unique per write in the real protocols (LLCs are
		// globally unique); mirror that invariant here.
		writes := make([]wr, n)
		used := make(map[uint64]bool, n)
		for i := range writes {
			var st llc.Stamp
			for {
				st = llc.Stamp{Ver: uint64(1 + rng.Intn(8)), MID: uint8(rng.Intn(4))}
				if !used[st.Pack()] {
					used[st.Pack()] = true
					break
				}
			}
			writes[i] = wr{val: []byte(fmt.Sprintf("v%d", i)), st: st}
		}
		want := writes[0]
		for _, w := range writes[1:] {
			if want.st.Less(w.st) {
				want = w
			}
		}
		// Two replicas, two independent shuffles.
		a, b := New(16), New(16)
		for _, i := range rng.Perm(n) {
			a.Apply(1, writes[i].val, writes[i].st)
		}
		for _, i := range rng.Perm(n) {
			b.Apply(1, writes[i].val, writes[i].st)
		}
		buf := make([]byte, MaxValueLen)
		av, ast, _, _ := a.View(1, buf)
		avs := string(av)
		bv, bst, _, _ := b.View(1, buf)
		return avs == string(bv) && ast == bst && ast == want.st && avs == string(want.val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWriters stresses the seqlock: concurrent writers
// store self-describing values; readers must never observe a torn value.
func TestConcurrentReadersWriters(t *testing.T) {
	s := New(256)
	const keys = 32
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			val := make([]byte, 32)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				fill := byte(rng.Intn(256))
				for j := range val {
					val[j] = fill
				}
				s.LocalWrite(k, val, uint8(id))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			buf := make([]byte, MaxValueLen)
			for i := 0; i < 50000; i++ {
				k := uint64(rng.Intn(keys))
				val, _, _, ok := s.View(k, buf)
				if !ok {
					continue
				}
				for j := 1; j < len(val); j++ {
					if val[j] != val[0] {
						t.Errorf("torn read on key %d: %v", k, val)
						return
					}
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestConcurrentStampMonotone: per-key stamps never regress under concurrent
// LocalWrites from distinct machine ids.
func TestConcurrentStampMonotone(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	const perWriter = 2000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint8) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.LocalWrite(5, []byte{byte(i)}, id)
			}
		}(uint8(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last llc.Stamp
		for i := 0; i < 100000; i++ {
			st, ok := s.ViewStamp(5)
			if !ok {
				continue
			}
			if st.Less(last) {
				t.Errorf("stamp regressed: %v after %v", st, last)
				return
			}
			last = st
		}
	}()
	wg.Wait()
	<-done
	st, _ := s.ViewStamp(5)
	// 4 writers x perWriter bumps: version must equal total writes.
	if st.Ver != 4*perWriter {
		t.Fatalf("final version %d, want %d", st.Ver, 4*perWriter)
	}
}

func BenchmarkViewHit(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i++ {
		s.LocalWrite(uint64(i), []byte("0123456789abcdef0123456789abcdef"), 0)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, MaxValueLen)
		i := uint64(0)
		for pb.Next() {
			i++
			s.View(i&0xffff, buf)
		}
	})
}

func BenchmarkLocalWrite(b *testing.B) {
	s := New(1 << 16)
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(rand.Uint64())
		for pb.Next() {
			i++
			s.LocalWrite(i&0xffff, val, 1)
		}
	})
}
