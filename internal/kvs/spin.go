package kvs

import "runtime"

// spinPause yields the processor briefly while spinning on a bucket lock.
// Gosched keeps the scheduler healthy when GOMAXPROCS is small (tests, CI)
// at negligible cost on the uncontended path.
func spinPause() { runtime.Gosched() }
