// Package barrier implements the machine-level state behind Kite's fast/slow
// path mechanism (§4.2 of the paper):
//
//   - the machine epoch-id, a monotonic counter whose increment renders every
//     locally stored key out-of-epoch (each key carries its own epoch-id in
//     the KVS and is compared against this one on every relaxed access);
//   - the delinquency bit-vector, one bit per machine in the deployment,
//     recording which machines are suspected to have missed writes. Bits are
//     set by slow-release messages, answered (and moved to the transient T
//     state) by acquires, and cleared by unique-id-tagged reset-bit messages
//     — the exact three-state protocol of §4.2.1 whose safety is Lemma 5.6/5.7.
//
// One Epoch and one Vector are shared by all workers of a node; the vector
// is mutex-guarded (it is touched only by synchronisation traffic, never by
// the relaxed fast path), while the epoch is a bare atomic so the fast-path
// epoch check costs one load.
package barrier

import (
	"sync"
	"sync/atomic"

	"kite/internal/llc"
)

// Epoch is a machine epoch-id. The zero value is the initial epoch.
type Epoch struct{ v atomic.Uint64 }

// Load returns the current machine epoch-id.
func (e *Epoch) Load() uint64 { return e.v.Load() }

// Bump increments the machine epoch-id, transitioning the machine to the
// slow path: every key whose per-key epoch-id is now smaller must be
// refreshed once (via a stripped ABD access) before it can be read locally
// again. Returns the new epoch.
func (e *Epoch) Bump() uint64 { return e.v.Add(1) }

// BitState is the state of one delinquency bit.
type BitState uint8

// Delinquency bit states (§4.2.1, Figure 3).
const (
	Clear BitState = iota // machine not suspected
	Set                   // machine suspected to have missed >=1 write
	Trans                 // T: an acquire observed the bit; reset pending
)

func (s BitState) String() string {
	switch s {
	case Clear:
		return "0"
	case Set:
		return "1"
	case Trans:
		return "T"
	}
	return "?"
}

// Vector is a node's delinquency bit-vector. Bits exist for every machine in
// the deployment, including the local one: if a slow-release names this very
// machine, the bit still must be discoverable by this machine's own acquires
// (the local replica counts towards the acquire's quorum).
type Vector struct {
	mu   sync.Mutex
	bits [llc.MaxNodes]BitState
	// ids[m] holds the unique ids of the acquires that moved bit m from
	// Set to Trans and have not yet resolved. A reset-bit message clears
	// the bit only if its id is still pending — that is what makes the
	// read-and-reset atomic against racing slow-releases (Lemma 5.7). The
	// set is bounded by the number of concurrent sessions on machine m,
	// since a session has at most one outstanding acquire.
	ids [llc.MaxNodes]map[uint64]struct{}
	// retired[p] is the highest per-session sequence (the low 32 bits of
	// an op id, keyed by its node|incarnation|session prefix) whose id may
	// no longer enter the transient state. Lemma 5.7 assumes each acquire
	// reaches a replica exactly once; a lossy transport retransmits, and a
	// duplicate acq-read arriving after a newer slow-release Set the bit
	// would re-record its id — letting the acquire's in-flight reset-bit
	// clear a bit that now encodes delinquency the acquirer never heard
	// of. Ids are retired when a slow-release discards them or a reset-bit
	// names them (either way the acquire can no longer legitimately own a
	// pending reset here); session sequences are monotonic, so a watermark
	// per prefix suffices. Retired duplicates are still *flagged* — only
	// the Set→Trans transition and the id recording are refused.
	retired map[uint32]uint32

	// Counters for tests and the bench harness.
	setEvents   atomic.Uint64
	resetEvents atomic.Uint64
	transEvents atomic.Uint64
}

// OnSlowRelease processes a slow-release message carrying the DM-set as a
// bitmask: every named machine's bit is unconditionally set and any pending
// reset ids are discarded, so in-flight reset-bit messages from older
// acquires will be ignored.
func (v *Vector) OnSlowRelease(dmSet uint16) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for m := 0; m < llc.MaxNodes; m++ {
		if dmSet&(1<<m) == 0 {
			continue
		}
		v.bits[m] = Set
		for id := range v.ids[m] {
			v.retire(id)
		}
		v.ids[m] = nil
		v.setEvents.Add(1)
	}
}

// retire records that acqID's acquire may no longer transition bits on this
// replica (its pending reset, if any, has been discarded or consumed).
// Callers hold v.mu.
func (v *Vector) retire(acqID uint64) {
	p, s := uint32(acqID>>32), uint32(acqID)
	if v.retired == nil {
		v.retired = make(map[uint32]uint32)
	}
	if s > v.retired[p] {
		v.retired[p] = s
	}
}

// isRetired reports whether acqID was retired. Callers hold v.mu.
func (v *Vector) isRetired(acqID uint64) bool {
	return uint32(acqID) <= v.retired[uint32(acqID>>32)]
}

// OnAcquire is called when machine m performs an acquire against this node
// (an ABD read round, a Paxos propose, or the local loopback of either).
// It reports whether m is currently deemed delinquent; if so the bit moves
// to (or stays in) the transient state with acqID recorded, awaiting the
// matching reset-bit.
func (v *Vector) OnAcquire(m uint8, acqID uint64) (delinquent bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.bits[m] == Clear {
		return false
	}
	if v.isRetired(acqID) {
		// A stale duplicate (retransmission) of an acquire whose pending
		// reset was already discarded or consumed here: it must still be
		// told the machine is suspected, but may not (re-)enter the
		// transient state — its reset-bit could be in flight and would
		// clear a bit re-set by a slow-release it knows nothing about.
		return true
	}
	switch v.bits[m] {
	case Set:
		v.bits[m] = Trans
		v.ids[m] = map[uint64]struct{}{acqID: {}}
		v.transEvents.Add(1)
	default: // Trans: another acquire from m is already mid-reset
		if v.ids[m] == nil {
			v.ids[m] = make(map[uint64]struct{})
		}
		v.ids[m][acqID] = struct{}{}
	}
	return true
}

// OnResetBit processes a reset-bit message from machine m tagged with the
// originating acquire's unique id. The bit is cleared iff it is still in the
// transient state and the id is one that transitioned it — i.e. no
// slow-release intervened (Lemma 5.7). Reports whether the bit was cleared.
func (v *Vector) OnResetBit(m uint8, acqID uint64) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	// A reset is only ever sent after its acquire completed, so whatever
	// happens below, this id must never enter the transient state again —
	// a later duplicate of its acq-read is stale by construction.
	v.retire(acqID)
	if v.bits[m] != Trans {
		return false
	}
	if _, ok := v.ids[m][acqID]; !ok {
		return false
	}
	v.bits[m] = Clear
	v.ids[m] = nil
	v.resetEvents.Add(1)
	return true
}

// Mask returns the bitmask of machines currently suspected — bits in the
// Set or Trans state. It is the delinquency payload a replica exports to a
// rejoining peer during catch-up (DESIGN.md "Recovery"): the transient
// state is conservatively reported as suspected, since its pending reset
// may yet be discarded by a racing slow-release.
func (v *Vector) Mask() uint16 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var m uint16
	for i, b := range v.bits {
		if b != Clear {
			m |= 1 << i
		}
	}
	return m
}

// Merge folds a peer's exported delinquency mask into this vector, as a
// rejoining replica does for every peer it sweeps: each named machine's bit
// is set exactly as if a slow-release had named it. Over-approximation is
// safe — a spuriously set bit costs the named machine one extra epoch bump,
// never a consistency violation (Lemma 5.6 only needs bits to err towards
// suspicion).
func (v *Vector) Merge(mask uint16) { v.OnSlowRelease(mask) }

// State returns the current state of machine m's bit (tests and debugging).
func (v *Vector) State(m uint8) BitState {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bits[m]
}

// PendingIDs returns how many acquire ids are recorded for machine m.
func (v *Vector) PendingIDs(m uint8) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.ids[m])
}

// Counters returns (set, trans, reset) event counts.
func (v *Vector) Counters() (set, trans, reset uint64) {
	return v.setEvents.Load(), v.transEvents.Load(), v.resetEvents.Load()
}

// DMSet builds a delinquent-machines bitmask from per-node ack bitmaps: a
// machine is delinquent if it failed to ack any of the writes. ackedMasks
// holds, per pending write, the bitmask of nodes that acked it; full is the
// all-nodes mask.
func DMSet(ackedMasks []uint16, full uint16) uint16 {
	var dm uint16
	for _, m := range ackedMasks {
		dm |= full &^ m
	}
	return dm
}
