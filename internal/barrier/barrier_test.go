package barrier

import (
	"math/rand"
	"sync"
	"testing"
)

func TestEpochBump(t *testing.T) {
	var e Epoch
	if e.Load() != 0 {
		t.Fatal("initial epoch not 0")
	}
	if e.Bump() != 1 || e.Load() != 1 {
		t.Fatal("bump")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Bump()
			}
		}()
	}
	wg.Wait()
	if e.Load() != 8001 {
		t.Fatalf("epoch = %d, want 8001", e.Load())
	}
}

func TestVectorBasicCycle(t *testing.T) {
	var v Vector
	// Figure 3's cycle: slow-release sets B's bit, B's acquire moves it to
	// T, B's reset-bit clears it.
	if v.OnAcquire(1, 100) {
		t.Fatal("clear bit reported delinquent")
	}
	v.OnSlowRelease(1 << 1)
	if v.State(1) != Set {
		t.Fatal("bit not set")
	}
	if !v.OnAcquire(1, 101) {
		t.Fatal("set bit not reported")
	}
	if v.State(1) != Trans {
		t.Fatal("bit not in T")
	}
	if !v.OnResetBit(1, 101) {
		t.Fatal("matching reset refused")
	}
	if v.State(1) != Clear {
		t.Fatal("bit not cleared")
	}
	// Subsequent acquires see a clear bit.
	if v.OnAcquire(1, 102) {
		t.Fatal("cleared bit reported delinquent")
	}
}

func TestVectorResetRequiresMatchingID(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 2)
	v.OnAcquire(2, 7)
	if v.OnResetBit(2, 8) {
		t.Fatal("reset with wrong id accepted")
	}
	if v.State(2) != Trans {
		t.Fatal("bit left T on wrong id")
	}
	if !v.OnResetBit(2, 7) {
		t.Fatal("correct id refused")
	}
}

func TestVectorRacingSlowReleaseWins(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 3)
	v.OnAcquire(3, 50)
	// A racing slow-release re-marks the machine before the reset lands:
	// the stale reset must be discarded (Lemma 5.7).
	v.OnSlowRelease(1 << 3)
	if v.State(3) != Set {
		t.Fatal("slow-release did not force Set")
	}
	if v.OnResetBit(3, 50) {
		t.Fatal("stale reset accepted after slow-release")
	}
	if v.State(3) != Set {
		t.Fatal("bit lost its Set state")
	}
}

func TestVectorMultipleAcquirers(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 4)
	// Two sessions of machine 4 acquire concurrently; both must learn of
	// the delinquency and either reset may clear the bit.
	if !v.OnAcquire(4, 1) || !v.OnAcquire(4, 2) {
		t.Fatal("concurrent acquirers not notified")
	}
	if v.PendingIDs(4) != 2 {
		t.Fatalf("pending ids = %d", v.PendingIDs(4))
	}
	if !v.OnResetBit(4, 2) {
		t.Fatal("second acquirer's reset refused")
	}
	// First acquirer's reset arrives late: bit already clear, no-op.
	if v.OnResetBit(4, 1) {
		t.Fatal("reset on clear bit accepted")
	}
}

// TestVectorDuplicateAcqReadAfterDiscard is the chaos-found interleave: an
// acquire's id is discarded by a racing slow-release (Lemma 5.7), then a
// retransmitted duplicate of the same acq-read arrives and must NOT re-enter
// the transient state — its in-flight reset-bit would otherwise clear a bit
// that now encodes the newer release's delinquency.
func TestVectorDuplicateAcqReadAfterDiscard(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 1)
	if !v.OnAcquire(1, 101) {
		t.Fatal("set bit not reported")
	}
	// Newer slow-release: bit back to Set, id 101 discarded and retired.
	v.OnSlowRelease(1 << 1)
	// Duplicate acq-read 101: still flagged, but no transition or record.
	if !v.OnAcquire(1, 101) {
		t.Fatal("duplicate not flagged")
	}
	if v.State(1) != Set || v.PendingIDs(1) != 0 {
		t.Fatalf("duplicate re-entered Trans: state=%v pending=%d", v.State(1), v.PendingIDs(1))
	}
	// The stale reset must bounce off the Set bit.
	if v.OnResetBit(1, 101) {
		t.Fatal("stale reset cleared a re-set bit")
	}
	if v.State(1) != Set {
		t.Fatal("bit lost its Set state")
	}
	// A genuinely newer acquire from the same session still works.
	if !v.OnAcquire(1, 102) || v.State(1) != Trans {
		t.Fatal("fresh acquire blocked by watermark")
	}
	if !v.OnResetBit(1, 102) || v.State(1) != Clear {
		t.Fatal("fresh reset refused")
	}
}

// TestVectorDuplicateAcqReadAfterReset covers the first-sight-duplicate
// case: a replica that never saw the original acq-read receives a duplicate
// only after the acquire's reset-bit already passed through (retiring the
// id). The duplicate may flag but must not record the retired id.
func TestVectorDuplicateAcqReadAfterReset(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 2)
	v.OnAcquire(2, 7)
	if !v.OnResetBit(2, 7) || v.State(2) != Clear {
		t.Fatal("legit reset refused")
	}
	// A newer release re-sets the bit; a zombie duplicate of acq-read 7
	// arrives afterwards.
	v.OnSlowRelease(1 << 2)
	if !v.OnAcquire(2, 7) {
		t.Fatal("zombie duplicate not flagged")
	}
	if v.State(2) != Set || v.PendingIDs(2) != 0 {
		t.Fatalf("zombie re-entered Trans: state=%v pending=%d", v.State(2), v.PendingIDs(2))
	}
}

// TestVectorLiveRetransmitStillTransitions: retransmissions of a live,
// un-reset acquire are not duplicates in the dangerous sense — they may
// still transition Set→Trans and their reset clears as usual.
func TestVectorLiveRetransmitStillTransitions(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1 << 3)
	if !v.OnAcquire(3, 50) || !v.OnAcquire(3, 50) {
		t.Fatal("live acquire not flagged")
	}
	if v.State(3) != Trans || v.PendingIDs(3) != 1 {
		t.Fatalf("state=%v pending=%d", v.State(3), v.PendingIDs(3))
	}
	if !v.OnResetBit(3, 50) || v.State(3) != Clear {
		t.Fatal("live reset refused")
	}
}

// TestVectorWatermarkPerSession: retiring one session's id must not block
// another session's concurrent acquire (distinct id prefixes).
func TestVectorWatermarkPerSession(t *testing.T) {
	const (
		sessA = uint64(1)<<56 | uint64(0)<<32 // node 1, session 0
		sessB = uint64(1)<<56 | uint64(1)<<32 // node 1, session 1
	)
	var v Vector
	v.OnSlowRelease(1 << 1)
	v.OnAcquire(1, sessA|9)
	v.OnSlowRelease(1 << 1) // discards + retires sessA seq 9
	if !v.OnAcquire(1, sessB|3) || v.State(1) != Trans {
		t.Fatal("other session's acquire blocked")
	}
	if v.PendingIDs(1) != 1 {
		t.Fatalf("pending = %d", v.PendingIDs(1))
	}
	if !v.OnResetBit(1, sessB|3) || v.State(1) != Clear {
		t.Fatal("other session's reset refused")
	}
}

func TestVectorMultipleMachines(t *testing.T) {
	var v Vector
	v.OnSlowRelease(1<<1 | 1<<5)
	if v.State(1) != Set || v.State(5) != Set || v.State(2) != Clear {
		t.Fatal("DM-set decoding wrong")
	}
	set, _, _ := v.Counters()
	if set != 2 {
		t.Fatalf("set events = %d", set)
	}
}

func TestDMSet(t *testing.T) {
	full := uint16(0b11111) // 5 nodes
	cases := []struct {
		masks []uint16
		want  uint16
	}{
		{nil, 0},
		{[]uint16{full}, 0},
		{[]uint16{0b11011}, 0b00100},
		{[]uint16{0b11011, 0b01111}, 0b10100},
		{[]uint16{0, full}, full},
	}
	for i, c := range cases {
		if got := DMSet(c.masks, full); got != c.want {
			t.Errorf("case %d: DMSet = %05b, want %05b", i, got, c.want)
		}
	}
}

// TestVectorConcurrent hammers the three transitions from many goroutines;
// invariants: State is always one of the three states, and a reset only ever
// succeeds while the bit is in Trans with that id pending. Run with -race.
func TestVectorConcurrent(t *testing.T) {
	var v Vector
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				m := uint8(rng.Intn(4))
				switch rng.Intn(3) {
				case 0:
					v.OnSlowRelease(1 << m)
				case 1:
					id := rng.Uint64()
					if v.OnAcquire(m, id) {
						v.OnResetBit(m, id)
					}
				case 2:
					v.OnResetBit(m, rng.Uint64())
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for m := uint8(0); m < 4; m++ {
		if s := v.State(m); s != Clear && s != Set && s != Trans {
			t.Fatalf("machine %d in impossible state %v", m, s)
		}
	}
}

func TestBitStateString(t *testing.T) {
	if Clear.String() != "0" || Set.String() != "1" || Trans.String() != "T" {
		t.Fatal("state strings")
	}
	if BitState(9).String() != "?" {
		t.Fatal("unknown state string")
	}
}
