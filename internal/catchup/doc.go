// Package catchup implements the anti-entropy state transfer a restarted
// replica runs before it re-enters the serving set (ROADMAP "Restart &
// state transfer"; DESIGN.md "Recovery").
//
// The paper's failure study (§8.4) covers a *sleeping* replica — one that
// keeps its state and merely stops responding, to be repaired by the
// delinquency machinery when it wakes. A replica that restarts is worse
// than asleep: it comes back empty, and the writes it acknowledged in its
// previous life are exactly the ones no DM-set will ever name, because at
// the time they completed nobody was owed a suspicion. This package closes
// that gap in the style of Hermes' replay-based rejoin (PAPERS.md), adapted
// to Kite's quorum protocols.
//
// A rejoining node sweeps its peers' key spaces: it sends cursor-addressed
// pull requests, each answered by a chunk of (key, LLC stamp, value) items
// plus the key's committed per-key Paxos state, and merges every item
// last-writer-wins by LLC — the per-key LLC comparison that makes the sweep
// idempotent and safe to interleave with live traffic. Each chunk's End
// frame also carries the peer's delinquency bit mask, which the joiner
// unions into its own vector so suspicion published while it was down (or
// before) survives its amnesia.
//
// One peer is not enough. Kite's synchronisation writes complete at a
// QUORUM, and quorum intersection is an inductive property: it holds only
// while every replica remembers what it acknowledged. A restarted replica
// breaks the induction — a release acked by {A, B, J} before J's crash may
// be absent from the one peer J happens to sweep. The sweep therefore
// completes only once full sweeps of at least n-⌈(n+1)/2⌉+1 distinct peers
// have finished (Coverage): any write quorum contains at least that many
// replicas besides J, so the union of the swept peers' stores provably
// contains every write any completed quorum round established.
//
// While the sweep runs, the owning node (internal/core) treats itself like
// the paper's sleeping replica in reverse: it applies and acknowledges
// writes (sound — an ack truthfully means "applied locally", and the node
// serves no local reads until caught up), buffers client requests, and
// drops read-type quorum traffic so its forgotten state never counts
// toward another machine's quorum intersection.
//
// Since live membership (DESIGN.md "Membership"), the sweep is defined
// over the group's installed configuration rather than a boot-time n: the
// peer walk and the coverage requirement derive from the member bitmask
// (NewSweepMask), a replica ADDED to a running group runs exactly this
// sweep as its admission gate (a joiner is an amnesiac whose amnesia is
// total), and a configuration that lands mid-sweep rebuilds the walk
// against the new member set — chunks are idempotent, so restarting the
// cursors is merely conservative. The config key itself transfers like
// any other key, which is how a replica that slept through
// reconfigurations learns the current member set by the time it serves.
package catchup
