package catchup

import (
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/paxos"
	"kite/internal/proto"
)

// DefaultChunk bounds how many key entries a peer packs into one catch-up
// chunk. 96 items cost ~12 KiB typically and ~24 KiB worst case (max-size
// value plus a full origin ring per item) — comfortably inside
// proto.MaxBatchBytes even when the chunk shares its datagram with live
// protocol traffic.
const DefaultChunk = 96

// maxChunkBytes caps a chunk's marshalled size regardless of the item
// budget the caller asks for. This bound is load-bearing on the UDP
// transport: the whole staged batch — items, End frame, and any live
// traffic sharing the flush — must fit proto.MaxBatchBytes (60 KiB), and
// an oversized batch is DROPPED there, End frame included, so an
// unbounded chunk would be re-requested and re-dropped forever and the
// rejoin would never finish. AppendChunk stops opening new buckets once
// past this cap (it always finishes the bucket it is in, since the cursor
// addresses whole buckets), leaving ample headroom for the overshoot.
const maxChunkBytes = 32 * 1024

// Coverage returns how many distinct peers' full sweeps a rejoining replica
// of an n-node deployment must complete before serving: n - quorum + 1.
// Every quorum round that completed before the restart was acknowledged by
// at least quorum replicas, of which at least quorum-1 are peers of the
// joiner; a peer set of this size must intersect every such quorum, so the
// union of the swept stores contains every established write (see doc.go).
func Coverage(n int) int {
	if n <= 1 {
		return 0
	}
	return n - (n/2 + 1) + 1
}

// peerState tracks one peer's sweep progress.
type peerState struct {
	cursor uint64 // next bucket index to pull
	done   bool
}

// Sweep is the rejoining replica's side of the catch-up protocol: one
// cursor walk per peer, all sharing a single operation id, complete once
// Coverage distinct peers have been swept end to end. It holds no locks —
// the owning core worker drives it single-threaded, like any pending op.
type Sweep struct {
	self      uint8
	members   uint16 // member bitmask, self included
	need      int
	doneCount int
	peers     [llc.MaxNodes]peerState
}

// NewSweep creates the sweep state for a replica rejoining an n-node
// deployment with contiguous ids 0..n-1.
func NewSweep(self uint8, n int) *Sweep {
	return NewSweepMask(self, uint16(1<<n)-1)
}

// NewSweepMask creates the sweep state for a replica (re)joining the member
// set given as a node-id bitmask (self included). The coverage requirement
// derives from the member count, the peer walks from the member ids — this
// is the constructor membership reconfiguration uses, where ids are not
// contiguous after a removal.
func NewSweepMask(self uint8, members uint16) *Sweep {
	n := 0
	for m := members; m != 0; m &= m - 1 {
		n++
	}
	return &Sweep{self: self, members: members, need: Coverage(n)}
}

// Coverage returns how many peer sweeps must complete.
func (s *Sweep) Coverage() int { return s.need }

// Done reports whether enough peers have been swept end to end.
func (s *Sweep) Done() bool { return s.doneCount >= s.need }

// PeerDone reports whether peer p's sweep has completed.
func (s *Sweep) PeerDone(p uint8) bool { return s.peers[p].done }

// Cursor returns the bucket cursor of the next pull to send to peer p.
func (s *Sweep) Cursor(p uint8) uint64 { return s.peers[p].cursor }

// Pending returns the peers whose sweeps are still in progress — the
// targets of the next pull round (and of deadline retransmissions).
func (s *Sweep) Pending() []uint8 {
	var out []uint8
	for p := uint8(0); int(p) < llc.MaxNodes; p++ {
		if p != s.self && s.members&(1<<p) != 0 && !s.peers[p].done {
			out = append(out, p)
		}
	}
	return out
}

// OnEnd folds a chunk-end frame from peer p: echo is the request cursor the
// peer answered, next the cursor to continue from, done whether the peer's
// store is exhausted. It reports whether the frame advanced the sweep —
// false for duplicates and stale retransmissions, which the caller ignores.
func (s *Sweep) OnEnd(p uint8, echo, next uint64, done bool) (advanced bool) {
	if int(p) >= llc.MaxNodes || s.members&(1<<p) == 0 || p == s.self {
		return false
	}
	ps := &s.peers[p]
	if ps.done || echo != ps.cursor {
		return false
	}
	ps.cursor = next
	if done {
		ps.done = true
		s.doneCount++
	}
	return true
}

// PullMsg builds the cursor-addressed chunk request a joiner sends a peer.
func PullMsg(self, worker uint8, opID, cursor uint64) proto.Message {
	return proto.Message{
		Kind: proto.KindCatchupPull, From: self, Worker: worker,
		OpID: opID, Slot: cursor,
	}
}

// EndMsg builds the chunk-end reply to pull request m: the continuation
// cursor, the peer's delinquency mask, and the exhausted flag.
func EndMsg(m *proto.Message, self uint8, next uint64, done bool, delinq uint16) proto.Message {
	rep := m.Reply(proto.KindCatchupEnd, self)
	rep.Slot = next
	rep.Origin = m.Slot // echo the request cursor so stale replies are detectable
	rep.Bits = delinq
	if done {
		rep.Flags |= proto.FlagCatchupDone
	}
	return rep
}

// AppendChunk scans store buckets from cursor, appending one
// KindCatchupItem per used entry to out until at least maxItems entries
// have been collected or the chunk reaches maxChunkBytes of wire size,
// whichever comes first (always finishing the bucket it is in — the
// cursor addresses whole buckets, so a retransmitted pull re-sends an
// identical, idempotent chunk). The byte cap holds for ANY maxItems, so a
// misconfigured Config.CatchupChunk cannot produce a chunk the UDP
// transport would drop. It returns the extended slice, the continuation
// cursor, and whether the store is exhausted. Entries that were created as
// epoch placeholders and never written (zero stamp, no consensus state)
// are skipped: they carry no information the joiner's empty store lacks.
func AppendChunk(store *kvs.Store, cursor uint64, maxItems int, self, worker uint8, opID uint64, out []proto.Message) ([]proto.Message, uint64, bool) {
	if maxItems <= 0 {
		maxItems = DefaultChunk
	}
	nb := uint64(store.NumBuckets())
	start := len(out)
	bytes := 0
	var buf [kvs.MaxValueLen]byte
	for cursor < nb && len(out)-start < maxItems && bytes < maxChunkBytes {
		store.SnapshotBucket(int(cursor), func(e *kvs.Entry) {
			st := e.Stamp()
			slot, lastOrigin, recent, hasPaxos := paxos.ExportMeta(e.Meta())
			if st.IsZero() && !hasPaxos {
				return
			}
			m := proto.Message{
				Kind: proto.KindCatchupItem, From: self, Worker: worker,
				Key: e.Key(), OpID: opID, Stamp: st,
				Value: append([]byte(nil), e.ValueInto(buf[:])...),
			}
			if hasPaxos {
				m.Slot = slot
				m.Origin = lastOrigin
				m.Origins = recent
			}
			bytes += m.MarshalledSize()
			out = append(out, m)
		})
		cursor++
	}
	return out, cursor, cursor >= nb
}

// ApplyItem merges one pulled entry into the joiner's store: the value
// installs iff its LLC stamp is newer than the local one (the per-key LLC
// comparison that serialises writes everywhere else in Kite), and any
// committed Paxos state merges slot-monotonically. Reports whether the
// value was newer than local state.
func ApplyItem(store *kvs.Store, m *proto.Message) (applied bool) {
	if !m.Stamp.IsZero() {
		applied = store.Apply(m.Key, m.Value, m.Stamp)
	}
	if m.Slot > 0 {
		paxos.ImportCommitted(store, m.Key, m.Slot, m.Origin, m.Origins)
	}
	return applied
}
