package catchup

import (
	"bytes"
	"fmt"
	"testing"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/paxos"
	"kite/internal/proto"
)

func TestCoverage(t *testing.T) {
	// Coverage must intersect every possible write quorum that excludes the
	// joiner: n - quorum + 1 peers.
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {7, 4}, {9, 5},
	}
	for _, c := range cases {
		if got := Coverage(c.n); got != c.want {
			t.Errorf("Coverage(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSweepProtocol(t *testing.T) {
	s := NewSweep(0, 3)
	if s.Done() {
		t.Fatal("fresh sweep already done")
	}
	if got := s.Pending(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pending = %v", got)
	}

	// Peer 1 advances through two chunks, then finishes.
	if !s.OnEnd(1, 0, 10, false) {
		t.Fatal("first End did not advance")
	}
	if s.Cursor(1) != 10 {
		t.Fatalf("cursor = %d", s.Cursor(1))
	}
	// Duplicate of the same chunk (retransmitted reply): stale echo.
	if s.OnEnd(1, 0, 10, false) {
		t.Fatal("stale End advanced the sweep")
	}
	if !s.OnEnd(1, 10, 20, true) {
		t.Fatal("final End did not advance")
	}
	if !s.PeerDone(1) || s.Done() {
		t.Fatalf("peer1 done=%v, sweep done=%v; want true,false (coverage 2)", s.PeerDone(1), s.Done())
	}
	// An End after the peer finished is ignored.
	if s.OnEnd(1, 20, 30, true) {
		t.Fatal("End after peer completion advanced")
	}
	// Self and out-of-range peers are rejected.
	if s.OnEnd(0, 0, 1, true) || s.OnEnd(7, 0, 1, true) {
		t.Fatal("accepted End from self/out-of-range peer")
	}
	if !s.OnEnd(2, 0, 20, true) || !s.Done() {
		t.Fatal("sweep not done after second peer finished")
	}
	if got := s.Pending(); len(got) != 0 {
		t.Fatalf("pending after done = %v", got)
	}
}

func TestChunkWalkAndApply(t *testing.T) {
	src := kvs.New(1 << 8)
	const keys = 300
	want := make(map[uint64][]byte, keys)
	for k := uint64(0); k < keys; k++ {
		v := []byte(fmt.Sprintf("v%d", k))
		src.LocalWrite(k, v, 1)
		want[k] = v
	}
	// Give one key committed Paxos state.
	paxos.ApplyCommit(src, 7, 0, llc.Stamp{Ver: 9, MID: 1}, []byte("rmw"), 42, nil)
	want[7] = []byte("rmw")

	// Walk the whole store in small chunks, as the joiner's pulls would.
	dst := kvs.New(1 << 8)
	var cursor uint64
	var pulled int
	for {
		msgs, next, done := AppendChunk(src, cursor, 16, 1, 0, 99, nil)
		for i := range msgs {
			if msgs[i].Kind != proto.KindCatchupItem || msgs[i].OpID != 99 {
				t.Fatalf("bad item: %+v", msgs[i])
			}
			ApplyItem(dst, &msgs[i])
			pulled++
		}
		if next <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		cursor = next
		if done {
			break
		}
	}
	if pulled != keys {
		t.Fatalf("pulled %d items, want %d", pulled, keys)
	}
	buf := make([]byte, kvs.MaxValueLen)
	for k, v := range want {
		got, _, _, ok := dst.View(k, buf)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %d: got %q (ok=%v), want %q", k, got, ok, v)
		}
	}
	// The committed Paxos slot travelled with the value.
	snap := paxos.ReadCommitted(dst, 7, buf)
	if snap.Slot != 1 || snap.LastOrigin != 42 {
		t.Fatalf("paxos state not transferred: %+v", snap)
	}
	// Re-applying the same chunk range is idempotent (retransmissions).
	msgs, _, _ := AppendChunk(src, 0, 1<<20, 1, 0, 99, nil)
	for i := range msgs {
		if ApplyItem(dst, &msgs[i]) {
			t.Fatalf("retransmitted item re-applied: key %d", msgs[i].Key)
		}
	}
}

// TestChunkByteCap: no single chunk may exceed the UDP-safe byte budget,
// no matter how large an item budget the caller passes — an oversized
// chunk would be dropped whole by the datagram transport and the sweep
// would livelock re-requesting it. The cap must also not lose coverage:
// the capped walk still visits every key.
func TestChunkByteCap(t *testing.T) {
	src := kvs.New(1 << 10)
	big := make([]byte, kvs.MaxValueLen)
	for i := range big {
		big[i] = byte(i)
	}
	const keys = 2000
	for k := uint64(0); k < keys; k++ {
		src.LocalWrite(k, big, 1)
	}
	var cursor uint64
	seen := 0
	for {
		msgs, next, done := AppendChunk(src, cursor, 1<<30, 1, 0, 5, nil)
		var bytes int
		for i := range msgs {
			bytes += msgs[i].MarshalledSize()
		}
		// One bucket chain of overshoot is allowed past the cap; with a
		// sanely sized store that is a handful of entries, far below the
		// 60 KiB transport bound.
		if bytes > maxChunkBytes+16*1024 {
			t.Fatalf("chunk of %d bytes blew the byte cap", bytes)
		}
		seen += len(msgs)
		cursor = next
		if done {
			break
		}
		if len(msgs) == 0 {
			t.Fatal("capped chunk made no progress")
		}
	}
	if seen != keys {
		t.Fatalf("capped walk saw %d items, want %d", seen, keys)
	}
}

func TestApplyItemIsLastWriterWins(t *testing.T) {
	src := kvs.New(64)
	src.LocalWrite(1, []byte("old"), 0) // stamp 1@0
	msgs, _, _ := AppendChunk(src, 0, 0, 0, 0, 1, nil)
	if len(msgs) != 1 {
		t.Fatalf("%d items", len(msgs))
	}

	dst := kvs.New(64)
	// The joiner already applied a newer live write to this key.
	dst.Apply(1, []byte("newer"), llc.Stamp{Ver: 5, MID: 2})
	if ApplyItem(dst, &msgs[0]) {
		t.Fatal("older swept value overwrote a newer live write")
	}
	buf := make([]byte, kvs.MaxValueLen)
	if got, _, _, _ := dst.View(1, buf); string(got) != "newer" {
		t.Fatalf("value = %q, want newer", got)
	}
}

func TestEndMsgEchoesCursor(t *testing.T) {
	pull := PullMsg(2, 0, 77, 40)
	if pull.Kind != proto.KindCatchupPull || pull.Slot != 40 {
		t.Fatalf("pull = %+v", pull)
	}
	end := EndMsg(&pull, 1, 56, true, 0b101)
	if end.Kind != proto.KindCatchupEnd || end.OpID != 77 ||
		end.Origin != 40 || end.Slot != 56 || end.Bits != 0b101 ||
		end.Flags&proto.FlagCatchupDone == 0 {
		t.Fatalf("end = %+v", end)
	}
	if !end.IsReply() {
		t.Fatal("End frame is not routed as a reply")
	}
}
