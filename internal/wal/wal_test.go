package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func collectReplay(t *testing.T, dir string, opt Options) ([]Record, OpenResult, *Log) {
	t.Helper()
	opt.Dir = dir
	var got []Record
	l, res, err := Open(opt, func(r *Record) { got = append(got, *r) })
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got, res, l
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindWrite, Epoch: 3, Inc: 7, Key: 42, Stamp: 99, Value: []byte("hello")},
		{Kind: KindPromise, Key: 1, Slot: 5, Stamp: 0x1234},
		{Kind: KindAccept, Key: 1, Slot: 5, Stamp: 0x1235, Origin: 77, Value: []byte("acc")},
		{Kind: KindCommit, Key: 1, Slot: 5, Stamp: 0x1235, Origin: 77, Value: []byte("acc"), Origins: []uint64{1, 2, 3}},
		{Kind: KindImport, Key: 9, Slot: 2, Origin: 5, Origins: []uint64{8}},
		{Kind: KindConfig, Epoch: 4, Value: []byte{1, 0, 0, 0, 7, 0}},
		{Kind: KindBoot, Inc: 12},
		{Kind: KindSnapEntry, Key: 3, Slot: 1, Stamp: 10, Promised: 11, AccBallot: 12, LastBallot: 13, AccOrigin: 14, AccVal: []byte("pending"), Value: []byte("v"), Origins: []uint64{4, 5}},
	}
	var buf []byte
	for i := range recs {
		buf = recs[i].appendFrame(buf)
	}
	var got []Record
	n, used := scanFrames(buf, func(r *Record) { got = append(got, *r) })
	if n != len(recs) {
		t.Fatalf("scanned %d records, want %d", n, len(recs))
	}
	if used != len(buf) {
		t.Fatalf("scan consumed %d of %d bytes", used, len(buf))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestOpenReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	_, res, l := collectReplay(t, dir, Options{Incarnation: 1})
	if res.Restored {
		t.Fatal("fresh dir reported Restored")
	}
	for i := 0; i < 100; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: uint64(i + 1), Value: []byte{byte(i)}})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, res, l2 := collectReplay(t, dir, Options{Incarnation: 1})
	defer l2.Close()
	if !res.Restored {
		t.Fatal("restart not reported as Restored")
	}
	// First replayed record is the prior boot marker.
	if got[0].Kind != KindBoot {
		t.Fatalf("first record kind = %d, want KindBoot", got[0].Kind)
	}
	writes := got[1:]
	if len(writes) != 100 {
		t.Fatalf("replayed %d writes, want 100", len(writes))
	}
	for i, r := range writes {
		if r.Key != uint64(i) || r.Stamp != uint64(i+1) || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Fatalf("write %d out of order or corrupt: %+v", i, r)
		}
		if r.Inc != 1 {
			t.Fatalf("write %d incarnation = %d, want 1", i, r.Inc)
		}
	}
}

func TestCrashPreservesBufferedRecords(t *testing.T) {
	dir := t.TempDir()
	// A long fsync interval so nothing is durable by deadline; Crash
	// must still push the buffer through write(2).
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1, FsyncInterval: time.Hour})
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1})
	}
	l.Crash()

	got, _, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	writes := 0
	for _, r := range got {
		if r.Kind == KindWrite {
			writes++
		}
	}
	if writes != 10 {
		t.Fatalf("replayed %d writes after crash, want 10", writes)
	}
}

func TestIncarnationMonotonic(t *testing.T) {
	dir := t.TempDir()
	_, res, l := collectReplay(t, dir, Options{Incarnation: 5})
	if res.Incarnation != 5 {
		t.Fatalf("first boot incarnation = %d, want 5", res.Incarnation)
	}
	l.Close()

	// A stale request must be raised above the logged incarnation,
	// even though the node never appended any traffic.
	_, res, l = collectReplay(t, dir, Options{Incarnation: 0})
	if res.Incarnation != 6 {
		t.Fatalf("second boot incarnation = %d, want 6", res.Incarnation)
	}
	l.Close()

	// A higher explicit request wins.
	_, res, l = collectReplay(t, dir, Options{Incarnation: 20})
	if res.Incarnation != 20 {
		t.Fatalf("third boot incarnation = %d, want 20", res.Incarnation)
	}
	l.Close()
}

func TestSyncMakesAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1, FsyncInterval: -1})
	if err := l.Sync(); err != nil { // no-op sync on empty log
		t.Fatalf("empty Sync: %v", err)
	}
	l.Append(Record{Kind: KindWrite, Key: 1, Stamp: 1})
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if l.syncedSeq.Load() < l.appendSeq.Load() {
		t.Fatalf("syncedSeq %d < appendSeq %d after Sync", l.syncedSeq.Load(), l.appendSeq.Load())
	}
	l.Close()
}

func segPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listIndexed(dir, "seg-", ".wal")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestTornTailTruncatesReplay(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1})
	for i := 0; i < 20; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1, Value: []byte("0123456789")})
	}
	l.Close()

	// Tear the tail mid-frame: chop the last 7 bytes.
	p := segPath(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	got, _, l2 := collectReplay(t, dir, Options{})
	writes := 0
	for _, r := range got {
		if r.Kind == KindWrite {
			writes++
			if len(r.Value) != 10 {
				t.Fatalf("partial value served: %q", r.Value)
			}
		}
	}
	if writes != 19 {
		t.Fatalf("replayed %d writes after torn tail, want 19", writes)
	}
	l2.Close()

	// That reopen repaired the tear (truncate + fsync) before creating
	// the successor segment, so the next restart must see a clean
	// non-final segment and replay the same prefix — a second crash
	// right after the first restart must not brick the log.
	got, _, l3 := collectReplay(t, dir, Options{})
	defer l3.Close()
	writes = 0
	for _, r := range got {
		if r.Kind == KindWrite {
			writes++
		}
	}
	if writes != 19 {
		t.Fatalf("replayed %d writes after repair, want 19", writes)
	}
}

func TestBitFlipStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1})
	for i := 0; i < 20; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1, Value: []byte("0123456789")})
	}
	l.Close()

	// Flip one bit in the middle of the file; replay must stop at the
	// corrupted frame and serve only the prefix before it.
	p := segPath(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, _, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	for _, r := range got {
		if r.Kind == KindWrite && len(r.Value) != 10 {
			t.Fatalf("corrupt record served: %+v", r)
		}
	}
	writes := 0
	for _, r := range got {
		if r.Kind == KindWrite {
			writes++
		}
	}
	if writes >= 20 {
		t.Fatalf("corruption not detected: %d writes replayed", writes)
	}
}

func TestSnapshotTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the pre-snapshot records span several files.
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1, SegmentBytes: 256, SnapshotEvery: 50})
	for i := 0; i < 100; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: uint64(i + 1), Value: []byte("0123456789")})
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !l.SnapshotDue() {
		t.Fatal("snapshot not due after 100 appends with SnapshotEvery=50")
	}

	// The "store" here is a flat map standing in for the kvs iteration.
	snapStore := func(n int) func(emit func(*Record)) {
		return func(emit func(*Record)) {
			for i := 0; i < n; i++ {
				emit(&Record{Kind: KindSnapEntry, Key: uint64(i), Stamp: uint64(i + 1), Value: []byte("0123456789")})
			}
		}
	}
	if err := l.Snapshot(snapStore(100)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if l.SnapshotDue() {
		t.Fatal("snapshot still due right after snapshotting")
	}

	// The first snapshot has no predecessor to fall back to, so it must
	// not delete anything: every segment stays until it has a successor
	// snapshot covering it.
	firstSnaps, _ := listIndexed(dir, "snap-", ".snap")
	if len(firstSnaps) != 1 {
		t.Fatalf("want exactly 1 snapshot, have %v", firstSnaps)
	}
	if segs, _ := listIndexed(dir, "seg-", ".wal"); len(segs) == 0 || segs[0] != 0 {
		t.Fatalf("first snapshot deleted fallback segments: %v", segs)
	}

	// Post-snapshot traffic, then a second snapshot: the first one's
	// boundary becomes the retention floor and everything below it goes.
	for i := 100; i < 110; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: uint64(i + 1)})
	}
	if err := l.Snapshot(snapStore(110)); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	l.Close()

	snaps, _ := listIndexed(dir, "snap-", ".snap")
	if len(snaps) != 2 || snaps[0] != firstSnaps[0] {
		t.Fatalf("want previous+new snapshots, have %v", snaps)
	}
	segs, _ := listIndexed(dir, "seg-", ".wal")
	for _, idx := range segs {
		if idx < snaps[0] {
			t.Fatalf("segment %d below retention floor %d not truncated", idx, snaps[0])
		}
	}

	got, res, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	if res.SnapEntries != 110 {
		t.Fatalf("replayed %d snapshot entries, want 110", res.SnapEntries)
	}
	keys := map[uint64]bool{}
	for _, r := range got {
		if r.Kind == KindSnapEntry || r.Kind == KindWrite {
			keys[r.Key] = true
		}
	}
	for i := 0; i < 110; i++ {
		if !keys[uint64(i)] {
			t.Fatalf("key %d lost across snapshot+replay", i)
		}
	}
}

func TestOldSnapshotSurvivesCorruptNewOne(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1, SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1})
	}
	if err := l.Snapshot(func(emit func(*Record)) {
		for i := 0; i < 50; i++ {
			emit(&Record{Kind: KindSnapEntry, Key: uint64(i), Stamp: 1})
		}
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Corrupt the snapshot wholesale: a first snapshot deletes nothing
	// (it has no fallback predecessor), so full segment replay must
	// recover every write — no partial records, no holes.
	snaps, _ := listIndexed(dir, "snap-", ".snap")
	p := filepath.Join(dir, snapName(snaps[0]))
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	writes := 0
	for _, r := range got {
		if r.Kind == KindSnapEntry {
			t.Fatalf("corrupt snapshot entry served: %+v", r)
		}
		if r.Kind == KindWrite {
			writes++
		}
	}
	if writes != 50 {
		t.Fatalf("recovered %d writes via segment fallback, want 50", writes)
	}
}

// TestCorruptSnapshotFallsBackToPrevious pins the retention rule: the
// previous snapshot AND the segments it needs survive until the next
// snapshot succeeds, so losing the newest snapshot falls back to a
// complete (previous snapshot + segment suffix) replay, never one with
// a hole where truncated segments used to be.
func TestCorruptSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1})
	snapStore := func(n int) func(emit func(*Record)) {
		return func(emit func(*Record)) {
			for i := 0; i < n; i++ {
				emit(&Record{Kind: KindSnapEntry, Key: uint64(i), Stamp: 1})
			}
		}
	}
	for i := 0; i < 50; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1})
	}
	if err := l.Snapshot(snapStore(50)); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1})
	}
	if err := l.Snapshot(snapStore(100)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	snaps, _ := listIndexed(dir, "snap-", ".snap")
	if len(snaps) != 2 {
		t.Fatalf("want previous+new snapshots on disk, have %v", snaps)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(snaps[1])), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, res, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	if res.SnapEntries != 50 {
		t.Fatalf("fallback replayed %d snapshot entries, want 50 from the previous snapshot", res.SnapEntries)
	}
	keys := map[uint64]bool{}
	for _, r := range got {
		if r.Kind == KindSnapEntry || r.Kind == KindWrite {
			keys[r.Key] = true
		}
	}
	for i := 0; i < 100; i++ {
		if !keys[uint64(i)] {
			t.Fatalf("key %d lost in snapshot fallback", i)
		}
	}
}

// TestTornSnapshotRejectedWholesale: a snapshot that scans partway is
// rejected before a single entry is applied — all-or-nothing — and
// replay falls back as if it did not exist.
func TestTornSnapshotRejectedWholesale(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1})
	for i := 0; i < 30; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1})
	}
	if err := l.Snapshot(func(emit func(*Record)) {
		for i := 0; i < 30; i++ {
			emit(&Record{Kind: KindSnapEntry, Key: uint64(i), Stamp: 1})
		}
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the snapshot mid-frame: a prefix of it still scans clean,
	// which is exactly the shape that must NOT be half-applied.
	snaps, _ := listIndexed(dir, "snap-", ".snap")
	p := filepath.Join(dir, snapName(snaps[0]))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	got, res, l2 := collectReplay(t, dir, Options{})
	defer l2.Close()
	if res.SnapEntries != 0 {
		t.Fatalf("torn snapshot partially applied: %d entries", res.SnapEntries)
	}
	writes := 0
	for _, r := range got {
		if r.Kind == KindSnapEntry {
			t.Fatalf("torn snapshot entry served: %+v", r)
		}
		if r.Kind == KindWrite {
			writes++
		}
	}
	if writes != 30 {
		t.Fatalf("recovered %d writes via segment fallback, want 30", writes)
	}
}

// TestTornNonFinalSegmentFailsOpen: a torn frame in a segment that has
// a successor cannot be a crash artifact (rotation fsyncs first, and a
// torn final tail is truncated before the successor is created), so
// Open must refuse rather than replay around the hole.
func TestTornNonFinalSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1})
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: KindWrite, Key: uint64(i), Stamp: 1, Value: []byte("0123456789")})
	}
	l.Close()
	// Reopen/close to give seg-0 a successor.
	_, _, l2 := collectReplay(t, dir, Options{})
	l2.Close()

	segs, _ := listIndexed(dir, "seg-", ".wal")
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, have %v", segs)
	}
	p := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(Options{Dir: dir}, nil); err == nil {
		t.Fatal("Open accepted a torn non-final segment")
	}
}

// TestSyncCriticalFsyncsOnlyCriticalTraffic: the worker-loop barrier
// must be free for pure relaxed-write iterations and force the batched
// fsync exactly when a consensus-critical record was appended.
func TestSyncCriticalFsyncsOnlyCriticalTraffic(t *testing.T) {
	dir := t.TempDir()
	// An hour-long deadline so the flusher never fsyncs on its own.
	_, _, l := collectReplay(t, dir, Options{Incarnation: 1, FsyncInterval: time.Hour})
	defer l.Close()

	// The boot record is critical (it pins the incarnation about to go
	// on the wire), so the first barrier fsyncs it.
	if err := l.SyncCritical(); err != nil {
		t.Fatalf("SyncCritical: %v", err)
	}
	base := l.syncedSeq.Load()
	if base < 1 {
		t.Fatal("boot record not made durable by SyncCritical")
	}

	l.Append(Record{Kind: KindWrite, Key: 1, Stamp: 1})
	if err := l.SyncCritical(); err != nil {
		t.Fatalf("SyncCritical: %v", err)
	}
	if got := l.syncedSeq.Load(); got != base {
		t.Fatalf("relaxed write forced an fsync: syncedSeq %d, want %d", got, base)
	}

	l.Append(Record{Kind: KindPromise, Key: 1, Slot: 0, Stamp: 2})
	if err := l.SyncCritical(); err != nil {
		t.Fatalf("SyncCritical: %v", err)
	}
	if got := l.syncedSeq.Load(); got < l.appendSeq.Load() {
		t.Fatalf("promise not durable after SyncCritical: synced %d < appended %d", got, l.appendSeq.Load())
	}
}

// FuzzWALReplay feeds arbitrary bytes to the segment scanner via a real
// Open: whatever is on disk — torn, truncated, bit-flipped, or hostile
// — replay must terminate without panicking, deliver only records that
// pass CRC and structural validation, and never deliver a record after
// the first invalid frame (no resynchronization: everything after a
// tear is untrusted).
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	for i := 0; i < 5; i++ {
		r := Record{Kind: KindWrite, Key: uint64(i), Stamp: uint64(i), Value: []byte("payload")}
		seed = r.appendFrame(seed)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	flipped := append([]byte(nil), seed...)
	flipped[10] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xffffffff))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		var got []Record
		l, _, err := Open(Options{Dir: dir}, func(r *Record) { got = append(got, *r) })
		if err != nil {
			t.Skip() // I/O-level failure, not a replay bug
		}
		defer l.Close()

		// Every delivered record must be structurally sound, and the
		// delivered sequence must be a frame-aligned prefix of data.
		off := 0
		for i, r := range got {
			if len(r.Value) > maxValueLen || len(r.Origins) > maxOriginsLen {
				t.Fatalf("record %d violates bounds: %+v", i, r)
			}
			if off+frameHeader > len(data) {
				t.Fatalf("record %d delivered beyond input: off=%d", i, off)
			}
			length := int(binary.LittleEndian.Uint32(data[off:]))
			if off+frameHeader+length > len(data) {
				t.Fatalf("record %d frame overruns input", i)
			}
			reenc := r.appendFrame(nil)
			if !bytes.Equal(reenc[frameHeader:], data[off+frameHeader:off+frameHeader+length]) {
				t.Fatalf("record %d does not round-trip to its frame bytes", i)
			}
			off += frameHeader + length
		}
	})
}
