// Package wal is the per-node write-ahead log: a segmented append-only
// log of the store's durable transitions (value installs, Paxos
// promises/accepts/commits, catch-up imports, membership config
// commits) plus periodic store snapshots that bound replay length and
// let old segments be truncated.
//
// Durability rides a deadline, not a per-op syscall. Append only
// encodes into an in-memory buffer — it is cheap enough to call from
// inside a kvs bucket critical section, which is exactly where the
// store's mutation hook fires (so log order equals per-key mutation
// order by construction) — and wakes the flusher only when the buffer
// grows large. Otherwise the flusher runs on the group-commit deadline:
// every FsyncInterval it writes the accumulated batch and fsyncs it,
// one write(2) and one fdatasync-equivalent per interval no matter the
// append rate. The deadline window covers plain value installs only: a
// power loss can take back at most one FsyncInterval of acknowledged
// relaxed writes (a process kill takes back nothing — the page cache
// survives). Consensus-critical records — Paxos promises, accepts,
// commits, and the boot marker (see criticalKind) — never ride the
// window in any mode: the worker loop calls SyncCritical before
// shipping each iteration's acks, which is a no-op unless the
// iteration appended such a record and otherwise fsyncs the whole
// batch once. Synchronous mode (FsyncInterval < 0) extends that
// barrier to every record: the worker calls Sync before shipping each
// iteration's acks, so any acknowledgment implies durability.
//
// On Open the log replays the newest intact snapshot and every segment
// at or after its boundary through the caller's apply function, then
// starts a fresh segment (old segment tails may be torn; they are never
// appended to again). Replay application is the caller's business, but
// the contract the caller must honor is that every application is
// guarded or idempotent — records that duplicate snapshot content, or
// that replay after a later record already superseded them, must be
// harmless. The store's LWW installs and the Paxos replay guards both
// have this shape.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultFsyncInterval is the group-commit deadline when
	// Options.FsyncInterval is zero: the upper bound on acknowledged
	// work a power loss can take back.
	DefaultFsyncInterval = 10 * time.Millisecond

	// DefaultSegmentBytes rotates segments at 4 MiB — small enough
	// that snapshot truncation reclaims space promptly, large enough
	// that rotation is rare on the hot path.
	DefaultSegmentBytes = 4 << 20

	// DefaultSnapshotEvery is the append count between snapshots when
	// Options.SnapshotEvery is zero.
	DefaultSnapshotEvery = 1 << 16

	// flushChunk is the buffered-bytes threshold past which Append wakes
	// the flusher ahead of the deadline. Below it, batches ride the
	// FsyncInterval timer — the whole point of group commit is that the
	// hot path costs a memcpy, not a wakeup.
	flushChunk = 256 << 10
)

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if absent. One directory per
	// node — segments and snapshots from different nodes must never
	// mix.
	Dir string

	// FsyncInterval is the group-commit deadline. Zero means
	// DefaultFsyncInterval. The deadline governs plain value installs
	// only; consensus-critical records are always fsynced before the
	// acks they justify ship (the owner calls SyncCritical at its
	// commit points — the core worker loop does, once per iteration).
	// Negative means synchronous mode: the flusher never fsyncs on its
	// own and the owner calls full Sync at those same commit points.
	FsyncInterval time.Duration

	// SegmentBytes rotates the active segment when it grows past this
	// size. Zero means DefaultSegmentBytes.
	SegmentBytes int64

	// SnapshotEvery is the number of appended records after which
	// SnapshotDue reports true. Zero means DefaultSnapshotEvery;
	// negative disables snapshot scheduling (segments then grow
	// without bound — testing only).
	SnapshotEvery int

	// Incarnation is the boot incarnation the owner wants. Open raises
	// it above any incarnation found in the log so op-id namespaces
	// are never reused across restarts, even if the operator passes a
	// stale value.
	Incarnation uint32
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	return o
}

// OpenResult reports what Open found on disk.
type OpenResult struct {
	// Incarnation is the effective boot incarnation: the requested one
	// raised above every incarnation recorded in the log.
	Incarnation uint32
	// Records is the number of log records replayed (snapshot entries
	// excluded).
	Records int
	// SnapEntries is the number of snapshot entries replayed.
	SnapEntries int
	// Restored is true when the log held any prior state at all — the
	// node is a restart, not a first boot.
	Restored bool
}

// Log is an open write-ahead log. Append/Sync/SnapshotDue are safe for
// concurrent use; Snapshot serializes internally; Close and Crash are
// idempotent.
type Log struct {
	opt Options
	inc uint32

	mu  sync.Mutex // guards buf
	buf []byte

	appendSeq atomic.Uint64 // records appended
	syncedSeq atomic.Uint64 // records durable (fsynced)
	critSeq   atomic.Uint64 // appendSeq as of the latest critical record
	sinceSnap atomic.Uint64 // records appended since the last snapshot

	// failErr is the first unrecoverable flusher error (failed write,
	// fsync, or rotation). Once set, syncedSeq stops advancing — the
	// log no longer claims durability it cannot deliver — and every
	// Sync/SyncCritical reports the error so the owner can stop.
	failErr atomic.Pointer[error]

	kick     chan struct{}
	syncCh   chan chan error
	rotateCh chan chan rotateReply
	closeCh  chan struct{}
	done     chan struct{}

	closed  atomic.Bool
	crashed atomic.Bool

	snapMu sync.Mutex // serializes Snapshot
}

type rotateReply struct {
	index uint64
	err   error
}

func segName(index uint64) string  { return fmt.Sprintf("seg-%08d.wal", index) }
func snapName(index uint64) string { return fmt.Sprintf("snap-%08d.snap", index) }

func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// listIndexed returns the sorted indices of files matching
// prefix%08dsuffix in dir.
func listIndexed(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseIndexed(e.Name(), prefix, suffix); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open replays the log at opt.Dir through apply (newest intact
// snapshot first, then every segment at or after its boundary, in
// order, stopping each file at its first torn frame), appends a boot
// record under the effective incarnation, and starts the flusher.
func Open(opt Options, apply func(*Record)) (*Log, OpenResult, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, OpenResult{}, err
	}

	var res OpenResult
	maxInc := uint32(0)
	observe := func(r *Record) {
		if r.Inc > maxInc {
			maxInc = r.Inc
		}
		if apply != nil {
			apply(r)
		}
	}

	snaps, err := listIndexed(opt.Dir, "snap-", ".snap")
	if err != nil {
		return nil, OpenResult{}, err
	}
	segs, err := listIndexed(opt.Dir, "seg-", ".wal")
	if err != nil {
		return nil, OpenResult{}, err
	}

	// A snapshot named snap-K covers everything before segment K. Use
	// the newest one that reads back fully intact — a snapshot is
	// all-or-nothing, so it is validated end to end BEFORE any entry is
	// applied; a torn or unreadable one (e.g. a crash between rename
	// and the first page hitting disk on a non-atomic filesystem) falls
	// back to the previous snapshot, which Snapshot retains — together
	// with every segment at or after its boundary — until the snapshot
	// superseding it has itself been superseded.
	replayFrom := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(opt.Dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		n, used := scanFrames(data, nil)
		if n == 0 || used != len(data) {
			continue
		}
		scanFrames(data, func(r *Record) {
			if r.Kind == KindSnapEntry || r.Kind == KindConfig {
				observe(r)
			}
		})
		res.SnapEntries = n
		replayFrom = snaps[i]
		break
	}

	for i, idx := range segs {
		if idx < replayFrom {
			continue
		}
		path := filepath.Join(opt.Dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, OpenResult{}, err
		}
		n, used := scanFrames(data, observe)
		res.Records += n
		if used == len(data) {
			continue
		}
		if i != len(segs)-1 {
			// Rotation fsyncs a segment before its successor exists, and
			// a torn final segment is truncated to its valid prefix (and
			// fsynced) right here, before the next boot's segment is
			// created. A torn frame in a non-final segment therefore
			// cannot be a crash artifact — it is corruption of the
			// durable prefix, and replaying around the hole would
			// silently drop promise/accept records. Refuse, and let the
			// operator fall back to a full resync from peers.
			return nil, OpenResult{}, fmt.Errorf(
				"wal: %s torn at byte %d but later segments exist: durable prefix corrupt, wipe %s and rejoin from peers",
				segName(idx), used, opt.Dir)
		}
		// Final segment: a torn tail is the expected power-loss shape.
		// Truncate it away so the invariant above holds once this
		// segment gains a successor (which Open is about to create).
		if err := truncateSync(path, int64(used)); err != nil {
			return nil, OpenResult{}, err
		}
	}

	res.Restored = res.Records > 0 || res.SnapEntries > 0
	res.Incarnation = opt.Incarnation
	if maxInc >= res.Incarnation {
		res.Incarnation = maxInc + 1
	}

	// Never append to an old segment, even though any torn tail was
	// truncated away above — starting fresh keeps "one boot, one
	// segment suffix" and costs one small file. Must come after the
	// tail repair: its fsync completes before the successor segment
	// exists, which is what lets replay treat a torn frame in a
	// non-final segment as corruption.
	nextSeg := uint64(0)
	if len(segs) > 0 {
		nextSeg = segs[len(segs)-1] + 1
	}
	if replayFrom > nextSeg {
		nextSeg = replayFrom
	}

	l := &Log{
		opt:      opt,
		inc:      res.Incarnation,
		kick:     make(chan struct{}, 1),
		syncCh:   make(chan chan error),
		rotateCh: make(chan chan rotateReply),
		closeCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}

	f, err := os.OpenFile(filepath.Join(opt.Dir, segName(nextSeg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, OpenResult{}, err
	}
	syncDir(opt.Dir)

	go l.flusher(f, nextSeg)

	// The boot record makes the effective incarnation durable even on
	// an idle node, so the next restart allocates above it.
	l.Append(Record{Kind: KindBoot})
	return l, res, nil
}

// Incarnation returns the effective boot incarnation.
func (l *Log) Incarnation() uint32 { return l.inc }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Append encodes r into the group-commit buffer. It never blocks on I/O
// — it is called from inside kvs bucket critical sections — and its
// lock nests strictly inside bucket locks (the flusher takes l.mu only
// around a buffer swap). The flusher is woken only when the buffer has
// grown past flushChunk; smaller batches ride the deadline timer. The
// record's incarnation field is stamped here.
func (l *Log) Append(r Record) {
	if l.closed.Load() {
		return
	}
	r.Inc = l.inc
	l.mu.Lock()
	l.buf = r.appendFrame(l.buf)
	big := len(l.buf) >= flushChunk
	l.mu.Unlock()
	seq := l.appendSeq.Add(1)
	l.sinceSnap.Add(1)
	if criticalKind(r.Kind) {
		// CAS-max: concurrent appenders may reach here out of seq
		// order, and critSeq regressing would let SyncCritical skip a
		// record that still needs the fsync.
		for {
			cur := l.critSeq.Load()
			if cur >= seq || l.critSeq.CompareAndSwap(cur, seq) {
				break
			}
		}
	}
	if big {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// Sync makes every record appended so far durable (flushed and
// fsynced) before returning. When nothing new was appended since the
// last fsync it returns immediately without a syscall, so calling it
// once per worker-loop iteration is cheap on idle workers.
func (l *Log) Sync() error {
	if l.syncedSeq.Load() >= l.appendSeq.Load() {
		return nil
	}
	if l.closed.Load() {
		return errors.New("wal: closed")
	}
	reply := make(chan error, 1)
	select {
	case l.syncCh <- reply:
		return <-reply
	case <-l.done:
		return errors.New("wal: closed")
	}
}

// SyncCritical makes every consensus-critical record appended so far
// (criticalKind: Paxos promises, accepts, commits, the boot marker)
// durable before returning. Unlike Sync it returns immediately — two
// atomic loads, no flusher round-trip — while no unsynced critical
// record exists, so the worker loop calls it before shipping every
// iteration's acks: pure relaxed-write traffic never pays an fsync
// (those acks ride the group-commit deadline by design), while an
// iteration that granted promises or accepts pays exactly one batched
// fsync covering all of them.
func (l *Log) SyncCritical() error {
	if l.syncedSeq.Load() >= l.critSeq.Load() {
		return nil
	}
	return l.Sync()
}

// Err reports the first unrecoverable I/O error the flusher hit (failed
// write, fsync, or rotation), or nil. Once non-nil the log has stopped
// advancing its durability watermark: the owner must treat appended-
// but-unsynced records as lost and stop acknowledging work.
func (l *Log) Err() error {
	if p := l.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// SnapshotDue reports whether enough records have been appended since
// the last snapshot to warrant a new one.
func (l *Log) SnapshotDue() bool {
	if l.opt.SnapshotEvery < 0 || l.closed.Load() {
		return false
	}
	return l.sinceSnap.Load() >= uint64(l.opt.SnapshotEvery)
}

// Snapshot writes a point-in-time store snapshot and truncates the
// segments it makes obsolete. The caller drives the iteration: iter
// must call emit once per record to persist. emit only buffers in
// memory — it is safe to call while holding kvs bucket locks; all file
// I/O happens in Snapshot itself, after iter returns.
//
// Sequence: rotate the active segment (the new segment's index K
// becomes the snapshot boundary), buffer the snapshot, write it to a
// temp file, fsync, rename to snap-K, then truncate what snap-K makes
// obsolete — but only down to the PREVIOUS snapshot's boundary J, not
// to K: snap-J and segments [J,K) survive until the next snapshot
// succeeds, so if snap-K ever proves unreadable, Open's fallback to
// snap-J still has every segment at or after J and replays a complete
// suffix, never a holed one. Appends racing the iteration land in
// segment K and replay over the snapshot on the next boot; that
// overlap is harmless because replay application is idempotent.
func (l *Log) Snapshot(iter func(emit func(*Record))) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if l.closed.Load() {
		return errors.New("wal: closed")
	}

	// Retention floor: the newest snapshot that exists before this one.
	prevSnaps, err := listIndexed(l.opt.Dir, "snap-", ".snap")
	if err != nil {
		return err
	}
	floor := uint64(0)
	if len(prevSnaps) > 0 {
		floor = prevSnaps[len(prevSnaps)-1]
	}

	reply := make(chan rotateReply, 1)
	select {
	case l.rotateCh <- reply:
	case <-l.done:
		return errors.New("wal: closed")
	}
	rot := <-reply
	if rot.err != nil {
		return rot.err
	}
	boundary := rot.index

	// Reset the cadence counter now: records appended during the
	// iteration are covered by the segments the snapshot keeps.
	l.sinceSnap.Store(0)

	var buf []byte
	iter(func(r *Record) {
		r.Inc = l.inc
		buf = r.appendFrame(buf)
	})

	tmp := filepath.Join(l.opt.Dir, "snap.tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	final := filepath.Join(l.opt.Dir, snapName(boundary))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(l.opt.Dir)

	// Truncate below the retention floor only: the previous snapshot
	// and the segments it needs stay as the fallback until the snapshot
	// written above is itself superseded.
	if segs, err := listIndexed(l.opt.Dir, "seg-", ".wal"); err == nil {
		for _, idx := range segs {
			if idx < floor {
				os.Remove(filepath.Join(l.opt.Dir, segName(idx)))
			}
		}
	}
	for _, idx := range prevSnaps {
		if idx < floor {
			os.Remove(filepath.Join(l.opt.Dir, snapName(idx)))
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the log. Further appends are
// dropped.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		<-l.done
		return nil
	}
	close(l.closeCh)
	<-l.done
	return nil
}

// Crash closes the log the way SIGKILL would: buffered records are
// written to the file — a killed process's page cache survives, so
// in-flight write(2)s are not the lossy part — but nothing is fsynced.
// Data not yet flushed by the kernel models the power-loss window.
func (l *Log) Crash() {
	l.crashed.Store(true)
	if l.closed.Swap(true) {
		<-l.done
		return
	}
	close(l.closeCh)
	<-l.done
}

// flusher owns the active segment file exclusively. It drains the
// group-commit buffer and fsyncs on the deadline timer — one write and
// one fsync per FsyncInterval, bounding the durability window to the
// interval — drains early when Append signals a large buffer, rotates
// segments on size or on demand, and answers synchronous Sync requests.
func (l *Log) flusher(seg *os.File, segIndex uint64) {
	defer close(l.done)

	var (
		segBytes  int64
		dirty     bool // bytes written since the last fsync
		writeErr  error
		flushedTo uint64
	)
	// fail records the first unrecoverable I/O error, both locally
	// (writeErr makes every later Sync report it) and in failErr so
	// owners that never Sync — group-commit mode with no critical
	// traffic — still observe the failure via Err.
	fail := func(err error) {
		if err == nil || writeErr != nil {
			return
		}
		writeErr = err
		l.failErr.Store(&err)
	}
	interval := l.opt.FsyncInterval
	syncMode := interval < 0
	if syncMode {
		// The timer still ticks as a backstop so an owner that stops
		// calling Sync (e.g. mid-shutdown) does not hold dirty pages
		// forever, but at a coarse cadence.
		interval = 50 * time.Millisecond
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()

	// spare recycles the drained batch buffer back under l.buf so the
	// steady state allocates nothing; oversized one-off batches are
	// dropped rather than pinned.
	var spare []byte
	swapBuf := func() []byte {
		l.mu.Lock()
		b := l.buf
		l.buf = spare
		spare = nil
		l.mu.Unlock()
		return b
	}

	writePending := func() {
		// Load the sequence before swapping the buffer: a record counted
		// here has already placed its bytes in the buffer (Append orders
		// the two that way), so flushedTo never overcounts. Records that
		// land between the load and the swap are written but undercounted
		// — Sync then just fsyncs once more than strictly needed.
		seq := l.appendSeq.Load()
		b := swapBuf()
		if len(b) == 0 {
			return
		}
		if _, err := seg.Write(b); err != nil {
			fail(err)
		}
		segBytes += int64(len(b))
		dirty = true
		flushedTo = seq
		if cap(b) <= 4*flushChunk {
			spare = b[:0]
		}
	}

	// fsync advances the durability watermark only while the log is
	// error-free: after a failed write or fsync the watermark freezes,
	// so SyncCritical's fast path can never vouch for a record the disk
	// may have dropped, and every Sync keeps reporting the failure.
	fsync := func() error {
		if dirty {
			if err := seg.Sync(); err != nil {
				fail(err)
			} else {
				dirty = false
			}
		}
		if writeErr == nil {
			l.syncedSeq.Store(flushedTo)
		}
		return writeErr
	}

	rotate := func() error {
		if err := fsync(); err != nil {
			return err
		}
		if err := seg.Close(); err != nil {
			fail(err)
			return err
		}
		segIndex++
		f, err := os.OpenFile(filepath.Join(l.opt.Dir, segName(segIndex)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
			return err
		}
		syncDir(l.opt.Dir)
		seg = f
		segBytes = 0
		return nil
	}

	for {
		select {
		case <-l.kick:
			writePending()
			if segBytes >= l.opt.SegmentBytes {
				// Failures are recorded by fail() inside rotate.
				_ = rotate()
			}
		case reply := <-l.syncCh:
			writePending()
			reply <- fsync()
		case reply := <-l.rotateCh:
			writePending()
			err := rotate()
			reply <- rotateReply{index: segIndex, err: err}
		case <-timer.C:
			writePending()
			if !syncMode {
				// A failed deadline fsync is recorded by fail() inside:
				// the watermark freezes and the owner sees it via Err.
				_ = fsync()
			}
			timer.Reset(interval)
		case <-l.closeCh:
			writePending()
			if !l.crashed.Load() {
				fsync()
			}
			seg.Close()
			return
		}
	}
}

// truncateSync truncates path to size and fsyncs the result — the boot
// repair for a torn final-segment tail, run before the next segment is
// created so a torn frame can never end up followed by a successor
// segment.
func truncateSync(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so entry creations/renames are durable.
// Errors are ignored: not all filesystems support directory fsync, and
// the records themselves are CRC-guarded either way.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
