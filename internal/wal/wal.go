// Package wal is the per-node write-ahead log: a segmented append-only
// log of the store's durable transitions (value installs, Paxos
// promises/accepts/commits, catch-up imports, membership config
// commits) plus periodic store snapshots that bound replay length and
// let old segments be truncated.
//
// Durability rides a deadline, not a per-op syscall. Append only
// encodes into an in-memory buffer — it is cheap enough to call from
// inside a kvs bucket critical section, which is exactly where the
// store's mutation hook fires (so log order equals per-key mutation
// order by construction) — and wakes the flusher only when the buffer
// grows large. Otherwise the flusher runs on the group-commit deadline:
// every FsyncInterval it writes the accumulated batch and fsyncs it,
// one write(2) and one fdatasync-equivalent per interval no matter the
// append rate. The durability window is therefore at most one
// FsyncInterval of acknowledged operations, for process kills and
// power losses alike. Operations that must lead durability can run the
// log in synchronous mode (FsyncInterval < 0), where the worker loop
// calls Sync before shipping each iteration's acks.
//
// On Open the log replays the newest intact snapshot and every segment
// at or after its boundary through the caller's apply function, then
// starts a fresh segment (old segment tails may be torn; they are never
// appended to again). Replay application is the caller's business, but
// the contract the caller must honor is that every application is
// guarded or idempotent — records that duplicate snapshot content, or
// that replay after a later record already superseded them, must be
// harmless. The store's LWW installs and the Paxos replay guards both
// have this shape.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultFsyncInterval is the group-commit deadline when
	// Options.FsyncInterval is zero: the upper bound on acknowledged
	// work a power loss can take back.
	DefaultFsyncInterval = 10 * time.Millisecond

	// DefaultSegmentBytes rotates segments at 4 MiB — small enough
	// that snapshot truncation reclaims space promptly, large enough
	// that rotation is rare on the hot path.
	DefaultSegmentBytes = 4 << 20

	// DefaultSnapshotEvery is the append count between snapshots when
	// Options.SnapshotEvery is zero.
	DefaultSnapshotEvery = 1 << 16

	// flushChunk is the buffered-bytes threshold past which Append wakes
	// the flusher ahead of the deadline. Below it, batches ride the
	// FsyncInterval timer — the whole point of group commit is that the
	// hot path costs a memcpy, not a wakeup.
	flushChunk = 256 << 10
)

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if absent. One directory per
	// node — segments and snapshots from different nodes must never
	// mix.
	Dir string

	// FsyncInterval is the group-commit deadline. Zero means
	// DefaultFsyncInterval. Negative means synchronous mode: the
	// flusher never fsyncs on its own and the owner is expected to
	// call Sync at its own commit points (the core worker loop does
	// this once per iteration, before shipping acks).
	FsyncInterval time.Duration

	// SegmentBytes rotates the active segment when it grows past this
	// size. Zero means DefaultSegmentBytes.
	SegmentBytes int64

	// SnapshotEvery is the number of appended records after which
	// SnapshotDue reports true. Zero means DefaultSnapshotEvery;
	// negative disables snapshot scheduling (segments then grow
	// without bound — testing only).
	SnapshotEvery int

	// Incarnation is the boot incarnation the owner wants. Open raises
	// it above any incarnation found in the log so op-id namespaces
	// are never reused across restarts, even if the operator passes a
	// stale value.
	Incarnation uint32
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	return o
}

// OpenResult reports what Open found on disk.
type OpenResult struct {
	// Incarnation is the effective boot incarnation: the requested one
	// raised above every incarnation recorded in the log.
	Incarnation uint32
	// Records is the number of log records replayed (snapshot entries
	// excluded).
	Records int
	// SnapEntries is the number of snapshot entries replayed.
	SnapEntries int
	// Restored is true when the log held any prior state at all — the
	// node is a restart, not a first boot.
	Restored bool
}

// Log is an open write-ahead log. Append/Sync/SnapshotDue are safe for
// concurrent use; Snapshot serializes internally; Close and Crash are
// idempotent.
type Log struct {
	opt Options
	inc uint32

	mu  sync.Mutex // guards buf
	buf []byte

	appendSeq atomic.Uint64 // records appended
	syncedSeq atomic.Uint64 // records durable (fsynced)
	sinceSnap atomic.Uint64 // records appended since the last snapshot

	kick     chan struct{}
	syncCh   chan chan error
	rotateCh chan chan rotateReply
	closeCh  chan struct{}
	done     chan struct{}

	closed  atomic.Bool
	crashed atomic.Bool

	snapMu sync.Mutex // serializes Snapshot
}

type rotateReply struct {
	index uint64
	err   error
}

func segName(index uint64) string  { return fmt.Sprintf("seg-%08d.wal", index) }
func snapName(index uint64) string { return fmt.Sprintf("snap-%08d.snap", index) }

func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// listIndexed returns the sorted indices of files matching
// prefix%08dsuffix in dir.
func listIndexed(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseIndexed(e.Name(), prefix, suffix); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open replays the log at opt.Dir through apply (newest intact
// snapshot first, then every segment at or after its boundary, in
// order, stopping each file at its first torn frame), appends a boot
// record under the effective incarnation, and starts the flusher.
func Open(opt Options, apply func(*Record)) (*Log, OpenResult, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, OpenResult{}, err
	}

	var res OpenResult
	maxInc := uint32(0)
	observe := func(r *Record) {
		if r.Inc > maxInc {
			maxInc = r.Inc
		}
		if apply != nil {
			apply(r)
		}
	}

	snaps, err := listIndexed(opt.Dir, "snap-", ".snap")
	if err != nil {
		return nil, OpenResult{}, err
	}
	segs, err := listIndexed(opt.Dir, "seg-", ".wal")
	if err != nil {
		return nil, OpenResult{}, err
	}

	// A snapshot named snap-K covers everything before segment K. Use
	// the newest one that reads back intact; an empty or unreadable
	// snapshot (e.g. a crash between rename and the first page hitting
	// disk on a non-atomic filesystem) falls back to the previous one,
	// whose covered segments are only deleted after the next snapshot
	// succeeds.
	replayFrom := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(opt.Dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		n := scanFrames(data, func(r *Record) {
			if r.Kind == KindSnapEntry || r.Kind == KindConfig {
				observe(r)
			}
		})
		if n > 0 {
			res.SnapEntries = n
			replayFrom = snaps[i]
			break
		}
	}

	for _, idx := range segs {
		if idx < replayFrom {
			continue
		}
		data, err := os.ReadFile(filepath.Join(opt.Dir, segName(idx)))
		if err != nil {
			return nil, OpenResult{}, err
		}
		res.Records += scanFrames(data, observe)
	}

	res.Restored = res.Records > 0 || res.SnapEntries > 0
	res.Incarnation = opt.Incarnation
	if maxInc >= res.Incarnation {
		res.Incarnation = maxInc + 1
	}

	// Never append to an old segment: its tail may be torn, and
	// repairing in place risks the durable prefix. Start fresh.
	nextSeg := uint64(0)
	if len(segs) > 0 {
		nextSeg = segs[len(segs)-1] + 1
	}
	if replayFrom > nextSeg {
		nextSeg = replayFrom
	}

	l := &Log{
		opt:      opt,
		inc:      res.Incarnation,
		kick:     make(chan struct{}, 1),
		syncCh:   make(chan chan error),
		rotateCh: make(chan chan rotateReply),
		closeCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}

	f, err := os.OpenFile(filepath.Join(opt.Dir, segName(nextSeg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, OpenResult{}, err
	}
	syncDir(opt.Dir)

	go l.flusher(f, nextSeg)

	// The boot record makes the effective incarnation durable even on
	// an idle node, so the next restart allocates above it.
	l.Append(Record{Kind: KindBoot})
	return l, res, nil
}

// Incarnation returns the effective boot incarnation.
func (l *Log) Incarnation() uint32 { return l.inc }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Append encodes r into the group-commit buffer. It never blocks on I/O
// — it is called from inside kvs bucket critical sections — and its
// lock nests strictly inside bucket locks (the flusher takes l.mu only
// around a buffer swap). The flusher is woken only when the buffer has
// grown past flushChunk; smaller batches ride the deadline timer. The
// record's incarnation field is stamped here.
func (l *Log) Append(r Record) {
	if l.closed.Load() {
		return
	}
	r.Inc = l.inc
	l.mu.Lock()
	l.buf = r.appendFrame(l.buf)
	big := len(l.buf) >= flushChunk
	l.mu.Unlock()
	l.appendSeq.Add(1)
	l.sinceSnap.Add(1)
	if big {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// Sync makes every record appended so far durable (flushed and
// fsynced) before returning. When nothing new was appended since the
// last fsync it returns immediately without a syscall, so calling it
// once per worker-loop iteration is cheap on idle workers.
func (l *Log) Sync() error {
	if l.syncedSeq.Load() >= l.appendSeq.Load() {
		return nil
	}
	if l.closed.Load() {
		return errors.New("wal: closed")
	}
	reply := make(chan error, 1)
	select {
	case l.syncCh <- reply:
		return <-reply
	case <-l.done:
		return errors.New("wal: closed")
	}
}

// SnapshotDue reports whether enough records have been appended since
// the last snapshot to warrant a new one.
func (l *Log) SnapshotDue() bool {
	if l.opt.SnapshotEvery < 0 || l.closed.Load() {
		return false
	}
	return l.sinceSnap.Load() >= uint64(l.opt.SnapshotEvery)
}

// Snapshot writes a point-in-time store snapshot and truncates the
// segments it makes obsolete. The caller drives the iteration: iter
// must call emit once per record to persist. emit only buffers in
// memory — it is safe to call while holding kvs bucket locks; all file
// I/O happens in Snapshot itself, after iter returns.
//
// Sequence: rotate the active segment (the new segment's index K
// becomes the snapshot boundary), buffer the snapshot, write it to a
// temp file, fsync, rename to snap-K, then delete segments below K and
// older snapshots. Appends racing the iteration land in segment K and
// replay over the snapshot on the next boot; that overlap is harmless
// because replay application is idempotent.
func (l *Log) Snapshot(iter func(emit func(*Record))) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if l.closed.Load() {
		return errors.New("wal: closed")
	}

	reply := make(chan rotateReply, 1)
	select {
	case l.rotateCh <- reply:
	case <-l.done:
		return errors.New("wal: closed")
	}
	rot := <-reply
	if rot.err != nil {
		return rot.err
	}
	boundary := rot.index

	// Reset the cadence counter now: records appended during the
	// iteration are covered by the segments the snapshot keeps.
	l.sinceSnap.Store(0)

	var buf []byte
	iter(func(r *Record) {
		r.Inc = l.inc
		buf = r.appendFrame(buf)
	})

	tmp := filepath.Join(l.opt.Dir, "snap.tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	final := filepath.Join(l.opt.Dir, snapName(boundary))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(l.opt.Dir)

	// Truncate: segments below the boundary are fully covered by the
	// snapshot; older snapshots are superseded.
	if segs, err := listIndexed(l.opt.Dir, "seg-", ".wal"); err == nil {
		for _, idx := range segs {
			if idx < boundary {
				os.Remove(filepath.Join(l.opt.Dir, segName(idx)))
			}
		}
	}
	if snaps, err := listIndexed(l.opt.Dir, "snap-", ".snap"); err == nil {
		for _, idx := range snaps {
			if idx < boundary {
				os.Remove(filepath.Join(l.opt.Dir, snapName(idx)))
			}
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the log. Further appends are
// dropped.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		<-l.done
		return nil
	}
	close(l.closeCh)
	<-l.done
	return nil
}

// Crash closes the log the way SIGKILL would: buffered records are
// written to the file — a killed process's page cache survives, so
// in-flight write(2)s are not the lossy part — but nothing is fsynced.
// Data not yet flushed by the kernel models the power-loss window.
func (l *Log) Crash() {
	l.crashed.Store(true)
	if l.closed.Swap(true) {
		<-l.done
		return
	}
	close(l.closeCh)
	<-l.done
}

// flusher owns the active segment file exclusively. It drains the
// group-commit buffer and fsyncs on the deadline timer — one write and
// one fsync per FsyncInterval, bounding the durability window to the
// interval — drains early when Append signals a large buffer, rotates
// segments on size or on demand, and answers synchronous Sync requests.
func (l *Log) flusher(seg *os.File, segIndex uint64) {
	defer close(l.done)

	var (
		segBytes  int64
		dirty     bool // bytes written since the last fsync
		writeErr  error
		flushedTo uint64
	)
	interval := l.opt.FsyncInterval
	syncMode := interval < 0
	if syncMode {
		// The timer still ticks as a backstop so an owner that stops
		// calling Sync (e.g. mid-shutdown) does not hold dirty pages
		// forever, but at a coarse cadence.
		interval = 50 * time.Millisecond
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()

	// spare recycles the drained batch buffer back under l.buf so the
	// steady state allocates nothing; oversized one-off batches are
	// dropped rather than pinned.
	var spare []byte
	swapBuf := func() []byte {
		l.mu.Lock()
		b := l.buf
		l.buf = spare
		spare = nil
		l.mu.Unlock()
		return b
	}

	writePending := func() {
		// Load the sequence before swapping the buffer: a record counted
		// here has already placed its bytes in the buffer (Append orders
		// the two that way), so flushedTo never overcounts. Records that
		// land between the load and the swap are written but undercounted
		// — Sync then just fsyncs once more than strictly needed.
		seq := l.appendSeq.Load()
		b := swapBuf()
		if len(b) == 0 {
			return
		}
		if _, err := seg.Write(b); err != nil && writeErr == nil {
			writeErr = err
		}
		segBytes += int64(len(b))
		dirty = true
		flushedTo = seq
		if cap(b) <= 4*flushChunk {
			spare = b[:0]
		}
	}

	fsync := func() error {
		if !dirty {
			l.syncedSeq.Store(flushedTo)
			return writeErr
		}
		err := seg.Sync()
		if err == nil {
			dirty = false
			l.syncedSeq.Store(flushedTo)
		}
		if writeErr != nil {
			return writeErr
		}
		return err
	}

	rotate := func() error {
		if err := fsync(); err != nil {
			return err
		}
		if err := seg.Close(); err != nil {
			return err
		}
		segIndex++
		f, err := os.OpenFile(filepath.Join(l.opt.Dir, segName(segIndex)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		syncDir(l.opt.Dir)
		seg = f
		segBytes = 0
		return nil
	}

	for {
		select {
		case <-l.kick:
			writePending()
			if segBytes >= l.opt.SegmentBytes {
				if err := rotate(); err != nil && writeErr == nil {
					writeErr = err
				}
			}
		case reply := <-l.syncCh:
			writePending()
			reply <- fsync()
		case reply := <-l.rotateCh:
			writePending()
			err := rotate()
			reply <- rotateReply{index: segIndex, err: err}
		case <-timer.C:
			writePending()
			if !syncMode {
				fsync()
			}
			timer.Reset(interval)
		case <-l.closeCh:
			writePending()
			if !l.crashed.Load() {
				fsync()
			}
			seg.Close()
			return
		}
	}
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so entry creations/renames are durable.
// Errors are ignored: not all filesystems support directory fsync, and
// the records themselves are CRC-guarded either way.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
