// Record codec for the write-ahead log.
//
// Every record is framed as
//
//	[u32 length][u32 crc32c][payload]
//
// with both header words little-endian and the CRC (Castagnoli) taken
// over the payload alone. The frame is the unit of durability: a reader
// stops at the first frame whose header is short, whose length is
// implausible, or whose CRC does not match — everything before that
// point is the durable prefix, everything after is a torn tail. A
// partially written record can therefore never be served: it fails the
// CRC and truncates the replay instead.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind tags what a record means to replay. The set mirrors the store's
// durable transitions: value installs (ES/ABD writes and commit values
// are all EvWrite-shaped at the kvs layer), the three Paxos persistence
// points (promise, accept, commit), catch-up imports, membership config
// commits, boot markers, and snapshot entries.
type Kind uint8

const (
	// KindWrite is a value install: key, value, and the LLC stamp it
	// was installed under. Replay is last-writer-wins, so duplicates
	// and stale records are harmless.
	KindWrite Kind = 1 + iota
	// KindPromise is a Paxos promise this node granted: key, slot, and
	// the promised ballot in Stamp. Must be durable before the ack
	// leaves, or a restarted acceptor could accept a lower ballot it
	// promised away.
	KindPromise
	// KindAccept is a Paxos accept: key, slot, ballot in Stamp, the
	// accepted value and its origin op-id. This is the record that
	// closes the accepted-but-uncommitted double-failure window.
	KindAccept
	// KindCommit is a Paxos commit application: key, slot, ballot,
	// value, origin, plus the recent-origin ring in Origins.
	KindCommit
	// KindImport is a catch-up import of committed consensus state:
	// key, slot, last origin, recent-origin ring.
	KindImport
	// KindConfig is a membership configuration install; Value holds
	// membership.Config.Encode() and Epoch the installed epoch.
	KindConfig
	// KindBoot marks a boot with the incarnation the node came up
	// under. It makes incarnations durable even on an idle node, so a
	// restart can never reuse an op-id namespace.
	KindBoot
	// KindSnapEntry is one key inside a store snapshot: the value and
	// stamp plus the full per-key consensus state (promised, accepted
	// ballot/value/origin, ballot-allocation watermark).
	KindSnapEntry
)

// criticalKind reports whether records of this kind must be durable
// before the acknowledgment they justify leaves the node, in every
// fsync mode (Log.SyncCritical). These are the records whose loss
// breaks safety rather than durability: promises and accepts feed
// peers' quorum arithmetic and no peer can reconstruct them for a
// restarted acceptor; an acked commit is what lets a completed RMW
// claim residence in a quorum's stores; the boot record pins the
// incarnation whose op-ids are about to go on the wire. Everything
// else (value installs, imports, config installs) is either the
// documented group-commit window or reconstructible from peers, and
// rides the deadline.
func criticalKind(k Kind) bool {
	switch k {
	case KindPromise, KindAccept, KindCommit, KindBoot:
		return true
	}
	return false
}

// Record is one durable event. Which fields are meaningful depends on
// Kind; unused fields encode as zero.
type Record struct {
	Kind  Kind
	Epoch uint32 // group configuration epoch at append time
	Inc   uint32 // boot incarnation of the appending node

	Key    uint64
	Slot   uint64
	Origin uint64
	Stamp  uint64 // packed llc.Stamp: value stamp, or the ballot for promise/accept

	// Snapshot-only consensus state (KindSnapEntry). AccVal is the
	// accepted-but-uncommitted value, carried separately from Value
	// (the committed entry value) because a key can have both.
	Promised   uint64
	AccBallot  uint64
	LastBallot uint64
	AccOrigin  uint64
	AccVal     []byte

	Value   []byte
	Origins []uint64
}

const (
	frameHeader = 8 // u32 length + u32 crc32c

	// maxPayload bounds a frame length before the CRC is even checked:
	// a corrupted length word must not make the reader allocate or
	// skip gigabytes. Generous vs. the real maximum (fixed fields +
	// 64KiB value cap + origin ring).
	maxPayload = 1 << 20

	maxValueLen   = 1 << 16
	maxOriginsLen = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendPayload encodes r's payload (no frame header) onto b.
func (r *Record) appendPayload(b []byte) []byte {
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint32(b, r.Epoch)
	b = binary.LittleEndian.AppendUint32(b, r.Inc)
	b = binary.LittleEndian.AppendUint64(b, r.Key)
	b = binary.LittleEndian.AppendUint64(b, r.Slot)
	b = binary.LittleEndian.AppendUint64(b, r.Origin)
	b = binary.LittleEndian.AppendUint64(b, r.Stamp)
	if r.Kind == KindSnapEntry {
		b = binary.LittleEndian.AppendUint64(b, r.Promised)
		b = binary.LittleEndian.AppendUint64(b, r.AccBallot)
		b = binary.LittleEndian.AppendUint64(b, r.LastBallot)
		b = binary.LittleEndian.AppendUint64(b, r.AccOrigin)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.AccVal)))
		b = append(b, r.AccVal...)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Value)))
	b = append(b, r.Value...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Origins)))
	for _, o := range r.Origins {
		b = binary.LittleEndian.AppendUint64(b, o)
	}
	return b
}

// appendFrame encodes r as a complete CRC-checked frame onto b.
func (r *Record) appendFrame(b []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = r.appendPayload(b)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// decodePayload parses a CRC-verified payload into a Record. Errors
// mean the payload is structurally invalid (possible only via a CRC
// collision or an encoder bug) and truncate replay like a torn frame.
func decodePayload(p []byte) (Record, error) {
	var r Record
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("wal: short payload: need %d, have %d", n, len(p))
		}
		return nil
	}
	if err := need(1 + 4 + 4 + 8*4); err != nil {
		return r, err
	}
	r.Kind = Kind(p[0])
	if r.Kind < KindWrite || r.Kind > KindSnapEntry {
		return r, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	r.Epoch = binary.LittleEndian.Uint32(p[1:])
	r.Inc = binary.LittleEndian.Uint32(p[5:])
	r.Key = binary.LittleEndian.Uint64(p[9:])
	r.Slot = binary.LittleEndian.Uint64(p[17:])
	r.Origin = binary.LittleEndian.Uint64(p[25:])
	r.Stamp = binary.LittleEndian.Uint64(p[33:])
	p = p[41:]
	if r.Kind == KindSnapEntry {
		if err := need(32); err != nil {
			return r, err
		}
		r.Promised = binary.LittleEndian.Uint64(p[0:])
		r.AccBallot = binary.LittleEndian.Uint64(p[8:])
		r.LastBallot = binary.LittleEndian.Uint64(p[16:])
		r.AccOrigin = binary.LittleEndian.Uint64(p[24:])
		p = p[32:]
		if len(p) < 2 {
			return r, fmt.Errorf("wal: truncated accepted-value length")
		}
		avlen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if avlen > maxValueLen || len(p) < avlen {
			return r, fmt.Errorf("wal: bad accepted-value length %d", avlen)
		}
		if avlen > 0 {
			r.AccVal = append([]byte(nil), p[:avlen]...)
		}
		p = p[avlen:]
	}
	if len(p) < 2 {
		return r, fmt.Errorf("wal: truncated value length")
	}
	vlen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if vlen > maxValueLen || len(p) < vlen {
		return r, fmt.Errorf("wal: bad value length %d", vlen)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), p[:vlen]...)
	}
	p = p[vlen:]
	if len(p) < 2 {
		return r, fmt.Errorf("wal: truncated origins length")
	}
	olen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if olen > maxOriginsLen || len(p) < olen*8 {
		return r, fmt.Errorf("wal: bad origins length %d", olen)
	}
	if olen > 0 {
		r.Origins = make([]uint64, olen)
		for i := range r.Origins {
			r.Origins[i] = binary.LittleEndian.Uint64(p[i*8:])
		}
	}
	if len(p) != olen*8 {
		return r, fmt.Errorf("wal: %d trailing bytes in payload", len(p)-olen*8)
	}
	return r, nil
}

// scanFrames walks CRC-framed records in data, calling fn (if non-nil)
// for each valid record in order. It stops silently at the first torn
// or corrupt frame — the valid prefix is the durable content by
// definition — and returns the number of records scanned plus the byte
// offset of that prefix's end. consumed == len(data) means the input
// scanned clean; anything less marks a torn tail the caller must decide
// about (expected in the active segment, corruption anywhere else).
func scanFrames(data []byte, fn func(*Record)) (n, consumed int) {
	total := len(data)
	for len(data) >= frameHeader {
		length := binary.LittleEndian.Uint32(data)
		crc := binary.LittleEndian.Uint32(data[4:])
		if length == 0 || length > maxPayload || uint64(len(data)-frameHeader) < uint64(length) {
			break
		}
		payload := data[frameHeader : frameHeader+length]
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break
		}
		if fn != nil {
			fn(&rec)
		}
		n++
		data = data[frameHeader+length:]
	}
	return n, total - len(data)
}
