package proto

import (
	"bytes"
	"testing"
)

func TestClientRequestRoundTrip(t *testing.T) {
	in := ClientRequest{
		Op: ClientOpCASStrong, Sess: 0xdeadbeef, Seq: 42, Acked: 40,
		Key: 0x1122334455667788, Delta: 7,
		Expected: []byte("old-value"), Value: []byte("new-value"),
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out ClientRequest
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Sess != in.Sess || out.Seq != in.Seq ||
		out.Acked != in.Acked || out.Key != in.Key || out.Delta != in.Delta {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Expected, in.Expected) || !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("payload mismatch: %q/%q", out.Expected, out.Value)
	}
}

func TestClientRequestEmptyPayloads(t *testing.T) {
	in := ClientRequest{Op: ClientOpRead, Sess: 1, Seq: 1, Key: 9}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != clientReqHeaderLen {
		t.Fatalf("empty request is %d bytes, want %d", len(buf), clientReqHeaderLen)
	}
	var out ClientRequest
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Expected != nil || out.Value != nil {
		t.Fatalf("expected nil payloads, got %q/%q", out.Expected, out.Value)
	}
}

func TestClientRequestErrors(t *testing.T) {
	big := make([]byte, MaxValueLen+1)
	if _, err := (&ClientRequest{Op: ClientOpWrite, Value: big}).AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("oversize value: %v", err)
	}
	var r ClientRequest
	if err := r.Unmarshal(make([]byte, clientReqHeaderLen-1)); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
	// Truncated payload: header promises a value the buffer lacks.
	buf, _ := (&ClientRequest{Op: ClientOpWrite, Value: []byte("xyz")}).AppendMarshal(nil)
	if err := r.Unmarshal(buf[:len(buf)-1]); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	// Bad op code.
	buf2, _ := (&ClientRequest{Op: 0x7f}).AppendMarshal(nil)
	if err := r.Unmarshal(buf2); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestClientReplyRoundTrip(t *testing.T) {
	in := ClientReply{
		Status: ClientOK, Flags: ClientFlagSwapped,
		Sess: 77, Seq: 123456789, Value: []byte("previous"),
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out ClientReply
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Status != in.Status || out.Flags != in.Flags || out.Sess != in.Sess || out.Seq != in.Seq {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("value mismatch: %q", out.Value)
	}
}

func TestClientReplyErrors(t *testing.T) {
	big := make([]byte, MaxValueLen+1)
	if _, err := (&ClientReply{Value: big}).AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("oversize value: %v", err)
	}
	var p ClientReply
	if err := p.Unmarshal([]byte{1, 2}); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestClientBatchRoundTrip(t *testing.T) {
	in := ClientBatch{
		Flags: 1, Sess: 99, Seq: 1000, Acked: 990,
		Ops: []BatchOp{
			{Code: ClientOpWrite, Key: 1, Value: []byte("a")},
			{Code: ClientOpFAA, Key: 2, Delta: 5},
			{Code: ClientOpCASWeak, Key: 3, Expected: []byte("old"), Value: []byte("new")},
			{Code: ClientOpRead, Key: 4},
		},
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The defining property of the batch frame: several ops, ONE datagram.
	if len(in.Ops) < 2 {
		t.Fatal("test must batch at least 2 ops")
	}
	var out ClientBatch
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Flags != in.Flags || out.Sess != in.Sess || out.Seq != in.Seq || out.Acked != in.Acked {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Ops) != len(in.Ops) {
		t.Fatalf("op count %d, want %d", len(out.Ops), len(in.Ops))
	}
	for i := range in.Ops {
		a, b := out.Ops[i], in.Ops[i]
		if a.Code != b.Code || a.Key != b.Key || a.Delta != b.Delta ||
			!bytes.Equal(a.Expected, b.Expected) || !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestClientBatchErrors(t *testing.T) {
	var b ClientBatch
	// Empty and oversized batches are rejected at marshal time.
	if _, err := (&ClientBatch{}).AppendMarshal(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	tooMany := ClientBatch{Ops: make([]BatchOp, MaxBatchOps+1)}
	if _, err := tooMany.AppendMarshal(nil); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Control ops cannot ride in a batch.
	ctrl := ClientBatch{Ops: []BatchOp{{Code: ClientOpOpen}}}
	if _, err := ctrl.AppendMarshal(nil); err == nil {
		t.Fatal("control op batched")
	}
	// Oversized payload.
	big := ClientBatch{Ops: []BatchOp{{Code: ClientOpWrite, Value: make([]byte, MaxValueLen+1)}}}
	if _, err := big.AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("oversize value: %v", err)
	}
	// Truncated frames.
	if err := b.Unmarshal(make([]byte, clientBatchHeaderLen-1)); err != ErrShortBuffer {
		t.Fatalf("short header: %v", err)
	}
	buf, _ := (&ClientBatch{Ops: []BatchOp{{Code: ClientOpWrite, Value: []byte("xyz")}}}).AppendMarshal(nil)
	if err := b.Unmarshal(buf[:len(buf)-1]); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	// A non-batch frame is rejected.
	req, _ := (&ClientRequest{Op: ClientOpRead, Sess: 1, Seq: 1}).AppendMarshal(nil)
	if err := b.Unmarshal(req); err == nil {
		t.Fatal("non-batch frame accepted")
	}
}

func TestClientBatchWireLen(t *testing.T) {
	in := ClientBatch{
		Sess: 1, Seq: 1,
		Ops: []BatchOp{
			{Code: ClientOpWrite, Key: 1, Value: []byte("abc")},
			{Code: ClientOpCASStrong, Key: 2, Expected: []byte("x"), Value: []byte("yz")},
		},
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := BatchOverhead
	for _, op := range in.Ops {
		want += op.WireLen()
	}
	if len(buf) != want {
		t.Fatalf("frame is %d bytes, WireLen sums to %d", len(buf), want)
	}
}

func TestClientOpNames(t *testing.T) {
	if ClientOpName(ClientOpRelease) != "release" || ClientOpName(ClientOpPing) != "ping" {
		t.Fatal("op names")
	}
	if ClientOpName(0x7f) != "op?" {
		t.Fatal("unknown op name")
	}
	if !ClientDataOp(ClientOpCASStrong) || ClientDataOp(ClientOpOpen) {
		t.Fatal("ClientDataOp classification")
	}
}

func TestNodeInfoRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		groups, group int
		wantG, wantI  int
	}{
		{groups: 0, group: 0, wantG: 1, wantI: 0}, // unsharded
		{groups: 1, group: 0, wantG: 1, wantI: 0}, // 1 group == unsharded
		{groups: 2, group: 1, wantG: 2, wantI: 1},
		{groups: 8, group: 3, wantG: 8, wantI: 3},
	} {
		v := AppendNodeInfo(nil, tc.groups, tc.group, 7, 0b1011)
		g, i := ParseShardInfo(v)
		if g != tc.wantG || i != tc.wantI {
			t.Fatalf("ParseShardInfo(%v) = (%d,%d), want (%d,%d)", v, g, i, tc.wantG, tc.wantI)
		}
		g, i, epoch, members := ParseNodeInfo(v)
		if g != tc.wantG || i != tc.wantI || epoch != 7 || members != 0b1011 {
			t.Fatalf("ParseNodeInfo(%v) = (%d,%d,%d,%b)", v, g, i, epoch, members)
		}
	}
	// Short values (pre-membership servers) degrade to unknown membership.
	if g, i, epoch, members := ParseNodeInfo(nil); g != 1 || i != 0 || epoch != 0 || members != 0 {
		t.Fatalf("ParseNodeInfo(nil) = (%d,%d,%d,%b)", g, i, epoch, members)
	}
	if g, i, epoch, members := ParseNodeInfo([]byte{4, 2}); g != 4 || i != 2 || epoch != 0 || members != 0 {
		t.Fatalf("ParseNodeInfo(short) = (%d,%d,%d,%b)", g, i, epoch, members)
	}
}

func TestFlushIsDataOp(t *testing.T) {
	if !ClientDataOp(ClientOpFlush) {
		t.Fatal("flush must be a data op")
	}
	if ClientDataOp(ClientOpFlush + 1) {
		t.Fatal("op 8 must not be a data op")
	}
	if ClientOpName(ClientOpFlush) != "flush" {
		t.Fatalf("flush name = %q", ClientOpName(ClientOpFlush))
	}
	// A flush travels in batch frames like any data op.
	b := ClientBatch{Sess: 1, Seq: 5, Ops: []BatchOp{{Code: ClientOpFlush}}}
	buf, err := b.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got ClientBatch
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got.Ops[0].Code != ClientOpFlush {
		t.Fatalf("batched flush decoded as %d", got.Ops[0].Code)
	}
}
