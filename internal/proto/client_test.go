package proto

import (
	"bytes"
	"testing"
)

func TestClientRequestRoundTrip(t *testing.T) {
	in := ClientRequest{
		Op: ClientOpCASStrong, Sess: 0xdeadbeef, Seq: 42, Acked: 40,
		Key: 0x1122334455667788, Delta: 7,
		Expected: []byte("old-value"), Value: []byte("new-value"),
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out ClientRequest
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Sess != in.Sess || out.Seq != in.Seq ||
		out.Acked != in.Acked || out.Key != in.Key || out.Delta != in.Delta {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Expected, in.Expected) || !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("payload mismatch: %q/%q", out.Expected, out.Value)
	}
}

func TestClientRequestEmptyPayloads(t *testing.T) {
	in := ClientRequest{Op: ClientOpRead, Sess: 1, Seq: 1, Key: 9}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != clientReqHeaderLen {
		t.Fatalf("empty request is %d bytes, want %d", len(buf), clientReqHeaderLen)
	}
	var out ClientRequest
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Expected != nil || out.Value != nil {
		t.Fatalf("expected nil payloads, got %q/%q", out.Expected, out.Value)
	}
}

func TestClientRequestErrors(t *testing.T) {
	big := make([]byte, MaxValueLen+1)
	if _, err := (&ClientRequest{Op: ClientOpWrite, Value: big}).AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("oversize value: %v", err)
	}
	var r ClientRequest
	if err := r.Unmarshal(make([]byte, clientReqHeaderLen-1)); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
	// Truncated payload: header promises a value the buffer lacks.
	buf, _ := (&ClientRequest{Op: ClientOpWrite, Value: []byte("xyz")}).AppendMarshal(nil)
	if err := r.Unmarshal(buf[:len(buf)-1]); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	// Bad op code.
	buf2, _ := (&ClientRequest{Op: 0x7f}).AppendMarshal(nil)
	if err := r.Unmarshal(buf2); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestClientReplyRoundTrip(t *testing.T) {
	in := ClientReply{
		Status: ClientOK, Flags: ClientFlagSwapped,
		Sess: 77, Seq: 123456789, Value: []byte("previous"),
	}
	buf, err := in.AppendMarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out ClientReply
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out.Status != in.Status || out.Flags != in.Flags || out.Sess != in.Sess || out.Seq != in.Seq {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("value mismatch: %q", out.Value)
	}
}

func TestClientReplyErrors(t *testing.T) {
	big := make([]byte, MaxValueLen+1)
	if _, err := (&ClientReply{Value: big}).AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("oversize value: %v", err)
	}
	var p ClientReply
	if err := p.Unmarshal([]byte{1, 2}); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestClientOpNames(t *testing.T) {
	if ClientOpName(ClientOpRelease) != "release" || ClientOpName(ClientOpPing) != "ping" {
		t.Fatal("op names")
	}
	if ClientOpName(0x7f) != "op?" {
		t.Fatal("unknown op name")
	}
	if !ClientDataOp(ClientOpCASStrong) || ClientDataOp(ClientOpOpen) {
		t.Fatal("ClientDataOp classification")
	}
}
