package proto

import (
	"encoding/binary"
	"fmt"
)

// Client-facing wire frames. External processes talk to a node's session
// server (kite/internal/server) over UDP using these two frames — the same
// lossy, datagram-per-message contract as the replica-to-replica protocol,
// so the client library provides its own retransmissions and the server
// deduplicates by (session id, request id).
//
// Wire format (little endian), one frame per datagram, mirroring the compact
// fixed header + inline value layout of Message:
//
//	request: op(1) flags(1) elen(1) vlen(1) sess(4) seq(8) acked(8) key(8) delta(8)
//	         expected(elen) value(vlen)
//	reply:   status(1) flags(1) vlen(1) pad(1) sess(4) seq(8)
//	         value(vlen)

// Client operation codes. Data ops 0-7 deliberately share core.OpCode's
// numbering (read, write, release, acquire, faa, cas-weak, cas-strong,
// flush) so the server maps them with a cast; codes >= ClientOpOpen are
// control ops handled by the session server itself.
const (
	ClientOpRead uint8 = iota
	ClientOpWrite
	ClientOpRelease
	ClientOpAcquire
	ClientOpFAA
	ClientOpCASWeak
	ClientOpCASStrong
	ClientOpFlush

	// ClientOpOpen leases a node session; the reply's Sess is the new
	// session id. Seq echoes the request for the client's retry matching.
	ClientOpOpen uint8 = 0x10
	// ClientOpClose releases a leased session back to the node's pool.
	ClientOpClose uint8 = 0x11
	// ClientOpPing checks liveness (used by Dial to fail fast when no
	// server is listening). The reply's Value advertises the node's place
	// in the deployment — shard map plus membership epoch (see
	// AppendNodeInfo) — so clients also re-ping to refresh it after a
	// reconfiguration.
	ClientOpPing uint8 = 0x12
	// ClientOpJoin asks the node to add replica Key (a node id) to its
	// group: the server drives the configuration CAS through the node's
	// admin session and replies with the committed config encoded in Value
	// (membership.Config.Encode). Sent by kite-node -join before the
	// joining replica boots.
	ClientOpJoin uint8 = 0x13
	// ClientOpRemove asks the node to remove replica Key (a node id) from
	// its group (kite-cli remove). The reply's Value carries the committed
	// config.
	ClientOpRemove uint8 = 0x14

	// ClientOpBatch marks a batched request frame (ClientBatch): several
	// data ops with consecutive seqs pipelined in one datagram — the remote
	// hot path of DoBatch. Replies remain one frame per op, matched by
	// (sess, seq) exactly like individually sent requests.
	ClientOpBatch uint8 = 0x20
)

var clientOpNames = map[uint8]string{
	ClientOpRead: "read", ClientOpWrite: "write", ClientOpRelease: "release",
	ClientOpAcquire: "acquire", ClientOpFAA: "faa", ClientOpCASWeak: "cas-weak",
	ClientOpCASStrong: "cas-strong", ClientOpFlush: "flush", ClientOpOpen: "open",
	ClientOpClose: "close", ClientOpPing: "ping", ClientOpBatch: "batch",
	ClientOpJoin: "join", ClientOpRemove: "remove",
}

// ClientOpName names a client op code for diagnostics.
func ClientOpName(op uint8) string {
	if n, ok := clientOpNames[op]; ok {
		return n
	}
	return "op?"
}

// ClientDataOp reports whether op is a data operation executed on a leased
// session (as opposed to a control op handled by the server).
func ClientDataOp(op uint8) bool { return op <= ClientOpFlush }

// Reply status codes.
const (
	// ClientOK marks a successful reply.
	ClientOK uint8 = iota
	// ClientErrStopped: the node stopped before the op completed.
	ClientErrStopped
	// ClientErrNoSession: the session id is unknown or its lease expired.
	ClientErrNoSession
	// ClientErrNoCapacity: the node has no free session to lease.
	ClientErrNoCapacity
	// ClientErrBadRequest: the frame was malformed (oversized value, bad op).
	ClientErrBadRequest
	// ClientErrConflict: a join/remove lost a reconfiguration race (or the
	// group is mid-reconfiguration); retry after re-reading the membership.
	ClientErrConflict
	// ClientErrReservedKey: the operation targeted the reserved membership
	// config key.
	ClientErrReservedKey
)

// Client reply flag bits.
const (
	// ClientFlagSwapped on a CAS reply reports that the swap happened.
	ClientFlagSwapped uint8 = 1 << iota
	// ClientFlagControl marks the reply to a control op (ping/open/close).
	// Control replies are matched by Seq alone — an open reply carries the
	// newly leased id in Sess, which the requester cannot key on.
	ClientFlagControl
	// ClientFlagReconfigured on a data reply tells the client the node's
	// group configuration epoch changed since this session last observed
	// it; the client re-pings to refresh its membership view. One-shot per
	// epoch change per session.
	ClientFlagReconfigured
)

// ClientRequest is one operation sent by an external client to a node's
// session server.
type ClientRequest struct {
	Op    uint8
	Flags uint8
	// Sess is the server-assigned session id (0 for control ops).
	Sess uint32
	// Seq is the client-assigned request id, strictly sequential from 1
	// per session: the server submits data ops in Seq order (holding back
	// datagrams the network reordered) and dedupes retransmissions.
	Seq uint64
	// Acked tells the server every reply with Seq < Acked has been
	// received, letting it prune its retransmit cache.
	Acked uint64
	Key   uint64
	// Delta is the FAA addend.
	Delta uint64
	// Expected is the CAS comparand.
	Expected []byte
	// Value is the write/release value or CAS new value.
	Value []byte
}

const clientReqHeaderLen = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 8

// AppendMarshal appends the wire encoding of r to dst.
func (r *ClientRequest) AppendMarshal(dst []byte) ([]byte, error) {
	if len(r.Expected) > MaxValueLen || len(r.Value) > MaxValueLen {
		return dst, ErrValueTooLong
	}
	dst = append(dst, r.Op, r.Flags, byte(len(r.Expected)), byte(len(r.Value)))
	dst = binary.LittleEndian.AppendUint32(dst, r.Sess)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.Acked)
	dst = binary.LittleEndian.AppendUint64(dst, r.Key)
	dst = binary.LittleEndian.AppendUint64(dst, r.Delta)
	dst = append(dst, r.Expected...)
	dst = append(dst, r.Value...)
	return dst, nil
}

// Unmarshal decodes one request from b. Expected and Value alias b.
func (r *ClientRequest) Unmarshal(b []byte) error {
	if len(b) < clientReqHeaderLen {
		return ErrShortBuffer
	}
	elen, vlen := int(b[2]), int(b[3])
	if elen > MaxValueLen || vlen > MaxValueLen {
		return ErrValueTooLong
	}
	if len(b) < clientReqHeaderLen+elen+vlen {
		return ErrShortBuffer
	}
	r.Op = b[0]
	r.Flags = b[1]
	r.Sess = binary.LittleEndian.Uint32(b[4:])
	r.Seq = binary.LittleEndian.Uint64(b[8:])
	r.Acked = binary.LittleEndian.Uint64(b[16:])
	r.Key = binary.LittleEndian.Uint64(b[24:])
	r.Delta = binary.LittleEndian.Uint64(b[32:])
	r.Expected, r.Value = nil, nil
	if elen > 0 {
		r.Expected = b[clientReqHeaderLen : clientReqHeaderLen+elen]
	}
	if vlen > 0 {
		r.Value = b[clientReqHeaderLen+elen : clientReqHeaderLen+elen+vlen]
	}
	switch {
	case ClientDataOp(r.Op), r.Op == ClientOpOpen, r.Op == ClientOpClose,
		r.Op == ClientOpPing, r.Op == ClientOpJoin, r.Op == ClientOpRemove:
	default:
		return fmt.Errorf("proto: bad client op %d", r.Op)
	}
	return nil
}

// Batched client requests. A ClientBatch carries up to MaxBatchOps data
// operations in a single datagram; the op at index i has sequence number
// Seq+i, so the server's in-order submission, dedup and reply cache treat
// the batch exactly as if its ops had arrived as consecutive individual
// frames. One wire frame per batch on the request path is the DoBatch
// round-trip win; replies stay per-op so loss of one reply costs one
// retransmission, not the batch.
//
// Wire format (little endian), one frame per datagram:
//
//	batch:  op(1)=ClientOpBatch flags(1) count(2) sess(4) seq(8) acked(8)
//	        then per op: code(1) elen(1) vlen(1) key(8) delta(8)
//	                     expected(elen) value(vlen)

// MaxBatchOps bounds the operation count of one ClientBatch frame.
const MaxBatchOps = 64

// MaxClientFrameLen is the frame-size budget batched requests are packed
// against — conservative for common datacenter MTUs, comfortably under the
// receive buffers.
const MaxClientFrameLen = 1400

const (
	clientBatchHeaderLen   = 1 + 1 + 2 + 4 + 8 + 8
	clientBatchOpHeaderLen = 1 + 1 + 1 + 8 + 8
)

// BatchOp is one data operation inside a ClientBatch.
type BatchOp struct {
	Code uint8
	Key  uint64
	// Delta is the FAA addend.
	Delta uint64
	// Expected is the CAS comparand.
	Expected []byte
	// Value is the write/release value or CAS new value.
	Value []byte
}

// WireLen returns the encoded size of the op inside a batch frame.
func (o BatchOp) WireLen() int { return clientBatchOpHeaderLen + len(o.Expected) + len(o.Value) }

// BatchOverhead is the fixed frame cost of a ClientBatch, for callers
// packing ops against MaxClientFrameLen.
const BatchOverhead = clientBatchHeaderLen

// ClientBatch is a batched request frame: len(Ops) data operations with
// sequence numbers Seq..Seq+len(Ops)-1, sharing one Acked watermark.
type ClientBatch struct {
	Flags uint8
	Sess  uint32
	Seq   uint64
	Acked uint64
	Ops   []BatchOp
}

// AppendMarshal appends the wire encoding of b to dst.
func (b *ClientBatch) AppendMarshal(dst []byte) ([]byte, error) {
	if len(b.Ops) == 0 || len(b.Ops) > MaxBatchOps {
		return dst, fmt.Errorf("proto: batch of %d ops outside [1,%d]", len(b.Ops), MaxBatchOps)
	}
	dst = append(dst, ClientOpBatch, b.Flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(b.Ops)))
	dst = binary.LittleEndian.AppendUint32(dst, b.Sess)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, b.Acked)
	for _, op := range b.Ops {
		if !ClientDataOp(op.Code) {
			return dst, fmt.Errorf("proto: op %d not batchable", op.Code)
		}
		if len(op.Expected) > MaxValueLen || len(op.Value) > MaxValueLen {
			return dst, ErrValueTooLong
		}
		dst = append(dst, op.Code, byte(len(op.Expected)), byte(len(op.Value)))
		dst = binary.LittleEndian.AppendUint64(dst, op.Key)
		dst = binary.LittleEndian.AppendUint64(dst, op.Delta)
		dst = append(dst, op.Expected...)
		dst = append(dst, op.Value...)
	}
	return dst, nil
}

// Unmarshal decodes one batch frame from buf. Op payloads alias buf.
func (b *ClientBatch) Unmarshal(buf []byte) error {
	if len(buf) < clientBatchHeaderLen {
		return ErrShortBuffer
	}
	if buf[0] != ClientOpBatch {
		return fmt.Errorf("proto: not a batch frame (op %d)", buf[0])
	}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if count == 0 || count > MaxBatchOps {
		return fmt.Errorf("proto: batch of %d ops outside [1,%d]", count, MaxBatchOps)
	}
	b.Flags = buf[1]
	b.Sess = binary.LittleEndian.Uint32(buf[4:])
	b.Seq = binary.LittleEndian.Uint64(buf[8:])
	b.Acked = binary.LittleEndian.Uint64(buf[16:])
	b.Ops = make([]BatchOp, count)
	off := clientBatchHeaderLen
	for i := 0; i < count; i++ {
		if len(buf) < off+clientBatchOpHeaderLen {
			return ErrShortBuffer
		}
		code, elen, vlen := buf[off], int(buf[off+1]), int(buf[off+2])
		if !ClientDataOp(code) {
			return fmt.Errorf("proto: bad batched op %d", code)
		}
		if elen > MaxValueLen || vlen > MaxValueLen {
			return ErrValueTooLong
		}
		op := BatchOp{
			Code:  code,
			Key:   binary.LittleEndian.Uint64(buf[off+3:]),
			Delta: binary.LittleEndian.Uint64(buf[off+11:]),
		}
		off += clientBatchOpHeaderLen
		if len(buf) < off+elen+vlen {
			return ErrShortBuffer
		}
		if elen > 0 {
			op.Expected = buf[off : off+elen]
		}
		if vlen > 0 {
			op.Value = buf[off+elen : off+elen+vlen]
		}
		off += elen + vlen
		b.Ops[i] = op
	}
	return nil
}

// Node info: a ping reply's Value advertises the node's place in the
// deployment as [groups(1) group(1) epoch(4) members(2)] — its shard
// coordinates plus its replica group's membership epoch and member bitmask.
// Shorter values degrade gracefully: an empty Value means unsharded (one
// group, group 0) at an unknown epoch; a 2-byte value is the pre-membership
// shard-info encoding. Group counts are bounded by a byte — far above any
// plausible deployment.

// MaxGroups bounds the replica-group count of a sharded deployment.
const MaxGroups = 255

const nodeInfoLen = 1 + 1 + 4 + 2

// AppendNodeInfo appends the node-info encoding to dst. Unsharded
// deployments pass groups <= 1 (encoded as 1 group, group 0).
func AppendNodeInfo(dst []byte, groups, group int, epoch uint32, members uint16) []byte {
	if groups <= 1 {
		groups, group = 1, 0
	}
	dst = append(dst, uint8(groups), uint8(group))
	dst = binary.LittleEndian.AppendUint32(dst, epoch)
	return binary.LittleEndian.AppendUint16(dst, members)
}

// ParseShardInfo decodes a ping reply's shard coordinates, defaulting to
// the unsharded (1, 0) when absent.
func ParseShardInfo(v []byte) (groups, group int) {
	if len(v) < 2 {
		return 1, 0
	}
	return int(v[0]), int(v[1])
}

// ParseNodeInfo decodes a ping reply's full node info. Replies without the
// membership fields report epoch 0 and an empty member mask (unknown).
func ParseNodeInfo(v []byte) (groups, group int, epoch uint32, members uint16) {
	groups, group = ParseShardInfo(v)
	if len(v) < nodeInfoLen {
		return groups, group, 0, 0
	}
	return groups, group, binary.LittleEndian.Uint32(v[2:]), binary.LittleEndian.Uint16(v[6:])
}

// ClientReply is the session server's response to one ClientRequest,
// matched by (Sess, Seq).
type ClientReply struct {
	Status uint8
	Flags  uint8
	Sess   uint32
	Seq    uint64
	// Value is the result value: the value read, or the previous value for
	// FAA/CAS. For ClientOpOpen it is empty and Sess carries the new id.
	Value []byte
}

const clientRepHeaderLen = 1 + 1 + 1 + 1 + 4 + 8

// AppendMarshal appends the wire encoding of p to dst.
func (p *ClientReply) AppendMarshal(dst []byte) ([]byte, error) {
	if len(p.Value) > MaxValueLen {
		return dst, ErrValueTooLong
	}
	dst = append(dst, p.Status, p.Flags, byte(len(p.Value)), 0)
	dst = binary.LittleEndian.AppendUint32(dst, p.Sess)
	dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	dst = append(dst, p.Value...)
	return dst, nil
}

// Unmarshal decodes one reply from b. Value aliases b.
func (p *ClientReply) Unmarshal(b []byte) error {
	if len(b) < clientRepHeaderLen {
		return ErrShortBuffer
	}
	vlen := int(b[2])
	if vlen > MaxValueLen {
		return ErrValueTooLong
	}
	if len(b) < clientRepHeaderLen+vlen {
		return ErrShortBuffer
	}
	p.Status = b[0]
	p.Flags = b[1]
	p.Sess = binary.LittleEndian.Uint32(b[4:])
	p.Seq = binary.LittleEndian.Uint64(b[8:])
	p.Value = nil
	if vlen > 0 {
		p.Value = b[clientRepHeaderLen : clientRepHeaderLen+vlen]
	}
	return nil
}
