// Package proto defines the wire messages exchanged by every protocol in the
// system: Eventual Store, ABD, per-key Paxos, Kite's slow-path barrier
// traffic, and the ZAB and Derecho baselines.
//
// A single flat Message struct is shared by all protocols so that one
// mailbox, one batching layer and one codec serve everything — mirroring
// Kite's design of batching messages of all protocols into the same network
// packets (§6.3 of the paper).
package proto

import "kite/internal/llc"

// Kind discriminates the protocol action a Message carries.
type Kind uint8

// Message kinds. The comment after each kind lists the fields it uses.
const (
	KindInvalid Kind = iota

	// Eventual Store (relaxed writes; §3.2).
	KindESWrite // Key, Stamp, Value, OpID: apply value if Stamp is newer, then ack
	KindESAck   // OpID: sender has applied (or superseded) the write

	// ABD (releases and acquires; §3.3). ReadTS is the lightweight first
	// round of an ABD write which only fetches the key's LLC.
	KindReadTS       // Key, OpID
	KindReadTSReply  // OpID, Stamp
	KindABDWrite     // Key, Stamp, Value, OpID: second round of ABD write / acquire write-back
	KindABDWriteAck  // OpID
	KindAcqRead      // Key, OpID: acquire read round; reply carries delinquency flag
	KindSlowRead     // Key, OpID: stripped slow-path relaxed read (no delinquency action)
	KindReadReply    // OpID, Stamp, Value, Flags(FlagDelinquent)
	KindSlowWriteTS  // Key, OpID: LLC-only quorum read for a slow-path relaxed write
	KindSlowWriteTSR // OpID, Stamp

	// Kite slow-path barrier traffic (§4.2).
	KindSlowRelease    // OpID, Bits = DM-set bitmask
	KindSlowReleaseAck // OpID
	KindResetBit       // OpID = unique id of the acquire that discovered delinquency

	// Per-key Paxos (RMWs; §3.4). Slot is the per-key consensus instance
	// (the number of RMWs committed on the key so far).
	KindPropose     // Key, Slot, Stamp = ballot, OpID
	KindProposeAck  // OpID, Flags, Slot, Stamp, Value, Bits (see paxos package)
	KindAccept      // Key, Slot, Stamp, Value, OpID
	KindAcceptAck   // OpID, Flags, Slot
	KindCommit      // Key, Slot, Stamp, Value (no reply)
	KindCommitAck   // OpID: used when the committer wants visibility (tests)
	KindPaxosLearn  // Key, Slot, Stamp, Value: catch-up reply for laggards
	KindPaxosQuery  // Key, OpID: read current committed slot/value (tests, weak CAS refresh)
	KindPaxosQueryR // OpID, Slot, Stamp, Value

	// ZAB baseline (§7).
	KindZabSubmit   // Key, Value, OpID: forward write to the leader
	KindZabProposal // Slot = zxid, Key, Value
	KindZabAck      // Slot = zxid
	KindZabCommit   // Slot = zxid
	KindZabReply    // OpID: leader tells origin the write committed

	// Derecho-like SMR baseline (§7).
	KindDerechoMsg // Slot = sender sequence, Key, Value
	KindDerechoAck // Slot, Bits = sender id

	// Restart / anti-entropy catch-up (DESIGN.md "Recovery"). A rejoining
	// replica walks a peer's key space in bucket-cursor order; the peer
	// streams back (key, LLC, value) items plus the committed per-key Paxos
	// state, closing each chunk with an End frame that advances the cursor
	// and carries the peer's delinquency mask.
	KindCatchupPull // OpID, Slot = bucket cursor: request one chunk of the peer's key space
	KindCatchupItem // OpID, Key, Stamp, Value; Slot/Origin/Origins = committed Paxos state (0/none if the key has no consensus state)
	KindCatchupEnd  // OpID, Slot = next cursor, Origin = echo of the request cursor, Bits = peer's delinquency mask, FlagCatchupDone when the sweep reached the end of the peer's store

	// Group configuration exchange (DESIGN.md "Membership"). These are the
	// only kinds exempt from the receive-side epoch check: they exist to
	// heal epoch disagreement, so they must flow between disagreeing nodes.
	KindConfigPull // OpID: request the sender's installed group config
	KindConfigInfo // Slot = config epoch, Bits = member bitmask; sent as a reply to a pull and pushed unsolicited at nodes observed behind

	// Local-read validation (DESIGN.md "Local reads"). Fire-and-forget,
	// no reply: a lost or dropped validate only costs a fallback to the
	// ABD read, never correctness.
	KindESValidate // Origins = packed (key, stamp) pairs of relaxed writes acked by every current member

	kindCount
)

var kindNames = [...]string{
	KindInvalid:        "invalid",
	KindESWrite:        "es-write",
	KindESAck:          "es-ack",
	KindReadTS:         "read-ts",
	KindReadTSReply:    "read-ts-reply",
	KindABDWrite:       "abd-write",
	KindABDWriteAck:    "abd-write-ack",
	KindAcqRead:        "acq-read",
	KindSlowRead:       "slow-read",
	KindReadReply:      "read-reply",
	KindSlowWriteTS:    "slow-write-ts",
	KindSlowWriteTSR:   "slow-write-ts-reply",
	KindSlowRelease:    "slow-release",
	KindSlowReleaseAck: "slow-release-ack",
	KindResetBit:       "reset-bit",
	KindPropose:        "propose",
	KindProposeAck:     "propose-ack",
	KindAccept:         "accept",
	KindAcceptAck:      "accept-ack",
	KindCommit:         "commit",
	KindCommitAck:      "commit-ack",
	KindPaxosLearn:     "paxos-learn",
	KindPaxosQuery:     "paxos-query",
	KindPaxosQueryR:    "paxos-query-reply",
	KindZabSubmit:      "zab-submit",
	KindZabProposal:    "zab-proposal",
	KindZabAck:         "zab-ack",
	KindZabCommit:      "zab-commit",
	KindZabReply:       "zab-reply",
	KindDerechoMsg:     "derecho-msg",
	KindDerechoAck:     "derecho-ack",
	KindCatchupPull:    "catchup-pull",
	KindCatchupItem:    "catchup-item",
	KindCatchupEnd:     "catchup-end",
	KindConfigPull:     "config-pull",
	KindConfigInfo:     "config-info",
	KindESValidate:     "es-validate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind?"
}

// Flag bits carried in Message.Flags.
const (
	// FlagDelinquent on a reply tells the requester's machine that it has
	// been deemed delinquent and must transition to the slow path.
	FlagDelinquent uint8 = 1 << iota
	// FlagNack marks a negative protocol reply (Paxos reject, stale slot).
	FlagNack
	// FlagHasAccepted marks a Paxos promise that carries an accepted-but-
	// uncommitted value the proposer must help complete.
	FlagHasAccepted
	// FlagCommitted marks a Paxos reply that carries a newer committed
	// (slot, value) the proposer must catch up to.
	FlagCommitted
	// FlagOwnCommitted marks a Paxos nack telling the proposer that its
	// own RMW has already been committed (by a helper), so it must finish
	// rather than re-execute — the exactly-once guard for helped RMWs.
	FlagOwnCommitted
	// FlagSlotKnown marks a Paxos committed-nack whose Origin field is the
	// authoritative origin of the REQUESTER's slot (the replica applied
	// that slot directly and still has it in its history), letting the
	// proposer distinguish "my value lost this slot" from "no information".
	FlagSlotKnown
	// FlagCatchupDone marks a catch-up End frame whose chunk reached the
	// end of the peer's store: the rejoining replica's sweep of this peer
	// is complete.
	FlagCatchupDone
)

// MaxValueLen is the largest value the codec supports. The paper evaluates
// 32-byte values; 64 leaves room for data-structure nodes with ABA counters.
const MaxValueLen = 64

// Message is the single wire unit. Fields are overloaded per Kind as
// documented on the kind constants. Messages are passed by value inside the
// in-process transport and serialised by Marshal for the UDP transport.
type Message struct {
	Kind   Kind
	Flags  uint8
	From   uint8 // originating node id
	Worker uint8 // originating worker index (replies are routed back to it)
	// Epoch is the sender's group configuration epoch, stamped on every
	// outgoing frame at send time and checked on receive: frames from a
	// different epoch are dropped (and trigger a config exchange) so that a
	// quorum is always assembled from replicas agreeing on the member set it
	// is a majority of. See kite/internal/membership.
	Epoch  uint32
	Key    uint64
	OpID   uint64 // originator-unique operation id, echoed by replies
	Stamp  llc.Stamp
	Slot   uint64 // Paxos slot / ZAB zxid / Derecho sequence
	Origin uint64 // op id of the RMW that produced a Paxos value (exactly-once tag)
	// SlotOrigin, with FlagSlotKnown, is the authoritative origin of the
	// REQUESTER's slot on a Paxos committed-nack (who won the slot the
	// proposer is about to abandon).
	SlotOrigin uint64
	Bits       uint16 // DM-set bitmask / auxiliary small payload
	Value      []byte
	// Origins carries recently committed RMW origins (newest first) on
	// Paxos commits, learns and committed-nacks, so replicas that skip
	// slots — and proposers that restart — still learn which RMWs are
	// already committed (exactly-once across slot jumps). Max 16 entries.
	Origins []uint64
}

// MaxOrigins bounds Message.Origins.
const MaxOrigins = 16

// IsReply reports whether the message is a response routed to a pending op
// (as opposed to a request handled against the local store).
func (m *Message) IsReply() bool {
	switch m.Kind {
	case KindESAck, KindReadTSReply, KindABDWriteAck, KindReadReply,
		KindSlowWriteTSR, KindSlowReleaseAck, KindProposeAck, KindAcceptAck,
		KindCommitAck, KindPaxosQueryR, KindZabReply,
		KindCatchupItem, KindCatchupEnd:
		return true
	}
	return false
}

// Reply constructs a response of the given kind addressed back to m's
// originator, echoing the op id. The caller fills protocol-specific fields.
func (m *Message) Reply(kind Kind, from uint8) Message {
	return Message{Kind: kind, From: from, Worker: m.Worker, Key: m.Key, OpID: m.OpID}
}
