package proto

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// dirtyBuf returns an empty slice whose backing array is poisoned, so bytes
// left over from a previous use of a pooled buffer cannot masquerade as
// freshly encoded output.
func dirtyBuf(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0xA5
	}
	return b[:0]
}

// dirtyMsgs returns a message slice with poisoned contents, standing in for
// a recycled decode target.
func dirtyMsgs(n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{
			Kind: Kind(0xEE), Flags: 0xEE, From: 0xEE, Worker: 0xEE,
			Key: ^uint64(0), OpID: ^uint64(0), Slot: ^uint64(0),
			Value:   bytes.Repeat([]byte{0xEE}, 8),
			Origins: []uint64{^uint64(0)},
		}
	}
	return msgs[:0]
}

func equalFullMessage(a, b Message) bool {
	if !equalMessage(a, b) {
		return false
	}
	if len(a.Origins) != len(b.Origins) {
		return false
	}
	for i := range a.Origins {
		if a.Origins[i] != b.Origins[i] {
			return false
		}
	}
	return true
}

func deepCopyMessages(msgs []Message) []Message {
	out := make([]Message, len(msgs))
	for i, m := range msgs {
		out[i] = m
		out[i].Value = append([]byte(nil), m.Value...)
		out[i].Origins = append([]uint64(nil), m.Origins...)
	}
	return out
}

// FuzzBatchRoundtrip pins the aliasing and retention contracts buffer pooling
// relies on: batches marshalled into reused, dirty buffers and decoded into
// reused, dirty message slices and origin arenas must round-trip exactly.
// The input bytes serve double duty — as a raw wire frame (decode→encode→
// decode must be stable for both the replica batch codec and the client batch
// codec) and as a PRNG seed generating structured batches with values and
// origins.
func FuzzBatchRoundtrip(f *testing.F) {
	// The 60-byte header: one value-less, origin-less message carrying an
	// epoch — the smallest frame the replica wire path emits.
	hdrOnly, err := MarshalBatch(nil, []Message{{Kind: KindESWrite, Epoch: 42}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hdrOnly)
	// A max-size client batch: MaxBatchOps ops with full payloads.
	ops := make([]BatchOp, MaxBatchOps)
	for i := range ops {
		ops[i] = BatchOp{
			Code: ClientOpCASStrong, Key: uint64(i), Delta: uint64(i) << 32,
			Expected: bytes.Repeat([]byte{byte(i)}, MaxValueLen),
			Value:    bytes.Repeat([]byte{byte(i + 1)}, MaxValueLen),
		}
	}
	cb := ClientBatch{Flags: 1, Sess: 7, Seq: 100, Acked: 99, Ops: ops}
	cbFrame, err := cb.AppendMarshal(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cbFrame)
	// A mixed batch with values and origins.
	rng := rand.New(rand.NewSource(9))
	var mixed []Message
	for i := 0; i < 5; i++ {
		m := randMessage(rng)
		m.Origins = make([]uint64, rng.Intn(MaxOrigins+1))
		for j := range m.Origins {
			m.Origins[j] = rng.Uint64()
		}
		mixed = append(mixed, m)
	}
	mixedFrame, err := MarshalBatch(nil, mixed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mixedFrame)

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzWireBatch(t, data)
		fuzzClientBatch(t, data)
		fuzzStructuredBatch(t, data)
	})
}

// fuzzWireBatch treats data as a replica batch frame: if it decodes, the
// decode→encode→decode cycle through dirty reused buffers must be stable.
func fuzzWireBatch(t *testing.T, data []byte) {
	first, err := UnmarshalBatch(data)
	if err != nil {
		return // malformed input must only be rejected, never crash
	}
	want := deepCopyMessages(first)
	buf := dirtyBuf(MaxBatchBytes)
	buf, err = MarshalBatch(buf, want)
	if err != nil {
		t.Fatalf("re-marshal of decoded batch failed: %v", err)
	}
	msgs, arena, err := UnmarshalBatchInto(dirtyMsgs(4), []uint64{0xEE}[:0], buf)
	if err != nil {
		t.Fatalf("re-unmarshal failed: %v", err)
	}
	_ = arena
	if len(msgs) != len(want) {
		t.Fatalf("decoded %d msgs, want %d", len(msgs), len(want))
	}
	for i := range msgs {
		if !equalFullMessage(msgs[i], want[i]) {
			t.Fatalf("msg %d mismatch:\n got %+v\nwant %+v", i, msgs[i], want[i])
		}
	}
}

// fuzzClientBatch treats data as a client batch frame and checks the same
// decode→encode→decode stability for the DoBatch codec.
func fuzzClientBatch(t *testing.T, data []byte) {
	var first ClientBatch
	if first.Unmarshal(data) != nil {
		return
	}
	// Deep-copy: op payloads alias data.
	want := first
	want.Ops = make([]BatchOp, len(first.Ops))
	for i, op := range first.Ops {
		want.Ops[i] = op
		want.Ops[i].Expected = append([]byte(nil), op.Expected...)
		want.Ops[i].Value = append([]byte(nil), op.Value...)
	}
	frame, err := want.AppendMarshal(dirtyBuf(4096))
	if err != nil {
		t.Fatalf("re-marshal of decoded client batch failed: %v", err)
	}
	var got ClientBatch
	if err := got.Unmarshal(frame); err != nil {
		t.Fatalf("re-unmarshal failed: %v", err)
	}
	if got.Flags != want.Flags || got.Sess != want.Sess || got.Seq != want.Seq ||
		got.Acked != want.Acked || len(got.Ops) != len(want.Ops) {
		t.Fatalf("client batch header mismatch: got %+v want %+v", got, want)
	}
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.Code != w.Code || g.Key != w.Key || g.Delta != w.Delta ||
			!bytes.Equal(g.Expected, w.Expected) || !bytes.Equal(g.Value, w.Value) {
			t.Fatalf("op %d mismatch: got %+v want %+v", i, g, w)
		}
	}
}

// fuzzStructuredBatch derives a structured random batch from data and
// round-trips it twice through the same dirty buffer, message slice, and
// origin arena — the steady-state reuse pattern of the pooled wire path.
func fuzzStructuredBatch(t *testing.T, data []byte) {
	seed := int64(len(data))
	if len(data) >= 8 {
		seed = int64(binary.LittleEndian.Uint64(data))
	}
	rng := rand.New(rand.NewSource(seed))
	buf := dirtyBuf(MaxBatchBytes)
	msgs := dirtyMsgs(2)
	arena := []uint64{0xEE}[:0]
	for round := 0; round < 2; round++ {
		batch := make([]Message, 1+rng.Intn(8))
		for i := range batch {
			batch[i] = randMessage(rng)
			if rng.Intn(2) == 1 {
				batch[i].Origins = make([]uint64, 1+rng.Intn(MaxOrigins))
				for j := range batch[i].Origins {
					batch[i].Origins[j] = rng.Uint64()
				}
			}
		}
		var err error
		buf, err = MarshalBatch(buf[:0], batch)
		if err != nil {
			t.Fatalf("round %d: marshal: %v", round, err)
		}
		msgs, arena, err = UnmarshalBatchInto(msgs, arena, buf)
		if err != nil {
			t.Fatalf("round %d: unmarshal: %v", round, err)
		}
		if len(msgs) != len(batch) {
			t.Fatalf("round %d: decoded %d msgs, want %d", round, len(msgs), len(batch))
		}
		for i := range msgs {
			if !equalFullMessage(msgs[i], batch[i]) {
				t.Fatalf("round %d: msg %d mismatch:\n got %+v\nwant %+v", round, i, msgs[i], batch[i])
			}
		}
	}
}
