package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kite/internal/llc"
)

// Wire format (little endian), mirroring the compact fixed header + inline
// value layout Kite uses over RDMA UD sends:
//
//	kind(1) flags(1) from(1) worker(1) vlen(1) olen(1)
//	key(8) opid(8) stampVer(7) stampMID(1) slot(8) origin(8) slotOrigin(8) bits(2)
//	epoch(4) value(vlen) origins(8*olen)
//
// A batch is framed as count(2) followed by count messages, matching the
// opportunistic batching of multiple messages into one packet (§6.3).

const headerLen = 1 + 1 + 1 + 1 + 1 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 2 + 4

// MaxBatchBytes is the largest marshalled batch; sized to fit a UDP datagram
// comfortably below the common 64 KiB limit.
const MaxBatchBytes = 60 * 1024

var (
	// ErrValueTooLong is returned when marshalling a message whose value
	// exceeds MaxValueLen.
	ErrValueTooLong = errors.New("proto: value exceeds MaxValueLen")
	// ErrShortBuffer is returned when unmarshalling truncated input.
	ErrShortBuffer = errors.New("proto: short buffer")
	// ErrBatchTooLarge is returned when a batch does not fit MaxBatchBytes.
	ErrBatchTooLarge = errors.New("proto: batch exceeds MaxBatchBytes")
)

// MarshalledSize returns the exact number of bytes AppendMarshal will use.
func (m *Message) MarshalledSize() int { return headerLen + len(m.Value) + 8*len(m.Origins) }

// AppendMarshal appends the wire encoding of m to dst and returns the
// extended slice.
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	if len(m.Value) > MaxValueLen {
		return dst, ErrValueTooLong
	}
	if len(m.Origins) > MaxOrigins {
		return dst, ErrValueTooLong
	}
	dst = append(dst, byte(m.Kind), m.Flags, m.From, m.Worker, byte(len(m.Value)), byte(len(m.Origins)))
	dst = binary.LittleEndian.AppendUint64(dst, m.Key)
	dst = binary.LittleEndian.AppendUint64(dst, m.OpID)
	dst = binary.LittleEndian.AppendUint64(dst, m.Stamp.Pack())
	dst = binary.LittleEndian.AppendUint64(dst, m.Slot)
	dst = binary.LittleEndian.AppendUint64(dst, m.Origin)
	dst = binary.LittleEndian.AppendUint64(dst, m.SlotOrigin)
	dst = binary.LittleEndian.AppendUint16(dst, m.Bits)
	dst = binary.LittleEndian.AppendUint32(dst, m.Epoch)
	dst = append(dst, m.Value...)
	for _, o := range m.Origins {
		dst = binary.LittleEndian.AppendUint64(dst, o)
	}
	return dst, nil
}

// Unmarshal decodes one message from b, returning the number of bytes
// consumed. The Value field aliases b; callers that retain the message past
// the buffer's lifetime must copy it.
func (m *Message) Unmarshal(b []byte) (int, error) {
	used, _, err := m.unmarshalArena(b, nil)
	return used, err
}

// unmarshalArena decodes one message from b. Value aliases b. When arena is
// non-nil, Origins is appended to it and m.Origins aliases the appended
// region (the zero-allocation decode path); with a nil arena Origins is
// freshly allocated, exactly like Unmarshal. Returns bytes consumed and the
// (possibly grown) arena.
func (m *Message) unmarshalArena(b []byte, arena []uint64) (int, []uint64, error) {
	if len(b) < headerLen {
		return 0, arena, ErrShortBuffer
	}
	kind := Kind(b[0])
	if kind == KindInvalid || kind >= kindCount {
		return 0, arena, fmt.Errorf("proto: bad kind %d", b[0])
	}
	vlen := int(b[4])
	olen := int(b[5])
	if vlen > MaxValueLen || olen > MaxOrigins {
		return 0, arena, ErrValueTooLong
	}
	if len(b) < headerLen+vlen+8*olen {
		return 0, arena, ErrShortBuffer
	}
	m.Kind = kind
	m.Flags = b[1]
	m.From = b[2]
	m.Worker = b[3]
	m.Key = binary.LittleEndian.Uint64(b[6:])
	m.OpID = binary.LittleEndian.Uint64(b[14:])
	m.Stamp = llc.Unpack(binary.LittleEndian.Uint64(b[22:]))
	m.Slot = binary.LittleEndian.Uint64(b[30:])
	m.Origin = binary.LittleEndian.Uint64(b[38:])
	m.SlotOrigin = binary.LittleEndian.Uint64(b[46:])
	m.Bits = binary.LittleEndian.Uint16(b[54:])
	m.Epoch = binary.LittleEndian.Uint32(b[56:])
	if vlen > 0 {
		m.Value = b[headerLen : headerLen+vlen]
	} else {
		m.Value = nil
	}
	switch {
	case olen == 0:
		m.Origins = nil
	case arena != nil:
		start := len(arena)
		for i := 0; i < olen; i++ {
			arena = append(arena, binary.LittleEndian.Uint64(b[headerLen+vlen+8*i:]))
		}
		m.Origins = arena[start:len(arena):len(arena)]
	default:
		m.Origins = make([]uint64, olen)
		for i := 0; i < olen; i++ {
			m.Origins[i] = binary.LittleEndian.Uint64(b[headerLen+vlen+8*i:])
		}
	}
	return headerLen + vlen + 8*olen, arena, nil
}

// MarshalBatch encodes a batch of messages into a single datagram payload.
func MarshalBatch(dst []byte, batch []Message) ([]byte, error) {
	if len(batch) > 0xffff {
		return dst, ErrBatchTooLarge
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(batch)))
	for i := range batch {
		var err error
		dst, err = batch[i].AppendMarshal(dst)
		if err != nil {
			return dst, err
		}
		if len(dst) > MaxBatchBytes {
			return dst, ErrBatchTooLarge
		}
	}
	return dst, nil
}

// UnmarshalBatch decodes a datagram payload produced by MarshalBatch.
// Returned message values alias b.
func UnmarshalBatch(b []byte) ([]Message, error) {
	msgs, _, err := UnmarshalBatchInto(nil, nil, b)
	return msgs, err
}

// UnmarshalBatchInto is the zero-allocation decode path: it decodes a
// datagram payload produced by MarshalBatch into msgs (reusing its capacity;
// contents are overwritten) and packs every message's Origins into the
// shared arena (reusing its capacity likewise). Message Values alias b and
// Origins alias the returned arena, so the decoded batch is only valid until
// b or the arena is recycled — transports that pool their receive buffers
// must not release them until the batch has been fully consumed. Passing nil
// slices degrades to plain allocation (UnmarshalBatch is exactly that).
//
// Steady state, a caller that round-trips the returned slices back into the
// next call performs zero allocations per batch: the message slice and the
// arena grow to their high-water mark once and are overwritten thereafter.
func UnmarshalBatchInto(msgs []Message, arena []uint64, b []byte) ([]Message, []uint64, error) {
	if len(b) < 2 {
		return msgs[:0], arena[:0], ErrShortBuffer
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if cap(msgs) < n {
		msgs = make([]Message, n)
	} else {
		msgs = msgs[:n]
	}
	if arena == nil {
		// unmarshalArena falls back to per-message allocation on a nil
		// arena; seed one so the packed path engages from the first call
		// and callers that start with a nil slice still reach zero
		// allocations once it grows to its high-water mark.
		arena = make([]uint64, 0, 4*MaxOrigins)
	}
	arena = arena[:0]
	for i := 0; i < n; i++ {
		var (
			used int
			err  error
		)
		used, arena, err = msgs[i].unmarshalArena(b, arena)
		if err != nil {
			return msgs[:0], arena[:0], err
		}
		b = b[used:]
	}
	return msgs, arena, nil
}
