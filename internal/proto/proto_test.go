package proto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"kite/internal/llc"
)

func randMessage(rng *rand.Rand) Message {
	m := Message{
		Kind:       Kind(1 + rng.Intn(int(kindCount)-1)),
		Flags:      uint8(rng.Intn(256)),
		From:       uint8(rng.Intn(16)),
		Worker:     uint8(rng.Intn(32)),
		Key:        rng.Uint64(),
		OpID:       rng.Uint64(),
		Stamp:      llc.Stamp{Ver: rng.Uint64() >> 8, MID: uint8(rng.Intn(16))},
		Slot:       rng.Uint64(),
		Origin:     rng.Uint64(),
		SlotOrigin: rng.Uint64(),
		Bits:       uint16(rng.Intn(1 << 16)),
		Epoch:      rng.Uint32(),
	}
	if rng.Intn(3) > 0 {
		m.Value = make([]byte, rng.Intn(MaxValueLen+1))
		rng.Read(m.Value)
		if len(m.Value) == 0 {
			m.Value = nil
		}
	}
	return m
}

func equalMessage(a, b Message) bool {
	return a.Kind == b.Kind && a.Flags == b.Flags && a.From == b.From &&
		a.Worker == b.Worker && a.Key == b.Key && a.OpID == b.OpID &&
		a.Stamp == b.Stamp && a.Slot == b.Slot && a.Origin == b.Origin && a.SlotOrigin == b.SlotOrigin &&
		a.Bits == b.Bits && a.Epoch == b.Epoch && bytes.Equal(a.Value, b.Value)
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		m := randMessage(rng)
		buf, err := m.AppendMarshal(nil)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if len(buf) != m.MarshalledSize() {
			t.Fatalf("size mismatch: %d vs %d", len(buf), m.MarshalledSize())
		}
		var got Message
		used, err := got.Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if used != len(buf) {
			t.Fatalf("consumed %d of %d bytes", used, len(buf))
		}
		if !equalMessage(m, got) {
			t.Fatalf("round trip mismatch:\n in %+v\nout %+v", m, got)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		batch := make([]Message, rng.Intn(40))
		for j := range batch {
			batch[j] = randMessage(rng)
		}
		buf, err := MarshalBatch(nil, batch)
		if err != nil {
			t.Fatalf("marshal batch: %v", err)
		}
		got, err := UnmarshalBatch(buf)
		if err != nil {
			t.Fatalf("unmarshal batch: %v", err)
		}
		if len(got) != len(batch) {
			t.Fatalf("batch length %d, want %d", len(got), len(batch))
		}
		for j := range batch {
			if !equalMessage(batch[j], got[j]) {
				t.Fatalf("batch[%d] mismatch", j)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var m Message
	if _, err := m.Unmarshal(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := m.Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
	// Bad kind.
	buf := make([]byte, headerLen)
	buf[0] = 0
	if _, err := m.Unmarshal(buf); err == nil {
		t.Fatal("kind 0 accepted")
	}
	buf[0] = byte(kindCount)
	if _, err := m.Unmarshal(buf); err == nil {
		t.Fatal("out-of-range kind accepted")
	}
	// Claimed value longer than the buffer.
	good, _ := (&Message{Kind: KindESWrite, Value: []byte{1, 2, 3}}).AppendMarshal(nil)
	if _, err := m.Unmarshal(good[:len(good)-1]); err == nil {
		t.Fatal("truncated value accepted")
	}
}

func TestValueTooLong(t *testing.T) {
	m := Message{Kind: KindESWrite, Value: make([]byte, MaxValueLen+1)}
	if _, err := m.AppendMarshal(nil); err != ErrValueTooLong {
		t.Fatalf("err = %v, want ErrValueTooLong", err)
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		var m Message
		m.Unmarshal(b) // must not panic
		UnmarshalBatch(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyRouting(t *testing.T) {
	req := Message{Kind: KindAcqRead, From: 2, Worker: 7, Key: 99, OpID: 1234}
	rep := req.Reply(KindReadReply, 4)
	if rep.Kind != KindReadReply || rep.From != 4 || rep.Worker != 7 ||
		rep.Key != 99 || rep.OpID != 1234 {
		t.Fatalf("bad reply %+v", rep)
	}
	if !rep.IsReply() || req.IsReply() {
		t.Fatal("IsReply misclassifies")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < kindCount; k++ {
		if k.String() == "" || k.String() == "kind?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "kind?" {
		t.Fatal("unknown kind should stringify as kind?")
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := Message{Kind: KindESWrite, Key: 1, OpID: 2, Value: make([]byte, 32)}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = m.AppendMarshal(buf)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := Message{Kind: KindESWrite, Key: 1, OpID: 2, Value: make([]byte, 32)}
	buf, _ := m.AppendMarshal(nil)
	b.ReportAllocs()
	var out Message
	for i := 0; i < b.N; i++ {
		out.Unmarshal(buf)
	}
}
