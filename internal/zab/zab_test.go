package zab

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

func testConfig(nodes int) Config {
	return Config{
		Nodes: nodes, Workers: 2, SessionsPerWorker: 2,
		KVSCapacity: 1 << 10, IdlePoll: 100 * time.Microsecond,
	}
}

func TestWriteCommitsAndPropagates(t *testing.T) {
	c := NewCluster(testConfig(3))
	defer c.Close()
	s := c.Node(1).Session(0) // follower session
	s.Write(7, []byte("hello"))
	// The write is committed; the leader has applied it.
	if got := c.Node(0).Session(0).Read(7); string(got) != "hello" {
		t.Fatalf("leader read %q", got)
	}
	// Followers apply on commit broadcast (async); poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c.Node(2).Session(0).Read(7); string(got) == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("commit never reached node 2")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLeaderLocalWrite(t *testing.T) {
	c := NewCluster(testConfig(3))
	defer c.Close()
	s := c.Node(0).Session(0)
	s.Write(1, []byte("x"))
	if got := s.Read(1); string(got) != "x" {
		t.Fatalf("leader read-own-write %q", got)
	}
	reads, writes := c.Node(0).Completed()
	if reads != 1 || writes != 1 {
		t.Fatalf("completed = %d reads %d writes", reads, writes)
	}
}

func TestTotalOrderAcrossWriters(t *testing.T) {
	c := NewCluster(testConfig(3))
	defer c.Close()
	// Concurrent writers to the same key from all nodes; after quiescence
	// all replicas must agree on the final value (write serialization).
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			s := c.Node(n).Session(1)
			for i := 0; i < 50; i++ {
				s.Write(42, []byte(fmt.Sprintf("n%d-%d", n, i)))
			}
		}(n)
	}
	wg.Wait()
	// Let the last commits propagate.
	time.Sleep(50 * time.Millisecond)
	v0 := c.Node(0).Session(0).Read(42)
	for n := 1; n < 3; n++ {
		if got := c.Node(n).Session(0).Read(42); string(got) != string(v0) {
			t.Fatalf("replica %d diverged: %q vs %q", n, got, v0)
		}
	}
}

func TestApplierInOrder(t *testing.T) {
	a := newApplier()
	store := kvs.New(64)
	mk := func(zxid uint64, val string) proto.Message {
		return proto.Message{Kind: proto.KindZabProposal, Key: 1, Slot: zxid, Value: []byte(val)}
	}
	// Proposals arrive in order; commits out of order: nothing applies
	// until the prefix is complete.
	a.propose(mk(0, "a"), store)
	a.propose(mk(1, "b"), store)
	a.propose(mk(2, "c"), store)
	a.commit(1, store)
	a.commit(2, store)
	buf := make([]byte, kvs.MaxValueLen)
	if _, _, _, ok := store.View(1, buf); ok {
		t.Fatal("applied out of order")
	}
	a.commit(0, store)
	val, st, _, ok := store.View(1, buf)
	if !ok || string(val) != "c" || st != (llc.Stamp{Ver: 3}) {
		t.Fatalf("after prefix commit: %q %v %v", val, st, ok)
	}
}

func TestApplierCommitBeforeProposal(t *testing.T) {
	a := newApplier()
	store := kvs.New(64)
	m := proto.Message{Kind: proto.KindZabProposal, Key: 2, Slot: 0, Value: []byte("v")}
	// Reordered delivery: commit seen before its proposal payload.
	a.commit(0, store)
	a.propose(m, store)
	buf := make([]byte, kvs.MaxValueLen)
	val, _, _, ok := store.View(2, buf)
	if !ok || string(val) != "v" {
		t.Fatalf("reordered commit lost: %q %v", val, ok)
	}
}

func TestAsyncWrites(t *testing.T) {
	c := NewCluster(testConfig(3))
	defer c.Close()
	s := c.Node(2).Session(0)
	const n = 100
	var mu sync.Mutex
	got := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		s.WriteAsync(uint64(i), []byte{1}, func() {
			mu.Lock()
			got++
			if got == n {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d async writes committed", got, n)
	}
}

func TestFiveNodeQuorumWithoutAllAcks(t *testing.T) {
	// A 5-node cluster commits with 3 acks; the leader plus two followers
	// suffice even if the transport to the rest is saturated.
	c := NewCluster(testConfig(5))
	defer c.Close()
	s := c.Node(0).Session(0)
	for i := 0; i < 20; i++ {
		s.Write(uint64(i), []byte("q"))
	}
	if got := s.Read(5); string(got) != "q" {
		t.Fatalf("read %q", got)
	}
}
