package zab

import (
	"sync/atomic"
	"time"

	"kite/internal/kvs"
	"kite/internal/proto"
	"kite/internal/transport"
)

// request is a client operation handed to a worker.
type request struct {
	write bool
	key   uint64
	val   []byte
	out   []byte
	done  func(*request)
}

// pendingWrite tracks a proposal the leader is collecting acks for.
type pendingWrite struct {
	zxid   uint64
	origin proto.Message // the submit to reply to (From/Worker/OpID)
	acks   uint16
	local  bool // submitted by one of the leader's own sessions
	req    *request
}

// Session is a ZAB client handle: local reads, leader-ordered writes.
type Session struct {
	w    *worker
	done chan *request
}

// Read returns the local replica's value for key (ZAB's relaxed local
// reads).
func (s *Session) Read(key uint64) []byte {
	buf := make([]byte, kvs.MaxValueLen)
	val, _, _, ok := s.w.node.store.View(key, buf)
	s.w.node.completedReads.Add(1)
	if !ok {
		return nil
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out
}

// WriteAsync submits a totally-ordered write; done (optional) fires on
// commit, on the worker goroutine.
func (s *Session) WriteAsync(key uint64, val []byte, done func()) {
	r := &request{write: true, key: key, val: append([]byte(nil), val...)}
	if done != nil {
		r.done = func(*request) { done() }
	}
	s.w.reqCh <- r
}

// Write submits a write and waits for its commit.
func (s *Session) Write(key uint64, val []byte) {
	if s.done == nil {
		s.done = make(chan *request, 1)
	}
	r := &request{write: true, key: key, val: append([]byte(nil), val...)}
	r.done = func(r *request) { s.done <- r }
	s.w.reqCh <- r
	<-s.done
}

// worker is a ZAB event loop; worker i talks to worker i of every peer.
type worker struct {
	node  *Node
	id    uint8
	inbox <-chan transport.Batch
	reqCh chan *request
	out   [][]proto.Message

	// Leader-side state.
	acks  map[uint64]*pendingWrite // zxid -> ack collection
	opSeq uint64
	// Follower-side: submits awaiting the leader's reply.
	subs map[uint64]*request
}

func (w *worker) stage(dst uint8, m proto.Message) {
	w.out[dst] = append(w.out[dst], m)
}

func (w *worker) flush() {
	for dst := range w.out {
		if len(w.out[dst]) == 0 {
			continue
		}
		w.node.tr.Send(transport.Endpoint{Node: uint8(dst), Worker: w.id}, w.out[dst])
		w.out[dst] = w.out[dst][:0]
	}
}

func (w *worker) run() {
	idle := time.NewTimer(w.node.cfg.IdlePoll)
	defer idle.Stop()
	for {
		if w.node.stopped.Load() {
			w.drainOnStop()
			return
		}
		progress := false
	drain:
		for i := 0; i < 128; i++ {
			select {
			case batch := <-w.inbox:
				for j := range batch.Msgs {
					w.dispatch(&batch.Msgs[j])
				}
				batch.Release()
				progress = true
			default:
				break drain
			}
		}
	admit:
		for i := 0; i < 128; i++ {
			select {
			case r := <-w.reqCh:
				w.submit(r)
				progress = true
			default:
				break admit
			}
		}
		w.flush()
		if !progress {
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(w.node.cfg.IdlePoll)
			select {
			case batch := <-w.inbox:
				for j := range batch.Msgs {
					w.dispatch(&batch.Msgs[j])
				}
				batch.Release()
				w.flush()
			case r := <-w.reqCh:
				w.submit(r)
			case <-idle.C:
			}
		}
	}
}

// submit handles a client write: leaders sequence it directly, followers
// forward it to the leader's same-index worker.
func (w *worker) submit(r *request) {
	if !r.write {
		return
	}
	if w.node.id == 0 {
		w.sequence(proto.Message{From: w.node.id, Worker: w.id, Key: r.key, Value: r.val}, true, r)
		return
	}
	w.opSeq++
	opID := uint64(w.node.id)<<56 | uint64(w.id)<<48 | w.opSeq
	w.subs[opID] = r
	w.stage(0, proto.Message{
		Kind: proto.KindZabSubmit, From: w.node.id, Worker: w.id,
		Key: r.key, OpID: opID, Value: r.val,
	})
}

// sequence assigns the next zxid and broadcasts the proposal (leader only).
func (w *worker) sequence(sub proto.Message, local bool, r *request) {
	zxid := w.node.zxid.Add(1) - 1
	val := append([]byte(nil), sub.Value...)
	// origin is reply-routing metadata only; the payload may alias a pooled
	// transport buffer that is recycled after dispatch, so drop it.
	sub.Value = nil
	pw := &pendingWrite{zxid: zxid, origin: sub, local: local, req: r}
	w.acks[zxid] = pw
	prop := proto.Message{
		Kind: proto.KindZabProposal, From: w.node.id, Worker: w.id,
		Key: sub.Key, Slot: zxid, Value: val,
	}
	for dst := uint8(1); int(dst) < w.node.n; dst++ {
		w.stage(dst, prop)
	}
	// The leader logs the proposal and acks itself.
	w.node.applier.propose(prop, w.node.store)
	pw.acks |= 1
	w.maybeCommit(pw)
}

func (w *worker) maybeCommit(pw *pendingWrite) {
	if popcount16(pw.acks) < w.node.quorum {
		return
	}
	delete(w.acks, pw.zxid)
	cm := proto.Message{Kind: proto.KindZabCommit, From: w.node.id, Worker: w.id, Slot: pw.zxid}
	for dst := uint8(1); int(dst) < w.node.n; dst++ {
		w.stage(dst, cm)
	}
	w.node.applier.commit(pw.zxid, w.node.store)
	if pw.local {
		w.node.completedWrites.Add(1)
		if pw.req != nil && pw.req.done != nil {
			pw.req.done(pw.req)
		}
		return
	}
	w.stage(pw.origin.From, proto.Message{
		Kind: proto.KindZabReply, From: w.node.id, Worker: pw.origin.Worker,
		OpID: pw.origin.OpID,
	})
}

func (w *worker) dispatch(m *proto.Message) {
	switch m.Kind {
	case proto.KindZabSubmit: // leader
		w.sequence(*m, false, nil)
	case proto.KindZabProposal: // follower
		// The applier retains the proposal until its commit arrives; its
		// value must not alias the transport's recycled receive buffer.
		p := *m
		p.Value = append([]byte(nil), m.Value...)
		w.node.applier.propose(p, w.node.store)
		w.stage(0, proto.Message{
			Kind: proto.KindZabAck, From: w.node.id, Worker: w.id, Slot: m.Slot,
		})
	case proto.KindZabAck: // leader
		if pw, ok := w.acks[m.Slot]; ok {
			pw.acks |= 1 << m.From
			w.maybeCommit(pw)
		}
	case proto.KindZabCommit: // follower
		w.node.applier.commit(m.Slot, w.node.store)
	case proto.KindZabReply: // origin follower
		if r, ok := w.subs[m.OpID]; ok {
			delete(w.subs, m.OpID)
			w.node.completedWrites.Add(1)
			if r.done != nil {
				r.done(r)
			}
		}
	}
}

// drainOnStop completes outstanding requests so sync callers do not hang.
func (w *worker) drainOnStop() {
	for _, r := range w.subs {
		if r.done != nil {
			r.done(r)
		}
	}
	w.subs = map[uint64]*request{}
	for _, pw := range w.acks {
		if pw.local && pw.req != nil && pw.req.done != nil {
			pw.req.done(pw.req)
		}
	}
	w.acks = map[uint64]*pendingWrite{}
	for {
		select {
		case r := <-w.reqCh:
			if r.done != nil {
				r.done(r)
			}
		default:
			return
		}
	}
}

var _ = atomic.Int64{} // keep sync/atomic for future counters

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
