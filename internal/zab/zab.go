// Package zab implements the paper's in-house baseline (§7): a multi-
// threaded, batched implementation of ZooKeeper Atomic Broadcast over the
// same replicated KVS substrate as Kite.
//
// ZAB enforces consistency by totally ordering all writes through a leader:
// a write is forwarded to the leader, which assigns it a zxid, broadcasts a
// proposal to the followers, commits once a quorum acks, and every node
// applies committed writes in zxid order. Reads execute locally — ZAB
// relaxes read consistency to keep them cheap, which is exactly the
// trade-off the paper contrasts Kite against: writes get RMW-like total
// ordering (stronger than Kite's relaxed writes), reads get less than
// linearizability (weaker than Kite's acquires).
//
// The implementation mirrors the paper's in-house RDMA ZAB: one worker per
// remote worker, opportunistic batching, and the apply stage is the
// serialization point — all nodes apply the single write order, which is the
// architectural bottleneck per-key Paxos avoids (§8.2).
package zab

import (
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
	"kite/internal/transport"
)

// Config parameterises a ZAB deployment.
type Config struct {
	Nodes             int
	Workers           int
	SessionsPerWorker int
	KVSCapacity       int
	MailboxDepth      int
	IdlePoll          time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.SessionsPerWorker == 0 {
		c.SessionsPerWorker = 4
	}
	if c.KVSCapacity == 0 {
		c.KVSCapacity = 1 << 16
	}
	if c.MailboxDepth == 0 {
		c.MailboxDepth = 4096
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = 200 * time.Microsecond
	}
	return c
}

// Cluster is an in-process ZAB deployment. Node 0 is the (stable) leader —
// leader election is out of scope, as in the paper's baseline.
type Cluster struct {
	cfg   Config
	tr    *transport.InProc
	nodes []*Node
}

// NewCluster builds and starts a deployment.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, tr: transport.NewInProc(cfg.Nodes, cfg.Workers, cfg.MailboxDepth)}
	for id := 0; id < cfg.Nodes; id++ {
		c.nodes = append(c.nodes, newNode(uint8(id), cfg, c.tr))
	}
	for _, nd := range c.nodes {
		nd.start()
	}
	return c
}

// Node returns replica i (0 is the leader).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the replication degree.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Close stops the deployment.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.stop()
	}
	c.tr.Close()
}

// Node is one ZAB replica.
type Node struct {
	id     uint8
	cfg    Config
	n      int
	quorum int
	store  *kvs.Store
	tr     transport.Transport

	// zxid is the global write sequencer (leader only).
	zxid atomic.Uint64

	applier  *applier
	workers  []*worker
	sessions []*Session
	stopped  atomic.Bool
	wg       sync.WaitGroup

	completedReads  atomic.Uint64
	completedWrites atomic.Uint64
}

func newNode(id uint8, cfg Config, tr transport.Transport) *Node {
	nd := &Node{
		id: id, cfg: cfg, n: cfg.Nodes, quorum: cfg.Nodes/2 + 1,
		store: kvs.New(cfg.KVSCapacity), tr: tr,
		applier: newApplier(),
	}
	for w := 0; w < cfg.Workers; w++ {
		wk := &worker{
			node:  nd,
			id:    uint8(w),
			inbox: tr.Recv(transport.Endpoint{Node: id, Worker: uint8(w)}),
			reqCh: make(chan *request, 1024),
			out:   make([][]proto.Message, cfg.Nodes),
			acks:  make(map[uint64]*pendingWrite),
			subs:  make(map[uint64]*request),
		}
		nd.workers = append(nd.workers, wk)
		for s := 0; s < cfg.SessionsPerWorker; s++ {
			nd.sessions = append(nd.sessions, &Session{w: wk})
		}
	}
	return nd
}

func (nd *Node) start() {
	for _, wk := range nd.workers {
		nd.wg.Add(1)
		go func(wk *worker) {
			defer nd.wg.Done()
			wk.run()
		}(wk)
	}
}

func (nd *Node) stop() {
	if nd.stopped.Swap(true) {
		return
	}
	nd.wg.Wait()
}

// Sessions returns the number of sessions on this node.
func (nd *Node) Sessions() int { return len(nd.sessions) }

// Session returns the i-th session handle.
func (nd *Node) Session(i int) *Session { return nd.sessions[i] }

// Completed returns (reads, writes) completed by this node's sessions.
func (nd *Node) Completed() (reads, writes uint64) {
	return nd.completedReads.Load(), nd.completedWrites.Load()
}

// applier serializes the application of committed writes: every node applies
// the leader's total order. This mutex-guarded stage is ZAB's architectural
// serialization point (per-key Paxos has none), deliberately preserved.
type applier struct {
	mu        sync.Mutex
	pending   map[uint64]proto.Message // zxid -> committed-but-unapplied
	proposals map[uint64]proto.Message // zxid -> proposal payload (followers)
	committed map[uint64]bool          // commit seen before proposal (reorder guard)
	nextApply uint64
}

func newApplier() *applier {
	return &applier{
		pending:   make(map[uint64]proto.Message),
		proposals: make(map[uint64]proto.Message),
		committed: make(map[uint64]bool),
	}
}

// propose records a proposal payload awaiting its commit. The store is
// needed because a reordered commit may already be waiting for this payload.
func (a *applier) propose(m proto.Message, store *kvs.Store) {
	a.mu.Lock()
	if a.committed[m.Slot] {
		delete(a.committed, m.Slot)
		a.pending[m.Slot] = m
		a.applyPrefix(store)
	} else {
		a.proposals[m.Slot] = m
	}
	a.mu.Unlock()
}

// commit marks zxid committed and applies every in-order prefix write.
func (a *applier) commit(zxid uint64, store *kvs.Store) {
	a.mu.Lock()
	if p, ok := a.proposals[zxid]; ok {
		delete(a.proposals, zxid)
		a.pending[zxid] = p
	} else {
		a.committed[zxid] = true
	}
	a.applyPrefix(store)
	a.mu.Unlock()
}

// applyPrefix applies every committed write in zxid order (caller holds mu).
func (a *applier) applyPrefix(store *kvs.Store) {
	for {
		m, ok := a.pending[a.nextApply]
		if !ok {
			return
		}
		delete(a.pending, a.nextApply)
		// zxids are the write serialization: stamp with the zxid so the
		// kvs last-writer-wins merge agrees with the total order.
		store.Apply(m.Key, m.Value, llc.Stamp{Ver: m.Slot + 1})
		a.nextApply++
	}
}
