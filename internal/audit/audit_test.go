package audit

import (
	"fmt"
	"testing"
	"time"

	"kite"
)

// TestSelfTest: the injected-violation drill must catch both staged
// violations through the full pipeline.
func TestSelfTest(t *testing.T) {
	sum, err := SelfTest()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats.SampledOps != 5 {
		t.Fatalf("selftest sampled %d ops, want 5", sum.Stats.SampledOps)
	}
	if sum.Report.OK() {
		t.Fatal("selftest report clean — injected violations not caught")
	}
}

// TestAuditorHealthyLiveRun wraps live in-process sessions in the sampling
// recorder and runs the producer/consumer + RMW shape; a healthy cluster
// must audit clean, with real coverage.
func TestAuditorHealthyLiveRun(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := New(Config{Grace: 20 * time.Millisecond, Interval: 5 * time.Millisecond})
	prod := a.Wrap(c.Session(0, 0))
	cons := a.Wrap(c.Session(1, 1))
	rmw := a.Wrap(c.Session(2, 2))

	const rounds, keys = 5, 4
	for r := 1; r <= rounds; r++ {
		for k := 0; k < keys; k++ {
			if err := prod.Write(uint64(100+k), []byte(fmt.Sprintf("p0r%dk%d", r, k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.ReleaseWrite(9000, []byte(fmt.Sprintf("r%d", r))); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("r%d", r)
		for {
			v, err := cons.AcquireRead(9000)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == want {
				break
			}
		}
		for k := 0; k < keys; k++ {
			if _, err := cons.Read(uint64(100 + k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := rmw.FAA(200, 1); err != nil {
			t.Fatal(err)
		}
	}

	a.Close()
	sum := a.Summary()
	if !sum.Report.OK() {
		t.Fatalf("healthy run flagged:\n%s", sum.Report.String())
	}
	if sum.Stats.SampledOps == 0 || sum.Stats.JudgedEvents == 0 || sum.Stats.CheckedReads == 0 {
		t.Fatalf("no audit coverage: %+v", sum.Stats)
	}
	if sum.Stats.DroppedEvents != 0 {
		t.Fatalf("dropped %d events with an idle stream", sum.Stats.DroppedEvents)
	}
	if sum.Report.Stats.Acquires == 0 || sum.Report.Stats.RMWs == 0 {
		t.Fatalf("checker stats empty: %+v", sum.Report.Stats)
	}
}

// TestAuditorSampling: the per-key coin is deterministic across sessions,
// rates land in a plausible band, and unsampled ops are counted.
func TestAuditorSampling(t *testing.T) {
	a := New(Config{KeyRate: 0.5, Seed: 7})
	defer a.Close()
	in, out := 0, 0
	for k := uint64(0); k < 4096; k++ {
		if a.keySampled(k) {
			in++
		} else {
			out++
		}
		if a.keySampled(k) != a.keySampled(k) {
			t.Fatal("key coin nondeterministic")
		}
	}
	if in < 1600 || in > 2500 {
		t.Fatalf("KeyRate 0.5 sampled %d/4096 keys", in)
	}

	s := a.Wrap(newScripted(make([]kite.Result, 4096)))
	for k := uint64(0); k < 2048; k++ {
		if _, err := s.Read(k); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	st := a.Stats()
	if st.SampledOps == 0 || st.SkippedOps == 0 {
		t.Fatalf("sampling accounting: %+v", st)
	}
	if st.SampledOps+st.SkippedOps != 2048 {
		t.Fatalf("sampled %d + skipped %d != 2048", st.SampledOps, st.SkippedOps)
	}
}

// TestAuditorBoundedMemory: a long clean workload under a tiny budget must
// evict, stay within the budget, and stay clean.
func TestAuditorBoundedMemory(t *testing.T) {
	a := New(Config{MaxEvents: 64, Grace: time.Millisecond, Interval: time.Millisecond})
	s := a.Wrap(newScripted(make([]kite.Result, 0)))
	// The scripted session returns empty results; use unique written
	// values and empty reads — a clean single-session history.
	for i := 0; i < 5000; i++ {
		if err := s.Write(uint64(i%7), []byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	sum := a.Summary()
	if !sum.Report.OK() {
		t.Fatalf("clean workload flagged under eviction:\n%s", sum.Report.String())
	}
	if sum.Stats.Evictions == 0 {
		t.Fatalf("5000 events under a 64-event budget evicted nothing: %+v", sum.Stats)
	}
	if sum.Stats.Retained > 64 {
		t.Fatalf("retained %d > budget 64", sum.Stats.Retained)
	}
}

// TestAuditorUnsampledSessionTransparent: rate-0-ish sessions pass through
// without recording.
func TestAuditorUnsampledSessionTransparent(t *testing.T) {
	a := New(Config{})
	defer a.Close()
	s := a.WrapRate(newScripted(make([]kite.Result, 8)), 0.0000001)
	for i := 0; i < 8; i++ {
		if _, err := s.Read(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if st := a.Stats(); st.SampledOps != 0 {
		t.Fatalf("near-zero session rate recorded %d ops", st.SampledOps)
	}
}
