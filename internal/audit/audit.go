package audit

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/history"
	"kite/internal/verifier"
)

// Config tunes an Auditor. The zero value audits everything with a 64k
// event budget — see OPERATIONS.md "Running a standing audit" for sizing.
type Config struct {
	// KeyRate is the per-key sampling probability in (0,1]; 0 means 1.
	// The coin is a deterministic salted hash, so one key is sampled by
	// every wrapped session or by none.
	KeyRate float64
	// SessionRate is the default per-session sampling probability used by
	// Wrap in (0,1]; 0 means 1. WrapRate overrides it per session class.
	SessionRate float64
	// K is the k-atomicity bound (min/default 1).
	K int
	// Grace is how far the judging watermark trails the present; sampled
	// completions older than Grace are judged. Default 250ms.
	Grace time.Duration
	// MaxEvents is the hard memory budget: judged events retained in the
	// checker's indexes. Oldest evict beyond it. Default 65536.
	MaxEvents int
	// Buffer is the stream channel capacity; invoke records that find it
	// full are dropped (and counted) rather than stalling the workload.
	// Default 16384.
	Buffer int
	// Interval is the seal cadence. Default 50ms.
	Interval time.Duration
	// Seed salts the sampling coins.
	Seed int64
}

func (c *Config) defaults() {
	if c.KeyRate <= 0 || c.KeyRate > 1 {
		c.KeyRate = 1
	}
	if c.SessionRate <= 0 || c.SessionRate > 1 {
		c.SessionRate = 1
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.Grace <= 0 {
		c.Grace = 250 * time.Millisecond
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 16
	}
	if c.Buffer <= 0 {
		c.Buffer = 1 << 14
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
}

// Stats is the audit coverage ledger: how much of the live workload the
// auditor saw, judged, and had to give up.
type Stats struct {
	// SampledOps: operations recorded (both records delivered unless
	// dropped).
	SampledOps uint64 `json:"sampled_ops"`
	// SkippedOps: operations seen by a wrapped session but not sampled.
	SkippedOps uint64 `json:"skipped_ops"`
	// DroppedEvents: records lost to stream backpressure (the op's
	// completion is suppressed with its invoke, keeping the stream
	// coherent).
	DroppedEvents uint64 `json:"dropped_events"`
	// JudgedEvents / CheckedReads: events the sealed watermark passed;
	// reads that ran the full check set (the audit's "checked windows").
	JudgedEvents uint64 `json:"judged_events"`
	CheckedReads uint64 `json:"checked_reads"`
	// CensusSkips: judgments that gave up value-census checks after a
	// deferral expired (e.g. the matching write's completion was dropped).
	CensusSkips uint64 `json:"census_skips"`
	// Evictions / Retained: memory-budget evictions and current residency.
	Evictions uint64 `json:"evictions"`
	Retained  uint64 `json:"retained"`
}

// Summary bundles coverage and verdicts for reports (chaos, bench, CLI).
type Summary struct {
	Stats  Stats            `json:"stats"`
	Report *verifier.Report `json:"report"`
}

// Auditor owns the sampling stream and the incremental checker. Create
// with New, wrap live sessions with Wrap/WrapRate, read Report/Stats at
// any time, Close when done (Close drains and seals everything).
type Auditor struct {
	cfg  Config
	base time.Time

	ch   chan streamMsg
	stop chan struct{}
	wg   sync.WaitGroup

	mu sync.Mutex
	ck *verifier.Checker

	nsess   int64
	sampled atomic.Uint64
	skipped atomic.Uint64
	dropped atomic.Uint64
}

type streamMsg struct {
	invoke bool
	e      history.Event
}

// New starts an auditor and its pump goroutine.
func New(cfg Config) *Auditor {
	cfg.defaults()
	a := &Auditor{
		cfg:  cfg,
		base: time.Now(),
		ch:   make(chan streamMsg, cfg.Buffer),
		stop: make(chan struct{}),
		ck: verifier.NewChecker(verifier.CheckerConfig{
			K:          cfg.K,
			Partial:    true,
			MaxEvents:  cfg.MaxEvents,
			DeferBound: int64(4 * cfg.Grace),
		}),
	}
	a.wg.Add(1)
	go a.pump()
	return a
}

func (a *Auditor) now() int64 { return int64(time.Since(a.base)) }

// keySampled is the deterministic per-key coin: a salted splitmix64 hash
// mapped to [0,1) against KeyRate. Every wrapped session agrees on it.
func (a *Auditor) keySampled(key uint64) bool {
	if a.cfg.KeyRate >= 1 {
		return true
	}
	return coin(mix(key^uint64(a.cfg.Seed)^0x9e3779b97f4a7c15)) < a.cfg.KeyRate
}

// coin maps a hash to [0,1).
func coin(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// mix is splitmix64's finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Wrap returns a sampling recorder around inner at the configured
// SessionRate. The wrapper carries inner's single-logical-thread contract
// and is transparent when the session's coin came up unsampled.
func (a *Auditor) Wrap(inner kite.Session) kite.Session {
	return a.WrapRate(inner, a.cfg.SessionRate)
}

// WrapRate is Wrap with a per-session-class sampling rate: audit 100% of a
// canary class and 1% of bulk traffic by wrapping them at different rates.
func (a *Auditor) WrapRate(inner kite.Session, rate float64) kite.Session {
	a.mu.Lock()
	id := a.nsess
	a.nsess++
	a.mu.Unlock()
	sampled := rate >= 1 || coin(mix(uint64(id)^uint64(a.cfg.Seed)^0x2545f4914f6cdd1d)) < rate
	r := &recSession{inner: inner, a: a, id: int(id), sampled: sampled}
	r.Ops = kite.Ops{Doer: r}
	return r
}

// pump is the single consumer: it feeds the checker and seals a trailing
// watermark on a ticker. All checker access happens under a.mu so Report
// and Stats can snapshot concurrently.
func (a *Auditor) pump() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case m := <-a.ch:
			a.feed(m)
		case <-t.C:
			a.mu.Lock()
			a.ck.Seal(a.now() - int64(a.cfg.Grace))
			a.mu.Unlock()
		case <-a.stop:
			for {
				select {
				case m := <-a.ch:
					a.feed(m)
				default:
					a.mu.Lock()
					a.ck.Seal(math.MaxInt64)
					a.mu.Unlock()
					return
				}
			}
		}
	}
}

func (a *Auditor) feed(m streamMsg) {
	a.mu.Lock()
	if m.invoke {
		a.ck.Invoke(m.e)
	} else {
		a.ck.Observe(m.e)
	}
	a.mu.Unlock()
}

// Close stops the pump after draining the stream and sealing every
// remaining judgment (deferrals blocked on never-completed records are
// judged with census checks skipped). Wrapped sessions stay usable — their
// records are dropped and counted.
func (a *Auditor) Close() {
	select {
	case <-a.stop:
		return // already closed
	default:
	}
	close(a.stop)
	a.wg.Wait()
}

// Report snapshots the current verdicts.
func (a *Auditor) Report() *verifier.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ck.Report()
}

// Stats snapshots the coverage ledger.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	ct := a.ck.Counters()
	a.mu.Unlock()
	return Stats{
		SampledOps:    a.sampled.Load(),
		SkippedOps:    a.skipped.Load(),
		DroppedEvents: a.dropped.Load(),
		JudgedEvents:  ct.Judged,
		CheckedReads:  ct.CheckedReads,
		CensusSkips:   ct.CensusSkips,
		Evictions:     ct.Evictions,
		Retained:      ct.Retained,
	}
}

// Summary bundles Stats and Report.
func (a *Auditor) Summary() *Summary {
	return &Summary{Stats: a.Stats(), Report: a.Report()}
}
