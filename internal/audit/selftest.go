package audit

import (
	"context"
	"fmt"

	"kite"
)

// SelfTest drives a deliberately inconsistent history through the complete
// audit pipeline — sampling recorder, stream, pump, incremental checker —
// using scripted sessions whose results are staged lies: an acquire that
// returns a release one wholly-completed release stale, and two FAAs that
// both observe the same old value. A healthy pipeline reports exactly
// those violations; anything less means the audit would be blind in
// production. kite-audit -selftest and the CI smoke run this.
func SelfTest() (*Summary, error) {
	a := New(Config{})
	defer a.Close()

	releaser := a.Wrap(newScripted([]kite.Result{{}, {}}))
	acquirer := a.Wrap(newScripted([]kite.Result{{Value: []byte("r1")}}))
	faa1 := a.Wrap(newScripted([]kite.Result{{}}))
	faa2 := a.Wrap(newScripted([]kite.Result{{}}))

	if err := releaser.ReleaseWrite(9, []byte("r1")); err != nil {
		return nil, err
	}
	if err := releaser.ReleaseWrite(9, []byte("r2")); err != nil {
		return nil, err
	}
	// The acquire starts after both releases completed, yet "observes" r1:
	// one synchronisation write wholly intervened — sync-stale-read.
	if _, err := acquirer.AcquireRead(9); err != nil {
		return nil, err
	}
	// Two FAAs both "observe" old value 0 — rmw-lost-update.
	if _, err := faa1.FAA(7, 1); err != nil {
		return nil, err
	}
	if _, err := faa2.FAA(7, 1); err != nil {
		return nil, err
	}

	a.Close()
	sum := a.Summary()
	want := map[string]bool{"sync-stale-read": false, "rmw-lost-update": false}
	for _, v := range sum.Report.Violations {
		if _, ok := want[v.Kind]; ok {
			want[v.Kind] = true
		}
	}
	for kind, got := range want {
		if !got {
			return sum, fmt.Errorf("audit selftest: injected %s not reported — pipeline is blind\n%s",
				kind, sum.Report.String())
		}
	}
	return sum, nil
}

// scriptedSession returns staged results in call order — a fake deployment
// that serves whatever inconsistency the self-test stages.
type scriptedSession struct {
	kite.Ops
	results []kite.Result
	calls   int
}

func newScripted(results []kite.Result) *scriptedSession {
	s := &scriptedSession{results: results}
	s.Ops = kite.Ops{Doer: s}
	return s
}

func (s *scriptedSession) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	if s.calls >= len(s.results) {
		return kite.Result{}, nil
	}
	r := s.results[s.calls]
	s.calls++
	return r, r.Err
}

func (s *scriptedSession) DoAsync(op kite.Op, cb func(kite.Result)) {
	r, _ := s.Do(context.Background(), op)
	if cb != nil {
		cb(r)
	}
}

func (s *scriptedSession) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	out := make([]kite.Result, len(ops))
	for i, op := range ops {
		out[i], _ = s.Do(ctx, op)
	}
	return out, nil
}

func (s *scriptedSession) Close() error { return nil }
