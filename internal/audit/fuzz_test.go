package audit

import (
	"encoding/binary"
	"fmt"
	"testing"

	"kite"
	"kite/internal/history"
	"kite/internal/verifier"
)

// tape consumes fuzz bytes as decisions; exhausted tapes read zero, keeping
// every input deterministic.
type tape struct {
	d []byte
	i int
}

func (t *tape) next() byte {
	if t.i >= len(t.d) {
		return 0
	}
	b := t.d[t.i]
	t.i++
	return b
}

// FuzzAuditWindow pins the audit soundness contract: a sampled online audit
// must never report a violation the batch verifier would not report over the
// same sub-history. The fuzzer generates arbitrary (frequently genuinely
// inconsistent) multi-session histories, samples them the way the recorder
// does — per-session and per-key coins, recorder-assigned dense indices,
// best-effort invokes, suffix-only completion drops — then streams the
// sample through a Partial checker with arbitrary cross-session
// interleaving, lagging seals, and an aggressive eviction budget. Every
// violation the online pass reports must be confirmed (by kind and key) by
// the offline verifier run over exactly the observed events.
//
// Written values are unique per key (release, write, and CAS namespaces are
// disjoint), matching the verifier's documented census assumption; FAA old
// values and CAS comparands deliberately collide so real RMW violations are
// plentiful.
func FuzzAuditWindow(f *testing.F) {
	f.Add([]byte("kite-online-audit-window-seed"))
	f.Add([]byte{0x01, 0x80, 0x3c, 0xff, 0x07, 0x22, 0x9a, 0x44, 0x10, 0xee, 0x05, 0x61})
	seed := make([]byte, 256)
	x := uint64(0x2545f4914f6cdd1d)
	for i := range seed {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		seed[i] = byte(x)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tp := &tape{d: data}
		nsess := 2 + int(tp.next()%3)
		n := 8 + int(tp.next()%120)

		full := make([][]history.Event, nsess)
		vals := map[uint64][]string{} // committed write values per key
		rels := map[uint64][]string{} // release values per sync key
		clock := int64(0)
		uniq := 0
		enc := func(v uint64) []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, v)
			return b
		}

		for i := 0; i < n; i++ {
			s := int(tp.next()) % nsess
			clock += 1 + int64(tp.next()%5)
			e := history.Event{
				Session: s, Batch: -1, Outcome: history.OutcomeOK,
				Invoke: clock, Complete: clock + 1 + int64(tp.next()%20),
			}
			if tp.next()%16 == 0 {
				e.Complete = e.Invoke - 1 // malformed interval
			}
			switch k := tp.next() % 12; k {
			case 0, 1, 2, 10:
				e.Op = kite.OpWrite
				e.Key = uint64(tp.next() % 3)
				uniq++
				e.Arg = []byte(fmt.Sprintf("w%d", uniq))
				if k == 10 {
					e.Outcome = history.OutcomeMaybe
				} else {
					vals[e.Key] = append(vals[e.Key], string(e.Arg))
				}
			case 3, 4, 11:
				e.Op = kite.OpRead
				e.Key = uint64(tp.next() % 3)
				if k == 11 {
					e.Out = []byte(fmt.Sprintf("x%d", tp.next())) // thin air
				} else if vs := vals[e.Key]; len(vs) > 0 && tp.next()%4 != 0 {
					e.Out = []byte(vs[int(tp.next())%len(vs)])
				}
			case 5:
				e.Op = kite.OpRelease
				e.Key = 16 + uint64(tp.next()%2)
				uniq++
				e.Arg = []byte(fmt.Sprintf("r%d", uniq))
				rels[e.Key] = append(rels[e.Key], string(e.Arg))
			case 6, 7:
				e.Op = kite.OpAcquire
				e.Key = 16 + uint64(tp.next()%2)
				if rs := rels[e.Key]; len(rs) > 0 && tp.next()%5 != 0 {
					e.Out = []byte(rs[int(tp.next())%len(rs)])
				}
			case 8:
				e.Op = kite.OpFAA
				e.Key = 32 + uint64(tp.next()%2)
				e.Delta = 1
				e.Out = enc(uint64(tp.next() % 6)) // collisions: lost updates
			default:
				e.Op = kite.OpCASStrong
				e.Key = 32 + uint64(tp.next()%2)
				e.Expected = []byte(fmt.Sprintf("c%d", tp.next()%4))
				uniq++
				e.Arg = []byte(fmt.Sprintf("n%d", uniq))
				e.Swapped = tp.next()%2 == 0
			}
			full[s] = append(full[s], e)
		}

		// Sample with the recorder's coins: whole sessions and whole keys
		// drop out; survivors get dense recorder-assigned indices.
		keyIn := map[uint64]bool{}
		keyCoin := func(k uint64) bool {
			v, ok := keyIn[k]
			if !ok {
				v = tp.next()%8 != 0
				keyIn[k] = v
			}
			return v
		}
		sessions := make([][]history.Event, nsess)
		for s := 0; s < nsess; s++ {
			if tp.next()%8 == 0 {
				continue // unsampled session
			}
			for _, e := range full[s] {
				if !keyCoin(e.Key) {
					continue
				}
				e.Index = len(sessions[s])
				sessions[s] = append(sessions[s], e)
			}
		}

		// A per-session suffix of completions never arrives (stream shut
		// down mid-flight); the recorder guarantees drops form a suffix.
		obsLen := make([]int, nsess)
		for s := range sessions {
			obsLen[s] = len(sessions[s])
			if tp.next()%4 == 0 && obsLen[s] > 0 {
				if obsLen[s] -= int(tp.next() % 3); obsLen[s] < 0 {
					obsLen[s] = 0
				}
			}
		}

		ck := verifier.NewChecker(verifier.CheckerConfig{
			K:          1 + int(tp.next()%2),
			Partial:    true,
			MaxEvents:  4 + int(tp.next()%64),
			DeferBound: 32,
		})

		// Deliver: per session, invoke then completion in index order;
		// cross-session interleaving is arbitrary; invokes drop
		// independently; seals trail a lagging watermark.
		type cursor struct {
			idx     int
			invoked bool
		}
		cur := make([]cursor, nsess)
		wm := int64(0)
		done := func(s int) bool { return cur[s].idx >= len(sessions[s]) }
		for {
			s := int(tp.next()) % nsess
			for tries := 0; done(s) && tries < nsess; tries++ {
				s = (s + 1) % nsess
			}
			if done(s) {
				break
			}
			c := &cur[s]
			e := sessions[s][c.idx]
			if !c.invoked {
				c.invoked = true
				if tp.next()%4 != 0 {
					iv := e
					iv.Complete = -1
					iv.Out, iv.Swapped = nil, false
					ck.Invoke(iv)
				}
				continue
			}
			c.idx++
			c.invoked = false
			if e.Index >= obsLen[s] {
				continue // completion dropped
			}
			ck.Observe(e)
			if e.Complete > wm {
				wm = e.Complete
			}
			if tp.next()%3 == 0 {
				ck.Seal(wm - int64(tp.next()%16))
			}
		}
		online := ck.Finish()

		// Oracle: the batch verifier over exactly the observed sub-history.
		var observed []history.Event
		for s := range sessions {
			observed = append(observed, sessions[s][:obsLen[s]]...)
		}
		batch := verifier.CheckK(&history.Recorded{Events: observed}, online.K)
		if batch.Truncated > 0 {
			return // oracle clipped its own report; containment undecidable
		}
		type vk struct {
			kind string
			key  uint64
		}
		confirmed := map[vk]bool{}
		for _, v := range batch.Violations {
			confirmed[vk{v.Kind, v.Key}] = true
		}
		for _, v := range online.Violations {
			if !confirmed[vk{v.Kind, v.Key}] {
				t.Fatalf("online audit invented violation [%s] key %d: %s\nbatch oracle over the same sub-history says:\n%s",
					v.Kind, v.Key, v.Msg, batch.String())
			}
		}
	})
}
