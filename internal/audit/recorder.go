package audit

import (
	"context"
	"sync"

	"kite"
	"kite/internal/history"
)

// recSession is the sampling recorder around one live session. It is
// transparent: every call forwards to the wrapped session; sampled
// operations additionally emit an invoke record at submission and a
// completion record when the result lands.
//
// The checker requires each recording session's completion records in
// dense index order. Completions normally arrive in submission order (the
// Session contract), but a Do result returns on the caller's goroutine
// while an earlier DoAsync callback may still be in flight — so the
// recorder holds completions back and releases them strictly in index
// order. Invoke records carry no ordering contract and are sent
// best-effort (dropped under backpressure); completion records block on
// the stream, and once the auditor is closed they drop as a suffix, never
// opening a gap.
type recSession struct {
	kite.Ops
	inner   kite.Session
	a       *Auditor
	id      int
	sampled bool

	mu       sync.Mutex
	next     int // dense index among sampled ops
	nbatch   int
	nextDone int                   // next completion index to release
	done     map[int]history.Event // held-back out-of-order completions
}

// record decides the two sampling coins for one op. Flushes touch no key
// and are invisible to every check; they are never recorded (and the
// recorder's indices stay dense without them).
func (r *recSession) record(op kite.Op) bool {
	if !r.sampled || op.Code == kite.OpFlush || !r.a.keySampled(op.Key) {
		r.a.skipped.Add(1)
		return false
	}
	return true
}

// begin assigns the next dense index, emits the invoke record
// (best-effort) and returns the pending event for end to complete.
func (r *recSession) begin(op kite.Op, batch int) history.Event {
	r.mu.Lock()
	idx := r.next
	r.next++
	r.mu.Unlock()
	ev := history.Event{
		Session: r.id, Index: idx, Op: op.Code, Key: op.Key,
		Arg: cloneBytes(op.Value), Expected: cloneBytes(op.Expected), Delta: op.Delta,
		Batch: batch, Invoke: r.a.now(), Complete: -1,
	}
	r.a.sampled.Add(1)
	select {
	case r.a.ch <- streamMsg{invoke: true, e: ev}:
	default:
		r.a.dropped.Add(1)
	}
	return ev
}

// end stamps the result onto the pending event and releases completions in
// index order.
func (r *recSession) end(ev history.Event, res kite.Result) {
	ev.Complete = r.a.now()
	ev.Out = cloneBytes(res.Value)
	ev.Swapped = res.Swapped
	if res.Err == nil {
		ev.Outcome = history.OutcomeOK
	} else {
		ev.Outcome = history.Classify(res.Err)
		ev.Err = res.Err.Error()
	}
	r.release(ev)
}

func (r *recSession) release(ev history.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done == nil {
		r.done = make(map[int]history.Event)
	}
	r.done[ev.Index] = ev
	for {
		next, ok := r.done[r.nextDone]
		if !ok {
			return
		}
		delete(r.done, r.nextDone)
		r.nextDone++
		r.send(next)
	}
}

// send delivers one completion record, blocking on stream backpressure.
// After Close every completion drops (counted); because the drop condition
// is monotonic, dropped completions are always a suffix of the session's
// stream — the checker never sees an index gap.
func (r *recSession) send(ev history.Event) {
	select {
	case <-r.a.stop:
		r.a.dropped.Add(1)
		return
	default:
	}
	select {
	case r.a.ch <- streamMsg{e: ev}:
	case <-r.a.stop:
		r.a.dropped.Add(1)
	}
}

// Do records one synchronous operation.
func (r *recSession) Do(ctx context.Context, op kite.Op) (kite.Result, error) {
	if !r.record(op) {
		return r.inner.Do(ctx, op)
	}
	ev := r.begin(op, -1)
	res, err := r.inner.Do(ctx, op)
	r.end(ev, res)
	return res, err
}

// DoAsync records an asynchronous operation; the completion record is
// emitted from the backend's callback.
func (r *recSession) DoAsync(op kite.Op, cb func(kite.Result)) {
	if !r.record(op) {
		r.inner.DoAsync(op, cb)
		return
	}
	ev := r.begin(op, -1)
	r.inner.DoAsync(op, func(res kite.Result) {
		r.end(ev, res)
		if cb != nil {
			cb(res)
		}
	})
}

// DoBatch records the sampled ops of the batch under one batch id. A
// rejected batch (nil results) provably executed nothing: its events
// complete with OutcomeNever.
func (r *recSession) DoBatch(ctx context.Context, ops []kite.Op) ([]kite.Result, error) {
	recorded := make([]bool, len(ops))
	any := false
	for i, op := range ops {
		if r.record(op) {
			recorded[i] = true
			any = true
		}
	}
	if !any {
		return r.inner.DoBatch(ctx, ops)
	}
	r.mu.Lock()
	batch := r.nbatch
	r.nbatch++
	r.mu.Unlock()
	evs := make([]history.Event, len(ops))
	for i, op := range ops {
		if recorded[i] {
			evs[i] = r.begin(op, batch)
		}
	}
	results, err := r.inner.DoBatch(ctx, ops)
	for i := range ops {
		if !recorded[i] {
			continue
		}
		switch {
		case results != nil:
			r.end(evs[i], results[i])
		case err != nil:
			// All-or-nothing rejection: no op consumed a session slot.
			ev := evs[i]
			ev.Complete = r.a.now()
			ev.Outcome = history.OutcomeNever
			ev.Err = err.Error()
			r.release(ev)
		default:
			r.end(evs[i], kite.Result{})
		}
	}
	return results, err
}

// Close closes the wrapped session.
func (r *recSession) Close() error { return r.inner.Close() }

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
