// Package audit is the online half of Kite's consistency story: a
// sampling verifier that runs against a live deployment instead of over a
// recorded run. internal/verifier judges finished histories after the
// fact; this package wraps production sessions in a sampling recorder and
// streams the sampled invoke/complete records through the same incremental
// Checker, so violations surface while the deployment is serving — the
// chaos stack turned from a nightly batch job into a standing safety net.
//
// # Architecture
//
// Auditor.Wrap turns any kite.Session into a sampling recorder. Whether an
// operation is recorded is decided by two deterministic coins: a per-key
// coin (a salted hash of the key against Config.KeyRate — the same key is
// sampled everywhere or nowhere, so per-key checks see complete
// sub-histories) and a per-session coin (Config.SessionRate, decided at
// Wrap). Sampled operations emit two records — one at invocation (carrying
// the written value, so the key's value census is complete before any read
// of that value is judged) and one at completion — onto a bounded channel.
// A single pump goroutine drains the channel into a verifier.Checker in
// Partial mode and periodically seals a watermark Config.Grace behind the
// present, judging every event the watermark has passed. The checker
// retains at most Config.MaxEvents judged events; beyond that the oldest
// are evicted from every index and counted.
//
// # Soundness
//
// Sampling may miss violations; it must never invent them. Every check the
// partial-mode checker runs is existential over the observed subset: a
// reported violation is witnessed entirely by operations that really
// executed, with their real values and real time intervals, under
// preserved per-session program order (the recorder assigns its own dense
// indices to sampled events). Removing events — an unsampled key, an
// unsampled session, a dropped record, an evicted window — only removes
// potential witnesses: a value-census miss makes a check skip, never fire.
// The one check that is universal over writers ("read-from-nowhere":
// NOBODY wrote this value) is suppressed in partial mode, because under
// sampling the true writer may simply not have been recorded. The checks
// assume written values are unique per key (as the offline verifier does);
// the audit prober and the chaos workload guarantee it, and duplicate
// values degrade toward missed violations, not false ones.
//
// FuzzAuditWindow pins the contract: random sampled interleavings with
// out-of-order completion, dropped records and aggressive eviction are
// oracle-checked against the batch verifier on the same sub-history.
package audit
