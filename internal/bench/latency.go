package bench

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kite"
)

// The latency study: per-class completion latencies under the closed-loop
// mixed workload. Throughput figures hide the asymmetry the protocol is
// built around — relaxed reads complete locally, relaxed writes after a
// local apply, while releases/acquires pay an ABD quorum and RMWs a Paxos
// round — so this figure reports p50/p99 per operation class. It is also
// the companion to the durability figure: re-run with -fig latency against
// a WAL deployment to see what group-commit adds to the write tail.

// latSample is one completed operation's measured latency.
type latSample struct {
	class kite.OpCode
	d     time.Duration
}

// LatencyClass summarises one operation class's distribution.
type LatencyClass struct {
	Class    string  `json:"class"`
	Count    int     `json:"count"`
	P50Micro float64 `json:"p50_us"`
	P99Micro float64 `json:"p99_us"`
}

// LatencyReport is the machine-readable output of FigureLatency.
type LatencyReport struct {
	Name       string         `json:"name"`
	Nodes      int            `json:"nodes"`
	Workers    int            `json:"workers"`
	Sessions   int            `json:"sessions_per_worker"`
	Keys       uint64         `json:"keys"`
	Measure    time.Duration  `json:"measure_ns"`
	Window     int            `json:"window"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Overall    LatencyClass   `json:"overall"`
	Classes    []LatencyClass `json:"classes"`
	// Local-acquire fast path (DESIGN.md "Local reads"): hit/fallback
	// counters summed over all replicas of the measured (fast-path) pass,
	// and the same mix re-measured with Options.DisableLocalAcquires — the
	// ABD baseline acquires paid before this PR — for the before/after
	// comparison in one report.
	LocalAcqHits    uint64         `json:"local_acq_hits"`
	AcqFallbacks    uint64         `json:"acq_fallbacks"`
	LocalAcqHitRate float64        `json:"local_acq_hit_rate"`
	Baseline        []LatencyClass `json:"baseline_classes"`
	// RelaxedMreqs is a 100%-relaxed-write throughput point at the same
	// deployment options — directly comparable to the durability figure's
	// "off" series (BENCH_3). It guards the validate broadcast's cost: the
	// batched validates that power local acquires must not tax relaxed
	// write throughput.
	RelaxedMreqs float64 `json:"relaxed_write_mreqs"`
}

// FigureLatency measures completion latencies on a mix that exercises every
// class (40% writes of which 10% RMWs, 20% of accesses synchronising). It
// runs the mix twice — once with acquires allowed to hit the local-read
// fast path, once forced onto the ABD quorum read (DisableLocalAcquires) —
// plus a 100%-relaxed throughput point, so one report shows what local
// acquires buy and what their validate broadcasts cost.
func FigureLatency(fc FigureConfig) (*LatencyReport, error) {
	o := KiteOpts{
		Name:    "latency",
		Options: fc.kiteOptions(),
		Mix:     Mix{WriteRatio: 0.40, SyncFrac: 0.20, RMWFrac: 0.10},
		Keys:    fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
	}
	o.defaults()

	baseOpts := o
	baseOpts.Options.DisableLocalAcquires = true
	baseline, err := runLatency(baseOpts)
	if err != nil {
		return nil, err
	}
	fast, err := runLatency(o)
	if err != nil {
		return nil, err
	}
	relaxed, err := RunKite(KiteOpts{
		Name: "latency-relaxed", Options: fc.kiteOptions(),
		Mix:  Mix{WriteRatio: 1.0},
		Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
	})
	if err != nil {
		return nil, err
	}

	rep := &LatencyReport{
		Name:       "latency",
		Nodes:      fc.Nodes,
		Workers:    fc.Workers,
		Sessions:   fc.SessionsPerWorker,
		Keys:       fc.Keys,
		Measure:    fc.Measure,
		Window:     o.Window,
		GoMaxProcs: runtime.GOMAXPROCS(0),

		LocalAcqHits: fast.hits,
		AcqFallbacks: fast.falls,
		RelaxedMreqs: relaxed.Mreqs(),
	}
	if total := fast.hits + fast.falls; total > 0 {
		rep.LocalAcqHitRate = float64(fast.hits) / float64(total)
	}

	group := func(samples []latSample) (map[kite.OpCode][]time.Duration, []time.Duration) {
		byClass := map[kite.OpCode][]time.Duration{}
		var all []time.Duration
		for _, s := range samples {
			byClass[s.class] = append(byClass[s.class], s.d)
			all = append(all, s.d)
		}
		return byClass, all
	}
	fastBy, fastAll := group(fast.samples)
	baseBy, baseAll := group(baseline.samples)
	rep.Overall = summarise("all", fastAll)

	classes := []struct {
		code kite.OpCode
		name string
	}{
		{kite.OpRead, "read"}, {kite.OpWrite, "write"},
		{kite.OpRelease, "release"}, {kite.OpAcquire, "acquire"},
		{kite.OpFAA, "faa"},
	}
	fc.printf("# Latency: per-class completion latency, %d nodes (closed loop, window %d)\n",
		fc.Nodes, o.Window)
	fc.printf("# local acquires: hits=%d fallbacks=%d hit-rate=%.1f%% (abd-* = DisableLocalAcquires baseline)\n",
		rep.LocalAcqHits, rep.AcqFallbacks, 100*rep.LocalAcqHitRate)
	fc.printf("%-10s %10s %12s %12s %12s %12s\n",
		"class", "count", "p50(us)", "p99(us)", "abd-p50(us)", "abd-p99(us)")
	for _, cl := range classes {
		lc := summarise(cl.name, fastBy[cl.code])
		bl := summarise(cl.name, baseBy[cl.code])
		rep.Classes = append(rep.Classes, lc)
		rep.Baseline = append(rep.Baseline, bl)
		fc.printf("%-10s %10d %12.1f %12.1f %12.1f %12.1f\n",
			lc.Class, lc.Count, lc.P50Micro, lc.P99Micro, bl.P50Micro, bl.P99Micro)
	}
	blAll := summarise("all", baseAll)
	fc.printf("%-10s %10d %12.1f %12.1f %12.1f %12.1f\n", "all",
		rep.Overall.Count, rep.Overall.P50Micro, rep.Overall.P99Micro,
		blAll.P50Micro, blAll.P99Micro)
	fc.printf("# relaxed-write throughput (validate-broadcast cost guard): %.3f mreqs\n",
		rep.RelaxedMreqs)
	return rep, nil
}

func summarise(name string, ds []time.Duration) LatencyClass {
	lc := LatencyClass{Class: name, Count: len(ds)}
	if len(ds) == 0 {
		return lc
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(ds)-1))
		return float64(ds[idx].Nanoseconds()) / 1e3
	}
	lc.P50Micro = pct(0.50)
	lc.P99Micro = pct(0.99)
	return lc
}

// latRun is one runLatency pass: the measurement window's merged samples
// plus the cluster-wide local-acquire hit/fallback counters at teardown.
type latRun struct {
	samples     []latSample
	hits, falls uint64
}

// runLatency boots the deployment of o, prefills the key range, and drives
// every session with the latency-recording closed-loop driver, returning
// the merged samples of the measurement window.
func runLatency(o KiteOpts) (latRun, error) {
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return latRun{}, err
	}
	defer c.Close()
	prefillLatency(c, o)

	var counting, stop atomic.Bool
	var wg sync.WaitGroup
	var mu sync.Mutex
	var merged []latSample
	for n := 0; n < c.Nodes(); n++ {
		for si := 0; si < c.SessionsPerNode(); si++ {
			wg.Add(1)
			go func(s kite.Session, seed int64) {
				defer wg.Done()
				// The per-session slice is appended only here; merge under
				// the mutex once the driver winds down.
				own := driveLatencySession(s, o, seed, &counting, &stop)
				mu.Lock()
				merged = append(merged, own...)
				mu.Unlock()
			}(c.Session(n, si), int64(n*1000+si+13))
		}
	}
	time.Sleep(o.Warmup)
	counting.Store(true)
	time.Sleep(o.Measure)
	counting.Store(false)
	stop.Store(true)
	wg.Wait()

	run := latRun{samples: merged}
	for n := 0; n < c.Nodes(); n++ {
		st := c.NodeStats(n)
		run.hits += st.LocalAcqHits
		run.falls += st.AcqFallbacks
	}
	return run, nil
}

// prefillLatency writes every key once (relaxed, pipelined, one session per
// node over a partitioned key range) before the drivers start, so measured
// acquires face keys in steady state: a never-written key reads back empty,
// and an empty value is never served by the local-acquire fast path — an
// unfilled store would understate the hit rate the fast path reaches in
// practice. The trailing sleep (plus the driver warmup) lets the writes'
// full-acks and validate broadcasts land before measurement begins.
func prefillLatency(c *kite.Cluster, o KiteOpts) {
	nodes := c.Nodes()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			s := c.Session(n, 0)
			val := make([]byte, o.ValLen)
			rand.New(rand.NewSource(int64(n + 1))).Read(val)
			sem := make(chan struct{}, o.Window)
			for k := uint64(n); k < o.Keys; k += uint64(nodes) {
				sem <- struct{}{}
				s.DoAsync(kite.Op{Code: kite.OpWrite, Key: k, Value: val},
					func(kite.Result) { <-sem })
			}
			for i := 0; i < cap(sem); i++ {
				sem <- struct{}{}
			}
		}(n)
	}
	wg.Wait()
	time.Sleep(100 * time.Millisecond)
}

// driveLatencySession is driveSession with timing: the completion callback
// computes the elapsed time and hands it back through the window channel,
// so the sample slice is touched only by this goroutine.
func driveLatencySession(s kite.Session, o KiteOpts, seed int64,
	counting, stop *atomic.Bool) []latSample {

	rng := rand.New(rand.NewSource(seed))
	th := o.Mix.thresholds()
	val := make([]byte, o.ValLen)
	rng.Read(val)

	var samples []latSample
	slots := make(chan latSample, o.Window)
	collect := func(sm latSample) {
		if sm.d >= 0 {
			samples = append(samples, sm)
		}
	}
	inflight := 0
	for {
		if stop.Load() {
			for ; inflight > 0; inflight-- {
				collect(<-slots)
			}
			return samples
		}
		if inflight == o.Window {
			collect(<-slots)
			inflight--
		}
		op := kite.Op{Code: codeFor(th.pick(rng.Float64())), Key: rng.Uint64() % o.Keys}
		switch op.Code {
		case kite.OpWrite, kite.OpRelease:
			op.Value = val
		case kite.OpFAA:
			op.Delta = 1
		}
		class := op.Code
		measured := counting.Load()
		issued := time.Now()
		s.DoAsync(op, func(r kite.Result) {
			d := time.Duration(-1) // sentinel: not measured
			if r.Err == nil && measured {
				d = time.Since(issued)
			}
			slots <- latSample{class: class, d: d}
		})
		inflight++
	}
}
