package bench

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kite"
)

// The latency study: per-class completion latencies under the closed-loop
// mixed workload. Throughput figures hide the asymmetry the protocol is
// built around — relaxed reads complete locally, relaxed writes after a
// local apply, while releases/acquires pay an ABD quorum and RMWs a Paxos
// round — so this figure reports p50/p99 per operation class. It is also
// the companion to the durability figure: re-run with -fig latency against
// a WAL deployment to see what group-commit adds to the write tail.

// latSample is one completed operation's measured latency.
type latSample struct {
	class kite.OpCode
	d     time.Duration
}

// LatencyClass summarises one operation class's distribution.
type LatencyClass struct {
	Class    string  `json:"class"`
	Count    int     `json:"count"`
	P50Micro float64 `json:"p50_us"`
	P99Micro float64 `json:"p99_us"`
}

// LatencyReport is the machine-readable output of FigureLatency.
type LatencyReport struct {
	Name       string         `json:"name"`
	Nodes      int            `json:"nodes"`
	Workers    int            `json:"workers"`
	Sessions   int            `json:"sessions_per_worker"`
	Keys       uint64         `json:"keys"`
	Measure    time.Duration  `json:"measure_ns"`
	Window     int            `json:"window"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Overall    LatencyClass   `json:"overall"`
	Classes    []LatencyClass `json:"classes"`
}

// FigureLatency measures completion latencies on a mix that exercises every
// class (40% writes of which 10% RMWs, 20% of accesses synchronising).
func FigureLatency(fc FigureConfig) (*LatencyReport, error) {
	o := KiteOpts{
		Name:    "latency",
		Options: fc.kiteOptions(),
		Mix:     Mix{WriteRatio: 0.40, SyncFrac: 0.20, RMWFrac: 0.10},
		Keys:    fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
	}
	o.defaults()
	samples, err := runLatency(o)
	if err != nil {
		return nil, err
	}
	rep := &LatencyReport{
		Name:       "latency",
		Nodes:      fc.Nodes,
		Workers:    fc.Workers,
		Sessions:   fc.SessionsPerWorker,
		Keys:       fc.Keys,
		Measure:    fc.Measure,
		Window:     o.Window,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	byClass := map[kite.OpCode][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s.d)
		all = append(all, s.d)
	}
	rep.Overall = summarise("all", all)
	classes := []struct {
		code kite.OpCode
		name string
	}{
		{kite.OpRead, "read"}, {kite.OpWrite, "write"},
		{kite.OpRelease, "release"}, {kite.OpAcquire, "acquire"},
		{kite.OpFAA, "faa"},
	}
	fc.printf("# Latency: per-class completion latency, %d nodes (closed loop, window %d)\n",
		fc.Nodes, o.Window)
	fc.printf("%-10s %10s %12s %12s\n", "class", "count", "p50(us)", "p99(us)")
	for _, cl := range classes {
		lc := summarise(cl.name, byClass[cl.code])
		rep.Classes = append(rep.Classes, lc)
		fc.printf("%-10s %10d %12.1f %12.1f\n", lc.Class, lc.Count, lc.P50Micro, lc.P99Micro)
	}
	fc.printf("%-10s %10d %12.1f %12.1f\n", "all",
		rep.Overall.Count, rep.Overall.P50Micro, rep.Overall.P99Micro)
	return rep, nil
}

func summarise(name string, ds []time.Duration) LatencyClass {
	lc := LatencyClass{Class: name, Count: len(ds)}
	if len(ds) == 0 {
		return lc
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(ds)-1))
		return float64(ds[idx].Nanoseconds()) / 1e3
	}
	lc.P50Micro = pct(0.50)
	lc.P99Micro = pct(0.99)
	return lc
}

// runLatency boots the deployment of o and drives every session with the
// latency-recording closed-loop driver, returning the merged samples of
// the measurement window.
func runLatency(o KiteOpts) ([]latSample, error) {
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	var counting, stop atomic.Bool
	var wg sync.WaitGroup
	var mu sync.Mutex
	var merged []latSample
	for n := 0; n < c.Nodes(); n++ {
		for si := 0; si < c.SessionsPerNode(); si++ {
			wg.Add(1)
			go func(s kite.Session, seed int64) {
				defer wg.Done()
				// The per-session slice is appended only here; merge under
				// the mutex once the driver winds down.
				own := driveLatencySession(s, o, seed, &counting, &stop)
				mu.Lock()
				merged = append(merged, own...)
				mu.Unlock()
			}(c.Session(n, si), int64(n*1000+si+13))
		}
	}
	time.Sleep(o.Warmup)
	counting.Store(true)
	time.Sleep(o.Measure)
	counting.Store(false)
	stop.Store(true)
	wg.Wait()
	return merged, nil
}

// driveLatencySession is driveSession with timing: the completion callback
// computes the elapsed time and hands it back through the window channel,
// so the sample slice is touched only by this goroutine.
func driveLatencySession(s kite.Session, o KiteOpts, seed int64,
	counting, stop *atomic.Bool) []latSample {

	rng := rand.New(rand.NewSource(seed))
	th := o.Mix.thresholds()
	val := make([]byte, o.ValLen)
	rng.Read(val)

	var samples []latSample
	slots := make(chan latSample, o.Window)
	collect := func(sm latSample) {
		if sm.d >= 0 {
			samples = append(samples, sm)
		}
	}
	inflight := 0
	for {
		if stop.Load() {
			for ; inflight > 0; inflight-- {
				collect(<-slots)
			}
			return samples
		}
		if inflight == o.Window {
			collect(<-slots)
			inflight--
		}
		op := kite.Op{Code: codeFor(th.pick(rng.Float64())), Key: rng.Uint64() % o.Keys}
		switch op.Code {
		case kite.OpWrite, kite.OpRelease:
			op.Value = val
		case kite.OpFAA:
			op.Delta = 1
		}
		class := op.Code
		measured := counting.Load()
		issued := time.Now()
		s.DoAsync(op, func(r kite.Result) {
			d := time.Duration(-1) // sentinel: not measured
			if r.Err == nil && measured {
				d = time.Since(issued)
			}
			slots <- latSample{class: class, d: d}
		})
		inflight++
	}
}
