package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/derecho"
	"kite/internal/zab"
)

// ZabOpts parameterises a ZAB baseline run (reads are local, writes are
// leader-ordered; the Mix's sync and RMW fractions are meaningless here —
// every ZAB write already has total-order semantics).
type ZabOpts struct {
	Name       string
	Config     zab.Config
	WriteRatio float64
	Keys       uint64
	ValLen     int
	Window     int
	Warmup     time.Duration
	Measure    time.Duration
}

func (o *ZabOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 500 * time.Millisecond
	}
}

// RunZab measures the ZAB baseline under the given read/write mix.
func RunZab(o ZabOpts) Result {
	o.defaults()
	c := zab.NewCluster(o.Config)
	defer c.Close()

	var counting, stop atomic.Bool
	stopCh := make(chan struct{})
	var counted atomic.Uint64
	var wg sync.WaitGroup
	for n := 0; n < c.Nodes(); n++ {
		nd := c.Node(n)
		for si := 0; si < nd.Sessions(); si++ {
			wg.Add(1)
			go func(s *zab.Session, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				val := make([]byte, o.ValLen)
				rng.Read(val)
				// slots carries write completions (as in driveSession):
				// inflight = issued - completed, capped at Window.
				slots := make(chan struct{}, o.Window)
				inflight := 0
				for {
					if stop.Load() {
						drainSlots(slots, inflight)
						return
					}
					key := rng.Uint64() % o.Keys
					if rng.Float64() < o.WriteRatio {
						if inflight == o.Window {
							// The baseline has no retransmission: a lost
							// message strands its completion, so this wait
							// must stay interruptible or an unlucky run
							// wedges the harness.
							select {
							case <-slots:
								inflight--
							case <-stopCh:
								continue // loop head drains and exits
							}
						}
						s.WriteAsync(key, val, func() {
							if counting.Load() {
								counted.Add(1)
							}
							slots <- struct{}{}
						})
						inflight++
					} else {
						s.Read(key)
						if counting.Load() {
							counted.Add(1)
						}
					}
				}
			}(nd.Session(si), int64(n*1000+si))
		}
	}

	time.Sleep(o.Warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(o.Measure)
	counting.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	close(stopCh)
	wg.Wait()
	return Result{Name: o.Name, Ops: counted.Load(), Duration: elapsed}
}

// drainSlots waits briefly for outstanding async completions to return
// their window tokens, so teardown does not race in-flight callbacks —
// but bounded: the ZAB/Derecho baselines have no retransmission, so a
// token stranded by a lost message must not hang the harness.
func drainSlots(slots chan struct{}, inflight int) {
	deadline := time.After(2 * time.Second)
	for ; inflight > 0; inflight-- {
		select {
		case <-slots:
		case <-deadline:
			return
		}
	}
}

// DerechoOpts parameterises the Derecho-like SMR baseline (write-only sends,
// matching §8.2's write-only study).
type DerechoOpts struct {
	Name    string
	Config  derecho.Config
	Keys    uint64
	ValLen  int
	Window  int
	Warmup  time.Duration
	Measure time.Duration
}

func (o *DerechoOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 500 * time.Millisecond
	}
}

// RunDerecho measures ordered or unordered atomic multicast throughput
// (completed local sends per second across the deployment).
func RunDerecho(o DerechoOpts) Result {
	o.defaults()
	c := derecho.NewCluster(o.Config)
	defer c.Close()

	var counting, stop atomic.Bool
	stopCh := make(chan struct{})
	var counted atomic.Uint64
	var wg sync.WaitGroup
	for n := 0; n < o.Config.Nodes; n++ {
		nd := c.Node(n)
		wg.Add(1)
		go func(nd *derecho.Node, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, o.ValLen)
			rng.Read(val)
			// See RunZab: completion tokens, interruptible waits.
			slots := make(chan struct{}, o.Window)
			inflight := 0
			for {
				if stop.Load() {
					drainSlots(slots, inflight)
					return
				}
				if inflight == o.Window {
					select {
					case <-slots:
						inflight--
					case <-stopCh:
						continue
					}
				}
				nd.Send(1+rng.Uint64()%o.Keys, val, func() {
					if counting.Load() {
						counted.Add(1)
					}
					slots <- struct{}{}
				})
				inflight++
			}
		}(nd, int64(n))
	}

	time.Sleep(o.Warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(o.Measure)
	counting.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	close(stopCh)
	wg.Wait()
	return Result{Name: o.Name, Ops: counted.Load(), Duration: elapsed}
}
