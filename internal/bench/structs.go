package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/dstruct"
)

// StructKind selects the §8.3 workload.
type StructKind uint8

// Data-structure workloads of Figure 8.
const (
	TreiberStack StructKind = iota
	MSQueue
	HMList
)

func (k StructKind) String() string {
	switch k {
	case TreiberStack:
		return "TS"
	case MSQueue:
		return "MSQ"
	default:
		return "HML"
	}
}

// StructOpts parameterises a Figure-8 run.
type StructOpts struct {
	Name    string
	Kind    StructKind
	Fields  int // payload fields per object (4 or 32 in the paper)
	Options kite.Options
	// Structs is the number of data-structure instances (paper: 5000).
	Structs int
	// SessionsPerNode drives this many concurrent sessions per replica.
	SessionsPerNode int
	// Private gives each session its own instance — the conflict-free
	// "Kite-ideal" upper bound of §8.3.
	Private bool
	// WeakCAS enables the weak compare-and-swap (§6.1) in the ports.
	WeakCAS bool
	Warmup  time.Duration
	Measure time.Duration
	// ListKeys bounds HML sort-key range per list.
	ListKeys uint64
}

func (o *StructOpts) defaults() {
	if o.Fields == 0 {
		o.Fields = 4
	}
	if o.Structs == 0 {
		o.Structs = 64
	}
	if o.SessionsPerNode == 0 {
		o.SessionsPerNode = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 500 * time.Millisecond
	}
	if o.ListKeys == 0 {
		o.ListKeys = 16
	}
}

// StructResult reports a Figure-8 measurement: structure operations per
// second (one op = push+pop pair, enqueue+dequeue pair, or insert+delete
// pair) plus the underlying Kite API request counts, which give the
// sync-per metric (§8.3) and the ZAB-ideal conversion factors.
type StructResult struct {
	Name     string
	Ops      uint64 // structure op pairs completed
	Duration time.Duration
	// APICalls counts Kite API requests issued during the whole run, for
	// deriving requests-per-op and the effective write ratio.
	APIReads, APIWrites, APISync, APIRMW uint64
}

// Mops returns structure operation pairs per second in millions.
func (r StructResult) Mops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e6
}

// ReqsPerOp returns Kite API requests per structure op pair.
func (r StructResult) ReqsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.APIReads+r.APIWrites+r.APISync+r.APIRMW) / float64(r.Ops)
}

// WriteRatio returns the effective write ratio of the workload (writes,
// releases and RMWs over all requests) — the input to the ZAB-ideal bound.
func (r StructResult) WriteRatio() float64 {
	total := r.APIReads + r.APIWrites + r.APISync + r.APIRMW
	if total == 0 {
		return 0
	}
	// Half the sync ops are acquires (reads); writes+RMWs plus releases.
	return (float64(r.APIWrites) + float64(r.APISync)/2 + float64(r.APIRMW)) / float64(total)
}

// SyncPer returns the fraction of requests that synchronise (the paper's
// "sync-per", which correlates with the Kite/ZAB gap).
func (r StructResult) SyncPer() float64 {
	total := r.APIReads + r.APIWrites + r.APISync + r.APIRMW
	if total == 0 {
		return 0
	}
	return (float64(r.APISync) + float64(r.APIRMW)) / float64(total)
}

// RunStructs measures one Figure-8 workload.
func RunStructs(o StructOpts) (StructResult, error) {
	o.defaults()
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return StructResult{}, err
	}
	defer c.Close()

	// Key layout: instance i anchors at (i+1) * 16.
	anchor := func(i int) uint64 { return uint64(i+1) * 16 }

	// Initialise queues (stacks and lists need no init).
	if o.Kind == MSQueue {
		setup := c.Session(0, 0)
		n := o.Structs
		if o.Private {
			n = c.Nodes() * o.SessionsPerNode
		}
		for i := 0; i < n; i++ {
			if err := dstruct.InitQueue(setup, anchor(i), o.Fields, uint64(1<<20+i)); err != nil {
				return StructResult{}, err
			}
		}
	}

	var counting, stop atomic.Bool
	var pairs atomic.Uint64
	var wg sync.WaitGroup
	var firstErr atomic.Value

	sessIdx := 0
	for n := 0; n < c.Nodes(); n++ {
		for si := 0; si < o.SessionsPerNode && si < c.SessionsPerNode(); si++ {
			owner := uint64(n)<<16 | uint64(si)
			myStruct := sessIdx
			sessIdx++
			wg.Add(1)
			go func(n, si int, owner uint64, myStruct int) {
				defer wg.Done()
				sess := c.Session(n, si)
				rng := rand.New(rand.NewSource(int64(owner)))
				fields := make([][]byte, o.Fields)
				for i := range fields {
					fields[i] = make([]byte, 32)
					rng.Read(fields[i])
				}
				// Handles are created once per (session, instance): a
				// handle owns a node-key arena, and arenas must never be
				// recreated mid-run (key reuse would corrupt live nodes).
				stacks := map[int]*dstruct.Stack{}
				queues := map[int]*dstruct.Queue{}
				lists := map[int]*dstruct.List{}
				for !stop.Load() {
					inst := myStruct
					if !o.Private {
						inst = rng.Intn(o.Structs)
					}
					instOwner := owner<<12 | uint64(inst&0xfff)
					var err error
					switch o.Kind {
					case TreiberStack:
						st := stacks[inst]
						if st == nil {
							st = dstruct.NewStack(sess, anchor(inst), o.Fields, instOwner, o.WeakCAS)
							stacks[inst] = st
						}
						err = stackPair(st, o, fields)
					case MSQueue:
						q := queues[inst]
						if q == nil {
							q = dstruct.NewQueue(sess, anchor(inst), o.Fields, instOwner, o.WeakCAS)
							queues[inst] = q
						}
						err = queuePair(q, o, fields)
					default:
						l := lists[inst]
						if l == nil {
							l = dstruct.NewList(sess, anchor(inst), o.Fields, instOwner, o.WeakCAS)
							lists[inst] = l
						}
						err = listPair(l, o, rng, fields)
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					if counting.Load() {
						pairs.Add(1)
					}
				}
			}(n, si, owner, myStruct)
		}
	}

	time.Sleep(o.Warmup)
	before := apiCounts(c)
	counting.Store(true)
	start := time.Now()
	time.Sleep(o.Measure)
	counting.Store(false)
	elapsed := time.Since(start)
	after := apiCounts(c)
	stop.Store(true)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return StructResult{}, err
	}

	return StructResult{
		Name: o.Name, Ops: pairs.Load(), Duration: elapsed,
		APIReads:  after[0] - before[0],
		APIWrites: after[1] - before[1],
		APISync:   after[2] - before[2],
		APIRMW:    after[3] - before[3],
	}, nil
}

// stackPair is the §8.3 Treiber stack unit of work: push an object then pop
// one; popping immediately after pushing guarantees pops never see an empty
// stack, so every pop pays its full cost.
func stackPair(st *dstruct.Stack, o StructOpts, fields [][]byte) error {
	if _, err := st.Push(fields); err != nil {
		return err
	}
	popped, ok, err := st.Pop()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bench: pop found empty stack (correctness check, §8.3)")
	}
	if len(popped) != o.Fields {
		return dstruct.ErrCorrupt
	}
	return nil
}

func queuePair(q *dstruct.Queue, o StructOpts, fields [][]byte) error {
	if err := q.Enqueue(fields); err != nil {
		return err
	}
	got, ok, err := q.Dequeue()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bench: dequeue found empty queue after enqueue")
	}
	if len(got) != o.Fields {
		return dstruct.ErrCorrupt
	}
	return nil
}

func listPair(l *dstruct.List, o StructOpts, rng *rand.Rand, fields [][]byte) error {
	k := 1 + rng.Uint64()%o.ListKeys
	if _, err := l.Insert(k, fields); err != nil {
		return err
	}
	if _, err := l.Delete(k); err != nil {
		return err
	}
	return nil
}

// apiCounts sums per-class completions across the cluster:
// [reads, writes, sync(rel+acq), rmw].
func apiCounts(c *kite.Cluster) [4]uint64 {
	var out [4]uint64
	for n := 0; n < c.Nodes(); n++ {
		cl := c.OpClassCounts(n)
		out[0] += cl[0]
		out[1] += cl[1]
		out[2] += cl[2] + cl[3]
		out[3] += cl[4] + cl[5] + cl[6]
	}
	return out
}
