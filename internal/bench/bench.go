// Package bench is the measurement harness that regenerates every figure of
// the paper's evaluation (§8): workload generators with the paper's mix
// semantics, closed-loop windowed drivers over the asynchronous Kite API,
// equivalent drivers for the ZAB and Derecho baselines, the lock-free data
// structure workloads of §8.3, and the failure-study timeline of §8.4.
//
// The drivers speak the unified kite.Session interface, so the same
// workload runs against an in-process cluster (the default) or any other
// Session backend — pass remote client sessions via KiteOpts.Sessions to
// load a real multi-process deployment.
//
// Workload mix semantics follow §8.1 exactly: the write ratio counts RMWs,
// releases and relaxed writes; the synchronisation percentage applies to the
// non-RMW accesses (e.g. "60% write ratio, 50% sync, 50% RMWs" = 50% RMWs,
// 5% writes, 5% releases, 20% reads, 20% acquires).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/audit"
	"kite/sharded"
)

// Result is one measured throughput point.
type Result struct {
	Name     string
	Ops      uint64
	Duration time.Duration
	// Extra carries per-class op counts for derived metrics.
	Extra map[string]uint64
}

// Mreqs returns throughput in million requests per second (the paper's
// unit).
func (r Result) Mreqs() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e6
}

func (r Result) String() string {
	return fmt.Sprintf("%-28s %8.3f mreqs (%d ops in %v)", r.Name, r.Mreqs(), r.Ops, r.Duration.Round(time.Millisecond))
}

// Mix is an operation mix in the paper's terms.
type Mix struct {
	WriteRatio float64 // fraction of ops that write (incl. RMWs)
	SyncFrac   float64 // fraction of non-RMW accesses that synchronise
	RMWFrac    float64 // fraction of all ops that are RMWs (subset of writes)
}

// opKind is a generated operation class.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opRelease
	opAcquire
	opFAA
)

// thresholds precomputes cumulative probabilities for the mix.
type thresholds struct {
	rmw, release, write, acquire float64
}

func (m Mix) thresholds() thresholds {
	w := m.WriteRatio - m.RMWFrac // non-RMW writes
	if w < 0 {
		w = 0
	}
	rel := w * m.SyncFrac
	reads := 1 - m.WriteRatio
	if reads < 0 {
		reads = 0
	}
	acq := reads * m.SyncFrac
	return thresholds{
		rmw:     m.RMWFrac,
		release: m.RMWFrac + rel,
		write:   m.RMWFrac + w,
		acquire: m.RMWFrac + w + acq,
	}
}

func (t thresholds) pick(r float64) opKind {
	switch {
	case r < t.rmw:
		return opFAA
	case r < t.release:
		return opRelease
	case r < t.write:
		return opWrite
	case r < t.acquire:
		return opAcquire
	default:
		return opRead
	}
}

// DriverSession is one driven session plus the node index its completions
// are attributed to.
type DriverSession struct {
	Node int
	S    kite.Session
}

// KiteOpts parameterises a Kite throughput run.
type KiteOpts struct {
	Name    string
	Options kite.Options // in-process deployment (when Sessions is nil)
	// Groups > 1 shards the in-process deployment: Groups independent
	// replica groups of Options.Nodes each behind sharded sessions (the
	// -groups knob of kite-bench). Ignored when Sessions is supplied.
	Groups int
	Mix    Mix
	Keys    uint64 // uniform key range (paper: 1M)
	ValLen  int    // value size (paper: 32B)
	Window  int    // outstanding async ops per session
	Warmup  time.Duration
	Measure time.Duration
	// Sessions optionally supplies the sessions to drive — any
	// kite.Session backend, e.g. remote client sessions against a live
	// multi-process deployment. When nil, an in-process cluster is created
	// from Options and every session of every node is driven.
	Sessions []DriverSession
	// PerNode, when non-nil, receives per-node measured op counts.
	PerNode *[]uint64
	// AuditSample > 0 rides the internal/audit online verifier on every
	// driven session, sampling keys at this rate (1 = every key) — the
	// perf run doubles as a correctness run. Coverage counters land in
	// Result.Extra (audit_* keys) and any reported violation fails the
	// run. Audited drivers write per-op unique values (the checker's
	// census assumption) instead of reusing one buffer per session.
	AuditSample float64
}

func (o *KiteOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 500 * time.Millisecond
	}
}

// RunKite drives the mixed workload against a Kite deployment and measures
// completed operations per second across all sessions.
func RunKite(o KiteOpts) (Result, error) {
	o.defaults()
	sessions := o.Sessions
	nodes := 0
	switch {
	case sessions != nil:
	case o.Groups > 1:
		c, err := sharded.NewCluster(o.Groups, o.Options)
		if err != nil {
			return Result{}, err
		}
		defer c.Close()
		for n := 0; n < c.Nodes(); n++ {
			for si := 0; si < c.SessionsPerNode(); si++ {
				sessions = append(sessions, DriverSession{Node: n, S: c.Session(n, si)})
			}
		}
		// Sharded sessions run a pump goroutine each; retire them before
		// the groups stop (defers run LIFO).
		owned := sessions
		defer func() {
			for _, ds := range owned {
				ds.S.Close()
			}
		}()
	default:
		c, err := kite.NewCluster(o.Options)
		if err != nil {
			return Result{}, err
		}
		defer c.Close()
		for n := 0; n < c.Nodes(); n++ {
			for si := 0; si < c.SessionsPerNode(); si++ {
				sessions = append(sessions, DriverSession{Node: n, S: c.Session(n, si)})
			}
		}
	}
	for _, ds := range sessions {
		if ds.Node >= nodes {
			nodes = ds.Node + 1
		}
	}

	var aud *audit.Auditor
	if o.AuditSample > 0 {
		aud = audit.New(audit.Config{KeyRate: o.AuditSample})
		for i := range sessions {
			sessions[i].S = aud.Wrap(sessions[i].S)
		}
	}

	var counting atomic.Bool
	var stop atomic.Bool
	counted := make([]atomic.Uint64, nodes)

	var wg sync.WaitGroup
	for i, ds := range sessions {
		wg.Add(1)
		go func(ds DriverSession, seed int64) {
			defer wg.Done()
			driveSession(ds.S, o, seed, &counting, &stop, &counted[ds.Node])
		}(ds, int64(ds.Node*1000+i))
	}

	time.Sleep(o.Warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(o.Measure)
	counting.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	var total uint64
	perNode := make([]uint64, nodes)
	for i := range counted {
		perNode[i] = counted[i].Load()
		total += perNode[i]
	}
	if o.PerNode != nil {
		*o.PerNode = perNode
	}
	res := Result{Name: o.Name, Ops: total, Duration: elapsed}
	if aud != nil {
		aud.Close()
		sum := aud.Summary()
		st := sum.Stats
		res.Extra = map[string]uint64{
			"audit_sampled": st.SampledOps, "audit_skipped": st.SkippedOps,
			"audit_judged": st.JudgedEvents, "audit_reads": st.CheckedReads,
			"audit_dropped": st.DroppedEvents, "audit_evictions": st.Evictions,
		}
		if !sum.Report.OK() {
			return res, fmt.Errorf("online audit (%s): %s", o.Name, sum.Report.String())
		}
	}
	return res, nil
}

// driveSession is the closed-loop driver: Window outstanding async ops
// through the unified Session interface, a fresh random op issued as each
// completes. It is driveSessionUntil (recovery.go) against a node that
// never dies.
func driveSession(s kite.Session, o KiteOpts, seed int64,
	counting, stop *atomic.Bool, counted *atomic.Uint64) {

	var never atomic.Bool
	driveSessionUntil(s, o, seed, counting, stop, &never, counted)
}

func codeFor(k opKind) kite.OpCode {
	switch k {
	case opWrite:
		return kite.OpWrite
	case opRelease:
		return kite.OpRelease
	case opAcquire:
		return kite.OpAcquire
	case opFAA:
		return kite.OpFAA
	default:
		return kite.OpRead
	}
}
