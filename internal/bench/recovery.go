package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/core"
)

// The recovery study: the failure scenario one step past Figure 9. Where
// the paper's §8.4 replica merely SLEEPS (keeping its state), this one is
// crash-stopped mid-workload, restarted empty, and rejoins through the
// anti-entropy catch-up sweep (DESIGN.md "Recovery"). Measured: the
// throughput timeline across the kill and rejoin, the catch-up duration,
// and how much state the sweep moved.

// RecoveryOpts parameterises the recovery study.
type RecoveryOpts struct {
	Options kite.Options
	Mix     Mix // like Figure 9: 5% writes, 5% synchronisation
	Keys    uint64
	ValLen  int
	Window  int
	// Prefill writes (and fences) this many keys before the run so the
	// victim's sweep has a real store to transfer, not just the warmup's
	// footprint.
	Prefill     int
	Warmup      time.Duration
	Total       time.Duration // sampled portion of the run
	Sample      time.Duration
	RestartNode int
	RestartAt   time.Duration // offset of the kill within the sampled window
}

func (o *RecoveryOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 16
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Prefill == 0 {
		o.Prefill = 1 << 14
	}
	if o.Warmup == 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Total == 0 {
		o.Total = 900 * time.Millisecond
	}
	if o.Sample == 0 {
		o.Sample = 20 * time.Millisecond
	}
	if o.RestartAt == 0 {
		o.RestartAt = 150 * time.Millisecond
	}
}

// RecoveryOutcome summarises a recovery run.
type RecoveryOutcome struct {
	Timeline []TimePoint
	// Steady-state throughput before the kill, while the victim was down or
	// catching up, and after it rejoined (mreqs).
	PreRestart, Intermediate, PostRejoin float64
	// CatchupTime is the wall time from the kill to the sweep completing —
	// the victim's full serving gap.
	CatchupTime time.Duration
	// Catchup is the rejoined node's sweep statistics.
	Catchup core.CatchupStats
}

// RunRecoveryStudy kills and rejoins one replica under a steady mixed
// workload. The victim's drivers stop at the kill and resume — on fresh
// sessions of the new incarnation — once its catch-up completes; everyone
// else's sessions drive straight through the outage.
func RunRecoveryStudy(o RecoveryOpts) (RecoveryOutcome, error) {
	o.defaults()
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return RecoveryOutcome{}, err
	}
	defer c.Close()
	nodes := c.Nodes()
	victim := o.RestartNode

	// Prefill: give the victim's future sweep a store worth transferring,
	// fully replicated so it is all at the surviving peers.
	pre := c.Session((victim+1)%nodes, 0)
	var pending sync.WaitGroup
	for i := 0; i < o.Prefill; i++ {
		pending.Add(1)
		val := []byte(fmt.Sprintf("prefill-%d", i))
		pre.DoAsync(kite.WriteOp(uint64(i)%o.Keys, val), func(kite.Result) { pending.Done() })
		if i%1024 == 1023 {
			pending.Wait() // bounded outstanding prefill
		}
	}
	pending.Wait()
	if _, err := pre.Do(context.Background(), kite.FlushOp()); err != nil {
		return RecoveryOutcome{}, err
	}

	var stop, stopVictim, counting atomic.Bool
	counted := make([]atomic.Uint64, nodes)
	var wg sync.WaitGroup
	startDriver := func(n int, s kite.Session, seed int64, st *atomic.Bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ko := KiteOpts{Mix: o.Mix, Keys: o.Keys, ValLen: o.ValLen, Window: o.Window}
			ko.defaults()
			driveVictimAware(s, ko, seed, &counting, st, &counted[n])
		}()
	}
	for n := 0; n < nodes; n++ {
		st := &stop
		if n == victim {
			st = &stopVictim
		}
		for si := 0; si < c.SessionsPerNode(); si++ {
			startDriver(n, c.Session(n, si), int64(n*1000+si+11), st)
		}
	}
	counting.Store(true)
	time.Sleep(o.Warmup)

	out := RecoveryOutcome{}
	var restartWG sync.WaitGroup
	var restartErr error
	restarted := false
	var timeline []TimePoint
	prev := snapshotCounts(counted)
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < o.Total; {
		time.Sleep(o.Sample)
		now := time.Since(start)
		cur := snapshotCounts(counted)
		tp := TimePoint{At: now, PerNode: make([]float64, nodes)}
		dt := (now - elapsed).Seconds()
		for i := 0; i < nodes; i++ {
			tp.PerNode[i] = float64(cur[i]-prev[i]) / dt / 1e6
			tp.Total += tp.PerNode[i]
		}
		timeline = append(timeline, tp)
		prev = cur
		elapsed = now
		if !restarted && elapsed >= o.RestartAt {
			restarted = true
			restartWG.Add(1)
			go func() {
				defer restartWG.Done()
				// Retire the victim's drivers, then kill and rejoin it.
				stopVictim.Store(true)
				killed := time.Now()
				c.StopNode(victim)
				if err := c.RestartNode(victim); err != nil {
					restartErr = err
					return
				}
				if !c.AwaitRejoin(victim, time.Minute) {
					restartErr = fmt.Errorf("victim still catching up after 1m")
					return
				}
				out.CatchupTime = time.Since(killed)
				out.Catchup = c.NodeCatchup(victim)
				// Resume load on the new incarnation's sessions.
				for si := 0; si < c.SessionsPerNode(); si++ {
					startDriver(victim, c.Session(victim, si), int64(victim*1000+si+77), &stop)
				}
			}()
		}
	}
	restartWG.Wait()
	stop.Store(true)
	stopVictim.Store(true)
	wg.Wait()
	if restartErr != nil {
		return RecoveryOutcome{}, restartErr
	}

	out.Timeline = timeline
	rejoinAt := o.RestartAt + out.CatchupTime
	var pre2, mid, post []TimePoint
	for _, tp := range timeline {
		switch {
		case tp.At < o.RestartAt:
			pre2 = append(pre2, tp)
		case tp.At < rejoinAt:
			mid = append(mid, tp)
		case tp.At > rejoinAt+50*time.Millisecond:
			post = append(post, tp)
		}
	}
	out.PreRestart = avgTotal(pre2)
	out.Intermediate = avgTotal(mid)
	out.PostRejoin = avgTotal(post)
	return out, nil
}

// driveVictimAware is driveSession with one difference: operations may FAIL
// (ErrStopped) when the driven node is killed mid-flight, and the driver
// must treat that as its stop signal rather than spin on a dead session.
func driveVictimAware(s kite.Session, o KiteOpts, seed int64,
	counting, stop *atomic.Bool, counted *atomic.Uint64) {

	var dead atomic.Bool
	driveSessionUntil(&victimSession{Session: s, dead: &dead}, o, seed, counting, stop, &dead, counted)
}

// victimSession wraps a Session, flagging the first ErrStopped so the
// driver winds down instead of hammering a dead node.
type victimSession struct {
	kite.Session
	dead *atomic.Bool
}

func (v *victimSession) DoAsync(op kite.Op, cb func(kite.Result)) {
	v.Session.DoAsync(op, func(r kite.Result) {
		if r.Err != nil {
			v.dead.Store(true)
		}
		if cb != nil {
			cb(r)
		}
	})
}

// driveSessionUntil is the closed-loop driver of driveSession with an
// extra termination flag (the victim's death).
func driveSessionUntil(s kite.Session, o KiteOpts, seed int64,
	counting, stop, dead *atomic.Bool, counted *atomic.Uint64) {

	rng := rand.New(rand.NewSource(seed))
	th := o.Mix.thresholds()
	val := make([]byte, o.ValLen)
	rng.Read(val)
	// Audited runs need per-op unique written values (the checker's census
	// assumption); unaudited runs keep the zero-allocation reused buffer.
	uniq := uint64(0)
	nextVal := func() []byte {
		if o.AuditSample <= 0 {
			return val
		}
		v := make([]byte, len(val))
		copy(v, val)
		uniq++
		for i, x := 0, uniq; i < len(v) && i < 8; i, x = i+1, x>>8 {
			v[i] = byte(x)
		}
		return v
	}

	slots := make(chan struct{}, o.Window)
	inflight := 0
	for {
		if stop.Load() || dead.Load() {
			for ; inflight > 0; inflight-- {
				<-slots
			}
			return
		}
		if inflight == o.Window {
			<-slots
			inflight--
		}
		op := kite.Op{Code: codeFor(th.pick(rng.Float64())), Key: rng.Uint64() % o.Keys}
		switch op.Code {
		case kite.OpWrite, kite.OpRelease:
			op.Value = nextVal()
		case kite.OpFAA:
			op.Delta = 1
		}
		s.DoAsync(op, func(r kite.Result) {
			if r.Err == nil && counting.Load() {
				counted.Add(1)
			}
			slots <- struct{}{}
		})
		inflight++
	}
}

// RecoveryReport is the machine-readable output of FigureRecovery — the
// format committed as BENCH_1.json.
type RecoveryReport struct {
	Name          string        `json:"name"`
	Nodes         int           `json:"nodes"`
	Workers       int           `json:"workers"`
	Sessions      int           `json:"sessions_per_worker"`
	Keys          uint64        `json:"keys"`
	Prefill       int           `json:"prefill_keys"`
	Total         time.Duration `json:"total_ns"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	PreRestart    float64       `json:"pre_restart_mreqs"`
	Intermediate  float64       `json:"intermediate_mreqs"`
	PostRejoin    float64       `json:"post_rejoin_mreqs"`
	CatchupMillis float64       `json:"catchup_ms"`
	SweptItems    uint64        `json:"swept_items"`
	AppliedItems  uint64        `json:"applied_items"`
}

// FigureRecovery runs the recovery study, prints the timeline and summary,
// and returns the machine-readable report.
func FigureRecovery(fc FigureConfig, prefill int) (*RecoveryReport, error) {
	opts := RecoveryOpts{
		Options:     fc.kiteOptions(),
		Mix:         Mix{WriteRatio: 0.05, SyncFrac: 0.05},
		Keys:        fc.Keys,
		Prefill:     prefill,
		Warmup:      fc.Warmup,
		RestartNode: fc.Nodes - 1,
	}
	opts.defaults() // resolve the knobs the report pins
	out, err := RunRecoveryStudy(opts)
	if err != nil {
		return nil, err
	}
	fc.printf("# Recovery study: node %d killed at %v, rejoins via catch-up\n",
		fc.Nodes-1, opts.RestartAt)
	fc.printf("%s", FormatTimeline(FailureOutcome{Timeline: out.Timeline}, fc.Nodes-1))
	fc.printf("\npre-restart total:   %8.3f mreqs\n", out.PreRestart)
	fc.printf("down/catching-up:    %8.3f mreqs (surviving majority keeps serving)\n", out.Intermediate)
	fc.printf("post-rejoin total:   %8.3f mreqs\n", out.PostRejoin)
	fc.printf("catch-up: %v from kill to serving; %d items swept, %d applied\n",
		out.CatchupTime.Round(time.Millisecond), out.Catchup.Pulled, out.Catchup.Applied)
	return &RecoveryReport{
		Name:          "recovery",
		Nodes:         fc.Nodes,
		Workers:       fc.Workers,
		Sessions:      fc.SessionsPerWorker,
		Keys:          fc.Keys,
		Prefill:       opts.Prefill,
		Total:         opts.Total,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		PreRestart:    out.PreRestart,
		Intermediate:  out.Intermediate,
		PostRejoin:    out.PostRejoin,
		CatchupMillis: float64(out.CatchupTime.Microseconds()) / 1000,
		SweptItems:    out.Catchup.Pulled,
		AppliedItems:  out.Catchup.Applied,
	}, nil
}
