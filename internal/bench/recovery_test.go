package bench

import (
	"testing"
	"time"
)

// TestRunRecoveryStudySmoke is the miniature recovery study: kill one
// replica under load, rejoin it via the catch-up sweep, and assert the
// liveness properties (survivors keep serving; the sweep completes and
// actually moves state) rather than absolute numbers.
func TestRunRecoveryStudySmoke(t *testing.T) {
	out, err := RunRecoveryStudy(RecoveryOpts{
		Options: smokeOptions(),
		Mix:     Mix{WriteRatio: 0.05, SyncFrac: 0.05},
		Keys:    1 << 10, Window: smokeWindow(), Prefill: 1 << 9,
		Warmup: 30 * time.Millisecond,
		Total:  300 * time.Millisecond, Sample: 20 * time.Millisecond,
		RestartNode: 2, RestartAt: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline) == 0 || out.PreRestart == 0 {
		t.Fatalf("empty timeline: %+v", out)
	}
	// Availability: the surviving majority keeps serving through the kill
	// and the victim's catch-up.
	if out.Intermediate <= 0 {
		t.Fatal("throughput collapsed while the victim was down")
	}
	// The rejoin really happened and really transferred state.
	if out.CatchupTime <= 0 {
		t.Fatalf("no catch-up measured: %+v", out)
	}
	if out.Catchup.Pulled == 0 || out.Catchup.Applied == 0 {
		t.Fatalf("sweep moved no state: %+v", out.Catchup)
	}
	if out.Catchup.Active {
		t.Fatal("victim still marked catching up after the run")
	}
}
