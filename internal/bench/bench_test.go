package bench

import (
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"kite"
)

// smokeOptions sizes the miniature load studies to the host: the full-size
// cluster (5 nodes x 4 workers plus one driver goroutine per session) used
// to be skipped under -short because it starved on 1-CPU hosts. Scaling the
// goroutine count with GOMAXPROCS keeps the study meaningful everywhere
// and lets the smoke tests run unconditionally.
func smokeOptions() kite.Options {
	o := kite.Options{Nodes: 3, Workers: 2, SessionsPerWorker: 2, Capacity: 1 << 10}
	if runtime.GOMAXPROCS(0) < 4 {
		o.Workers, o.SessionsPerWorker = 1, 1
	}
	return o
}

// smokeWindow bounds outstanding async ops per session on small hosts.
func smokeWindow() int {
	if runtime.GOMAXPROCS(0) < 4 {
		return 2
	}
	return 4
}

func TestMixThresholds(t *testing.T) {
	// The paper's worked example (§8.1): 60% write ratio, 50% sync, 50%
	// RMWs = 50% RMWs, 5% writes, 5% releases, 20% reads, 20% acquires.
	th := Mix{WriteRatio: 0.60, SyncFrac: 0.50, RMWFrac: 0.50}.thresholds()
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(th.rmw, 0.50) {
		t.Fatalf("rmw threshold %v", th.rmw)
	}
	if !approx(th.release-th.rmw, 0.05) {
		t.Fatalf("release share %v", th.release-th.rmw)
	}
	if !approx(th.write-th.release, 0.05) {
		t.Fatalf("write share %v", th.write-th.release)
	}
	if !approx(th.acquire-th.write, 0.20) {
		t.Fatalf("acquire share %v", th.acquire-th.write)
	}
	if !approx(1-th.acquire, 0.20) {
		t.Fatalf("read share %v", 1-th.acquire)
	}
	// Pick at the boundaries.
	if th.pick(0) != opFAA || th.pick(0.999) != opRead {
		t.Fatal("pick at extremes")
	}
}

func TestMixAllRelaxed(t *testing.T) {
	th := Mix{WriteRatio: 0.2}.thresholds()
	counts := map[opKind]int{}
	for i := 0; i < 1000; i++ {
		counts[th.pick(float64(i)/1000)]++
	}
	if counts[opFAA] != 0 || counts[opRelease] != 0 || counts[opAcquire] != 0 {
		t.Fatalf("sync ops in relaxed mix: %v", counts)
	}
	if counts[opWrite] < 150 || counts[opWrite] > 250 {
		t.Fatalf("write share %d/1000", counts[opWrite])
	}
}

func TestRunKiteSmoke(t *testing.T) {
	res, err := RunKite(KiteOpts{
		Options: smokeOptions(),
		Mix:     Mix{WriteRatio: 0.2, SyncFrac: 0.1},
		Keys:    1 << 10, Window: smokeWindow(),
		Warmup: 30 * time.Millisecond, Measure: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no throughput measured")
	}
}

// TestRunKiteAudited: a perf run with the online auditor riding along must
// stay clean, report real coverage in Extra, and keep measuring.
func TestRunKiteAudited(t *testing.T) {
	res, err := RunKite(KiteOpts{
		Options: smokeOptions(),
		Mix:     Mix{WriteRatio: 0.3, SyncFrac: 0.2, RMWFrac: 0.1},
		Keys:    1 << 8, Window: smokeWindow(),
		Warmup: 30 * time.Millisecond, Measure: 80 * time.Millisecond,
		AuditSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no throughput measured under audit")
	}
	if res.Extra["audit_sampled"] == 0 || res.Extra["audit_judged"] == 0 {
		t.Fatalf("no audit coverage: %v", res.Extra)
	}
}

func TestRunKiteShardedSmoke(t *testing.T) {
	o := smokeOptions()
	o.Nodes = 2 // two groups of two: four nodes total
	res, err := RunKite(KiteOpts{
		Options: o, Groups: 2,
		Mix:  Mix{WriteRatio: 0.5, SyncFrac: 0.1},
		Keys: 1 << 10, Window: smokeWindow(),
		Warmup: 30 * time.Millisecond, Measure: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no sharded throughput measured")
	}
}

func TestFigureShardSmoke(t *testing.T) {
	fc := FigureConfig{
		Workers: 1, SessionsPerWorker: 1, Keys: 1 << 10,
		Warmup: 10 * time.Millisecond, Measure: 40 * time.Millisecond,
		Out: io.Discard,
	}
	rep, err := FigureShard(fc, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.RelaxedMreqs == 0 || pt.MixedMreqs == 0 || pt.SyncMreqs == 0 {
			t.Fatalf("empty series in point %+v", pt)
		}
	}
}

func TestRunFailureStudySmoke(t *testing.T) {
	out, err := RunFailureStudy(FailureOpts{
		Options: smokeOptions(),
		Mix:     Mix{WriteRatio: 0.05, SyncFrac: 0.05},
		Keys:    1 << 10, Window: smokeWindow(),
		Warmup: 30 * time.Millisecond,
		Total:  220 * time.Millisecond, Sample: 20 * time.Millisecond,
		SleepNode: 2, SleepAt: 60 * time.Millisecond, SleepFor: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline) == 0 || out.PreSleep == 0 {
		t.Fatalf("empty timeline: %+v", out)
	}
	// Availability: the cluster keeps serving during the sleep.
	if out.Intermediate <= 0 {
		t.Fatal("throughput collapsed during the sleep")
	}
}

func TestStructResultMetrics(t *testing.T) {
	r := StructResult{
		Ops: 100, Duration: time.Second,
		APIReads: 400, APIWrites: 200, APISync: 200, APIRMW: 200,
	}
	if got := r.ReqsPerOp(); got != 10 {
		t.Fatalf("reqs/op = %v", got)
	}
	// writes(200) + sync/2(100) + rmw(200) over 1000.
	if got := r.WriteRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("write ratio = %v", got)
	}
	if got := r.SyncPer(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("sync-per = %v", got)
	}
}
