package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kite"
)

// The reconfiguration study (DESIGN.md "Membership"): a 3-replica group
// serves a steady mixed workload while the operator grows it to 4 and then
// removes an original replica. Measured: the throughput timeline across
// both reconfigurations, the time from AddNode to the joiner serving
// (config commit + catch-up sweep), and the dip each handoff costs — the
// membership counterpart of the recovery study's kill/rejoin timeline.

// ReconfigOpts parameterises the reconfiguration study.
type ReconfigOpts struct {
	Options kite.Options
	Mix     Mix
	Keys    uint64
	ValLen  int
	Window  int
	// Prefill writes (and fences) this many keys before the run so the
	// joiner's sweep transfers a real store.
	Prefill int
	Warmup  time.Duration
	Total   time.Duration // sampled portion of the run
	Sample  time.Duration
	// AddAt / RemoveAt are the offsets of AddNode and RemoveNode within
	// the sampled window; RemoveNode removes replica 0.
	AddAt    time.Duration
	RemoveAt time.Duration
}

func (o *ReconfigOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 16
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Prefill == 0 {
		o.Prefill = 1 << 14
	}
	if o.Warmup == 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Total == 0 {
		o.Total = 900 * time.Millisecond
	}
	if o.Sample == 0 {
		o.Sample = 20 * time.Millisecond
	}
	if o.AddAt == 0 {
		o.AddAt = 150 * time.Millisecond
	}
	if o.RemoveAt == 0 {
		o.RemoveAt = 500 * time.Millisecond
	}
}

// ReconfigOutcome summarises a reconfiguration run.
type ReconfigOutcome struct {
	Timeline []TimePoint
	// Steady-state throughput in the three membership phases (mreqs):
	// before AddNode, with 4 members, and after RemoveNode(0).
	PreAdd, FourMembers, PostRemove float64
	// JoinTime is the wall time from the AddNode call to the joiner
	// serving (configuration commit + catch-up sweep).
	JoinTime time.Duration
	// SweptItems/AppliedItems are the joiner's sweep statistics.
	SweptItems, AppliedItems uint64
	// FinalEpoch/FinalMembers are the configuration after both changes.
	FinalEpoch   uint32
	FinalMembers []int
}

// RunReconfigStudy grows a serving group by one replica and then removes an
// original member, under load. Drivers run on replicas 1..n-1 so the
// removal of replica 0 retires no driver sessions mid-flight; the joiner
// gets its own drivers once its sweep completes.
func RunReconfigStudy(o ReconfigOpts) (ReconfigOutcome, error) {
	o.defaults()
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return ReconfigOutcome{}, err
	}
	defer c.Close()
	boot := c.Nodes()

	// Prefill through a survivor, fenced, so the joiner's sweep has a full
	// store to move.
	pre := c.Session(1, 0)
	var pending sync.WaitGroup
	for i := 0; i < o.Prefill; i++ {
		pending.Add(1)
		val := []byte(fmt.Sprintf("prefill-%d", i))
		pre.DoAsync(kite.WriteOp(uint64(i)%o.Keys, val), func(kite.Result) { pending.Done() })
		if i%1024 == 1023 {
			pending.Wait()
		}
	}
	pending.Wait()
	if _, err := pre.Do(context.Background(), kite.FlushOp()); err != nil {
		return ReconfigOutcome{}, err
	}

	var stop, counting atomic.Bool
	counted := make([]atomic.Uint64, boot+1)
	var wg sync.WaitGroup
	startDriver := func(n int, s kite.Session, seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ko := KiteOpts{Mix: o.Mix, Keys: o.Keys, ValLen: o.ValLen, Window: o.Window}
			ko.defaults()
			driveVictimAware(s, ko, seed, &counting, &stop, &counted[n])
		}()
	}
	// Drivers on replicas 1..n-1 only: replica 0 is the one removed later.
	for n := 1; n < boot; n++ {
		for si := 0; si < c.SessionsPerNode(); si++ {
			startDriver(n, c.Session(n, si), int64(n*1000+si+11))
		}
	}
	counting.Store(true)
	time.Sleep(o.Warmup)

	out := ReconfigOutcome{}
	var opsWG sync.WaitGroup
	var opsErr error
	var joinedAt time.Duration // timeline offset at which the joiner served
	added, removed := false, false
	var timeline []TimePoint
	prev := snapshotCounts(counted)
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < o.Total; {
		time.Sleep(o.Sample)
		now := time.Since(start)
		cur := snapshotCounts(counted)
		tp := TimePoint{At: now, PerNode: make([]float64, len(counted))}
		dt := (now - elapsed).Seconds()
		for i := range counted {
			tp.PerNode[i] = float64(cur[i]-prev[i]) / dt / 1e6
			tp.Total += tp.PerNode[i]
		}
		timeline = append(timeline, tp)
		prev = cur
		elapsed = now
		if !added && elapsed >= o.AddAt {
			added = true
			opsWG.Add(1)
			go func() {
				defer opsWG.Done()
				t0 := time.Now()
				id, err := c.AddNode()
				if err != nil {
					opsErr = fmt.Errorf("AddNode: %w", err)
					return
				}
				if !c.AwaitRejoin(id, time.Minute) {
					opsErr = fmt.Errorf("joiner still catching up after 1m")
					return
				}
				out.JoinTime = time.Since(t0)
				joinedAt = time.Since(start)
				st := c.NodeCatchup(id)
				out.SweptItems, out.AppliedItems = st.Pulled, st.Applied
				for si := 0; si < c.SessionsPerNode(); si++ {
					startDriver(id, c.Session(id, si), int64(id*1000+si+77))
				}
			}()
		}
		if added && !removed && elapsed >= o.RemoveAt {
			opsWG.Wait() // the add must land first (serialized handoffs)
			if opsErr != nil {
				break
			}
			removed = true
			opsWG.Add(1)
			go func() {
				defer opsWG.Done()
				if err := c.RemoveNode(0); err != nil {
					opsErr = fmt.Errorf("RemoveNode: %w", err)
				}
			}()
		}
	}
	opsWG.Wait()
	stop.Store(true)
	wg.Wait()
	if opsErr != nil {
		return ReconfigOutcome{}, opsErr
	}

	out.Timeline = timeline
	m := c.Members()
	out.FinalEpoch, out.FinalMembers = m.Epoch, m.Nodes
	var preP, fourP, postP []TimePoint
	for _, tp := range timeline {
		switch {
		case tp.At < o.AddAt:
			preP = append(preP, tp)
		case tp.At > joinedAt+30*time.Millisecond && tp.At < o.RemoveAt:
			fourP = append(fourP, tp)
		case tp.At > o.RemoveAt+50*time.Millisecond:
			postP = append(postP, tp)
		}
	}
	out.PreAdd = avgTotal(preP)
	out.FourMembers = avgTotal(fourP)
	out.PostRemove = avgTotal(postP)
	return out, nil
}

// ReconfigReport is the machine-readable output of FigureReconfig — the
// format committed as BENCH_2.json.
type ReconfigReport struct {
	Name         string        `json:"name"`
	Nodes        int           `json:"nodes"`
	Workers      int           `json:"workers"`
	Sessions     int           `json:"sessions_per_worker"`
	Keys         uint64        `json:"keys"`
	Prefill      int           `json:"prefill_keys"`
	Total        time.Duration `json:"total_ns"`
	GoMaxProcs   int           `json:"gomaxprocs"`
	PreAdd       float64       `json:"pre_add_mreqs"`
	FourMembers  float64       `json:"four_members_mreqs"`
	PostRemove   float64       `json:"post_remove_mreqs"`
	JoinMillis   float64       `json:"join_ms"`
	SweptItems   uint64        `json:"swept_items"`
	AppliedItems uint64        `json:"applied_items"`
	FinalEpoch   uint32        `json:"final_epoch"`
	FinalMembers []int         `json:"final_members"`
}

// FigureReconfig runs the reconfiguration study, prints the timeline and
// summary, and returns the machine-readable report.
func FigureReconfig(fc FigureConfig, prefill int) (*ReconfigReport, error) {
	opts := ReconfigOpts{
		Options: fc.kiteOptions(),
		Mix:     Mix{WriteRatio: 0.05, SyncFrac: 0.05},
		Keys:    fc.Keys,
		Prefill: prefill,
		Warmup:  fc.Warmup,
	}
	opts.defaults() // resolve the knobs the report pins
	out, err := RunReconfigStudy(opts)
	if err != nil {
		return nil, err
	}
	fc.printf("# Reconfiguration study: AddNode at %v, RemoveNode(0) at %v\n",
		opts.AddAt, opts.RemoveAt)
	fc.printf("%s", FormatTimeline(FailureOutcome{Timeline: out.Timeline}, 0))
	fc.printf("\npre-add total (3):    %8.3f mreqs\n", out.PreAdd)
	fc.printf("four members:         %8.3f mreqs\n", out.FourMembers)
	fc.printf("post-remove total (3):%8.3f mreqs\n", out.PostRemove)
	fc.printf("join: %v from AddNode to serving; %d items swept, %d applied\n",
		out.JoinTime.Round(time.Millisecond), out.SweptItems, out.AppliedItems)
	fc.printf("final config: epoch %d, members %v\n", out.FinalEpoch, out.FinalMembers)
	return &ReconfigReport{
		Name:         "reconfig",
		Nodes:        fc.Nodes,
		Workers:      fc.Workers,
		Sessions:     fc.SessionsPerWorker,
		Keys:         fc.Keys,
		Prefill:      opts.Prefill,
		Total:        opts.Total,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		PreAdd:       out.PreAdd,
		FourMembers:  out.FourMembers,
		PostRemove:   out.PostRemove,
		JoinMillis:   float64(out.JoinTime.Microseconds()) / 1000,
		SweptItems:   out.SweptItems,
		AppliedItems: out.AppliedItems,
		FinalEpoch:   out.FinalEpoch,
		FinalMembers: out.FinalMembers,
	}, nil
}
