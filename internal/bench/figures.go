package bench

import (
	"fmt"
	"io"
	"time"

	"kite"
	"kite/internal/derecho"
	"kite/internal/zab"
)

// FigureConfig scales the figure runners: Quick keeps everything small for
// CI/benchmarks; Full approaches the paper's parameters.
type FigureConfig struct {
	Nodes             int
	Workers           int
	SessionsPerWorker int
	// Groups > 1 runs the Kite series of the throughput figures (5-7)
	// over a sharded deployment (Groups replica groups of Nodes each).
	// The ZAB/Derecho baselines and the structure, failure and ablation
	// studies stay single-group.
	Groups  int
	Keys    uint64
	Warmup  time.Duration
	Measure time.Duration
	// AuditSample > 0 rides the online consistency auditor on the Kite
	// throughput runs (figures 5-7) at this per-key sampling rate; a
	// violation fails the figure (kite-bench -audit-sample).
	AuditSample float64
	Out         io.Writer
}

// DefaultFigureConfig mirrors the paper's 5-node deployment at a scale that
// runs in minutes on a laptop.
func DefaultFigureConfig(out io.Writer) FigureConfig {
	return FigureConfig{
		Nodes: 5, Workers: 4, SessionsPerWorker: 4,
		Keys: 1 << 17, Warmup: 150 * time.Millisecond, Measure: 600 * time.Millisecond,
		Out: out,
	}
}

func (fc FigureConfig) kiteOptions() kite.Options {
	return kite.Options{Nodes: fc.Nodes, Workers: fc.Workers,
		SessionsPerWorker: fc.SessionsPerWorker, Capacity: int(fc.Keys)}
}

func (fc FigureConfig) zabConfig() zab.Config {
	return zab.Config{Nodes: fc.Nodes, Workers: fc.Workers,
		SessionsPerWorker: fc.SessionsPerWorker, KVSCapacity: int(fc.Keys)}
}

func (fc FigureConfig) printf(format string, args ...any) {
	fmt.Fprintf(fc.Out, format, args...)
}

// Figure5 reproduces "Throughput while varying write ratio" (§8.1): ES, ABD,
// Paxos and Kite (5% sync) as Kite protocol configurations, plus ZAB.
func Figure5(fc FigureConfig, writeRatios []float64) error {
	if len(writeRatios) == 0 {
		writeRatios = []float64{0.01, 0.05, 0.20, 0.50, 1.00}
	}
	fc.printf("# Figure 5: throughput (mreqs) vs write ratio, %d nodes\n", fc.Nodes)
	fc.printf("%-8s %10s %10s %10s %10s %10s\n", "write%", "ES", "Kite-5%", "ABD", "Paxos", "ZAB")
	for _, w := range writeRatios {
		row := [5]float64{}
		series := []struct {
			idx int
			mix Mix
		}{
			{0, Mix{WriteRatio: w}},                            // ES: all relaxed
			{1, Mix{WriteRatio: w, SyncFrac: 0.05}},            // Kite, 5% sync
			{2, Mix{WriteRatio: w, SyncFrac: 1.0}},             // ABD: all sync
			{3, Mix{WriteRatio: w, SyncFrac: 1.0, RMWFrac: w}}, // Paxos writes + ABD reads
		}
		for _, s := range series {
			res, err := RunKite(KiteOpts{
				Options: fc.kiteOptions(), Groups: fc.Groups, Mix: s.mix, Keys: fc.Keys,
				Warmup: fc.Warmup, Measure: fc.Measure, AuditSample: fc.AuditSample,
			})
			if err != nil {
				return err
			}
			row[s.idx] = res.Mreqs()
		}
		zr := RunZab(ZabOpts{Config: fc.zabConfig(), WriteRatio: w,
			Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure})
		row[4] = zr.Mreqs()
		fc.printf("%-8.0f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			w*100, row[0], row[1], row[2], row[3], row[4])
	}
	return nil
}

// Figure6 reproduces "Kite vs ZAB while varying synchronisation" (§8.1).
func Figure6(fc FigureConfig, writeRatios []float64) error {
	if len(writeRatios) == 0 {
		writeRatios = []float64{0.05, 0.20, 0.60, 1.00}
	}
	type series struct {
		name string
		sync float64
		rmw  float64 // fraction of the write ratio that is RMWs
	}
	ss := []series{
		{"Kite-5%s", 0.05, 0},
		{"Kite-20%s", 0.20, 0},
		{"Kite-20%s-5%r", 0.20, 0.05},
		{"Kite-50%s-50%r", 0.50, 0.50},
	}
	fc.printf("# Figure 6: Kite vs ZAB while varying synchronisation (mreqs)\n")
	fc.printf("%-8s", "write%")
	for _, s := range ss {
		fc.printf(" %14s", s.name)
	}
	fc.printf(" %10s\n", "ZAB")
	for _, w := range writeRatios {
		fc.printf("%-8.0f", w*100)
		for _, s := range ss {
			rmw := s.rmw
			if rmw > w {
				rmw = w // RMWs are a subset of writes
			}
			res, err := RunKite(KiteOpts{
				Options: fc.kiteOptions(), Groups: fc.Groups,
				Mix:    Mix{WriteRatio: w, SyncFrac: s.sync, RMWFrac: rmw},
				Keys:   fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
				AuditSample: fc.AuditSample,
			})
			if err != nil {
				return err
			}
			fc.printf(" %14.3f", res.Mreqs())
		}
		zr := RunZab(ZabOpts{Config: fc.zabConfig(), WriteRatio: w,
			Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure})
		fc.printf(" %10.3f\n", zr.Mreqs())
	}
	return nil
}

// Figure7 reproduces the write-only throughput study (§8.2): Kite's three
// write classes, ZAB, and both Derecho modes.
func Figure7(fc FigureConfig) error {
	fc.printf("# Figure 7: write-only throughput (mreqs)\n")
	rows := []struct {
		name string
		mix  Mix
	}{
		{"Kite-writes(ES)", Mix{WriteRatio: 1}},
		{"Kite-releases(ABD)", Mix{WriteRatio: 1, SyncFrac: 1}},
		{"Kite-RMWs(Paxos)", Mix{WriteRatio: 1, RMWFrac: 1}},
	}
	for _, r := range rows {
		res, err := RunKite(KiteOpts{Options: fc.kiteOptions(), Groups: fc.Groups, Mix: r.mix,
			Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure, AuditSample: fc.AuditSample})
		if err != nil {
			return err
		}
		fc.printf("%-22s %10.3f\n", r.name, res.Mreqs())
	}
	zr := RunZab(ZabOpts{Config: fc.zabConfig(), WriteRatio: 1,
		Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure})
	fc.printf("%-22s %10.3f\n", "ZAB", zr.Mreqs())
	for _, mode := range []derecho.Mode{derecho.Ordered, derecho.Unordered} {
		name := "Derecho-ordered"
		if mode == derecho.Unordered {
			name = "Derecho-unordered"
		}
		dr := RunDerecho(DerechoOpts{
			Config: derecho.Config{Nodes: fc.Nodes, Mode: mode, KVSCapacity: int(fc.Keys)},
			Keys:   fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
		})
		fc.printf("%-22s %10.3f\n", name, dr.Mreqs())
	}
	return nil
}

// Figure8 reproduces the lock-free data structure study (§8.3): Kite,
// Kite-ideal (private structures, no conflicts) and the ZAB-ideal bound
// (ZAB at the workload's write ratio divided by its requests-per-op).
func Figure8(fc FigureConfig, structs, sessionsPerNode int) error {
	if structs == 0 {
		structs = 256
	}
	if sessionsPerNode == 0 {
		sessionsPerNode = fc.Workers * fc.SessionsPerWorker
	}
	fc.printf("# Figure 8: lock-free data structures (mops = million op-pairs/s)\n")
	fc.printf("%-8s %10s %12s %10s %10s %9s %9s\n",
		"bench", "Kite", "Kite-ideal", "ZAB-ideal", "Kite/ZAB", "reqs/op", "sync-per")
	workloads := []struct {
		name   string
		kind   StructKind
		fields int
	}{
		{"TS-4", TreiberStack, 4},
		{"TS-32", TreiberStack, 32},
		{"MSQ-4", MSQueue, 4},
		{"MSQ-32", MSQueue, 32},
		{"HML-4", HMList, 4},
	}
	for _, wl := range workloads {
		base := StructOpts{
			Kind: wl.kind, Fields: wl.fields, Options: fc.kiteOptions(),
			Structs: structs, SessionsPerNode: sessionsPerNode, WeakCAS: true,
			Warmup: fc.Warmup, Measure: fc.Measure,
		}
		shared, err := RunStructs(base)
		if err != nil {
			return err
		}
		ideal := base
		ideal.Private = true
		idealRes, err := RunStructs(ideal)
		if err != nil {
			return err
		}
		// ZAB-ideal: ZAB's mreqs at this workload's write ratio, divided by
		// the requests each structure op-pair needs (§8.3's methodology).
		zr := RunZab(ZabOpts{Config: fc.zabConfig(), WriteRatio: shared.WriteRatio(),
			Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure})
		zabIdeal := 0.0
		if shared.ReqsPerOp() > 0 {
			zabIdeal = zr.Mreqs() / shared.ReqsPerOp()
		}
		speedup := 0.0
		if zabIdeal > 0 {
			speedup = shared.Mops() / zabIdeal
		}
		fc.printf("%-8s %10.4f %12.4f %10.4f %9.2fx %9.1f %8.1f%%\n",
			wl.name, shared.Mops(), idealRes.Mops(), zabIdeal, speedup,
			shared.ReqsPerOp(), shared.SyncPer()*100)
	}
	return nil
}

// Figure9 reproduces the failure study (§8.4).
func Figure9(fc FigureConfig, sleepFor time.Duration) error {
	if sleepFor == 0 {
		sleepFor = 400 * time.Millisecond
	}
	out, err := RunFailureStudy(FailureOpts{
		Options:   fc.kiteOptions(),
		Mix:       Mix{WriteRatio: 0.05, SyncFrac: 0.05},
		Keys:      fc.Keys,
		SleepNode: fc.Nodes - 1,
		SleepFor:  sleepFor,
		Total:     sleepFor*2 + 200*time.Millisecond,
	})
	if err != nil {
		return err
	}
	fc.printf("# Figure 9: failure study (node %d sleeps %v)\n", fc.Nodes-1, sleepFor)
	fc.printf("%s", FormatTimeline(out, fc.Nodes-1))
	fc.printf("\npre-sleep total:      %8.3f mreqs (per operational node %8.3f)\n",
		out.PreSleep, out.PreSleepPerNode)
	fc.printf("intermediate total:   %8.3f mreqs (per operational node %8.3f)\n",
		out.Intermediate, out.IntermediatePerNode)
	fc.printf("post-sleep total:     %8.3f mreqs\n", out.PostSleep)
	fc.printf("slow path: %d slow reads, %d slow writes, %d epoch bumps, %d slow releases\n",
		out.SlowPath.SlowReads, out.SlowPath.SlowWrites,
		out.SlowPath.EpochBumps, out.SlowPath.SlowReleases)
	return nil
}

// AblationTimeout sweeps the release timeout with a sleeping replica — the
// §8.4 trade-off between availability and performance.
func AblationTimeout(fc FigureConfig, timeouts []time.Duration) error {
	if len(timeouts) == 0 {
		timeouts = []time.Duration{200 * time.Microsecond, time.Millisecond,
			5 * time.Millisecond, 20 * time.Millisecond}
	}
	fc.printf("# Ablation: release timeout vs throughput with a sleeping replica\n")
	fc.printf("%-12s %14s %14s\n", "timeout", "healthy", "with-sleeper")
	for _, to := range timeouts {
		opts := fc.kiteOptions()
		opts.ReleaseTimeout = to
		healthy, err := RunKite(KiteOpts{Options: opts,
			Mix: Mix{WriteRatio: 0.2, SyncFrac: 0.2}, Keys: fc.Keys,
			Warmup: fc.Warmup, Measure: fc.Measure})
		if err != nil {
			return err
		}
		out, err := RunFailureStudy(FailureOpts{
			Options: opts, Mix: Mix{WriteRatio: 0.2, SyncFrac: 0.2}, Keys: fc.Keys,
			SleepNode: fc.Nodes - 1,
			SleepFor:  300 * time.Millisecond, Total: 500 * time.Millisecond,
			SleepAt: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fc.printf("%-12v %14.3f %14.3f\n", to, healthy.Mreqs(), out.Intermediate)
	}
	return nil
}

// AblationFastPath prices the fast path: the same mixed workload with the
// fast path enabled vs every relaxed access forced through quorum rounds.
func AblationFastPath(fc FigureConfig) error {
	fc.printf("# Ablation: fast path on/off (mreqs)\n")
	for _, disabled := range []bool{false, true} {
		opts := fc.kiteOptions()
		opts.DisableFastPath = disabled
		res, err := RunKite(KiteOpts{Options: opts,
			Mix: Mix{WriteRatio: 0.05, SyncFrac: 0.05}, Keys: fc.Keys,
			Warmup: fc.Warmup, Measure: fc.Measure})
		if err != nil {
			return err
		}
		name := "fast-path-on"
		if disabled {
			name = "fast-path-off"
		}
		fc.printf("%-16s %10.3f\n", name, res.Mreqs())
	}
	return nil
}
