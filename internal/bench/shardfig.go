package bench

import (
	"fmt"
	"runtime"
	"time"
)

// The sharding scaling study: throughput vs replica-group count at a FIXED
// total machine count. A single group's relaxed-write cost is one broadcast
// to all T-1 peers; carving the same T machines into G groups of T/G cuts
// every write's fan-out to T/G-1 and every sync quorum from T/2+1 to
// T/(2G)+1 — so relaxed throughput should grow near-linearly in G while
// synchronisation cost stays flat or improves. This is the figure that
// shows machines becoming throughput instead of replication degree.

// ShardPoint is one measured point of the scaling series.
type ShardPoint struct {
	Groups        int `json:"groups"`
	NodesPerGroup int `json:"nodes_per_group"`
	// RelaxedMreqs is million requests/s on the write-only relaxed mix
	// (pure Eventual Store broadcasts — the fan-out-bound workload).
	RelaxedMreqs float64 `json:"relaxed_mreqs"`
	// MixedMreqs is million requests/s on the paper's default mixed
	// workload (20% writes, 5% sync).
	MixedMreqs float64 `json:"mixed_mreqs"`
	// SyncMreqs is million requests/s on the all-synchronisation mix
	// (release/acquire ABD quorums only).
	SyncMreqs float64 `json:"sync_mreqs"`
}

// ShardReport is the machine-readable output of FigureShard — the format
// committed as BENCH_0.json and extended by later baselines.
type ShardReport struct {
	Name       string        `json:"name"`
	TotalNodes int           `json:"total_nodes"`
	Workers    int           `json:"workers"`
	Sessions   int           `json:"sessions_per_worker"`
	Keys       uint64        `json:"keys"`
	Measure    time.Duration `json:"measure_ns"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Points     []ShardPoint  `json:"points"`
}

// FigureShard measures the scaling series for every group count in groups
// that divides totalNodes, holding the total machine count and the total
// driven-session count constant (sessions-per-worker scales with G so G
// groups of T/G nodes drive as many sessions as 1 group of T).
func FigureShard(fc FigureConfig, totalNodes int, groups []int) (*ShardReport, error) {
	if totalNodes == 0 {
		totalNodes = 4
	}
	if len(groups) == 0 {
		// Group counts that don't divide totalNodes are skipped below, so
		// the default series serves both the 4-machine pinned config
		// (points 1/2/4) and the 8-machine one (all four points).
		groups = []int{1, 2, 4, 8}
	}
	rep := &ShardReport{
		Name:       "shard-scaling",
		TotalNodes: totalNodes,
		Workers:    fc.Workers,
		Sessions:   fc.SessionsPerWorker,
		Keys:       fc.Keys,
		Measure:    fc.Measure,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fc.printf("# Shard scaling: throughput (mreqs) vs groups, %d machines total\n", totalNodes)
	fc.printf("%-8s %6s %14s %12s %12s\n", "groups", "n/grp", "relaxed-write", "mixed", "sync")
	series := []struct {
		name string
		mix  Mix
	}{
		{"relaxed", Mix{WriteRatio: 1.0}},
		{"mixed", Mix{WriteRatio: 0.20, SyncFrac: 0.05}},
		{"sync", Mix{WriteRatio: 0.50, SyncFrac: 1.0}},
	}
	for _, g := range groups {
		if g < 1 || totalNodes%g != 0 || totalNodes/g < 1 {
			fc.printf("%-8d (skipped: %d machines not divisible)\n", g, totalNodes)
			continue
		}
		opts := fc.kiteOptions()
		opts.Nodes = totalNodes / g
		// Hold the driven-session count constant across points.
		opts.SessionsPerWorker = fc.SessionsPerWorker * g
		pt := ShardPoint{Groups: g, NodesPerGroup: opts.Nodes}
		for _, s := range series {
			res, err := RunKite(KiteOpts{
				Name:    fmt.Sprintf("shard-%s-g%d", s.name, g),
				Options: opts, Groups: g, Mix: s.mix,
				Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
			})
			if err != nil {
				return nil, err
			}
			switch s.name {
			case "relaxed":
				pt.RelaxedMreqs = res.Mreqs()
			case "mixed":
				pt.MixedMreqs = res.Mreqs()
			case "sync":
				pt.SyncMreqs = res.Mreqs()
			}
		}
		rep.Points = append(rep.Points, pt)
		fc.printf("%-8d %6d %14.3f %12.3f %12.3f\n",
			g, pt.NodesPerGroup, pt.RelaxedMreqs, pt.MixedMreqs, pt.SyncMreqs)
	}
	return rep, nil
}
