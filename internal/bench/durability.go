package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// The durability study: what the write-ahead log costs on the workload it
// taxes hardest — relaxed writes, which are otherwise pure in-memory
// appends plus an asynchronous broadcast. Three configurations ladder the
// durability/performance trade-off: no WAL (the paper's memory-only
// evaluation), group-commit (appends buffered, fsync on a deadline — the
// default), and per-op fsync (every acknowledgment preceded by an fsync).
// Group-commit is the interesting point: its cost is one buffered memcpy
// per write plus a background flusher, so it should land within a small
// factor of the memory-only line while bounding data loss to the fsync
// deadline.

// DurabilityPoint is one WAL configuration's measured throughput.
type DurabilityPoint struct {
	// Mode is "off", "group-commit" or "per-op-fsync".
	Mode string `json:"mode"`
	// FsyncIntervalNS is the group-commit deadline (0 off/default, -1
	// per-op).
	FsyncIntervalNS time.Duration `json:"fsync_interval_ns"`
	Mreqs           float64       `json:"mreqs"`
	// RelativeToOff is this point's throughput as a fraction of the
	// memory-only line — the figure's headline number.
	RelativeToOff float64 `json:"relative_to_off"`
}

// DurabilityReport is the machine-readable output of FigureDurability —
// the format committed as BENCH_3.json.
type DurabilityReport struct {
	Name       string            `json:"name"`
	TotalNodes int               `json:"total_nodes"`
	Workers    int               `json:"workers"`
	Sessions   int               `json:"sessions_per_worker"`
	Keys       uint64            `json:"keys"`
	Measure    time.Duration     `json:"measure_ns"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Points     []DurabilityPoint `json:"points"`
}

// FigureDurability measures the relaxed-write workload (100% ES writes —
// the mix a WAL taxes hardest) across the three durability configurations.
func FigureDurability(fc FigureConfig) (*DurabilityReport, error) {
	rep := &DurabilityReport{
		Name:       "durability",
		TotalNodes: fc.Nodes,
		Workers:    fc.Workers,
		Sessions:   fc.SessionsPerWorker,
		Keys:       fc.Keys,
		Measure:    fc.Measure,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	series := []struct {
		mode  string
		wal   bool
		fsync time.Duration
	}{
		{"off", false, 0},
		{"group-commit", true, 0},  // default deadline (10ms)
		{"per-op-fsync", true, -1}, // fsync before every acknowledgment
	}
	fc.printf("# Durability: relaxed-write throughput (mreqs) vs WAL mode, %d nodes\n", fc.Nodes)
	fc.printf("%-16s %10s %10s\n", "mode", "mreqs", "vs-off")
	for _, s := range series {
		// The points share a process; collect between them so a later
		// mode is not taxed for an earlier mode's garbage.
		runtime.GC()
		opts := fc.kiteOptions()
		opts.FsyncInterval = s.fsync
		if s.wal {
			dir, err := os.MkdirTemp("", "kite-bench-wal-*")
			if err != nil {
				return nil, err
			}
			opts.WALDir = dir
			defer os.RemoveAll(dir)
		}
		res, err := RunKite(KiteOpts{
			Name: fmt.Sprintf("durability-%s", s.mode), Options: opts,
			Mix:  Mix{WriteRatio: 1.0},
			Keys: fc.Keys, Warmup: fc.Warmup, Measure: fc.Measure,
		})
		if err != nil {
			return nil, err
		}
		pt := DurabilityPoint{Mode: s.mode, FsyncIntervalNS: s.fsync, Mreqs: res.Mreqs()}
		if len(rep.Points) > 0 && rep.Points[0].Mreqs > 0 {
			pt.RelativeToOff = pt.Mreqs / rep.Points[0].Mreqs
		} else if s.mode == "off" {
			pt.RelativeToOff = 1
		}
		rep.Points = append(rep.Points, pt)
		fc.printf("%-16s %10.3f %9.2fx\n", s.mode, pt.Mreqs, pt.RelativeToOff)
	}
	return rep, nil
}
