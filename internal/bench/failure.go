package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/core"
)

// FailureOpts parameterises the §8.4 failure study: a replica sleeps for
// SleepFor in the middle of a steady mixed workload, and throughput is
// sampled per node on a fixed cadence.
type FailureOpts struct {
	Options   kite.Options
	Mix       Mix // paper: 5% writes, 5% synchronisation
	Keys      uint64
	ValLen    int
	Window    int
	Warmup    time.Duration
	Total     time.Duration // sampled portion of the run
	Sample    time.Duration // sampling period (paper plots ~ms resolution)
	SleepNode int
	SleepAt   time.Duration // offset of the sleep within the sampled window
	SleepFor  time.Duration // paper: 400 ms
}

func (o *FailureOpts) defaults() {
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.ValLen == 0 {
		o.ValLen = 32
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Total == 0 {
		o.Total = 800 * time.Millisecond
	}
	if o.Sample == 0 {
		o.Sample = 20 * time.Millisecond
	}
	if o.SleepAt == 0 {
		o.SleepAt = 100 * time.Millisecond
	}
	if o.SleepFor == 0 {
		o.SleepFor = 400 * time.Millisecond
	}
}

// TimePoint is one sample of the failure-study timeline.
type TimePoint struct {
	At      time.Duration
	PerNode []float64 // mreqs per node over the sample
	Total   float64   // mreqs across nodes
}

// FailureOutcome summarises a failure-study run against the paper's
// qualitative claims (§8.4).
type FailureOutcome struct {
	Timeline []TimePoint
	// Steady-state throughput before the sleep, during the intermediate
	// period, and after recovery (mreqs).
	PreSleep, Intermediate, PostSleep float64
	// PerOperationalNode gives per-node throughput of the operational
	// replicas during the intermediate period (the paper observes it
	// *rises* as the sleeper's network share is released).
	PreSleepPerNode, IntermediatePerNode float64
	// SlowPath reports the victims' slow-path statistics after the run.
	SlowPath core.Stats
}

// RunFailureStudy reproduces Figure 9.
func RunFailureStudy(o FailureOpts) (FailureOutcome, error) {
	o.defaults()
	c, err := kite.NewCluster(o.Options)
	if err != nil {
		return FailureOutcome{}, err
	}
	defer c.Close()

	nodes := c.Nodes()
	var stop atomic.Bool
	counting := atomic.Bool{}
	counted := make([]atomic.Uint64, nodes)

	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for si := 0; si < c.SessionsPerNode(); si++ {
			wg.Add(1)
			go func(n int, s kite.Session, seed int64) {
				defer wg.Done()
				ko := KiteOpts{Mix: o.Mix, Keys: o.Keys, ValLen: o.ValLen, Window: o.Window}
				ko.defaults()
				driveSession(s, ko, seed, &counting, &stop, &counted[n])
			}(n, c.Session(n, si), int64(n*1000+si+7))
		}
	}
	counting.Store(true)

	time.Sleep(o.Warmup)

	// Sample the timeline; trigger the sleep at the configured offset.
	var timeline []TimePoint
	prev := snapshotCounts(counted)
	start := time.Now()
	slept := false
	for elapsed := time.Duration(0); elapsed < o.Total; {
		time.Sleep(o.Sample)
		now := time.Since(start)
		cur := snapshotCounts(counted)
		tp := TimePoint{At: now, PerNode: make([]float64, nodes)}
		dt := (now - elapsed).Seconds()
		for i := 0; i < nodes; i++ {
			tp.PerNode[i] = float64(cur[i]-prev[i]) / dt / 1e6
			tp.Total += tp.PerNode[i]
		}
		timeline = append(timeline, tp)
		prev = cur
		elapsed = now
		if !slept && elapsed >= o.SleepAt {
			c.PauseNode(o.SleepNode, o.SleepFor)
			slept = true
		}
	}
	stop.Store(true)
	wg.Wait()

	out := FailureOutcome{Timeline: timeline, SlowPath: sumStats(c)}
	// Period averages: pre-sleep = samples before SleepAt; intermediate =
	// well inside the sleep; post = after wake + margin.
	var pre, mid, post []TimePoint
	for _, tp := range timeline {
		switch {
		case tp.At < o.SleepAt:
			pre = append(pre, tp)
		case tp.At > o.SleepAt+o.SleepFor/4 && tp.At < o.SleepAt+o.SleepFor:
			mid = append(mid, tp)
		case tp.At > o.SleepAt+o.SleepFor+o.SleepFor/4:
			post = append(post, tp)
		}
	}
	out.PreSleep = avgTotal(pre)
	out.Intermediate = avgTotal(mid)
	out.PostSleep = avgTotal(post)
	out.PreSleepPerNode = avgPerOperational(pre, -1, nodes)
	out.IntermediatePerNode = avgPerOperational(mid, o.SleepNode, nodes)
	return out, nil
}

func snapshotCounts(c []atomic.Uint64) []uint64 {
	out := make([]uint64, len(c))
	for i := range c {
		out[i] = c[i].Load()
	}
	return out
}

func sumStats(c *kite.Cluster) core.Stats {
	var s core.Stats
	for i := 0; i < c.Nodes(); i++ {
		st := c.NodeStats(i)
		s.SlowReads += st.SlowReads
		s.SlowWrites += st.SlowWrites
		s.EpochBumps += st.EpochBumps
		s.SlowReleases += st.SlowReleases
	}
	return s
}

func avgTotal(tps []TimePoint) float64 {
	if len(tps) == 0 {
		return 0
	}
	var sum float64
	for _, tp := range tps {
		sum += tp.Total
	}
	return sum / float64(len(tps))
}

// avgPerOperational averages per-node throughput over nodes other than
// excluded (-1 = none).
func avgPerOperational(tps []TimePoint, excluded, nodes int) float64 {
	if len(tps) == 0 {
		return 0
	}
	var sum float64
	var cnt int
	for _, tp := range tps {
		for i := 0; i < nodes; i++ {
			if i != excluded {
				sum += tp.PerNode[i]
				cnt++
			}
		}
	}
	return sum / float64(cnt)
}

// FormatTimeline renders the Figure-9 timeline as an aligned text table.
func FormatTimeline(out FailureOutcome, sleepNode int) string {
	s := fmt.Sprintf("%8s %10s", "t(ms)", "total")
	for i := range out.Timeline[0].PerNode {
		tag := fmt.Sprintf("node%d", i)
		if i == sleepNode {
			tag += "*"
		}
		s += fmt.Sprintf(" %9s", tag)
	}
	s += "\n"
	for _, tp := range out.Timeline {
		s += fmt.Sprintf("%8.0f %10.3f", float64(tp.At.Milliseconds()), tp.Total)
		for _, v := range tp.PerNode {
			s += fmt.Sprintf(" %9.3f", v)
		}
		s += "\n"
	}
	return s
}
