package es

import (
	"testing"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

func TestHandleWriteAppliesAndAcks(t *testing.T) {
	s := kvs.New(64)
	m := proto.Message{
		Kind: proto.KindESWrite, From: 1, Worker: 3, Key: 9, OpID: 77,
		Stamp: llc.Stamp{Ver: 4, MID: 1}, Value: []byte("v"),
	}
	ack := HandleWrite(s, &m, 2)
	if ack.Kind != proto.KindESAck || ack.OpID != 77 || ack.From != 2 || ack.Worker != 3 {
		t.Fatalf("bad ack %+v", ack)
	}
	buf := make([]byte, kvs.MaxValueLen)
	val, st, _, ok := s.View(9, buf)
	if !ok || string(val) != "v" || st != m.Stamp {
		t.Fatalf("not applied: %q %v %v", val, st, ok)
	}
	// An older write still acks but does not clobber.
	old := m
	old.Stamp = llc.Stamp{Ver: 3, MID: 5}
	old.Value = []byte("stale")
	ack = HandleWrite(s, &old, 2)
	if ack.Kind != proto.KindESAck {
		t.Fatal("old write not acked")
	}
	val, _, _, _ = s.View(9, buf)
	if string(val) != "v" {
		t.Fatalf("old write clobbered: %q", val)
	}
}

func TestTrackerFastPath(t *testing.T) {
	tr := NewTracker(5)
	tr.Add(1, 100, 0)
	tr.Add(2, 101, 0)
	if tr.AllAcked() {
		t.Fatal("fresh tracker claims all acked")
	}
	for _, from := range []uint8{1, 2, 3, 4} {
		tr.Ack(1, from)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after full ack of one write", tr.Len())
	}
	for _, from := range []uint8{1, 2, 3} {
		tr.Ack(2, from)
	}
	if tr.AllAcked() {
		t.Fatal("3/5 acks treated as all")
	}
	if pw, done := tr.Ack(2, 4); !done || pw == nil {
		t.Fatal("final ack not detected")
	}
	if !tr.AllAcked() {
		t.Fatal("tracker not clean")
	}
}

func TestTrackerDuplicateAndUnknownAcks(t *testing.T) {
	tr := NewTracker(3)
	tr.Add(1, 100, 0)
	tr.Ack(1, 1)
	tr.Ack(1, 1) // duplicate
	if tr.AllAcked() {
		t.Fatal("duplicate ack completed the write")
	}
	if pw, done := tr.Ack(99, 1); pw != nil || done {
		t.Fatal("unknown op acked")
	}
	tr.Ack(1, 2)
	if !tr.AllAcked() {
		t.Fatal("write not settled")
	}
	if pw, done := tr.Ack(1, 2); pw != nil || done {
		t.Fatal("ack after settle returned state")
	}
}

func TestTrackerQuorumAndDMSet(t *testing.T) {
	tr := NewTracker(5) // quorum = 3
	tr.Add(1, 100, 0)   // acked by {0}
	tr.Add(2, 101, 0)   // acked by {0}
	if tr.QuorumAcked() {
		t.Fatal("quorum with a single ack")
	}
	tr.Ack(1, 1)
	tr.Ack(1, 2) // write 1: {0,1,2} = quorum
	tr.Ack(2, 3) // write 2: {0,3} = below quorum
	if tr.QuorumAcked() {
		t.Fatal("write 2 below quorum but QuorumAcked true")
	}
	tr.Ack(2, 4) // write 2: {0,3,4} = quorum
	if !tr.QuorumAcked() {
		t.Fatal("both writes at quorum but QuorumAcked false")
	}
	// DM-set: write 1 missing {3,4}, write 2 missing {1,2}.
	if dm := tr.DMSet(); dm != 0b11110 {
		t.Fatalf("DMSet = %05b, want 11110", dm)
	}
	if un := tr.Unacked(1); un != 0b11000 {
		t.Fatalf("Unacked(1) = %05b", un)
	}
	if un := tr.Unacked(42); un != 0 {
		t.Fatalf("Unacked(unknown) = %05b", un)
	}
}

func TestTrackerSettle(t *testing.T) {
	tr := NewTracker(3)
	tr.Add(5, 100, 0)
	tr.Add(6, 101, 0)
	tr.Settle()
	// Settled writes satisfy the release barrier (AllAcked) but keep
	// gating the cross-shard fence (FullyAcked) and keep retransmitting
	// (Unacked) until every replica acks.
	if !tr.AllAcked() || tr.Len() != 0 {
		t.Fatal("tracker not barrier-clean after settle")
	}
	if tr.FullyAcked() {
		t.Fatal("settled writes must still gate FullyAcked")
	}
	if un := tr.Unacked(5); un != 0b110 {
		t.Fatalf("Unacked(settled) = %03b, want 110", un)
	}
	// Tracker remains usable.
	tr.Add(7, 102, 1)
	if tr.Len() != 1 {
		t.Fatal("tracker unusable after settle")
	}
	// Acks drain settled entries into full acknowledgement.
	for _, from := range []uint8{1, 2} {
		tr.Ack(5, from)
		tr.Ack(6, from)
	}
	tr.Ack(7, 0)
	tr.Ack(7, 2)
	if !tr.FullyAcked() {
		t.Fatal("tracker not fully acked after all acks")
	}
}

func TestPopcount(t *testing.T) {
	for x, want := range map[uint16]int{0: 0, 1: 1, 0b1010: 2, 0xffff: 16} {
		if got := popcount16(x); got != want {
			t.Errorf("popcount16(%b) = %d, want %d", x, got, want)
		}
	}
}

func TestTrackerRefit(t *testing.T) {
	// 4 members {0,1,2,3}; two writes, one missing only node 3's ack, one
	// missing nodes 2 and 3.
	tr := NewTrackerMask(0b1111)
	tr.Add(1, 10, 0)
	tr.Ack(1, 1)
	tr.Ack(1, 2)
	tr.Add(2, 20, 0)
	tr.Ack(2, 1)
	if tr.AllAcked() {
		t.Fatal("writes should be pending")
	}
	// Removing node 3 completes write 1 (acked by all of {0,1,2}) but not
	// write 2 (still missing node 2).
	done := tr.Refit(0b0111)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("Refit completed %v, want [1]", done)
	}
	if tr.AllAcked() || tr.Unacked(2) != 0b0100 {
		t.Fatalf("write 2 should still await node 2 (unacked %b)", tr.Unacked(2))
	}
	// Node 2's remaining ack completes write 2 under the shrunk set.
	if _, full := tr.Ack(2, 2); !full {
		t.Fatal("write 2 should complete once node 2 acked")
	}
	// Growing the set mid-write: the old members' acks no longer suffice
	// once node 4 joins — the write also waits for the joiner.
	tr.Add(3, 30, 0)
	tr.Refit(0b10111)
	tr.Ack(3, 1)
	if _, full := tr.Ack(3, 2); full {
		t.Fatal("write 3 completed without the joiner's ack")
	}
	if _, full := tr.Ack(3, 4); !full {
		t.Fatal("write 3 should complete once every member of the grown set acked")
	}
	// A stale ack from a removed member is harmless.
	tr.Refit(0b0111)
	if pw, _ := tr.Ack(99, 3); pw != nil {
		t.Fatal("unknown write acked")
	}
}
