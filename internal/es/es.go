package es

import (
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

// HandleWrite processes an incoming ES write at a replica: apply the value
// if its stamp is newer than the local one, then ack. The ack is sent only
// after the local store reflects the write (or a newer one), which is what
// makes an ack mean "a local read here can no longer miss this write" — the
// property the fast path's all-ack rule relies on.
func HandleWrite(s *kvs.Store, m *proto.Message, self uint8) proto.Message {
	s.Apply(m.Key, m.Value, m.Stamp)
	return m.Reply(proto.KindESAck, self)
}

// HandleValidate processes a validate broadcast: the origin of one or more
// relaxed writes has collected acks from EVERY current member, so each
// (key, stamp) pair may be marked locally readable — Hermes-style
// validation. The store only sets the bit if the named stamp is still the
// installed one; a newer write has already re-invalidated the key and its
// own full-ack will bring its own validate. No reply: validates are
// fire-and-forget, and losing one merely leaves the key on the ABD
// fallback path.
func HandleValidate(s *kvs.Store, m *proto.Message) {
	for i := 0; i+1 < len(m.Origins); i += 2 {
		s.Validate(m.Origins[i], llc.Unpack(m.Origins[i+1]))
	}
}

// AppendValidate packs a fully-acked write's (key, stamp) pair onto a
// pending validate batch (the wire encoding HandleValidate consumes).
func AppendValidate(batch []uint64, key uint64, st llc.Stamp) []uint64 {
	return append(batch, key, st.Pack())
}

// PendingWrite tracks one relaxed write awaiting acknowledgements.
type PendingWrite struct {
	OpID  uint64
	Key   uint64
	Acked uint16 // bitmask of nodes that acked (origin included)
}

// Tracker is a session's ledger of writes that have not yet been acked by
// every replica. A release may begin only once the pending set is clean —
// or once the slow-release protocol has published its DM-set, which moves
// the writes to the settled set: covered for the purposes of *this group's*
// release barrier (later acquires here consult the DM-set), but still short
// of full replication. The distinction matters to OpFlush, the cross-shard
// fence: a DM-set is invisible to consumers synchronising in a different
// replica group, so the fence waits for pending AND settled to drain
// (FullyAcked), while releases keep the paper's availability story
// (AllAcked, pending only).
type Tracker struct {
	pending map[uint64]*PendingWrite
	// settled holds writes whose DM-set a slow release has published; their
	// broadcasts keep retransmitting until every replica acks. Bounded by
	// write throughput during a replica outage (entries drain in one burst
	// when the straggler wakes and acks).
	settled map[uint64]*PendingWrite
	full    uint16 // all-nodes bitmask
	quorum  int
}

// NewTracker creates a tracker for a deployment of n nodes (ids 0..n-1).
func NewTracker(n int) *Tracker {
	return NewTrackerMask(uint16(1<<n) - 1)
}

// NewTrackerMask creates a tracker for the member set given as a node-id
// bitmask — the membership-aware constructor (member ids need not be
// contiguous after a replica removal).
func NewTrackerMask(full uint16) *Tracker {
	return &Tracker{
		pending: make(map[uint64]*PendingWrite, 16),
		settled: make(map[uint64]*PendingWrite),
		full:    full,
		quorum:  popcount16(full)/2 + 1,
	}
}

// Refit retargets the tracker at a new member set after a configuration
// epoch install. Writes already acked by every CURRENT member complete
// immediately (their ids are returned so the owner can retire the
// retransmitting ops — the case that matters is a removed replica whose
// missing ack would otherwise gate releases and flushes forever); writes
// still short of the new full set keep retransmitting, now also toward any
// added member. Acks recorded from removed members are kept — harmless,
// since completion tests intersect with the current mask.
func (t *Tracker) Refit(full uint16) (completed []uint64) {
	t.full = full
	t.quorum = popcount16(full)/2 + 1
	for _, set := range [2]map[uint64]*PendingWrite{t.pending, t.settled} {
		for id, pw := range set {
			if pw.Acked&full == full {
				delete(set, id)
				completed = append(completed, id)
			}
		}
	}
	return completed
}

// Add registers a new write. selfAcked is the origin's own node bit, acked
// implicitly by the local apply.
func (t *Tracker) Add(opID, key uint64, self uint8) *PendingWrite {
	pw := &PendingWrite{OpID: opID, Key: key, Acked: 1 << self}
	t.pending[opID] = pw
	return pw
}

// Ack records node `from` acking write opID (pending or settled). It
// returns the write's entry (nil if unknown) and whether the write is now
// fully acked, in which case it has been removed from the tracker.
func (t *Tracker) Ack(opID uint64, from uint8) (pw *PendingWrite, done bool) {
	set := t.pending
	pw, ok := set[opID]
	if !ok {
		set = t.settled
		if pw, ok = set[opID]; !ok {
			return nil, false
		}
	}
	pw.Acked |= 1 << from
	// Superset test, not equality: after a reconfiguration the entry may
	// hold acks from since-removed members, and after an add the mask can
	// grow mid-write.
	if pw.Acked&t.full == t.full {
		delete(set, opID)
		return pw, true
	}
	return pw, false
}

// Len reports how many unsettled writes still await full acknowledgement
// (the release barrier's and flow control's working set; settled writes no
// longer gate either).
func (t *Tracker) Len() int { return len(t.pending) }

// AllAcked reports whether every unsettled write has been acked by all
// nodes — the fast-path release condition. Settled writes are excluded:
// their DM-set is already published, which is all an in-group release
// needs.
func (t *Tracker) AllAcked() bool { return len(t.pending) == 0 }

// FullyAcked reports whether every write of the session — settled or not —
// has been acked by all nodes: the OpFlush condition. Unlike AllAcked it
// does not credit published DM-sets, because the fence exists for
// consumers that will never observe them (§DESIGN "Sharding").
func (t *Tracker) FullyAcked() bool { return len(t.pending) == 0 && len(t.settled) == 0 }

// QuorumAcked reports whether every tracked write has been acked by at
// least a quorum — invariant (1) of the slow-path release (§4.2).
func (t *Tracker) QuorumAcked() bool {
	for _, pw := range t.pending {
		if popcount16(pw.Acked&t.full) < t.quorum {
			return false
		}
	}
	return true
}

// DMSet returns the delinquent machines bitmask: every node that has failed
// to ack at least one tracked write.
func (t *Tracker) DMSet() uint16 {
	var dm uint16
	for _, pw := range t.pending {
		dm |= t.full &^ pw.Acked
	}
	return dm
}

// Unacked returns, for write opID (pending or settled), the bitmask of
// nodes that have not acked it yet (used to retransmit to stragglers only).
func (t *Tracker) Unacked(opID uint64) uint16 {
	if pw, ok := t.pending[opID]; ok {
		return t.full &^ pw.Acked
	}
	if pw, ok := t.settled[opID]; ok {
		return t.full &^ pw.Acked
	}
	return 0
}

// Settle moves every pending write to the settled set: called once a
// slow-release has published the DM-set to a quorum, after which the
// writes are covered by this group's barrier invariant (AllAcked) — but
// they keep retransmitting and keep gating FullyAcked until every replica
// truly acks, because a published DM-set repairs only consumers that
// acquire in this group.
func (t *Tracker) Settle() {
	for id, pw := range t.pending {
		t.settled[id] = pw
	}
	t.pending = make(map[uint64]*PendingWrite, 16)
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
