package es

import (
	"bytes"
	"encoding/binary"
	"testing"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

// This file attacks the local-read valid bit (DESIGN.md "Local reads") at
// the protocol layer, below the node event loops: real kvs.Store replicas,
// a real Tracker at the origin, the real HandleWrite/HandleValidate
// replica handlers, and an adversarial scheduler (the fuzzer) choosing the
// delivery order — including duplication, reordering, writes overtaking
// their own validates, sync installs racing validation, epoch bumps and
// crash-replay.
//
// The checked property is the fast path's entire safety argument:
//
//	valid ⇒ the entry holds the value of a relaxed write that every
//	        replica has acknowledged (a linearization point in the past),
//	        at that write's exact stamp.
//
// plus the two fencing properties the acquire path leans on: an epoch-
// bumped machine gets no hits on out-of-epoch keys, and a replayed
// (crash-restarted) store boots with every key invalid.

const (
	fuzzNodes = 3
	fuzzKeys  = 4
)

// fuzzWrite is one relaxed write issued by the origin (node 0).
type fuzzWrite struct {
	opID uint64
	key  uint64
	st   llc.Stamp
	val  []byte
}

type fuzzState struct {
	stores [fuzzNodes]*kvs.Store
	epochs [fuzzNodes]uint64
	tr     *Tracker

	writes []*fuzzWrite
	// undelivered writes per remote replica (indices into writes). Delivery
	// does not remove — the fuzzer may re-deliver, modelling retransmission.
	pendWrite [fuzzNodes][]int
	// acks awaiting the origin: (write index, acking replica).
	pendAck [][2]int
	// undelivered validate pairs per replica (origin included — the real
	// loopback delivery is also asynchronous w.r.t. other handlers).
	pendVal [fuzzNodes][]uint64

	fullyAcked map[uint64]bool   // packed stamp -> every replica acked
	relaxedVal map[uint64][]byte // packed stamp -> written value

	nextVal uint64
}

func newFuzzState() *fuzzState {
	fs := &fuzzState{
		tr:         NewTracker(fuzzNodes),
		fullyAcked: make(map[uint64]bool),
		relaxedVal: make(map[uint64][]byte),
	}
	for i := range fs.stores {
		fs.stores[i] = kvs.New(64)
	}
	return fs
}

func (fs *fuzzState) issueWrite(key uint64) {
	fs.nextVal++
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, fs.nextVal)
	st := fs.stores[0].LocalWrite(key, val, 0)
	w := &fuzzWrite{opID: uint64(len(fs.writes) + 1), key: key, st: st, val: val}
	fs.writes = append(fs.writes, w)
	fs.tr.Add(w.opID, key, 0)
	for r := 1; r < fuzzNodes; r++ {
		fs.pendWrite[r] = append(fs.pendWrite[r], len(fs.writes)-1)
	}
}

func (fs *fuzzState) deliverWrite(r, pick int) {
	if len(fs.pendWrite[r]) == 0 {
		return
	}
	w := fs.writes[fs.pendWrite[r][pick%len(fs.pendWrite[r])]]
	m := proto.Message{Kind: proto.KindESWrite, From: 0, Key: w.key, OpID: w.opID, Stamp: w.st, Value: w.val}
	HandleWrite(fs.stores[r], &m, uint8(r))
	fs.pendAck = append(fs.pendAck, [2]int{int(w.opID) - 1, r})
}

func (fs *fuzzState) deliverAck(pick int) {
	if len(fs.pendAck) == 0 {
		return
	}
	i := pick % len(fs.pendAck)
	wi, from := fs.pendAck[i][0], fs.pendAck[i][1]
	fs.pendAck = append(fs.pendAck[:i], fs.pendAck[i+1:]...)
	w := fs.writes[wi]
	if _, done := fs.tr.Ack(w.opID, uint8(from)); done {
		// Full ack: the origin queues a validate for every replica (its own
		// store included, via the loopback flush).
		fs.fullyAcked[w.st.Pack()] = true
		fs.relaxedVal[w.st.Pack()] = w.val
		for r := 0; r < fuzzNodes; r++ {
			fs.pendVal[r] = AppendValidate(fs.pendVal[r], w.key, w.st)
		}
	}
}

func (fs *fuzzState) deliverValidate(r, pick int) {
	pairs := len(fs.pendVal[r]) / 2
	if pairs == 0 {
		return
	}
	i := (pick % pairs) * 2
	m := proto.Message{Kind: proto.KindESValidate, Origins: fs.pendVal[r][i : i+2 : i+2]}
	fs.pendVal[r] = append(fs.pendVal[r][:i], fs.pendVal[r][i+2:]...)
	HandleValidate(fs.stores[r], &m)
}

// syncInstall models the install half of an ABD write-back / Paxos commit
// at one replica: a strictly newer stamp minted with a non-origin machine
// id, applied through the same Store.Apply the live handlers use. Sync
// stamps never enter relaxedVal/fullyAcked — if one ever surfaces from
// ViewValid, the invariant trips.
func (fs *fuzzState) syncInstall(r int, key uint64) {
	var buf [kvs.MaxValueLen]byte
	_, st, _, _ := fs.stores[r].View(key, buf[:])
	st = st.Next(uint8(8 + r))
	fs.stores[r].Apply(key, []byte("sync"), st)
}

// replay models a crash-restart: the store is rebuilt by re-applying every
// surviving (key, value, stamp) through Store.Apply, exactly like WAL
// replay and the catch-up sweep do — so every key must boot invalid.
func (fs *fuzzState) replay(t *testing.T, r int) {
	t.Helper()
	var buf [kvs.MaxValueLen]byte
	fresh := kvs.New(64)
	for k := uint64(0); k < fuzzKeys; k++ {
		if val, st, _, ok := fs.stores[r].View(k, buf[:]); ok {
			fresh.Apply(k, val, st)
		}
	}
	fs.stores[r] = fresh
	for k := uint64(0); k < fuzzKeys; k++ {
		if _, _, ok := fs.stores[r].ViewValid(k, fs.epochs[r], buf[:]); ok {
			t.Fatalf("replica %d: key %d valid immediately after replay", r, k)
		}
	}
}

// check asserts the safety property at every replica and key.
func (fs *fuzzState) check(t *testing.T) {
	t.Helper()
	var buf [kvs.MaxValueLen]byte
	for r := 0; r < fuzzNodes; r++ {
		for k := uint64(0); k < fuzzKeys; k++ {
			val, st, ok := fs.stores[r].ViewValid(k, fs.epochs[r], buf[:])
			if !ok {
				continue
			}
			if fs.epochs[r] != 0 {
				// The model never advances key epochs, so a bumped machine
				// epoch must fence off every hit.
				t.Fatalf("replica %d: key %d served locally after epoch bump to %d", r, k, fs.epochs[r])
			}
			if !fs.fullyAcked[st.Pack()] {
				t.Fatalf("replica %d: key %d valid at stamp %+v which was never fully acked", r, k, st)
			}
			if want := fs.relaxedVal[st.Pack()]; !bytes.Equal(val, want) {
				t.Fatalf("replica %d: key %d valid with value %q, want %q (stamp %+v)", r, k, val, want, st)
			}
		}
	}
}

// FuzzValidBit drives random interleavings of write-broadcast, ack,
// full-ack validation, sync installs, proactive invalidation, epoch bumps
// and crash-replay, checking after every step that a locally-readable
// (valid) entry always exposes a fully-replicated relaxed write's value.
func FuzzValidBit(f *testing.F) {
	// Happy path: write, deliver everywhere, ack, validate everywhere.
	f.Add([]byte{0, 0, 1, 1, 0, 1, 2, 0, 2, 0, 2, 0, 3, 0, 0, 3, 1, 0, 3, 2, 0})
	// Validate racing a newer write; replay; epoch bump.
	f.Add([]byte{0, 1, 1, 1, 0, 2, 0, 0, 1, 7, 1, 0, 6, 2, 0, 3, 1, 0, 5, 1, 1})
	// Sync install racing validation; proactive invalidate.
	f.Add([]byte{0, 2, 1, 1, 0, 1, 2, 0, 2, 0, 2, 0, 4, 1, 2, 3, 1, 0, 5, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := newFuzzState()
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i]%8, int(data[i+1]), int(data[i+2])
			switch op {
			case 0:
				fs.issueWrite(uint64(a) % fuzzKeys)
			case 1:
				fs.deliverWrite(1+a%(fuzzNodes-1), b)
			case 2:
				fs.deliverAck(a)
			case 3:
				fs.deliverValidate(a%fuzzNodes, b)
			case 4:
				fs.syncInstall(a%fuzzNodes, uint64(b)%fuzzKeys)
			case 5:
				fs.stores[a%fuzzNodes].Invalidate(uint64(b) % fuzzKeys)
			case 6:
				fs.epochs[a%fuzzNodes]++
			case 7:
				fs.replay(t, a%fuzzNodes)
			}
			fs.check(t)
		}
	})
}

// TestValidBitHappyPath pins the positive direction the fuzzer cannot: a
// fully-acked, validated write IS served by ViewValid, and each documented
// transition — newer install, proactive invalidation, stamp-mismatched
// (stale) validate — takes it off the fast path again.
func TestValidBitHappyPath(t *testing.T) {
	fs := newFuzzState()
	var buf [kvs.MaxValueLen]byte

	fs.issueWrite(2)
	for r := 1; r < fuzzNodes; r++ {
		fs.deliverWrite(r, 0)
	}
	fs.deliverAck(0)
	fs.deliverAck(0)
	for r := 0; r < fuzzNodes; r++ {
		fs.deliverValidate(r, 0)
	}
	w := fs.writes[0]
	for r := 0; r < fuzzNodes; r++ {
		val, st, ok := fs.stores[r].ViewValid(2, 0, buf[:])
		if !ok || !bytes.Equal(val, w.val) || st != w.st {
			t.Fatalf("replica %d: validated key not served: ok=%v val=%q st=%+v", r, ok, val, st)
		}
	}

	// A proactive invalidation (ABD round 1 observed) drops the hit.
	fs.stores[1].Invalidate(2)
	if _, _, ok := fs.stores[1].ViewValid(2, 0, buf[:]); ok {
		t.Fatal("hit survived Invalidate")
	}

	// A newer install drops the hit, and the OLD write's validate cannot
	// resurrect it (stamp mismatch).
	fs.syncInstall(2, 2)
	if _, _, ok := fs.stores[2].ViewValid(2, 0, buf[:]); ok {
		t.Fatal("hit survived a newer install")
	}
	fs.stores[2].Validate(2, w.st)
	if _, _, ok := fs.stores[2].ViewValid(2, 0, buf[:]); ok {
		t.Fatal("stale validate resurrected a superseded value")
	}

	// Epoch fencing: the hit on replica 0 dies with a machine epoch bump.
	fs.epochs[0]++
	if _, _, ok := fs.stores[0].ViewValid(2, fs.epochs[0], buf[:]); ok {
		t.Fatal("hit survived an epoch bump")
	}
}
