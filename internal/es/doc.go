// Package es implements Eventual Store (ES), the protocol Kite maps relaxed
// reads and writes to (§3.2 of the paper).
//
// ES achieves per-key Sequential Consistency for replicated KVSs by
// maintaining a Lamport logical clock (internal/llc) per key, giving every
// write a unique stamp that serialises writes to the key. It is
// deliberately minimal — exactly the "no more than necessary" protocol of
// the paper: reads execute locally against the node's KVS; writes apply
// locally with a bumped per-key LLC and broadcast the new value to every
// replica, which applies it iff the stamp is newer (last-writer-wins).
//
// What ES contributes to Kite beyond plain eventual consistency is the
// ACK TRACKING used by the Release Consistency barrier (§4.2): every
// relaxed write gathers acknowledgements from all replicas, and the Tracker
// in this package is the per-session ledger the release barrier consults
// ("have all my writes been acked by everyone?") and from which the DM-set
// of delinquent machines is computed on timeout.
//
// The Tracker distinguishes two ledgers, a distinction introduced by the
// sharding layer (DESIGN.md "Sharding"):
//
//   - pending — writes not yet fully acked and not covered by any published
//     DM-set. They gate both the in-group release barrier (AllAcked) and
//     the cross-shard flush fence (FullyAcked).
//   - settled — writes whose DM-set a slow release has published. They
//     satisfy the in-group barrier (later acquires in this group consult
//     the DM-set) but keep retransmitting and keep gating the flush fence,
//     because a DM-set is invisible to consumers synchronising in a
//     different replica group.
//
// The ack an ES replica sends means, precisely: "a local read here can no
// longer miss this write". That meaning is load-bearing in two places — the
// fast path's all-ack rule (§4.2), and the rejoin design (DESIGN.md
// "Recovery"), where a replica catching up after a restart still applies
// and acks ES writes because it serves no local reads until its sweep
// completes and its applied writes survive the sweep's last-writer-wins
// merge.
package es
