// Package abd implements multi-writer ABD (Lynch & Shvartsman's variant of
// Attiya-Bar-Noy-Dolev), the protocol Kite maps releases and acquires to
// (§3.3). ABD emulates linearizable reads and writes over an asynchronous
// message-passing system using only quorums — no leader, no failure
// detector — which is what lets Kite's synchronisation operations stay
// available as long as a majority of replicas is reachable.
//
//   - A write performs two broadcast rounds: a lightweight round that reads
//     the per-key LLCs of a quorum (so the writer picks a stamp above
//     everything completed), and a round that broadcasts the value with its
//     new stamp, completing on a quorum of acks.
//   - A read performs one broadcast round collecting (value, stamp) from a
//     quorum and returns the max-stamp value; if that value was not seen at
//     a quorum, it first performs a write-back round so that the read's
//     result is guaranteed visible to any subsequent read (the "reads must
//     write" rule that gives linearizability).
//
// The package provides the replica-side handlers and the originator-side op
// state machines (WriteOp, ReadOp). Stripped-down slow-path variants used by
// Kite's out-of-epoch relaxed accesses (§4.3) — a read without write-back
// and a write that completes without waiting for value-round acks — are
// expressed by the same state machines via options.
package abd

import (
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

// --- Replica-side handlers -------------------------------------------------

// HandleReadTS answers the lightweight LLC-read round of an ABD write (also
// used by slow-path relaxed writes with its own message kind).
func HandleReadTS(s *kvs.Store, m *proto.Message, self uint8, replyKind proto.Kind) proto.Message {
	rep := m.Reply(replyKind, self)
	if st, ok := s.ViewStamp(m.Key); ok {
		rep.Stamp = st
	}
	return rep
}

// HandleWrite answers the value round of an ABD write (and acquire
// write-backs): install the value if its stamp is newer, ack regardless.
// Acking stale stamps is required — a write-back of an already-superseded
// value must still complete its quorum.
func HandleWrite(s *kvs.Store, m *proto.Message, self uint8) proto.Message {
	s.Apply(m.Key, m.Value, m.Stamp)
	return m.Reply(proto.KindABDWriteAck, self)
}

// HandleRead answers a read round (acquires and slow-path relaxed reads):
// return the local (value, stamp). buf is scratch of at least
// kvs.MaxValueLen bytes; the reply's Value is copied out of it.
func HandleRead(s *kvs.Store, m *proto.Message, self uint8, buf []byte) proto.Message {
	rep := m.Reply(proto.KindReadReply, self)
	val, st, _, ok := s.View(m.Key, buf)
	if ok {
		rep.Stamp = st
		if len(val) > 0 {
			v := make([]byte, len(val))
			copy(v, val)
			rep.Value = v
		}
	}
	return rep
}

// --- Originator-side state machines ----------------------------------------

// WritePhase enumerates the write state machine's phases.
type WritePhase uint8

// Write phases.
const (
	WriteReadTS WritePhase = iota // waiting for quorum of LLC replies
	WriteValue                    // waiting for quorum of value acks
	WriteDone
)

// WriteOp drives one ABD write (a Kite release, an acquire write-back does
// not use this — it reuses the read op). The caller broadcasts the round
// messages; the op only folds replies and says what to do next.
type WriteOp struct {
	Key    uint64
	OpID   uint64
	Val    []byte
	Phase  WritePhase
	MaxTS  llc.Stamp // max stamp seen in round 1
	Stamp  llc.Stamp // stamp assigned to the write (set entering round 2)
	quorum int
	seen   uint16 // round-1 repliers
	acks   uint16 // round-2 ackers
	// FireAndForget makes the op complete as soon as round 2 is broadcast,
	// without waiting for acks — the §4.3 slow-path relaxed write.
	FireAndForget bool
}

// NewWriteOp creates a write op for an n-replica deployment.
func NewWriteOp(key, opID uint64, val []byte, n int, fireAndForget bool) *WriteOp {
	return &WriteOp{Key: key, OpID: opID, Val: val, quorum: n/2 + 1, FireAndForget: fireAndForget}
}

// ReadTSMsg builds the round-1 broadcast message.
func (w *WriteOp) ReadTSMsg(self, worker uint8, kind proto.Kind) proto.Message {
	return proto.Message{Kind: kind, From: self, Worker: worker, Key: w.Key, OpID: w.OpID}
}

// OnReadTS folds a round-1 reply. It returns true when the quorum is
// reached and the op advances to the value round.
func (w *WriteOp) OnReadTS(m *proto.Message) (startValueRound bool) {
	if w.Phase != WriteReadTS {
		return false
	}
	bit := uint16(1) << m.From
	if w.seen&bit != 0 {
		return false
	}
	w.seen |= bit
	w.MaxTS = llc.Max(w.MaxTS, m.Stamp)
	if popcount16(w.seen) >= w.quorum {
		w.Phase = WriteValue
		return true
	}
	return false
}

// ValueMsg builds the round-2 broadcast carrying the value stamped with st
// (the caller computes st via kvs.WriteAtLeast so the local stamp is also
// dominated).
func (w *WriteOp) ValueMsg(st llc.Stamp, self, worker uint8) proto.Message {
	w.Stamp = st
	return proto.Message{
		Kind: proto.KindABDWrite, From: self, Worker: worker,
		Key: w.Key, OpID: w.OpID, Stamp: st, Value: w.Val,
	}
}

// OnWriteAck folds a round-2 ack; true means the write completed.
func (w *WriteOp) OnWriteAck(m *proto.Message) (done bool) {
	if w.Phase != WriteValue {
		return false
	}
	w.acks |= 1 << m.From
	if popcount16(w.acks) >= w.quorum {
		w.Phase = WriteDone
		return true
	}
	return false
}

// Unseen returns the bitmask of nodes that have not replied to the current
// round (for retransmission). full is the all-nodes mask.
func (w *WriteOp) Unseen(full uint16) uint16 {
	switch w.Phase {
	case WriteReadTS:
		return full &^ w.seen
	case WriteValue:
		return full &^ w.acks
	}
	return 0
}

// Refit retargets the op at a reconfigured member set (quorum size and
// member bitmask), discarding replies recorded from removed members, and
// reports whether the CURRENT round's surviving replies now form a quorum
// — without this, a round blocked solely on a removed member's reply would
// retransmit forever at a node whose frames the epoch check rejects.
// true means: WriteReadTS phase → start the value round (the op has
// advanced to WriteValue; MaxTS holds the round-1 result); WriteValue
// phase → the write completed (WriteDone). Safe because majorities of
// adjacent configurations intersect (DESIGN.md "Membership").
func (w *WriteOp) Refit(quorum int, full uint16) bool {
	w.quorum = quorum
	w.seen &= full
	w.acks &= full
	switch w.Phase {
	case WriteReadTS:
		if popcount16(w.seen) >= w.quorum {
			w.Phase = WriteValue
			return true
		}
	case WriteValue:
		if popcount16(w.acks) >= w.quorum {
			w.Phase = WriteDone
			return true
		}
	}
	return false
}

// ReadPhase enumerates the read state machine's phases.
type ReadPhase uint8

// Read phases.
const (
	ReadRound     ReadPhase = iota // waiting for quorum of (value, stamp) replies
	ReadWriteBack                  // waiting for quorum of write-back acks
	ReadDone
)

// ReadOp drives one ABD read: a Kite acquire (NeedWriteBack=true) or a
// stripped slow-path relaxed read (NeedWriteBack=false; §4.3 — relaxed
// reads only need quorum intersection with completed writes, not
// linearizability, so the optional second round is skipped).
type ReadOp struct {
	Key   uint64
	OpID  uint64
	Phase ReadPhase
	// Result of round 1.
	MaxTS  llc.Stamp
	MaxVal []byte
	// Delinquent accumulates the you-are-delinquent flags piggybacked on
	// acquire replies (§4.2: the acquirer learns by querying a quorum).
	// DelinqMask records which counted repliers flagged: the reset-bit is
	// sent to exactly those — an uncounted replica may have moved our bit
	// to Trans for a *newer* release, and a reset reaching it would clear
	// suspicion this acquire's epoch bump does not answer for. Replicas it
	// never reaches self-heal: Trans still reads as suspected, so the next
	// counted acquire is flagged and carries a fresh reset.
	Delinquent bool
	DelinqMask uint16

	NeedWriteBack bool
	quorum        int
	seen          uint16
	atMax         uint16 // repliers whose stamp equals MaxTS
	acks          uint16
}

// NewReadOp creates a read op for an n-replica deployment.
func NewReadOp(key, opID uint64, n int, needWriteBack bool) *ReadOp {
	return &ReadOp{Key: key, OpID: opID, quorum: n/2 + 1, NeedWriteBack: needWriteBack}
}

// ReadMsg builds the round-1 broadcast. Acquires use proto.KindAcqRead so
// replicas run the delinquency check; slow-path reads use proto.KindSlowRead.
func (r *ReadOp) ReadMsg(self, worker uint8, kind proto.Kind) proto.Message {
	return proto.Message{Kind: kind, From: self, Worker: worker, Key: r.Key, OpID: r.OpID}
}

// ReadAction tells the caller what to do after folding a reply.
type ReadAction uint8

// Actions returned by OnReadReply / OnWriteAck.
const (
	ReadWait         ReadAction = iota // keep collecting
	ReadComplete                       // op done; MaxVal/MaxTS hold the result
	ReadWriteBackNow                   // broadcast WriteBackMsg, collect acks
)

// OnReadReply folds a round-1 reply.
func (r *ReadOp) OnReadReply(m *proto.Message) ReadAction {
	if r.Phase != ReadRound {
		return ReadWait
	}
	bit := uint16(1) << m.From
	if r.seen&bit != 0 {
		return ReadWait
	}
	r.seen |= bit
	if m.Flags&proto.FlagDelinquent != 0 {
		r.Delinquent = true
		r.DelinqMask |= bit
	}
	switch {
	case r.MaxTS.Less(m.Stamp):
		r.MaxTS = m.Stamp
		r.MaxVal = append(r.MaxVal[:0], m.Value...)
		r.atMax = bit
	case r.MaxTS.Equal(m.Stamp):
		r.atMax |= bit
	}
	if popcount16(r.seen) < r.quorum {
		return ReadWait
	}
	// Quorum reached. If the max-stamp value is already at a quorum of the
	// repliers, it is visible to any later quorum; otherwise linearizable
	// reads must write it back first.
	if !r.NeedWriteBack || popcount16(r.atMax) >= r.quorum || r.MaxTS.IsZero() {
		r.Phase = ReadDone
		return ReadComplete
	}
	r.Phase = ReadWriteBack
	return ReadWriteBackNow
}

// WriteBackMsg builds the second-round broadcast: the max value re-written
// with its *original* stamp (write-backs do not create a new version).
func (r *ReadOp) WriteBackMsg(self, worker uint8) proto.Message {
	return proto.Message{
		Kind: proto.KindABDWrite, From: self, Worker: worker,
		Key: r.Key, OpID: r.OpID, Stamp: r.MaxTS, Value: r.MaxVal,
	}
}

// OnWriteAck folds a write-back ack.
func (r *ReadOp) OnWriteAck(m *proto.Message) ReadAction {
	if r.Phase != ReadWriteBack {
		return ReadWait
	}
	r.acks |= 1 << m.From
	if popcount16(r.acks) >= r.quorum {
		r.Phase = ReadDone
		return ReadComplete
	}
	return ReadWait
}

// Unseen returns nodes that have not replied to the current round.
func (r *ReadOp) Unseen(full uint16) uint16 {
	switch r.Phase {
	case ReadRound:
		return full &^ r.seen
	case ReadWriteBack:
		return full &^ r.acks
	}
	return 0
}

// Refit retargets the op at a reconfigured member set and re-resolves the
// round in flight, exactly like WriteOp.Refit: removed members' replies
// are discarded and a round whose surviving replies now quorate resolves.
// The returned action is what OnReadReply/OnWriteAck would have produced.
func (r *ReadOp) Refit(quorum int, full uint16) ReadAction {
	r.quorum = quorum
	r.seen &= full
	r.atMax &= full
	r.acks &= full
	switch r.Phase {
	case ReadRound:
		if popcount16(r.seen) < r.quorum {
			return ReadWait
		}
		if !r.NeedWriteBack || popcount16(r.atMax) >= r.quorum || r.MaxTS.IsZero() {
			r.Phase = ReadDone
			return ReadComplete
		}
		r.Phase = ReadWriteBack
		return ReadWriteBackNow
	case ReadWriteBack:
		if popcount16(r.acks) >= r.quorum {
			r.Phase = ReadDone
			return ReadComplete
		}
	}
	return ReadWait
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
