package abd

import (
	"testing"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

func TestHandleReadTS(t *testing.T) {
	s := kvs.New(64)
	m := proto.Message{Kind: proto.KindReadTS, From: 1, Worker: 2, Key: 5, OpID: 9}
	rep := HandleReadTS(s, &m, 0, proto.KindReadTSReply)
	if rep.Kind != proto.KindReadTSReply || !rep.Stamp.IsZero() {
		t.Fatalf("missing key reply %+v", rep)
	}
	s.Apply(5, []byte("x"), llc.Stamp{Ver: 7, MID: 2})
	rep = HandleReadTS(s, &m, 0, proto.KindReadTSReply)
	if rep.Stamp != (llc.Stamp{Ver: 7, MID: 2}) {
		t.Fatalf("stamp = %v", rep.Stamp)
	}
}

func TestHandleWriteAcksStale(t *testing.T) {
	s := kvs.New(64)
	s.Apply(5, []byte("new"), llc.Stamp{Ver: 9, MID: 0})
	m := proto.Message{Kind: proto.KindABDWrite, From: 1, Key: 5, OpID: 3,
		Stamp: llc.Stamp{Ver: 2, MID: 0}, Value: []byte("old")}
	rep := HandleWrite(s, &m, 0)
	if rep.Kind != proto.KindABDWriteAck || rep.OpID != 3 {
		t.Fatalf("stale write not acked: %+v", rep)
	}
	buf := make([]byte, kvs.MaxValueLen)
	val, _, _, _ := s.View(5, buf)
	if string(val) != "new" {
		t.Fatal("stale write applied")
	}
}

func TestHandleRead(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	m := proto.Message{Kind: proto.KindAcqRead, From: 1, Key: 8, OpID: 4}
	rep := HandleRead(s, &m, 0, buf)
	if !rep.Stamp.IsZero() || rep.Value != nil {
		t.Fatalf("missing key read %+v", rep)
	}
	s.Apply(8, []byte("abc"), llc.Stamp{Ver: 1, MID: 1})
	rep = HandleRead(s, &m, 0, buf)
	if string(rep.Value) != "abc" || rep.Stamp != (llc.Stamp{Ver: 1, MID: 1}) {
		t.Fatalf("read reply %+v", rep)
	}
}

func tsReply(from uint8, st llc.Stamp) *proto.Message {
	return &proto.Message{Kind: proto.KindReadTSReply, From: from, Stamp: st}
}

func TestWriteOpTwoRounds(t *testing.T) {
	w := NewWriteOp(1, 10, []byte("v"), 5, false) // quorum 3
	if w.OnReadTS(tsReply(0, llc.Stamp{Ver: 1, MID: 0})) {
		t.Fatal("round ended at 1 reply")
	}
	if w.OnReadTS(tsReply(0, llc.Stamp{Ver: 9, MID: 0})) {
		t.Fatal("duplicate replier advanced the round")
	}
	w.OnReadTS(tsReply(1, llc.Stamp{Ver: 4, MID: 2}))
	if w.Unseen(0b11111) != 0b11100 {
		t.Fatalf("Unseen = %05b", w.Unseen(0b11111))
	}
	if !w.OnReadTS(tsReply(2, llc.Stamp{Ver: 2, MID: 1})) {
		t.Fatal("quorum not detected")
	}
	if w.MaxTS != (llc.Stamp{Ver: 4, MID: 2}) {
		t.Fatalf("MaxTS = %v", w.MaxTS)
	}
	// After the phase flip, Unseen refers to the value round.
	if w.Unseen(0b11111) != 0b11111 {
		t.Fatalf("round-2 Unseen = %05b", w.Unseen(0b11111))
	}
	// Round 2.
	vm := w.ValueMsg(llc.Stamp{Ver: 5, MID: 3}, 3, 0)
	if vm.Kind != proto.KindABDWrite || vm.Stamp != w.Stamp {
		t.Fatalf("value msg %+v", vm)
	}
	ack := func(from uint8) *proto.Message {
		return &proto.Message{Kind: proto.KindABDWriteAck, From: from}
	}
	if w.OnWriteAck(ack(3)) || w.OnWriteAck(ack(0)) {
		t.Fatal("completed below quorum")
	}
	if !w.OnWriteAck(ack(1)) {
		t.Fatal("write not completed at quorum")
	}
	if w.Phase != WriteDone {
		t.Fatal("phase not done")
	}
	// Late messages are ignored.
	if w.OnWriteAck(ack(2)) || w.OnReadTS(tsReply(4, llc.Stamp{})) {
		t.Fatal("late message advanced a done op")
	}
}

func readReply(from uint8, st llc.Stamp, val string, delinq bool) *proto.Message {
	m := &proto.Message{Kind: proto.KindReadReply, From: from, Stamp: st, Value: []byte(val)}
	if delinq {
		m.Flags = proto.FlagDelinquent
	}
	return m
}

func TestReadOpNoWriteBackWhenMaxAtQuorum(t *testing.T) {
	r := NewReadOp(1, 20, 5, true)
	st := llc.Stamp{Ver: 3, MID: 1}
	if r.OnReadReply(readReply(0, st, "v", false)) != ReadWait {
		t.Fatal("completed early")
	}
	if r.OnReadReply(readReply(1, st, "v", false)) != ReadWait {
		t.Fatal("completed early")
	}
	if got := r.OnReadReply(readReply(2, st, "v", false)); got != ReadComplete {
		t.Fatalf("action = %v, want complete", got)
	}
	if string(r.MaxVal) != "v" || r.MaxTS != st || r.Delinquent {
		t.Fatalf("result %q %v %v", r.MaxVal, r.MaxTS, r.Delinquent)
	}
}

// TestReadOpDelinqMaskCountedOnly: the flagger mask names exactly the
// counted round-1 repliers that flagged — a late flag arriving after the
// round resolved must not widen the reset-bit's target set.
func TestReadOpDelinqMaskCountedOnly(t *testing.T) {
	r := NewReadOp(1, 22, 3, true)
	st := llc.Stamp{Ver: 2, MID: 0}
	r.OnReadReply(readReply(0, st, "v", true))
	if got := r.OnReadReply(readReply(1, st, "v", false)); got != ReadComplete {
		t.Fatalf("action = %v, want complete", got)
	}
	if !r.Delinquent || r.DelinqMask != 1<<0 {
		t.Fatalf("mask = %b, want %b", r.DelinqMask, 1<<0)
	}
	// Replica 2's flag arrives after the round is done: ignored.
	if r.OnReadReply(readReply(2, st, "v", true)) != ReadWait {
		t.Fatal("late reply advanced a done op")
	}
	if r.DelinqMask != 1<<0 {
		t.Fatalf("late flag widened mask to %b", r.DelinqMask)
	}
}

func TestReadOpWriteBackPath(t *testing.T) {
	r := NewReadOp(1, 21, 5, true)
	low := llc.Stamp{Ver: 1, MID: 0}
	high := llc.Stamp{Ver: 5, MID: 2}
	r.OnReadReply(readReply(0, low, "old", false))
	r.OnReadReply(readReply(1, low, "old", false))
	if got := r.OnReadReply(readReply(2, high, "new", true)); got != ReadWriteBackNow {
		t.Fatalf("action = %v, want write-back", got)
	}
	if !r.Delinquent {
		t.Fatal("delinquent flag lost")
	}
	wb := r.WriteBackMsg(4, 0)
	if wb.Stamp != high || string(wb.Value) != "new" {
		t.Fatalf("write-back %+v", wb)
	}
	ack := func(from uint8) *proto.Message {
		return &proto.Message{Kind: proto.KindABDWriteAck, From: from}
	}
	if r.OnWriteAck(ack(0)) != ReadWait || r.OnWriteAck(ack(1)) != ReadWait {
		t.Fatal("write-back completed below quorum")
	}
	if r.OnWriteAck(ack(2)) != ReadComplete {
		t.Fatal("write-back quorum not detected")
	}
}

func TestReadOpSlowPathSkipsWriteBack(t *testing.T) {
	r := NewReadOp(1, 22, 5, false)
	low := llc.Stamp{Ver: 1, MID: 0}
	high := llc.Stamp{Ver: 5, MID: 2}
	r.OnReadReply(readReply(0, low, "old", false))
	r.OnReadReply(readReply(1, high, "new", false))
	if got := r.OnReadReply(readReply(2, low, "old", false)); got != ReadComplete {
		t.Fatalf("slow read action = %v, want complete", got)
	}
	if string(r.MaxVal) != "new" {
		t.Fatalf("MaxVal = %q", r.MaxVal)
	}
}

func TestReadOpZeroStampCompletesWithoutWriteBack(t *testing.T) {
	// All replicas at the initial state: nothing to write back even for a
	// linearizable read.
	r := NewReadOp(1, 23, 3, true)
	r.OnReadReply(readReply(0, llc.Zero, "", false))
	if got := r.OnReadReply(readReply(1, llc.Zero, "", false)); got != ReadComplete {
		t.Fatalf("action = %v", got)
	}
	if len(r.MaxVal) != 0 {
		t.Fatal("phantom value")
	}
}

func TestReadOpDuplicateRepliesIgnored(t *testing.T) {
	r := NewReadOp(1, 24, 5, true)
	st := llc.Stamp{Ver: 1, MID: 1}
	r.OnReadReply(readReply(0, st, "v", false))
	r.OnReadReply(readReply(0, st, "v", false))
	r.OnReadReply(readReply(0, st, "v", false))
	if r.Phase != ReadRound {
		t.Fatal("duplicates formed a quorum")
	}
	if r.Unseen(0b11111) != 0b11110 {
		t.Fatalf("Unseen = %05b", r.Unseen(0b11111))
	}
}

func TestWriteOpFireAndForgetFlag(t *testing.T) {
	w := NewWriteOp(1, 30, []byte("v"), 3, true)
	if !w.FireAndForget {
		t.Fatal("flag lost")
	}
}

// TestReadAfterWriteSeesValue glues handlers and ops end to end over three
// in-memory replicas: a full ABD write followed by an ABD read must return
// the written value — the register safety property.
func TestReadAfterWriteSeesValue(t *testing.T) {
	const n = 3
	stores := [n]*kvs.Store{kvs.New(64), kvs.New(64), kvs.New(64)}
	buf := make([]byte, kvs.MaxValueLen)

	// Writer on node 0.
	w := NewWriteOp(7, 1, []byte("ping"), n, false)
	req := w.ReadTSMsg(0, 0, proto.KindReadTS)
	for i := 0; i < n; i++ {
		rep := HandleReadTS(stores[i], &req, uint8(i), proto.KindReadTSReply)
		w.OnReadTS(&rep)
	}
	if w.Phase != WriteValue {
		t.Fatal("write stuck in round 1")
	}
	st := stores[0].WriteAtLeast(7, []byte("ping"), w.MaxTS, 0, 0)
	vm := w.ValueMsg(st, 0, 0)
	for i := 1; i < n; i++ {
		rep := HandleWrite(stores[i], &vm, uint8(i))
		w.OnWriteAck(&rep)
	}
	self := proto.Message{Kind: proto.KindABDWriteAck, From: 0}
	w.OnWriteAck(&self)
	if w.Phase != WriteDone {
		t.Fatal("write not done")
	}

	// Reader on node 2.
	r := NewReadOp(7, 2, n, true)
	rm := r.ReadMsg(2, 0, proto.KindAcqRead)
	for i := 0; i < n; i++ {
		rep := HandleRead(stores[i], &rm, uint8(i), buf)
		if r.OnReadReply(&rep) == ReadComplete {
			break
		}
	}
	if r.Phase != ReadDone || string(r.MaxVal) != "ping" {
		t.Fatalf("read got %q (phase %v)", r.MaxVal, r.Phase)
	}
}
