// Package derecho implements the paper's other baseline (§7): a simplified
// state machine replication system in the mould of Derecho — atomic
// multicast with a predetermined round-robin delivery order, plus an
// unordered variant of its atomic broadcast.
//
// The architectural property the paper's evaluation isolates (§8.2) is kept
// faithfully: the system is single-threaded per node (one event-loop worker)
// and optimised for throughput of ordered delivery rather than for the
// many-small-messages, many-threads regime Kite targets. Ordered mode
// delivers message r of sender 0, then r of sender 1, ..., advancing a round
// only when every sender's message for it has arrived (idle senders emit
// null messages, as real Derecho does); unordered mode applies messages on
// receipt.
package derecho

import (
	"sync"
	"sync/atomic"
	"time"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
	"kite/internal/transport"
)

// Mode selects the delivery discipline.
type Mode uint8

// Delivery modes.
const (
	Ordered   Mode = iota // total order: round-robin across senders
	Unordered             // apply on receipt
)

// Config parameterises a deployment.
type Config struct {
	Nodes        int
	Mode         Mode
	KVSCapacity  int
	MailboxDepth int
	IdlePoll     time.Duration
	// NullSendAfter is how long an ordered-mode node waits for client
	// traffic before emitting a null message to keep rounds advancing.
	NullSendAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.KVSCapacity == 0 {
		c.KVSCapacity = 1 << 16
	}
	if c.MailboxDepth == 0 {
		c.MailboxDepth = 1 << 14
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = 100 * time.Microsecond
	}
	if c.NullSendAfter == 0 {
		c.NullSendAfter = 200 * time.Microsecond
	}
	return c
}

// Cluster is an in-process deployment.
type Cluster struct {
	cfg   Config
	tr    *transport.InProc
	nodes []*Node
}

// NewCluster builds and starts a deployment.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, tr: transport.NewInProc(cfg.Nodes, 1, cfg.MailboxDepth)}
	for id := 0; id < cfg.Nodes; id++ {
		c.nodes = append(c.nodes, newNode(uint8(id), cfg, c.tr))
	}
	for _, nd := range c.nodes {
		nd.start()
	}
	return c
}

// Node returns replica i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Close stops the deployment.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.stop()
	}
	c.tr.Close()
}

type send struct {
	key  uint64
	val  []byte
	done func()
}

// Node is one replica: a single-threaded event loop (the design point the
// evaluation contrasts with Kite's 20 workers per machine).
type Node struct {
	id    uint8
	cfg   Config
	n     int
	store *kvs.Store
	tr    transport.Transport

	reqCh   chan send
	inbox   <-chan transport.Batch
	stopped atomic.Bool
	wg      sync.WaitGroup

	// Ordered-mode delivery state.
	nextSeq   uint64                             // next sequence this node assigns
	buffered  map[uint8]map[uint64]proto.Message // sender -> seq -> msg
	delivered []uint64                           // per sender: next seq to deliver
	round     uint64
	turn      int
	pending   map[uint64]func() // local seq -> completion
	lastSend  time.Time
	sendBuf   [1]proto.Message // scratch batch for submit broadcasts

	deliveredCount atomic.Uint64
	sendsCount     atomic.Uint64
}

func newNode(id uint8, cfg Config, tr transport.Transport) *Node {
	nd := &Node{
		id: id, cfg: cfg, n: cfg.Nodes,
		store:     kvs.New(cfg.KVSCapacity),
		tr:        tr,
		reqCh:     make(chan send, 4096),
		inbox:     tr.Recv(transport.Endpoint{Node: id}),
		buffered:  make(map[uint8]map[uint64]proto.Message),
		delivered: make([]uint64, cfg.Nodes),
		pending:   make(map[uint64]func()),
	}
	for s := 0; s < cfg.Nodes; s++ {
		nd.buffered[uint8(s)] = make(map[uint64]proto.Message)
	}
	return nd
}

func (nd *Node) start() {
	nd.wg.Add(1)
	go func() {
		defer nd.wg.Done()
		nd.run()
	}()
}

func (nd *Node) stop() {
	if nd.stopped.Swap(true) {
		return
	}
	nd.wg.Wait()
}

// Send submits a write to the group asynchronously; done (optional) fires
// when the message is delivered locally (in order, for Ordered mode).
func (nd *Node) Send(key uint64, val []byte, done func()) {
	nd.reqCh <- send{key: key, val: append([]byte(nil), val...), done: done}
}

// SendSync submits a write and waits for its delivery.
func (nd *Node) SendSync(key uint64, val []byte) {
	ch := make(chan struct{})
	nd.Send(key, val, func() { close(ch) })
	<-ch
}

// Read returns the local replica's value (tests/verification).
func (nd *Node) Read(key uint64) []byte {
	buf := make([]byte, kvs.MaxValueLen)
	val, _, _, ok := nd.store.View(key, buf)
	if !ok {
		return nil
	}
	return append([]byte(nil), val...)
}

// Delivered returns how many messages this node has delivered (applied).
func (nd *Node) Delivered() uint64 { return nd.deliveredCount.Load() }

// Sends returns how many local sends completed.
func (nd *Node) Sends() uint64 { return nd.sendsCount.Load() }

func (nd *Node) run() {
	idle := time.NewTimer(nd.cfg.IdlePoll)
	defer idle.Stop()
	nd.lastSend = time.Now()
	for {
		if nd.stopped.Load() {
			return
		}
		progress := false
	drain:
		for i := 0; i < 256; i++ {
			select {
			case batch := <-nd.inbox:
				for j := range batch.Msgs {
					nd.receive(batch.Msgs[j])
				}
				batch.Release()
				progress = true
			default:
				break drain
			}
		}
	admit:
		for i := 0; i < 256; i++ {
			select {
			case s := <-nd.reqCh:
				nd.submit(s)
				progress = true
			default:
				break admit
			}
		}
		if nd.cfg.Mode == Ordered {
			nd.deliverRounds()
			// Keep rounds moving when this node has no client traffic.
			if time.Since(nd.lastSend) > nd.cfg.NullSendAfter && nd.starvedRound() {
				nd.submit(send{}) // null message
			}
		}
		if !progress {
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(nd.cfg.IdlePoll)
			select {
			case batch := <-nd.inbox:
				for j := range batch.Msgs {
					nd.receive(batch.Msgs[j])
				}
				batch.Release()
			case s := <-nd.reqCh:
				nd.submit(s)
			case <-idle.C:
			}
		}
	}
}

// starvedRound reports whether ordered delivery is blocked waiting for this
// node's own message.
func (nd *Node) starvedRound() bool {
	return nd.delivered[nd.id] >= nd.nextSeq
}

func (nd *Node) submit(s send) {
	seq := nd.nextSeq
	nd.nextSeq++
	nd.lastSend = time.Now()
	m := proto.Message{
		Kind: proto.KindDerechoMsg, From: nd.id,
		Key: s.key, Slot: seq, Value: s.val,
	}
	if s.key == 0 && s.val == nil {
		m.Bits = 1 // null message marker
	}
	for dst := uint8(0); int(dst) < nd.n; dst++ {
		if dst != nd.id {
			// The transport copies synchronously, so the one-element
			// scratch batch is reused across destinations and submits.
			nd.sendBuf[0] = m
			nd.tr.Send(transport.Endpoint{Node: dst}, nd.sendBuf[:])
		}
	}
	if nd.cfg.Mode == Unordered {
		nd.apply(m)
		if s.done != nil {
			s.done()
		}
		nd.sendsCount.Add(1)
		return
	}
	nd.buffered[nd.id][seq] = m
	if s.done != nil {
		nd.pending[seq] = s.done
	}
	nd.deliverRounds()
}

func (nd *Node) receive(m proto.Message) {
	if m.Kind != proto.KindDerechoMsg {
		return
	}
	if nd.cfg.Mode == Unordered {
		nd.apply(m)
		return
	}
	// Ordered mode buffers the message until its round comes up; the value
	// must not alias the transport's recycled receive buffer.
	if len(m.Value) > 0 {
		m.Value = append([]byte(nil), m.Value...)
	}
	nd.buffered[m.From][m.Slot] = m
	nd.deliverRounds()
}

// deliverRounds advances the round-robin delivery order as far as buffered
// messages allow: round r delivers seq r of sender 0, 1, ..., n-1.
func (nd *Node) deliverRounds() {
	for {
		sender := uint8(nd.turn)
		m, ok := nd.buffered[sender][nd.round]
		if !ok {
			return
		}
		delete(nd.buffered[sender], nd.round)
		nd.apply(m)
		nd.delivered[sender] = nd.round + 1
		if sender == nd.id {
			if done, ok := nd.pending[m.Slot]; ok {
				delete(nd.pending, m.Slot)
				done()
			}
			nd.sendsCount.Add(1)
		}
		nd.turn++
		if nd.turn == nd.n {
			nd.turn = 0
			nd.round++
		}
	}
}

func (nd *Node) apply(m proto.Message) {
	if m.Bits&1 == 0 { // skip null messages
		// The (sender, seq) pair orders applications per key.
		nd.store.Apply(m.Key, m.Value, llc.Stamp{Ver: m.Slot + 1, MID: m.From})
	}
	nd.deliveredCount.Add(1)
}
