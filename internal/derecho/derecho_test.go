package derecho

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testConfig(mode Mode) Config {
	return Config{Nodes: 3, Mode: mode, KVSCapacity: 1 << 10,
		IdlePoll: 50 * time.Microsecond, NullSendAfter: 100 * time.Microsecond}
}

func TestUnorderedDelivery(t *testing.T) {
	c := NewCluster(testConfig(Unordered))
	defer c.Close()
	c.Node(0).SendSync(7, []byte("hello"))
	if got := c.Node(0).Read(7); string(got) != "hello" {
		t.Fatalf("local read %q", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c.Node(2).Read(7); string(got) == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never delivered at node 2")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOrderedDeliveryTotalOrder(t *testing.T) {
	c := NewCluster(testConfig(Ordered))
	defer c.Close()
	// All nodes send concurrently to the same key; ordered mode must leave
	// every replica with the same final value.
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				c.Node(n).SendSync(9, []byte(fmt.Sprintf("n%d-%d", n, i)))
			}
		}(n)
	}
	wg.Wait()
	// Null messages keep rounds draining; wait for convergence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v0 := c.Node(0).Read(9)
		v1 := c.Node(1).Read(9)
		v2 := c.Node(2).Read(9)
		if string(v0) == string(v1) && string(v1) == string(v2) && len(v0) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: %q %q %q", v0, v1, v2)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOrderedRoundRobinSequence(t *testing.T) {
	c := NewCluster(testConfig(Ordered))
	defer c.Close()
	// A single sender: rounds advance thanks to the other nodes' null
	// messages. Distinct keys let us verify all payloads arrive.
	for i := uint64(1); i <= 10; i++ {
		c.Node(1).SendSync(i, []byte{byte(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		okAll := true
		for i := uint64(1); i <= 10; i++ {
			if got := c.Node(2).Read(i); len(got) != 1 || got[0] != byte(i) {
				okAll = false
				break
			}
		}
		if okAll {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ordered payloads incomplete at node 2")
		}
		time.Sleep(time.Millisecond)
	}
	if c.Node(0).Delivered() == 0 {
		t.Fatal("no deliveries counted")
	}
}

func TestSendCounters(t *testing.T) {
	c := NewCluster(testConfig(Unordered))
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Node(0).SendSync(1, []byte("x"))
	}
	if got := c.Node(0).Sends(); got != 5 {
		t.Fatalf("sends = %d", got)
	}
}
