package verifier

import (
	"fmt"
	"math"
	"sort"

	"kite"
	"kite/internal/history"
)

// Checker is the incremental core of the verifier: events stream in as
// invoke/complete records and are judged as a watermark passes them, so the
// same checks that Check runs over a finished recording can run online
// against a live deployment (internal/audit). The offline CheckK is a
// client: it feeds the whole recording and seals once.
//
// Two modes:
//
//   - Complete (Partial=false): the stream is a full history. All checks
//     run; judgments match the batch verifier on causal histories.
//   - Partial (Partial=true): the stream is an arbitrary sampled subset of
//     the real history (per-key / per-session sampling, dropped records,
//     evicted windows). Only checks that are existential over the observed
//     subset run — a violation is witnessed entirely by recorded events, so
//     removing events can only hide violations, never invent them.
//     Read-validity ("read-from-nowhere") is universal over writers and is
//     suppressed.
//
// Judgment is deferred while a pending (invoked, not yet completed) write
// on the same key could still resolve the read's observed value; in
// Partial mode a deferral expires after DeferBound and the event is judged
// with the value-census checks skipped (counted in Counters().CensusSkips).
type Checker struct {
	cfg    CheckerConfig
	report *Report

	sessions map[int]*sessState
	sessIDs  []int // sorted ids, maintained on insert
	keys     map[uint64]*keyState

	sessionsSeen int
	keysSeen     int

	// pending: invoked, not yet completed (only via Invoke; Observe of an
	// un-invoked event bypasses this).
	pending map[pendID]pendInfo

	// retired: judged events in judge order — the eviction FIFO.
	retired     []*history.Event
	retiredHead int
	retained    int

	counters Counters
}

// CheckerConfig configures a Checker.
type CheckerConfig struct {
	// K is the k-atomicity bound for the synchronisation sweep (min 1).
	K int
	// Partial marks the stream as a sampled subset; see Checker.
	Partial bool
	// MaxEvents bounds retained judged events; 0 means unbounded (the
	// offline path). Exceeding it evicts the oldest judged events.
	MaxEvents int
	// DeferBound is how long (event time, ns) a judgment may stay deferred
	// on a pending same-key write before it is judged with census checks
	// skipped. 0 means a default of 2s. Only reached in Partial mode or at
	// Finish.
	DeferBound int64
}

// Counters reports audit coverage: how much the checker actually judged
// and what it had to give up.
type Counters struct {
	// Judged counts events that went through judgment.
	Judged uint64
	// CheckedReads counts OK read-class events fully judged (the audit's
	// "checked windows").
	CheckedReads uint64
	// CensusSkips counts judgments where an expired deferral skipped the
	// value-census checks.
	CensusSkips uint64
	// Evictions counts events evicted under MaxEvents.
	Evictions uint64
	// Retained is the current number of retained events.
	Retained uint64
	// Deferred is the current number of events blocked behind a deferral.
	Deferred uint64
}

type pendID struct {
	sess, index int
}

type pendInfo struct {
	key    uint64
	val    string // registered pending value ("" = none)
	hasVal bool
	faa    bool // registered pending FAA
}

type sessState struct {
	id          int
	next        int // expected dense index
	orderBroken bool

	// queue: completed events awaiting judgment, in index order.
	queue []*history.Event
	qHead int
	// deferExpire: watermark at which the deferred head gives up (-1: head
	// not currently deferred).
	deferExpire int64

	// anchor: the release the session's last judged acquire observed.
	anchor *anchorRef

	// writes: the session's per-key write index (as the batch verifier's
	// sessWrites).
	writes map[uint64]*sessKeyWrites
}

type anchorRef struct {
	rel     *history.Event
	acq     *history.Event
	relSess *sessState
}

type keyState struct {
	// values: written value -> events that (definitely or possibly)
	// installed it, in ingest order.
	values map[string][]*history.Event
	// syncWrites: OK sync writes, kept sorted by Complete (lazily).
	syncWrites []*history.Event
	syncDirty  bool
	// releases: release value -> release events (non-never outcomes).
	releases map[string][]*history.Event
	// hasMaybeFAA: counter values on this key are unknowable.
	hasMaybeFAA bool
	// faa / cas: RMW duplicate detection (old value / comparand -> first
	// judged op).
	faa map[string]*history.Event
	cas map[string]*history.Event
	// pendingVals / pendingFAA: invoked-but-incomplete write-class ops —
	// the deferral census.
	pendingVals map[string]int
	pendingFAA  int
}

// sessKeyWrites indexes one session's writes on one key.
type sessKeyWrites struct {
	// byValue: value -> latest session index that wrote it (definite or
	// indeterminate).
	byValue map[string]int
	// okIdx: session indices of definite writes, ascending.
	okIdx []int
	// okEvt aligns with okIdx.
	okEvt []*history.Event
}

// lastOKBefore returns the session's latest definite write on the key with
// index < bound (nil if none).
func (s *sessKeyWrites) lastOKBefore(bound int) *history.Event {
	i := sort.SearchInts(s.okIdx, bound) - 1
	if i < 0 {
		return nil
	}
	return s.okEvt[i]
}

const defaultDeferBound = int64(2e9)

// NewChecker starts an incremental checker.
func NewChecker(cfg CheckerConfig) *Checker {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.DeferBound <= 0 {
		cfg.DeferBound = defaultDeferBound
	}
	return &Checker{
		cfg:      cfg,
		report:   &Report{K: cfg.K},
		sessions: make(map[int]*sessState),
		keys:     make(map[uint64]*keyState),
		pending:  make(map[pendID]pendInfo),
	}
}

func (c *Checker) sess(id int) *sessState {
	ss := c.sessions[id]
	if ss == nil {
		ss = &sessState{id: id, deferExpire: -1, writes: make(map[uint64]*sessKeyWrites)}
		c.sessions[id] = ss
		c.sessionsSeen++
		i := sort.SearchInts(c.sessIDs, id)
		c.sessIDs = append(c.sessIDs, 0)
		copy(c.sessIDs[i+1:], c.sessIDs[i:])
		c.sessIDs[i] = id
	}
	return ss
}

func (c *Checker) key(k uint64) *keyState {
	ki := c.keys[k]
	if ki == nil {
		ki = &keyState{
			values:      make(map[string][]*history.Event),
			releases:    make(map[string][]*history.Event),
			pendingVals: make(map[string]int),
		}
		c.keys[k] = ki
		c.keysSeen++
	}
	return ki
}

func (c *Checker) violate(kind string, key uint64, msg string, window ...*history.Event) {
	if len(c.report.Violations) >= maxViolations {
		c.report.Truncated++
		return
	}
	v := Violation{Kind: kind, Key: key, Msg: msg}
	for _, e := range window {
		v.Window = append(v.Window, *e)
	}
	c.report.Violations = append(c.report.Violations, v)
}

// Invoke registers a pending operation (its Complete is ignored): the
// key's value census now knows e.Arg may land, so reads observing it are
// deferred rather than misjudged. Observe later delivers the completion.
func (c *Checker) Invoke(e history.Event) {
	pi := pendInfo{key: e.Key}
	switch e.Op {
	case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
		pi.val, pi.hasVal = string(e.Arg), true
		c.key(e.Key).pendingVals[pi.val]++
	case kite.OpFAA:
		if e.Delta != 0 {
			pi.faa = true
			c.key(e.Key).pendingFAA++
		}
	}
	c.pending[pendID{e.Session, e.Index}] = pi
}

// Observe ingests a completed event. Events of one session must arrive in
// index order (the recorder guarantees it; the session-order check flags
// streams that do not). Judgment happens at the next Seal.
func (c *Checker) Observe(e history.Event) {
	if pi, ok := c.pending[pendID{e.Session, e.Index}]; ok {
		delete(c.pending, pendID{e.Session, e.Index})
		ki := c.keys[pi.key]
		if ki != nil {
			if pi.hasVal && ki.pendingVals[pi.val] > 0 {
				ki.pendingVals[pi.val]--
				if ki.pendingVals[pi.val] == 0 {
					delete(ki.pendingVals, pi.val)
				}
			}
			if pi.faa {
				ki.pendingFAA--
			}
		}
	}

	ss := c.sess(e.Session)
	c.report.Stats.Events++

	// Session order at ingest: indices dense, intervals well-formed. After
	// the first gap the session's order bookkeeping stops (mirroring the
	// batch verifier's per-session break).
	if !ss.orderBroken {
		if e.Index != ss.next {
			c.violate("session-order", e.Key,
				fmt.Sprintf("session %d event %d has index %d (gap or duplicate)", e.Session, ss.next, e.Index), &e)
			ss.orderBroken = true
		} else {
			ss.next++
			if e.Complete < e.Invoke {
				c.violate("session-order", e.Key,
					fmt.Sprintf("session %d#%d completes before it is invoked", e.Session, e.Index), &e)
			}
		}
	}

	ev := new(history.Event)
	*ev = e
	c.ingest(ss, ev)
	ss.queue = append(ss.queue, ev)
	c.retained++
}

// ingest updates the per-key and per-session indexes, mirroring the batch
// verifier's newChecker and sessWrites.
func (c *Checker) ingest(ss *sessState, e *history.Event) {
	if e.Outcome == history.OutcomeNever || e.Op == kite.OpFlush {
		return
	}
	ki := c.key(e.Key)
	switch {
	case e.Outcome == history.OutcomeOK && e.IsWrite():
		v := string(e.Value())
		ki.values[v] = append(ki.values[v], e)
		c.report.Stats.Writes++
		if e.IsSync() {
			ki.syncWrites = append(ki.syncWrites, e)
			n := len(ki.syncWrites)
			if n > 1 && ki.syncWrites[n-2].Complete > e.Complete {
				ki.syncDirty = true
			}
		}
		sw := ss.keyWrites(e.Key)
		sw.byValue[v] = e.Index
		sw.okIdx = append(sw.okIdx, e.Index)
		sw.okEvt = append(sw.okEvt, e)
	case e.Outcome == history.OutcomeMaybe:
		switch e.Op {
		case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
			// The value MAY be installed (a CAS may or may not have
			// swapped; both are legal).
			v := string(e.Arg)
			ki.values[v] = append(ki.values[v], e)
			ss.keyWrites(e.Key).byValue[v] = e.Index
		case kite.OpFAA:
			if e.Delta != 0 {
				ki.hasMaybeFAA = true
			}
		}
	}
	if e.Op == kite.OpRelease && e.Outcome != history.OutcomeNever {
		v := string(e.Arg)
		ki.releases[v] = append(ki.releases[v], e)
	}
	if e.Outcome == history.OutcomeOK && e.IsRead() {
		c.report.Stats.Reads++
		if e.Op == kite.OpAcquire {
			c.report.Stats.Acquires++
		}
	}
	if e.Outcome == history.OutcomeOK {
		switch e.Op {
		case kite.OpRelease:
			c.report.Stats.Releases++
		case kite.OpFAA, kite.OpCASWeak, kite.OpCASStrong:
			c.report.Stats.RMWs++
		}
	}
}

func (ss *sessState) keyWrites(k uint64) *sessKeyWrites {
	sw := ss.writes[k]
	if sw == nil {
		sw = &sessKeyWrites{byValue: make(map[string]int)}
		ss.writes[k] = sw
	}
	return sw
}

// Seal judges every queued event whose Complete is at or below the
// watermark (event time, ns), in per-session index order, then enforces
// the memory budget. Judgments blocked on a pending same-key write stay
// queued until the write completes or the deferral expires.
func (c *Checker) Seal(watermark int64) {
	for _, id := range c.sessIDs {
		ss := c.sessions[id]
		for c.advance(ss, watermark) {
		}
		// Compact the drained queue prefix.
		if ss.qHead > 64 && ss.qHead*2 >= len(ss.queue) {
			n := copy(ss.queue, ss.queue[ss.qHead:])
			for i := n; i < len(ss.queue); i++ {
				ss.queue[i] = nil
			}
			ss.queue = ss.queue[:n]
			ss.qHead = 0
		}
	}
	c.evictTo()
}

// advance judges the session's next queued event if the watermark has
// passed it and no deferral blocks it.
func (c *Checker) advance(ss *sessState, watermark int64) bool {
	if ss.qHead >= len(ss.queue) {
		return false
	}
	e := ss.queue[ss.qHead]
	if e.Complete > watermark {
		return false
	}
	censusSkip := false
	if c.deferred(e) {
		if ss.deferExpire < 0 {
			ss.deferExpire = e.Complete + c.cfg.DeferBound
			c.counters.Deferred++
		}
		if watermark < ss.deferExpire {
			return false
		}
		censusSkip = true
		c.counters.CensusSkips++
	}
	if ss.deferExpire >= 0 {
		ss.deferExpire = -1
		c.counters.Deferred--
	}
	ss.qHead++
	c.judge(ss, e, censusSkip)
	c.retired = append(c.retired, e)
	c.counters.Judged++
	return true
}

// deferred reports whether judging e now could contradict a pending write:
// a write-class op on e's key is invoked but not completed and could be
// the writer of e's observed value.
func (c *Checker) deferred(e *history.Event) bool {
	if e.Outcome != history.OutcomeOK || !e.IsRead() {
		return false
	}
	ki := c.keys[e.Key]
	if ki == nil {
		return false
	}
	if len(e.Out) > 0 && ki.pendingVals[string(e.Out)] > 0 {
		return true
	}
	// A pending FAA makes the key's counter census incomplete; in complete
	// mode that changes verdicts (read-validity, sync matching), so wait.
	// In partial mode those checks are already skip-on-miss.
	return !c.cfg.Partial && ki.pendingFAA > 0
}

// judge runs every per-event check, mirroring the batch verifier's sweeps.
func (c *Checker) judge(ss *sessState, e *history.Event, censusSkip bool) {
	// Any acquire (whatever its outcome) ends the previous acquire's RC
	// window — the batch scan stops at the next OpAcquire event.
	if e.Op == kite.OpAcquire {
		ss.anchor = nil
	}
	if e.Outcome != history.OutcomeOK {
		return
	}

	if e.IsRead() {
		c.judgeRead(ss, e, censusSkip)
		c.counters.CheckedReads++
	}
	if e.Op == kite.OpAcquire {
		c.anchorAcquire(ss, e)
		c.judgeSyncRead(e, censusSkip)
	}
	c.judgeRMW(e)
}

// judgeRead: read validity, read-your-writes, and the RC window check
// against the session's current anchor.
func (c *Checker) judgeRead(ss *sessState, e *history.Event, censusSkip bool) {
	ki := c.keys[e.Key]

	// Read validity (out-of-thin-air) — complete histories only: under
	// sampling the true writer may simply not have been recorded.
	if !c.cfg.Partial && !censusSkip && len(e.Out) > 0 && ki != nil && !ki.hasMaybeFAA {
		if len(ki.values[string(e.Out)]) == 0 {
			c.violate("read-from-nowhere", e.Key,
				fmt.Sprintf("read returned %q which no operation ever wrote to key %d", e.Out, e.Key), e)
		}
	}

	// Read-your-writes.
	if sw := ss.writes[e.Key]; sw != nil {
		if w := sw.lastOKBefore(e.Index); w != nil {
			if len(e.Out) == 0 {
				c.violate("read-own-write", e.Key,
					fmt.Sprintf("session %d read nothing from key %d after its own write #%d", e.Session, e.Key, w.Index),
					w, e)
			} else if idx, ok := sw.byValue[string(e.Out)]; ok && idx < w.Index {
				c.violate("read-own-write", e.Key,
					fmt.Sprintf("session %d read its own stale value (written at #%d) past its later write #%d", e.Session, idx, w.Index),
					w, e)
			}
		}
	}

	// Release consistency: a plain read inside an acquire's window must
	// see the releasing session's pre-release writes on this key.
	if ss.anchor != nil && e.Op == kite.OpRead {
		a := ss.anchor
		if sw := a.relSess.writes[e.Key]; sw != nil {
			if wLast := sw.lastOKBefore(a.rel.Index); wLast != nil {
				if len(e.Out) == 0 {
					c.violate("rc-missing-released-write", e.Key,
						fmt.Sprintf("read nothing from key %d after acquiring release %q, which ordered write #%d before it",
							e.Key, a.acq.Out, wLast.Index),
						wLast, a.rel, a.acq, e)
				} else if idx, ok := sw.byValue[string(e.Out)]; ok && idx < wLast.Index {
					c.violate("rc-stale-read", e.Key,
						fmt.Sprintf("read value written at releaser's #%d from key %d after acquiring release %q, which ordered the newer write #%d before it",
							idx, e.Key, a.acq.Out, wLast.Index),
						wLast, a.rel, a.acq, e)
				}
			}
		}
	}
}

// anchorAcquire resolves which release the acquire observed (by key +
// value; ambiguous anchors resolve to the weakest constraint) and opens
// its RC window.
func (c *Checker) anchorAcquire(ss *sessState, a *history.Event) {
	if len(a.Out) == 0 {
		return
	}
	ki := c.keys[a.Key]
	if ki == nil {
		return
	}
	cands := ki.releases[string(a.Out)]
	if len(cands) == 0 {
		return // read-validity reports thin-air values
	}
	// All candidates in one session: take the earliest (weakest
	// constraint); cross-session duplicate release values are
	// unverifiable, skip.
	rel := cands[0]
	for _, r := range cands[1:] {
		if r.Session != rel.Session {
			return
		}
		if r.Index < rel.Index {
			rel = r
		}
	}
	ss.anchor = &anchorRef{rel: rel, acq: a, relSess: c.sess(rel.Session)}
}

// judgeSyncRead is the per-acquire arm of the k-atomicity sweep: the
// acquire may not observe a value k-or-more wholly-completed
// synchronisation writes stale.
func (c *Checker) judgeSyncRead(rd *history.Event, censusSkip bool) {
	ki := c.keys[rd.Key]
	if ki == nil {
		return
	}
	if ki.syncDirty {
		sort.SliceStable(ki.syncWrites, func(i, j int) bool {
			return ki.syncWrites[i].Complete < ki.syncWrites[j].Complete
		})
		ki.syncDirty = false
	}
	writes := ki.syncWrites
	// The write this read observed: the latest-completing match (most
	// favourable to the history).
	var w *history.Event
	wComplete := int64(-1)
	if len(rd.Out) != 0 {
		if censusSkip {
			return // unresolved pending match: the census is incomplete
		}
		cands := ki.values[string(rd.Out)]
		ok := false
		for _, cand := range cands {
			if cand.Outcome != history.OutcomeOK || !cand.IsSync() {
				// Reading an indeterminate (or relaxed) write: its
				// completion is unknowable; skip the sweep.
				ok = false
				break
			}
			if w == nil || cand.Complete > w.Complete {
				w = cand
				ok = true
			}
		}
		if !ok || w == nil {
			return
		}
		wComplete = w.Complete
	}
	// Interveners: writes wholly inside (wComplete, rd.Invoke) — fully
	// after W, fully before the read. writes is sorted by Complete.
	n := sort.Search(len(writes), func(i int) bool { return writes[i].Complete >= rd.Invoke })
	interveners := 0
	for _, iv := range writes[:n] {
		if iv.Invoke > wComplete {
			interveners++
		}
	}
	if interveners >= c.cfg.K {
		witness := findIntervener(writes, wComplete, rd.Invoke)
		if len(rd.Out) == 0 {
			c.violate("sync-stale-read", rd.Key,
				fmt.Sprintf("acquire observed the initial value of key %d although %d synchronisation write(s) had wholly completed (k=%d)",
					rd.Key, interveners, c.cfg.K),
				witness, rd)
		} else {
			c.violate("sync-stale-read", rd.Key,
				fmt.Sprintf("acquire observed %q on key %d although %d later synchronisation write(s) wholly intervened (k=%d)",
					rd.Out, rd.Key, interveners, c.cfg.K),
				w, witness, rd)
		}
	}
}

// findIntervener returns one write wholly inside (afterComplete,
// beforeInvoke) as the counterexample witness.
func findIntervener(writes []*history.Event, afterComplete, beforeInvoke int64) *history.Event {
	for _, w := range writes {
		if w.Invoke > afterComplete && w.Complete < beforeInvoke {
			return w
		}
	}
	return writes[0]
}

// judgeRMW: lost updates and double swaps. Two successful FAAs (non-zero
// delta) that observed the same old value on one key both extended the
// same counter state; two successful CASes that consumed the same
// comparand double-spent a value.
func (c *Checker) judgeRMW(e *history.Event) {
	switch e.Op {
	case kite.OpFAA:
		if e.Delta == 0 {
			return
		}
		ki := c.key(e.Key)
		if ki.faa == nil {
			ki.faa = make(map[string]*history.Event)
		}
		if prev, dup := ki.faa[string(e.Out)]; dup {
			c.violate("rmw-lost-update", e.Key,
				fmt.Sprintf("two FAAs on key %d both observed old value %q — one increment is lost", e.Key, e.Out),
				prev, e)
		} else {
			ki.faa[string(e.Out)] = e
		}
	case kite.OpCASWeak, kite.OpCASStrong:
		if !e.Swapped {
			return
		}
		ki := c.key(e.Key)
		if ki.cas == nil {
			ki.cas = make(map[string]*history.Event)
		}
		if prev, dup := ki.cas[string(e.Expected)]; dup {
			c.violate("rmw-double-swap", e.Key,
				fmt.Sprintf("two successful CASes on key %d consumed the same comparand %q", e.Key, e.Expected),
				prev, e)
		} else {
			ki.cas[string(e.Expected)] = e
		}
	}
}

// evictTo enforces MaxEvents by dropping the oldest judged events from
// every index. Evicting a write can only hide later violations (a match
// falls through to "no census entry: skip") — sound in Partial mode, never
// used by the offline path.
func (c *Checker) evictTo() {
	budget := c.cfg.MaxEvents
	if budget <= 0 {
		return
	}
	for c.retained > budget && c.retiredHead < len(c.retired) {
		e := c.retired[c.retiredHead]
		c.retired[c.retiredHead] = nil
		c.retiredHead++
		c.remove(e)
		c.retained--
		c.counters.Evictions++
	}
	if c.retiredHead > 4096 && c.retiredHead*2 >= len(c.retired) {
		n := copy(c.retired, c.retired[c.retiredHead:])
		for i := n; i < len(c.retired); i++ {
			c.retired[i] = nil
		}
		c.retired = c.retired[:n]
		c.retiredHead = 0
	}
}

// remove deletes one judged event from the key and session indexes.
func (c *Checker) remove(e *history.Event) {
	if e.Outcome == history.OutcomeNever || e.Op == kite.OpFlush {
		return
	}
	ss := c.sessions[e.Session]
	ki := c.keys[e.Key]
	var v string
	hasV := false
	switch {
	case e.Outcome == history.OutcomeOK && e.IsWrite():
		v, hasV = string(e.Value()), true
	case e.Outcome == history.OutcomeMaybe:
		switch e.Op {
		case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
			v, hasV = string(e.Arg), true
		}
	}
	if ki != nil {
		if hasV {
			ki.values[v] = dropEvent(ki.values[v], e)
			if len(ki.values[v]) == 0 {
				delete(ki.values, v)
			}
		}
		if e.Outcome == history.OutcomeOK && e.IsWrite() && e.IsSync() {
			ki.syncWrites = dropEvent(ki.syncWrites, e)
		}
		if e.Op == kite.OpRelease {
			rv := string(e.Arg)
			ki.releases[rv] = dropEvent(ki.releases[rv], e)
			if len(ki.releases[rv]) == 0 {
				delete(ki.releases, rv)
			}
		}
		if ki.faa[string(e.Out)] == e {
			delete(ki.faa, string(e.Out))
		}
		if ki.cas[string(e.Expected)] == e {
			delete(ki.cas, string(e.Expected))
		}
		if len(ki.values) == 0 && len(ki.releases) == 0 && len(ki.syncWrites) == 0 &&
			len(ki.faa) == 0 && len(ki.cas) == 0 && len(ki.pendingVals) == 0 &&
			ki.pendingFAA == 0 && !ki.hasMaybeFAA {
			delete(c.keys, e.Key)
		}
	}
	if ss != nil {
		if sw := ss.writes[e.Key]; sw != nil {
			if i := sort.SearchInts(sw.okIdx, e.Index); i < len(sw.okIdx) && sw.okIdx[i] == e.Index {
				sw.okIdx = append(sw.okIdx[:i], sw.okIdx[i+1:]...)
				sw.okEvt = append(sw.okEvt[:i], sw.okEvt[i+1:]...)
			}
			if idx, ok := sw.byValue[v]; hasV && ok && idx == e.Index {
				delete(sw.byValue, v)
			}
			if len(sw.okIdx) == 0 && len(sw.byValue) == 0 {
				delete(ss.writes, e.Key)
			}
		}
	}
}

func dropEvent(s []*history.Event, e *history.Event) []*history.Event {
	for i, x := range s {
		if x == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Finish seals everything (expired deferrals are judged with census checks
// skipped) and returns the report. The checker stays usable for Report
// snapshots but should not be fed further.
func (c *Checker) Finish() *Report {
	c.Seal(math.MaxInt64)
	return c.snapshot()
}

// Report returns a copy of the current report — safe to render while the
// stream continues.
func (c *Checker) Report() *Report {
	return c.snapshot()
}

func (c *Checker) snapshot() *Report {
	r := &Report{
		K:          c.report.K,
		Stats:      c.report.Stats,
		Violations: append([]Violation(nil), c.report.Violations...),
		Truncated:  c.report.Truncated,
	}
	r.Stats.Sessions = c.sessionsSeen
	r.Stats.Keys = c.keysSeen
	return r
}

// Counters returns the coverage counters.
func (c *Checker) Counters() Counters {
	ct := c.counters
	ct.Retained = uint64(c.retained)
	return ct
}
