package verifier

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kite"
	"kite/internal/history"
)

func load(t testing.TB, name string) *history.Recorded {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := history.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestVerifierRejectsKnownBad: every synthetic known-bad history under
// testdata/ is rejected, with the expected violation kind reported.
func TestVerifierRejectsKnownBad(t *testing.T) {
	cases := map[string]string{
		"stale_acquire_read.json": "rc-stale-read",
		"lost_rmw.json":           "rmw-lost-update",
		"torn_batch.json":         "read-own-write",
		"stale_sync_read.json":    "sync-stale-read",
		"read_from_nowhere.json":  "read-from-nowhere",
	}
	for name, kind := range cases {
		t.Run(name, func(t *testing.T) {
			rep := Check(load(t, name))
			if rep.OK() {
				t.Fatalf("verifier accepted known-bad history %s", name)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Kind == kind {
					found = true
					if len(v.Window) < 1 {
						t.Fatalf("violation %q has no counterexample window", kind)
					}
				}
			}
			if !found {
				t.Fatalf("wanted kind %q, got report:\n%s", kind, rep.String())
			}
		})
	}
}

// TestVerifierKRelaxation: the stale sync read has exactly one wholly
// intervening write, so it violates atomicity (k=1) but satisfies
// 2-atomicity.
func TestVerifierKRelaxation(t *testing.T) {
	rec := load(t, "stale_sync_read.json")
	if rep := CheckK(rec, 1); rep.OK() {
		t.Fatal("k=1 accepted a 1-stale read")
	}
	if rep := CheckK(rec, 2); !rep.OK() {
		t.Fatalf("k=2 rejected a 1-stale read:\n%s", rep.String())
	}
}

// TestVerifierIndeterminacy: maybe-outcome operations must be observable
// without violation, but never required — the two halves of the
// indeterminate contract.
func TestVerifierIndeterminacy(t *testing.T) {
	// A timed-out release whose value IS later observed: legal.
	rec := &history.Recorded{Events: []history.Event{
		{Session: 0, Index: 0, Op: kite.OpRelease, Key: 1, Arg: []byte("v"), Outcome: history.OutcomeMaybe, Err: "op timeout", Invoke: 0, Complete: 10, Batch: -1},
		{Session: 1, Index: 0, Op: kite.OpAcquire, Key: 1, Out: []byte("v"), Outcome: history.OutcomeOK, Invoke: 20, Complete: 30, Batch: -1},
	}}
	if rep := Check(rec); !rep.OK() {
		t.Fatalf("observing a maybe-release flagged:\n%s", rep.String())
	}
	// A timed-out release that is NOT observed: equally legal — it never
	// counts as an intervener.
	rec = &history.Recorded{Events: []history.Event{
		{Session: 0, Index: 0, Op: kite.OpRelease, Key: 1, Arg: []byte("v1"), Outcome: history.OutcomeOK, Invoke: 0, Complete: 10, Batch: -1},
		{Session: 0, Index: 1, Op: kite.OpRelease, Key: 1, Arg: []byte("v2"), Outcome: history.OutcomeMaybe, Err: "node stopped", Invoke: 20, Complete: 30, Batch: -1},
		{Session: 1, Index: 0, Op: kite.OpAcquire, Key: 1, Out: []byte("v1"), Outcome: history.OutcomeOK, Invoke: 40, Complete: 50, Batch: -1},
	}}
	if rep := Check(rec); !rep.OK() {
		t.Fatalf("unobserved maybe-release counted as intervener:\n%s", rep.String())
	}
	// A key touched by an indeterminate FAA suppresses thin-air matching
	// (the counter value space is unknowable).
	rec = &history.Recorded{Events: []history.Event{
		{Session: 0, Index: 0, Op: kite.OpFAA, Key: 2, Delta: 3, Outcome: history.OutcomeMaybe, Err: "op timeout", Invoke: 0, Complete: 10, Batch: -1},
		{Session: 1, Index: 0, Op: kite.OpRead, Key: 2, Out: kite.EncodeUint64(3), Outcome: history.OutcomeOK, Invoke: 20, Complete: 30, Batch: -1},
	}}
	if rep := Check(rec); !rep.OK() {
		t.Fatalf("read of a maybe-FAA counter flagged:\n%s", rep.String())
	}
}

// TestVerifierRCMissingWrite: the empty-read arm of the RC check — an
// acquire anchored to a release must never find the releaser's prior
// write missing entirely.
func TestVerifierRCMissingWrite(t *testing.T) {
	rec := &history.Recorded{Events: []history.Event{
		{Session: 0, Index: 0, Op: kite.OpWrite, Key: 100, Arg: []byte("w"), Outcome: history.OutcomeOK, Invoke: 0, Complete: 5, Batch: -1},
		{Session: 0, Index: 1, Op: kite.OpRelease, Key: 9000, Arg: []byte("r"), Outcome: history.OutcomeOK, Invoke: 10, Complete: 20, Batch: -1},
		{Session: 1, Index: 0, Op: kite.OpAcquire, Key: 9000, Out: []byte("r"), Outcome: history.OutcomeOK, Invoke: 30, Complete: 40, Batch: -1},
		{Session: 1, Index: 1, Op: kite.OpRead, Key: 100, Outcome: history.OutcomeOK, Invoke: 50, Complete: 60, Batch: -1},
	}}
	rep := Check(rec)
	if rep.OK() {
		t.Fatal("lost released write accepted")
	}
	if rep.Violations[0].Kind != "rc-missing-released-write" {
		t.Fatalf("kind = %q, report:\n%s", rep.Violations[0].Kind, rep.String())
	}
}

// TestVerifierCleanLiveHistory runs the producer/consumer + RMW shape the
// chaos workload uses against a healthy in-process cluster and requires a
// clean report — the verifier must not cry wolf.
func TestVerifierCleanLiveHistory(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	log := history.New()
	prod := log.Wrap(c.Session(0, 0))
	cons := log.Wrap(c.Session(1, 1))
	rmw := log.Wrap(c.Session(2, 2))

	const rounds, keys = 5, 4
	for r := 1; r <= rounds; r++ {
		for k := 0; k < keys; k++ {
			if err := prod.Write(uint64(100+k), []byte(fmt.Sprintf("p0r%dk%d", r, k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.ReleaseWrite(9000, []byte(fmt.Sprintf("r%d", r))); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("r%d", r)
		for {
			v, err := cons.AcquireRead(9000)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == want {
				break
			}
		}
		for k := 0; k < keys; k++ {
			if _, err := cons.Read(uint64(100 + k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	prev := []byte(nil)
	for i := 0; i < 8; i++ {
		if _, err := rmw.FAA(200, 1); err != nil {
			t.Fatal(err)
		}
		next := []byte(fmt.Sprintf("cas%d", i))
		swapped, old, err := rmw.CompareAndSwap(300, prev, next, false)
		if err != nil {
			t.Fatal(err)
		}
		if !swapped {
			t.Fatalf("cas %d failed (old %q)", i, old)
		}
		prev = next
	}

	rec := log.Snapshot()
	rep := Check(rec)
	if !rep.OK() {
		t.Fatalf("clean run flagged:\n%s", rep.String())
	}
	if rep.Stats.Releases != rounds || rep.Stats.RMWs != 16 || rep.Stats.Writes == 0 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
}

// TestReportString: counterexample windows render sorted by invoke time.
func TestReportString(t *testing.T) {
	rep := Check(load(t, "stale_acquire_read.json"))
	s := rep.String()
	if !bytes.Contains([]byte(s), []byte("rc-stale-read")) || !bytes.Contains([]byte(s), []byte("s1#1")) {
		t.Fatalf("report rendering:\n%s", s)
	}
}

// FuzzVerifier: arbitrary histories (including the testdata corpus) must
// parse-or-error and verify without panicking.
func FuzzVerifier(f *testing.F) {
	names, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, n := range names {
		data, err := os.ReadFile(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := history.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		rep := CheckK(rec, 1+len(data)%3)
		_ = rep.String()
		_ = rep.OK()
	})
}
