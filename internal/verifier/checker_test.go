package verifier

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"kite"
	"kite/internal/history"
)

// streamCheck replays a recording through the incremental Checker the way
// a live deployment delivers it: invoke records at invoke time, completion
// records at completion time, a seal after every completion — the
// worst-case seal cadence.
func streamCheck(rec *history.Recorded, k int) *Report {
	c := NewChecker(CheckerConfig{K: k})
	type tick struct {
		at     int64
		invoke bool
		e      *history.Event
	}
	var ticks []tick
	for i := range rec.Events {
		e := &rec.Events[i]
		ticks = append(ticks, tick{e.Invoke, true, e}, tick{e.Complete, false, e})
	}
	// Sort by time; invokes before completions at equal times; session
	// index order breaks remaining ties so per-session delivery order
	// matches the recorder's.
	sort.SliceStable(ticks, func(i, j int) bool {
		if ticks[i].at != ticks[j].at {
			return ticks[i].at < ticks[j].at
		}
		return ticks[i].invoke && !ticks[j].invoke
	})
	for _, t := range ticks {
		if t.invoke {
			c.Invoke(*t.e)
		} else {
			c.Observe(*t.e)
			c.Seal(t.at)
		}
	}
	return c.Finish()
}

// normalize sorts violations and their windows so reports from different
// judge orders compare as sets.
func normalize(r *Report) *Report {
	for i := range r.Violations {
		w := r.Violations[i].Window
		sort.Slice(w, func(a, b int) bool {
			if w[a].Session != w[b].Session {
				return w[a].Session < w[b].Session
			}
			return w[a].Index < w[b].Index
		})
	}
	sort.Slice(r.Violations, func(a, b int) bool {
		va, vb := &r.Violations[a], &r.Violations[b]
		if va.Kind != vb.Kind {
			return va.Kind < vb.Kind
		}
		if va.Key != vb.Key {
			return va.Key < vb.Key
		}
		return va.Msg < vb.Msg
	})
	return r
}

// TestCheckerGoldenEquivalence: the whole offline corpus, streamed through
// the incremental Checker event-interval by event-interval, must reproduce
// the batch verifier's verdicts and counterexample windows exactly, at
// several k bounds.
func TestCheckerGoldenEquivalence(t *testing.T) {
	names, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(names))
	}
	for _, name := range names {
		for _, k := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/k%d", filepath.Base(name), k), func(t *testing.T) {
				rec := load(t, filepath.Base(name))
				batch := normalize(CheckK(rec, k))
				stream := normalize(streamCheck(rec, k))
				if !reflect.DeepEqual(batch, stream) {
					t.Fatalf("stream/batch divergence\nbatch:\n%s\nstream:\n%s", batch.String(), stream.String())
				}
			})
		}
	}
}

// TestCheckerGoldenEquivalenceSynthetic: hand-built histories exercising
// the cases where streaming order genuinely differs from batch order —
// maybe-outcomes resolving after their observers, writes completing after
// the reads that saw them (deferral), and overlapping sync intervals.
func TestCheckerGoldenEquivalenceSynthetic(t *testing.T) {
	recs := []*history.Recorded{
		// A timed-out release whose value IS later observed — and whose
		// completion record lands after the acquire's (deferral path).
		{Events: []history.Event{
			{Session: 0, Index: 0, Op: kite.OpRelease, Key: 1, Arg: []byte("v"), Outcome: history.OutcomeMaybe, Err: "op timeout", Invoke: 0, Complete: 100, Batch: -1},
			{Session: 1, Index: 0, Op: kite.OpAcquire, Key: 1, Out: []byte("v"), Outcome: history.OutcomeOK, Invoke: 20, Complete: 30, Batch: -1},
		}},
		// An indeterminate FAA pending while a read of its counter value
		// completes (pendingFAA deferral).
		{Events: []history.Event{
			{Session: 0, Index: 0, Op: kite.OpFAA, Key: 2, Delta: 3, Outcome: history.OutcomeMaybe, Err: "op timeout", Invoke: 0, Complete: 100, Batch: -1},
			{Session: 1, Index: 0, Op: kite.OpRead, Key: 2, Out: kite.EncodeUint64(3), Outcome: history.OutcomeOK, Invoke: 20, Complete: 30, Batch: -1},
		}},
		// The RC empty-read arm, with the releaser's write concurrent with
		// the reader.
		{Events: []history.Event{
			{Session: 0, Index: 0, Op: kite.OpWrite, Key: 100, Arg: []byte("w"), Outcome: history.OutcomeOK, Invoke: 0, Complete: 5, Batch: -1},
			{Session: 0, Index: 1, Op: kite.OpRelease, Key: 9000, Arg: []byte("r"), Outcome: history.OutcomeOK, Invoke: 10, Complete: 20, Batch: -1},
			{Session: 1, Index: 0, Op: kite.OpAcquire, Key: 9000, Out: []byte("r"), Outcome: history.OutcomeOK, Invoke: 15, Complete: 40, Batch: -1},
			{Session: 1, Index: 1, Op: kite.OpRead, Key: 100, Outcome: history.OutcomeOK, Invoke: 50, Complete: 60, Batch: -1},
		}},
		// A sync write wholly intervening between its predecessor and a
		// stale acquire, all three overlapping a relaxed-write stream.
		{Events: []history.Event{
			{Session: 0, Index: 0, Op: kite.OpRelease, Key: 5, Arg: []byte("a"), Outcome: history.OutcomeOK, Invoke: 0, Complete: 10, Batch: -1},
			{Session: 0, Index: 1, Op: kite.OpRelease, Key: 5, Arg: []byte("b"), Outcome: history.OutcomeOK, Invoke: 20, Complete: 30, Batch: -1},
			{Session: 1, Index: 0, Op: kite.OpWrite, Key: 6, Arg: []byte("x"), Outcome: history.OutcomeOK, Invoke: 5, Complete: 45, Batch: -1},
			{Session: 2, Index: 0, Op: kite.OpAcquire, Key: 5, Out: []byte("a"), Outcome: history.OutcomeOK, Invoke: 40, Complete: 50, Batch: -1},
		}},
	}
	for i, rec := range recs {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			batch := normalize(CheckK(rec, 1))
			stream := normalize(streamCheck(rec, 1))
			if !reflect.DeepEqual(batch, stream) {
				t.Fatalf("stream/batch divergence\nbatch:\n%s\nstream:\n%s", batch.String(), stream.String())
			}
		})
	}
}

// TestCheckerPartialNeverInvents: every corpus violation history, fed
// through a partial-mode checker with an aggressive memory budget, must
// report a subset of the batch verdicts — sampling and eviction may hide
// violations but never add kinds the complete history does not contain.
func TestCheckerPartialNeverInvents(t *testing.T) {
	names, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		t.Run(filepath.Base(name), func(t *testing.T) {
			rec := load(t, filepath.Base(name))
			full := CheckK(rec, 1)
			allowed := map[string]bool{}
			for _, v := range full.Violations {
				allowed[v.Kind+"/"+fmt.Sprint(v.Key)] = true
			}
			// Drop every other event (a crude sample) and stream through a
			// partial checker with a tiny budget. The sampling recorder
			// assigns its own dense per-session indexes to sampled events;
			// simulate that by renumbering.
			for drop := 0; drop < 2; drop++ {
				c := NewChecker(CheckerConfig{K: 1, Partial: true, MaxEvents: 4})
				next := map[int]int{}
				for i := range rec.Events {
					if i%2 == drop {
						continue
					}
					e := rec.Events[i]
					e.Index = next[e.Session]
					next[e.Session]++
					c.Observe(e)
					c.Seal(e.Complete)
				}
				rep := c.Finish()
				for _, v := range rep.Violations {
					if !allowed[v.Kind+"/"+fmt.Sprint(v.Key)] {
						t.Fatalf("partial checker invented violation [%s] key %d not in complete verdicts:\n%s",
							v.Kind, v.Key, rep.String())
					}
				}
			}
		})
	}
}

// TestCheckerEviction: the budget is enforced, evictions are counted, and
// an evicted census never produces a violation on a clean history.
func TestCheckerEviction(t *testing.T) {
	c := NewChecker(CheckerConfig{K: 1, Partial: true, MaxEvents: 8})
	var now int64
	for i := 0; i < 200; i++ {
		now += 10
		e := history.Event{
			Session: 0, Index: i, Op: kite.OpRelease, Key: 7,
			Arg: []byte(fmt.Sprintf("v%d", i)), Outcome: history.OutcomeOK,
			Invoke: now, Complete: now + 5, Batch: -1,
		}
		c.Observe(e)
		c.Seal(now + 5)
	}
	rep := c.Finish()
	if !rep.OK() {
		t.Fatalf("clean history flagged under eviction:\n%s", rep.String())
	}
	ct := c.Counters()
	if ct.Evictions == 0 {
		t.Fatal("budget of 8 over 200 events evicted nothing")
	}
	if ct.Retained > 8 {
		t.Fatalf("retained %d > budget 8", ct.Retained)
	}
}
