// Package verifier checks recorded operation histories (internal/history)
// against Kite's consistency contract: Release Consistency with
// linearizable synchronisation (RCLin, §2 of the paper). It is the one
// shared definition of correctness behind the conformance, restart,
// membership and chaos suites — a deterministic test asserts through it,
// kite-chaos feeds it histories recorded under randomized fault schedules,
// and internal/audit streams sampled live operations through the same
// checks via the incremental Checker.
//
// Four independent checks run over a history:
//
//   - Read validity: a non-empty read must return a value some operation
//     actually (or at least possibly) wrote to that key.
//   - Session order: read-your-writes within a session — a session never
//     reads backwards past its own later write (which also catches torn
//     DoBatch submissions, since a batch is session order).
//   - Release consistency: an acquire that observes release R must let the
//     observing session see every write the releasing session completed
//     before R — reading an older value of the releasing session (or
//     nothing at all) is the paper's §2 violation.
//   - k-atomicity of synchronisation: releases/acquires (and RMWs) on one
//     key form a register history that must be k-atomic (k=1: atomic /
//     linearizable). The sweep is the k-Atomicity-Verification algorithm
//     specialised to unique written values: a read may not return a value
//     k-or-more fully-completed writes stale.
//   - RMW atomicity: two successful FAAs must not observe the same old
//     value (lost update); two successful CASes must not consume the same
//     comparand (double swap).
//
// Failed operations recorded as OutcomeMaybe are treated as indeterminate:
// their values are legal for others to observe, but they are never
// REQUIRED to be observed and never count as interveners. OutcomeNever
// events are ignored entirely.
//
// The checks exploit unique written values per key where possible (the
// chaos workload and the test suites guarantee this); histories with
// duplicated values degrade soundly — ambiguous matches resolve in the
// history's favour, never toward a false violation.
package verifier

import (
	"fmt"
	"sort"
	"strings"

	"kite/internal/history"
)

// Violation is one detected consistency breach, carrying the minimal
// counterexample window: just the events whose combination is contradictory.
type Violation struct {
	Kind   string          `json:"kind"`
	Key    uint64          `json:"key"`
	Msg    string          `json:"msg"`
	Window []history.Event `json:"window"`
}

// Stats summarises what a check covered.
type Stats struct {
	Events   int `json:"events"`
	Sessions int `json:"sessions"`
	Keys     int `json:"keys"`
	Reads    int `json:"reads"`
	Writes   int `json:"writes"`
	Acquires int `json:"acquires"`
	Releases int `json:"releases"`
	RMWs     int `json:"rmws"`
}

// Report is the outcome of a verification pass.
type Report struct {
	K          int         `json:"k"`
	Stats      Stats       `json:"stats"`
	Violations []Violation `json:"violations,omitempty"`
	// Truncated reports violations beyond the cap that were dropped.
	Truncated int `json:"truncated,omitempty"`
}

// OK reports whether the history passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.Truncated == 0 }

// String renders the report; each violation prints its counterexample
// window sorted by invoke time.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verifier: %d events / %d sessions / %d keys checked (k=%d): ",
		r.Stats.Events, r.Stats.Sessions, r.Stats.Keys, r.K)
	if r.OK() {
		b.WriteString("no violations")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations)+r.Truncated)
	for i := range r.Violations {
		v := &r.Violations[i]
		fmt.Fprintf(&b, "\n  [%s] key %d: %s", v.Kind, v.Key, v.Msg)
		win := append([]history.Event(nil), v.Window...)
		sort.Slice(win, func(a, c int) bool { return win[a].Invoke < win[c].Invoke })
		for _, e := range win {
			fmt.Fprintf(&b, "\n    %s", e.String())
		}
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more (truncated)", r.Truncated)
	}
	return b.String()
}

const maxViolations = 32

// Check verifies rec for atomic (k=1) synchronisation plus the RC, session
// and RMW conditions.
func Check(rec *history.Recorded) *Report { return CheckK(rec, 1) }

// CheckK is Check with a relaxed k-atomicity bound for the
// synchronisation sweep (k=1 is atomicity; larger k tolerates bounded
// staleness, per the k-AV problem formulation). It is the batch client of
// the incremental Checker: the whole recording streams in, then one final
// seal judges everything with the complete census in hand.
func CheckK(rec *history.Recorded, k int) *Report {
	c := NewChecker(CheckerConfig{K: k})
	for i := range rec.Events {
		c.Observe(rec.Events[i])
	}
	return c.Finish()
}
