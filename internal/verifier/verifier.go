// Package verifier checks recorded operation histories (internal/history)
// against Kite's consistency contract: Release Consistency with
// linearizable synchronisation (RCLin, §2 of the paper). It is the one
// shared definition of correctness behind the conformance, restart,
// membership and chaos suites — a deterministic test asserts through it,
// and kite-chaos feeds it histories recorded under randomized fault
// schedules.
//
// Four independent checks run over a history:
//
//   - Read validity: a non-empty read must return a value some operation
//     actually (or at least possibly) wrote to that key.
//   - Session order: read-your-writes within a session — a session never
//     reads backwards past its own later write (which also catches torn
//     DoBatch submissions, since a batch is session order).
//   - Release consistency: an acquire that observes release R must let the
//     observing session see every write the releasing session completed
//     before R — reading an older value of the releasing session (or
//     nothing at all) is the paper's §2 violation.
//   - k-atomicity of synchronisation: releases/acquires (and RMWs) on one
//     key form a register history that must be k-atomic (k=1: atomic /
//     linearizable). The sweep is the k-Atomicity-Verification algorithm
//     specialised to unique written values: a read may not return a value
//     k-or-more fully-completed writes stale.
//   - RMW atomicity: two successful FAAs must not observe the same old
//     value (lost update); two successful CASes must not consume the same
//     comparand (double swap).
//
// Failed operations recorded as OutcomeMaybe are treated as indeterminate:
// their values are legal for others to observe, but they are never
// REQUIRED to be observed and never count as interveners. OutcomeNever
// events are ignored entirely.
//
// The checks exploit unique written values per key where possible (the
// chaos workload and the test suites guarantee this); histories with
// duplicated values degrade soundly — ambiguous matches resolve in the
// history's favour, never toward a false violation.
package verifier

import (
	"fmt"
	"sort"
	"strings"

	"kite"
	"kite/internal/history"
)

// Violation is one detected consistency breach, carrying the minimal
// counterexample window: just the events whose combination is contradictory.
type Violation struct {
	Kind   string          `json:"kind"`
	Key    uint64          `json:"key"`
	Msg    string          `json:"msg"`
	Window []history.Event `json:"window"`
}

// Stats summarises what a check covered.
type Stats struct {
	Events   int `json:"events"`
	Sessions int `json:"sessions"`
	Keys     int `json:"keys"`
	Reads    int `json:"reads"`
	Writes   int `json:"writes"`
	Acquires int `json:"acquires"`
	Releases int `json:"releases"`
	RMWs     int `json:"rmws"`
}

// Report is the outcome of a verification pass.
type Report struct {
	K          int         `json:"k"`
	Stats      Stats       `json:"stats"`
	Violations []Violation `json:"violations,omitempty"`
	// Truncated reports violations beyond the cap that were dropped.
	Truncated int `json:"truncated,omitempty"`
}

// OK reports whether the history passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.Truncated == 0 }

// String renders the report; each violation prints its counterexample
// window sorted by invoke time.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verifier: %d events / %d sessions / %d keys checked (k=%d): ",
		r.Stats.Events, r.Stats.Sessions, r.Stats.Keys, r.K)
	if r.OK() {
		b.WriteString("no violations")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations)+r.Truncated)
	for i := range r.Violations {
		v := &r.Violations[i]
		fmt.Fprintf(&b, "\n  [%s] key %d: %s", v.Kind, v.Key, v.Msg)
		win := append([]history.Event(nil), v.Window...)
		sort.Slice(win, func(a, c int) bool { return win[a].Invoke < win[c].Invoke })
		for _, e := range win {
			fmt.Fprintf(&b, "\n    %s", e.String())
		}
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more (truncated)", r.Truncated)
	}
	return b.String()
}

const maxViolations = 32

// Check verifies rec for atomic (k=1) synchronisation plus the RC, session
// and RMW conditions.
func Check(rec *history.Recorded) *Report { return CheckK(rec, 1) }

// CheckK is Check with a relaxed k-atomicity bound for the
// synchronisation sweep (k=1 is atomicity; larger k tolerates bounded
// staleness, per the k-AV problem formulation).
func CheckK(rec *history.Recorded, k int) *Report {
	if k < 1 {
		k = 1
	}
	c := newChecker(rec, k)
	c.checkSessionOrder()
	c.checkReadValidity()
	c.checkReadYourWrites()
	c.checkReleaseConsistency()
	c.checkSyncAtomicity()
	c.checkRMW()
	return c.report
}

// checker holds the indexed history.
type checker struct {
	report *Report
	k      int

	sessions map[int][]*history.Event // session -> events in index order
	keys     map[uint64]*keyIndex
}

type keyIndex struct {
	// values maps a written value to every event that (definitely or
	// possibly) installed it, in history order.
	values map[string][]*history.Event
	// syncWrites / syncReads are the OK sync-register ops for the sweep.
	syncWrites []*history.Event
	syncReads  []*history.Event
	// hasMaybeFAA: an indeterminate FAA makes some counter values
	// unknowable; read-validity is suppressed on such keys.
	hasMaybeFAA bool
}

// sessKeyWrites indexes one session's writes on one key.
type sessKeyWrites struct {
	// byValue: value -> latest session index that wrote it (definite or
	// indeterminate).
	byValue map[string]int
	// okIdx: session indices of definite writes, ascending.
	okIdx []int
	// okEvt aligns with okIdx.
	okEvt []*history.Event
}

func newChecker(rec *history.Recorded, k int) *checker {
	c := &checker{
		report:   &Report{K: k},
		k:        k,
		sessions: make(map[int][]*history.Event),
		keys:     make(map[uint64]*keyIndex),
	}
	for i := range rec.Events {
		e := &rec.Events[i]
		c.sessions[e.Session] = append(c.sessions[e.Session], e)
		if e.Outcome == history.OutcomeNever || e.Op == kite.OpFlush {
			continue
		}
		ki := c.key(e.Key)
		switch {
		case e.Outcome == history.OutcomeOK && e.IsWrite():
			v := string(e.Value())
			ki.values[v] = append(ki.values[v], e)
			c.report.Stats.Writes++
			if e.IsSync() {
				ki.syncWrites = append(ki.syncWrites, e)
			}
		case e.Outcome == history.OutcomeMaybe:
			switch e.Op {
			case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
				// The value MAY be installed (a CAS may or may not have
				// swapped; both are legal).
				v := string(e.Arg)
				ki.values[v] = append(ki.values[v], e)
			case kite.OpFAA:
				if e.Delta != 0 {
					ki.hasMaybeFAA = true
				}
			}
		}
		if e.Outcome == history.OutcomeOK && e.IsRead() {
			c.report.Stats.Reads++
			if e.Op == kite.OpAcquire {
				c.report.Stats.Acquires++
				ki.syncReads = append(ki.syncReads, e)
			}
		}
		if e.Outcome == history.OutcomeOK {
			switch e.Op {
			case kite.OpRelease:
				c.report.Stats.Releases++
			case kite.OpFAA, kite.OpCASWeak, kite.OpCASStrong:
				c.report.Stats.RMWs++
			}
		}
	}
	c.report.Stats.Events = len(rec.Events)
	c.report.Stats.Sessions = len(c.sessions)
	c.report.Stats.Keys = len(c.keys)
	return c
}

func (c *checker) key(k uint64) *keyIndex {
	ki := c.keys[k]
	if ki == nil {
		ki = &keyIndex{values: make(map[string][]*history.Event)}
		c.keys[k] = ki
	}
	return ki
}

func (c *checker) violate(kind string, key uint64, msg string, window ...*history.Event) {
	if len(c.report.Violations) >= maxViolations {
		c.report.Truncated++
		return
	}
	v := Violation{Kind: kind, Key: key, Msg: msg}
	for _, e := range window {
		v.Window = append(v.Window, *e)
	}
	c.report.Violations = append(c.report.Violations, v)
}

// checkSessionOrder: indices are dense and intervals well-formed — the
// recorder guarantees this for live runs; synthetic histories are checked
// so later passes can rely on it.
func (c *checker) checkSessionOrder() {
	for sid, evs := range c.sessions {
		for i, e := range evs {
			if e.Index != i {
				c.violate("session-order", e.Key,
					fmt.Sprintf("session %d event %d has index %d (gap or duplicate)", sid, i, e.Index), e)
				break
			}
			if e.Complete < e.Invoke {
				c.violate("session-order", e.Key,
					fmt.Sprintf("session %d#%d completes before it is invoked", sid, i), e)
			}
		}
	}
}

// checkReadValidity: every successful non-empty read returns a value
// somebody wrote to that key (out-of-thin-air detection).
func (c *checker) checkReadValidity() {
	for _, evs := range c.sessions {
		for _, e := range evs {
			if e.Outcome != history.OutcomeOK || !e.IsRead() || len(e.Out) == 0 {
				continue
			}
			ki := c.keys[e.Key]
			if ki.hasMaybeFAA {
				continue // counter values unknowable on this key
			}
			if len(ki.values[string(e.Out)]) == 0 {
				c.violate("read-from-nowhere", e.Key,
					fmt.Sprintf("read returned %q which no operation ever wrote to key %d", e.Out, e.Key), e)
			}
		}
	}
}

// sessWrites builds the per-key write index of one session.
func sessWrites(evs []*history.Event) map[uint64]*sessKeyWrites {
	out := make(map[uint64]*sessKeyWrites)
	get := func(k uint64) *sessKeyWrites {
		s := out[k]
		if s == nil {
			s = &sessKeyWrites{byValue: make(map[string]int)}
			out[k] = s
		}
		return s
	}
	for _, e := range evs {
		if e.Outcome == history.OutcomeNever {
			continue
		}
		switch {
		case e.Outcome == history.OutcomeOK && e.IsWrite():
			s := get(e.Key)
			s.byValue[string(e.Value())] = e.Index
			s.okIdx = append(s.okIdx, e.Index)
			s.okEvt = append(s.okEvt, e)
		case e.Outcome == history.OutcomeMaybe:
			switch e.Op {
			case kite.OpWrite, kite.OpRelease, kite.OpCASWeak, kite.OpCASStrong:
				get(e.Key).byValue[string(e.Arg)] = e.Index
			}
		}
	}
	return out
}

// lastOKBefore returns the session's latest definite write on the key with
// index < bound (nil if none).
func (s *sessKeyWrites) lastOKBefore(bound int) *history.Event {
	i := sort.SearchInts(s.okIdx, bound) - 1
	if i < 0 {
		return nil
	}
	return s.okEvt[i]
}

// checkReadYourWrites: within one session, a read never returns a value
// older than the session's own latest preceding definite write on that key
// — and never returns nothing once the session has definitely written.
// DoBatch events live in session order, so a torn batch (a batched read
// missing the batched write right before it) fails here.
func (c *checker) checkReadYourWrites() {
	for sid, evs := range c.sessions {
		own := sessWrites(evs)
		for _, e := range evs {
			if e.Outcome != history.OutcomeOK || !e.IsRead() {
				continue
			}
			sw := own[e.Key]
			if sw == nil {
				continue
			}
			w := sw.lastOKBefore(e.Index)
			if w == nil {
				continue
			}
			if len(e.Out) == 0 {
				c.violate("read-own-write", e.Key,
					fmt.Sprintf("session %d read nothing from key %d after its own write #%d", sid, e.Key, w.Index),
					w, e)
				continue
			}
			if idx, ok := sw.byValue[string(e.Out)]; ok && idx < w.Index {
				c.violate("read-own-write", e.Key,
					fmt.Sprintf("session %d read its own stale value (written at #%d) past its later write #%d", sid, idx, w.Index),
					w, e)
			}
		}
	}
}

// checkReleaseConsistency: for each successful acquire, anchor the release
// it observed (by key + value; ambiguous anchors resolve to the weakest
// constraint) and require every read of the acquiring session up to its
// next acquire to observe the releasing session's pre-release writes — per
// key: nothing older than the releaser's last definite write before the
// release, and never nothing at all.
func (c *checker) checkReleaseConsistency() {
	// Index releases (and the writes of each session) once.
	type relKey struct {
		key uint64
		val string
	}
	releases := make(map[relKey][]*history.Event)
	writesBySess := make(map[int]map[uint64]*sessKeyWrites)
	for sid, evs := range c.sessions {
		writesBySess[sid] = sessWrites(evs)
		for _, e := range evs {
			if e.Op == kite.OpRelease && e.Outcome != history.OutcomeNever {
				releases[relKey{e.Key, string(e.Arg)}] = append(releases[relKey{e.Key, string(e.Arg)}], e)
			}
		}
	}
	for _, evs := range c.sessions {
		for ai, a := range evs {
			if a.Op != kite.OpAcquire || a.Outcome != history.OutcomeOK || len(a.Out) == 0 {
				continue
			}
			cands := releases[relKey{a.Key, string(a.Out)}]
			if len(cands) == 0 {
				continue // read-validity reports thin-air values
			}
			// Ambiguity resolution: all candidates in one session — take
			// the earliest (weakest constraint); cross-session duplicate
			// release values are unverifiable, skip.
			rel := cands[0]
			for _, r := range cands[1:] {
				if r.Session != rel.Session {
					rel = nil
					break
				}
				if r.Index < rel.Index {
					rel = r
				}
			}
			if rel == nil {
				continue
			}
			pw := writesBySess[rel.Session]
			// Scan the acquiring session's reads until its next acquire.
			for _, d := range evs[ai+1:] {
				if d.Op == kite.OpAcquire {
					break
				}
				if d.Outcome != history.OutcomeOK || !d.IsRead() {
					continue
				}
				sw := pw[d.Key]
				if sw == nil {
					continue
				}
				wLast := sw.lastOKBefore(rel.Index)
				if wLast == nil {
					continue
				}
				if len(d.Out) == 0 {
					c.violate("rc-missing-released-write", d.Key,
						fmt.Sprintf("read nothing from key %d after acquiring release %q, which ordered write #%d before it",
							d.Key, a.Out, wLast.Index),
						wLast, rel, a, d)
					continue
				}
				if idx, ok := sw.byValue[string(d.Out)]; ok && idx < wLast.Index {
					c.violate("rc-stale-read", d.Key,
						fmt.Sprintf("read value written at releaser's #%d from key %d after acquiring release %q, which ordered the newer write #%d before it",
							idx, d.Key, a.Out, wLast.Index),
						wLast, rel, a, d)
				}
			}
		}
	}
}

// checkSyncAtomicity is the k-atomicity sweep over each key's
// synchronisation register: writes = successful releases / swapped CASes /
// FAAs, reads = successful acquires. A read observing write W while >= k
// other writes completed wholly between W's completion and the read's
// invocation is a k-atomicity violation (k=1: the read is simply stale).
// The sweep is O(n log n): writes enter a Fenwick tree (indexed by invoke
// rank) in completion order as reads advance in invocation order.
func (c *checker) checkSyncAtomicity() {
	for key, ki := range c.keys {
		if len(ki.syncReads) == 0 || len(ki.syncWrites) == 0 {
			continue
		}
		writes := append([]*history.Event(nil), ki.syncWrites...)
		sort.Slice(writes, func(i, j int) bool { return writes[i].Complete < writes[j].Complete })
		reads := append([]*history.Event(nil), ki.syncReads...)
		sort.Slice(reads, func(i, j int) bool { return reads[i].Invoke < reads[j].Invoke })

		// Fenwick over invoke ranks.
		invokes := make([]int64, len(writes))
		for i, w := range writes {
			invokes[i] = w.Invoke
		}
		sort.Slice(invokes, func(i, j int) bool { return invokes[i] < invokes[j] })
		rankOf := func(t int64) int { // # invokes <= t
			return sort.Search(len(invokes), func(i int) bool { return invokes[i] > t })
		}
		fen := make([]int, len(invokes)+1)
		add := func(r int) {
			for ; r <= len(invokes); r += r & -r {
				fen[r]++
			}
		}
		sum := func(r int) int { // inserted writes with invoke-rank <= r
			s := 0
			for ; r > 0; r -= r & -r {
				s += fen[r]
			}
			return s
		}

		wi, inserted := 0, 0
		for _, rd := range reads {
			for wi < len(writes) && writes[wi].Complete < rd.Invoke {
				add(rankOf(writes[wi].Invoke))
				inserted++
				wi++
			}
			// The write this read observed: the latest-completing match
			// (most favourable to the history).
			var w *history.Event
			wComplete := int64(-1)
			if len(rd.Out) != 0 {
				cands := ki.values[string(rd.Out)]
				ok := false
				for _, cand := range cands {
					if cand.Outcome != history.OutcomeOK || !cand.IsSync() {
						// Reading an indeterminate (or relaxed) write:
						// its completion is unknowable; skip the sweep.
						ok = false
						break
					}
					if w == nil || cand.Complete > w.Complete {
						w = cand
						ok = true
					}
				}
				if !ok || w == nil {
					continue
				}
				wComplete = w.Complete
			}
			// Interveners: inserted writes (complete < rd.Invoke) whose
			// invoke > wComplete — fully after W, fully before the read.
			interveners := inserted - sum(rankOf(wComplete))
			if w != nil && w.Complete < rd.Invoke {
				// W itself is in the tree but its invoke <= its complete,
				// so it is never counted as an intervener. (Asserted by
				// construction; nothing to subtract.)
				_ = w
			}
			if interveners >= c.k {
				witness := c.findIntervener(writes, wComplete, rd.Invoke)
				if len(rd.Out) == 0 {
					c.violate("sync-stale-read", key,
						fmt.Sprintf("acquire observed the initial value of key %d although %d synchronisation write(s) had wholly completed (k=%d)",
							key, interveners, c.k),
						witness, rd)
				} else {
					c.violate("sync-stale-read", key,
						fmt.Sprintf("acquire observed %q on key %d although %d later synchronisation write(s) wholly intervened (k=%d)",
							rd.Out, key, interveners, c.k),
						w, witness, rd)
				}
			}
		}
	}
}

// findIntervener returns one write wholly inside (afterComplete,
// beforeInvoke) as the counterexample witness.
func (c *checker) findIntervener(writes []*history.Event, afterComplete, beforeInvoke int64) *history.Event {
	for _, w := range writes {
		if w.Invoke > afterComplete && w.Complete < beforeInvoke {
			return w
		}
	}
	return writes[0]
}

// checkRMW: lost updates and double swaps. Two successful FAAs (with
// non-zero delta) that observed the same old value on one key both
// extended the same counter state — one update is lost. Two successful
// CASes that consumed the same comparand on one key double-spent a value
// (written values are unique per key in checkable histories).
func (c *checker) checkRMW() {
	type seen struct {
		faa map[string]*history.Event
		cas map[string]*history.Event
	}
	perKey := make(map[uint64]*seen)
	for _, evs := range c.sessions {
		for _, e := range evs {
			if e.Outcome != history.OutcomeOK {
				continue
			}
			switch e.Op {
			case kite.OpFAA:
				if e.Delta == 0 {
					continue
				}
				s := perKey[e.Key]
				if s == nil {
					s = &seen{faa: map[string]*history.Event{}, cas: map[string]*history.Event{}}
					perKey[e.Key] = s
				}
				if prev, dup := s.faa[string(e.Out)]; dup {
					c.violate("rmw-lost-update", e.Key,
						fmt.Sprintf("two FAAs on key %d both observed old value %q — one increment is lost", e.Key, e.Out),
						prev, e)
				} else {
					s.faa[string(e.Out)] = e
				}
			case kite.OpCASWeak, kite.OpCASStrong:
				if !e.Swapped {
					continue
				}
				s := perKey[e.Key]
				if s == nil {
					s = &seen{faa: map[string]*history.Event{}, cas: map[string]*history.Event{}}
					perKey[e.Key] = s
				}
				if prev, dup := s.cas[string(e.Expected)]; dup {
					c.violate("rmw-double-swap", e.Key,
						fmt.Sprintf("two successful CASes on key %d consumed the same comparand %q", e.Key, e.Expected),
						prev, e)
				} else {
					s.cas[string(e.Expected)] = e
				}
			}
		}
	}
}
