package llc

import "fmt"

// MaxNodes is the largest replication degree supported. The paper targets
// deployments of 3-9 machines; 16 leaves headroom while letting quorum
// bitmasks fit in a uint16.
const MaxNodes = 16

// Stamp is a Lamport logical clock value. The zero Stamp is the initial
// clock of every key and is smaller than any stamp produced by a write.
type Stamp struct {
	Ver uint64 // monotonically increasing version number
	MID uint8  // id of the machine that created the stamp (tie-breaker)
}

// Zero is the initial stamp of every key.
var Zero = Stamp{}

// Less reports whether s orders strictly before o.
func (s Stamp) Less(o Stamp) bool {
	if s.Ver != o.Ver {
		return s.Ver < o.Ver
	}
	return s.MID < o.MID
}

// Greater reports whether s orders strictly after o.
func (s Stamp) Greater(o Stamp) bool { return o.Less(s) }

// Equal reports whether the two stamps are the same clock value.
func (s Stamp) Equal(o Stamp) bool { return s.Ver == o.Ver && s.MID == o.MID }

// Compare returns -1, 0 or +1 as s orders before, equal to or after o.
func (s Stamp) Compare(o Stamp) int {
	switch {
	case s.Less(o):
		return -1
	case o.Less(s):
		return 1
	default:
		return 0
	}
}

// IsZero reports whether s is the initial stamp.
func (s Stamp) IsZero() bool { return s.Ver == 0 && s.MID == 0 }

// Next returns the smallest stamp owned by machine mid that is strictly
// greater than s. This is the stamp a writer on mid assigns to a new write
// after observing s as the largest existing stamp for the key.
func (s Stamp) Next(mid uint8) Stamp { return Stamp{Ver: s.Ver + 1, MID: mid} }

// Max returns the larger of the two stamps.
func Max(a, b Stamp) Stamp {
	if a.Less(b) {
		return b
	}
	return a
}

// Pack encodes the stamp into a single uint64: the version occupies the high
// 56 bits and the machine id the low 8. Packing preserves ordering
// (a.Less(b) iff a.Pack() < b.Pack()) as long as versions stay below 2^56,
// which a per-key counter never approaches in practice.
func (s Stamp) Pack() uint64 { return s.Ver<<8 | uint64(s.MID) }

// Unpack decodes a stamp previously encoded with Pack.
func Unpack(p uint64) Stamp { return Stamp{Ver: p >> 8, MID: uint8(p)} }

// String renders the stamp as "ver@mid" for logs and test failures.
func (s Stamp) String() string { return fmt.Sprintf("%d@%d", s.Ver, s.MID) }
