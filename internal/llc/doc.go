// Package llc implements Lamport logical clocks (LLCs), the serialisation
// currency shared by every protocol in Kite (§3.1 of the paper).
//
// An LLC is a pair <version, machine-id>: a monotonically increasing
// version number and the id of the machine that created the stamp. Stamp A
// orders after stamp B if A's version is bigger; equal versions tie-break
// by machine id. LLCs let a machine generate a globally unique "time" for
// an event without coordination, which is how writes are serialised per key
// without a master node.
//
// One clock space, three protocols — plus the recovery sweep:
//
//   - Eventual Store (§3.2) stamps every relaxed write; replicas apply
//     last-writer-wins by LLC, yielding per-key SC.
//   - ABD (§3.3) reads a quorum's LLCs to pick a dominating stamp for a
//     release, and returns the max-stamp value for an acquire.
//   - Per-key Paxos (§3.4) draws its ballots from the same per-key LLC
//     space, allocated under the key's bucket lock.
//   - The anti-entropy catch-up (internal/catchup, DESIGN.md "Recovery")
//     merges a peer's swept entries into a rejoining replica by the same
//     LLC comparison, which is what makes the sweep idempotent and safe to
//     interleave with live traffic.
//
// Stamps pack into a single uint64 (version in the high 56 bits, machine id
// in the low 8) with ordering preserved, so the KVS stores them as one
// atomic word and the seqlock read path compares clocks with one load.
package llc
