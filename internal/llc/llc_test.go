package llc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLessBasic(t *testing.T) {
	cases := []struct {
		a, b Stamp
		less bool
	}{
		{Stamp{0, 0}, Stamp{0, 0}, false},
		{Stamp{0, 0}, Stamp{1, 0}, true},
		{Stamp{1, 0}, Stamp{0, 0}, false},
		{Stamp{1, 1}, Stamp{1, 2}, true},
		{Stamp{1, 2}, Stamp{1, 1}, false},
		{Stamp{2, 0}, Stamp{1, 9}, false},
		{Stamp{1, 9}, Stamp{2, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestCompareConsistency(t *testing.T) {
	f := func(av uint64, am uint8, bv uint64, bm uint8) bool {
		a, b := Stamp{av, am}, Stamp{bv, bm}
		c := a.Compare(b)
		switch {
		case c < 0:
			return a.Less(b) && !b.Less(a) && !a.Equal(b) && b.Greater(a)
		case c > 0:
			return b.Less(a) && !a.Less(b) && !a.Equal(b) && a.Greater(b)
		default:
			return a.Equal(b) && !a.Less(b) && !b.Less(a)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackPreservesOrder(t *testing.T) {
	f := func(av uint32, am uint8, bv uint32, bm uint8) bool {
		a, b := Stamp{uint64(av), am}, Stamp{uint64(bv), bm}
		return a.Less(b) == (a.Pack() < b.Pack())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(v uint32, m uint8) bool {
		s := Stamp{uint64(v), m}
		return Unpack(s.Pack()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextIsStrictlyGreater(t *testing.T) {
	f := func(v uint32, m, next uint8) bool {
		s := Stamp{uint64(v), m}
		n := s.Next(next)
		return s.Less(n) && n.MID == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	a, b := Stamp{3, 1}, Stamp{3, 2}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatalf("Max(%v,%v) wrong", a, b)
	}
	if Max(a, a) != a {
		t.Fatal("Max not reflexive")
	}
}

// TestTotalOrder checks that Less defines a strict total order over a random
// set of stamps: sorting by Less then verifying uniqueness of equal elements.
func TestTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stamps := make([]Stamp, 500)
	for i := range stamps {
		stamps[i] = Stamp{Ver: uint64(rng.Intn(50)), MID: uint8(rng.Intn(8))}
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].Less(stamps[j]) })
	for i := 1; i < len(stamps); i++ {
		a, b := stamps[i-1], stamps[i]
		if b.Less(a) {
			t.Fatalf("sort violated order at %d: %v then %v", i, a, b)
		}
		if !a.Less(b) && !a.Equal(b) {
			t.Fatalf("neither ordered nor equal: %v vs %v", a, b)
		}
	}
}

func TestZeroIsMinimum(t *testing.T) {
	f := func(v uint32, m uint8) bool {
		s := Stamp{uint64(v), m}
		if s.IsZero() {
			return !Zero.Less(s) && !s.Less(Zero)
		}
		return Zero.Less(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := (Stamp{7, 3}).String(); got != "7@3" {
		t.Fatalf("String = %q", got)
	}
}
