// Package paxos implements the per-key, leaderless Basic Paxos that Kite
// maps RMWs to (§3.4). Because RMWs to different keys commute, consensus
// runs at per-key granularity, uncovering request-level parallelism: threads
// synchronise only when touching the same key. Kite deliberately forgoes a
// stable leader — conceding an extra round trip per RMW — to keep the
// protocol decentralised and constantly available.
//
// Each key is a sequence of consensus instances ("slots"): slot k decides
// the k-th RMW committed on the key. A replica keeps, per key, the Paxos
// state for its current slot only (promised ballot, accepted ballot+value);
// deciding a slot applies the value to the KVS entry and advances the slot,
// resetting that state. Ballots are Lamport stamps drawn from the same
// per-key LLC space as ES and ABD writes, allocated under the key's bucket
// lock so they are unique per node and tie-broken by machine id across
// nodes.
//
// An RMW completes after three quorum round-trips: propose (which also
// carries Kite's acquire-side delinquency piggyback), accept (gated behind
// the RMW's release barrier, since it is the first round that exposes the
// new value), and commit (acked, so that a completed RMW is guaranteed
// visible in the KVS of a quorum — which is what lets ABD acquires observe
// committed RMWs).
package paxos

import (
	"unsafe"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

// OriginRing is how many recently committed RMW origins each key remembers
// for the catch-up payload carried on commits, learns and committed-nacks
// (it is a convergence aid; exactness comes from the per-session map below).
const OriginRing = 16

// SlotHist is how many applied slots each replica remembers the origin of,
// for authoritative who-won-slot-S answers in committed-nacks.
const SlotHist = 64

type slotRec struct{ slot, origin uint64 }

// State is the per-key consensus state, stored behind the key's entry via
// kvs meta so that locking the key also locks its Paxos structure (§6.2).
// All access happens inside kvs.Store.Mutate.
type State struct {
	Slot       uint64    // current undecided slot == number of committed RMWs
	Promised   llc.Stamp // highest ballot promised at Slot
	AccBallot  llc.Stamp // highest ballot accepted at Slot (zero if none)
	AccVal     []byte    // value accepted at Slot (nil if none)
	AccOrigin  uint64    // op id of the RMW that produced AccVal
	lastBallot llc.Stamp // ballot allocator watermark (node-local uniqueness)

	// LastOrigin is the origin of the most recent commit, echoed in
	// committed-nacks so catching-up proposers record it.
	LastOrigin uint64

	// origins remembers the op ids of the last OriginRing committed RMWs
	// on this key (the carried catch-up payload).
	origins [OriginRing]uint64
	oPos    int

	// slotHist remembers the origin of the last SlotHist slots this
	// replica applied directly, so committed-nacks can answer "who won
	// slot S" authoritatively.
	slotHist [SlotHist]slotRec

	// sessCommits is the exactly-once registry (the paper's committed
	// rmw-id bookkeeping): for every session that ever committed an RMW on
	// this key, the op id of its latest committed RMW. A session runs at
	// most one RMW at a time, so op X is committed iff its session's entry
	// is at least X — an exact test with no eviction window, unlike a
	// bounded ring. Memory is one word per (key, RMW-ing session).
	sessCommits map[uint64]uint64
}

// opSession extracts the session tag from an op id (node(8)|session(24)
// in the high 32 bits; see core's op id layout).
func opSession(op uint64) uint64 { return op >> 32 }

// opSeq extracts the per-session sequence number of an op id.
func opSeq(op uint64) uint32 { return uint32(op) }

// slotOriginOf returns the origin of slot if this replica applied it
// directly and it is still within the history window.
func (st *State) slotOriginOf(slot uint64) (uint64, bool) {
	r := st.slotHist[slot%SlotHist]
	if r.slot == slot+1 { // stored as slot+1 so the zero value means empty
		return r.origin, true
	}
	return 0, false
}

func (st *State) recordOrigin(origin uint64) {
	if origin == 0 {
		return
	}
	if st.sessCommits == nil {
		st.sessCommits = make(map[uint64]uint64, 4)
	}
	prev, ok := st.sessCommits[opSession(origin)]
	if ok && opSeq(prev) >= opSeq(origin) {
		return // already known (or superseded by the session's later RMW)
	}
	st.sessCommits[opSession(origin)] = origin
	st.origins[st.oPos] = origin
	st.oPos = (st.oPos + 1) % OriginRing
}

// recent returns up to k recently committed origins, newest first.
func (st *State) recent(k int) []uint64 {
	out := make([]uint64, 0, k)
	for i := 1; i <= OriginRing && len(out) < k; i++ {
		o := st.origins[(st.oPos-i+OriginRing)%OriginRing]
		if o != 0 {
			out = append(out, o)
		}
	}
	return out
}

// originCommitted reports whether the RMW identified by origin has already
// committed on this key. Strict equality against the session's latest
// committed RMW is exact for every op that can still be in flight: a session
// blocks on its single outstanding RMW, so while op X is unresolved no later
// op of its session can possibly be in the registry — the entry is either X
// (committed) or an older, long-finished op (not committed). Replies about
// already-finished ops route to no pending op and are harmless either way.
func (st *State) originCommitted(origin uint64) bool {
	if origin == 0 || st.sessCommits == nil {
		return false
	}
	return st.sessCommits[opSession(origin)] == origin
}

// stateOf returns the entry's Paxos state, allocating it lazily.
func stateOf(e *kvs.Entry) *State {
	if st, ok := e.Meta().(*State); ok {
		return st
	}
	st := &State{}
	e.SetMeta(st)
	return st
}

// Snapshot is a consistent view of a key's committed state, used by
// proposers to compute their RMW against the latest committed value.
type Snapshot struct {
	Slot       uint64
	Stamp      llc.Stamp
	Val        []byte
	LastOrigin uint64   // origin of the commit that produced Val (if any)
	Recent     []uint64 // recently committed origins, newest first
}

// ReadCommitted returns the key's committed snapshot: the current slot and
// the KVS entry's (value, stamp). buf is scratch of >= kvs.MaxValueLen.
func ReadCommitted(s *kvs.Store, key uint64, buf []byte) Snapshot {
	var snap Snapshot
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		snap.Slot = st.Slot
		snap.Stamp = e.Stamp()
		snap.LastOrigin = st.LastOrigin
		snap.Recent = st.recent(proto.MaxOrigins)
		v := e.ValueInto(buf)
		snap.Val = append([]byte(nil), v...)
	})
	return snap
}

// SessionCommitted reports whether the RMW identified by opID is already in
// key's local exactly-once registry — the cheapest own-committed witness
// (every commit is broadcast to all replicas, including the proposer's own).
func SessionCommitted(s *kvs.Store, key, opID uint64) (committed bool) {
	s.Mutate(key, func(e *kvs.Entry) {
		committed = stateOf(e).originCommitted(opID)
	})
	return committed
}

// ExportMeta extracts the committed consensus state from a KVS entry's
// meta for the catch-up wire format: the current slot, the origin of the
// latest commit, and the recently committed origins (newest first). ok is
// false when the key has no consensus history. Callers hold the entry's
// bucket lock (kvs.Store.SnapshotBucket), which is the meta-access contract.
func ExportMeta(meta any) (slot, lastOrigin uint64, recent []uint64, ok bool) {
	st, isState := meta.(*State)
	if !isState || st.Slot == 0 {
		return 0, 0, nil, false
	}
	return st.Slot, st.LastOrigin, st.recent(proto.MaxOrigins), true
}

// ImportCommitted merges a peer's exported committed state for key into the
// local replica, as a rejoining node does during its catch-up sweep. The
// slot only moves forward; the carried origins enter the exactly-once
// registry so RMWs committed while this replica was down are never
// re-executed on its behalf. The committed VALUE travels separately as the
// entry's (value, stamp) — last-writer-wins by LLC via Store.Apply — so
// this import never overwrites a newer write with an older committed value.
// Accepted-but-uncommitted state is deliberately NOT transferred over the
// wire: peers only vouch for committed state. A restarted acceptor's own
// promises and accepts are restored from its write-ahead log instead
// (ReplayPromise/ReplayAccept; see DESIGN.md "Recovery").
func ImportCommitted(s *kvs.Store, key, slot, lastOrigin uint64, recent []uint64) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		s.Record(kvs.Event{Kind: kvs.EvImport, Key: key, Slot: slot, Origin: lastOrigin, Origins: recent})
		for i := len(recent) - 1; i >= 0; i-- {
			st.recordOrigin(recent[i])
		}
		st.recordOrigin(lastOrigin)
		if slot > st.Slot {
			st.Slot = slot
			st.Promised = llc.Zero
			st.AccBallot = llc.Zero
			st.AccVal = nil
			st.AccOrigin = 0
			st.LastOrigin = lastOrigin
		}
	})
}

// AllocBallot allocates a fresh ballot for key, strictly greater than the
// entry's stamp, the allocator watermark, and atLeast. Allocation happens
// under the bucket lock, so concurrent workers of one node never collide.
func AllocBallot(s *kvs.Store, key uint64, mid uint8, atLeast llc.Stamp) (b llc.Stamp) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		b = llc.Max(llc.Max(st.lastBallot, e.Stamp()), atLeast).Next(mid)
		st.lastBallot = b
	})
	return b
}

// --- Replica-side handlers --------------------------------------------------

// HandlePropose processes a propose (phase-1) message. Reply encoding:
//
//   - ok: Flags has no FlagNack; FlagHasAccepted with (Stamp, Value) set if
//     a value is already accepted at this slot (the proposer must help it).
//   - proposer stale (m.Slot < our slot): FlagNack|FlagCommitted with
//     Slot/Stamp/Value carrying our committed state for catch-up.
//   - replica behind (m.Slot > our slot): FlagNack with Slot = our slot; the
//     proposer responds with a PaxosLearn.
//   - ballot too low: FlagNack with Slot = m.Slot and Stamp = promised.
func HandlePropose(s *kvs.Store, m *proto.Message, self uint8, buf []byte) proto.Message {
	rep := m.Reply(proto.KindProposeAck, self)
	rep.Bits = m.Bits // echo the attempt tag
	s.Mutate(m.Key, func(e *kvs.Entry) {
		st := stateOf(e)
		switch {
		case st.originCommitted(m.OpID):
			// This RMW already committed (a helper drove it); the proposer
			// must finish, not re-execute.
			rep.Flags |= proto.FlagNack | proto.FlagOwnCommitted | proto.FlagCommitted
			rep.Slot = st.Slot
			rep.Stamp = e.Stamp()
			rep.Origin = st.LastOrigin
			rep.Origins = st.recent(proto.MaxOrigins)
			rep.Value = append([]byte(nil), e.ValueInto(buf)...)
		case m.Slot < st.Slot:
			rep.Flags |= proto.FlagNack | proto.FlagCommitted
			rep.Slot = st.Slot
			rep.Stamp = e.Stamp()
			rep.Origin = st.LastOrigin
			rep.Origins = st.recent(proto.MaxOrigins)
			rep.Value = append([]byte(nil), e.ValueInto(buf)...)
			if o, ok := st.slotOriginOf(m.Slot); ok {
				// Authoritative answer for the requester's slot (separate
				// field: rep.Origin must stay the catch-up payload's origin).
				rep.Flags |= proto.FlagSlotKnown
				rep.SlotOrigin = o
			}
		case m.Slot > st.Slot:
			rep.Flags |= proto.FlagNack
			rep.Slot = st.Slot
		case st.Promised.Less(m.Stamp):
			st.Promised = m.Stamp
			// The promise must be durable before the ack leaves: a
			// restarted acceptor that forgot it could accept a lower
			// ballot it promised away.
			s.Record(kvs.Event{Kind: kvs.EvPromise, Key: m.Key, Slot: m.Slot, Stamp: m.Stamp})
			rep.Slot = m.Slot
			if !st.AccBallot.IsZero() {
				rep.Flags |= proto.FlagHasAccepted
				rep.Stamp = st.AccBallot
				rep.Origin = st.AccOrigin
				rep.Value = append([]byte(nil), st.AccVal...)
			}
		default:
			rep.Flags |= proto.FlagNack
			rep.Slot = m.Slot
			rep.Stamp = st.Promised
		}
	})
	return rep
}

// HandleAccept processes an accept (phase-2) message. A replica accepts iff
// the slot matches and the ballot is at least its promise.
func HandleAccept(s *kvs.Store, m *proto.Message, self uint8, buf []byte) proto.Message {
	rep := m.Reply(proto.KindAcceptAck, self)
	rep.Bits = m.Bits // echo the attempt tag
	s.Mutate(m.Key, func(e *kvs.Entry) {
		st := stateOf(e)
		switch {
		case st.originCommitted(m.Origin):
			rep.Flags |= proto.FlagNack | proto.FlagOwnCommitted | proto.FlagCommitted
			rep.Slot = st.Slot
			rep.Stamp = e.Stamp()
			rep.Origin = st.LastOrigin
			rep.Origins = st.recent(proto.MaxOrigins)
			rep.Value = append([]byte(nil), e.ValueInto(buf)...)
		case m.Slot < st.Slot:
			rep.Flags |= proto.FlagNack | proto.FlagCommitted
			rep.Slot = st.Slot
			rep.Stamp = e.Stamp()
			rep.Origin = st.LastOrigin
			rep.Origins = st.recent(proto.MaxOrigins)
			rep.Value = append([]byte(nil), e.ValueInto(buf)...)
			if o, ok := st.slotOriginOf(m.Slot); ok {
				// Authoritative answer for the requester's slot (separate
				// field: rep.Origin must stay the catch-up payload's origin).
				rep.Flags |= proto.FlagSlotKnown
				rep.SlotOrigin = o
			}
		case m.Slot > st.Slot:
			rep.Flags |= proto.FlagNack
			rep.Slot = st.Slot
		case !m.Stamp.Less(st.Promised):
			st.Promised = m.Stamp
			st.AccBallot = m.Stamp
			st.AccVal = append(st.AccVal[:0], m.Value...)
			st.AccOrigin = m.Origin
			// The accept is the record that closes the documented
			// accepted-but-uncommitted double-failure window: a value a
			// quorum accepted survives even if every acceptor restarts.
			s.Record(kvs.Event{Kind: kvs.EvAccept, Key: m.Key, Slot: m.Slot, Stamp: m.Stamp, Origin: m.Origin, Value: m.Value})
			rep.Slot = m.Slot
		default:
			rep.Flags |= proto.FlagNack
			rep.Slot = m.Slot
			rep.Stamp = st.Promised
		}
	})
	return rep
}

// DebugCommitHook, when non-nil, observes every slot advancement on every
// replica (test instrumentation; called under the key's bucket lock).
var DebugCommitHook func(storeID uintptr, key, slot uint64, ballot llc.Stamp, origin uint64, val []byte)

// ApplyCommit applies a decided (slot, ballot, value) to the local replica:
// the value lands in the KVS entry (making it visible to ES reads and ABD
// rounds), the slot advances past it, and the per-slot promise state resets.
// Commits are idempotent and tolerate skipped slots (a later commit carries
// a later committed value, which supersedes anything missed). Reports
// whether the commit advanced the slot.
func ApplyCommit(s *kvs.Store, key uint64, slot uint64, ballot llc.Stamp, val []byte, origin uint64, extra []uint64) (advanced bool) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		// Recorded unconditionally: even a stale duplicate mutates the
		// exactly-once registry, and a replica that replays its log must
		// re-learn those origins or it will deny committed RMWs.
		s.Record(kvs.Event{Kind: kvs.EvCommit, Key: key, Slot: slot, Stamp: ballot, Origin: origin, Value: val, Origins: extra})
		if slot < st.Slot {
			// Duplicate commit of an already-applied slot (e.g. a helper
			// re-committing with a higher ballot): the value is identical,
			// but raising the stamp converges the replicas' LLCs.
			if slot == st.Slot-1 && e.Stamp().Less(ballot) {
				e.SetStamp(ballot)
			}
			// CRITICAL for exactly-once: commits from different workers can
			// arrive out of order, so this replica may have applied a later
			// slot first and now sees the earlier commit as stale. The value
			// is rightly superseded — but this commit's origin (and its
			// carried origins) must still enter the registry, or the replica
			// will later deny that the RMW committed and its proposer will
			// re-execute it.
			for i := len(extra) - 1; i >= 0; i-- {
				st.recordOrigin(extra[i])
			}
			st.recordOrigin(origin)
			return
		}
		// Slot order — not stamp order — is the authority for committed
		// values: the same slot can be committed under different ballots
		// (helper races), so a later slot's ballot may be numerically
		// below a stale stamp; its value must still land.
		e.SetValue(val, llc.Max(e.Stamp(), ballot))
		st.Slot = slot + 1
		st.Promised = llc.Zero
		st.AccBallot = llc.Zero
		st.AccVal = nil
		st.AccOrigin = 0
		// Record the carried recent origins first (oldest last in the
		// slice, so insert in reverse), then the commit's own origin: a
		// replica skipping slots inherits the skipped RMW ids.
		for i := len(extra) - 1; i >= 0; i-- {
			st.recordOrigin(extra[i])
		}
		st.recordOrigin(origin)
		st.LastOrigin = origin
		st.slotHist[slot%SlotHist] = slotRec{slot: slot + 1, origin: origin}
		advanced = true
		if DebugCommitHook != nil {
			DebugCommitHook(reflectStoreID(s), key, slot, ballot, origin, append([]byte(nil), val...))
		}
	})
	return advanced
}

func reflectStoreID(s *kvs.Store) uintptr {
	return uintptr(unsafe.Pointer(s))
}

// HandleCommit processes a commit message and acks it. Kite completes an
// RMW only after a quorum of commit acks, so that a completed RMW is in the
// KVS of a quorum and every subsequent acquire's read round must intersect
// it (RCLin's real-time guarantee for RMWs).
func HandleCommit(s *kvs.Store, m *proto.Message, self uint8) proto.Message {
	ApplyCommit(s, m.Key, m.Slot, m.Stamp, m.Value, m.Origin, m.Origins)
	rep := m.Reply(proto.KindCommitAck, self)
	rep.Bits = m.Bits // echo the attempt tag
	return rep
}

// HandleLearn processes a fire-and-forget catch-up message (sent to replicas
// discovered to be behind). No reply.
func HandleLearn(s *kvs.Store, m *proto.Message) {
	ApplyCommit(s, m.Key, m.Slot, m.Stamp, m.Value, m.Origin, m.Origins)
}

// HandleQuery answers a committed-state query (tooling/tests).
func HandleQuery(s *kvs.Store, m *proto.Message, self uint8, buf []byte) proto.Message {
	rep := m.Reply(proto.KindPaxosQueryR, self)
	snap := ReadCommitted(s, m.Key, buf)
	rep.Slot = snap.Slot
	rep.Stamp = snap.Stamp
	rep.Value = snap.Val
	return rep
}
