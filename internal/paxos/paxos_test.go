package paxos

import (
	"testing"

	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

func propose(key, slot uint64, ballot llc.Stamp, from uint8) *proto.Message {
	return &proto.Message{Kind: proto.KindPropose, From: from, Key: key,
		OpID: 1, Slot: slot, Stamp: ballot}
}

func accept(key, slot uint64, ballot llc.Stamp, val string, from uint8) *proto.Message {
	return &proto.Message{Kind: proto.KindAccept, From: from, Key: key,
		OpID: 1, Slot: slot, Stamp: ballot, Value: []byte(val)}
}

func TestHandleProposePromise(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	b1 := llc.Stamp{Ver: 1, MID: 1}
	rep := HandlePropose(s, propose(5, 0, b1, 1), 0, buf)
	if rep.Flags&proto.FlagNack != 0 {
		t.Fatalf("first propose nacked: %+v", rep)
	}
	// A lower ballot is rejected with the promised ballot echoed.
	b0 := llc.Stamp{Ver: 1, MID: 0}
	rep = HandlePropose(s, propose(5, 0, b0, 0), 0, buf)
	if rep.Flags&proto.FlagNack == 0 || rep.Stamp != b1 {
		t.Fatalf("lower ballot accepted: %+v", rep)
	}
	// Equal ballot is also rejected (promise is strict).
	rep = HandlePropose(s, propose(5, 0, b1, 1), 0, buf)
	if rep.Flags&proto.FlagNack == 0 {
		t.Fatal("equal ballot re-promised")
	}
	// A higher ballot supersedes.
	b2 := llc.Stamp{Ver: 2, MID: 0}
	rep = HandlePropose(s, propose(5, 0, b2, 0), 0, buf)
	if rep.Flags&proto.FlagNack != 0 {
		t.Fatal("higher ballot nacked")
	}
}

func TestHandleAcceptRequiresPromise(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	b1 := llc.Stamp{Ver: 1, MID: 1}
	b2 := llc.Stamp{Ver: 2, MID: 0}
	HandlePropose(s, propose(5, 0, b2, 0), 0, buf)
	// Accept below the promise is nacked.
	rep := HandleAccept(s, accept(5, 0, b1, "x", 1), 0, buf)
	if rep.Flags&proto.FlagNack == 0 || rep.Stamp != b2 {
		t.Fatalf("low accept taken: %+v", rep)
	}
	// Accept at the promise succeeds.
	rep = HandleAccept(s, accept(5, 0, b2, "y", 0), 0, buf)
	if rep.Flags&proto.FlagNack != 0 {
		t.Fatal("accept at promise nacked")
	}
	// The accepted value now surfaces in later promises.
	b3 := llc.Stamp{Ver: 3, MID: 1}
	rep = HandlePropose(s, propose(5, 0, b3, 1), 0, buf)
	if rep.Flags&proto.FlagHasAccepted == 0 || string(rep.Value) != "y" || rep.Stamp != b2 {
		t.Fatalf("accepted value not exposed: %+v", rep)
	}
}

func TestHandleSlotMismatch(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	b := llc.Stamp{Ver: 5, MID: 0}
	// Commit slot 0 so the replica sits at slot 1.
	if !ApplyCommit(s, 5, 0, b, []byte("v0"), 1001, nil) {
		t.Fatal("commit did not advance")
	}
	// Stale proposer (slot 0): nacked with committed state for catch-up.
	rep := HandlePropose(s, propose(5, 0, llc.Stamp{Ver: 9, MID: 1}, 1), 0, buf)
	if rep.Flags&(proto.FlagNack|proto.FlagCommitted) != proto.FlagNack|proto.FlagCommitted {
		t.Fatalf("stale propose flags %08b", rep.Flags)
	}
	if rep.Slot != 1 || string(rep.Value) != "v0" || rep.Stamp != b {
		t.Fatalf("catch-up payload %+v", rep)
	}
	// Future proposer (slot 2): plain nack carrying our slot.
	rep = HandlePropose(s, propose(5, 2, llc.Stamp{Ver: 9, MID: 1}, 1), 0, buf)
	if rep.Flags&proto.FlagNack == 0 || rep.Flags&proto.FlagCommitted != 0 || rep.Slot != 1 {
		t.Fatalf("behind nack %+v", rep)
	}
	// Same for accepts.
	rep = HandleAccept(s, accept(5, 0, b, "x", 1), 0, buf)
	if rep.Flags&proto.FlagCommitted == 0 {
		t.Fatal("stale accept lacks committed flag")
	}
}

func TestApplyCommitIdempotentAndSkips(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	b0 := llc.Stamp{Ver: 1, MID: 0}
	b3 := llc.Stamp{Ver: 7, MID: 2}
	if !ApplyCommit(s, 9, 0, b0, []byte("a"), 2001, nil) {
		t.Fatal("commit 0 failed")
	}
	if ApplyCommit(s, 9, 0, b0, []byte("a"), 2001, nil) {
		t.Fatal("re-commit advanced")
	}
	// Skipping to slot 3 adopts the later value directly.
	if !ApplyCommit(s, 9, 3, b3, []byte("d"), 2002, nil) {
		t.Fatal("skip commit failed")
	}
	snap := ReadCommitted(s, 9, buf)
	if snap.Slot != 4 || string(snap.Val) != "d" || snap.Stamp != b3 {
		t.Fatalf("snapshot %+v", snap)
	}
	// Promise state reset after commit: an old ballot can promise again.
	rep := HandlePropose(s, propose(9, 4, llc.Stamp{Ver: 8, MID: 0}, 0), 0, buf)
	if rep.Flags&proto.FlagNack != 0 || rep.Flags&proto.FlagHasAccepted != 0 {
		t.Fatalf("post-commit propose %+v", rep)
	}
}

func TestAllocBallotUniqueAndIncreasing(t *testing.T) {
	s := kvs.New(64)
	var last llc.Stamp
	for i := 0; i < 100; i++ {
		b := AllocBallot(s, 3, 2, llc.Zero)
		if !last.Less(b) {
			t.Fatalf("ballot %v not above %v", b, last)
		}
		last = b
	}
	// atLeast pushes the allocator forward.
	b := AllocBallot(s, 3, 2, llc.Stamp{Ver: 1000, MID: 0})
	if b.Ver != 1001 {
		t.Fatalf("atLeast ignored: %v", b)
	}
}

func TestHandleCommitAndLearn(t *testing.T) {
	s := kvs.New(64)
	buf := make([]byte, kvs.MaxValueLen)
	m := &proto.Message{Kind: proto.KindCommit, From: 1, Key: 4, OpID: 9,
		Slot: 0, Stamp: llc.Stamp{Ver: 2, MID: 1}, Value: []byte("c")}
	rep := HandleCommit(s, m, 0)
	if rep.Kind != proto.KindCommitAck || rep.OpID != 9 {
		t.Fatalf("commit ack %+v", rep)
	}
	l := &proto.Message{Kind: proto.KindPaxosLearn, From: 1, Key: 4,
		Slot: 2, Stamp: llc.Stamp{Ver: 5, MID: 1}, Value: []byte("e")}
	HandleLearn(s, l)
	q := &proto.Message{Kind: proto.KindPaxosQuery, From: 1, Key: 4, OpID: 11}
	qr := HandleQuery(s, q, 0, buf)
	if qr.Slot != 3 || string(qr.Value) != "e" {
		t.Fatalf("query after learn %+v", qr)
	}
}

// --- Proposer state machine -------------------------------------------------

// ackOK crafts an OK reply for the proposer's first attempt (Start bumps
// the attempt tag to 1; replies must echo it or they are ignored).
func ackOK(from uint8) *proto.Message {
	return &proto.Message{From: from, Bits: 1}
}

func TestProposerHappyPath(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	p.Start(0, llc.Stamp{Ver: 1, MID: 0}, []byte("mine"))
	if got := p.OnProposeAck(ackOK(0)); got != ActWait {
		t.Fatalf("act %v", got)
	}
	if got := p.OnProposeAck(ackOK(1)); got != ActAccept {
		t.Fatalf("act %v, want accept", got)
	}
	if p.Helping() || string(p.Val) != "mine" {
		t.Fatal("value mangled")
	}
	if got := p.OnAcceptAck(ackOK(0)); got != ActWait {
		t.Fatalf("act %v", got)
	}
	if got := p.OnAcceptAck(ackOK(2)); got != ActCommit {
		t.Fatalf("act %v, want commit", got)
	}
	if got := p.OnCommitAck(ackOK(0)); got != ActWait {
		t.Fatalf("act %v", got)
	}
	if got := p.OnCommitAck(ackOK(1)); got != ActDone {
		t.Fatalf("act %v, want done", got)
	}
}

func TestProposerAdoptsForeignAccepted(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	p.Start(0, llc.Stamp{Ver: 5, MID: 0}, []byte("mine"))
	withAcc := &proto.Message{From: 1, Flags: proto.FlagHasAccepted, Bits: 1,
		Stamp: llc.Stamp{Ver: 2, MID: 1}, Value: []byte("theirs")}
	p.OnProposeAck(withAcc)
	if got := p.OnProposeAck(ackOK(0)); got != ActAccept {
		t.Fatalf("act %v", got)
	}
	if !p.Helping() || string(p.Val) != "theirs" {
		t.Fatalf("helping=%v val=%q", p.Helping(), p.Val)
	}
}

func TestProposerRecognisesOwnAccepted(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	b1 := llc.Stamp{Ver: 1, MID: 0}
	p.Start(0, b1, []byte("mine"))
	// First attempt stalls; retry at a higher ballot on the same slot.
	b2 := llc.Stamp{Ver: 9, MID: 0}
	p.Start(0, b2, []byte("mine"))
	// A replica that accepted our *first* ballot reports it, tagged with
	// our op id as the value's origin.
	// Second Start => attempt 2.
	withAcc := &proto.Message{From: 1, Flags: proto.FlagHasAccepted, Bits: 2,
		Stamp: b1, Origin: 10, Value: []byte("mine")}
	p.OnProposeAck(withAcc)
	ok2 := &proto.Message{From: 0, Bits: 2}
	if got := p.OnProposeAck(ok2); got != ActAccept {
		t.Fatalf("act %v", got)
	}
	if p.Helping() {
		t.Fatal("own value treated as foreign")
	}
}

func TestProposerRetryOnHigherPromise(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	p.Start(0, llc.Stamp{Ver: 1, MID: 0}, []byte("mine"))
	hi := llc.Stamp{Ver: 8, MID: 2}
	nack := &proto.Message{From: 1, Flags: proto.FlagNack, Bits: 1, Slot: 0, Stamp: hi}
	p.OnProposeAck(nack)
	nack2 := &proto.Message{From: 2, Flags: proto.FlagNack, Bits: 1, Slot: 0, Stamp: hi}
	if got := p.OnProposeAck(nack2); got != ActRetry {
		t.Fatalf("act %v, want retry", got)
	}
	if p.NextBallotFloor() != hi {
		t.Fatalf("floor %v", p.NextBallotFloor())
	}
}

func TestProposerRestartOnCommittedNack(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	p.Start(2, llc.Stamp{Ver: 4, MID: 0}, []byte("mine"))
	cn := &proto.Message{From: 1, Flags: proto.FlagNack | proto.FlagCommitted, Bits: 1,
		Slot: 5, Stamp: llc.Stamp{Ver: 9, MID: 1}, Value: []byte("newer")}
	// A single committed-nack must NOT trigger a restart: the proposer
	// waits for a quorum of replies so an own-committed witness cannot be
	// missed (the exactly-once probe).
	if got := p.OnProposeAck(cn); got != ActWait {
		t.Fatalf("act %v, want wait after one reply", got)
	}
	cn2 := &proto.Message{From: 2, Flags: proto.FlagNack | proto.FlagCommitted, Bits: 1,
		Slot: 5, Stamp: llc.Stamp{Ver: 9, MID: 1}, Value: []byte("newer")}
	// Quorum of committed-nacks without an authoritative slot verdict: the
	// restart goes pending until the full round (or the caller's grace
	// deadline forces it).
	if got := p.OnProposeAck(cn2); got != ActWait {
		t.Fatalf("act %v, want pending wait at quorum", got)
	}
	if !p.PendingRestart() {
		t.Fatal("restart not pending")
	}
	cn3 := &proto.Message{From: 0, Flags: proto.FlagNack | proto.FlagCommitted, Bits: 1,
		Slot: 5, Stamp: llc.Stamp{Ver: 9, MID: 1}, Value: []byte("newer")}
	if got := p.OnProposeAck(cn3); got != ActRestart {
		t.Fatalf("act %v, want restart at full round", got)
	}
	slot, st, val, origin, ok := p.CatchUp()
	if !ok || slot != 5 || string(val) != "newer" || st != (llc.Stamp{Ver: 9, MID: 1}) || origin != 0 {
		t.Fatalf("catch-up %v %v %q %d %v", slot, st, val, origin, ok)
	}
}

func TestProposerTracksBehindReplicas(t *testing.T) {
	p := NewProposer(1, 10, 0, 5)
	p.Start(3, llc.Stamp{Ver: 4, MID: 0}, []byte("m"))
	behind := &proto.Message{From: 4, Flags: proto.FlagNack, Bits: 1, Slot: 1}
	p.OnProposeAck(behind)
	if p.Behind != 1<<4 {
		t.Fatalf("behind mask %05b", p.Behind)
	}
	// Quorum of oks still wins the round despite the straggler.
	p.OnProposeAck(ackOK(0))
	p.OnProposeAck(ackOK(1))
	if got := p.OnProposeAck(ackOK(2)); got != ActAccept {
		t.Fatalf("act %v", got)
	}
}

func TestProposerDelinquencyPiggyback(t *testing.T) {
	p := NewProposer(1, 10, 0, 3)
	p.Start(0, llc.Stamp{Ver: 1, MID: 0}, []byte("m"))
	d := &proto.Message{From: 1, Flags: proto.FlagDelinquent, Bits: 1}
	p.OnProposeAck(d)
	if !p.Delinquent {
		t.Fatal("delinquent flag not folded")
	}
	if p.DelinqMask != 1<<1 {
		t.Fatalf("delinq mask = %b, want %b", p.DelinqMask, 1<<1)
	}
}

func TestProposerDuplicateRepliesIgnored(t *testing.T) {
	p := NewProposer(1, 10, 0, 5)
	p.Start(0, llc.Stamp{Ver: 1, MID: 0}, []byte("m"))
	for i := 0; i < 5; i++ {
		if got := p.OnProposeAck(ackOK(3)); got == ActAccept {
			t.Fatal("duplicates formed quorum")
		}
	}
	if p.Unseen(0b11111) != 0b10111 {
		t.Fatalf("unseen %05b", p.Unseen(0b11111))
	}
}

// TestThreeReplicaRMWSequence drives two sequential RMWs end-to-end over
// three in-memory replicas, checking slot advancement and value evolution.
func TestThreeReplicaRMWSequence(t *testing.T) {
	const n = 3
	stores := [n]*kvs.Store{kvs.New(64), kvs.New(64), kvs.New(64)}
	buf := make([]byte, kvs.MaxValueLen)

	// runRMW drives one RMW to completion, handling catch-up restarts —
	// e.g. when the proposer's replica missed an earlier commit because the
	// previous committer stopped broadcasting at its quorum.
	var opSeq uint64
	runRMW := func(proposerNode uint8, val string) {
		s := stores[proposerNode]
		opSeq++
		p := NewProposer(7, opSeq, proposerNode, n)
		for attempt := 0; attempt < 10; attempt++ {
			snap := ReadCommitted(s, 7, buf)
			b := AllocBallot(s, 7, proposerNode, p.NextBallotFloor())
			p.Start(snap.Slot, b, []byte(val))
			pm := p.ProposeMsg(proposerNode, 0)
			act := ActWait
			for i := uint8(0); i < n && act == ActWait; i++ {
				rep := HandlePropose(stores[i], &pm, i, buf)
				act = p.OnProposeAck(&rep)
			}
			if act == ActRestart {
				if slot, st, cv, origin, ok := p.CatchUp(); ok {
					ApplyCommit(s, 7, slot-1, st, cv, origin, p.CatchUpOrigins())
				}
				continue
			}
			if act != ActAccept {
				t.Fatalf("propose round: %v", act)
			}
			am := p.AcceptMsg(proposerNode, 0)
			act = ActWait
			for i := uint8(0); i < n && act == ActWait; i++ {
				rep := HandleAccept(stores[i], &am, i, buf)
				act = p.OnAcceptAck(&rep)
			}
			if act != ActCommit {
				t.Fatalf("accept round: %v", act)
			}
			cm := p.CommitMsg(proposerNode, 0)
			act = ActWait
			for i := uint8(0); i < n && act == ActWait; i++ {
				rep := HandleCommit(stores[i], &cm, i)
				act = p.OnCommitAck(&rep)
			}
			if act != ActDone {
				t.Fatalf("commit round: %v", act)
			}
			return
		}
		t.Fatal("RMW did not complete in 10 attempts")
	}

	runRMW(0, "first")
	runRMW(2, "second")
	// The committer stops at its ack quorum, so only a quorum is guaranteed
	// to hold the final state; check agreement over a quorum.
	upToDate := 0
	for i := uint8(0); i < n; i++ {
		snap := ReadCommitted(stores[i], 7, buf)
		if snap.Slot == 2 && string(snap.Val) == "second" {
			upToDate++
		}
	}
	if upToDate < 2 {
		t.Fatalf("only %d replicas hold the final state", upToDate)
	}
}

// TestDuelingProposersOneWins: two proposers race for slot 0; the Paxos
// invariant is that at most one value is chosen. We simulate the classic
// interleaving where proposer B's propose supersedes A's promise before A's
// accept lands, so A is nacked and must retry — and on retry A must adopt
// B's accepted value.
func TestDuelingProposersOneWins(t *testing.T) {
	const n = 3
	stores := [n]*kvs.Store{kvs.New(64), kvs.New(64), kvs.New(64)}
	buf := make([]byte, kvs.MaxValueLen)

	pa := NewProposer(7, 1, 0, n)
	ba := AllocBallot(stores[0], 7, 0, llc.Zero)
	pa.Start(0, ba, []byte("A"))
	pb := NewProposer(7, 2, 1, n)
	bb := AllocBallot(stores[1], 7, 1, ba) // strictly higher than A's
	pb.Start(0, bb, []byte("B"))

	// A's propose reaches everyone first.
	pma := pa.ProposeMsg(0, 0)
	for i := uint8(0); i < n; i++ {
		rep := HandlePropose(stores[i], &pma, i, buf)
		pa.OnProposeAck(&rep)
	}
	// Then B's propose supersedes the promises.
	pmb := pb.ProposeMsg(1, 0)
	for i := uint8(0); i < n; i++ {
		rep := HandlePropose(stores[i], &pmb, i, buf)
		pb.OnProposeAck(&rep)
	}
	// B accepts everywhere.
	amb := pb.AcceptMsg(1, 0)
	for i := uint8(0); i < n; i++ {
		rep := HandleAccept(stores[i], &amb, i, buf)
		pb.OnAcceptAck(&rep)
	}
	// B commits everywhere.
	cmb := pb.CommitMsg(1, 0)
	for i := uint8(0); i < n; i++ {
		rep := HandleCommit(stores[i], &cmb, i)
		pb.OnCommitAck(&rep)
	}
	// A's accept now hits committed slots everywhere: it must learn the
	// committed state and restart at the next slot (not blindly retry).
	ama := pa.AcceptMsg(0, 0)
	var act Action
	for i := uint8(0); i < n; i++ {
		rep := HandleAccept(stores[i], &ama, i, buf)
		if a := pa.OnAcceptAck(&rep); a != ActWait {
			act = a
			break
		}
	}
	if act != ActRestart {
		t.Fatalf("A's accept round: %v, want restart", act)
	}
	slot, st, cv, origin, ok := pa.CatchUp()
	if !ok || slot != 1 || string(cv) != "B" || origin != 2 {
		t.Fatalf("catch-up: slot=%d val=%q origin=%d ok=%v", slot, cv, origin, ok)
	}
	ApplyCommit(stores[0], 7, slot-1, st, cv, origin, pa.CatchUpOrigins())
	// A re-proposes its own value at slot 1 with a fresh ballot; the slot
	// is clean, so no adoption happens.
	ba2 := AllocBallot(stores[0], 7, 0, pa.NextBallotFloor())
	pa.Start(1, ba2, []byte("A"))
	pma2 := pa.ProposeMsg(0, 0)
	for i := uint8(0); i < n; i++ {
		rep := HandlePropose(stores[i], &pma2, i, buf)
		if a := pa.OnProposeAck(&rep); a != ActWait {
			act = a
			break
		}
	}
	if act != ActAccept || pa.Helping() || string(pa.Val) != "A" {
		t.Fatalf("A at slot 1: act=%v helping=%v val=%q", act, pa.Helping(), pa.Val)
	}
}
