package paxos

import (
	"kite/internal/llc"
	"kite/internal/proto"
)

// Phase enumerates the proposer state machine's phases.
type Phase uint8

// Proposer phases.
const (
	PhasePropose Phase = iota
	PhaseAccept
	PhaseCommit
	PhaseDone
)

// Action tells the driving worker what to do after folding a reply.
type Action uint8

// Proposer actions.
const (
	ActWait    Action = iota // keep collecting replies
	ActAccept                // quorum promised: broadcast AcceptMsg
	ActCommit                // quorum accepted: apply locally, broadcast CommitMsg
	ActDone                  // quorum of commit acks: RMW complete
	ActRestart               // committed state moved under us: catch up and re-propose
	ActRetry                 // outpaced by a higher ballot: re-propose with a higher one after backoff
	// ActAlreadyCommitted: a replica reported that this RMW's value was
	// already committed (driven by a helper). Catch up and finish without
	// re-executing — the exactly-once path.
	ActAlreadyCommitted
)

// Proposer drives one RMW through per-key Paxos. The worker owns
// broadcasting; the proposer folds replies and reports the next Action.
//
// Lifecycle: the core computes the RMW's new value from the local committed
// snapshot, calls Start, broadcasts ProposeMsg, and feeds replies in. On
// ActRestart the core refreshes its snapshot (CatchUp has already been
// applied), recomputes the value and calls Start again. When the proposer
// wins a slot with an *adopted* value (helping a stranded proposal), it
// reports Helping()==true at ActDone-equivalent commit completion, and the
// core restarts for its own value at the next slot.
type Proposer struct {
	Key  uint64
	OpID uint64
	MID  uint8

	Phase  Phase
	Slot   uint64
	Ballot llc.Stamp
	Val    []byte // value being driven this attempt (ours, or adopted)

	// Delinquent accumulates the piggybacked acquire-side flags (§4.2);
	// DelinqMask records which counted repliers flagged, so the reset-bit
	// goes only to them (see abd.ReadOp.DelinqMask for why).
	Delinquent bool
	DelinqMask uint16

	n, quorum int

	ownVal []byte // the RMW's own value for the current snapshot

	// valOrigin identifies the RMW that produced Val (our own OpID, or the
	// adopted value's origin). It rides in accepts/commits so replicas can
	// filter duplicate executions of helped RMWs.
	valOrigin uint64

	helping      bool // current Val is an adopted foreign value
	ownCommitted bool // a replica reported our RMW already committed
	slotLost     bool // authoritative: our slot was decided by another RMW

	// Catch-up state observed in committed-nacks.
	ccSlot    uint64
	ccStamp   llc.Stamp
	ccVal     []byte
	ccOrigin  uint64
	ccOrigins []uint64
	ccSeen    bool

	// Behind replicas to send PaxosLearn to.
	Behind uint16

	maxPromised llc.Stamp // highest foreign promise seen in nacks

	seen, oks uint16
	accBest   llc.Stamp
	accVal    []byte
	accOrigin uint64

	// attempt tags every round's messages (echoed in replies) so replies
	// from an abandoned earlier attempt — possibly for a different slot —
	// cannot contaminate the current round's promise/accept bookkeeping.
	attempt uint16

	// pendingRestart marks a quorum-supported restart that is waiting for
	// the full round (or a grace period) before executing, in case a
	// not-yet-heard replica holds own-committed evidence for this op.
	pendingRestart bool
}

// NewProposer creates a proposer for an n-replica deployment.
func NewProposer(key, opID uint64, mid uint8, n int) *Proposer {
	return &Proposer{Key: key, OpID: opID, MID: mid, n: n, quorum: n/2 + 1}
}

// Start arms an attempt at slot with ballot, proposing ownVal (the RMW's
// value computed against the committed snapshot for this slot). ownVal is
// copied: the proposer's value must stay immutable for the attempt even if
// the caller reuses its buffer.
func (p *Proposer) Start(slot uint64, ballot llc.Stamp, ownVal []byte) {
	p.attempt++
	p.Slot = slot
	p.Ballot = ballot
	p.ownVal = append(p.ownVal[:0], ownVal...)
	p.Val = p.ownVal
	p.valOrigin = p.OpID
	p.helping = false
	p.Phase = PhasePropose
	p.seen, p.oks = 0, 0
	p.accBest, p.accVal, p.accOrigin = llc.Zero, nil, 0
	p.maxPromised = llc.Zero
	p.ccSeen = false
	p.pendingRestart = false
	p.slotLost = false
	p.Behind = 0
}

// Helping reports whether the value being driven was adopted from a
// stranded foreign proposal.
func (p *Proposer) Helping() bool { return p.helping }

// CatchUp returns the best committed state gleaned from nacks, if any.
func (p *Proposer) CatchUp() (slot uint64, stamp llc.Stamp, val []byte, origin uint64, ok bool) {
	return p.ccSlot, p.ccStamp, p.ccVal, p.ccOrigin, p.ccSeen
}

// CatchUpOrigins returns the recent committed origins carried by the best
// committed-nack, for ring inheritance on the local replica.
func (p *Proposer) CatchUpOrigins() []uint64 { return p.ccOrigins }

// NextBallotFloor returns the stamp a retry ballot must exceed.
func (p *Proposer) NextBallotFloor() llc.Stamp { return llc.Max(p.maxPromised, p.Ballot) }

// ProposeMsg builds the phase-1 broadcast.
func (p *Proposer) ProposeMsg(self, worker uint8) proto.Message {
	return proto.Message{Kind: proto.KindPropose, From: self, Worker: worker,
		Key: p.Key, OpID: p.OpID, Slot: p.Slot, Stamp: p.Ballot, Bits: p.attempt}
}

// AcceptMsg builds the phase-2 broadcast. The value is copied: messages
// outlive the attempt (staged batches, retransmissions), while the caller's
// value buffer is rewritten on restarts — aliasing it would let a stale
// in-flight accept carry a future attempt's value.
func (p *Proposer) AcceptMsg(self, worker uint8) proto.Message {
	return proto.Message{Kind: proto.KindAccept, From: self, Worker: worker,
		Key: p.Key, OpID: p.OpID, Slot: p.Slot, Stamp: p.Ballot, Bits: p.attempt,
		Origin: p.valOrigin, Value: append([]byte(nil), p.Val...)}
}

// CommitMsg builds the commit broadcast (value copied; see AcceptMsg).
func (p *Proposer) CommitMsg(self, worker uint8) proto.Message {
	return proto.Message{Kind: proto.KindCommit, From: self, Worker: worker,
		Key: p.Key, OpID: p.OpID, Slot: p.Slot, Stamp: p.Ballot, Bits: p.attempt,
		Origin: p.valOrigin, Value: append([]byte(nil), p.Val...)}
}

// LearnMsg builds a catch-up message for a behind replica, carrying the
// latest committed slot (slot-1) of this proposer's snapshot.
func (p *Proposer) LearnMsg(self, worker uint8, stamp llc.Stamp, val []byte, origin uint64) proto.Message {
	return proto.Message{Kind: proto.KindPaxosLearn, From: self, Worker: worker,
		Key: p.Key, OpID: p.OpID, Slot: p.Slot - 1, Stamp: stamp,
		Origin: origin, Value: val}
}

func (p *Proposer) foldCommon(m *proto.Message) (counted bool) {
	bit := uint16(1) << m.From
	if p.seen&bit != 0 {
		return false
	}
	p.seen |= bit
	if m.Flags&proto.FlagDelinquent != 0 {
		p.Delinquent = true
		p.DelinqMask |= bit
	}
	if m.Flags&proto.FlagNack == 0 {
		p.oks |= bit
		return true
	}
	// Nack bookkeeping.
	if m.Flags&proto.FlagOwnCommitted != 0 {
		// In the propose phase the replica vouched for our own op id; in
		// the accept phase it vouched for the driven value's origin, which
		// is ours only when we are not helping.
		if p.Phase == PhasePropose || !p.helping {
			p.ownCommitted = true
		}
	}
	// Direct committed-evidence: a committed-nack whose recent-origins list
	// names our op proves our RMW already committed, whatever we are
	// currently driving.
	for _, o := range m.Origins {
		if o == p.OpID {
			p.ownCommitted = true
			break
		}
	}
	// Authoritative slot verdict: the replica applied our slot directly
	// and knows who won it.
	if m.Flags&proto.FlagSlotKnown != 0 {
		if m.SlotOrigin == p.OpID {
			p.ownCommitted = true
		} else {
			p.slotLost = true
		}
	}
	switch {
	case m.Flags&proto.FlagCommitted != 0:
		if !p.ccSeen || m.Slot > p.ccSlot {
			p.ccSeen = true
			p.ccSlot = m.Slot
			p.ccStamp = m.Stamp
			p.ccOrigin = m.Origin
			p.ccVal = append(p.ccVal[:0], m.Value...)
			p.ccOrigins = append(p.ccOrigins[:0], m.Origins...)
		}
	case m.Slot < p.Slot:
		p.Behind |= bit
	default:
		p.maxPromised = llc.Max(p.maxPromised, m.Stamp)
	}
	return true
}

// decide resolves the round.
//
// Restarting only after a QUORUM of replies is a safety requirement, not an
// optimisation: this op's value may have been adopted and committed by a
// helper at the current slot. If it was, the commit quorum of that slot all
// hold this op's origin in their rings, and any quorum of our repliers
// intersects that commit quorum — so waiting for a quorum guarantees an
// own-committed witness is heard before we re-execute the RMW against a
// newer base. Restarting on the first committed-nack would double-apply
// helped RMWs.
func (p *Proposer) decide(okAction Action) Action {
	seen, oks := popcount16(p.seen), popcount16(p.oks)
	nacks := seen - oks
	switch {
	case p.ownCommitted:
		return ActAlreadyCommitted
	case oks >= p.quorum:
		return okAction
	case seen < p.quorum:
		return ActWait
	case p.ccSeen:
		// The slot moved on under us. An authoritative verdict (a replica
		// that applied our slot directly says another RMW won it) makes
		// the restart provably safe immediately. Otherwise hear the FULL
		// round if possible: quorum intersection with the commit quorum of
		// an abandoned slot is temporal — a witness that acked the commit
		// of our (helped) value may not have held that knowledge when it
		// replied. A straggler gets one retransmission interval (the
		// caller fires a forced restart on its deadline) before
		// availability wins.
		if p.slotLost || seen >= p.n {
			return ActRestart
		}
		p.pendingRestart = true
		return ActWait
	case seen >= p.n || nacks > p.n-p.quorum:
		// Can no longer reach a quorum of oks this round.
		return ActRetry
	default:
		return ActWait
	}
}

// PendingRestart reports that a restart has quorum support and is waiting
// only for the full round; the caller may force it after a grace period.
func (p *Proposer) PendingRestart() bool {
	return p.pendingRestart && !p.ownCommitted && p.Phase != PhaseDone
}

// OnProposeAck folds a phase-1 reply.
func (p *Proposer) OnProposeAck(m *proto.Message) Action {
	if p.Phase != PhasePropose || m.Bits != p.attempt {
		return ActWait
	}
	if !p.foldCommon(m) {
		return ActWait
	}
	if m.Flags&proto.FlagNack == 0 && m.Flags&proto.FlagHasAccepted != 0 {
		if p.accBest.Less(m.Stamp) {
			p.accBest = m.Stamp
			p.accOrigin = m.Origin
			p.accVal = append(p.accVal[:0], m.Value...)
		}
	}
	return p.decidePropose()
}

// decidePropose resolves the propose round against the replies recorded so
// far, entering the accept phase when a quorum promised.
func (p *Proposer) decidePropose() Action {
	act := p.decide(ActAccept)
	if act == ActAccept {
		if !p.accBest.IsZero() {
			// A value is in flight at this slot: drive it. If its origin
			// is our own op (an earlier ballot of ours was accepted
			// somewhere), completing it completes our RMW.
			if p.accOrigin == p.OpID {
				p.Val = p.ownVal
				p.valOrigin = p.OpID
				p.helping = false
			} else {
				p.Val = append([]byte(nil), p.accVal...)
				p.valOrigin = p.accOrigin
				p.helping = true
			}
		}
		p.Phase = PhaseAccept
		p.seen, p.oks = 0, 0
	}
	return act
}

// OnAcceptAck folds a phase-2 reply.
func (p *Proposer) OnAcceptAck(m *proto.Message) Action {
	if p.Phase != PhaseAccept || m.Bits != p.attempt {
		return ActWait
	}
	if !p.foldCommon(m) {
		return ActWait
	}
	return p.decideAccept()
}

// decideAccept resolves the accept round against the replies recorded so
// far, entering the commit phase when a quorum accepted.
func (p *Proposer) decideAccept() Action {
	act := p.decide(ActCommit)
	if act == ActCommit {
		p.Phase = PhaseCommit
		p.seen, p.oks = 0, 0
	}
	return act
}

// Refit retargets the proposer at a reconfigured member set (n members,
// quorum, member bitmask full) and re-resolves the round in flight. Replies
// recorded from removed members are discarded — a reply must not count
// toward a quorum of a configuration its sender is no longer in — and a
// round that was blocked solely on such members completes now instead of
// retransmitting forever at nodes whose frames the epoch check rejects.
// Quorums of the successor configuration intersect those of the
// predecessor for the single-member changes reconfiguration commits (see
// DESIGN.md "Membership"), which is what makes finishing the round under
// the new arithmetic safe. The reconfiguration CAS itself depends on this
// for its commit round: a removal's commit broadcast installs the shrunk
// config at the committer before the leaver's ack — rejected as a
// non-member's — could ever be counted.
func (p *Proposer) Refit(n, quorum int, full uint16) Action {
	p.n, p.quorum = n, quorum
	p.seen &= full
	p.oks &= full
	switch p.Phase {
	case PhasePropose:
		return p.decidePropose()
	case PhaseAccept:
		return p.decideAccept()
	case PhaseCommit:
		if popcount16(p.oks) >= p.quorum {
			p.Phase = PhaseDone
			return ActDone
		}
	}
	return ActWait
}

// OnCommitAck folds a commit ack.
func (p *Proposer) OnCommitAck(m *proto.Message) Action {
	if p.Phase != PhaseCommit || m.Bits != p.attempt {
		return ActWait
	}
	bit := uint16(1) << m.From
	if p.seen&bit != 0 {
		return ActWait
	}
	p.seen |= bit
	p.oks |= bit
	if popcount16(p.oks) >= p.quorum {
		p.Phase = PhaseDone
		return ActDone
	}
	return ActWait
}

// Unseen returns nodes that have not replied to the current round.
func (p *Proposer) Unseen(full uint16) uint16 {
	if p.Phase == PhaseDone {
		return 0
	}
	return full &^ p.seen
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
