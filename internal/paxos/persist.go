package paxos

import (
	"kite/internal/kvs"
	"kite/internal/llc"
)

// WAL replay and snapshot support. The write-ahead log records the three
// Paxos persistence points (promise, accept, commit) as they happen; on
// restart the node replays them through the helpers below. Every replay
// application re-checks the same guard the live handler used, so
// replaying a prefix of history — or replaying records already covered
// by a snapshot — converges to a state the live run could have been in.
// In particular a promise or accept that was superseded before the
// crash does not resurrect: the later record replays after it and wins
// again.

// ReplayPromise re-installs a logged promise: key promised ballot b at
// slot. Applies only if the slot is still current and the ballot still
// exceeds the standing promise (mirroring HandlePropose). The ballot
// also raises the allocator watermark so a restarted proposer never
// re-allocates a ballot its pre-crash self already saw.
func ReplayPromise(s *kvs.Store, key, slot uint64, b llc.Stamp) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		st.lastBallot = llc.Max(st.lastBallot, b)
		if slot == st.Slot && st.Promised.Less(b) {
			st.Promised = b
		}
	})
}

// ReplayAccept re-installs a logged accept, guarded like HandleAccept:
// the slot must still be current and the ballot must not be below the
// standing promise.
func ReplayAccept(s *kvs.Store, key, slot uint64, b llc.Stamp, val []byte, origin uint64) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		st.lastBallot = llc.Max(st.lastBallot, b)
		if slot == st.Slot && !b.Less(st.Promised) {
			st.Promised = b
			st.AccBallot = b
			st.AccVal = append(st.AccVal[:0], val...)
			st.AccOrigin = origin
		}
	})
}

// Persisted is a key's full consensus state as stored in WAL snapshots.
// Unlike the catch-up wire format (ExportMeta), it carries the
// accepted-but-uncommitted round, the standing promise, and the ballot
// allocator watermark — exactly the state whose loss used to be the
// documented double-failure window. The slot history ring is not
// persisted (it only sharpens committed-nack answers; a miss degrades
// to the conservative path), and the exactly-once registry travels as
// the recent-origin ring, the same fidelity catch-up provides.
type Persisted struct {
	Slot       uint64
	Promised   llc.Stamp
	AccBallot  llc.Stamp
	LastBallot llc.Stamp
	AccVal     []byte
	AccOrigin  uint64
	LastOrigin uint64
	Recent     []uint64
}

// ExportState extracts a key's Persisted consensus state from its entry
// meta for a snapshot. ok is false when the key has no consensus state
// worth persisting. Callers hold the entry's bucket lock
// (kvs.Store.SnapshotBucket), which is the meta-access contract.
func ExportState(meta any) (Persisted, bool) {
	st, isState := meta.(*State)
	if !isState {
		return Persisted{}, false
	}
	if st.Slot == 0 && st.Promised.IsZero() && st.AccBallot.IsZero() && st.lastBallot.IsZero() {
		return Persisted{}, false
	}
	p := Persisted{
		Slot:       st.Slot,
		Promised:   st.Promised,
		AccBallot:  st.AccBallot,
		LastBallot: st.lastBallot,
		AccOrigin:  st.AccOrigin,
		LastOrigin: st.LastOrigin,
		Recent:     st.recent(OriginRing),
	}
	if st.AccVal != nil {
		p.AccVal = append([]byte(nil), st.AccVal...)
	}
	return p, true
}

// RestoreState merges a snapshot's Persisted state into key, guarded so
// that log records replaying after (and overlapping) the snapshot can
// only move state forward: a lower-slot snapshot entry never regresses
// a key the log has already advanced.
func RestoreState(s *kvs.Store, key uint64, p Persisted) {
	s.Mutate(key, func(e *kvs.Entry) {
		st := stateOf(e)
		st.lastBallot = llc.Max(st.lastBallot, p.LastBallot)
		for i := len(p.Recent) - 1; i >= 0; i-- {
			st.recordOrigin(p.Recent[i])
		}
		if p.Slot < st.Slot {
			return
		}
		if p.Slot > st.Slot {
			st.Slot = p.Slot
			st.Promised = llc.Zero
			st.AccBallot = llc.Zero
			st.AccVal = nil
			st.AccOrigin = 0
			st.LastOrigin = p.LastOrigin
		}
		// Same slot now: merge the promise and accepted round monotonically.
		if st.Promised.Less(p.Promised) {
			st.Promised = p.Promised
		}
		if st.AccBallot.Less(p.AccBallot) {
			st.AccBallot = p.AccBallot
			st.AccVal = append([]byte(nil), p.AccVal...)
			st.AccOrigin = p.AccOrigin
		}
		if st.LastOrigin == 0 {
			st.LastOrigin = p.LastOrigin
		}
	})
}
