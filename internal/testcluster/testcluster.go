// Package testcluster boots a real multi-process-shaped Kite deployment
// for tests: core nodes exchanging replica traffic over loopback UDP, each
// fronted by a client-facing session server. Tests that exercise the
// remote backend of the unified kite.Session interface (package kite's
// conformance suite, the dstruct structure tests, the client e2e tests)
// share this harness instead of hand-rolling node wiring, and kite-chaos
// drives it outside `go test` through the Chaos target.
package testcluster

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"kite"
	"kite/client"
	"kite/internal/chaos"
	"kite/internal/core"
	"kite/internal/llc"
	"kite/internal/server"
	"kite/internal/transport"
)

// TB is the slice of testing.TB this package needs. It exists so the
// harness can be driven outside `go test` (cmd/kite-chaos) by any
// implementation that fails hard and runs cleanups; *testing.T satisfies
// it unchanged.
type TB interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	Cleanup(func())
}

// Cluster is a running loopback-UDP deployment. Nodes, Servers and the
// per-node transports are index-aligned; everything is torn down by
// t.Cleanup. Ports are reserved (and peer address books wired) for the full
// id space up front, so AddNode can boot replicas at ids beyond the initial
// n without re-wiring anyone. Every node's UDP transport is wrapped in a
// FaultInjector (kept across restarts, so installed rules survive a node's
// reincarnation), aggregated behind Faults.
type Cluster struct {
	Nodes   []*core.Node
	Servers []*server.Server

	cfg    core.Config
	trs    []*transport.FaultInjector
	faults *transport.FaultSet
	t      TB
	addrOf func(node, w int) string
	boot   int
	groups int
	group  int
}

// Addr returns node i's client-facing session-server address.
func (c *Cluster) Addr(i int) string { return c.Servers[i].Addr() }

// Faults aggregates every node's replica-traffic fault injector: a rule
// applied here affects the named link regardless of which node's transport
// carries it. Counters accumulate per link and survive Clear.
func (c *Cluster) Faults() *transport.FaultSet { return c.faults }

// PauseNode makes replica i unresponsive for d (the §8.4 sleeping-replica
// failure).
func (c *Cluster) PauseNode(i int, d time.Duration) { c.Nodes[i].Pause(d) }

// StopNode crash-stops replica i: workers exit, outstanding ops fail with
// ErrStopped, state is lost. The session server and its UDP socket stay
// up, answering leased clients with session errors until RestartNode.
func (c *Cluster) StopNode(i int) { c.Nodes[i].Stop() }

// CrashNode kills replica i the way SIGKILL would: like StopNode, but a
// WAL-enabled replica's log is abandoned without a final fsync, so the
// restart replays exactly what had reached the operating system. On
// memory-only clusters it is indistinguishable from StopNode.
func (c *Cluster) CrashNode(i int) { c.Nodes[i].Crash() }

// TryRestartNode replaces stopped replica i with a fresh node of the same
// id on the same (fault-wrapped) UDP transport, rebinding the session
// server so clients keep their dial target. On a memory-only cluster the
// new incarnation is empty; with Options.WALDir it first replays its own
// snapshot + log. Either way it rejoins via the catch-up sweep; gate on
// AwaitRejoin before asserting served state.
func (c *Cluster) TryRestartNode(i int) error {
	c.Nodes[i].Stop()
	cfg := c.nodeCfg(uint8(i))
	cfg.Rejoin = true
	// A fresh incarnation: op ids of the new boot must not collide with
	// the dead incarnation's ids in the group's exactly-once registries.
	cfg.Incarnation = c.Nodes[i].Incarnation() + 1
	// Boot with the newest configuration a live replica has installed (the
	// dead node's own last view as fallback): the group may have
	// reconfigured while this replica was down.
	cfg.Initial = c.Nodes[i].View()
	for _, nd := range c.Nodes {
		if !nd.Stopped() && !nd.Removed() && nd.ConfigEpoch() > cfg.Initial.Epoch {
			cfg.Initial = nd.View()
		}
	}
	nd, err := core.NewNode(uint8(i), cfg, c.trs[i])
	if err != nil {
		return fmt.Errorf("restart node %d: %w", i, err)
	}
	nd.Start()
	c.Nodes[i] = nd
	c.Servers[i].Rebind(nd)
	return nil
}

// RestartNode is TryRestartNode with test-fatal error handling.
func (c *Cluster) RestartNode(t TB, i int) {
	t.Helper()
	if err := c.TryRestartNode(i); err != nil {
		t.Fatal(err)
	}
}

// TryAwaitRejoin waits up to d for replica i's catch-up sweep, reporting
// whether it completed (a sweep aborted by a stop is a failure).
func (c *Cluster) TryAwaitRejoin(i int, d time.Duration) bool {
	return c.Nodes[i].AwaitCatchup(d) && !c.Nodes[i].Stopped()
}

// AwaitRejoin waits (fatally, up to d) for replica i's catch-up sweep. A
// sweep aborted by a stop is a failure, not a completion.
func (c *Cluster) AwaitRejoin(t TB, i int, d time.Duration) {
	t.Helper()
	if !c.Nodes[i].AwaitCatchup(d) {
		t.Fatalf("node %d still catching up after %v: %+v", i, d, c.Nodes[i].Catchup())
	}
	if c.Nodes[i].Stopped() {
		t.Fatalf("node %d was stopped mid-sweep instead of rejoining", i)
	}
}

// Dial connects one client to every node's session server, with timeouts
// matched to the harness config, and registers cleanup. The returned slice
// is node-index-aligned; lease sessions with clients[i].NewSession().
func (c *Cluster) Dial(t TB) []*client.Client {
	t.Helper()
	clients := make([]*client.Client, len(c.Servers))
	for i := range clients {
		cl, err := client.Dial(c.Addr(i), client.Options{
			DialTimeout:   2 * time.Second,
			OpTimeout:     15 * time.Second,
			RetryInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("dial node %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		clients[i] = cl
	}
	return clients
}

// Sharded is a running sharded loopback-UDP deployment: groups independent
// Clusters plus the metadata clients need to dial it.
type Sharded struct {
	Groups []*Cluster
}

// StartSharded brings up a sharded deployment of groups replica groups,
// each n replicas over loopback UDP (see Start). The session servers
// advertise their (group, groups) so DialSharded's shard-map validation is
// exercised for real.
func StartSharded(t TB, groups, n int) *Sharded {
	t.Helper()
	sc := &Sharded{}
	for g := 0; g < groups; g++ {
		sc.Groups = append(sc.Groups, startGroup(t, Options{Nodes: n}, groups, g))
	}
	return sc
}

// Addrs returns the client addresses of node i of every group — the shard
// map for client.DialSharded.
func (s *Sharded) Addrs(i int) []string {
	addrs := make([]string, len(s.Groups))
	for g, cl := range s.Groups {
		addrs[g] = cl.Addr(i)
	}
	return addrs
}

// PauseNode pauses replica i in every group — one machine of a sharded
// deployment (hosting a replica of each group) going to sleep.
func (s *Sharded) PauseNode(i int, d time.Duration) {
	for _, cl := range s.Groups {
		cl.PauseNode(i, d)
	}
}

// StopNode crash-stops replica i in every group (the machine dies).
func (s *Sharded) StopNode(i int) {
	for _, cl := range s.Groups {
		cl.StopNode(i)
	}
}

// RestartNode restarts replica i in every group; each group's fresh
// replica catches up independently against its own peers.
func (s *Sharded) RestartNode(t TB, i int) {
	t.Helper()
	for _, cl := range s.Groups {
		cl.RestartNode(t, i)
	}
}

// AddNode grows every group by one replica on the same new machine id.
func (s *Sharded) AddNode(t TB) int {
	t.Helper()
	id := -1
	for g, cl := range s.Groups {
		nid := cl.AddNode(t)
		if id >= 0 && nid != id {
			t.Fatalf("group %d assigned id %d, group 0 assigned %d", g, nid, id)
		}
		id = nid
	}
	return id
}

// RemoveNode removes machine i's replica from every group.
func (s *Sharded) RemoveNode(t TB, i int) {
	t.Helper()
	for _, cl := range s.Groups {
		cl.RemoveNode(t, i)
	}
}

// AwaitRejoin waits (fatally, up to d total) for replica i's sweep in
// every group.
func (s *Sharded) AwaitRejoin(t TB, i int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for g, cl := range s.Groups {
		if !cl.Nodes[i].AwaitCatchup(time.Until(deadline)) {
			t.Fatalf("group %d node %d still catching up after %v: %+v",
				g, i, d, cl.Nodes[i].Catchup())
		}
		if cl.Nodes[i].Stopped() {
			t.Fatalf("group %d node %d was stopped mid-sweep instead of rejoining", g, i)
		}
	}
}

// DialSharded connects a sharded client to node i of every group, with the
// same timeouts as Dial, registering cleanup.
func (s *Sharded) DialSharded(t TB, i int) *client.ShardedClient {
	t.Helper()
	sc, err := client.DialSharded(s.Addrs(i), client.Options{
		DialTimeout:   2 * time.Second,
		OpTimeout:     15 * time.Second,
		RetryInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial sharded node %d: %v", i, err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

// reservePorts grabs n free loopback UDP ports. The sockets are closed
// before use, so a clashing process could steal one — fine for tests.
func reservePorts(t TB, n int) []int {
	t.Helper()
	ports := make([]int, n)
	conns := make([]*net.UDPConn, n)
	for i := range ports {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

// Options parameterise StartWith beyond the node count. The zero value of
// every field keeps the memory-only defaults of Start.
type Options struct {
	// Nodes is the replica count (required, >= 1).
	Nodes int
	// WALDir, when non-empty, gives every replica a write-ahead log under
	// its own node-<id> subdirectory; restarts of the same slot recover
	// from it. Tests typically pass t.TempDir().
	WALDir string
	// FsyncInterval is the WAL group-commit deadline (0 = default 10ms,
	// < 0 = fsync before every acknowledgment). Ignored without WALDir.
	FsyncInterval time.Duration
	// SnapshotEvery is the record count between background snapshots
	// (0 = default, < 0 = disabled). Ignored without WALDir.
	SnapshotEvery int
}

// Start brings up n memory-only replicas over loopback UDP, each with a
// session server on an ephemeral port, and registers teardown with
// t.Cleanup. The configuration mirrors the client e2e environment: single
// worker, 8 sessions per worker, timeouts widened for loopback-UDP RTTs.
func Start(t TB, n int) *Cluster {
	return StartWith(t, Options{Nodes: n})
}

// StartWith is Start with explicit Options — notably per-node write-ahead
// logs for durability and crash-recovery tests.
func StartWith(t TB, o Options) *Cluster {
	return startGroup(t, o, 0, 0)
}

// startGroup is StartWith parameterised by the node's place in a sharded
// deployment: its session servers advertise (groups, group) to clients.
func startGroup(t TB, o Options, groups, group int) *Cluster {
	t.Helper()
	const workers = 1
	n := o.Nodes
	// Reserve the full id space so live AddNode needs no re-wiring.
	ports := reservePorts(t, llc.MaxNodes*workers)
	addrOf := func(node, w int) string {
		return fmt.Sprintf("127.0.0.1:%d", ports[node*workers+w])
	}
	cfg := core.Config{
		Nodes: n, Workers: workers, SessionsPerWorker: 8, KVSCapacity: 1 << 12,
		// Loopback UDP RTTs are well above in-process latencies; widen the
		// timeouts so healthy runs stay on the fast path.
		ReleaseTimeout: 50 * time.Millisecond,
		RetryInterval:  25 * time.Millisecond,
		WALDir:         o.WALDir,
		FsyncInterval:  o.FsyncInterval,
		SnapshotEvery:  o.SnapshotEvery,
	}
	cl := &Cluster{
		cfg: cfg, t: t, addrOf: addrOf, boot: n, groups: groups, group: group,
		faults: transport.NewFaultSet(),
	}
	t.Cleanup(func() {
		for _, s := range cl.Servers {
			s.Close()
		}
		for _, nd := range cl.Nodes {
			nd.Stop()
		}
		for _, tr := range cl.trs {
			tr.Close()
		}
	})
	for id := 0; id < n; id++ {
		if err := cl.bootNode(uint8(id), cfg); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

// nodeCfg derives replica id's config from the cluster's: same everything,
// but its own WAL subdirectory (when the cluster has one at all).
func (c *Cluster) nodeCfg(id uint8) core.Config {
	cfg := c.cfg
	if cfg.WALDir != "" {
		cfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("node-%02d", id))
	}
	return cfg
}

// bootNode wires the transport (peer addresses for the WHOLE id space —
// absent peers are simply dark sockets), wraps it in the node's fault
// injector, boots the node and fronts it with a session server. cfg is the
// cluster-level config (base WALDir); the per-node subdirectory is derived
// here.
func (c *Cluster) bootNode(id uint8, cfg core.Config) error {
	const workers = 1
	if cfg.WALDir != "" {
		cfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("node-%02d", id))
	}
	listen := make([]string, workers)
	for w := range listen {
		listen[w] = c.addrOf(int(id), w)
	}
	peers := make(map[uint8][]string)
	for p := 0; p < llc.MaxNodes; p++ {
		if p == int(id) {
			continue
		}
		pa := make([]string, workers)
		for w := range pa {
			pa[w] = c.addrOf(p, w)
		}
		peers[uint8(p)] = pa
	}
	udp, err := transport.NewUDP(transport.UDPConfig{
		LocalNode: id, Workers: workers, Listen: listen, Peers: peers,
	})
	if err != nil {
		return err
	}
	fi := transport.NewFaultInjector(udp, int64(id)+1)
	nd, err := core.NewNode(id, cfg, fi)
	if err != nil {
		fi.Close()
		return err
	}
	nd.Start()
	srv, err := server.New(nd, server.Config{Addr: "127.0.0.1:0", Groups: c.groups, Group: c.group})
	if err != nil {
		nd.Stop()
		fi.Close()
		return err
	}
	c.Nodes = append(c.Nodes, nd)
	c.Servers = append(c.Servers, srv)
	c.trs = append(c.trs, fi)
	c.faults.Add(fi)
	return nil
}

// TryAddNode grows the group by one replica over live UDP: the grown
// configuration is committed through a live member, then the new replica
// boots at the next id in catch-up mode with its own session server.
// Returns the new id; gate on AwaitRejoin before leasing its sessions.
func (c *Cluster) TryAddNode() (int, error) {
	id := uint8(len(c.Nodes))
	var proposer *core.Node
	for _, nd := range c.Nodes {
		if !nd.Stopped() && !nd.Removed() && !nd.CatchingUp() {
			proposer = nd
			break
		}
	}
	if proposer == nil {
		return -1, fmt.Errorf("testcluster: no live member to drive AddNode")
	}
	next, err := proposer.ReconfigureAdd(id, 0)
	if err != nil {
		return -1, fmt.Errorf("testcluster: add node %d: %w", id, err)
	}
	cfg := c.cfg
	cfg.Rejoin = true
	cfg.Initial = next
	if err := c.bootNode(id, cfg); err != nil {
		return -1, fmt.Errorf("testcluster: boot node %d: %w", id, err)
	}
	return int(id), nil
}

// AddNode is TryAddNode with test-fatal error handling.
func (c *Cluster) AddNode(t TB) int {
	t.Helper()
	id, err := c.TryAddNode()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TryRemoveNode removes replica i from the group through a surviving
// member and crash-stops it. Its server stays bound (answering session
// errors), mirroring kite-node's behaviour when an operator removes a live
// replica.
func (c *Cluster) TryRemoveNode(i int) error {
	var proposer *core.Node
	for _, nd := range c.Nodes {
		if int(nd.ID) != i && !nd.Stopped() && !nd.Removed() && !nd.CatchingUp() {
			proposer = nd
			break
		}
	}
	if proposer == nil {
		return fmt.Errorf("testcluster: no surviving member to drive RemoveNode")
	}
	if _, err := proposer.ReconfigureRemove(uint8(i), 0); err != nil {
		return fmt.Errorf("testcluster: remove node %d: %w", i, err)
	}
	c.Nodes[i].Stop()
	return nil
}

// RemoveNode is TryRemoveNode with test-fatal error handling.
func (c *Cluster) RemoveNode(t TB, i int) {
	t.Helper()
	if err := c.TryRemoveNode(i); err != nil {
		t.Fatal(err)
	}
}

// Chaos adapts the cluster into a chaos.Target: workload sessions are
// leased through real clients over loopback UDP (with chaos-sized
// timeouts), faults hit the replica links, lifecycle operations go through
// the error-returning variants. Leases freed by the workload recycle
// through the server's pool, so chaos re-leasing stays within the
// per-node session budget.
func (c *Cluster) Chaos() chaos.Target {
	ct := &chaosTarget{c: c, clients: make(map[int]*client.Client)}
	c.t.Cleanup(ct.close)
	return ct
}

type chaosTarget struct {
	c *Cluster

	mu      sync.Mutex
	clients map[int]*client.Client
}

func (t *chaosTarget) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cl := range t.clients {
		cl.Close()
	}
	t.clients = map[int]*client.Client{}
}

func (t *chaosTarget) Backend() string      { return "remote" }
func (t *chaosTarget) Nodes() int           { return t.c.boot }
func (t *chaosTarget) SessionsPerNode() int { return t.c.cfg.Workers * t.c.cfg.SessionsPerWorker }

func (t *chaosTarget) Session(node, sess int) (kite.Session, error) {
	t.mu.Lock()
	cl := t.clients[node]
	t.mu.Unlock()
	if cl == nil {
		var err error
		cl, err = client.Dial(t.c.Addr(node), client.Options{
			DialTimeout:   2 * time.Second,
			OpTimeout:     3 * time.Second,
			RetryInterval: 25 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		if prev := t.clients[node]; prev != nil {
			t.mu.Unlock()
			cl.Close()
			cl = prev
		} else {
			t.clients[node] = cl
			t.mu.Unlock()
		}
	}
	return cl.NewSession()
}

func (t *chaosTarget) Faults() *transport.FaultSet { return t.c.Faults() }
func (t *chaosTarget) StopNode(node int)           { t.c.StopNode(node) }
func (t *chaosTarget) CrashNode(node int)          { t.c.CrashNode(node) }
func (t *chaosTarget) RestartNode(node int) error  { return t.c.TryRestartNode(node) }
func (t *chaosTarget) AwaitRejoin(node int, timeout time.Duration) bool {
	return t.c.TryAwaitRejoin(node, timeout)
}
func (t *chaosTarget) AddNode() (int, error)     { return t.c.TryAddNode() }
func (t *chaosTarget) RemoveNode(node int) error { return t.c.TryRemoveNode(node) }
