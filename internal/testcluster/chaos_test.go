package testcluster

import (
	"testing"
	"time"

	"kite/internal/chaos"
)

// TestChaosRemote drives a full seeded chaos run against the loopback-UDP
// deployment: faults on the replica links, crash-restarts and
// reconfiguration under a real client workload, with the recorded history
// verified offline. This is the remote leg of the chaos acceptance matrix
// (inproc and sharded live in internal/chaos).
func TestChaosRemote(t *testing.T) {
	cl := Start(t, 3)
	d := 8 * time.Second
	if testing.Short() {
		d = 5 * time.Second
	}
	rep, rec := chaos.Run(cl.Chaos(), chaos.Config{Seed: 1, Duration: d})
	if !rep.Passed {
		t.Fatalf("remote chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
	if rep.Ops.OK == 0 || len(rec.Events) == 0 {
		t.Fatalf("no operations recorded: %+v", rep.Ops)
	}
	for _, k := range chaos.AllKinds() {
		if rep.Injected[k] == 0 {
			t.Fatalf("kind %s never injected; injected=%v", k, rep.Injected)
		}
	}
}

// TestChaosLocalReadsRemote runs the local-reads schedule — delay-biased
// nemeses attacking the local-acquire fast path's invalidate→validate
// window — against the loopback-UDP deployment (the inproc and sharded legs
// live in internal/chaos).
func TestChaosLocalReadsRemote(t *testing.T) {
	cl := Start(t, 3)
	d := 8 * time.Second
	if testing.Short() {
		d = 5 * time.Second
	}
	rep, _ := chaos.Run(cl.Chaos(), chaos.Config{Seed: 1, Duration: d, Kinds: chaos.LocalReadsKinds()})
	if !rep.Passed {
		t.Fatalf("remote local-reads chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
	// The schedule must have actually exercised the fast path on the real
	// node processes: local hits and quorum fallbacks both observed.
	var hits, falls uint64
	for _, nd := range cl.Nodes {
		st := nd.SlowPathStats()
		hits += st.LocalAcqHits
		falls += st.AcqFallbacks
	}
	if hits == 0 || falls == 0 {
		t.Fatalf("fast path not exercised under chaos: hits=%d fallbacks=%d", hits, falls)
	}
}
