package chaos

import (
	"time"

	"kite"
	"kite/sharded"
	"kite/internal/transport"
)

// Target is a running Kite deployment a chaos run drives. All three
// harness layers provide one: kite.Cluster and sharded.Cluster through the
// adapters below, the loopback-UDP testcluster through its Chaos() hook
// (the adapter lives there — chaos must stay importable by testcluster).
//
// Lifecycle errors are returned, not fatal: mid-chaos a restart can
// legitimately race a concurrent fault, and the runner records rather than
// aborts.
type Target interface {
	// Backend names the deployment flavour for reports ("inproc",
	// "sharded", "remote", ...).
	Backend() string
	// Nodes is the boot membership size; SessionsPerNode the per-replica
	// session count. Workload slots are carved from this grid.
	Nodes() int
	SessionsPerNode() int
	// Session leases (or re-leases) the session at the coordinates. A
	// fresh handle abandons any previous one at the same coordinates —
	// workloads re-lease after errors.
	Session(node, sess int) (kite.Session, error)
	// Faults is the deployment-wide fault surface.
	Faults() *transport.FaultSet
	StopNode(node int)
	// CrashNode is StopNode as SIGKILL: a WAL-enabled node's log is
	// abandoned without a final fsync (the crash-all nemesis kills every
	// node this way before restarting them all from disk).
	CrashNode(node int)
	RestartNode(node int) error
	AwaitRejoin(node int, timeout time.Duration) bool
	AddNode() (int, error)
	RemoveNode(node int) error
}

// inprocTarget adapts kite.Cluster.
type inprocTarget struct {
	c *kite.Cluster
}

// NewInprocTarget wraps an in-process single-group cluster.
func NewInprocTarget(c *kite.Cluster) Target { return &inprocTarget{c} }

func (t *inprocTarget) Backend() string      { return "inproc" }
func (t *inprocTarget) Nodes() int           { return t.c.Nodes() }
func (t *inprocTarget) SessionsPerNode() int { return t.c.SessionsPerNode() }
func (t *inprocTarget) Session(node, sess int) (kite.Session, error) {
	return t.c.Session(node, sess), nil
}
func (t *inprocTarget) Faults() *transport.FaultSet {
	return transport.NewFaultSet(t.c.Faults())
}
func (t *inprocTarget) StopNode(node int)          { t.c.StopNode(node) }
func (t *inprocTarget) CrashNode(node int)         { t.c.CrashNode(node) }
func (t *inprocTarget) RestartNode(node int) error { return t.c.RestartNode(node) }
func (t *inprocTarget) AwaitRejoin(node int, timeout time.Duration) bool {
	return t.c.AwaitRejoin(node, timeout)
}
func (t *inprocTarget) AddNode() (int, error)   { return t.c.AddNode() }
func (t *inprocTarget) RemoveNode(node int) error { return t.c.RemoveNode(node) }

// shardedTarget adapts sharded.Cluster.
type shardedTarget struct {
	c *sharded.Cluster
}

// NewShardedTarget wraps an in-process sharded cluster; nemeses hit the
// same machine slot in every group, like the lifecycle operations.
func NewShardedTarget(c *sharded.Cluster) Target { return &shardedTarget{c} }

func (t *shardedTarget) Backend() string      { return "sharded" }
func (t *shardedTarget) Nodes() int           { return t.c.Nodes() }
func (t *shardedTarget) SessionsPerNode() int { return t.c.SessionsPerNode() }
func (t *shardedTarget) Session(node, sess int) (kite.Session, error) {
	return t.c.Session(node, sess), nil
}
func (t *shardedTarget) Faults() *transport.FaultSet { return t.c.Faults() }
func (t *shardedTarget) StopNode(node int)           { t.c.StopNode(node) }
func (t *shardedTarget) CrashNode(node int)          { t.c.CrashNode(node) }
func (t *shardedTarget) RestartNode(node int) error  { return t.c.RestartNode(node) }
func (t *shardedTarget) AwaitRejoin(node int, timeout time.Duration) bool {
	return t.c.AwaitRejoin(node, timeout)
}
func (t *shardedTarget) AddNode() (int, error)     { return t.c.AddNode() }
func (t *shardedTarget) RemoveNode(node int) error { return t.c.RemoveNode(node) }
