package chaos

import (
	"testing"

	"kite"
	"kite/sharded"
)

// TestChaosOnlineAuditSharded runs the online-audit schedule: the standing
// internal/audit verifier rides every recorded workload session over the
// sharded backend while the nemesis mix runs. The runner's soundness gate
// fails the run if the live auditor reports any violation the offline
// verifier does not confirm on the full recorded history — so a pass here
// certifies both the deployment (no real violations) and the auditor (no
// invented ones, under real latency, retries and session churn).
func TestChaosOnlineAuditSharded(t *testing.T) {
	c, err := sharded.NewCluster(2, kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := chaosConfig(t)
	cfg.Kinds = OnlineAuditKinds()
	cfg.OnlineAudit = true
	rep, _ := Run(NewShardedTarget(c), cfg)
	if !rep.Passed {
		t.Fatalf("online-audit chaos run failed: errors=%v verifier:\n%s\naudit:\n%s",
			rep.Errors, rep.Verifier.String(), rep.Audit.Report.String())
	}
	if rep.Audit == nil {
		t.Fatal("OnlineAudit requested but report carries no audit summary")
	}
	st := rep.Audit.Stats
	if st.SampledOps == 0 || st.JudgedEvents == 0 || st.CheckedReads == 0 {
		t.Fatalf("auditor rode along but saw nothing: %+v", st)
	}
	if !rep.Audit.Report.OK() {
		// Passed==true means every verdict was offline-confirmed; a healthy
		// cluster should have produced none at all.
		t.Fatalf("healthy sharded run: online auditor reported violations:\n%s", rep.Audit.Report.String())
	}
}

// TestChaosOnlineAuditInproc is the per-PR CI smoke shape: the same gate on
// the cheap in-process backend.
func TestChaosOnlineAuditInproc(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := chaosConfig(t)
	cfg.Kinds = OnlineAuditKinds()
	cfg.OnlineAudit = true
	rep, _ := Run(NewInprocTarget(c), cfg)
	if !rep.Passed {
		t.Fatalf("online-audit chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
	if rep.Audit == nil || rep.Audit.Stats.SampledOps == 0 {
		t.Fatalf("no audit coverage: %+v", rep.Audit)
	}
}
