package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"kite"
	"kite/sharded"
)

// TestGenerateDeterministic pins the reproducibility contract: a schedule
// is a pure function of its Config, and the seed genuinely matters.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Duration: 30 * time.Second, Nodes: 3}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different schedules:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	if c := Generate(cfg); reflect.DeepEqual(a.Actions, c.Actions) {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestGenerateGuarantees checks the structural invariants the runner and
// the workload rely on, across many seeds.
func TestGenerateGuarantees(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := Config{Seed: seed, Duration: 30 * time.Second, Nodes: 3, MaxConcurrent: 2}
		s := Generate(cfg)
		counts := map[NemesisKind]int{}
		for _, a := range s.Actions {
			counts[a.Kind]++
			if a.Heal > cfg.Duration || a.At >= a.Heal {
				t.Fatalf("seed %d: unhealed or inverted action %+v", seed, a)
			}
			if !a.Kind.lifecycle() && a.Kind != KindIsolateNode && (int(a.From) >= cfg.Nodes || int(a.To) >= cfg.Nodes || a.From == a.To) {
				t.Fatalf("seed %d: link fault outside boot membership: %+v", seed, a)
			}
		}
		for _, k := range AllKinds() {
			if k == KindAddRemove && counts[k] == 0 && counts[KindStopRestart] > 1 {
				continue // capacity fallback; not possible at Nodes=3 but allowed
			}
			if counts[k] == 0 {
				t.Fatalf("seed %d: kind %s never scheduled in %v", seed, k, s.Actions)
			}
		}
		for i, a := range s.Actions {
			if !a.Kind.lifecycle() {
				continue
			}
			for j, b := range s.Actions {
				if i != j && b.At < a.Heal && b.Heal > a.At {
					t.Fatalf("seed %d: lifecycle action %+v overlaps %+v", seed, a, b)
				}
			}
		}
		// Link-fault lane: at no instant more than MaxConcurrent active
		// faults (sweep over the start points), isolation always alone.
		link := func(k NemesisKind) bool {
			return k == KindDropLink || k == KindDelayLink || k == KindCutLink
		}
		for i, a := range s.Actions {
			if !link(a.Kind) && a.Kind != KindIsolateNode {
				continue
			}
			depth := 1
			for j, b := range s.Actions {
				if i == j || (!link(b.Kind) && b.Kind != KindIsolateNode) {
					continue
				}
				if b.At <= a.At && b.Heal > a.At { // active when a starts
					if a.Kind == KindIsolateNode || b.Kind == KindIsolateNode {
						t.Fatalf("seed %d: isolation overlaps another link fault: %+v / %+v", seed, a, b)
					}
					depth++
				}
			}
			if depth > cfg.MaxConcurrent {
				t.Fatalf("seed %d: %d concurrent link faults at %v (%+v)", seed, depth, a.At, a)
			}
		}
	}
}

func chaosConfig(t *testing.T) Config {
	d := 8 * time.Second
	if testing.Short() {
		d = 5 * time.Second
	}
	return Config{Seed: 1, Duration: d}
}

// TestChaosInproc: a full seeded run — every nemesis kind injected against
// the in-process cluster, history verified, evidence ledger non-trivial.
func TestChaosInproc(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, rec := Run(NewInprocTarget(c), chaosConfig(t))
	if !rep.Passed {
		t.Fatalf("chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
	if rec == nil || len(rec.Events) == 0 || rep.Ops.OK == 0 {
		t.Fatalf("no history recorded: %+v", rep.Ops)
	}
	for _, k := range AllKinds() {
		if rep.Injected[k] == 0 {
			t.Fatalf("kind %s never injected; injected=%v", k, rep.Injected)
		}
	}
}

// TestChaosLocalReadsInproc runs the local-reads schedule — the nemesis mix
// biased at the local-acquire fast path's invalidate→validate window — over
// three seeds against the in-process cluster. The scan workers' acquires
// mix local hits with quorum fallbacks while validates are delayed, peers
// isolated and replicas restarted; the verifier judges the history.
func TestChaosLocalReadsInproc(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cfg := chaosConfig(t)
			cfg.Seed = seed
			cfg.Kinds = LocalReadsKinds()
			rep, _ := Run(NewInprocTarget(c), cfg)
			if !rep.Passed {
				t.Fatalf("local-reads chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
			}
			for _, k := range LocalReadsKinds() {
				if rep.Injected[k] == 0 {
					t.Fatalf("kind %s never injected; injected=%v", k, rep.Injected)
				}
			}
			// The schedule must have actually exercised the fast path: some
			// acquires served locally, some forced onto the quorum read.
			var hits, falls uint64
			for n := 0; n < c.Nodes(); n++ {
				st := c.NodeStats(n)
				hits += st.LocalAcqHits
				falls += st.AcqFallbacks
			}
			if hits == 0 || falls == 0 {
				t.Fatalf("fast path not exercised under chaos: hits=%d fallbacks=%d", hits, falls)
			}
		})
	}
}

// TestChaosWireBatchingInproc runs the wire-batching schedule — the nemesis
// mix biased at the batched transport's flush/linger window, plus burst
// sessions whose high-fanout relaxed-write batches keep the flush deadlines
// hot — over two seeds against the in-process cluster. The burst keys are
// disjoint from every verified range and the burst sessions are unrecorded,
// so the verifier judges the recorded workers exactly as in the default run;
// the burst-op counter proves the load generator actually ran.
func TestChaosWireBatchingInproc(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 8, Capacity: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cfg := chaosConfig(t)
			cfg.Seed = seed
			cfg.Kinds = WireBatchingKinds()
			cfg.BurstSessions = 3
			rep, _ := Run(NewInprocTarget(c), cfg)
			if !rep.Passed {
				t.Fatalf("wire-batching chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
			}
			for _, k := range WireBatchingKinds() {
				if rep.Injected[k] == 0 {
					t.Fatalf("kind %s never injected; injected=%v", k, rep.Injected)
				}
			}
			if rep.BurstOps == 0 {
				t.Fatal("burst sessions requested but no burst writes completed")
			}
		})
	}
}

// TestChaosLocalReadsSharded: one local-reads seed against the sharded
// composition (the remote leg lives in internal/testcluster).
func TestChaosLocalReadsSharded(t *testing.T) {
	c, err := sharded.NewCluster(2, kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := chaosConfig(t)
	cfg.Kinds = LocalReadsKinds()
	rep, _ := Run(NewShardedTarget(c), cfg)
	if !rep.Passed {
		t.Fatalf("sharded local-reads chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
}

// TestChaosSharded: the same run shape against the sharded deployment —
// nemeses hit the same machine slot in every group through the FaultSet.
func TestChaosSharded(t *testing.T) {
	c, err := sharded.NewCluster(2, kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, _ := Run(NewShardedTarget(c), chaosConfig(t))
	if !rep.Passed {
		t.Fatalf("sharded chaos run failed: errors=%v verifier:\n%s", rep.Errors, rep.Verifier.String())
	}
	if len(rep.Faults) == 0 {
		t.Fatal("no per-link fault evidence recorded")
	}
}
