package chaos

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kite"
	"kite/internal/audit"
	"kite/internal/history"
)

// The workload mirrors the repo's conformance shape so the verifier has
// teeth on every protocol class: producer/consumer pairs exercise the
// release/acquire contract over relaxed payload writes, FAA workers hammer
// one counter from two sessions, and a CAS worker advances a unique-value
// chain. All values are unique per key (the verifier's matching
// assumption).
//
// Chaos discipline: any error abandons the current round, re-leases the
// session at the same coordinates and starts a fresh round under a fresh
// recorded session — so every release's covered writes live in the
// release's own recorded session, which is exactly the granularity the RC
// check verifies at.
const (
	payloadBase = 1000 // + pair*16 + k
	payloadKeys = 4
	flagBase    = 9000 // + pair
	faaKey      = 8000
	casKey      = 8001

	// Burst keys live far above every verified key range: burst writes are
	// unrecorded load (never read back), so they must never collide with a
	// key the verifier reasons about.
	burstBase   = 12000 // + burst*burstFanout + i
	burstFanout = 24    // writes per DoBatch round

	opTimeout = 5 * time.Second
)

type workload struct {
	target Target
	log    *history.Log
	// aud, when non-nil, rides the online auditor's sampling recorder on
	// every recorded session (outermost, so it sees exactly the calls the
	// offline history sees).
	aud   *audit.Auditor
	pairs int

	// burstOps counts completed unrecorded burst writes — the evidence
	// that the burst load actually ran (it appears in the run report).
	burstOps atomic.Uint64

	stop atomic.Bool
	wg   sync.WaitGroup
}

// startWorkload launches the worker goroutines; call (*workload).halt to
// stop and join them. bursts adds that many unrecorded high-fanout
// relaxed-write sessions (see (*workload).burst).
func startWorkload(tg Target, log *history.Log, aud *audit.Auditor, pairs, bursts int) *workload {
	w := &workload{target: tg, log: log, aud: aud, pairs: pairs}
	slot := 0
	next := func() (int, int) {
		node, sess := slot%tg.Nodes(), slot/tg.Nodes()
		slot++
		return node, sess
	}
	for p := 0; p < pairs; p++ {
		p := p
		pn, ps := next()
		cn, cs := next()
		w.go_(func() { w.producer(p, pn, ps) })
		w.go_(func() { w.consumer(p, cn, cs) })
	}
	for i := 0; i < 2; i++ {
		n, s := next()
		w.go_(func() { w.faa(n, s) })
	}
	n, s := next()
	w.go_(func() { w.cas(n, s) })
	for i := 0; i < 2; i++ {
		n, s := next()
		w.go_(func() { w.scan(n, s) })
	}
	for b := 0; b < bursts; b++ {
		b := b
		n, s := next()
		w.go_(func() { w.burst(b, n, s) })
	}
	return w
}

func (w *workload) go_(fn func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		fn()
	}()
}

func (w *workload) halt() {
	w.stop.Store(true)
	w.wg.Wait()
}

// lease opens (or re-opens) the recorded session at the coordinates,
// retrying while the node is down.
func (w *workload) lease(node, sess int) kite.Session {
	for !w.stop.Load() {
		inner, err := w.target.Session(node, sess)
		if err == nil {
			s := w.log.Wrap(inner)
			if w.aud != nil {
				s = w.aud.Wrap(s)
			}
			return s
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

// release closes a session that hit an error (freeing its lease on remote
// backends — leases are a finite per-node resource) and leases afresh.
func (w *workload) release(s kite.Session, node, sess int) kite.Session {
	if s != nil {
		s.Close()
	}
	time.Sleep(50 * time.Millisecond)
	return w.lease(node, sess)
}

// leaseRaw opens an unrecorded session at the coordinates, retrying while
// the node is down. Burst sessions use it: their writes are pure load —
// never read back, never verified — so recording them would only bloat the
// verifier's input without adding evidence.
func (w *workload) leaseRaw(node, sess int) kite.Session {
	for !w.stop.Load() {
		s, err := w.target.Session(node, sess)
		if err == nil {
			return s
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

// releaseRaw is release for unrecorded sessions.
func (w *workload) releaseRaw(s kite.Session, node, sess int) kite.Session {
	if s != nil {
		s.Close()
	}
	time.Sleep(50 * time.Millisecond)
	return w.leaseRaw(node, sess)
}

func (w *workload) do(s kite.Session, op kite.Op) error {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	_, err := s.Do(ctx, op)
	return err
}

func (w *workload) doRes(s kite.Session, op kite.Op) (kite.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	return s.Do(ctx, op)
}

// producer p writes its payload keys then releases its flag, one round per
// iteration; round numbers never repeat, even across error retries.
func (w *workload) producer(p, node, sess int) {
	s := w.lease(node, sess)
	for r := 1; s != nil && !w.stop.Load(); r++ {
		ok := true
		for k := 0; k < payloadKeys; k++ {
			val := []byte(fmt.Sprintf("p%dr%dk%d", p, r, k))
			if err := w.do(s, kite.WriteOp(uint64(payloadBase+p*16+k), val)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			flag := []byte(fmt.Sprintf("p%dr%d", p, r))
			if err := w.do(s, kite.ReleaseOp(uint64(flagBase+p), flag)); err != nil {
				ok = false
			}
		}
		if !ok {
			// Round abandoned: fresh session, fresh recorded thread.
			s = w.release(s, node, sess)
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// consumer p acquires p's flag and reads the payload keys; the verifier
// decides what those reads were allowed to return.
func (w *workload) consumer(p, node, sess int) {
	s := w.lease(node, sess)
	for s != nil && !w.stop.Load() {
		if _, err := w.doRes(s, kite.AcquireOp(uint64(flagBase+p))); err != nil {
			s = w.release(s, node, sess)
			continue
		}
		bad := false
		for k := 0; k < payloadKeys; k++ {
			if err := w.do(s, kite.ReadOp(uint64(payloadBase+p*16+k))); err != nil {
				bad = true
				break
			}
		}
		if bad {
			s = w.release(s, node, sess)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// scan hammers the local-acquire fast path (DESIGN.md "Local reads"):
// acquires of the relaxed-only payload keys are served off the local store
// whenever a key's valid bit survives the nemeses, and fall back to the ABD
// quorum read whenever it doesn't — exactly the invalidate→validate window
// the local-reads schedule attacks. Payload keys are never sync-written and
// their values never collide with flag values, so the verifier judges these
// acquires as plain reads of relaxed data.
func (w *workload) scan(node, sess int) {
	s := w.lease(node, sess)
	for i := 0; s != nil && !w.stop.Load(); i++ {
		key := uint64(payloadBase + (i%w.pairs)*16 + (i/w.pairs)%payloadKeys)
		if _, err := w.doRes(s, kite.AcquireOp(key)); err != nil {
			s = w.release(s, node, sess)
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// burst keeps the transport's flush deadlines hot: every round issues one
// high-fanout DoBatch of relaxed writes to its private key range, so the
// inter-replica broadcast path always has multi-message batches in flight
// and the adaptive flusher decides on size rather than idling into its
// linger deadline — which is exactly the state the wire-batching nemeses
// attack. The session is unrecorded (leaseRaw) and the keys are disjoint
// from every verified range, so the verifier's judgement rests solely on
// the recorded workers running alongside.
func (w *workload) burst(b, node, sess int) {
	s := w.leaseRaw(node, sess)
	ops := make([]kite.Op, burstFanout)
	for r := 1; s != nil && !w.stop.Load(); r++ {
		for i := range ops {
			val := []byte(fmt.Sprintf("b%dr%dk%d", b, r, i))
			ops[i] = kite.WriteOp(uint64(burstBase+b*burstFanout+i), val)
		}
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		_, err := s.DoBatch(ctx, ops)
		cancel()
		if err != nil {
			s = w.releaseRaw(s, node, sess)
			continue
		}
		w.burstOps.Add(burstFanout)
		time.Sleep(2 * time.Millisecond)
	}
}

// faa increments the shared counter; contention between the two FAA
// workers is what gives the lost-update check its power.
func (w *workload) faa(node, sess int) {
	s := w.lease(node, sess)
	for s != nil && !w.stop.Load() {
		if err := w.do(s, kite.FAAOp(faaKey, 1)); err != nil {
			s = w.release(s, node, sess)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cas advances a unique-value chain: each successful swap consumes the
// previous value exactly once. After an indeterminate failure the next
// attempt's comparand is stale on purpose — its benign failure re-reads
// the current value.
func (w *workload) cas(node, sess int) {
	s := w.lease(node, sess)
	var expected []byte
	for i := 0; s != nil && !w.stop.Load(); i++ {
		next := []byte(fmt.Sprintf("c%d", i))
		res, err := w.doRes(s, kite.CASOp(casKey, expected, next, false))
		switch {
		case err != nil:
			s = w.release(s, node, sess)
		case res.Swapped:
			expected = next
		default:
			expected = res.Value
		}
		time.Sleep(5 * time.Millisecond)
	}
}
