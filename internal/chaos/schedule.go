// Package chaos turns the repo's fault-injection knobs — link drops,
// delays, cuts and isolation (transport.FaultInjector), crash-restarts and
// membership reconfiguration — into seeded, reproducible nemesis
// schedules, and runs them against any Kite backend while a
// history-recording workload (internal/history) executes. The recorded
// history is checked offline by internal/verifier; cmd/kite-chaos is the
// CLI front end, and testcluster exposes a Target for the loopback-UDP
// deployment.
//
// A Schedule is a pure function of its Config (most importantly the seed):
// the same seed always yields bit-identical action timelines, so a failing
// run reproduces from its report alone. The generator guarantees:
//
//   - at least one action of every requested nemesis kind (round-robin
//     before random choice);
//   - every fault heals before the workload's settle window — the
//     timeline never ends in a broken state;
//   - lifecycle actions (stop-restart, add-remove) are exclusive: they
//     overlap nothing, so a crash never compounds with a partition into
//     quorum loss;
//   - link faults overlap at most MaxConcurrent deep, node isolation
//     never overlaps other link faults, and faulted links stay within the
//     boot membership — a connected majority always remains.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"kite/internal/llc"
)

// NemesisKind names one class of injected fault.
type NemesisKind string

const (
	// KindDropLink drops each message on one direction of a link with a
	// fixed probability.
	KindDropLink NemesisKind = "drop-link"
	// KindDelayLink holds one direction of a link's messages for a fixed
	// delay (reordering them against other links).
	KindDelayLink NemesisKind = "delay-link"
	// KindCutLink drops everything on one direction of a link.
	KindCutLink NemesisKind = "cut-link"
	// KindIsolateNode cuts every link touching one node, both directions.
	KindIsolateNode NemesisKind = "isolate-node"
	// KindStopRestart crash-stops a node, then restarts it and waits for
	// its catch-up sweep.
	KindStopRestart NemesisKind = "stop-restart"
	// KindAddRemove grows the membership by one replica, waits for it to
	// join, then removes it again.
	KindAddRemove NemesisKind = "add-remove"
	// KindCrashAll SIGKILLs every node at once, then restarts them all and
	// waits for every rejoin sweep. Memory-only deployments cannot survive
	// it (all replicas of every key are gone); it exists to certify
	// WAL-enabled deployments, which restart from their own disks, and is
	// therefore excluded from AllKinds — request it explicitly.
	KindCrashAll NemesisKind = "crash-all"
)

// AllKinds lists every nemesis kind a memory-only deployment can survive,
// in canonical order. KindCrashAll is deliberately absent: it requires a
// WAL-enabled target (see its doc) and must be requested explicitly.
func AllKinds() []NemesisKind {
	return []NemesisKind{KindDropLink, KindDelayLink, KindCutLink,
		KindIsolateNode, KindStopRestart, KindAddRemove}
}

// LocalReadsKinds is the nemesis mix of the `local-reads` schedule
// (cmd/kite-chaos -nemeses local-reads), aimed at the local-acquire fast
// path (DESIGN.md "Local reads"). Its hazard window is invalidate→validate:
// a write's install clears the key's valid bit and only the full-ack
// validate broadcast sets it again, so the mix is biased toward reordering
// and losing exactly those messages — delay-link appears twice (weighting
// the random rounds toward held-back validates and acks), isolate-node
// starves full-acks entirely, and stop-restart / add-remove exercise the
// boot-invalid and membership-refit edges of validation.
func LocalReadsKinds() []NemesisKind {
	return []NemesisKind{KindDelayLink, KindIsolateNode, KindStopRestart,
		KindAddRemove, KindDelayLink}
}

// WireBatchingKinds is the nemesis mix of the `wire-batching` schedule
// (cmd/kite-chaos -nemeses wire-batching), aimed at the batched-syscall
// transport's adaptive flush path (DESIGN.md "Transport"). Its hazard window
// is the linger between a datagram being staged on the send ring and the
// flush-on-size-or-deadline decision: delay-link appears twice (weighting the
// random rounds toward batches that land after later retransmissions, so
// duplicate suppression runs against whole batched frames), drop-link and
// cut-link lose multi-message batches wholesale and force retransmission
// through partially-filled rings, and stop-restart drains rings mid-flight
// and reprobes the sendmmsg/recvmmsg path on the restarted node's fresh
// socket. Pair it with Config.BurstSessions so high-fanout relaxed writes
// keep the flush deadlines hot while the mix runs.
func WireBatchingKinds() []NemesisKind {
	return []NemesisKind{KindDelayLink, KindDropLink, KindDelayLink,
		KindCutLink, KindStopRestart}
}

// OnlineAuditKinds is the nemesis mix of the `online-audit` schedule
// (cmd/kite-chaos -nemeses online-audit), which rides the standing
// internal/audit verifier on the workload sessions while the mix runs. The
// auditor's own hazard windows are stream backpressure and watermark
// timing, so the mix leans on latency and loss rather than membership
// churn: delay-link appears twice (completions arriving long after their
// invokes stretch the grace window and force deferrals), drop-link and
// isolate-node starve acquires into long retry loops, and stop-restart
// makes whole recorded sessions abort and re-lease mid-audit. A run fails
// if the live auditor reports a violation the offline verifier does not
// confirm on the full recorded history.
func OnlineAuditKinds() []NemesisKind {
	return []NemesisKind{KindDelayLink, KindDropLink, KindDelayLink,
		KindIsolateNode, KindStopRestart}
}

// lifecycle reports whether the kind occupies the exclusive lane.
func (k NemesisKind) lifecycle() bool {
	return k == KindStopRestart || k == KindAddRemove || k == KindCrashAll
}

// Action is one scheduled nemesis: inject at At, heal at Heal (offsets
// from the run start).
type Action struct {
	At   time.Duration `json:"at"`
	Heal time.Duration `json:"heal"`
	Kind NemesisKind   `json:"kind"`
	// From/To name the faulted link direction (link kinds).
	From uint8 `json:"from,omitempty"`
	To   uint8 `json:"to,omitempty"`
	// Node is the target replica (isolate-node, stop-restart) or the id
	// the membership grows to (add-remove).
	Node int `json:"node,omitempty"`
	// Prob is the drop probability (drop-link).
	Prob float64 `json:"prob,omitempty"`
	// Delay is the added latency (delay-link).
	Delay time.Duration `json:"delay,omitempty"`
}

func (a Action) String() string {
	switch a.Kind {
	case KindDropLink:
		return fmt.Sprintf("%v-%v %s %d->%d p=%.2f", a.At, a.Heal, a.Kind, a.From, a.To, a.Prob)
	case KindDelayLink:
		return fmt.Sprintf("%v-%v %s %d->%d +%v", a.At, a.Heal, a.Kind, a.From, a.To, a.Delay)
	case KindCutLink:
		return fmt.Sprintf("%v-%v %s %d->%d", a.At, a.Heal, a.Kind, a.From, a.To)
	case KindCrashAll:
		return fmt.Sprintf("%v-%v %s all nodes", a.At, a.Heal, a.Kind)
	default:
		return fmt.Sprintf("%v-%v %s node %d", a.At, a.Heal, a.Kind, a.Node)
	}
}

// Schedule is a generated nemesis timeline, sorted by At.
type Schedule struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration"`
	Actions  []Action      `json:"actions"`
}

// Config parameterises Generate.
type Config struct {
	// Seed fully determines the schedule (and the workload's value
	// choices).
	Seed int64
	// Duration is the nemesis window; every fault heals inside it.
	Duration time.Duration
	// Nodes is the boot membership size (faults target ids < Nodes).
	Nodes int
	// Kinds restricts the nemesis mix; nil means AllKinds().
	Kinds []NemesisKind
	// MaxConcurrent bounds overlapping link faults (default 2).
	MaxConcurrent int
	// MaxNodes caps add-remove ids (default llc.MaxNodes).
	MaxNodes int
	// RejoinTimeout bounds the blocking waits lifecycle heals perform
	// (default 30s). Tests pinning expected failures shorten it so a
	// sweep that can never complete fails the run quickly.
	RejoinTimeout time.Duration
	// OnlineAudit rides an internal/audit sampling auditor on every
	// recorded workload session for the whole run. The run then fails if
	// the live auditor reports a violation the offline verifier does not
	// confirm, or if the auditor saw no traffic. Purely a runner knob —
	// the generated timeline does not depend on it.
	OnlineAudit bool
	// BurstSessions adds that many unrecorded sessions issuing high-fanout
	// relaxed-write batches (the wire-batching schedule's load shape: they
	// keep the transport's flush deadlines hot so the nemeses hit full
	// rings rather than idle lingers). 0 disables them. Purely a workload
	// knob — the generated timeline does not depend on it.
	BurstSessions int
}

func (c *Config) defaults() {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxNodes <= 0 || c.MaxNodes > llc.MaxNodes {
		c.MaxNodes = llc.MaxNodes
	}
	if c.RejoinTimeout <= 0 {
		c.RejoinTimeout = 30 * time.Second
	}
}

// Generate builds the deterministic schedule for cfg. It never touches
// wall clocks or global randomness: same Config in, same Schedule out.
func Generate(cfg Config) Schedule {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sched := Schedule{Seed: cfg.Seed, Duration: cfg.Duration}

	// All heals land before the settle margin so verification starts from
	// a healed cluster.
	end := cfg.Duration - cfg.Duration/6
	// Fault durations scale with the window, clamped to stay interesting
	// on short smokes and bounded on long soaks.
	base := cfg.Duration / 12
	clampDur := func(d time.Duration) time.Duration {
		const lo, hi = 80 * time.Millisecond, 1200 * time.Millisecond
		if d < lo {
			return lo
		}
		if d > hi {
			return hi
		}
		return d
	}
	gap := func() time.Duration {
		return 20*time.Millisecond + time.Duration(rng.Int63n(int64(130*time.Millisecond)))
	}

	cursor := gap()            // next candidate start
	var lastHeal time.Duration // latest heal scheduled so far (any lane)
	var linkHeals []time.Duration
	var isolateHeal time.Duration
	nextAddID := cfg.Nodes

	pickLink := func() (uint8, uint8) {
		from := uint8(rng.Intn(cfg.Nodes))
		to := uint8(rng.Intn(cfg.Nodes - 1))
		if to >= from {
			to++
		}
		return from, to
	}

	for i := 0; ; i++ {
		kind := cfg.Kinds[i%len(cfg.Kinds)] // round 1..k: one of each
		if i >= len(cfg.Kinds) {
			kind = cfg.Kinds[rng.Intn(len(cfg.Kinds))]
		}
		dur := clampDur(time.Duration(float64(base) * (0.5 + rng.Float64())))
		a := Action{Kind: kind}
		start := cursor + gap()
		switch {
		case kind.lifecycle():
			// Exclusive lane: start only after everything else healed.
			if start < lastHeal {
				start = lastHeal + gap()
			}
			if kind == KindAddRemove && nextAddID >= cfg.MaxNodes {
				// Id space exhausted (ids are never reused); crash a
				// replica instead so the slot still exercises lifecycle.
				kind, a.Kind = KindStopRestart, KindStopRestart
			}
			switch kind {
			case KindAddRemove:
				a.Node = nextAddID
				nextAddID++
				// Join sweeps need room: give lifecycle actions the
				// doubled duration.
				dur = clampDur(2 * dur)
			case KindCrashAll:
				// Targets every node; a.Node stays zero. The heal restarts
				// the whole cluster and waits for every sweep, so it gets
				// the doubled duration like the other lifecycle kinds.
				dur = clampDur(2 * dur)
			default:
				a.Node = rng.Intn(cfg.Nodes)
				dur = clampDur(2 * dur)
			}
			a.At, a.Heal = start, start+dur
			// Nothing may overlap a lifecycle action.
			cursor = a.Heal
		case kind == KindIsolateNode:
			// One isolation at a time, never concurrent with other link
			// faults (two simultaneous partitions could disconnect a
			// majority).
			for _, h := range linkHeals {
				if h > start {
					start = h
				}
			}
			if isolateHeal > start {
				start = isolateHeal
			}
			a.Node = rng.Intn(cfg.Nodes)
			a.At, a.Heal = start, start+dur
			isolateHeal = a.Heal
			cursor = start
		default: // drop / delay / cut
			// Bounded overlap; never concurrent with an isolation.
			if isolateHeal > start {
				start = isolateHeal
			}
			for countAfter(linkHeals, start) >= cfg.MaxConcurrent {
				start = earliestAfter(linkHeals, start) + time.Millisecond
			}
			a.From, a.To = pickLink()
			switch kind {
			case KindDropLink:
				a.Prob = 0.3 + 0.5*rng.Float64()
			case KindDelayLink:
				a.Delay = 5*time.Millisecond + time.Duration(rng.Int63n(int64(40*time.Millisecond)))
			}
			a.At, a.Heal = start, start+dur
			linkHeals = append(linkHeals, a.Heal)
			cursor = start
		}
		if a.Heal > end {
			if i < len(cfg.Kinds) {
				// The window is too short for one of each kind: squeeze
				// the mandatory round in anyway by truncating the fault.
				a.Heal = end
				if a.At >= a.Heal {
					break
				}
			} else {
				break
			}
		}
		if a.Heal > lastHeal {
			lastHeal = a.Heal
		}
		sched.Actions = append(sched.Actions, a)
	}
	sortActions(sched.Actions)
	return sched
}

func countAfter(heals []time.Duration, t time.Duration) int {
	n := 0
	for _, h := range heals {
		if h > t {
			n++
		}
	}
	return n
}

func earliestAfter(heals []time.Duration, t time.Duration) time.Duration {
	best := time.Duration(-1)
	for _, h := range heals {
		if h > t && (best < 0 || h < best) {
			best = h
		}
	}
	if best < 0 {
		return t
	}
	return best
}

func sortActions(as []Action) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].At < as[j-1].At; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}
