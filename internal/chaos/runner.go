package chaos

import (
	"fmt"
	"sort"
	"time"

	"kite/internal/audit"
	"kite/internal/history"
	"kite/internal/transport"
	"kite/internal/verifier"
)

// OpStats tallies recorded operations by outcome.
type OpStats struct {
	Total int `json:"total"`
	OK    int `json:"ok"`
	Maybe int `json:"maybe"`
	Never int `json:"never"`
}

// Report is a chaos run's JSON-serialisable result.
type Report struct {
	Seed     int64         `json:"seed"`
	Backend  string        `json:"backend"`
	Duration time.Duration `json:"duration"`
	// Timeline is the full generated schedule — deterministic in Seed, so
	// re-running with the same flags replays it exactly.
	Timeline []Action `json:"timeline"`
	// Injected counts executed nemeses by kind; Errors collects lifecycle
	// failures (a restart refused mid-run, a join that never completed).
	Injected map[NemesisKind]int `json:"injected"`
	Errors   []string            `json:"errors,omitempty"`
	Ops      OpStats             `json:"ops"`
	// BurstOps counts completed unrecorded burst writes (Config.
	// BurstSessions — the wire-batching schedule's load shape). Zero when
	// no burst sessions were requested.
	BurstOps uint64 `json:"burst_ops,omitempty"`
	// Faults is the per-link evidence ledger: a run that drops and delays
	// nothing proves nothing, so Passed requires it to be non-trivial
	// whenever link nemeses were scheduled.
	Faults   []transport.LinkStat `json:"faults"`
	Verifier *verifier.Report     `json:"verifier"`
	// Audit is the standing online auditor's coverage and verdicts
	// (Config.OnlineAudit). Soundness gate: every violation here must be
	// confirmed by Verifier on the full recorded history, or the run fails.
	Audit  *audit.Summary `json:"audit,omitempty"`
	Passed bool           `json:"passed"`
}

// Run generates the schedule for cfg, executes it against the target while
// the recording workload runs, heals everything, and verifies the recorded
// history. The returned history accompanies the report so failures can be
// re-verified (or re-examined) offline.
func Run(tg Target, cfg Config) (*Report, *history.Recorded) {
	cfg.Nodes = tg.Nodes()
	cfg.defaults()
	sched := Generate(cfg)
	rep := &Report{
		Seed: cfg.Seed, Backend: tg.Backend(), Duration: cfg.Duration,
		Timeline: sched.Actions, Injected: make(map[NemesisKind]int),
	}

	log := history.New()
	var aud *audit.Auditor
	if cfg.OnlineAudit {
		aud = audit.New(audit.Config{})
	}
	wl := startWorkload(tg, log, aud, 2, cfg.BurstSessions)
	faults := tg.Faults()
	start := time.Now()

	// One executor goroutine walks the inject/heal events in time order;
	// lifecycle heals block it (they are exclusive in the schedule, so
	// nothing else was due anyway).
	type event struct {
		at   time.Duration
		heal bool
		a    *Action
	}
	var evs []event
	for i := range sched.Actions {
		a := &sched.Actions[i]
		evs = append(evs, event{a.At, false, a}, event{a.Heal, true, a})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	addedID := -1
	for _, ev := range evs {
		if d := ev.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		a := ev.a
		switch a.Kind {
		case KindDropLink:
			if ev.heal {
				faults.DropLink(a.From, a.To, 0)
			} else {
				faults.DropLink(a.From, a.To, a.Prob)
			}
		case KindDelayLink:
			if ev.heal {
				faults.DelayLink(a.From, a.To, 0)
			} else {
				faults.DelayLink(a.From, a.To, a.Delay)
			}
		case KindCutLink:
			faults.CutLink(a.From, a.To, !ev.heal)
		case KindIsolateNode:
			faults.IsolateNode(uint8(a.Node), !ev.heal)
		case KindStopRestart:
			if !ev.heal {
				tg.StopNode(a.Node)
				break
			}
			if err := tg.RestartNode(a.Node); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("restart node %d: %v", a.Node, err))
				break
			}
			if !tg.AwaitRejoin(a.Node, cfg.RejoinTimeout) {
				rep.Errors = append(rep.Errors, fmt.Sprintf("node %d never finished its catch-up sweep", a.Node))
			}
		case KindCrashAll:
			if !ev.heal {
				// SIGKILL the whole boot membership at once: no survivor
				// holds any key, so recovery is possible only from disk.
				for n := 0; n < tg.Nodes(); n++ {
					tg.CrashNode(n)
				}
				break
			}
			// Restart everything BEFORE awaiting anyone: during a
			// whole-cluster recovery every node is mid-rejoin, and the
			// sweeps complete only because WAL-restored nodes answer each
			// other's catch-up pulls. On a memory-only target no node can
			// vouch for anything and every wait below times out — which is
			// exactly the failure the durability pinning test asserts.
			for n := 0; n < tg.Nodes(); n++ {
				if err := tg.RestartNode(n); err != nil {
					rep.Errors = append(rep.Errors, fmt.Sprintf("crash-all: restart node %d: %v", n, err))
				}
			}
			for n := 0; n < tg.Nodes(); n++ {
				if !tg.AwaitRejoin(n, cfg.RejoinTimeout) {
					rep.Errors = append(rep.Errors, fmt.Sprintf("crash-all: node %d never finished its catch-up sweep", n))
				}
			}
		case KindAddRemove:
			if !ev.heal {
				id, err := tg.AddNode()
				if err != nil {
					rep.Errors = append(rep.Errors, fmt.Sprintf("add node: %v", err))
					break
				}
				if !tg.AwaitRejoin(id, cfg.RejoinTimeout) {
					rep.Errors = append(rep.Errors, fmt.Sprintf("added node %d never finished its catch-up sweep", id))
				}
				addedID = id
				break
			}
			if addedID < 0 {
				break // the add failed; nothing to remove
			}
			if err := tg.RemoveNode(addedID); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("remove node %d: %v", addedID, err))
			}
			addedID = -1
		}
		if ev.heal {
			rep.Injected[a.Kind]++
		}
	}

	// Heal the world, let the workload settle on the clean cluster, then
	// quiesce and judge.
	faults.Clear()
	if d := cfg.Duration - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	time.Sleep(1500 * time.Millisecond)
	wl.halt()
	rep.BurstOps = wl.burstOps.Load()

	rec := log.Snapshot()
	for i := range rec.Events {
		rep.Ops.Total++
		switch rec.Events[i].Outcome {
		case history.OutcomeOK:
			rep.Ops.OK++
		case history.OutcomeMaybe:
			rep.Ops.Maybe++
		default:
			rep.Ops.Never++
		}
	}
	rep.Faults = faults.LinkStats()
	rep.Verifier = verifier.Check(rec)
	if aud != nil {
		aud.Close()
		rep.Audit = aud.Summary()
	}

	rep.Passed = rep.Verifier.OK() && len(rep.Errors) == 0 && rep.Ops.OK > 0

	// Online-audit soundness gate: the live auditor judges a sampled stream
	// under watermarks and eviction, so everything it reports must be
	// confirmed (by kind and key) by the offline verifier over the full
	// recorded history — an unconfirmed verdict means the audit invented a
	// violation. A run that audited nothing proves nothing and fails too.
	if rep.Audit != nil {
		confirmed := make(map[string]bool)
		for _, v := range rep.Verifier.Violations {
			confirmed[fmt.Sprintf("%s/%d", v.Kind, v.Key)] = true
		}
		for _, v := range rep.Audit.Report.Violations {
			if !confirmed[fmt.Sprintf("%s/%d", v.Kind, v.Key)] {
				rep.Passed = false
				rep.Errors = append(rep.Errors, fmt.Sprintf(
					"online audit reported [%s] key %d unconfirmed by the offline verifier: %s", v.Kind, v.Key, v.Msg))
			}
		}
		if rep.Audit.Stats.SampledOps == 0 {
			rep.Passed = false
			rep.Errors = append(rep.Errors, "online audit sampled no operations")
		}
	}
	kinds := cfg.Kinds
	linkEvidence := false
	needEvidence := false
	for _, ls := range rep.Faults {
		if ls.Dropped+ls.Delayed > 0 {
			linkEvidence = true
		}
	}
	for _, k := range kinds {
		if rep.Injected[k] == 0 {
			rep.Passed = false
			rep.Errors = append(rep.Errors, fmt.Sprintf("nemesis kind %s was never injected", k))
		}
		switch k {
		case KindDropLink, KindDelayLink, KindCutLink, KindIsolateNode:
			needEvidence = true
		}
	}
	if needEvidence && !linkEvidence {
		rep.Passed = false
		rep.Errors = append(rep.Errors, "link nemeses were scheduled but the fault ledger shows no dropped or delayed traffic")
	}
	return rep, rec
}
