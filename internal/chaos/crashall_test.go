package chaos

import (
	"testing"
	"time"

	"kite"
)

// TestCrashAllWAL is the durability acceptance run: a seeded crash-all
// schedule against a WAL-enabled cluster. Every node is SIGKILLed at once
// — no survivor holds any key — and the cluster must come back from its
// own disks with every acknowledged write intact (the verifier checks the
// recorded history against the replayed stores).
func TestCrashAllWAL(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{
		Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12,
		WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, rec := Run(NewInprocTarget(c), Config{
		Seed: 7, Duration: 6 * time.Second,
		Kinds: []NemesisKind{KindCrashAll},
	})
	if !rep.Passed {
		t.Fatalf("crash-all over WAL cluster failed: errors=%v verifier:\n%s",
			rep.Errors, rep.Verifier.String())
	}
	if rep.Injected[KindCrashAll] == 0 {
		t.Fatalf("crash-all never injected; injected=%v", rep.Injected)
	}
	if rec == nil || rep.Ops.OK == 0 {
		t.Fatalf("no completed operations recorded: %+v", rep.Ops)
	}
}

// TestCrashAllMemoryOnlyFails pins that the acceptance above is not
// vacuous: the same nemesis against a memory-only cluster must FAIL —
// with every replica's state gone no node can vouch for anything, the
// rejoin sweeps can never complete, and the run reports it. If this test
// ever starts passing, crash-all stopped certifying durability.
func TestCrashAllMemoryOnlyFails(t *testing.T) {
	c, err := kite.NewCluster(kite.Options{Nodes: 3, Workers: 1, SessionsPerWorker: 4, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, _ := Run(NewInprocTarget(c), Config{
		Seed: 7, Duration: 3 * time.Second,
		Kinds: []NemesisKind{KindCrashAll},
		// Short: these sweeps are expected to hang forever, and each
		// crash-all heal waits for all of them.
		RejoinTimeout: time.Second,
	})
	if rep.Passed {
		t.Fatal("crash-all passed on a memory-only cluster; it no longer certifies durability")
	}
	if len(rep.Errors) == 0 {
		t.Fatalf("memory-only crash-all failed without recording why: %+v", rep)
	}
}
