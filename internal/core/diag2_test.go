package core

import (
	"fmt"
	"sync"
	"testing"

	"kite/internal/llc"
	"kite/internal/paxos"
)

// TestDiagReportedVsCommitted cross-references every FAA's reported old
// value against the committed chain recorded by the commit hook, printing
// the lifecycle trace of any op whose report disagrees with the slot its
// value actually committed at.
func TestDiagReportedVsCommitted(t *testing.T) {
	var mu sync.Mutex
	slotOrigin := map[uint64]uint64{} // slot -> origin (first seen)
	slotVal := map[uint64]uint64{}
	traces := map[uint64][]string{}
	paxos.DebugCommitHook = func(store uintptr, key, slot uint64, ballot llc.Stamp, origin uint64, val []byte) {
		if key != 99 {
			return
		}
		mu.Lock()
		if _, ok := slotOrigin[slot]; !ok {
			slotOrigin[slot] = origin
			slotVal[slot] = DecodeUint64(val)
		}
		mu.Unlock()
	}
	debugRMWTrace = func(opID uint64, event string, detail uint64) {
		mu.Lock()
		traces[opID] = append(traces[opID], fmt.Sprintf("%s(%x)", event, detail))
		mu.Unlock()
	}
	defer func() { paxos.DebugCommitHook = nil; debugRMWTrace = nil }()

	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perSession = 50
	var wg sync.WaitGroup
	sessions := []*Session{
		c.Node(0).Session(0), c.Node(1).Session(0), c.Node(2).Session(0),
		c.Node(0).Session(1), c.Node(1).Session(1),
	}
	reported := make([]map[int]uint64, len(sessions)) // session -> iter -> old
	for si, s := range sessions {
		reported[si] = map[int]uint64{}
		wg.Add(1)
		go func(si int, s *Session) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				old := faa(t, s, 99, 1)
				mu.Lock()
				reported[si][i] = old
				mu.Unlock()
			}
		}(si, s)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// Chain check with origin traces for offenders.
	maxSlot := uint64(0)
	for s := range slotVal {
		if s > maxSlot {
			maxSlot = s
		}
	}
	chainBad := 0
	for s := uint64(0); s <= maxSlot && chainBad < 3; s++ {
		if v, ok := slotVal[s]; ok && v != s+1 {
			chainBad++
			o := slotOrigin[s]
			t.Errorf("CHAIN slot %d val %d want %d origin %x trace %v | slot-1: origin %x val %d | slot+1 val %d",
				s, v, s+1, o, traces[o], slotOrigin[s-1], slotVal[s-1], slotVal[s+1])
		}
	}
	// Build origin -> true slot.
	originSlot := map[uint64]uint64{}
	for slot, origin := range slotOrigin {
		originSlot[origin] = slot
	}
	// Sessions' opIDs: node<<56 | sessIdx<<32 | seq(1-based).
	ids := []struct{ node, sess uint64 }{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}}
	bad := 0
	for si, id := range ids {
		for i := 0; i < perSession; i++ {
			opID := id.node<<56 | id.sess<<32 | uint64(i+1)
			slot, ok := originSlot[opID]
			if !ok {
				t.Errorf("op %x (sess %d iter %d) never committed; trace: %v",
					opID, si, i, traces[opID])
				bad++
				continue
			}
			if got := reported[si][i]; got != slot {
				t.Errorf("op %x (sess %d iter %d): reported old %d but committed at slot %d; trace: %v",
					opID, si, i, got, slot, traces[opID])
				bad++
			}
			if bad > 4 {
				return
			}
		}
	}
}
