package core

import (
	"time"

	"kite/internal/catchup"
	"kite/internal/membership"
)

// Config parameterises a Kite deployment. The zero value is not usable; use
// DefaultConfig or fill every field.
type Config struct {
	// Nodes is the replication degree (the paper targets 3-9; max 16).
	Nodes int
	// Workers is the number of worker goroutines per node.
	Workers int
	// SessionsPerWorker is how many client sessions each worker executes.
	SessionsPerWorker int
	// KVSCapacity sizes each node's store (keys).
	KVSCapacity int
	// ReleaseTimeout bounds how long a release gathers acks from all
	// replicas before publishing the DM-set and proceeding via the slow
	// path. Larger values favour staying on the fast path when replicas
	// are slow; smaller values favour availability (§4.2, §8.4).
	ReleaseTimeout time.Duration
	// RetryInterval is the retransmission period for quorum rounds (ABD,
	// Paxos, slow-release) and unacked ES writes on a lossy network.
	RetryInterval time.Duration
	// MailboxDepth bounds each worker's transport receive queue.
	MailboxDepth int
	// MaxPendingWrites throttles a session once this many of its relaxed
	// writes await full acknowledgement (flow control, not correctness).
	MaxPendingWrites int
	// IdlePoll is how long an idle worker blocks before re-checking
	// deadlines.
	IdlePoll time.Duration
	// DisableFastPath forces every relaxed access through the slow path
	// (quorum rounds). Used by the ablation benchmarks to price the fast
	// path; never set in normal operation.
	DisableFastPath bool
	// DisableLocalAcquires forces every acquire through the ABD quorum
	// read, ignoring per-key valid bits (DESIGN.md "Local reads"). Used by
	// the latency figure to measure the ABD baseline in the same binary;
	// never set in normal operation. DisableFastPath implies it.
	DisableLocalAcquires bool
	// Incarnation distinguishes successive boots of the same node id. A
	// replica restarted after a crash MUST boot with a strictly higher
	// incarnation than any prior boot of its id: the value is folded into
	// every operation id the node issues (see Worker.nextOpID), and reusing
	// one would let a fresh session's op ids collide with pre-crash op ids
	// still held in peers' per-key exactly-once registries — a collision
	// makes the Paxos layer judge a brand-new RMW "already committed" and
	// complete it without executing it (a lost update). The deployment
	// layer tracks it (core.Cluster.RestartNode bumps it automatically;
	// kite-node exposes -incarnation); multi-process operators must persist
	// or monotonically derive it across restarts. Must be below 65535.
	Incarnation uint32
	// Rejoin marks this node as restarting into an existing deployment
	// with its state lost. It boots in catch-up mode: client requests are
	// buffered, read-type quorum traffic is dropped, and the node sweeps
	// its peers' key spaces (internal/catchup) until enough of them have
	// been covered to restore quorum intersection — only then does it serve.
	// Ignored for single-node deployments, which have nobody to sweep.
	Rejoin bool
	// CatchupChunk bounds how many key entries a peer packs into one
	// catch-up chunk (0 means catchup.DefaultChunk). Tests shrink it to
	// stretch the sweep; operators normally leave it alone.
	CatchupChunk int
	// Initial is the group configuration the node boots with. The zero
	// value derives the epoch-0 config from Nodes (members 0..Nodes-1);
	// replicas joining or rejoining a group that has reconfigured pass the
	// current config instead. The live configuration thereafter evolves by
	// committed reconfigurations (Node.ReconfigureAdd/ReconfigureRemove)
	// and by configs learned from peers — Initial is only the starting
	// point.
	Initial membership.Config

	// WALDir, when non-empty, enables the per-node write-ahead log
	// (internal/wal): every durable transition — ES/ABD value installs,
	// Paxos promises/accepts/commits, catch-up imports, config commits —
	// is logged, and on restart the node replays snapshot + log before
	// running its rejoin sweep, so a full-quorum crash no longer loses
	// acknowledged data or accepted-but-uncommitted Paxos rounds. Empty
	// (the default) keeps the memory-only fast path: no logging, no
	// replay, restart semantics exactly as before. One directory per
	// node; the deployment layer derives per-node subdirectories.
	WALDir string
	// FsyncInterval is the WAL group-commit deadline: appended records
	// are written eagerly but fsynced in batches at this cadence, so a
	// power loss can take back at most one interval of acknowledged
	// operations (a process kill loses only what the flusher had not
	// written — the page cache survives). Zero means
	// wal.DefaultFsyncInterval; negative selects synchronous mode, where
	// each worker fsyncs its iteration's appends before shipping acks
	// (the per-op-durability ablation — measured by `kite-bench -fig
	// durability`, not meant for production). Ignored without WALDir.
	FsyncInterval time.Duration
	// SnapshotEvery is how many WAL records are appended between store
	// snapshots; snapshots bound replay length and let old segments be
	// truncated. Zero means wal.DefaultSnapshotEvery; negative disables
	// snapshotting (testing only). Ignored without WALDir.
	SnapshotEvery int
}

// DefaultConfig returns the configuration used throughout the evaluation:
// a 5-replica deployment, matching the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:             5,
		Workers:           4,
		SessionsPerWorker: 4,
		KVSCapacity:       1 << 16,
		ReleaseTimeout:    time.Millisecond,
		RetryInterval:     2 * time.Millisecond,
		MailboxDepth:      4096,
		MaxPendingWrites:  64,
		IdlePoll:          200 * time.Microsecond,
		CatchupChunk:      catchup.DefaultChunk,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.SessionsPerWorker == 0 {
		c.SessionsPerWorker = d.SessionsPerWorker
	}
	if c.KVSCapacity == 0 {
		c.KVSCapacity = d.KVSCapacity
	}
	if c.ReleaseTimeout == 0 {
		c.ReleaseTimeout = d.ReleaseTimeout
	}
	if c.RetryInterval == 0 {
		c.RetryInterval = d.RetryInterval
	}
	if c.MailboxDepth == 0 {
		c.MailboxDepth = d.MailboxDepth
	}
	if c.MaxPendingWrites == 0 {
		c.MaxPendingWrites = d.MaxPendingWrites
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = d.IdlePoll
	}
	if c.CatchupChunk == 0 {
		c.CatchupChunk = d.CatchupChunk
	}
	return c
}
