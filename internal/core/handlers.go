package core

import (
	"kite/internal/abd"
	"kite/internal/es"
	"kite/internal/membership"
	"kite/internal/paxos"
	"kite/internal/proto"
)

// handleRequest runs the replica-side protocol handler for m against this
// node's store and barrier state, composing the Kite-specific delinquency
// piggyback (§4.2) onto the plain ABD/Paxos replies:
//
//   - acquire reads and Paxos proposes carry acquire semantics, so their
//     replies tell the requesting machine whether it is deemed delinquent
//     (moving the bit into the transient T state, tagged by the op id);
//   - slow-path relaxed reads deliberately do not (§4.3): they must not
//     consume the delinquency notification owed to a real acquire.
func (w *Worker) handleRequest(m *proto.Message) (rep proto.Message, ok bool) {
	nd := w.node
	if nd.rejoining.Load() && !servableWhileRejoining(m.Kind) {
		// Catching up after a restart: only write application is sound; see
		// servableWhileRejoining (internal/core/catchup.go) for the argument.
		return rep, false
	}
	switch m.Kind {
	case proto.KindESWrite:
		return es.HandleWrite(nd.Store, m, nd.ID), true

	case proto.KindESValidate:
		es.HandleValidate(nd.Store, m)
		return rep, false

	case proto.KindReadTS:
		// Round 1 of an ABD write: a release to this key is in flight, so
		// proactively drop it from the local-acquire fast path — the ABD
		// write's install will clear the bit anyway, but doing it at round 1
		// shrinks the window in which another replica's stale-but-valid copy
		// could miss the release earlier than necessary. (Correctness never
		// depends on this: validated values are relaxed writes, which no
		// synchronisation edge reads.)
		nd.Store.Invalidate(m.Key)
		return abd.HandleReadTS(nd.Store, m, nd.ID, proto.KindReadTSReply), true

	case proto.KindSlowWriteTS:
		return abd.HandleReadTS(nd.Store, m, nd.ID, proto.KindSlowWriteTSR), true

	case proto.KindABDWrite:
		return abd.HandleWrite(nd.Store, m, nd.ID), true

	case proto.KindAcqRead:
		rep = abd.HandleRead(nd.Store, m, nd.ID, w.scratch[:])
		if nd.Delinq.OnAcquire(m.From, m.OpID) {
			rep.Flags |= proto.FlagDelinquent
		}
		return rep, true

	case proto.KindSlowRead:
		return abd.HandleRead(nd.Store, m, nd.ID, w.scratch[:]), true

	case proto.KindSlowRelease:
		nd.Delinq.OnSlowRelease(m.Bits)
		return m.Reply(proto.KindSlowReleaseAck, nd.ID), true

	case proto.KindResetBit:
		nd.Delinq.OnResetBit(m.From, m.OpID)
		return rep, false

	case proto.KindPropose:
		// An RMW is in flight on this key; same proactive invalidation as
		// KindReadTS (the commit's install clears the bit regardless).
		nd.Store.Invalidate(m.Key)
		rep = paxos.HandlePropose(nd.Store, m, nd.ID, w.scratch[:])
		if nd.Delinq.OnAcquire(m.From, m.OpID) {
			rep.Flags |= proto.FlagDelinquent
		}
		return rep, true

	case proto.KindAccept:
		return paxos.HandleAccept(nd.Store, m, nd.ID, w.scratch[:]), true

	case proto.KindCommit:
		rep = paxos.HandleCommit(nd.Store, m, nd.ID)
		if m.Key == membership.ConfigKey {
			// A committed reconfiguration takes effect the moment its commit
			// reaches this replica — the usual install path.
			nd.maybeInstallEncoded(m.Value)
		}
		return rep, true

	case proto.KindPaxosLearn:
		paxos.HandleLearn(nd.Store, m)
		if m.Key == membership.ConfigKey {
			nd.maybeInstallEncoded(m.Value)
		}
		return rep, false

	case proto.KindPaxosQuery:
		return paxos.HandleQuery(nd.Store, m, nd.ID, w.scratch[:]), true
	}
	return rep, false
}
