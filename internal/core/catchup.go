package core

import (
	"time"

	"kite/internal/catchup"
	"kite/internal/proto"
)

// catchupOpID is the reserved, node-unique operation id of the rejoin
// sweep. The session tag (high 32 bits) uses 0xffffff — incarnation 0xffff
// with session index 0xff — which no real session ever occupies (NewNode
// rejects incarnations >= 0xffff), so the id cannot collide with session
// ops.
func catchupOpID(node uint8) uint64 {
	return uint64(node)<<56 | uint64(0xffffff)<<32 | 1
}

// startCatchup registers the sweep driver on worker 0 and sends the first
// pull to every peer. Called once, at worker-loop entry, on a node that
// booted with Config.Rejoin.
func (w *Worker) startCatchup() {
	nd := w.node
	op := &catchupOp{
		id:      catchupOpID(nd.ID),
		sweep:   catchup.NewSweepMask(nd.ID, nd.full()),
		retryAt: w.now.Add(nd.cfg.RetryInterval),
	}
	if op.sweep.Done() {
		// Degenerate deployment (nothing to sweep); serve immediately.
		nd.finishCatchup()
		return
	}
	w.register(op.id, op)
	for _, p := range op.sweep.Pending() {
		w.stage(p, catchup.PullMsg(nd.ID, w.id, op.id, op.sweep.Cursor(p)))
	}
}

// rebuild restarts the sweep against the currently installed member set —
// called when a configuration lands mid-sweep (the group reconfigured while
// this replica was catching up). Cursor state is discarded: chunks are
// idempotent and re-pulling is merely conservative, while continuing to
// count a removed peer toward coverage would not be.
func (op *catchupOp) rebuild(w *Worker) {
	nd := w.node
	op.sweep = catchup.NewSweepMask(nd.ID, nd.full())
	if op.sweep.Done() {
		w.unregister(op.id)
		nd.finishCatchup()
		return
	}
	op.retryAt = w.now.Add(nd.cfg.RetryInterval)
	for _, p := range op.sweep.Pending() {
		w.stage(p, catchup.PullMsg(nd.ID, w.id, op.id, op.sweep.Cursor(p)))
	}
}

// catchupOp drives the rejoin sweep: one cursor walk per peer, items merged
// as they arrive, the node released to serve once enough peers are covered.
// It is a pending op like any other — replies route to onMessage, the
// deadline scan retransmits stalled pulls — except that it belongs to the
// node rather than to a session.
type catchupOp struct {
	id      uint64
	sweep   *catchup.Sweep
	retryAt time.Time
}

func (op *catchupOp) nextDeadline() time.Time { return op.retryAt }

func (op *catchupOp) onMessage(w *Worker, m *proto.Message) {
	nd := w.node
	switch m.Kind {
	case proto.KindCatchupItem:
		nd.catchupPulled.Add(1)
		if catchup.ApplyItem(nd.Store, m) {
			nd.catchupApplied.Add(1)
		}
	case proto.KindCatchupEnd:
		// The peer's delinquency mask rides on every End frame: suspicion
		// published while this node was down must survive its amnesia, or a
		// machine's acquire could miss the notification a slow-release owed
		// it (the quorum-intersection argument of Lemma 5.6 assumes no
		// replica forgets its bits).
		nd.Delinq.Merge(m.Bits)
		if !op.sweep.OnEnd(m.From, m.Origin, m.Slot, m.Flags&proto.FlagCatchupDone != 0) {
			return // duplicate or stale retransmission
		}
		if op.sweep.Done() {
			w.unregister(op.id)
			nd.finishCatchup()
			return
		}
		// Progress resets the stall timer: the deadline is a stall
		// detector, not a pacer, and must not re-pull chunks whose reply
		// is simply slower than RetryInterval (that would double the
		// sweep's traffic on any network with chunk RTT > RetryInterval).
		op.retryAt = w.now.Add(nd.cfg.RetryInterval)
		if !op.sweep.PeerDone(m.From) {
			w.stage(m.From, catchup.PullMsg(nd.ID, w.id, op.id, op.sweep.Cursor(m.From)))
		}
	}
}

// onDeadline re-pulls every unfinished peer at its current cursor. Chunks
// are idempotent (items merge last-writer-wins; End frames echo the request
// cursor), so blunt retransmission is safe, and a peer that was down or
// itself catching up is simply asked again.
func (op *catchupOp) onDeadline(w *Worker, now time.Time) {
	for _, p := range op.sweep.Pending() {
		w.stage(p, catchup.PullMsg(w.node.ID, w.id, op.id, op.sweep.Cursor(p)))
	}
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}

// handleCatchupPull answers a rejoining peer's chunk request: a run of
// item messages plus the End frame carrying the continuation cursor and
// this node's delinquency mask. A memory-only node that is itself
// catching up must not answer — serving its partial store to another
// joiner would let two restarted replicas certify each other's amnesia —
// so it drops the pull and the joiner retries (against it and everyone
// else) until enough healthy peers respond. A WAL-restored rejoiner is
// different: its replayed store is complete up to its last durable
// record, the same guarantee a running replica's store gives at any
// instant, so it answers pulls even mid-sweep. That asymmetry is what
// lets a whole cluster restart from disk (the crash-all nemesis): every
// node is rejoining, but each can vouch for its own durable prefix, and
// the sweeps reconcile the per-node tails.
func (w *Worker) handleCatchupPull(m *proto.Message) {
	nd := w.node
	if (nd.rejoining.Load() && !nd.walRestored) || m.From == nd.ID {
		return
	}
	msgs, next, done := catchup.AppendChunk(
		nd.Store, m.Slot, nd.cfg.CatchupChunk, nd.ID, m.Worker, m.OpID, nil)
	for i := range msgs {
		w.stage(m.From, msgs[i])
	}
	w.stage(m.From, catchup.EndMsg(m, nd.ID, next, done, nd.Delinq.Mask()))
}

// servableWhileRejoining lists the replica-side message kinds a
// catching-up node still processes. Applying and acknowledging writes is
// sound — the ack truthfully means "applied locally", the node serves no
// local reads until the sweep completes, and the applied value survives it
// (merges are last-writer-wins) — and keeping the ES ack path alive is
// what lets a writer's ledger heal through a restart instead of pinning
// its flush fence on a DM-set forever. Read-type quorum rounds (acquire
// reads, LLC reads, Paxos proposes/accepts) are dropped: the node's
// forgotten state must not count toward anyone's quorum intersection, so
// peers assemble quorums from the caught-up majority and see this replica
// merely as slow.
func servableWhileRejoining(k proto.Kind) bool {
	switch k {
	case proto.KindESWrite, proto.KindABDWrite, proto.KindCommit,
		proto.KindPaxosLearn, proto.KindSlowRelease, proto.KindResetBit:
		return true
	}
	return false
}
