package core

import (
	"kite/internal/es"
	"kite/internal/kvs"
	"kite/internal/membership"
)

// Session is the unit of ordering in Kite: requests submitted to a session
// appear to take effect in submission order (session order, §2.1). Each
// session is owned by exactly one worker, so its state needs no locks; the
// only cross-goroutine handoff is the submit channel.
type Session struct {
	node *Node
	w    *Worker
	idx  int

	// tracker ledgers this session's relaxed writes awaiting full
	// acknowledgement — the release barrier's input.
	tracker *es.Tracker

	// queue holds admitted-but-unissued requests in session order.
	queue []*Request
	// head is the blocking operation in flight (nil if none). Relaxed
	// writes do not block; releases/acquires/RMWs and slow-path relaxed
	// accesses do.
	head blockingOp
	// throttled marks the session as waiting for write acks (flow
	// control when tracker.Len() exceeds MaxPendingWrites).
	throttled bool
	inRunq    bool
	opSeq     uint64
}

// blockingOp is the in-flight head operation of a session. Ops that wait on
// the release barrier additionally react to tracker updates.
type blockingOp interface {
	pendingOp
	onTrackerUpdate(w *Worker)
}

func newSession(nd *Node, w *Worker, idx int) *Session {
	return &Session{node: nd, w: w, idx: idx, tracker: es.NewTrackerMask(nd.full())}
}

// Index returns the session's node-local index.
func (s *Session) Index() int { return s.idx }

// Node returns the owning node's id.
func (s *Session) Node() uint8 { return s.node.ID }

// Submit hands a request to the session's worker. It is the only Session
// method safe to call from outside the worker goroutine; it may block when
// the worker's admission queue is full (client backpressure). Requests on
// one session must be submitted from one goroutine at a time — a session is
// a single logical thread of control.
func (s *Session) Submit(r *Request) {
	r.sess = s
	// Validate payload sizes at the submission boundary: every backend
	// rejects oversized values with the same ErrValueTooLong instead of the
	// store silently truncating them mid-protocol.
	if len(r.Val) > kvs.MaxValueLen || len(r.Expected) > kvs.MaxValueLen {
		s.complete(r, ErrValueTooLong)
		return
	}
	if r.Key == membership.ConfigKey && s != s.node.admin {
		// The config key's value IS the group's membership; only the
		// node's own reconfiguration CAS may touch it.
		s.complete(r, ErrReservedKey)
		return
	}
	if s.node.stopped.Load() || s.node.removed.Load() {
		s.complete(r, ErrStopped)
		return
	}
	s.w.reqCh <- r
	// Close the submit/stop race: if the node stopped between the check
	// above and the send, the workers may already have drained reqCh and
	// exited, leaving r (and any other late submissions) orphaned in the
	// buffer with Done callbacks that would never fire. Re-checking after
	// the send and draining on the submitter's goroutine guarantees every
	// request is completed exactly once — either by a live worker, or by
	// a late submitter's drain with ErrStopped (channel receive makes the
	// two mutually exclusive per request). First observed as a hang in
	// StopNode/RestartNode under full client load (the recovery study).
	if s.node.stopped.Load() || s.node.removed.Load() {
		s.w.drainSubmitted()
	}
}

// complete finishes a request: fills completion counters, fires Done and
// reschedules the session.
func (s *Session) complete(r *Request, err error) {
	r.Err = err
	s.node.completed[r.Code].Add(1)
	if r.Done != nil {
		r.Done(r)
	}
}

// unblock clears the head op after its completion and reschedules.
func (s *Session) unblock() {
	s.head = nil
	s.w.enqueueRun(s)
}
