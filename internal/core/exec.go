package core

import (
	"time"

	"kite/internal/abd"
	"kite/internal/kvs"
	"kite/internal/llc"
	"kite/internal/proto"
)

// issue starts executing request r at the head of session s. Fast-path
// relaxed ops complete inline; everything else installs a blocking head op.
func (w *Worker) issue(s *Session, r *Request) {
	switch r.Code {
	case OpRead:
		w.issueRead(s, r)
	case OpWrite:
		w.issueWrite(s, r)
	case OpRelease:
		w.issueRelease(s, r)
	case OpAcquire:
		w.issueAcquire(s, r)
	case OpFAA, OpCASWeak, OpCASStrong:
		w.issueRMW(s, r)
	case OpFlush:
		w.issueFlush(s, r)
	default:
		s.complete(r, ErrStopped)
	}
}

// --- Relaxed read ------------------------------------------------------------

// issueRead implements the relaxed read: in-epoch keys are served locally by
// Eventual Store (one seqlock view, no messages); out-of-epoch keys take the
// stripped slow path — a single quorum round that adopts the freshest value
// and brings the key back in-epoch (§4.2, §4.3).
func (w *Worker) issueRead(s *Session, r *Request) {
	nd := w.node
	epoch := nd.Epoch.Load()
	if !nd.cfg.DisableFastPath {
		val, _, keyEpoch, ok := nd.Store.View(r.Key, w.scratch[:])
		if (ok && keyEpoch == epoch) || (!ok && epoch == 0) {
			r.setOut(val)
			s.complete(r, nil)
			return
		}
	}
	nd.slowReads.Add(1)
	op := &slowReadOp{
		id: w.nextOpID(s), sess: s, req: r, epochSnap: epoch,
		rd:      abd.NewReadOp(r.Key, 0, nd.n(), false),
		retryAt: w.now.Add(nd.cfg.RetryInterval),
	}
	op.rd.OpID = op.id
	s.head = op
	w.register(op.id, op)
	w.broadcastAll(op.rd.ReadMsg(nd.ID, w.id, proto.KindSlowRead))
}

type slowReadOp struct {
	id        uint64
	sess      *Session
	req       *Request
	rd        *abd.ReadOp
	epochSnap uint64
	retryAt   time.Time
}

func (op *slowReadOp) request() *Request       { return op.req }
func (op *slowReadOp) nextDeadline() time.Time { return op.retryAt }
func (op *slowReadOp) onTrackerUpdate(*Worker) {}

func (op *slowReadOp) onMessage(w *Worker, m *proto.Message) {
	if m.Kind != proto.KindReadReply {
		return
	}
	if op.rd.OnReadReply(m) != abd.ReadComplete {
		return
	}
	op.finish(w)
}

// onConfigChange re-resolves the read round against a freshly installed
// member set (Worker.applyConfig).
func (op *slowReadOp) onConfigChange(w *Worker) {
	if op.rd.Refit(w.node.quorum(), w.node.full()) == abd.ReadComplete {
		op.finish(w)
	}
}

func (op *slowReadOp) finish(w *Worker) {
	// Adopt the quorum-fresh value and advance the key's epoch to the
	// machine epoch snapshotted when the access began — never beyond, so a
	// concurrent acquire's epoch bump still forces a re-fetch (§5.4).
	w.node.Store.ApplyAndAdvance(op.req.Key, op.rd.MaxVal, op.rd.MaxTS, op.epochSnap)
	op.req.setOut(op.rd.MaxVal)
	w.unregister(op.id)
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *slowReadOp) onDeadline(w *Worker, now time.Time) {
	w.retransmit(op.rd.ReadMsg(w.node.ID, w.id, proto.KindSlowRead), op.rd.Unseen(w.node.full()))
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}

// --- Relaxed write -----------------------------------------------------------

// issueWrite implements the relaxed write. Fast path: bump the key's LLC,
// apply locally, broadcast to the replicas, track acks in the session's
// ledger, and complete immediately — the release barrier, not the write,
// waits for acknowledgements. Slow path (out-of-epoch key): first read the
// key's LLC from a quorum so the new stamp dominates any write this node
// missed, then proceed as above; the write completes without waiting for
// value acks (§4.3).
func (w *Worker) issueWrite(s *Session, r *Request) {
	nd := w.node
	epoch := nd.Epoch.Load()
	if !nd.cfg.DisableFastPath {
		if st, ok := nd.Store.LocalWriteInEpoch(r.Key, r.Val, nd.ID, epoch); ok {
			w.trackWrite(s, r.Key, r.Val, st)
			s.complete(r, nil)
			return
		}
	}
	nd.slowWrites.Add(1)
	op := &slowWriteOp{
		id: w.nextOpID(s), sess: s, req: r, epochSnap: epoch,
		quorum:  nd.quorum(),
		retryAt: w.now.Add(nd.cfg.RetryInterval),
	}
	op.vlen = copy(op.valBuf[:], r.Val)
	s.head = op
	w.register(op.id, op)
	w.broadcastAll(proto.Message{
		Kind: proto.KindSlowWriteTS, From: nd.ID, Worker: w.id, Key: r.Key, OpID: op.id,
	})
}

// trackWrite registers an applied local write for all-ack gathering and
// broadcasts it to the replicas.
func (w *Worker) trackWrite(s *Session, key uint64, val []byte, st llc.Stamp) {
	if w.node.n() == 1 {
		// Sole replica: the local apply IS full replication. Tracking it
		// would ledger a write whose ack can never arrive, eventually
		// throttling the session against MaxPendingWrites forever.
		return
	}
	op := &esWriteOp{id: w.nextOpID(s), sess: s, retryAt: w.now.Add(w.node.cfg.RetryInterval)}
	n := copy(op.valBuf[:], val)
	op.msg = proto.Message{
		Kind: proto.KindESWrite, From: w.node.ID, Worker: w.id,
		Key: key, OpID: op.id, Stamp: st, Value: op.valBuf[:n],
	}
	s.tracker.Add(op.id, key, w.node.ID)
	w.register(op.id, op)
	w.broadcastRemote(op.msg)
}

// esWriteOp tracks one broadcast relaxed write until every replica acks it
// (or until a slow-release settles it).
type esWriteOp struct {
	id      uint64
	sess    *Session
	msg     proto.Message
	valBuf  [kvs.MaxValueLen]byte
	retryAt time.Time
}

func (op *esWriteOp) request() *Request       { return nil }
func (op *esWriteOp) nextDeadline() time.Time { return op.retryAt }

func (op *esWriteOp) onMessage(w *Worker, m *proto.Message) {
	if m.Kind != proto.KindESAck {
		return
	}
	if _, done := op.sess.tracker.Ack(op.id, m.From); done {
		// Every current member has acked: the write's (key, stamp) may be
		// validated cluster-wide for the local-acquire fast path.
		w.queueValidate(op.msg.Key, op.msg.Stamp)
		w.unregister(op.id)
		if op.sess.throttled {
			op.sess.throttled = false
			w.enqueueRun(op.sess)
		}
		if op.sess.head != nil {
			op.sess.head.onTrackerUpdate(w)
		}
	}
}

func (op *esWriteOp) onDeadline(w *Worker, now time.Time) {
	unacked := op.sess.tracker.Unacked(op.id)
	if unacked == 0 {
		w.unregister(op.id)
		return
	}
	w.retransmit(op.msg, unacked)
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}

// slowWriteOp is the out-of-epoch relaxed write: one LLC quorum round, then
// it morphs into a tracked ES write and completes.
type slowWriteOp struct {
	id        uint64
	sess      *Session
	req       *Request
	epochSnap uint64
	quorum    int
	seen      uint16
	maxTS     llc.Stamp
	valBuf    [kvs.MaxValueLen]byte
	vlen      int
	retryAt   time.Time
}

func (op *slowWriteOp) request() *Request       { return op.req }
func (op *slowWriteOp) nextDeadline() time.Time { return op.retryAt }
func (op *slowWriteOp) onTrackerUpdate(*Worker) {}

func (op *slowWriteOp) onMessage(w *Worker, m *proto.Message) {
	if m.Kind != proto.KindSlowWriteTSR {
		return
	}
	bit := uint16(1) << m.From
	if op.seen&bit != 0 {
		return
	}
	op.seen |= bit
	if op.maxTS.Less(m.Stamp) {
		op.maxTS = m.Stamp
	}
	if popcount16(op.seen) < op.quorum {
		return
	}
	op.complete(w)
}

// onConfigChange re-resolves the LLC quorum round against a freshly
// installed member set (Worker.applyConfig).
func (op *slowWriteOp) onConfigChange(w *Worker) {
	v := w.node.View()
	op.quorum = v.Quorum()
	op.seen &= v.Mask()
	if popcount16(op.seen) >= op.quorum {
		op.complete(w)
	}
}

// complete runs once the LLC quorum is in: stamp the write above
// everything missed, apply locally, restore the key in-epoch, and
// broadcast. The write is tracked for the next release but completes now,
// without acks (§4.3).
func (op *slowWriteOp) complete(w *Worker) {
	nd := w.node
	val := op.valBuf[:op.vlen]
	st := nd.Store.WriteAtLeast(op.req.Key, val, op.maxTS, nd.ID, op.epochSnap)

	if nd.n() == 1 {
		// Sole replica: fully replicated on apply, nothing to track (see
		// trackWrite).
		w.unregister(op.id)
	} else {
		esop := &esWriteOp{id: op.id, sess: op.sess, retryAt: w.now.Add(nd.cfg.RetryInterval)}
		n := copy(esop.valBuf[:], val)
		esop.msg = proto.Message{
			Kind: proto.KindESWrite, From: nd.ID, Worker: w.id,
			Key: op.req.Key, OpID: op.id, Stamp: st, Value: esop.valBuf[:n],
		}
		op.sess.tracker.Add(op.id, op.req.Key, nd.ID)
		w.register(op.id, esop) // replaces this op under the same id
		w.broadcastRemote(esop.msg)
	}

	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *slowWriteOp) onDeadline(w *Worker, now time.Time) {
	w.retransmit(proto.Message{
		Kind: proto.KindSlowWriteTS, From: w.node.ID, Worker: w.id,
		Key: op.req.Key, OpID: op.id,
	}, w.node.full()&^op.seen)
	op.retryAt = now.Add(w.node.cfg.RetryInterval)
}

// retransmit stages m for every remote node in mask (the local bit, if set,
// is ignored — the local replica always answered inline). The mask is
// intersected with the installed member set: an op that began under an
// older configuration must not keep retransmitting to a member that has
// since been removed.
func (w *Worker) retransmit(m proto.Message, mask uint16) {
	mask &= w.node.full()
	for dst := uint8(0); int(dst) < llc.MaxNodes; dst++ {
		if dst != w.node.ID && mask&(1<<dst) != 0 {
			w.stage(dst, m)
		}
	}
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
