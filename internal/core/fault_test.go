package core

import (
	"fmt"
	"testing"
	"time"
)

// TestSlowPathUnderPartition is the paper's central correctness scenario
// (§4.1, Figure 1, proof case 2): the consumer's replica misses the
// producer's relaxed writes (its inbound link from the producer is cut), so
// the producer's release must time out, publish the DM-set, and the
// consumer's acquire must discover the delinquency, bump its epoch, and
// serve the subsequent relaxed read through the slow path — returning the
// producer's value, never the stale local one.
func TestSlowPathUnderPartition(t *testing.T) {
	cfg := testConfig(5)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	cons := c.Node(4).Session(0)

	// Warm up the key on the consumer so it holds a stale local copy.
	write(t, prod, 100, "init")
	waitVisible(t, cons, 100, "init")

	// Cut producer -> consumer: ES writes (and everything else on that
	// link) vanish. Quorums still form through nodes 1-3.
	c.Faults().CutLink(0, 4, true)

	write(t, prod, 100, "payload")
	release(t, prod, 101, "go") // must take the slow-release path

	if got := acquire(t, cons, 101); got != "go" {
		t.Fatalf("acquire flag = %q (release lost?)", got)
	}
	// The acquire must have bumped the consumer's epoch...
	if got := c.Node(4).SlowPathStats().EpochBumps; got == 0 {
		t.Fatal("consumer never transitioned to the slow path")
	}
	// ...so this relaxed read goes through a quorum and sees the payload.
	if got := read(t, cons, 100); got != "payload" {
		t.Fatalf("read after acquire = %q, want payload (RC violation)", got)
	}
	if got := c.Node(4).SlowPathStats().SlowReads; got == 0 {
		t.Fatal("read was served locally despite the epoch bump")
	}
	if got := c.Node(0).SlowPathStats().SlowReleases; got == 0 {
		t.Fatal("producer never published a DM-set")
	}

	// Heal the link; the system returns to the fast path per key.
	c.Faults().Clear()
	write(t, prod, 100, "after-heal")
	waitVisible(t, cons, 100, "after-heal")
}

// TestRepeatedAcquiresDoNotRevert checks the reset-bit protocol (§4.2.1):
// after acquires discover the delinquency and reset the bits, further
// acquires must not keep bouncing the machine back to the slow path.
// Resets are sent only to the replicas whose counted replies flagged
// (Worker.sendResetBit), so a replica outside the first acquire's quorum
// may legitimately cause one more bump when it is first counted — each
// replica's Set bit costs at most one bump before its reset clears it, so
// total bumps are bounded by the replica count and then stop.
func TestRepeatedAcquiresDoNotRevert(t *testing.T) {
	c, err := NewCluster(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	cons := c.Node(4).Session(0)

	c.Faults().CutLink(0, 4, true)
	write(t, prod, 200, "x")
	release(t, prod, 201, "go")
	c.Faults().Clear()

	if got := acquire(t, cons, 201); got != "go" {
		t.Fatalf("acquire = %q", got)
	}
	// Allow the reset-bits to land.
	time.Sleep(20 * time.Millisecond)
	if c.Node(4).SlowPathStats().EpochBumps == 0 {
		t.Fatal("first acquire did not bump the epoch")
	}
	for i := 0; i < 10; i++ {
		acquire(t, cons, 201)
	}
	settled := c.Node(4).SlowPathStats().EpochBumps
	if settled > 5 {
		t.Fatalf("epoch bumps %d exceed the replica-count bound", settled)
	}
	// Steady state: once every flagger has been reset, acquires stop
	// bumping entirely.
	for i := 0; i < 10; i++ {
		acquire(t, cons, 201)
	}
	if got := c.Node(4).SlowPathStats().EpochBumps; got != settled {
		t.Fatalf("epoch kept bumping: %d -> %d (reset-bit not working)", settled, got)
	}
}

// TestKeyRefreshedOncePerEpoch: after the slow-path transition, each key
// needs exactly one quorum access before going back to local reads (§4.2
// "Returning to fast path").
func TestKeyRefreshedOncePerEpoch(t *testing.T) {
	c, err := NewCluster(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prod := c.Node(0).Session(0)
	cons := c.Node(4).Session(0)

	c.Faults().CutLink(0, 4, true)
	write(t, prod, 300, "v")
	release(t, prod, 301, "go")
	c.Faults().Clear()
	acquire(t, cons, 301)

	before := c.Node(4).SlowPathStats().SlowReads
	read(t, cons, 300) // slow (first touch after bump)
	mid := c.Node(4).SlowPathStats().SlowReads
	if mid != before+1 {
		t.Fatalf("first read after bump: slow reads %d -> %d", before, mid)
	}
	for i := 0; i < 10; i++ {
		read(t, cons, 300) // all fast now
	}
	if after := c.Node(4).SlowPathStats().SlowReads; after != mid {
		t.Fatalf("key refreshed more than once: %d -> %d", mid, after)
	}
}

// TestAvailabilityDuringNodePause reproduces the failure study's headline
// (§8.4): with one replica asleep, the remaining majority keeps serving all
// operation classes.
func TestAvailabilityDuringNodePause(t *testing.T) {
	c, err := NewCluster(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.PauseNode(4, 300*time.Millisecond)

	s := c.Node(0).Session(0)
	for i := uint64(0); i < 10; i++ {
		write(t, s, 400+i, "w")
		release(t, s, 500+i, "r")
		if got := acquire(t, c.Node(1).Session(0), 500+i); got != "r" {
			t.Fatalf("acquire during pause = %q", got)
		}
		faa(t, s, 600, 1)
	}
	if got := faa(t, c.Node(2).Session(0), 600, 0); got != 10 {
		t.Fatalf("RMWs during pause lost: %d", got)
	}

	// After waking, the paused node recovers: acquires pull it back into
	// the fast path and new releases reach it again.
	time.Sleep(350 * time.Millisecond)
	release(t, s, 700, "post")
	if got := acquire(t, c.Node(4).Session(0), 700); got != "post" {
		t.Fatalf("woken node acquire = %q", got)
	}
	if got := read(t, c.Node(4).Session(0), 400); got != "w" {
		t.Fatalf("woken node read = %q", got)
	}
}

// TestLossyLinksEverywhere runs mixed traffic over a uniformly lossy
// network: correctness (RC visibility, RMW atomicity) must survive heavy
// message loss thanks to retransmissions and the slow path.
func TestLossyLinksEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-network soak skipped in -short")
	}
	cfg := testConfig(3)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for from := uint8(0); from < 3; from++ {
		for to := uint8(0); to < 3; to++ {
			if from != to {
				c.Faults().DropLink(from, to, 0.10)
			}
		}
	}
	prod := c.Node(0).Session(0)
	cons := c.Node(1).Session(0)
	for i := 0; i < 15; i++ {
		val := fmt.Sprintf("v%d", i)
		write(t, prod, 800, val)
		release(t, prod, 801, val)
		for acquire(t, cons, 801) != val {
		}
		if got := read(t, cons, 800); got != val {
			t.Fatalf("iter %d: read %q want %q under loss", i, got, val)
		}
		faa(t, prod, 802, 1)
	}
	if got := faa(t, cons, 802, 0); got != 15 {
		t.Fatalf("FAA count under loss = %d", got)
	}
}

func waitVisible(t testing.TB, s *Session, key uint64, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := read(t, s, key); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %d never became %q", key, want)
		}
		time.Sleep(time.Millisecond)
	}
}
