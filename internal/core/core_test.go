package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// testConfig returns a small, fast deployment for tests.
func testConfig(nodes int) Config {
	return Config{
		Nodes:             nodes,
		Workers:           2,
		SessionsPerWorker: 2,
		KVSCapacity:       1 << 12,
		ReleaseTimeout:    500 * time.Microsecond,
		RetryInterval:     time.Millisecond,
		IdlePoll:          100 * time.Microsecond,
	}
}

// do runs a request synchronously against a session.
func do(t testing.TB, s *Session, r *Request) *Request {
	t.Helper()
	done := make(chan struct{})
	r.Done = func(*Request) { close(done) }
	s.Submit(r)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("request %v(%d) timed out", r.Code, r.Key)
	}
	if r.Err != nil {
		t.Fatalf("request %v(%d): %v", r.Code, r.Key, r.Err)
	}
	return r
}

func write(t testing.TB, s *Session, key uint64, val string) {
	do(t, s, &Request{Code: OpWrite, Key: key, Val: []byte(val)})
}

func read(t testing.TB, s *Session, key uint64) string {
	return string(do(t, s, &Request{Code: OpRead, Key: key}).Out)
}

func release(t testing.TB, s *Session, key uint64, val string) {
	do(t, s, &Request{Code: OpRelease, Key: key, Val: []byte(val)})
}

func acquire(t testing.TB, s *Session, key uint64) string {
	return string(do(t, s, &Request{Code: OpAcquire, Key: key}).Out)
}

func faa(t testing.TB, s *Session, key uint64, delta uint64) uint64 {
	return do(t, s, &Request{Code: OpFAA, Key: key, Delta: delta}).Uint64Out()
}

func TestSingleNodeBasics(t *testing.T) {
	c, err := NewCluster(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	if got := read(t, s, 1); got != "" {
		t.Fatalf("initial read %q", got)
	}
	write(t, s, 1, "a")
	if got := read(t, s, 1); got != "a" {
		t.Fatalf("read after write %q", got)
	}
	release(t, s, 2, "flag")
	if got := acquire(t, s, 2); got != "flag" {
		t.Fatalf("acquire %q", got)
	}
	if old := faa(t, s, 3, 5); old != 0 {
		t.Fatalf("first FAA old=%d", old)
	}
	if old := faa(t, s, 3, 5); old != 5 {
		t.Fatalf("second FAA old=%d", old)
	}
}

func TestThreeNodeReadWritePropagation(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s0 := c.Node(0).Session(0)
	s1 := c.Node(1).Session(0)
	write(t, s0, 42, "hello")
	// ES propagation is asynchronous; poll the remote replica.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := read(t, s1, 42); got == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write never reached node 1")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReleaseAcquireVisibility(t *testing.T) {
	c, err := NewCluster(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prod := c.Node(0).Session(0)
	cons := c.Node(3).Session(0)
	// Producer-consumer (Figure 1): after the consumer acquires flag=1 it
	// must read every field of the object.
	for i := uint64(0); i < 20; i++ {
		base := 1000 + i*100
		for f := uint64(0); f < 10; f++ {
			write(t, prod, base+f, fmt.Sprintf("obj%d-f%d", i, f))
		}
		release(t, prod, base+99, "ready")
		// Consumer polls the flag with acquires.
		for acquire(t, cons, base+99) != "ready" {
		}
		for f := uint64(0); f < 10; f++ {
			want := fmt.Sprintf("obj%d-f%d", i, f)
			if got := read(t, cons, base+f); got != want {
				t.Fatalf("iter %d field %d: got %q want %q (RC violation)", i, f, got, want)
			}
		}
	}
}

func TestAcquireSeesLatestRelease(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := c.Node(0).Session(0)
	b := c.Node(1).Session(0)
	// Linearizability of releases/acquires: once a release completes in
	// real time, any later acquire must observe it (RCLin, §2.3).
	for i := 0; i < 30; i++ {
		val := fmt.Sprintf("v%d", i)
		release(t, a, 7, val)
		if got := acquire(t, b, 7); got != val {
			t.Fatalf("iter %d: acquire %q after release %q", i, got, val)
		}
	}
}

func TestFAAAtomicityAcrossNodes(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perSession = 50
	var wg sync.WaitGroup
	sessions := []*Session{
		c.Node(0).Session(0), c.Node(1).Session(0), c.Node(2).Session(0),
		c.Node(0).Session(1), c.Node(1).Session(1),
	}
	olds := make([][]uint64, len(sessions))
	for si, s := range sessions {
		wg.Add(1)
		go func(si int, s *Session) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				olds[si] = append(olds[si], faa(t, s, 99, 1))
			}
		}(si, s)
	}
	wg.Wait()
	want := uint64(len(sessions) * perSession)
	// Linearizability of FAA: the returned old values must be exactly
	// {0, ..., want-1}, each seen once — duplicates mean lost updates,
	// gaps mean double-applied RMWs.
	seen := make(map[uint64]int)
	for _, vs := range olds {
		for _, v := range vs {
			seen[v]++
		}
	}
	for v := uint64(0); v < want; v++ {
		if seen[v] != 1 {
			t.Errorf("old value %d returned %d times", v, seen[v])
		}
	}
	// The final value must equal the number of increments (no lost RMWs).
	got := faa(t, c.Node(1).Session(2), 99, 0)
	if got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

func TestCASStrongAndWeak(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s0 := c.Node(0).Session(0)
	s1 := c.Node(1).Session(0)

	r := do(t, s0, &Request{Code: OpCASStrong, Key: 5, Expected: nil, Val: []byte("A")})
	if !r.Swapped {
		t.Fatalf("CAS from initial state failed, old=%q", r.Out)
	}
	// Wrong expectation fails and returns the current value.
	r = do(t, s1, &Request{Code: OpCASStrong, Key: 5, Expected: []byte("X"), Val: []byte("B")})
	if r.Swapped || string(r.Out) != "A" {
		t.Fatalf("CAS should fail with old=A: swapped=%v old=%q", r.Swapped, r.Out)
	}
	// Correct expectation succeeds.
	r = do(t, s1, &Request{Code: OpCASStrong, Key: 5, Expected: []byte("A"), Val: []byte("B")})
	if !r.Swapped || string(r.Out) != "A" {
		t.Fatalf("CAS should succeed: swapped=%v old=%q", r.Swapped, r.Out)
	}
	// Weak CAS failing locally completes without consensus.
	r = do(t, s1, &Request{Code: OpCASWeak, Key: 5, Expected: []byte("nope"), Val: []byte("C")})
	if r.Swapped {
		t.Fatal("weak CAS with wrong expectation swapped")
	}
}

func TestCASContention(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Many sessions CAS-increment one counter; every success must be
	// sequenced (classic lock-free counter over strong CAS).
	var wg sync.WaitGroup
	var successes [3]uint64
	for nid := 0; nid < 3; nid++ {
		wg.Add(1)
		go func(nid int) {
			defer wg.Done()
			s := c.Node(nid).Session(0)
			for done := 0; done < 20; {
				cur := do(t, s, &Request{Code: OpRead, Key: 77}).Out
				next := EncodeUint64(DecodeUint64(cur) + 1)
				r := do(t, s, &Request{Code: OpCASStrong, Key: 77,
					Expected: append([]byte(nil), cur...), Val: next})
				if r.Swapped {
					done++
					successes[nid]++
				}
			}
		}(nid)
	}
	wg.Wait()
	got := faa(t, c.Node(0).Session(1), 77, 0)
	if got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
}

func TestSessionOrderSameKey(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	// Rule (iv): same-key accesses preserve session order; a read after a
	// write in the same session must see it (or something newer).
	for i := 0; i < 100; i++ {
		val := fmt.Sprintf("%d", i)
		write(t, s, 8, val)
		if got := read(t, s, 8); got != val {
			t.Fatalf("iter %d: read-own-write got %q", i, got)
		}
	}
}

func TestAsyncPipeline(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	const n = 200
	var mu sync.Mutex
	completed := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		r := &Request{Code: OpWrite, Key: uint64(i), Val: []byte{byte(i)}}
		r.Done = func(*Request) {
			mu.Lock()
			completed++
			if completed == n {
				close(done)
			}
			mu.Unlock()
		}
		s.Submit(r)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/%d async writes completed", completed, n)
	}
}

func TestStopFailsOutstanding(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Node(0).Session(0)
	write(t, s, 1, "x")
	c.Close()
	r := &Request{Code: OpRead, Key: 1}
	ch := make(chan error, 1)
	r.Done = func(r *Request) { ch <- r.Err }
	s.Submit(r)
	select {
	case err := <-ch:
		if err != ErrStopped {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request after Stop hung")
	}
}

func TestCompletedCounters(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	write(t, s, 1, "x")
	read(t, s, 1)
	read(t, s, 1)
	release(t, s, 2, "y")
	if got := c.Node(0).Completed(OpRead); got != 2 {
		t.Fatalf("reads = %d", got)
	}
	if got := c.Node(0).Completed(OpWrite); got != 1 {
		t.Fatalf("writes = %d", got)
	}
	if got := c.Node(0).CompletedTotal(); got != 4 {
		t.Fatalf("total = %d", got)
	}
}
