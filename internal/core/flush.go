package core

import (
	"time"

	"kite/internal/proto"
)

// issueFlush implements the write-replication fence: the session blocks
// until every relaxed write it has issued so far is acknowledged by every
// replica, and then completes without touching any key.
//
// Unlike a release, a flush deliberately has no DM-set slow path — and it
// does not credit DM-sets already published by earlier slow releases of
// this session (tracker.FullyAcked, not AllAcked: settled writes still
// gate it). The slow-release escape hatch is sound in-group because the
// published DM-set is consumed by later acquires *of the same replica
// group*; a flush exists to order writes against synchronisation happening
// in a *different* group (the sharding layer's cross-shard release), where
// no acquire will ever read this group's DM-set. So the fence insists on
// full replication: the ES retransmission machinery keeps pushing the
// outstanding writes (settled ones included), and the fence completes the
// moment the ledger is truly clean. Availability note: a replica that
// stays unresponsive holds flushes (but not in-group releases) until it
// recovers; see DESIGN.md "Sharding".
func (w *Worker) issueFlush(s *Session, r *Request) {
	if s.tracker.FullyAcked() {
		s.complete(r, nil)
		return
	}
	op := &flushOp{sess: s, req: r}
	s.head = op
}

// flushOp is the blocking head op of an in-flight flush. It owns no
// protocol rounds of its own — the tracked ES writes retransmit themselves —
// so it only listens for the ledger going clean.
type flushOp struct {
	sess *Session
	req  *Request
}

func (op *flushOp) request() *Request                 { return op.req }
func (op *flushOp) nextDeadline() time.Time           { return time.Time{} }
func (op *flushOp) onDeadline(*Worker, time.Time)     {}
func (op *flushOp) onMessage(*Worker, *proto.Message) {}

func (op *flushOp) onTrackerUpdate(w *Worker) {
	if !op.sess.tracker.FullyAcked() {
		return
	}
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}
