package core

import (
	"encoding/binary"
	"errors"
	"sync/atomic"

	"kite/internal/kvs"
)

// OpCode identifies a Kite API operation (Table 1 plus the RMW variants of
// §6.1).
type OpCode uint8

// Kite API operations.
const (
	OpRead      OpCode = iota // relaxed read (Eventual Store)
	OpWrite                   // relaxed write (Eventual Store)
	OpRelease                 // release write (ABD, release barrier)
	OpAcquire                 // acquire read (ABD, acquire barrier)
	OpFAA                     // fetch-and-add (Paxos RMW)
	OpCASWeak                 // compare-and-swap that may fail locally
	OpCASStrong               // compare-and-swap that always checks remotely
	OpFlush                   // write-replication fence (release barrier, no write)
	opCodes
)

var opNames = [...]string{"read", "write", "release", "acquire", "faa", "cas-weak", "cas-strong", "flush"}

func (c OpCode) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return "op?"
}

// IsRMW reports whether the op maps to Paxos.
func (c OpCode) IsRMW() bool { return c == OpFAA || c == OpCASWeak || c == OpCASStrong }

// Errors shared by every Kite backend: the public in-process package and
// the remote client surface these same sentinels, so application code can
// errors.Is() against one taxonomy regardless of deployment.
var (
	// ErrStopped is reported by requests outstanding when the node shuts
	// down.
	ErrStopped = errors.New("kite: node stopped")
	// ErrValueTooLong rejects a value or CAS comparand over MaxValueLen at
	// submission, before the operation consumes any session ordering slot.
	ErrValueTooLong = errors.New("kite: value exceeds MaxValueLen")
	// ErrCanceled is reported by requests abandoned via context
	// cancellation before they executed.
	ErrCanceled = errors.New("kite: operation canceled")
	// ErrReservedKey rejects application operations on the reserved
	// membership config key (the top of the key space): its value IS the
	// group's configuration, and an application write there would wedge —
	// or, crafted, subvert — reconfiguration.
	ErrReservedKey = errors.New("kite: key reserved for the group configuration")
)

// Request is one Kite API invocation. Clients fill the input fields, submit
// via Session.Submit, and receive the completed request through Done — which
// runs on the owning worker goroutine and must not block (the async API of
// §6.1; the sync API in the public package wraps it with a channel).
type Request struct {
	Code     OpCode
	Key      uint64
	Val      []byte // write/release value, CAS new value
	Expected []byte // CAS comparand
	Delta    uint64 // FAA addend

	// Out is the operation's result value: the value read (read/acquire),
	// or the old value (FAA/CAS). It aliases a request-owned buffer valid
	// until the request is reused.
	Out []byte
	// Swapped reports CAS success.
	Swapped bool
	// Err is non-nil only when the node stopped before completion.
	Err error

	// Done is invoked exactly once on completion.
	Done func(*Request)

	sess     *Session
	canceled atomic.Bool
	outBuf   [kvs.MaxValueLen]byte
}

// Cancel marks the request as abandoned by its submitter. A request still
// queued behind the session head completes with ErrCanceled (and has no
// effect) when the worker reaches it; a request already executing runs to
// completion — its quorum rounds cannot be recalled. Safe to call from any
// goroutine, at most once per submitted request.
func (r *Request) Cancel() { r.canceled.Store(true) }

// Canceled reports whether Cancel was called.
func (r *Request) Canceled() bool { return r.canceled.Load() }

// setOut copies v into the request-owned result buffer.
func (r *Request) setOut(v []byte) {
	n := copy(r.outBuf[:], v)
	r.Out = r.outBuf[:n]
}

// Uint64Out decodes the result as a little-endian counter (FAA convention:
// missing/short values read as zero).
func (r *Request) Uint64Out() uint64 { return DecodeUint64(r.Out) }

// DecodeUint64 decodes a counter value as used by FAA: little-endian,
// zero-padded, absent keys count as zero.
func DecodeUint64(v []byte) uint64 {
	var b [8]byte
	copy(b[:], v)
	return binary.LittleEndian.Uint64(b[:])
}

// EncodeUint64 encodes a counter value for FAA/CAS use.
func EncodeUint64(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}
