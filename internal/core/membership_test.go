package core

import (
	"errors"
	"testing"
	"time"

	"kite/internal/membership"
	"kite/internal/proto"
	"kite/internal/transport"
)

func membershipConfig(nodes int) Config {
	return Config{
		Nodes: nodes, Workers: 2, SessionsPerWorker: 2, KVSCapacity: 1 << 12,
		ReleaseTimeout: 2 * time.Millisecond, RetryInterval: time.Millisecond,
	}
}

// doOn runs one request synchronously on session s.
func doOn(t testing.TB, s *Session, r *Request) *Request {
	t.Helper()
	done := make(chan struct{})
	r.Done = func(*Request) { close(done) }
	s.Submit(r)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%v on key %d timed out", r.Code, r.Key)
	}
	return r
}

// TestAddNodeServesAfterCatchup grows a 3-node group to 4 and checks the
// joiner (a) installed the committed config, (b) caught up on pre-existing
// state, and (c) serves synchronisation traffic as a full member.
func TestAddNodeServesAfterCatchup(t *testing.T) {
	c, err := NewCluster(membershipConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := c.Node(0).Session(0)
	for k := uint64(0); k < 64; k++ {
		doOn(t, s, &Request{Code: OpWrite, Key: 100 + k, Val: []byte("before")})
	}
	doOn(t, s, &Request{Code: OpRelease, Key: 99, Val: []byte("flag")})

	id, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("AddNode id = %d, want 3", id)
	}
	nd := c.Node(id)
	if !nd.AwaitCatchup(10 * time.Second) {
		t.Fatalf("joiner still catching up: %+v", nd.Catchup())
	}
	if v := nd.View(); v.Epoch != 1 || v.N() != 4 {
		t.Fatalf("joiner view = %v", v)
	}
	if got := c.Members(); got.Epoch != 1 || got.N() != 4 {
		t.Fatalf("cluster members = %v", got)
	}
	// Every old member converged on the new config.
	for i := 0; i < 3; i++ {
		if e := c.Node(i).ConfigEpoch(); e != 1 {
			t.Fatalf("node %d at epoch %d", i, e)
		}
	}
	// The joiner serves: an acquire through it sees the released flag, and a
	// relaxed read sees swept state.
	js := nd.Session(0)
	if got := doOn(t, js, &Request{Code: OpAcquire, Key: 99}); string(got.Out) != "flag" {
		t.Fatalf("acquire on joiner = %q", got.Out)
	}
	if got := doOn(t, js, &Request{Code: OpRead, Key: 100}); string(got.Out) != "before" {
		t.Fatalf("read on joiner = %q", got.Out)
	}
	// Quorum sizes grew: an RMW through the joiner commits (needs 3 of 4).
	if got := doOn(t, js, &Request{Code: OpFAA, Key: 500, Delta: 7}); got.Uint64Out() != 0 {
		t.Fatalf("FAA old = %d", got.Uint64Out())
	}
	if got := doOn(t, s, &Request{Code: OpFAA, Key: 500, Delta: 1}); got.Uint64Out() != 7 {
		t.Fatalf("FAA via old member saw %d, want 7", got.Uint64Out())
	}
}

// TestRemoveNodeUnblocksAndStops removes a replica mid-deployment: pending
// full-ack state must refit (releases do not wait for the leaver), the
// survivors converge on the shrunk config, and the leaver stops serving.
func TestRemoveNodeUnblocksAndStops(t *testing.T) {
	c, err := NewCluster(membershipConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Make node 2 unresponsive, then issue writes from node 0: their acks
	// from node 2 never arrive, so a flush would block on full replication.
	c.Node(2).Pause(time.Hour)
	s := c.Node(0).Session(0)
	for k := uint64(0); k < 8; k++ {
		doOn(t, s, &Request{Code: OpWrite, Key: k, Val: []byte("w")})
	}

	// Removing the sleeper must complete the stranded writes: the flush
	// fence refits to the surviving member set.
	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	doOn(t, s, &Request{Code: OpFlush})

	if got := c.Members(); got.Epoch != 1 || got.N() != 2 || got.Contains(2) {
		t.Fatalf("members after remove = %v", got)
	}
	// The leaver is stopped; fresh submissions on it fail.
	r := &Request{Code: OpRead, Key: 1, Done: func(*Request) {}}
	c.Node(2).Session(0).Submit(r)
	if !errors.Is(r.Err, ErrStopped) {
		t.Fatalf("removed node accepted a request (err=%v)", r.Err)
	}
	// Releases and acquires still work on the 2-member group.
	doOn(t, s, &Request{Code: OpRelease, Key: 50, Val: []byte("after")})
	if got := doOn(t, c.Node(1).Session(0), &Request{Code: OpAcquire, Key: 50}); string(got.Out) != "after" {
		t.Fatalf("acquire after remove = %q", got.Out)
	}
}

// TestRemoveRejectsLastMemberAndSelf covers the guard rails.
func TestRemoveRejectsLastMemberAndSelf(t *testing.T) {
	c, err := NewCluster(membershipConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Node(0).ReconfigureRemove(0, time.Second); err == nil {
		t.Fatal("self-removal accepted")
	}
	if err := c.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(0); err == nil {
		t.Fatal("removing the last member accepted")
	}
}

// TestStaleEpochFramesRejectedAndConverge checks the wire-level epoch
// discipline directly: frames from another epoch are dropped and counted,
// and the config exchange heals the laggard.
func TestStaleEpochFramesRejectedAndConverge(t *testing.T) {
	c, err := NewCluster(membershipConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n0, n1 := c.Node(0), c.Node(1)

	// Jump node 0 to a future epoch with the same member set (as if it
	// installed a config node 1 has not heard of).
	if !n0.InstallConfig(membership.Config{Epoch: 3, Members: n0.MembersMask()}) {
		t.Fatal("install refused")
	}
	before := n0.staleFrames.Load()

	// Node 1 still runs epoch 0: its next protocol frame at node 0 must be
	// dropped (stale) and answered with a config push, after which node 1
	// converges and the op completes despite the dropped round.
	got := doOn(t, n1.Session(0), &Request{Code: OpRelease, Key: 7, Val: []byte("x")})
	if got.Err != nil {
		t.Fatalf("release through reconfiguration: %v", got.Err)
	}
	if n0.staleFrames.Load() == before {
		t.Fatal("no frame was rejected for its epoch")
	}
	if e := n1.ConfigEpoch(); e != 3 {
		t.Fatalf("node 1 converged to epoch %d, want 3", e)
	}

	// And the other direction: a frame stamped AHEAD of the receiver makes
	// the receiver pull the sender's config.
	if e := n0.ConfigEpoch(); e != 3 {
		t.Fatalf("node 0 at epoch %d", e)
	}
}

// TestShrinkCompletesInflightSyncOps pins the refit of in-flight ABD
// rounds: a release and an acquire blocked solely on an unresponsive
// member's reply must complete the moment a configuration excluding that
// member installs (their quorum arithmetic re-resolves against the
// surviving set), instead of retransmitting forever at a node whose frames
// the epoch check would reject.
func TestShrinkCompletesInflightSyncOps(t *testing.T) {
	c, err := NewCluster(membershipConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Node(1).Pause(time.Hour)

	s := c.Node(0).Session(0)
	relDone := make(chan *Request, 1)
	rel := &Request{Code: OpRelease, Key: 5, Val: []byte("v"), Done: func(r *Request) { relDone <- r }}
	s.Submit(rel)
	select {
	case <-relDone:
		t.Fatal("release completed without a 2-member quorum")
	case <-time.After(50 * time.Millisecond):
	}

	// Simulate the shrunk configuration committing (the CAS itself cannot
	// quorate with the sleeper down — operators shrink around a LIVE
	// member; this is the unit-level view of the install).
	if !c.Node(0).InstallConfig(membership.Config{Epoch: 1, Members: 0b01}) {
		t.Fatal("install refused")
	}
	select {
	case r := <-relDone:
		if r.Err != nil {
			t.Fatalf("release after shrink: %v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release still blocked after the member was removed")
	}

	// Acquires re-resolve too (same worker, fresh head op under epoch 1).
	acqDone := make(chan *Request, 1)
	acq := &Request{Code: OpAcquire, Key: 5, Done: func(r *Request) { acqDone <- r }}
	s.Submit(acq)
	select {
	case r := <-acqDone:
		if r.Err != nil || string(r.Out) != "v" {
			t.Fatalf("acquire after shrink: %q, %v", r.Out, r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire blocked after the member was removed")
	}
}

// TestInstallConfigMonotone checks installs never regress and removal marks
// the node.
func TestInstallConfigMonotone(t *testing.T) {
	tr := transport.NewInProc(4, 1, 64)
	defer tr.Close()
	nd, err := NewNode(0, Config{Nodes: 3, Workers: 1, SessionsPerWorker: 1, KVSCapacity: 64}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if nd.InstallConfig(membership.Config{Epoch: 0, Members: 0b1111}) {
		t.Fatal("same-epoch install accepted")
	}
	if !nd.InstallConfig(membership.Config{Epoch: 2, Members: 0b1111}) {
		t.Fatal("newer install refused")
	}
	if nd.InstallConfig(membership.Config{Epoch: 1, Members: 0b0111}) {
		t.Fatal("older install accepted")
	}
	if nd.Removed() {
		t.Fatal("member marked removed")
	}
	if !nd.InstallConfig(membership.Config{Epoch: 3, Members: 0b1110}) {
		t.Fatal("removing install refused")
	}
	if !nd.Removed() {
		t.Fatal("excluded node not marked removed")
	}
}

// TestConfigExchangeMessages covers the pull/info handlers at the message
// level.
func TestConfigExchangeMessages(t *testing.T) {
	c, err := NewCluster(membershipConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n1 := c.Node(1)
	// Push a newer config at node 1 via a raw ConfigInfo frame.
	c.inner.Send(transport.Endpoint{Node: 1, Worker: 0}, []proto.Message{{
		Kind: proto.KindConfigInfo, From: 0, Worker: 0,
		Slot: 5, Bits: n1.MembersMask(),
	}})
	deadline := time.Now().Add(5 * time.Second)
	for n1.ConfigEpoch() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("node 1 at epoch %d, want 5", n1.ConfigEpoch())
		}
		time.Sleep(time.Millisecond)
	}
}
