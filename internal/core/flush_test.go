package core

import (
	"testing"
	"time"
)

func flush(t testing.TB, s *Session) {
	t.Helper()
	do(t, s, &Request{Code: OpFlush})
}

// TestFlushDrainsWrites checks the fence contract: after a flush completes,
// every prior relaxed write of the session is applied at every replica, so
// a local read anywhere observes it without any synchronisation operation.
func TestFlushDrainsWrites(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	for i := uint64(0); i < 32; i++ {
		write(t, s, 100+i, "v")
	}
	flush(t, s)
	for n := 0; n < 3; n++ {
		r := c.Node(n).Session(0)
		for i := uint64(0); i < 32; i++ {
			if got := read(t, r, 100+i); got != "v" {
				t.Fatalf("node %d key %d after flush: %q", n, 100+i, got)
			}
		}
	}
}

// TestFlushCleanLedgerImmediate checks that a flush with no outstanding
// writes completes inline without blocking the session.
func TestFlushCleanLedgerImmediate(t *testing.T) {
	c, err := NewCluster(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	flush(t, s)
	write(t, s, 1, "a")
	flush(t, s)
	flush(t, s) // ledger already clean
	if got := read(t, s, 1); got != "a" {
		t.Fatalf("read after flush: %q", got)
	}
}

// TestSingleReplicaWriteBurst is a regression test: on a 1-replica
// deployment a relaxed write is fully replicated by its local apply, so a
// burst far beyond MaxPendingWrites must not throttle the session forever
// (the tracker used to ledger writes whose acks could never arrive), and a
// release/flush afterwards completes on the fast path.
func TestSingleReplicaWriteBurst(t *testing.T) {
	c, err := NewCluster(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	for i := uint64(0); i < 500; i++ { // well past MaxPendingWrites
		write(t, s, i, "x")
	}
	flush(t, s)
	release(t, s, 9000, "flag")
	if got := read(t, s, 123); got != "x" {
		t.Fatalf("read after burst: %q", got)
	}
	if st := c.Node(0).SlowPathStats(); st.SlowReleases != 0 {
		t.Fatalf("single-replica release took the DM-set slow path (%d)", st.SlowReleases)
	}
}

// TestFlushAfterSlowRelease is the regression test for the cross-shard
// fence's interaction with the DM-set slow path: a slow release settles the
// session's tracked writes (satisfying THIS group's barrier), but a
// subsequent flush must NOT treat them as replicated — the published
// DM-set is invisible to consumers synchronising in another group. The
// flush must wait for the sleeper's real acks; once it completes, the
// writes must be readable at every replica with no acquire anywhere.
func TestFlushAfterSlowRelease(t *testing.T) {
	cfg := testConfig(3)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	const nap = 300 * time.Millisecond
	c.Node(2).Pause(nap)
	write(t, s, 40, "payload")

	// The release publishes a DM-set naming node 2 and completes promptly.
	start := time.Now()
	release(t, s, 41, "flag")
	if since := time.Since(start); since > nap/2 {
		t.Fatalf("release took %v; expected the DM-set slow path", since)
	}
	if st := c.Node(0).SlowPathStats(); st.SlowReleases == 0 {
		t.Fatal("release did not publish a DM-set; test scenario broken")
	}

	// The flush must not be satisfied by the settled ledger.
	done := make(chan struct{})
	r := &Request{Code: OpFlush}
	r.Done = func(*Request) { close(done) }
	s.Submit(r)
	select {
	case <-done:
		if since := time.Since(start); since < nap/2 {
			t.Fatalf("flush completed in %v: settled writes leaked past the fence", since)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush never completed after the sleeper woke")
	}
	// Full replication for real: node 2 serves the write locally.
	if got := read(t, c.Node(2).Session(0), 40); got != "payload" {
		t.Fatalf("node 2 read after flush: %q", got)
	}
}

// TestFlushWaitsForSleeper checks that — unlike a release — a flush has no
// DM-set escape hatch: with a replica asleep it stays pending past the
// release timeout, and completes only once the sleeper wakes and acks.
func TestFlushWaitsForSleeper(t *testing.T) {
	cfg := testConfig(3)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Node(0).Session(0)
	const nap = 300 * time.Millisecond
	c.Node(2).Pause(nap)
	write(t, s, 7, "x")

	start := time.Now()
	done := make(chan struct{})
	r := &Request{Code: OpFlush}
	r.Done = func(*Request) { close(done) }
	s.Submit(r)
	select {
	case <-done:
		if since := time.Since(start); since < nap/2 {
			t.Fatalf("flush completed in %v with a replica asleep for %v", since, nap)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush never completed after the sleeper woke")
	}
	if r.Err != nil {
		t.Fatalf("flush: %v", r.Err)
	}
	// A release in the same situation must still take the DM-set slow path
	// and complete promptly — flush semantics must not leak into releases.
	c.Node(2).Pause(nap)
	write(t, s, 8, "y")
	start = time.Now()
	release(t, s, 9, "flag")
	if since := time.Since(start); since > nap/2 {
		t.Fatalf("release took %v with a sleeping replica; DM-set slow path broken?", since)
	}
}
