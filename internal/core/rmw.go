package core

import (
	"bytes"
	"time"

	"kite/internal/kvs"
	"kite/internal/paxos"
	"kite/internal/proto"
)

// debugRMWTrace, when non-nil, observes rmw op lifecycle events (tests).
var debugRMWTrace func(opID uint64, event string, detail uint64)

func traceRMW(opID uint64, event string, detail uint64) {
	if debugRMWTrace != nil {
		debugRMWTrace(opID, event, detail)
	}
}

// issueRMW implements FAA and CAS (§3.4, §6.1):
//
//   - release semantics: the same barrier as a release gates the first
//     round that exposes the new value (the accept); the propose round —
//     which carries no value — overlaps the barrier wait (§4.3).
//   - acquire semantics: propose replies piggyback the delinquency check;
//     on discovery, the machine epoch is bumped before the session resumes.
//   - a weak CAS whose comparison fails against the local in-epoch value
//     completes locally without any protocol round (§6.1).
//   - otherwise the RMW runs per-key slotted Paxos: helping stranded
//     proposals, catching up on missed commits, retrying past ballot races.
func (w *Worker) issueRMW(s *Session, r *Request) {
	nd := w.node
	epoch := nd.Epoch.Load()
	if r.Code == OpCASWeak && !nd.cfg.DisableFastPath {
		val, _, keyEpoch, ok := nd.Store.View(r.Key, w.scratch[:])
		if ((ok && keyEpoch == epoch) || (!ok && epoch == 0)) && !bytes.Equal(val, r.Expected) {
			r.setOut(val)
			r.Swapped = false
			s.complete(r, nil)
			return
		}
	}
	op := &rmwOp{
		id: w.nextOpID(s), sess: s, req: r,
		epochSnap: epoch,
		prop:      paxos.NewProposer(r.Key, 0, nd.ID, nd.n()),
		retryAt:   w.now.Add(nd.cfg.RetryInterval),
	}
	op.prop.OpID = op.id
	s.head = op
	w.register(op.id, op)
	op.bar.barrierInit(w, s)
	op.propose(w) // overlaps the barrier wait; accepts stay gated
}

type rmwOp struct {
	id   uint64
	sess *Session
	req  *Request
	prop *paxos.Proposer
	bar  barrierState

	epochSnap uint64

	// pendingAccept buffers the accept round while the barrier is open.
	pendingAccept bool
	// backoffAt, when set, schedules a re-propose after a ballot race.
	backoffAt time.Time
	retryAt   time.Time
	// commitMsg is the commit broadcast (kept for retransmission with its
	// origin payload intact).
	commitMsg proto.Message

	// Result computed against the committed base of the current attempt.
	resBuf  [kvs.MaxValueLen]byte
	resLen  int
	swapped bool
	ownBuf  [kvs.MaxValueLen]byte
	ownLen  int
}

func (op *rmwOp) request() *Request { return op.req }

func (op *rmwOp) nextDeadline() time.Time {
	d := minTime(op.retryAt, op.bar.timeoutAt)
	return minTime(d, op.backoffAt)
}

// propose (re)starts the Paxos cycle against the current committed
// snapshot: recompute the RMW's value, allocate a ballot above every ballot
// seen, broadcast the propose.
func (op *rmwOp) propose(w *Worker) {
	nd := w.node
	// Local own-committed check before every (re-)proposal: a helper's
	// commit of our value reaches this replica too, and the registry entry
	// must be honoured BEFORE recomputing against a newer base. (resBuf
	// still describes the attempt whose value was committed.)
	if paxos.SessionCommitted(nd.Store, op.req.Key, op.id) {
		traceRMW(op.id, "local-already", op.prop.Slot)
		op.finish(w)
		return
	}
	snap := paxos.ReadCommitted(nd.Store, op.req.Key, w.scratch[:])
	own := op.computeOwn(snap.Val)
	ballot := paxos.AllocBallot(nd.Store, op.req.Key, nd.ID, op.prop.NextBallotFloor())
	op.prop.Start(snap.Slot, ballot, own)
	op.backoffAt = time.Time{}
	traceRMW(op.id, "propose", snap.Slot<<16|uint64(DecodeUint64(snap.Val)&0xffff))
	w.broadcastAll(op.prop.ProposeMsg(nd.ID, w.id))
}

// retry re-proposes after a ballot race — at the SAME slot with the SAME
// value, only the ballot rises. This must not re-read the local snapshot:
// if the slot moved on meanwhile, the re-propose acts as the quorum probe
// that tells us whether our value won the old slot (own-committed nack) or
// lost it (committed-nack -> restart); recomputing here would detach the
// reported result from the value that actually committed.
func (op *rmwOp) retry(w *Worker) {
	nd := w.node
	if paxos.SessionCommitted(nd.Store, op.req.Key, op.id) {
		traceRMW(op.id, "local-already", op.prop.Slot)
		op.finish(w)
		return
	}
	ballot := paxos.AllocBallot(nd.Store, op.req.Key, nd.ID, op.prop.NextBallotFloor())
	op.prop.Start(op.prop.Slot, ballot, op.ownBuf[:op.ownLen])
	op.backoffAt = time.Time{}
	traceRMW(op.id, "retry", op.prop.Slot)
	w.broadcastAll(op.prop.ProposeMsg(nd.ID, w.id))
}

// computeOwn derives the RMW's new value from the committed base, recording
// the client-visible result (the old value, plus CAS success).
func (op *rmwOp) computeOwn(base []byte) []byte {
	op.resLen = copy(op.resBuf[:], base)
	switch op.req.Code {
	case OpFAA:
		op.ownLen = copy(op.ownBuf[:], EncodeUint64(DecodeUint64(base)+op.req.Delta))
	default: // CAS
		if bytes.Equal(base, op.req.Expected) {
			op.swapped = true
			op.ownLen = copy(op.ownBuf[:], op.req.Val)
		} else {
			// Failed comparison: the RMW still linearizes by committing
			// the base unchanged (the strong variant always checks
			// remotely).
			op.swapped = false
			op.ownLen = copy(op.ownBuf[:], base)
		}
	}
	return op.ownBuf[:op.ownLen]
}

func (op *rmwOp) onTrackerUpdate(w *Worker) {
	if op.bar.barrierOnTracker(op.sess) {
		op.maybeAccept(w)
	}
}

// onConfigChange re-resolves the Paxos round against a freshly installed
// member set (Worker.applyConfig): quorum arithmetic switches to the new
// configuration and removed members' replies stop counting — without this,
// a round blocked on a removed replica's ack would retransmit forever at a
// node whose frames the epoch check rejects. The reconfiguration CAS's own
// commit round completes through exactly this path.
func (op *rmwOp) onConfigChange(w *Worker) {
	v := w.node.View()
	if op.bar.barrierOnConfigChange(w, op.sess) {
		op.maybeAccept(w)
	}
	op.react(w, op.prop.Refit(v.N(), v.Quorum(), v.Mask()))
}

func (op *rmwOp) onMessage(w *Worker, m *proto.Message) {
	switch m.Kind {
	case proto.KindProposeAck:
		act := op.prop.OnProposeAck(m)
		op.sendLearns(w)
		op.react(w, act)
	case proto.KindAcceptAck:
		act := op.prop.OnAcceptAck(m)
		op.sendLearns(w)
		op.react(w, act)
	case proto.KindCommitAck:
		op.react(w, op.prop.OnCommitAck(m))
	case proto.KindSlowReleaseAck:
		if op.bar.barrierOnSlowAck(w, op.sess, m) {
			op.maybeAccept(w)
		}
	}
}

func (op *rmwOp) react(w *Worker, act paxos.Action) {
	switch act {
	case paxos.ActAccept:
		op.pendingAccept = true
		op.maybeAccept(w)
	case paxos.ActCommit:
		// The commit carries the key's recent committed origins so replicas
		// that skip slots inherit the exactly-once filter entries.
		cm := op.prop.CommitMsg(w.node.ID, w.id)
		snap := paxos.ReadCommitted(w.node.Store, op.req.Key, w.scratch[:])
		cm.Origins = snap.Recent
		op.commitMsg = cm
		// broadcastAll applies the commit locally via the loopback handler
		// and folds the local replica's ack.
		w.broadcastAll(cm)
	case paxos.ActDone:
		traceRMW(op.id, "done", uint64(boolToU64(op.prop.Helping()))<<32|op.prop.Slot)
		if op.prop.Helping() {
			// We completed a stranded foreign proposal; our own RMW now
			// runs at the next slot against the new committed base.
			op.propose(w)
			return
		}
		op.finish(w)
	case paxos.ActRestart:
		traceRMW(op.id, "restart", op.prop.Slot)
		op.applyCatchUp(w)
		op.propose(w)
	case paxos.ActAlreadyCommitted:
		traceRMW(op.id, "already", op.prop.Slot)
		// A helper already drove our value to commit: sync local state and
		// finish with the result computed when the value was created —
		// re-executing would double-apply the RMW.
		op.applyCatchUp(w)
		op.finish(w)
	case paxos.ActRetry:
		// Ballot race: back off briefly (staggered by op id) then
		// re-propose above the highest promise seen.
		stagger := time.Duration(op.id%7) * 37 * time.Microsecond
		op.backoffAt = w.now.Add(w.node.cfg.RetryInterval/8 + stagger)
	}
}

// maybeAccept broadcasts the accept round once both the propose quorum and
// the release barrier are in (the accept is the first value-bearing round).
func (op *rmwOp) maybeAccept(w *Worker) {
	if !op.pendingAccept || !op.bar.done {
		return
	}
	op.pendingAccept = false
	m := op.prop.AcceptMsg(w.node.ID, w.id)
	traceRMW(op.id, "accept", uint64(boolToU64(op.prop.Helping()))<<48|m.Slot<<16|DecodeUint64(m.Value)&0xffff)
	w.broadcastAll(m)
}

// applyCatchUp installs the committed state gleaned from nacks into the
// local replica (slot-1 holds the latest committed value).
func (op *rmwOp) applyCatchUp(w *Worker) {
	if slot, st, val, origin, ok := op.prop.CatchUp(); ok && slot > 0 {
		paxos.ApplyCommit(w.node.Store, op.req.Key, slot-1, st, val, origin,
			op.prop.CatchUpOrigins())
	}
}

// sendLearns ships the local committed state to replicas that nacked as
// behind, so they can rejoin the slot (fire-and-forget).
func (op *rmwOp) sendLearns(w *Worker) {
	if op.prop.Behind == 0 {
		return
	}
	snap := paxos.ReadCommitted(w.node.Store, op.req.Key, w.scratch[:])
	if snap.Slot > 0 {
		m := proto.Message{
			Kind: proto.KindPaxosLearn, From: w.node.ID, Worker: w.id,
			Key: op.req.Key, OpID: op.id, Slot: snap.Slot - 1,
			Stamp: snap.Stamp, Origin: snap.LastOrigin, Value: snap.Val,
			Origins: snap.Recent,
		}
		w.retransmit(m, op.prop.Behind)
	}
	op.prop.Behind = 0
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (op *rmwOp) finish(w *Worker) {
	traceRMW(op.id, "finish", DecodeUint64(op.resBuf[:op.resLen]))
	nd := w.node
	// The commit already applied the value locally with a quorum behind it;
	// bring the key in-epoch per the snapshot rule.
	nd.Store.AdvanceEpoch(op.req.Key, op.epochSnap)
	if op.prop.Delinquent {
		nd.Epoch.Bump()
		nd.epochBumps.Add(1)
		w.sendResetBit(op.id, op.prop.DelinqMask)
	}
	op.req.Out = op.req.outBuf[:copy(op.req.outBuf[:], op.resBuf[:op.resLen])]
	op.req.Swapped = op.swapped
	w.unregister(op.id)
	op.sess.complete(op.req, nil)
	op.sess.unblock()
}

func (op *rmwOp) onDeadline(w *Worker, now time.Time) {
	if op.bar.barrierOnTimeout(w, op.sess, op.id, now) {
		op.maybeAccept(w)
	}
	if !op.backoffAt.IsZero() && now.After(op.backoffAt) {
		op.retry(w)
		return
	}
	if now.After(op.retryAt) {
		if op.prop.PendingRestart() {
			// A quorum-backed restart waited one retransmission interval
			// for a possible own-committed witness; availability wins now.
			traceRMW(op.id, "forced-restart", op.prop.Slot)
			op.react(w, paxos.ActRestart)
			op.retryAt = now.Add(w.node.cfg.RetryInterval)
			return
		}
		if op.bar.slowSent && !op.bar.done {
			w.retransmit(proto.Message{
				Kind: proto.KindSlowRelease, From: w.node.ID, Worker: w.id,
				OpID: op.id, Bits: op.bar.dmSet,
			}, w.node.full()&^op.bar.slowAcks)
		}
		switch op.prop.Phase {
		case paxos.PhasePropose:
			w.retransmit(op.prop.ProposeMsg(w.node.ID, w.id), op.prop.Unseen(w.node.full()))
		case paxos.PhaseAccept:
			if !op.pendingAccept {
				w.retransmit(op.prop.AcceptMsg(w.node.ID, w.id), op.prop.Unseen(w.node.full()))
			}
		case paxos.PhaseCommit:
			w.retransmit(op.commitMsg, op.prop.Unseen(w.node.full()))
		}
		op.retryAt = now.Add(w.node.cfg.RetryInterval)
	}
}
